# Empty dependencies file for framework_smoke_test.
# This may be replaced when dependencies are built.
