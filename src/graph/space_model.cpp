#include "graph/space_model.hpp"

#include "util/check.hpp"

namespace eta::graph {

uint64_t CountShadowVertices(const Csr& csr, uint32_t degree_limit) {
  ETA_CHECK(degree_limit >= 1);
  uint64_t count = 0;
  for (VertexId v = 0; v < csr.NumVertices(); ++v) {
    EdgeId deg = csr.OutDegree(v);
    count += (deg + degree_limit - 1) / degree_limit;  // ceil; 0 for deg==0
  }
  return count;
}

std::vector<SpaceRow> ComputeSpaceModel(const Csr& csr, uint32_t degree_limit) {
  const uint64_t e = csr.NumEdges();
  const uint64_t v = csr.NumVertices();
  const uint64_t n_shadow = CountShadowVertices(csr, degree_limit);

  const uint64_t csr_words = e + v;
  std::vector<SpaceRow> rows = {
      {"G-Shard", "2|E|", 2 * e, 0.0},
      {"Edge List", "2|E|", 2 * e, 0.0},
      {"VST", "|E| + 2|N| + 2|V|", e + 2 * n_shadow + 2 * v, 0.0},
      {"CSR (UDC)", "|E| + |V|", csr_words, 0.0},
  };
  for (SpaceRow& row : rows) {
    row.normalized = static_cast<double>(row.words) / static_cast<double>(csr_words);
  }
  return rows;
}

}  // namespace eta::graph
