// etagraph_serve — replay a deterministic synthetic query trace against the
// query-serving engine and print the fleet report.
//
//   etagraph_serve --dataset=slashdot --requests=64 --mode=batched
//   etagraph_serve --graph=path/to/graph.gr --mode=session --deadline=5
//   etagraph_serve --dataset=rmat --scale=0.25 --mode=naive --requests=16
//
// Flags:
//   --dataset       one of the seven stand-ins  (or use --graph)
//   --graph         path to a Galois .gr or text edge-list file
//   --scale         dataset stand-in scale in (0,1]             (default 1)
//   --requests      trace length                                (default 64)
//   --mean-arrival  mean inter-arrival time in ms               (default 1.5)
//   --mode          naive | session | batched                   (default batched)
//   --window        batching window in ms                       (default 2)
//   --max-batch     max requests folded per launch              (default 16)
//   --queue-cap     admission queue capacity                    (default 64)
//   --deadline      per-request queueing deadline in ms; 0=none (default 0)
//   --bfs-frac      fraction of BFS requests                    (default 0.5)
//   --sssp-frac     fraction of SSSP requests (rest are SSWP)   (default 0.35)
//   --seed          trace RNG seed                              (default 1)
//   --detail        print one line per request
//   --trace         replay a text trace file instead of generating one
//                   (per line: arrival_ms algo source [deadline_ms] [priority])
//   --check         run etacheck on every device the replay touches: all, or
//                   a comma list of memcheck,racecheck,synccheck,leakcheck.
//                   Exit 1 on any error finding.
//   --check-json    also write the findings as JSON to this path
//   --faults        inject device faults (DESIGN.md section 8): a comma list
//                   of key=value pairs, e.g.
//                   --faults=seed=7,uecc=0.02,hang=0.01,lost=0.001
//                   keys: seed, ecc, uecc, hang, lost, alloc (rates in [0,1]),
//                   watchdog (ms), words, and scripted ecc_at/uecc_at/hang_at/
//                   lost_at/alloc_at one-shots (1-based decision index)
//   --replay-out    write per-request terminal outcomes (id status algo source
//                   reached batch start finish) to this path — diffable across
//                   identical replays
//   --profile       run etaprof (DESIGN.md section 9): record per-launch
//                   kernel profiles and serve-layer spans during the replay
//   --trace-json    with --profile: write the merged serve+device
//                   Chrome/Perfetto trace-event JSON (open at
//                   https://ui.perfetto.dev) to this path
//   --metrics-out   write the serve metrics registry (latency split, batch
//                   sizes, cost-model error) as Prometheus text exposition
//                   to this path
//   --shards        serve on a sharded fleet of N device sessions behind one
//                   load/fault-aware admission front (DESIGN.md section 10);
//                   0 = the single-session engine                (default 0)
//   --device-mem-budget  with --shards: per-shard resident-graph budget in
//                   bytes, LRU-evicting past it; 0 = unlimited   (default 0)
//   --async         with --shards: stream-based async dispatch (DESIGN.md
//                   section 11) — staging runs on a copy stream overlapping
//                   compute, dispatches pipeline as event DAGs. Answers are
//                   bit-identical to the sync dispatcher; on a single-graph
//                   replay the whole report is byte-identical
//   --catalog       serve N graphs instead of one: graphs 1..N-1 are
//                   scaled-down variants of the primary --dataset and the
//                   generated trace round-robins graph ids across them, so
//                   staging/eviction/pre-staging actually exercise.
//                   Requires --shards and --dataset                (default 1)
//   --verify-dag    with --async: run etaverify (DESIGN.md section 12) over
//                   every shard's recorded stream DAG — static
//                   happens-before checks for unordered conflicting
//                   accesses, use-before-ready consumers, unbound waits,
//                   wait cycles, and orphan streams. Exit 1 on any finding.
//   --verify-json   also write the etaverify findings as JSON to this path
//   --plant         with --verify-dag: surgically plant one ordering bug in
//                   the async dispatcher (test gate for etaverify): one of
//                   drop-ready-wait, swap-record-wait, double-prestage.
//                   Answers stay bit-identical; the DAG carries the bug.
//   --arrivals      replace the generated trace with a seeded open-loop
//                   arrival process (DESIGN.md section 13):
//                   profile:key=value,... with profile one of poisson,
//                   bursty, diurnal. Keys: rate (avg qps), n, on, off,
//                   offscale, period, trough, hot, tenants, slo (0/1),
//                   gold, silver, gd/sd/bd (per-class deadlines ms),
//                   cc/pr (whole-graph query fractions), seed.
//                   e.g. --arrivals=poisson:rate=2000,n=512,gold=0.25
//                   The catalog size (--catalog) supplies the graph count;
//                   graph 0 is hot. Incompatible with --trace.
//   --slo-shed      with --shards: enable the SLO admission controller —
//                   predictively shed classed requests that provably cannot
//                   meet their class target (gold is never shed)
//   --slo-targets   gold[,silver[,bronze]] class targets in ms
//                   (default 50,200,1000)
//   --shed-backlog  bronze[,silver] backlog thresholds in ms for
//                   class-ordered pressure shedding (hysteretic; 0=off)
//   --brownout      bronze[,silver] backlog thresholds in ms for the
//                   brownout ladder: past level 1 bronze is served degraded
//                   from the CPU fallback, past level 2 silver too (0=off)
//   --retry-budget  rate[,burst]: fleet-wide retry/rebuild token bucket,
//                   tokens per simulated second (0=unbounded, the legacy
//                   behavior)
//   --breaker       cooldown_ms[,backoff]: per-shard circuit breaker —
//                   a failed dispatch quarantines the shard for the
//                   cooldown, then a single half-open probe decides
//                   between closing and re-opening with backoff
//   --edf           EDF pop order (DESIGN.md section 15): within a priority
//                   class the scheduler pops earliest effective deadline
//                   (start deadline minus the running-mean service estimate,
//                   frozen at admission) first. Off: legacy (priority, seq)
//   --memo-window   with --shards: whole-graph memo window in simulated ms —
//                   identical CC/PageRank requests against the same graph
//                   inside the window are answered from the per-shard memo
//                   table at zero device cost (0 = off). Arrivals gain
//                   whole-graph traffic via the cc=/pr= arrival keys
//   --autoscale     with --shards: min_shards,backlog_ms — backlog
//                   autoscaling (DESIGN.md section 15): start with
//                   min_shards active, scale the active count through a
//                   hysteresis ladder over the mean active-shard backlog
//                   (thresholds backlog_ms * 1, * 2, ...); standbys stay
//                   warm (sessions resident)
//   --trace-requests  etatrace (DESIGN.md section 14): record a per-request
//                   causal span tree — admit/shed/brownout decisions, route
//                   choices with per-shard backlog estimates, dispatch
//                   attempts with stream-DAG op ids, faults/retries/
//                   rebuilds, CPU fallbacks, completion. Off by default;
//                   with it off every legacy output is byte-identical
//   --trace-request-out  with --trace-requests: write the per-request span
//                   trees as JSON (one entry per request id) to this path
//   --blackbox-out  write the always-on flight recorder's event ring
//                   (last ~4096 lifecycle events, plus any device-loss /
//                   breaker-open / shard-death dumps) as text to this path
//   --slo-alerts    evaluate multi-window SLO burn-rate alerts over the
//                   replay: objective[,fast_ms[,slow_ms[,burn]]], e.g.
//                   --slo-alerts=0.999,50,500,2 — alert fires when both
//                   trailing windows burn error budget >= `burn`x. Adds an
//                   alert table/JSON block and serve_alert_* metrics
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "prof/trace_export.hpp"
#include "sanitizer/config.hpp"
#include "serve/arrivals.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "sim/fault.hpp"
#include "serve/trace.hpp"
#include "serve/trace_file.hpp"
#include "trace/alerts.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

using namespace eta;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "etagraph_serve: %s\n", message.c_str());
  return 2;
}

// Parses "A" or "A,B[,C...]" into the given slots; values beyond those
// supplied keep their presets. At least one value is required and trailing
// garbage is an error.
bool ParseDoubleList(const std::string& s, std::vector<double*> out) {
  size_t pos = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    const size_t comma = s.find(',', pos);
    const std::string token =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return false;
    *out[i] = value;
    if (comma == std::string::npos) return true;
    pos = comma + 1;
  }
  return pos >= s.size();
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  auto cl = util::CommandLine::Parse(argc, argv, &error);
  if (!cl) return Fail(error);

  const std::string dataset = cl->GetString("dataset", "");
  const std::string graph_path = cl->GetString("graph", "");
  const double scale = cl->GetDouble("scale", 1.0);
  const auto requests = static_cast<uint32_t>(cl->GetInt("requests", 64));
  const double mean_arrival = cl->GetDouble("mean-arrival", 1.5);
  const std::string mode_name = cl->GetString("mode", "batched");
  const double window = cl->GetDouble("window", 2.0);
  const auto max_batch = static_cast<uint32_t>(cl->GetInt("max-batch", 16));
  const auto queue_cap = static_cast<size_t>(cl->GetInt("queue-cap", 64));
  const double deadline = cl->GetDouble("deadline", 0.0);
  const double bfs_frac = cl->GetDouble("bfs-frac", 0.5);
  const double sssp_frac = cl->GetDouble("sssp-frac", 0.35);
  const auto seed = static_cast<uint64_t>(cl->GetInt("seed", 1));
  const bool detail = cl->GetBool("detail", false);
  const std::string trace_path = cl->GetString("trace", "");
  const std::string check_spec = cl->GetString("check", "");
  const std::string check_json = cl->GetString("check-json", "");
  const std::string faults_spec = cl->GetString("faults", "");
  const std::string replay_out = cl->GetString("replay-out", "");
  const bool profile = cl->GetBool("profile", false);
  const std::string trace_json = cl->GetString("trace-json", "");
  const std::string metrics_out = cl->GetString("metrics-out", "");
  const auto shards = static_cast<uint32_t>(cl->GetInt("shards", 0));
  const auto mem_budget = static_cast<uint64_t>(cl->GetInt("device-mem-budget", 0));
  const bool async = cl->GetBool("async", false);
  const auto catalog_n = static_cast<uint32_t>(cl->GetInt("catalog", 1));
  const bool verify_dag = cl->GetBool("verify-dag", false);
  const std::string verify_json = cl->GetString("verify-json", "");
  const std::string plant_name = cl->GetString("plant", "");
  const std::string arrivals_spec = cl->GetString("arrivals", "");
  const bool slo_shed = cl->GetBool("slo-shed", false);
  const std::string slo_targets = cl->GetString("slo-targets", "");
  const std::string shed_backlog = cl->GetString("shed-backlog", "");
  const std::string brownout_spec = cl->GetString("brownout", "");
  const std::string retry_budget_spec = cl->GetString("retry-budget", "");
  const std::string breaker_spec = cl->GetString("breaker", "");
  const bool edf = cl->GetBool("edf", false);
  const double memo_window = cl->GetDouble("memo-window", 0);
  const std::string autoscale_spec = cl->GetString("autoscale", "");
  const bool trace_requests = cl->GetBool("trace-requests", false);
  const std::string trace_request_out = cl->GetString("trace-request-out", "");
  const std::string blackbox_out = cl->GetString("blackbox-out", "");
  const bool slo_alerts = cl->Has("slo-alerts");
  const std::string slo_alerts_spec = cl->GetString("slo-alerts", "");
  if (auto unused = cl->UnusedFlags(); !unused.empty()) {
    return Fail("unknown flag --" + unused.front());
  }
  if (!trace_request_out.empty() && !trace_requests) {
    return Fail("--trace-request-out requires --trace-requests");
  }
  if (!trace_json.empty() && !profile) {
    return Fail("--trace-json requires --profile");
  }
  if (verify_dag && !async) {
    return Fail("--verify-dag requires --async");
  }
  if (!verify_json.empty() && !verify_dag) {
    return Fail("--verify-json requires --verify-dag");
  }
  serve::ShardedOptions::DagPlant plant = serve::ShardedOptions::DagPlant::kNone;
  if (!plant_name.empty()) {
    if (!verify_dag) return Fail("--plant requires --verify-dag");
    if (plant_name == "drop-ready-wait") {
      plant = serve::ShardedOptions::DagPlant::kDropReadyWait;
    } else if (plant_name == "swap-record-wait") {
      plant = serve::ShardedOptions::DagPlant::kSwapRecordWait;
    } else if (plant_name == "double-prestage") {
      plant = serve::ShardedOptions::DagPlant::kDoublePrestage;
    } else {
      return Fail("unknown --plant '" + plant_name +
                  "' (drop-ready-wait | swap-record-wait | double-prestage)");
    }
  }
  if (catalog_n < 1) return Fail("--catalog must be >= 1");
  if (catalog_n > 1 && shards == 0) return Fail("--catalog requires --shards");
  if (catalog_n > 1 && dataset.empty()) {
    return Fail("--catalog requires --dataset (scaled variants of one dataset)");
  }
  if (catalog_n > 1 && !trace_path.empty()) {
    return Fail("--catalog works with a generated trace, not --trace");
  }

  sanitizer::Config check_cfg{};
  if (!check_spec.empty()) {
    auto parsed = sanitizer::Config::Parse(check_spec);
    if (!parsed) {
      return Fail(
          "bad --check '" + check_spec +
          "' (want all, or a comma list of memcheck,racecheck,synccheck,leakcheck)");
    }
    check_cfg = *parsed;
  }
  if (!check_json.empty() && !check_cfg.Enabled()) {
    return Fail("--check-json requires --check");
  }

  sim::FaultConfig fault_cfg{};
  if (!faults_spec.empty()) {
    std::string fault_error;
    auto parsed = sim::FaultConfig::Parse(faults_spec, &fault_error);
    if (!parsed) return Fail("bad --faults: " + fault_error);
    fault_cfg = *parsed;
  }

  // Validate flags before the (potentially slow) graph load.
  serve::ServeOptions options;
  if (mode_name == "naive") {
    options.mode = serve::ServeMode::kNaivePerQuery;
  } else if (mode_name == "session") {
    options.mode = serve::ServeMode::kSession;
  } else if (mode_name == "batched") {
    options.mode = serve::ServeMode::kSessionBatched;
  } else {
    return Fail("unknown --mode '" + mode_name + "' (naive | session | batched)");
  }
  if (shards > 0 && options.mode == serve::ServeMode::kNaivePerQuery) {
    return Fail("--shards requires a session mode (--mode=session or --mode=batched)");
  }
  if (mem_budget > 0 && shards == 0) {
    return Fail("--device-mem-budget requires --shards");
  }
  if (async && shards == 0) {
    return Fail("--async requires --shards");
  }
  // Overload control (DESIGN.md section 13). The admission controller,
  // ladders, and breaker live in the sharded router; the retry budget also
  // applies to the single-session engine.
  if (shards == 0 && (slo_shed || !shed_backlog.empty() || !brownout_spec.empty() ||
                      !breaker_spec.empty())) {
    return Fail("--slo-shed/--shed-backlog/--brownout/--breaker require --shards");
  }
  if (shards == 0 && (memo_window > 0 || !autoscale_spec.empty())) {
    return Fail("--memo-window/--autoscale require --shards");
  }
  if (memo_window < 0) return Fail("--memo-window must be >= 0");
  serve::ShardedOptions::AutoscaleOptions autoscale{};
  if (!autoscale_spec.empty()) {
    double min_shards = 1;
    if (!ParseDoubleList(autoscale_spec, {&min_shards, &autoscale.backlog_ms}) ||
        min_shards < 1 || autoscale.backlog_ms <= 0) {
      return Fail("bad --autoscale '" + autoscale_spec +
                  "' (want min_shards,backlog_ms)");
    }
    autoscale.min_shards = static_cast<uint32_t>(min_shards);
    if (autoscale.min_shards >= shards) {
      return Fail("--autoscale min_shards must be < --shards");
    }
  }
  if (!arrivals_spec.empty() && !trace_path.empty()) {
    return Fail("--arrivals and --trace are mutually exclusive");
  }
  serve::OverloadOptions& ov = options.overload;
  ov.slo_admission = slo_shed;
  if (!slo_targets.empty() &&
      !ParseDoubleList(slo_targets, {&ov.gold_slo_ms, &ov.silver_slo_ms, &ov.bronze_slo_ms})) {
    return Fail("bad --slo-targets '" + slo_targets + "' (want gold[,silver[,bronze]] ms)");
  }
  if (!shed_backlog.empty() &&
      !ParseDoubleList(shed_backlog, {&ov.shed_bronze_backlog_ms, &ov.shed_silver_backlog_ms})) {
    return Fail("bad --shed-backlog '" + shed_backlog + "' (want bronze[,silver] ms)");
  }
  if (!brownout_spec.empty() &&
      !ParseDoubleList(brownout_spec,
                       {&ov.brownout_bronze_backlog_ms, &ov.brownout_silver_backlog_ms})) {
    return Fail("bad --brownout '" + brownout_spec + "' (want bronze[,silver] ms)");
  }
  if (!retry_budget_spec.empty() &&
      !ParseDoubleList(retry_budget_spec, {&ov.retry_tokens_per_s, &ov.retry_burst})) {
    return Fail("bad --retry-budget '" + retry_budget_spec + "' (want rate[,burst])");
  }
  if (!breaker_spec.empty() &&
      !ParseDoubleList(breaker_spec, {&ov.breaker_cooldown_ms, &ov.breaker_backoff})) {
    return Fail("bad --breaker '" + breaker_spec + "' (want cooldown_ms[,backoff])");
  }
  if (slo_alerts) {
    // Bare --slo-alerts keeps the evaluator defaults (0.999,50,500,2).
    const std::string spec = slo_alerts_spec == "true" ? "" : slo_alerts_spec;
    std::string alert_error;
    if (!trace::ParseAlertSpec(spec, &options.slo_alerts, &alert_error)) {
      return Fail("bad --slo-alerts: " + alert_error);
    }
  }
  options.queue_capacity = queue_cap;
  options.batch_window_ms = window;
  options.max_batch = max_batch;
  options.edf = edf;
  options.memo_window_ms = memo_window;
  options.graph.check = check_cfg;
  options.graph.faults = fault_cfg;
  options.graph.profile = profile;
  options.graph.verify_dag = verify_dag;
  options.graph.trace_requests = trace_requests;

  graph::Csr csr;
  if (!graph_path.empty()) {
    csr = graph_path.size() > 3 && graph_path.ends_with(".gr")
              ? graph::ReadGaloisGr(graph_path)
              : graph::ReadEdgeListText(graph_path);
  } else if (!dataset.empty()) {
    if (!graph::FindDataset(dataset)) return Fail("unknown dataset '" + dataset + "'");
    csr = graph::BuildDatasetCached(dataset, "eta_dataset_cache", scale);
  } else {
    return Fail("pass --dataset=<name> or --graph=<path>; datasets: slashdot, "
                "livejournal, orkut, rmat, uk2005, sk2005, uk2006");
  }
  // Weighted requests (SSSP/SSWP) need edge weights on the resident graph.
  if (!csr.HasWeights()) csr.DeriveWeights(1);
  std::printf("graph: %u vertices, %u edges, topology %s\n", csr.NumVertices(),
              csr.NumEdges(), util::FormatBytes(csr.TopologyBytes()).c_str());

  // Multi-graph catalog: graph 0 is the primary load above; 1..N-1 are
  // scaled-down variants of the same dataset (the bench_overlap_serve
  // idiom), so the fleet actually stages, evicts, and pre-stages.
  std::vector<graph::Csr> extra_graphs;
  for (uint32_t g = 1; g < catalog_n; ++g) {
    static constexpr double kSubScales[] = {0.8, 0.65, 0.5};
    extra_graphs.push_back(graph::BuildDatasetCached(
        dataset, "eta_dataset_cache", scale * kSubScales[(g - 1) % 3]));
    if (!extra_graphs.back().HasWeights()) extra_graphs.back().DeriveWeights(1);
  }
  std::vector<const graph::Csr*> graphs = {&csr};
  for (const graph::Csr& g : extra_graphs) graphs.push_back(&g);
  uint32_t min_vertices = csr.NumVertices();
  for (const graph::Csr* g : graphs) {
    min_vertices = std::min(min_vertices, g->NumVertices());
  }
  if (catalog_n > 1) {
    std::printf("catalog: %u graph(s), smallest %u vertices\n", catalog_n,
                min_vertices);
  }

  std::vector<serve::Request> trace;
  if (!trace_path.empty()) {
    std::string trace_error;
    auto loaded = serve::LoadTraceFile(trace_path, &trace_error);
    if (!loaded) return Fail(trace_error);
    trace = std::move(*loaded);
    for (const serve::Request& r : trace) {
      if (r.source >= csr.NumVertices()) {
        return Fail("trace request #" + std::to_string(r.id) + " source " +
                    std::to_string(r.source) + " is out of range (graph has " +
                    std::to_string(csr.NumVertices()) + " vertices)");
      }
    }
    std::printf("trace: %zu request(s) from %s\n", trace.size(), trace_path.c_str());
  } else if (!arrivals_spec.empty()) {
    serve::ArrivalOptions arrival_options;
    std::string arrival_error;
    if (!serve::ParseArrivalSpec(arrivals_spec, &arrival_options, &arrival_error)) {
      return Fail("bad --arrivals: " + arrival_error);
    }
    // The loaded catalog is the ground truth for valid graph ids; the
    // spec's own `graphs` key cannot exceed it.
    arrival_options.num_graphs = static_cast<uint32_t>(graphs.size());
    trace = serve::GenerateArrivals(min_vertices, arrival_options);
    std::printf("arrivals: %s, %zu request(s), %.6g qps average, seed %llu\n",
                serve::ArrivalProfileName(arrival_options.profile), trace.size(),
                arrival_options.rate_qps,
                static_cast<unsigned long long>(arrival_options.seed));
  } else {
    serve::TraceOptions trace_options;
    trace_options.num_requests = requests;
    trace_options.mean_interarrival_ms = mean_arrival;
    trace_options.bfs_fraction = bfs_frac;
    trace_options.sssp_fraction = sssp_frac;
    trace_options.deadline_ms = deadline > 0 ? deadline : serve::kNoDeadline;
    trace_options.seed = seed;
    trace = serve::GenerateTrace(min_vertices, trace_options);
    if (catalog_n > 1) {
      // Round-robin the catalog so every shard cycles through graphs
      // (sources stay valid: they were drawn below min_vertices).
      for (size_t i = 0; i < trace.size(); ++i) {
        trace[i].graph_id = static_cast<uint32_t>(i % graphs.size());
      }
    }
  }

  serve::ServeReport report;
  if (shards > 0) {
    serve::ShardedOptions sharded;
    sharded.base = options;
    sharded.shards = shards;
    sharded.device_mem_budget_bytes = mem_budget;
    sharded.async_dispatch = async;
    sharded.plant = plant;
    sharded.autoscale = autoscale;
    report = serve::ShardedEngine(sharded).ServeMany(graphs, trace);
  } else {
    report = serve::ServeEngine(options).Serve(csr, trace);
  }
  std::printf("%s\n", report.Render("etagraph serve — trace replay").c_str());

  if (detail) {
    for (const auto& q : report.results) {
      std::printf("  #%-4llu %-5s %-9s src=%-8u batch=%-2u queue=%8.3f ms "
                  "latency=%8.3f ms reached=%llu\n",
                  static_cast<unsigned long long>(q.id), core::AlgoName(q.algo),
                  serve::QueryStatusName(q.status), q.source, q.batch_size,
                  q.status == serve::QueryStatus::kOk ||
                          q.status == serve::QueryStatus::kDegraded
                      ? q.QueueMs()
                      : 0.0,
                  q.status == serve::QueryStatus::kOk ||
                          q.status == serve::QueryStatus::kDegraded
                      ? q.LatencyMs()
                      : 0.0,
                  static_cast<unsigned long long>(q.reached_vertices));
    }
  }

  if (!replay_out.empty()) {
    std::ofstream out(replay_out);
    out << serve::RenderReplayText(report.results);
    if (!out) return Fail("cannot write --replay-out file '" + replay_out + "'");
    std::printf("replay outcomes written to %s\n", replay_out.c_str());
  }

  if (!trace_request_out.empty()) {
    const std::string json = report.RenderRequestTraceJson();
    std::string parse_error;
    if (!util::JsonParse(json, &parse_error)) {
      return Fail("request-trace JSON failed self-validation: " + parse_error);
    }
    std::ofstream out(trace_request_out);
    out << json;
    if (!out) {
      return Fail("cannot write --trace-request-out file '" + trace_request_out + "'");
    }
    std::printf("request traces: %zu request(s) -> %s\n",
                report.request_traces.size(), trace_request_out.c_str());
  }

  if (!blackbox_out.empty()) {
    std::ofstream out(blackbox_out);
    out << report.RenderBlackbox();
    if (!out) return Fail("cannot write --blackbox-out file '" + blackbox_out + "'");
    std::printf("flight-recorder dump(s): %zu -> %s\n", report.blackbox.size(),
                blackbox_out.c_str());
  }

  if (!trace_json.empty()) {
    const std::string json = prof::RenderChromeTrace(
        report.trace_spans,
        {{"dataset", !dataset.empty() ? dataset : graph_path},
         {"mode", mode_name}});
    std::string parse_error;
    if (!util::JsonParse(json, &parse_error)) {
      return Fail("trace JSON failed self-validation: " + parse_error);
    }
    std::ofstream out(trace_json);
    out << json;
    if (!out) return Fail("cannot write --trace-json file '" + trace_json + "'");
    std::printf("trace: %zu spans -> %s (open at https://ui.perfetto.dev)\n",
                report.trace_spans.size(), trace_json.c_str());
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << report.metrics.RenderPrometheus();
    if (!out) return Fail("cannot write --metrics-out file '" + metrics_out + "'");
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }

  if (check_cfg.Enabled()) {
    std::printf("%s", report.check.Render(/*verbose=*/true).c_str());
    if (!check_json.empty()) {
      std::ofstream out(check_json);
      out << report.check.Json() << "\n";
      if (!out) return Fail("cannot write --check-json file '" + check_json + "'");
    }
    if (report.check.ErrorCount() > 0) return 1;
  }
  if (verify_dag) {
    std::printf("%s", report.verify.Render(/*verbose=*/true).c_str());
    if (!verify_json.empty()) {
      std::ofstream out(verify_json);
      out << report.verify.Json() << "\n";
      if (!out) return Fail("cannot write --verify-json file '" + verify_json + "'");
    }
    if (!report.verify.Clean()) return 1;
  }
  return 0;
}
