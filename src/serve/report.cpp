#include "serve/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "trace/tracer.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace eta::serve {

double ServeReport::ThroughputQps() const {
  return makespan_ms > 0 ? static_cast<double>(completed) / (makespan_ms / 1000.0) : 0;
}

double ServeReport::LatencyPercentileMs(double q) const {
  if (latency_us.Count() == 0) return 0;
  return static_cast<double>(latency_us.Percentile(q)) / 1000.0;
}

std::string ServeReport::Render(const std::string& title) const {
  util::Table table({"Metric", "Value"});
  auto row = [&](const std::string& name, const std::string& value) {
    table.AddRow({name, value});
  };
  row("mode", ServeModeName(mode));
  if (async_dispatch) row("dispatch", "async (streams)");
  if (edf) row("queue order", "edf (deadline - service estimate)");
  if (traced) row("traced requests", std::to_string(request_traces.size()));
  row("requests", std::to_string(total_requests));
  row("completed", std::to_string(completed));
  row("rejected", std::to_string(rejected));
  row("timed out", std::to_string(timed_out));
  if (overload.Active()) row("shedded", std::to_string(shedded));
  row("degraded (cpu fallback)", std::to_string(degraded));
  row("dispatches", std::to_string(batches));
  if (memo_configured) row("memo hits", std::to_string(memo_hits));
  if (autoscale_configured) {
    row("shards active (final)", std::to_string(shards_active));
    row("scale events", std::to_string(scale_events.size()));
  }
  if (session_rebuilds > 0) row("session rebuilds", std::to_string(session_rebuilds));
  if (overload.brownout_configured) {
    row("brownout level (final/max)", std::to_string(overload.brownout_level) + "/" +
                                          std::to_string(overload.brownout_max_level));
    row("brownout transitions",
        std::to_string(overload.brownout_transitions.size()));
    row("brownout degraded", std::to_string(overload.brownout_degraded));
  }
  if (overload.budget_configured) {
    row("retry budget granted (retry/rebuild)",
        std::to_string(overload.retry_granted) + "/" +
            std::to_string(overload.rebuild_granted));
    row("retry budget denied (retry/rebuild)",
        std::to_string(overload.retry_denied) + "/" +
            std::to_string(overload.rebuild_denied));
  }
  if (overload.breaker_configured) {
    row("breaker opens", std::to_string(overload.breaker_opens));
    row("breaker probes (failed)", std::to_string(overload.breaker_probes) + " (" +
                                       std::to_string(overload.breaker_probe_failures) +
                                       ")");
  }
  if (faults.launch_failures > 0 || faults.ecc_corrected > 0) {
    row("launch failures", std::to_string(faults.launch_failures));
    row("query retries", std::to_string(faults.retries));
    row("ecc corrected", std::to_string(faults.ecc_corrected));
    row("restaged buffers", std::to_string(faults.restaged_buffers));
    row("restaged bytes", std::to_string(faults.restaged_bytes));
    row("backoff (ms)", util::FormatDouble(faults.backoff_ms, 3));
    row("device lost", faults.device_lost ? "yes" : "no");
  }
  row("graph load (ms)", util::FormatDouble(load_ms, 3));
  row("makespan (ms)", util::FormatDouble(makespan_ms, 3));
  row("throughput (qps, simulated)", util::FormatDouble(ThroughputQps(), 1));
  row("latency p50 (ms)", util::FormatDouble(LatencyPercentileMs(0.50), 3));
  row("latency p95 (ms)", util::FormatDouble(LatencyPercentileMs(0.95), 3));
  row("latency p99 (ms)", util::FormatDouble(LatencyPercentileMs(0.99), 3));
  row("latency p99.9 (ms)", util::FormatDouble(LatencyPercentileMs(0.999), 3));
  row("mean queue wait (ms)", util::FormatDouble(queue_wait_us.Mean() / 1000.0, 3));
  row("max queue depth", std::to_string(queue_depth.Max()));
  row("mean batch occupancy", util::FormatDouble(MeanBatchOccupancy(), 2));
  row("max batch occupancy", std::to_string(batch_occupancy.Max()));
  row("reached vertices (sum)", std::to_string(reached_total));
  if (check.launches_checked > 0) {
    row("etacheck launches", std::to_string(check.launches_checked));
    row("etacheck errors", std::to_string(check.ErrorCount()));
    row("etacheck warnings", std::to_string(check.WarningCount()));
  }
  std::string out = table.Render(title);

  // Per-algo latency split (queue wait vs device service) with exact
  // percentiles, straight from the metrics registry.
  std::vector<std::string> algos;
  for (const CostObservation& c : cost_observations) algos.push_back(c.algo);
  if (!algos.empty()) {
    // The exemplar column (trace id of the slowest request, linking the
    // p99 row to its span tree) appears only on traced runs, keeping
    // untraced output byte-identical.
    std::vector<std::string> split_header = {"Algo",        "Queue p50",   "Queue p95",
                                             "Queue p99",   "Queue p99.9", "Service p50",
                                             "Service p95", "Service p99", "Service p99.9"};
    if (traced) split_header.push_back("Exemplar req");
    util::Table split(split_header);
    for (const std::string& algo : algos) {
      const FixedHistogram* queue =
          metrics.FindHistogram("serve_queue_wait_ms", {{"algo", algo}});
      const FixedHistogram* service =
          metrics.FindHistogram("serve_service_ms", {{"algo", algo}});
      if (queue == nullptr || service == nullptr) continue;
      std::vector<std::string> cells = {algo,
                                        util::FormatDouble(queue->Percentile(50), 3),
                                        util::FormatDouble(queue->Percentile(95), 3),
                                        util::FormatDouble(queue->Percentile(99), 3),
                                        util::FormatDouble(queue->Percentile(99.9), 3),
                                        util::FormatDouble(service->Percentile(50), 3),
                                        util::FormatDouble(service->Percentile(95), 3),
                                        util::FormatDouble(service->Percentile(99), 3),
                                        util::FormatDouble(service->Percentile(99.9), 3)};
      if (traced) {
        auto it = latency_exemplars.find(algo);
        cells.push_back(it == latency_exemplars.end() ? "-" : std::to_string(it->second));
      }
      split.AddRow(cells);
    }
    out += "\n";
    out += split.Render("Latency split (ms)");

    util::Table cost({"Algo", "Queries", "Mean service ms", "Mean |est err| ms",
                      "Mean cycles"});
    for (const CostObservation& c : cost_observations) {
      cost.AddRow({c.algo, std::to_string(c.queries),
                   util::FormatDouble(c.mean_service_ms, 3),
                   util::FormatDouble(c.mean_abs_error_ms, 3),
                   util::FormatDouble(c.mean_cycles, 0)});
    }
    out += "\n";
    out += cost.Render("Cost model observations");
  }

  if (!slo_stats.empty()) {
    util::Table slo({"Class", "Target ms", "Offered", "Ok", "Degraded", "Shed",
                     "Timed out", "Rejected", "Goodput %", "p50 ms", "p99 ms"});
    for (const SloStat& s : slo_stats) {
      slo.AddRow({SloClassName(s.slo), util::FormatDouble(s.slo_target_ms, 1),
                  std::to_string(s.offered), std::to_string(s.ok),
                  std::to_string(s.degraded), std::to_string(s.shedded),
                  std::to_string(s.timed_out), std::to_string(s.rejected),
                  util::FormatDouble(100.0 * s.Goodput(), 1),
                  util::FormatDouble(s.p50_ms, 3), util::FormatDouble(s.p99_ms, 3)});
    }
    out += "\n";
    out += slo.Render("SLO classes");
  }

  // Burn-rate alert evaluations; present only under --slo-alerts, so
  // legacy output never carries an alert row.
  if (!alerts.empty()) {
    util::Table alert({"Class", "Samples", "Bad", "Fired", "Max fast burn", "State"});
    for (const trace::AlertSeries& a : alerts) {
      alert.AddRow({a.name, std::to_string(a.samples), std::to_string(a.bad),
                    std::to_string(a.fired), util::FormatDouble(a.max_fast_burn, 2),
                    a.firing_at_end ? "FIRING" : "ok"});
    }
    out += "\n";
    out += alert.Render("SLO burn-rate alerts");
  }

  if (!shard_stats.empty()) {
    // The stream-dispatch columns appear only on async replays, keeping
    // sync fleet output byte-identical to the pre-stream layout.
    std::vector<std::string> header = {"Shard",    "Dispatches", "Served", "Degraded",
                                       "In",       "Out",        "Rebuilds", "Evict",
                                       "Reload",   "Faults",     "Busy ms"};
    if (async_dispatch) {
      header.insert(header.end(), {"Prestage", "Prestage ms", "Overlap ms"});
    }
    header.push_back("State");
    util::Table shards(header);
    for (const ShardStat& s : shard_stats) {
      std::vector<std::string> cells = {
          std::to_string(s.shard),        std::to_string(s.dispatches),
          std::to_string(s.served),       std::to_string(s.degraded),
          std::to_string(s.rerouted_in),  std::to_string(s.rerouted_out),
          std::to_string(s.rebuilds),     std::to_string(s.evictions),
          std::to_string(s.reloads),      std::to_string(s.launch_failures),
          util::FormatDouble(s.busy_ms, 3)};
      if (async_dispatch) {
        cells.push_back(std::to_string(s.prestages));
        cells.push_back(util::FormatDouble(s.prestage_ms, 3));
        cells.push_back(util::FormatDouble(s.overlap_ms, 3));
      }
      cells.push_back(s.dead ? "dead" : "up");
      shards.AddRow(cells);
    }
    out += "\n";
    out += shards.Render("Shards");
  }
  return out;
}

namespace {

/// snprintf-append, keeping the fixed-precision formatting that makes two
/// identically-seeded replays byte-identical.
template <typename... Args>
void Appendf(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n <= 0) return;
  if (static_cast<size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<size_t>(n));
    return;
  }
  // Rare long chunk: retry into the string itself rather than truncate.
  const size_t base = out.size();
  out.resize(base + static_cast<size_t>(n) + 1);
  std::snprintf(out.data() + base, static_cast<size_t>(n) + 1, fmt, args...);
  out.resize(base + static_cast<size_t>(n));
}

}  // namespace

std::string ServeReport::Json() const {
  std::string out;
  out.reserve(2048);
  Appendf(out,
          "{\"mode\":\"%s\",\"requests\":%" PRIu64 ",\"completed\":%" PRIu64
          ",\"rejected\":%" PRIu64 ",\"timed_out\":%" PRIu64 ",\"degraded\":%" PRIu64
          ",\"dispatches\":%" PRIu64 ",\"session_rebuilds\":%" PRIu64
          ",\"load_ms\":%.4f,\"makespan_ms\":%.4f,\"throughput_qps\":%.3f"
          ",\"latency_p50_ms\":%.4f,\"latency_p95_ms\":%.4f,\"latency_p99_ms\":%.4f"
          ",\"latency_p999_ms\":%.4f"
          ",\"mean_batch_occupancy\":%.3f,\"reached_total\":%" PRIu64
          ",\"launch_failures\":%" PRIu64 ",\"query_retries\":%" PRIu64
          ",\"ecc_corrected\":%" PRIu64 ",\"restaged_buffers\":%" PRIu64
          ",\"restaged_bytes\":%" PRIu64 ",\"backoff_ms\":%.4f,\"device_lost\":%s"
          ",\"check_launches\":%" PRIu64 ",\"check_errors\":%" PRIu64
          ",\"check_warnings\":%" PRIu64,
          util::JsonEscape(ServeModeName(mode)).c_str(), total_requests, completed,
          rejected, timed_out, degraded, batches, session_rebuilds, load_ms, makespan_ms,
          ThroughputQps(), LatencyPercentileMs(0.50), LatencyPercentileMs(0.95),
          LatencyPercentileMs(0.99), LatencyPercentileMs(0.999), MeanBatchOccupancy(),
          reached_total,
          faults.launch_failures, faults.retries, faults.ecc_corrected,
          faults.restaged_buffers, faults.restaged_bytes, faults.backoff_ms,
          faults.device_lost ? "true" : "false", check.launches_checked,
          static_cast<uint64_t>(check.ErrorCount()),
          static_cast<uint64_t>(check.WarningCount()));
  // Emitted only on async replays so sync JSON stays byte-identical.
  if (async_dispatch) out += ",\"async_dispatch\":true";
  // Same contract for the million-user scheduler features (section 15):
  // keys appear only when the feature was configured.
  if (edf) out += ",\"edf\":true";
  if (memo_configured) Appendf(out, ",\"memo_hits\":%" PRIu64, memo_hits);
  if (autoscale_configured) {
    Appendf(out, ",\"autoscale\":{\"shards_active\":%u,\"scale_events\":[", shards_active);
    for (size_t i = 0; i < scale_events.size(); ++i) {
      const LadderTransition& tr = scale_events[i];
      if (i > 0) out += ",";
      Appendf(out, "{\"at_ms\":%.4f,\"from\":%u,\"to\":%u}", tr.at_ms, tr.from_level,
              tr.to_level);
    }
    out += "]}";
  }
  // Emitted only on traced replays (same contract).
  if (traced) {
    Appendf(out, ",\"traced\":true,\"traced_requests\":%" PRIu64,
            static_cast<uint64_t>(request_traces.size()));
  }
  // Overload-control block: emitted only when an overload feature was
  // configured or the trace carried SLO classes, so legacy JSON stays
  // byte-identical (same contract as async_dispatch).
  if (overload.Active()) {
    Appendf(out, ",\"shedded\":%" PRIu64, shedded);
    Appendf(out,
            ",\"overload\":{\"brownout_level\":%u,\"brownout_max_level\":%u"
            ",\"brownout_transitions\":%" PRIu64 ",\"brownout_degraded\":%" PRIu64
            ",\"retry_granted\":%" PRIu64 ",\"retry_denied\":%" PRIu64
            ",\"rebuild_granted\":%" PRIu64 ",\"rebuild_denied\":%" PRIu64
            ",\"breaker_opens\":%" PRIu64 ",\"breaker_probes\":%" PRIu64
            ",\"breaker_probe_failures\":%" PRIu64 "}",
            overload.brownout_level, overload.brownout_max_level,
            static_cast<uint64_t>(overload.brownout_transitions.size()),
            overload.brownout_degraded, overload.retry_granted, overload.retry_denied,
            overload.rebuild_granted, overload.rebuild_denied, overload.breaker_opens,
            overload.breaker_probes, overload.breaker_probe_failures);
  }
  if (!slo_stats.empty()) {
    out += ",\"slo\":[";
    for (size_t i = 0; i < slo_stats.size(); ++i) {
      const SloStat& s = slo_stats[i];
      if (i > 0) out += ",";
      Appendf(out,
              "{\"class\":\"%s\",\"target_ms\":%.1f,\"offered\":%" PRIu64
              ",\"ok\":%" PRIu64 ",\"degraded\":%" PRIu64 ",\"shedded\":%" PRIu64
              ",\"timed_out\":%" PRIu64 ",\"rejected\":%" PRIu64 ",\"slo_met\":%" PRIu64
              ",\"goodput\":%.4f,\"p50_ms\":%.4f,\"p99_ms\":%.4f}",
              SloClassName(s.slo), s.slo_target_ms, s.offered, s.ok, s.degraded,
              s.shedded, s.timed_out, s.rejected, s.slo_met, s.Goodput(), s.p50_ms,
              s.p99_ms);
    }
    out += "]";
  }

  // Per-algo latency split + cost-model observations.
  out += ",\"algos\":[";
  for (size_t i = 0; i < cost_observations.size(); ++i) {
    const CostObservation& c = cost_observations[i];
    if (i > 0) out += ",";
    Appendf(out, "{\"algo\":\"%s\",\"queries\":%" PRIu64 ",\"mean_service_ms\":%.4f"
                 ",\"mean_abs_cost_error_ms\":%.4f,\"mean_cycles\":%.1f",
            util::JsonEscape(c.algo).c_str(), c.queries, c.mean_service_ms,
            c.mean_abs_error_ms, c.mean_cycles);
    const FixedHistogram* queue =
        metrics.FindHistogram("serve_queue_wait_ms", {{"algo", c.algo}});
    const FixedHistogram* service =
        metrics.FindHistogram("serve_service_ms", {{"algo", c.algo}});
    if (queue != nullptr && service != nullptr) {
      Appendf(out,
              ",\"queue_wait_p50_ms\":%.4f,\"queue_wait_p95_ms\":%.4f"
              ",\"queue_wait_p99_ms\":%.4f,\"queue_wait_p999_ms\":%.4f"
              ",\"service_p50_ms\":%.4f,\"service_p95_ms\":%.4f"
              ",\"service_p99_ms\":%.4f,\"service_p999_ms\":%.4f",
              queue->Percentile(50), queue->Percentile(95), queue->Percentile(99),
              queue->Percentile(99.9), service->Percentile(50), service->Percentile(95),
              service->Percentile(99), service->Percentile(99.9));
    }
    if (traced) {
      auto it = latency_exemplars.find(c.algo);
      if (it != latency_exemplars.end()) {
        Appendf(out, ",\"exemplar_request\":%" PRIu64, it->second);
      }
    }
    out += "}";
  }
  out += "]";
  if (!shard_stats.empty()) {
    out += ",\"shards\":[";
    for (size_t i = 0; i < shard_stats.size(); ++i) {
      const ShardStat& s = shard_stats[i];
      if (i > 0) out += ",";
      Appendf(out,
              "{\"shard\":%u,\"dispatches\":%" PRIu64 ",\"served\":%" PRIu64
              ",\"degraded\":%" PRIu64 ",\"rerouted_in\":%" PRIu64
              ",\"rerouted_out\":%" PRIu64 ",\"rebuilds\":%" PRIu64
              ",\"evictions\":%" PRIu64 ",\"reloads\":%" PRIu64
              ",\"launch_failures\":%" PRIu64 ",\"dead\":%s,\"busy_ms\":%.4f"
              ",\"peak_resident_bytes\":%" PRIu64,
              s.shard, s.dispatches, s.served, s.degraded, s.rerouted_in,
              s.rerouted_out, s.rebuilds, s.evictions, s.reloads, s.launch_failures,
              s.dead ? "true" : "false", s.busy_ms, s.peak_resident_bytes);
      if (async_dispatch) {
        Appendf(out, ",\"prestages\":%" PRIu64 ",\"prestage_ms\":%.4f,\"overlap_ms\":%.4f",
                s.prestages, s.prestage_ms, s.overlap_ms);
      }
      out += "}";
    }
    out += "]";
  }
  // Burn-rate alert block: present only under --slo-alerts.
  if (!alerts.empty()) {
    out += ",\"alerts\":[";
    for (size_t i = 0; i < alerts.size(); ++i) {
      const trace::AlertSeries& a = alerts[i];
      if (i > 0) out += ",";
      Appendf(out,
              "{\"class\":\"%s\",\"samples\":%" PRIu64 ",\"bad\":%" PRIu64
              ",\"fired\":%" PRIu64 ",\"firing\":%s,\"max_fast_burn\":%.4f"
              ",\"transitions\":[",
              util::JsonEscape(a.name).c_str(), a.samples, a.bad, a.fired,
              a.firing_at_end ? "true" : "false", a.max_fast_burn);
      for (size_t t = 0; t < a.transitions.size(); ++t) {
        const trace::AlertTransition& tr = a.transitions[t];
        if (t > 0) out += ",";
        Appendf(out,
                "{\"at_ms\":%.4f,\"firing\":%s,\"fast_burn\":%.4f,\"slow_burn\":%.4f}",
                tr.at_ms, tr.firing ? "true" : "false", tr.fast_burn, tr.slow_burn);
      }
      out += "]}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string ServeReport::RenderRequestTraceJson() const {
  if (!traced) return "";
  std::string out = "{\"traces\":[";
  bool first_trace = true;
  for (const auto& [id, events] : request_traces) {
    if (!first_trace) out += ",";
    first_trace = false;
    Appendf(out, "\n {\"id\":%" PRIu64 ",\"events\":[", id);
    bool first_event = true;
    for (const trace::TraceEvent& e : events) {
      if (!first_event) out += ",";
      first_event = false;
      out += "\n  ";
      out += trace::RenderTraceEventJson(e);
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string ServeReport::RenderBlackbox() const {
  std::string out;
  for (const trace::FlightDump& d : blackbox) out += d.text;
  return out;
}

}  // namespace eta::serve
