// Fig 4 reproduction: execution status (data transfer vs computation) over
// time while EtaGraph w/o UMP runs SSSP — rendered as an ASCII strip chart
// of the simulated timeline, plus the overlap fraction. The paper reports
// transfer and compute overlapping for 60-80% of the run, with uk-2005
// showing several distinct transfer bursts.
#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, {"livejournal", "orkut", "rmat", "uk2005"});

  std::printf("Fig 4 - EtaGraph w/o UMP running SSSP ('#' compute, '=' transfer, "
              "'%%' overlapped)\n\n");
  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    core::EtaGraphOptions options;
    options.memory_mode = core::MemoryMode::kUnifiedOnDemand;
    auto report = core::EtaGraph(options).Run(csr, core::Algo::kSssp,
                                              graph::kQuerySource);
    double transfer = report.timeline.TotalMs(sim::SpanKind::kTransferH2D);
    double overlap = report.timeline.OverlapMs();
    std::printf("%-12s total=%8.3fms transfer=%8.3fms overlap=%5.1f%% of transfer\n",
                graph::FindDataset(name)->paper_name.c_str(), report.total_ms, transfer,
                transfer > 0 ? 100.0 * overlap / transfer : 0.0);
    std::printf("  %s\n\n", report.timeline.RenderAscii(report.total_ms, 96).c_str());
  }
  std::printf("shape: most transfer time overlaps compute (paper: 60-80%% of the run);\n"
              "uk-2005 shows multiple transfer bursts because later regions of the CSR\n"
              "only fault in when the traversal reaches them.\n");
  return 0;
}
