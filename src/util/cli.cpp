#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace eta::util {

std::optional<CommandLine> CommandLine::Parse(int argc, const char* const* argv,
                                              std::string* error) {
  CommandLine cl;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      cl.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      if (error) *error = "bare '--' is not a valid flag";
      return std::nullopt;
    }
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      cl.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" form only when the next token is not itself a flag;
    // otherwise treat as boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      cl.flags_[body] = argv[++i];
    } else {
      cl.flags_[body] = "true";
    }
  }
  return cl;
}

std::string CommandLine::GetString(const std::string& name, const std::string& def) const {
  read_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t def) const {
  read_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  ETA_CHECK(end && *end == '\0');
  return v;
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  read_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  ETA_CHECK(end && *end == '\0');
  return v;
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  read_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> CommandLine::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!read_.contains(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace eta::util
