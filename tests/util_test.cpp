// Tests for src/util: rng determinism, CLI parsing, table rendering,
// units, histogram.
#include <gtest/gtest.h>

#include <set>

#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace eta::util {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, BoundedStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(SplitMix64, BoundedCoversRange) {
  SplitMix64 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, StreamsAreIndependent) {
  auto s0 = SplitMix64::Stream(5, 0);
  auto s1 = SplitMix64::Stream(5, 1);
  EXPECT_NE(s0.Next(), s1.Next());
}

TEST(Mix64, PairHashOrderSensitive) {
  EXPECT_NE(MixPair(1, 2), MixPair(2, 1));
}

TEST(CommandLine, ParsesAllForms) {
  const char* argv[] = {"prog", "pos", "--alpha=3", "--beta", "4", "--flag"};
  std::string error;
  auto cl = CommandLine::Parse(6, argv, &error);
  ASSERT_TRUE(cl.has_value());
  EXPECT_EQ(cl->GetInt("alpha", 0), 3);
  EXPECT_EQ(cl->GetInt("beta", 0), 4);
  EXPECT_TRUE(cl->GetBool("flag", false));
  ASSERT_EQ(cl->Positional().size(), 1u);
  EXPECT_EQ(cl->Positional()[0], "pos");
}

TEST(CommandLine, DefaultsApply) {
  const char* argv[] = {"prog"};
  std::string error;
  auto cl = CommandLine::Parse(1, argv, &error);
  ASSERT_TRUE(cl.has_value());
  EXPECT_EQ(cl->GetString("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(cl->GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(cl->GetBool("missing", false));
}

TEST(CommandLine, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  std::string error;
  auto cl = CommandLine::Parse(3, argv, &error);
  ASSERT_TRUE(cl.has_value());
  cl->GetInt("used", 0);
  auto unused = cl->UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Table, RendersAllRows) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRule();
  t.AddRow({"b", "22"});
  std::string s = t.Render("title");
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(FormatDouble, TrimsZeros) {
  EXPECT_EQ(FormatDouble(1.50, 2), "1.5");
  EXPECT_EQ(FormatDouble(2.00, 2), "2");
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
}

TEST(FormatMs, PicksUnits) {
  EXPECT_EQ(FormatMs(2500), "2.5 s");
  EXPECT_EQ(FormatMs(12.34), "12.3 ms");
  EXPECT_EQ(FormatMs(0.5), "500 us");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kMiB), "2.00 MB");
}

TEST(Units, ParseBytesRoundTrips) {
  EXPECT_EQ(ParseBytes("4096"), 4096u);
  EXPECT_EQ(ParseBytes("4K"), 4 * kKiB);
  EXPECT_EQ(ParseBytes("144MB"), 144 * kMiB);
  EXPECT_EQ(ParseBytes("2GiB"), 2 * kGiB);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  h.Add(4);
  h.Add(8);
  h.Add(12);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 24u);
  EXPECT_EQ(h.Min(), 4u);
  EXPECT_EQ(h.Max(), 12u);
  EXPECT_DOUBLE_EQ(h.Mean(), 8.0);
  EXPECT_EQ(h.Percentile(0.5), 8u);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

// --- JSON (the one escaper/validator behind every JSON emitter) ---------------

TEST(Json, EscapePassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("traverse_full"), "traverse_full");
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("ünïcode → ok"), "ünïcode → ok");  // UTF-8 untouched
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(Json, ParseAcceptsRoundTrippedEscapes) {
  const std::string original = "kernel \"x\"\\path\nline\x01!";
  auto doc = JsonParse("{\"k\":\"" + JsonEscape(original) + "\"}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->IsObject());
  ASSERT_NE(doc->Find("k"), nullptr);
  EXPECT_EQ(doc->Find("k")->string, original);
}

TEST(Json, ParseHandlesScalarsArraysAndNesting) {
  auto doc = JsonParse(
      "{\"a\":1.5,\"b\":[true,false,null,-2e3],\"c\":{\"d\":\"e\"}}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->Find("a")->number, 1.5);
  const JsonValue* b = doc->Find("b");
  ASSERT_TRUE(b->IsArray());
  ASSERT_EQ(b->array.size(), 4u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_EQ(b->array[2].kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(b->array[3].number, -2000.0);
  EXPECT_EQ(doc->Find("c")->Find("d")->string, "e");
}

TEST(Json, ParseRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(JsonParse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonParse("{\"a\":1,}").has_value());     // trailing comma
  EXPECT_FALSE(JsonParse("{\"a\":01}").has_value());     // leading zero
  EXPECT_FALSE(JsonParse("{\"a\":1} x").has_value());    // trailing garbage
  EXPECT_FALSE(JsonParse("{\"a\":\"\n\"}").has_value()); // raw control char
  EXPECT_FALSE(JsonParse("nul").has_value());
  EXPECT_FALSE(JsonParse("").has_value());
}

}  // namespace
}  // namespace eta::util
