#include "sim/profiler.hpp"

#include <sstream>

namespace eta::sim {

Counters& Counters::operator+=(const Counters& other) {
  warp_instructions += other.warp_instructions;
  thread_instructions += other.thread_instructions;
  l1_accesses += other.l1_accesses;
  l1_hits += other.l1_hits;
  l2_accesses += other.l2_accesses;
  l2_hits += other.l2_hits;
  dram_read_transactions += other.dram_read_transactions;
  dram_write_transactions += other.dram_write_transactions;
  shared_accesses += other.shared_accesses;
  atomic_operations += other.atomic_operations;
  mem_latency_cycles += other.mem_latency_cycles;
  elapsed_cycles += other.elapsed_cycles;
  launches += other.launches;
  return *this;
}

double Counters::Ipc() const {
  return elapsed_cycles > 0 ? static_cast<double>(warp_instructions) / elapsed_cycles : 0;
}

double Counters::IpcPerSm(uint32_t num_sms) const {
  return num_sms ? Ipc() / num_sms : 0;
}

double Counters::L1HitRate() const {
  return l1_accesses ? static_cast<double>(l1_hits) / l1_accesses : 0;
}

double Counters::L2HitRate() const {
  return l2_accesses ? static_cast<double>(l2_hits) / l2_accesses : 0;
}

double Counters::L1Throughput() const {
  return elapsed_cycles > 0 ? static_cast<double>(L1Bytes()) / elapsed_cycles : 0;
}

double Counters::L2Throughput() const {
  return elapsed_cycles > 0 ? static_cast<double>(L2Bytes()) / elapsed_cycles : 0;
}

double Counters::WarpEfficiency() const {
  return warp_instructions
             ? static_cast<double>(thread_instructions) / (32.0 * warp_instructions)
             : 0;
}

double Counters::DramThroughput() const {
  return elapsed_cycles > 0 ? static_cast<double>(DramReadBytes()) / elapsed_cycles : 0;
}

Counters Counters::Since(const Counters& base) const {
  Counters d;
  d.warp_instructions = warp_instructions - base.warp_instructions;
  d.thread_instructions = thread_instructions - base.thread_instructions;
  d.l1_accesses = l1_accesses - base.l1_accesses;
  d.l1_hits = l1_hits - base.l1_hits;
  d.l2_accesses = l2_accesses - base.l2_accesses;
  d.l2_hits = l2_hits - base.l2_hits;
  d.dram_read_transactions = dram_read_transactions - base.dram_read_transactions;
  d.dram_write_transactions = dram_write_transactions - base.dram_write_transactions;
  d.shared_accesses = shared_accesses - base.shared_accesses;
  d.atomic_operations = atomic_operations - base.atomic_operations;
  d.mem_latency_cycles = mem_latency_cycles - base.mem_latency_cycles;
  d.elapsed_cycles = elapsed_cycles - base.elapsed_cycles;
  d.launches = launches - base.launches;
  return d;
}

std::string Counters::Summary() const {
  std::ostringstream out;
  out << "instr=" << warp_instructions << " cycles=" << static_cast<uint64_t>(elapsed_cycles)
      << " L1=" << l1_hits << "/" << l1_accesses << " L2=" << l2_hits << "/" << l2_accesses
      << " dramRd=" << dram_read_transactions << " atomics=" << atomic_operations;
  return out.str();
}

}  // namespace eta::sim
