# Empty compiler generated dependencies file for bench_ext_analytics.
# This may be replaced when dependencies are built.
