// Text trace files for the serving engine — replay recorded workloads.
//
// One request per line, whitespace-separated:
//
//   arrival_ms algo source [deadline_ms] [priority]
//
// where algo is bfs | sssp | sswp (case-insensitive), deadline_ms of 0
// means no deadline (kNoDeadline), and priority defaults to 0. Blank lines
// and lines starting with '#' are ignored. Requests must appear in
// non-decreasing arrival order (the engine's replay contract); ids are
// assigned 0..n-1 in file order. Parse failures return std::nullopt with a
// line-numbered message in *error.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/types.hpp"

namespace eta::serve {

/// Parses trace text (see file header for the format). On failure returns
/// std::nullopt and, when `error` is non-null, a message naming the
/// offending line.
std::optional<std::vector<Request>> ParseTraceText(std::string_view text,
                                                   std::string* error);

/// Reads and parses the trace file at `path`. Unreadable files report
/// through `error` like a parse failure.
std::optional<std::vector<Request>> LoadTraceFile(const std::string& path,
                                                  std::string* error);

/// Renders per-request terminal outcomes as diffable replay text — one line
/// per result, in the order given (the engine sorts by id):
///
///   id status algo source reached batch start_ms finish_ms
///
/// where status is ok | rejected | timed-out | degraded and the two times
/// are fixed four-decimal simulated milliseconds. A '#' header names the
/// columns. Two identical replays render byte-identical text, so the files
/// diff cleanly across runs, seeds, and fault configurations.
std::string RenderReplayText(const std::vector<QueryResult>& results);

/// Inverse of RenderReplayText (blank lines and '#' comments ignored).
/// Returns the parsed results, or nullopt with a line-numbered message in
/// *error. Fields not present in the text (queue metrics) are zero.
std::optional<std::vector<QueryResult>> ParseReplayText(std::string_view text,
                                                        std::string* error);

}  // namespace eta::serve
