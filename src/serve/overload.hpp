// Overload-control building blocks (DESIGN.md §13): the hysteretic ladders
// behind pressure shedding and brownout, the per-shard circuit breaker, and
// the report finalizer that turns per-request outcomes into per-SLO-class
// accounting and Prometheus families.
//
// Everything here is plain deterministic state driven by the simulated
// clock — no wall time, no randomness — so double runs replay
// byte-identically. The router owns the integration (admission precedence,
// probe dispatches); these classes only hold the state machines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/retry_budget.hpp"
#include "serve/report.hpp"
#include "serve/types.hpp"

namespace eta::serve {

/// A multi-level threshold ladder with hysteresis. Level L (1-based) is
/// entered when the observed value reaches enter_thresholds[L-1] and left
/// only when the value drops below enter_thresholds[L-1] * hysteresis —
/// so a value oscillating around a threshold cannot flap the level. A
/// non-positive threshold disables that level and all above it. Both the
/// brownout ladder and the class-ordered pressure-shed ladder are
/// instances; every level change is recorded with its simulated timestamp.
///
/// Multi-level jumps: a single observation that crosses two or more
/// thresholds records exactly ONE transition ({from, to} spanning the whole
/// jump), not one per level — a transition is "the level changed at this
/// observation", and consumers (report renderers, burn-rate/trace readers,
/// the autoscaler) count transitions, not levels crossed. Pinned by
/// OverloadTest.LadderMultiLevelJumpRecordsOneTransition.
class HysteresisLadder {
 public:
  HysteresisLadder(std::vector<double> enter_thresholds, double hysteresis);

  /// Observe `value` at `now_ms`; returns the (possibly new) level.
  uint32_t Update(double value, double now_ms);

  uint32_t level() const { return level_; }
  uint32_t max_level() const { return max_level_; }
  const std::vector<LadderTransition>& transitions() const { return transitions_; }

 private:
  std::vector<double> enter_;
  double hysteresis_;
  uint32_t level_ = 0;
  uint32_t max_level_ = 0;
  std::vector<LadderTransition> transitions_;
};

/// Per-shard circuit breaker. Closed shards route normally. A dispatch-level
/// device failure opens the breaker: the router drains the shard's queue and
/// routes around it for a cooldown that grows by `backoff` per consecutive
/// failure. When the cooldown expires the breaker half-opens: the router may
/// admit a single probe request (AllowRoute answers true only while the
/// shard's queue is empty); the probe dispatch's outcome closes the breaker
/// (full traffic returns) or re-opens it for a longer cooldown.
class CircuitBreaker {
 public:
  struct Options {
    double cooldown_ms = 0;  // 0 disables the breaker entirely
    double backoff = 2.0;
  };
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(Options options) : options_(options) {}

  bool Enabled() const { return options_.cooldown_ms > 0; }

  /// Routing gate, called per candidate shard at admission. May transition
  /// kOpen -> kHalfOpen when the cooldown has expired.
  bool AllowRoute(double now_ms, bool queue_empty);

  /// Side-effect-free preview of AllowRoute, for backlog estimation passes
  /// that must not consume the half-open transition or count probes.
  bool WouldAllow(double now_ms, bool queue_empty) const;

  /// Called by the router when a request is actually admitted into a shard
  /// whose breaker is half-open: that admission IS the probe dispatch, so
  /// this is the single place probes are counted (AllowRoute only gates).
  void OnProbeAdmitted();

  void OnDispatchSuccess();
  void OnDispatchFailure(double now_ms);

  State state() const { return state_; }
  uint64_t opens() const { return opens_; }
  uint64_t probes() const { return probes_; }
  uint64_t probe_failures() const { return probe_failures_; }

 private:
  Options options_;
  State state_ = State::kClosed;
  double open_until_ms_ = 0;
  uint32_t consecutive_failures_ = 0;
  uint64_t opens_ = 0;
  uint64_t probes_ = 0;
  uint64_t probe_failures_ = 0;
};

/// Fills the overload side of a finished report from its per-request
/// results: configured-feature flags, retry-budget counters (from `budget`,
/// may be null), per-class SloStat rows, report->shedded, and the
/// per-class / brownout / budget / breaker Prometheus families. Brownout and
/// breaker counters in report->overload must already be set by the engine.
/// On a legacy run (no features configured, classless trace) this appends
/// nothing and every report byte stays identical.
void FinalizeOverloadReport(const OverloadOptions& options, const core::RetryBudget* budget,
                            ServeReport* report);

}  // namespace eta::serve
