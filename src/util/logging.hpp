// Minimal leveled logger. Single-threaded by design (the simulator is
// deterministic and single-threaded); output goes to stderr so bench
// binaries can keep stdout clean for table data.
#pragma once

#include <sstream>
#include <string>

namespace eta::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line: "[LEVEL] message".
void LogLine(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace eta::util

#define ETA_LOG(level) ::eta::util::internal::LogMessage(::eta::util::LogLevel::k##level)
