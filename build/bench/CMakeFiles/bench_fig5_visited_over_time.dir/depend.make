# Empty dependencies file for bench_fig5_visited_over_time.
# This may be replaced when dependencies are built.
