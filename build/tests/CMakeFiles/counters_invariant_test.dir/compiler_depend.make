# Empty compiler generated dependencies file for counters_invariant_test.
# This may be replaced when dependencies are built.
