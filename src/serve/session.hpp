// GraphSession — a standing device deployment of one graph.
//
// The serving layer's unit of graph residency: construction stages the CSR
// onto a persistent simulated device (core::ResidentGraph) and the session
// then serves any number of queries, each charged only its incremental
// transfer and kernel time. Unified-memory residency and cache state stay
// warm between queries, which is precisely the amortization the serving
// engine sells over the naive run-per-query path.
#pragma once

#include <span>

#include "core/framework.hpp"
#include "core/pagerank.hpp"
#include "cpu/reference.hpp"
#include "graph/csr.hpp"

namespace eta::serve {

/// Scalar answer of a whole-graph CC run: the number of components (label
/// fixpoint roots, labels[v] == v). The serving layer reports this as the
/// request's reached_vertices.
inline uint64_t CountComponents(const std::vector<graph::Weight>& labels) {
  uint64_t components = 0;
  for (size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == static_cast<graph::Weight>(v)) ++components;
  }
  return components;
}

/// The CPU fallback's scalar answer for one request: reached count for the
/// per-source traversals, component count for CC, above-uniform-rank count
/// for PageRank. Exact for traversals and CC (same labels the device
/// converges to); PageRank uses the double-precision host reference.
inline uint64_t CpuAnswer(const graph::Csr& csr, core::Algo algo,
                          graph::VertexId source) {
  if (algo == core::Algo::kCc) {
    return CountComponents(cpu::MinLabelPropagation(csr));
  }
  if (algo == core::Algo::kPr) {
    const core::PageRankOptions pr;
    const std::vector<double> ranks =
        cpu::PageRankReference(csr, pr.damping, pr.epsilon, pr.max_iterations);
    const double uniform = 1.0 / static_cast<double>(csr.NumVertices());
    uint64_t above = 0;
    for (double rank : ranks) {
      if (rank > uniform) ++above;
    }
    return above;
  }
  return cpu::CountReached(core::CpuReference(csr, algo, source),
                           core::IsWidest(algo));
}

/// One PageRank query as a RunReport: lowers to the one-shot
/// core::RunPageRank on a side device. query_ms includes that device's own
/// staging (the honest naive-PR bill whose amortization lever is the memo
/// table); the side device has no fault injector, so PR queries never
/// observe injected faults. The answer — the count of vertices whose rank
/// exceeds the uniform 1/n — surfaces through report.activated.
inline core::RunReport RunPageRankAsQuery(const graph::Csr& csr) {
  const core::PageRankOptions pr;
  core::PageRankResult r = core::RunPageRank(csr, pr);
  core::RunReport report;
  report.algo = core::Algo::kPr;
  report.oom = r.oom;
  report.kernel_ms = r.kernel_ms;
  report.query_ms = r.total_ms;
  report.total_ms = r.total_ms;
  report.iterations = r.iterations;
  report.counters = r.counters;
  report.query_counters = r.counters;
  if (!r.oom) {
    const double uniform = 1.0 / static_cast<double>(csr.NumVertices());
    uint64_t above = 0;
    for (float rank : r.ranks) {
      if (rank > uniform) ++above;
    }
    report.activated = above;
  }
  return report;
}

class GraphSession {
 public:
  /// Stages `csr` (weights included iff the CSR has them, so weighted
  /// queries are servable). The CSR must outlive the session.
  explicit GraphSession(const graph::Csr& csr, core::EtaGraphOptions options = {})
      : resident_(csr, options) {}

  /// False if device allocation failed; no queries can be served then.
  bool Loaded() const { return !resident_.Oom(); }
  /// True once the session's simulated device has been lost to an injected
  /// fault; the session must be torn down and rebuilt.
  bool DeviceLost() const { return resident_.DeviceLost(); }
  /// Loaded and not lost — the engine dispatches only to healthy sessions.
  bool Healthy() const { return Loaded() && !DeviceLost(); }
  /// Simulated time spent staging the graph (the session's startup cost).
  double LoadMs() const { return resident_.LoadMs(); }
  /// Absolute session clock.
  double NowMs() const { return resident_.NowMs(); }
  uint64_t QueriesServed() const { return resident_.QueriesServed(); }
  /// Exact kDevice footprint staged by this session — what the sharded
  /// fleet's eviction accounting charges once the build has happened.
  uint64_t DeviceBytesPeak() const { return resident_.DeviceBytesPeak(); }
  const graph::Csr& Graph() const { return resident_.Graph(); }

  /// Async staging hook (ResidentGraph::PrefetchTopology): hoists the
  /// first-query topology prefetch into the staging phase so an async
  /// dispatcher can charge load + prefetch as one copy-stream op. Returns
  /// the incremental simulated ms; 0 when there is nothing to hoist.
  double PrefetchTopology() { return resident_.PrefetchTopology(); }

  /// One query against the resident topology; report.query_ms is its
  /// incremental simulated cost. Whole-graph algorithms ignore `source`:
  /// CC runs the resident min-label propagation (full fault/retry
  /// machinery); PageRank lowers to the one-shot core::RunPageRank on a
  /// side device — its query_ms includes that device's own staging (the
  /// honest naive-PR cost whose amortization lever is the memo table) and
  /// it never observes injected faults. Both answers surface through
  /// report.activated (component count / above-uniform-rank count).
  core::RunReport RunQuery(core::Algo algo, graph::VertexId source) {
    if (algo == core::Algo::kCc) {
      core::RunReport report = resident_.RunConnectedComponents();
      if (!report.DeviceFailed()) report.activated = CountComponents(report.labels);
      return report;
    }
    if (algo == core::Algo::kPr) return RunPageRankAsQuery(resident_.Graph());
    return resident_.Run(algo, source);
  }

  /// One attributed multi-source launch for a folded batch; the report's
  /// per_source_reached lets the batcher demultiplex exact per-request
  /// reachability.
  core::RunReport RunBatch(core::Algo algo, std::span<const graph::VertexId> sources) {
    return resident_.RunMultiSource(algo, sources, /*attribute_sources=*/true);
  }

  /// The session's etacheck report (covers every query served so far), or
  /// nullptr when the session's options.check is off.
  const sanitizer::SanitizerReport* CheckReport() const {
    return resident_.CheckReport();
  }

  /// The session's etaprof launch records (covers every launch so far), or
  /// nullptr when the session's options.profile is off.
  const sim::LaunchProfiler* Profiler() const { return resident_.Profiler(); }

  /// The session device's full timeline on its private session clock; the
  /// engine's trace export maps slices of it onto the serve clock.
  const sim::Timeline& DeviceTimeline() const { return resident_.SessionTimeline(); }

  /// Tears the session down (frees resident buffers, runs the leakcheck
  /// sweep). CheckReport() stays readable afterwards; queries do not.
  void Shutdown() { resident_.Shutdown(); }

 private:
  core::ResidentGraph resident_;
};

}  // namespace eta::serve
