#include "serve/batcher.hpp"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace eta::serve {

bool Batchable(core::Algo algo) {
  // Multi-source folding needs per-source attribution, which only the
  // frontier traversals with attributed waves provide (SSWP's widest-path
  // semiring lacks attributed multi-source support; whole-graph CC/PageRank
  // answers have no per-source dimension at all — they go through the
  // sequential RunQuery path, where the memo table is their amortization
  // lever instead).
  return algo == core::Algo::kBfs || algo == core::Algo::kSssp;
}

BatchOutcome ExecuteBatch(GraphSession& session, const Batch& batch, double start_ms,
                          const BatchStreamContext* ctx, const BatchTraceContext* tctx) {
  ETA_CHECK(!batch.requests.empty());
  if (ctx != nullptr) {
    ETA_CHECK(ctx->streams != nullptr);
    ETA_CHECK(ctx->stream.valid);
  }
  BatchOutcome out;
  out.results.reserve(batch.requests.size());

  trace::EventSink* sink = tctx != nullptr ? tctx->sink : nullptr;
  const int16_t trace_shard = tctx != nullptr ? tctx->shard : int16_t{-1};
  // One kWave event per request the wave carried; the op id links the
  // span tree to the stream-DAG node etaverify reasons about.
  auto emit_wave = [&](size_t begin, size_t count, double wave_start, double wave_end,
                       bool failed, int64_t op_id) {
    if (sink == nullptr) return;
    for (size_t i = begin; i < begin + count; ++i) {
      trace::TraceEvent e;
      e.request_id = batch.requests[i].id;
      e.kind = trace::EventKind::kWave;
      e.at_ms = wave_start;
      e.a = static_cast<double>(count);
      e.b = wave_end - wave_start;
      e.c = failed ? 1 : 0;
      e.op_id = op_id;
      e.shard = trace_shard;
      sink->Emit(e);
    }
  };
  // Surfaces the retry loop's failures: per-attempt records when the core
  // layer collected them (trace_requests on), otherwise one aggregate
  // event so the always-on flight recorder still sees the fault.
  auto emit_faults = [&](const core::RunReport& report, uint64_t head_id, double at_ms) {
    if (sink == nullptr || report.faults.launch_failures == 0) return;
    if (!report.attempts.empty()) {
      for (const core::AttemptRecord& rec : report.attempts) {
        if (rec.succeeded) continue;
        trace::TraceEvent e;
        e.request_id = head_id;
        e.kind = trace::EventKind::kFault;
        e.status = rec.fault;
        e.at_ms = at_ms;
        e.a = static_cast<double>(rec.attempt);
        e.b = rec.backoff_ms;
        e.c = rec.budget_denied ? 1 : 0;
        e.shard = trace_shard;
        sink->Emit(e);
      }
      return;
    }
    trace::TraceEvent e;
    e.request_id = head_id;
    e.kind = trace::EventKind::kFault;
    e.status = report.faults.device_lost ? 3 : (report.faults.ecc_uncorrectable > 0 ? 1 : 2);
    e.at_ms = at_ms;
    e.a = static_cast<double>(report.faults.launch_failures);
    e.b = report.faults.backoff_ms;
    e.c = report.faults.exhausted ? 1 : 0;
    e.shard = trace_shard;
    sink->Emit(e);
  };

  auto base_result = [&](const Request& r) {
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kOk;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    q.slo = r.slo;
    return q;
  };

  double t = start_ms;
  // Executes one launch wave: on the running clock (sync), or as a compute
  // op on the caller's stream (async) — the functional run is the same
  // either way, only the timestamps come from the scheduled op. With a
  // fresh stream and idle engines the op starts exactly where the sync
  // clock would, so the two paths produce bit-identical outcomes. Returns
  // false when the stream had already failed and the wave was cancelled
  // without running.
  auto run_wave = [&](std::string label, const std::function<core::RunReport()>& run,
                      core::RunReport* report, double* wave_start) {
    if (ctx == nullptr) {
      *report = run();
      *wave_start = t;
      t += report->query_ms;
      return true;
    }
    const sim::StreamOpStatus status = ctx->streams->LaunchAsync(
        ctx->stream, std::move(label),
        [&](double) {
          *report = run();
          return sim::StreamScheduler::LaunchOutcome{report->query_ms,
                                                     report->DeviceFailed()};
        },
        /*earliest_ms=*/start_ms);
    if (status != sim::StreamOpStatus::kCancelled) {
      // Failed waves still ran (the fault struck mid-launch), so they
      // accessed the session's buffers like any other wave.
      ctx->streams->AnnotateLastOp(
          {{ctx->topo_alloc, false}, {ctx->state_alloc, true}});
    }
    const sim::StreamOp& op = ctx->streams->Ops().back();
    *wave_start = op.start_ms;
    // A cancelled op is stamped at the stream's fault time, which may
    // precede `t`; never move the batch clock backwards.
    t = std::max(t, op.end_ms);
    return status != sim::StreamOpStatus::kCancelled;
  };
  // Surfaces a wave that will never run as a cancelled op on the schedule
  // (zero duration at the fault time) instead of silently dropping it.
  auto cancel_wave = [&](std::string label) {
    if (ctx == nullptr) return;
    ctx->streams->LaunchAsync(
        ctx->stream, std::move(label),
        [](double) { return sim::StreamScheduler::LaunchOutcome{}; },
        /*earliest_ms=*/start_ms);
  };

  if (batch.requests.size() > 1 && Batchable(batch.algo)) {
    // Per-source attribution masks are kMaxAttributedSources bits wide, so
    // a batch beyond the cap executes as successive launch waves of at most
    // the cap. Each wave is a complete attributed launch; a device failure
    // leaves that wave and everything behind it unserved.
    constexpr size_t kWave = core::ResidentGraph::kMaxAttributedSources;
    const std::string wave_label = std::string(core::AlgoName(batch.algo)) + "-wave";
    for (size_t begin = 0; begin < batch.requests.size(); begin += kWave) {
      const size_t count = std::min(kWave, batch.requests.size() - begin);
      std::vector<graph::VertexId> sources;
      sources.reserve(count);
      for (size_t i = begin; i < begin + count; ++i) {
        ETA_CHECK(batch.requests[i].algo == batch.algo);
        sources.push_back(batch.requests[i].source);
      }
      core::RunReport report;
      double wave_start = t;
      const bool ran = run_wave(
          wave_label, [&] { return session.RunBatch(batch.algo, sources); }, &report,
          &wave_start);
      const int64_t op_id =
          ctx != nullptr ? static_cast<int64_t>(ctx->streams->Ops().size()) - 1 : -1;
      const uint64_t head_id = batch.requests[begin].id;
      if (ran) {
        out.faults.Merge(report.faults);
        out.cycles += report.query_counters.elapsed_cycles;
        if (tctx != nullptr && tctx->tag_ops && ctx != nullptr) {
          ctx->streams->TagLastOp(head_id);
        }
        emit_wave(begin, count, wave_start, t, report.DeviceFailed(), op_id);
        emit_faults(report, head_id, wave_start);
      }
      if (!ran || report.DeviceFailed()) {
        // All-or-nothing per wave: a folded launch that died answers
        // nobody, and later waves never dispatch on the failed session.
        out.unserved.assign(batch.requests.begin() + static_cast<long>(begin),
                            batch.requests.end());
        out.device_failed = true;
        for (size_t b = begin + kWave; b < batch.requests.size(); b += kWave) {
          cancel_wave(wave_label);
        }
        break;
      }
      ETA_CHECK(report.per_source_reached.size() == count);
      for (size_t i = 0; i < count; ++i) {
        QueryResult q = base_result(batch.requests[begin + i]);
        q.reached_vertices = report.per_source_reached[i];
        q.batch_size = static_cast<uint32_t>(count);
        q.start_ms = wave_start;
        q.finish_ms = t;
        out.results.push_back(q);
      }
    }
    out.duration_ms = t - start_ms;
    return out;
  }

  // Sequential fallback: run each request on its own, back to back.
  for (size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& r = batch.requests[i];
    core::RunReport report;
    double wave_start = t;
    const bool ran = run_wave(
        std::string(core::AlgoName(r.algo)),
        [&] { return session.RunQuery(r.algo, r.source); }, &report, &wave_start);
    const int64_t op_id =
        ctx != nullptr ? static_cast<int64_t>(ctx->streams->Ops().size()) - 1 : -1;
    if (ran) {
      out.faults.Merge(report.faults);
      out.cycles += report.query_counters.elapsed_cycles;
      if (tctx != nullptr && tctx->tag_ops && ctx != nullptr) {
        ctx->streams->TagLastOp(r.id);
      }
      emit_wave(i, 1, wave_start, t, report.DeviceFailed(), op_id);
      emit_faults(report, r.id, wave_start);
    }
    if (!ran || report.DeviceFailed()) {
      // This request and everything behind it goes back to the engine; a
      // session that just exhausted its retry budget (or lost its device)
      // is not a place to keep dispatching.
      out.unserved.assign(batch.requests.begin() + static_cast<long>(i),
                          batch.requests.end());
      out.device_failed = true;
      for (size_t j = i + 1; j < batch.requests.size(); ++j) {
        cancel_wave(std::string(core::AlgoName(batch.requests[j].algo)));
      }
      break;
    }
    QueryResult q = base_result(r);
    q.reached_vertices = report.activated;
    q.batch_size = 1;
    q.start_ms = wave_start;
    q.finish_ms = t;
    out.results.push_back(q);
  }
  out.duration_ms = t - start_ms;
  return out;
}

}  // namespace eta::serve
