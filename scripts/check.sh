#!/usr/bin/env bash
# Tier-1 verification gate.
#
# Configures + builds the whole tree (the root CMakeLists applies
# -Wall -Wextra; the src/serve target additionally compiles with -Werror),
# refuses any compiler warning that mentions the serving layer, and then
# runs the full test suite. Usage:
#
#   scripts/check.sh [build-dir]
#   scripts/check.sh --sanitize [build-dir]
#   scripts/check.sh --faults [build-dir]
#
# --sanitize builds into a second build tree (default build-asan) with
# AddressSanitizer + UndefinedBehaviorSanitizer (-fno-sanitize-recover=all,
# so any report is fatal) and runs the full test suite under it. The
# simulated kernels execute against real host backing memory, which is
# exactly what makes host ASan meaningful here: a simulator indexing bug
# that slipped past etacheck would be a real heap-buffer-overflow.
#
# --faults builds normally and then exercises the fault model end to end
# (DESIGN.md section 8): the fault/recovery test binaries, a CLI fault
# matrix (every fault class through etagraph and etagraph_serve, with a
# replay-determinism diff), and the bench_fault_overhead zero-cost contract.
set -euo pipefail

SANITIZE=0
FAULTS=0
if [[ "${1:-}" == "--sanitize" ]]; then
  SANITIZE=1
  shift
elif [[ "${1:-}" == "--faults" ]]; then
  FAULTS=1
  shift
fi

if [[ "$SANITIZE" == "1" ]]; then
  BUILD_DIR="${1:-build-asan}"
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S .
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

cmake --build "$BUILD_DIR" -j "$(nproc)" 2>&1 | tee "$LOG"

# eta_serve builds with -Werror, so warnings there already fail the build;
# this catches anything that slips through (e.g. headers included elsewhere).
if grep -E "warning:" "$LOG" | grep -q "serve/"; then
  echo "check.sh: warnings in src/serve/ are not allowed:" >&2
  grep -E "warning:" "$LOG" | grep "serve/" >&2
  exit 1
fi

if [[ "$FAULTS" == "1" ]]; then
  # Fault-model gate: targeted test binaries first (fast, exact), then the
  # CLI matrix — one run per fault class per algorithm family, each of which
  # must recover (exit 0) or report the failure cleanly, never crash.
  "$BUILD_DIR/tests/fault_test"
  "$BUILD_DIR/tests/device_memory_test"

  echo "== CLI fault matrix =="
  for spec in "ecc=0.3" "uecc=0.05" "hang=0.05,watchdog=5" "alloc=0.1"; do
    for algo in bfs sssp sswp; do
      echo "-- etagraph --algo=$algo --faults=seed=3,$spec"
      "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo="$algo" \
        --framework=etagraph --faults="seed=3,$spec" --verify > /dev/null
    done
  done
  # Device loss at query 2 of a one-shot run is unrecoverable in-session:
  # the CLI must fail loudly (exit 1), not pretend it has an answer.
  if "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo=bfs \
      --framework=etagraph --faults=lost_at=2 > /dev/null; then
    echo "check.sh: etagraph ignored an injected device loss" >&2
    exit 1
  fi

  echo "== serve fault matrix + replay determinism =="
  REPLAY_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$REPLAY_DIR"' EXIT
  for spec in "ecc=0.3" "uecc=0.05" "hang=0.05,watchdog=5" "lost=0.01" "alloc=0.1" \
              "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
    safe="${spec//[^a-zA-Z0-9]/_}"
    for i in 1 2; do
      "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=32 \
        --faults="seed=3,$spec" --replay-out="$REPLAY_DIR/$safe.$i.txt" > /dev/null
    done
    if ! diff -u "$REPLAY_DIR/$safe.1.txt" "$REPLAY_DIR/$safe.2.txt"; then
      echo "check.sh: replay diverged for --faults=$spec" >&2
      exit 1
    fi
    echo "-- $spec: replays identical"
  done

  echo "== zero-cost contract =="
  "$BUILD_DIR/bench/bench_fault_overhead" --datasets=rmat --scale=0.25
  exit 0
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
