#!/usr/bin/env bash
# Tier-1 verification gate.
#
# Configures + builds the whole tree (the root CMakeLists applies
# -Wall -Wextra; the src/serve target additionally compiles with -Werror),
# refuses any compiler warning that mentions the serving layer, and then
# runs the full test suite. Usage:
#
#   scripts/check.sh [build-dir]
#   scripts/check.sh --sanitize [build-dir]
#
# --sanitize builds into a second build tree (default build-asan) with
# AddressSanitizer + UndefinedBehaviorSanitizer (-fno-sanitize-recover=all,
# so any report is fatal) and runs the full test suite under it. The
# simulated kernels execute against real host backing memory, which is
# exactly what makes host ASan meaningful here: a simulator indexing bug
# that slipped past etacheck would be a real heap-buffer-overflow.
set -euo pipefail

SANITIZE=0
if [[ "${1:-}" == "--sanitize" ]]; then
  SANITIZE=1
  shift
fi

if [[ "$SANITIZE" == "1" ]]; then
  BUILD_DIR="${1:-build-asan}"
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S .
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

cmake --build "$BUILD_DIR" -j "$(nproc)" 2>&1 | tee "$LOG"

# eta_serve builds with -Werror, so warnings there already fail the build;
# this catches anything that slips through (e.g. headers included elsewhere).
if grep -E "warning:" "$LOG" | grep -q "serve/"; then
  echo "check.sh: warnings in src/serve/ are not allowed:" >&2
  grep -E "warning:" "$LOG" | grep "serve/" >&2
  exit 1
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
