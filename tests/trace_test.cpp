// Tests for etatrace (DESIGN.md §14): the always-on flight recorder (ring
// semantics, deterministic dumps, pinned device-loss triggers), the SLO
// burn-rate evaluator and its --slo-alerts spec parser, and the per-request
// causal tracer — including the acceptance bar: over a 2x-overload faulted
// sharded replay, every terminal QueryStatus must be re-derivable from the
// rendered span tree alone, with its causal decision event present.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/arrivals.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "serve/trace.hpp"
#include "trace/alerts.hpp"
#include "trace/events.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/tracer.hpp"
#include "util/json.hpp"

namespace eta {
namespace {

graph::Csr RandomGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

trace::TraceEvent Event(uint64_t request, double at_ms, trace::EventKind kind) {
  trace::TraceEvent e;
  e.request_id = request;
  e.at_ms = at_ms;
  e.kind = kind;
  return e;
}

// ---------------------------------------------------------------------------
// Flight recorder: bounded ring semantics.

TEST(FlightRecorder, FillPastCapacityEvictsOldestInOrder) {
  trace::FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(Event(i, static_cast<double>(i), trace::EventKind::kDispatch));
  }
  EXPECT_EQ(recorder.capacity(), 8u);
  EXPECT_EQ(recorder.Size(), 8u);
  EXPECT_EQ(recorder.total_recorded(), 20u);

  // The snapshot is the last 8 events, oldest first.
  const std::vector<trace::TraceEvent> window = recorder.Snapshot();
  ASSERT_EQ(window.size(), 8u);
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].request_id, 12 + i);
  }
}

TEST(FlightRecorder, DefaultCapacityHoldsExactlyFourThousandNinetySix) {
  trace::FlightRecorder recorder;
  for (uint64_t i = 0; i < 5000; ++i) {
    recorder.Record(Event(i, 0, trace::EventKind::kWave));
  }
  EXPECT_EQ(recorder.Size(), trace::FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(recorder.Snapshot().front().request_id,
            5000 - trace::FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(recorder.Snapshot().back().request_id, 4999u);
}

TEST(FlightRecorder, DumpIsByteIdenticalAcrossIdenticalSequences) {
  auto build = [] {
    trace::FlightRecorder recorder(16);
    for (uint64_t i = 0; i < 40; ++i) {
      trace::TraceEvent e = Event(i, 0.25 * static_cast<double>(i),
                                  i % 3 == 0 ? trace::EventKind::kFault
                                             : trace::EventKind::kDispatch);
      e.shard = static_cast<int16_t>(i % 2);
      e.a = static_cast<double>(i);
      recorder.Record(e);
    }
    return recorder;
  };
  const std::string first = build().Dump("device-lost", 10.0, 7);
  const std::string second = build().Dump("device-lost", 10.0, 7);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("reason=device-lost"), std::string::npos);
  EXPECT_NE(first.find("victim=7"), std::string::npos);
  // Oldest-first: the evicted prefix (ids 0..23) must not appear.
  EXPECT_EQ(first.find("req=0 "), std::string::npos);
  EXPECT_LT(first.find("req=24"), first.find("req=39"));
}

// ---------------------------------------------------------------------------
// --slo-alerts spec parsing.

TEST(AlertSpec, EmptySpecEnablesDefaults) {
  trace::AlertOptions options;
  std::string error;
  ASSERT_TRUE(trace::ParseAlertSpec("", &options, &error)) << error;
  EXPECT_TRUE(options.enabled);
  EXPECT_DOUBLE_EQ(options.objective, 0.999);
  EXPECT_DOUBLE_EQ(options.fast_window_ms, 50);
  EXPECT_DOUBLE_EQ(options.slow_window_ms, 500);
  EXPECT_DOUBLE_EQ(options.burn_threshold, 2);
}

TEST(AlertSpec, FullSpecOverridesEveryField) {
  trace::AlertOptions options;
  std::string error;
  ASSERT_TRUE(trace::ParseAlertSpec("0.99,20,200,4", &options, &error)) << error;
  EXPECT_DOUBLE_EQ(options.objective, 0.99);
  EXPECT_DOUBLE_EQ(options.fast_window_ms, 20);
  EXPECT_DOUBLE_EQ(options.slow_window_ms, 200);
  EXPECT_DOUBLE_EQ(options.burn_threshold, 4);
}

TEST(AlertSpec, RejectsMalformedSpecs) {
  trace::AlertOptions options;
  std::string error;
  EXPECT_FALSE(trace::ParseAlertSpec("1.5", &options, &error));      // objective out of (0,1)
  EXPECT_FALSE(trace::ParseAlertSpec("0.99,0", &options, &error));   // zero window
  EXPECT_FALSE(trace::ParseAlertSpec("0.99,500,50", &options, &error));  // fast > slow
  EXPECT_FALSE(trace::ParseAlertSpec("0.99,10,100,0", &options, &error));  // burn <= 0
  EXPECT_FALSE(trace::ParseAlertSpec("0.99,10,100,2,9", &options, &error));  // extra field
  EXPECT_FALSE(trace::ParseAlertSpec("fast", &options, &error));     // not a number
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Burn-rate evaluation.

std::vector<trace::AlertSample> Samples(
    const std::vector<std::pair<double, bool>>& points) {
  std::vector<trace::AlertSample> out;
  out.reserve(points.size());
  for (const auto& [at, good] : points) out.push_back({at, good});
  return out;
}

TEST(BurnRate, AllGoodNeverFires) {
  trace::AlertOptions options;
  options.objective = 0.9;
  std::vector<std::pair<double, bool>> points;
  for (int i = 0; i < 200; ++i) points.push_back({static_cast<double>(i), true});
  const trace::AlertSeries series =
      trace::EvaluateBurnRate("gold", Samples(points), options);
  EXPECT_EQ(series.fired, 0u);
  EXPECT_FALSE(series.firing_at_end);
  EXPECT_TRUE(series.transitions.empty());
  EXPECT_DOUBLE_EQ(series.max_fast_burn, 0);
}

TEST(BurnRate, SustainedBadBurstFiresBothWindowsThenResolves) {
  trace::AlertOptions options;
  options.objective = 0.9;  // budget 0.1; threshold 2 => fire at 20% bad
  options.fast_window_ms = 50;
  options.slow_window_ms = 500;
  std::vector<std::pair<double, bool>> points;
  for (int i = 0; i < 20; ++i) points.push_back({static_cast<double>(i), true});
  for (int i = 20; i < 40; ++i) points.push_back({static_cast<double>(i), false});
  for (int i = 40; i < 200; ++i) points.push_back({static_cast<double>(i), true});
  const trace::AlertSeries series =
      trace::EvaluateBurnRate("gold", Samples(points), options);
  EXPECT_EQ(series.samples, 200u);
  EXPECT_EQ(series.bad, 20u);
  EXPECT_GE(series.fired, 1u);
  EXPECT_FALSE(series.firing_at_end);       // the good tail resolves it
  EXPECT_GE(series.transitions.size(), 2u); // fired, then resolved
  EXPECT_TRUE(series.transitions.front().firing);
  EXPECT_FALSE(series.transitions.back().firing);
  EXPECT_GE(series.max_fast_burn, options.burn_threshold);
  // Transitions are on the sample clock, in order.
  for (size_t i = 1; i < series.transitions.size(); ++i) {
    EXPECT_LE(series.transitions[i - 1].at_ms, series.transitions[i].at_ms);
  }
}

TEST(BurnRate, FastBlipAloneDoesNotPage) {
  // One bad sample in a long good run: the fast window spikes but the slow
  // window never crosses the threshold, so nothing fires.
  trace::AlertOptions options;
  options.objective = 0.9;
  options.fast_window_ms = 2;
  options.slow_window_ms = 500;
  std::vector<std::pair<double, bool>> points;
  for (int i = 0; i < 100; ++i) points.push_back({static_cast<double>(i), i != 50});
  const trace::AlertSeries series =
      trace::EvaluateBurnRate("gold", Samples(points), options);
  EXPECT_GE(series.max_fast_burn, options.burn_threshold);
  EXPECT_EQ(series.fired, 0u);
}

// ---------------------------------------------------------------------------
// Serve-path integration.

serve::ShardedOptions OverloadedFleet(uint32_t shards) {
  serve::ShardedOptions fleet;
  fleet.shards = shards;
  fleet.base.queue_capacity = 32;
  fleet.base.overload.slo_admission = true;
  fleet.base.overload.brownout_bronze_backlog_ms = 10;
  fleet.base.overload.shed_bronze_backlog_ms = 20;
  fleet.base.overload.shed_silver_backlog_ms = 40;
  fleet.base.graph.faults.seed = 11;
  fleet.base.graph.faults.ecc_uncorrectable_rate = 0.02;
  fleet.base.graph.faults.hang_rate = 0.01;
  return fleet;
}

std::vector<serve::Request> OverloadArrivals(const graph::Csr& csr, uint32_t count) {
  serve::ArrivalOptions arrivals;
  arrivals.profile = serve::ArrivalProfile::kPoisson;
  arrivals.rate_qps = 4000;  // far above two simulated shards' capacity
  arrivals.num_requests = count;
  arrivals.seed = 5;
  return serve::GenerateArrivals(csr.NumVertices(), arrivals);
}

/// The acceptance bar: parse the rendered trace JSON (nothing else) and
/// re-derive every request's terminal status and its causal decision.
TEST(RequestTrace, EveryTerminalStatusIsRederivableFromItsSpanTree) {
  const graph::Csr csr = RandomGraph(3);
  serve::ShardedOptions fleet = OverloadedFleet(2);
  fleet.base.graph.trace_requests = true;
  const auto trace = OverloadArrivals(csr, 96);
  const serve::ServeReport report = serve::ShardedEngine(fleet).Serve(csr, trace);
  ASSERT_TRUE(report.traced);
  ASSERT_EQ(report.results.size(), trace.size());

  std::string error;
  const auto doc = util::JsonParse(report.RenderRequestTraceJson(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const util::JsonValue* traces = doc->Find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_EQ(traces->array.size(), trace.size());

  std::map<uint64_t, const serve::QueryResult*> expected;
  for (const serve::QueryResult& q : report.results) expected[q.id] = &q;

  for (const util::JsonValue& request : traces->array) {
    const uint64_t id = static_cast<uint64_t>(request.Find("id")->number);
    ASSERT_TRUE(expected.count(id)) << "trace for unknown request " << id;
    const serve::QueryResult& want = *expected[id];
    const auto& events = request.Find("events")->array;
    ASSERT_FALSE(events.empty());

    // Exactly one terminal event, and it is the last one.
    size_t completes = 0;
    for (const util::JsonValue& e : events) {
      completes += e.Find("kind")->string == "complete" ? 1 : 0;
    }
    ASSERT_EQ(completes, 1u) << "request " << id;
    const util::JsonValue& last = events.back();
    ASSERT_EQ(last.Find("kind")->string, "complete");

    // The span tree alone names the terminal status...
    EXPECT_EQ(last.Find("status")->string, serve::QueryStatusName(want.status))
        << "request " << id;
    // ...and carries the outcome numbers the report carries.
    EXPECT_NEAR(last.Find("at_ms")->number, want.finish_ms, 1e-3);
    EXPECT_NEAR(last.Find("a")->number, want.LatencyMs(), 1e-3);
    EXPECT_NEAR(last.Find("b")->number, static_cast<double>(want.reached_vertices),
                1e-3);

    // The causal decision behind each terminal state must be in the tree.
    std::set<std::string> kinds;
    for (const util::JsonValue& e : events) kinds.insert(e.Find("kind")->string);
    switch (want.status) {
      case serve::QueryStatus::kRejected:
        EXPECT_TRUE(kinds.count("reject")) << "request " << id;
        break;
      case serve::QueryStatus::kShedded:
        EXPECT_TRUE(kinds.count("shed")) << "request " << id;
        break;
      case serve::QueryStatus::kTimedOut:
        EXPECT_TRUE(kinds.count("timeout")) << "request " << id;
        break;
      case serve::QueryStatus::kDegraded:
        // Served by the CPU: either the brownout ladder sent it there on
        // admission, or the device retry path exhausted and fell back.
        EXPECT_TRUE(kinds.count("cpu-fallback")) << "request " << id;
        break;
      case serve::QueryStatus::kOk:
        // A device answer implies the full admission -> routing -> dispatch
        // causal chain.
        EXPECT_TRUE(kinds.count("route")) << "request " << id;
        EXPECT_TRUE(kinds.count("admit")) << "request " << id;
        EXPECT_TRUE(kinds.count("dispatch")) << "request " << id;
        EXPECT_FALSE(kinds.count("cpu-fallback")) << "request " << id;
        break;
    }
  }
}

TEST(RequestTrace, TracedDoubleRunIsByteIdentical) {
  const graph::Csr csr = RandomGraph(4);
  serve::ShardedOptions fleet = OverloadedFleet(2);
  fleet.base.graph.trace_requests = true;
  const auto trace = OverloadArrivals(csr, 64);
  const serve::ServeReport first = serve::ShardedEngine(fleet).Serve(csr, trace);
  const serve::ServeReport second = serve::ShardedEngine(fleet).Serve(csr, trace);
  EXPECT_EQ(first.RenderRequestTraceJson(), second.RenderRequestTraceJson());
  EXPECT_EQ(first.RenderBlackbox(), second.RenderBlackbox());
  EXPECT_EQ(first.Render("r"), second.Render("r"));
  EXPECT_EQ(first.Json(), second.Json());
}

TEST(RequestTrace, TracingOffLeavesLegacyOutputsByteIdenticalAndUnpolluted) {
  const graph::Csr csr = RandomGraph(5);
  const serve::ShardedOptions fleet = OverloadedFleet(2);
  const auto trace = OverloadArrivals(csr, 64);
  const serve::ServeReport first = serve::ShardedEngine(fleet).Serve(csr, trace);
  const serve::ServeReport second = serve::ShardedEngine(fleet).Serve(csr, trace);
  EXPECT_FALSE(first.traced);
  EXPECT_TRUE(first.request_traces.empty());
  EXPECT_TRUE(first.RenderRequestTraceJson().empty());
  EXPECT_EQ(first.Render("r"), second.Render("r"));
  EXPECT_EQ(first.Json(), second.Json());
  EXPECT_EQ(first.metrics.RenderPrometheus(), second.metrics.RenderPrometheus());

  // No trace/alert/exemplar vocabulary may leak into legacy output with the
  // features off.
  for (const std::string& text :
       {first.Render("r"), first.Json(), first.metrics.RenderPrometheus()}) {
    EXPECT_EQ(text.find("exemplar"), std::string::npos);
    EXPECT_EQ(text.find("serve_alert"), std::string::npos);
    EXPECT_EQ(text.find("\"traced\""), std::string::npos);
    EXPECT_EQ(text.find("\"alerts\""), std::string::npos);
  }
}

TEST(RequestTrace, PinnedDeviceLossDumpNamesTheVictimRequest) {
  const graph::Csr csr = RandomGraph(6);
  serve::ShardedOptions fleet;
  fleet.shards = 1;
  fleet.base.queue_capacity = 64;
  fleet.base.graph.faults.seed = 9;
  fleet.base.graph.faults.lost_at = 3;  // the third launch kills the device

  serve::TraceOptions burst;
  burst.num_requests = 48;
  burst.mean_interarrival_ms = 0.05;
  burst.seed = 2;
  const auto trace = serve::GenerateTrace(csr.NumVertices(), burst);
  const serve::ServeReport report = serve::ShardedEngine(fleet).Serve(csr, trace);

  bool found = false;
  for (const trace::FlightDump& dump : report.blackbox) {
    if (dump.reason != "device-lost") continue;
    found = true;
    EXPECT_LT(dump.victim_request, trace.size());
    EXPECT_NE(dump.text.find("# flight-recorder dump: reason=device-lost"),
              std::string::npos);
    EXPECT_NE(dump.text.find("victim=" + std::to_string(dump.victim_request)),
              std::string::npos);
  }
  EXPECT_TRUE(found) << "pinned device loss produced no flight-recorder dump";
  // The recorder is always on: even this untraced run carries the
  // end-of-replay snapshot, so the dump list is never empty.
  ASSERT_FALSE(report.blackbox.empty());
  const serve::ServeReport again = serve::ShardedEngine(fleet).Serve(csr, trace);
  EXPECT_EQ(report.RenderBlackbox(), again.RenderBlackbox());
}

TEST(RequestTrace, AsyncWaveEventsLinkToStreamDagOps) {
  const graph::Csr csr = RandomGraph(7);
  serve::ShardedOptions fleet;
  fleet.shards = 2;
  fleet.async_dispatch = true;
  fleet.base.graph.trace_requests = true;

  serve::TraceOptions options;
  options.num_requests = 32;
  options.mean_interarrival_ms = 0.2;
  options.seed = 3;
  const auto trace = serve::GenerateTrace(csr.NumVertices(), options);
  const serve::ServeReport report = serve::ShardedEngine(fleet).Serve(csr, trace);
  ASSERT_TRUE(report.traced);

  size_t waves = 0, linked = 0;
  for (const auto& [id, events] : report.request_traces) {
    for (const trace::TraceEvent& e : events) {
      if (e.kind != trace::EventKind::kWave) continue;
      ++waves;
      linked += e.op_id >= 0 ? 1 : 0;
    }
  }
  ASSERT_GT(waves, 0u);
  EXPECT_EQ(linked, waves) << "async waves must carry their DAG op id";
}

TEST(RequestTrace, SloAlertsEvaluatePerClassAndRender) {
  const graph::Csr csr = RandomGraph(8);
  serve::ShardedOptions fleet = OverloadedFleet(2);
  std::string error;
  ASSERT_TRUE(trace::ParseAlertSpec("0.999,50,500,2", &fleet.base.slo_alerts, &error))
      << error;
  const auto trace = OverloadArrivals(csr, 96);
  const serve::ServeReport report = serve::ShardedEngine(fleet).Serve(csr, trace);

  ASSERT_FALSE(report.alerts.empty());
  for (const trace::AlertSeries& series : report.alerts) {
    EXPECT_FALSE(series.name.empty());
    EXPECT_EQ(series.fired > 0, !series.transitions.empty() &&
                                    series.transitions.front().firing);
  }
  EXPECT_NE(report.Json().find("\"alerts\""), std::string::npos);
  EXPECT_NE(report.metrics.RenderPrometheus().find("serve_alert_firing"),
            std::string::npos);
}

TEST(RequestTrace, ExemplarsStampTheSlowestCompletedRequestPerAlgo) {
  const graph::Csr csr = RandomGraph(9);
  serve::ShardedOptions fleet = OverloadedFleet(2);
  fleet.base.graph.trace_requests = true;
  const auto trace = OverloadArrivals(csr, 64);
  const serve::ServeReport report = serve::ShardedEngine(fleet).Serve(csr, trace);
  ASSERT_TRUE(report.traced);
  ASSERT_FALSE(report.latency_exemplars.empty());

  for (const auto& [algo, id] : report.latency_exemplars) {
    // The exemplar id must belong to a completed request whose latency is
    // the per-algo maximum, and its span tree must exist.
    EXPECT_TRUE(report.request_traces.count(id)) << algo;
    double best = -1, got = -1;
    for (const serve::QueryResult& q : report.results) {
      if (q.status != serve::QueryStatus::kOk &&
          q.status != serve::QueryStatus::kDegraded) {
        continue;
      }
      if (core::AlgoName(q.algo) != algo) continue;
      best = std::max(best, q.LatencyMs());
      if (q.id == id) got = q.LatencyMs();
    }
    EXPECT_DOUBLE_EQ(got, best) << algo;
  }
  EXPECT_NE(report.metrics.RenderPrometheus().find("serve_latency_exemplar_request"),
            std::string::npos);
}

// The tracer's snprintf-into-string helper retries past its 256-byte stack
// buffer: one Appendf call renders all three payload doubles, so huge
// values (~900 formatted characters) must survive untruncated and the
// event must still close as valid JSON.
TEST(RequestTrace, HugeEventPayloadRendersUntruncated) {
  trace::TraceEvent e = Event(1, 0.0, trace::EventKind::kAdmit);
  e.a = 1e300;
  e.b = 1e300;
  e.c = 1e300;
  const std::string json = trace::RenderTraceEventJson(e);

  std::vector<char> expected(512);
  const int n = std::snprintf(expected.data(), expected.size(), "\"a\":%.4f", e.a);
  ASSERT_GT(n, 256);  // a single value alone overflows the stack buffer
  EXPECT_NE(json.find(expected.data()), std::string::npos);
  EXPECT_NE(json.find("\"c\":"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  std::string error;
  auto doc = util::JsonParse(json, &error);
  EXPECT_TRUE(doc.has_value()) << error;
}

}  // namespace
}  // namespace eta
