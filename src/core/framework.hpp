// EtaGraph — the paper's framework (Procedure 1), on the simulated GPU.
//
// One Run() executes the full pipeline on a fresh device:
//   load CSR into Unified Memory -> init labels on device -> optional
//   cudaMemPrefetchAsync -> iterate { actSet2virtActSet (UDC, on the fly);
//   traversal kernel over shadow vertices with SMP } until the active set
//   empties -> copy labels back.
// Every stage is charged on the simulated clock, so RunReport::total_ms is
// the transfer+execution total Table III reports and kernel_ms is the
// kernel-only column.
#pragma once

#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/run_report.hpp"
#include "core/traversal.hpp"
#include "graph/csr.hpp"

namespace eta::core {

class EtaGraph {
 public:
  explicit EtaGraph(EtaGraphOptions options = {}) : options_(options) {}

  const EtaGraphOptions& Options() const { return options_; }

  /// Runs `algo` from `source`. Weighted algorithms require csr.HasWeights().
  /// Returns a report with oom=true (and nothing else meaningful) if a
  /// device allocation failed — which never happens in UM modes.
  RunReport Run(const graph::Csr& csr, Algo algo, graph::VertexId source) const;

  /// Extension (iBFS-style concurrent queries): one traversal seeded from
  /// several sources at once; labels converge to the best value over all
  /// sources. A multi-source BFS labels each vertex with its distance to
  /// the *nearest* source.
  RunReport RunMultiSource(const graph::Csr& csr, Algo algo,
                           std::span<const graph::VertexId> sources) const;

  /// Extension (beyond the paper's three traversals, using the same UDC +
  /// SMP machinery): min-label propagation. Every vertex starts active with
  /// its own ID; labels converge to the smallest ID that can reach each
  /// vertex. On a symmetrized graph this computes connected components.
  RunReport RunConnectedComponents(const graph::Csr& csr) const;

 private:
  RunReport RunImpl(const graph::Csr& csr, Algo algo,
                    std::vector<graph::Weight> init_labels,
                    std::span<const graph::VertexId> initial_active,
                    bool copy_label) const;

  EtaGraphOptions options_;
};

}  // namespace eta::core
