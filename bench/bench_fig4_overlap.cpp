// Fig 4 reproduction: execution status (data transfer vs computation) over
// time while EtaGraph w/o UMP runs SSSP — rendered as an ASCII strip chart
// of the simulated timeline, plus the overlap fraction. The paper reports
// transfer and compute overlapping for 60-80% of the run, with uk-2005
// showing several distinct transfer bursts.
//
// Pass --trace-json=FILE to also export the same timelines (one process per
// dataset, tracks for compute/h2d/d2h/stall plus per-launch kernels) as a
// Chrome/Perfetto trace-event document — the interactive version of the
// ASCII chart, open at https://ui.perfetto.dev.
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "prof/trace_export.hpp"
#include "util/json.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, {"livejournal", "orkut", "rmat", "uk2005"});
  const std::string trace_path = env.cl.GetString("trace-json", "");

  std::printf("Fig 4 - EtaGraph w/o UMP running SSSP ('#' compute, '=' transfer, "
              "'%%' overlapped)\n\n");
  std::vector<prof::TraceSpan> spans;
  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    core::EtaGraphOptions options;
    options.memory_mode = core::MemoryMode::kUnifiedOnDemand;
    options.profile = !trace_path.empty();
    auto report = core::EtaGraph(options).Run(csr, core::Algo::kSssp,
                                              graph::kQuerySource);
    double transfer = report.timeline.TotalMs(sim::SpanKind::kTransferH2D);
    double overlap = report.timeline.OverlapMs();
    std::printf("%-12s total=%8.3fms transfer=%8.3fms overlap=%5.1f%% of transfer\n",
                graph::FindDataset(name)->paper_name.c_str(), report.total_ms, transfer,
                transfer > 0 ? 100.0 * overlap / transfer : 0.0);
    std::printf("  %s\n\n", report.timeline.RenderAscii(report.total_ms, 96).c_str());
    if (!trace_path.empty()) {
      const std::string process = graph::FindDataset(name)->paper_name;
      prof::AppendTimelineSpans(report.timeline, process, 0, &spans);
      prof::AppendKernelSpans(report.kernel_profiles, process, 0, &spans);
    }
  }
  std::printf("shape: most transfer time overlaps compute (paper: 60-80%% of the run);\n"
              "uk-2005 shows multiple transfer bursts because later regions of the CSR\n"
              "only fault in when the traversal reaches them.\n");
  if (!trace_path.empty()) {
    const std::string json =
        prof::RenderChromeTrace(spans, {{"figure", "fig4-overlap"}});
    std::string parse_error;
    if (!util::JsonParse(json, &parse_error)) {
      std::fprintf(stderr, "FAIL: trace JSON failed self-validation: %s\n",
                   parse_error.c_str());
      return 1;
    }
    std::ofstream out(trace_path);
    out << json;
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace: %zu spans -> %s (open at https://ui.perfetto.dev)\n",
                spans.size(), trace_path.c_str());
  }
  return 0;
}
