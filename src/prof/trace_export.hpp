// etaprof trace export: merges simulated-device timeline spans, per-launch
// kernel profiles, and serving-layer spans onto one Chrome/Perfetto
// trace-event JSON document (DESIGN.md section 9).
//
// Every span lives on a `track` named "process/thread" (e.g.
// "device/compute", "serve/queue"); the exporter assigns pids/tids in
// first-appearance order and emits process_name/thread_name metadata, so
// identically-seeded runs produce byte-identical traces. Timestamps are the
// *simulated* clock: the exporter never reads wall time.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/profiler.hpp"
#include "sim/timeline.hpp"

namespace eta::prof {

/// One argument shown under a span in the trace viewer. `value` is emitted
/// verbatim when `number` is true (caller guarantees a valid JSON number),
/// otherwise as an escaped JSON string.
struct TraceArg {
  std::string key;
  std::string value;
  bool number = false;
};

/// One complete span ("X" event) on the merged trace.
struct TraceSpan {
  std::string track;  // "process/thread"
  std::string name;
  double start_ms = 0;
  double end_ms = 0;
  std::vector<TraceArg> args;
};

/// Converts a device timeline onto per-stream tracks "<process>/compute",
/// ".../copy-h2d", ".../copy-d2h", ".../stall" — one track per engine, the
/// stream model of DESIGN.md section 11 — shifting every span by
/// `offset_ms` (how the serve layer maps a session's private device clock
/// onto the serve clock; 0 for standalone runs).
void AppendTimelineSpans(const sim::Timeline& timeline, std::string_view process,
                         double offset_ms, std::vector<TraceSpan>* out);

/// Same, over an explicit span slice — what the serve engine uses to map
/// just the device spans of one dispatch onto the serve clock.
void AppendTimelineSpans(std::span<const sim::Span> spans, std::string_view process,
                         double offset_ms, std::vector<TraceSpan>* out);

/// Converts per-launch kernel profiles onto track "<process>/kernels", with
/// launch geometry, per-launch cycles, and fault annotations as args.
void AppendKernelSpans(std::span<const sim::KernelProfile> profiles,
                       std::string_view process, double offset_ms,
                       std::vector<TraceSpan>* out);

/// Renders the Chrome trace-event JSON object: process/thread metadata
/// events first, then one "X" event per span, timestamps in microseconds
/// with fixed three-decimal formatting. `metadata` key/value pairs (e.g.
/// the dataset name) land under "otherData". Deterministic for
/// deterministic input; validated by round-trip JsonParse in tests.
std::string RenderChromeTrace(
    const std::vector<TraceSpan>& spans,
    const std::vector<std::pair<std::string, std::string>>& metadata = {});

}  // namespace eta::prof
