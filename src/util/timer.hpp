// Wall-clock timing for host-side phases (graph generation, transform
// preprocessing). Simulated GPU time never comes from this clock — it is
// produced by the sim::Device cost model — so the two are kept in distinct
// types to avoid accidental mixing.
#pragma once

#include <chrono>

namespace eta::util {

class WallTimer {
 public:
  WallTimer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  /// Elapsed host milliseconds since construction or last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace eta::util
