file(REMOVE_RECURSE
  "CMakeFiles/counters_invariant_test.dir/counters_invariant_test.cpp.o"
  "CMakeFiles/counters_invariant_test.dir/counters_invariant_test.cpp.o.d"
  "counters_invariant_test"
  "counters_invariant_test.pdb"
  "counters_invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counters_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
