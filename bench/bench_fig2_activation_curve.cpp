// Fig 2 reproduction: number of active vertices per BFS iteration and the
// cumulative distribution, for LiveJournal and com-Orkut. The expected
// shape: activation grows exponentially for a few iterations, peaks, then
// decays; the CDF stays low early and then jumps to ~1.
#include <cmath>

#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal", "orkut"});

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    auto report = core::EtaGraph().Run(csr, core::Algo::kBfs, graph::kQuerySource);

    uint64_t total = 0;
    for (const auto& it : report.iteration_stats) total += it.active_vertices;

    util::Table table({"Iteration", "Active vertices", "CDF", "log10(active)"});
    uint64_t cum = 0;
    for (const auto& it : report.iteration_stats) {
      cum += it.active_vertices;
      table.AddRow({std::to_string(it.iteration), std::to_string(it.active_vertices),
                    util::FormatDouble(static_cast<double>(cum) / total, 3),
                    util::FormatDouble(
                        it.active_vertices ? std::log10(double(it.active_vertices)) : 0,
                        2)});
    }
    std::printf("%s\n", table.Render("Fig 2 - vertex activation per BFS iteration, " +
                                     graph::FindDataset(name)->paper_name)
                            .c_str());

    // Shape check: the peak iteration is neither the first nor the last.
    uint64_t peak = 0;
    uint32_t peak_iter = 0;
    for (const auto& it : report.iteration_stats) {
      if (it.active_vertices > peak) {
        peak = it.active_vertices;
        peak_iter = it.iteration;
      }
    }
    std::printf("shape: peak %llu at iteration %u of %u (rise-then-fall as in the paper)\n\n",
                static_cast<unsigned long long>(peak), peak_iter, report.iterations);
  }
  return 0;
}
