// ServeEngine — deterministic discrete-event replay of a query trace.
//
// The engine owns the serve clock. It admits requests as the clock reaches
// their arrival times (rejecting on queue overflow), sweeps out requests
// whose queueing deadline has passed, and dispatches the rest in
// priority/FIFO order. In kSessionBatched mode a dispatch may hold a
// forming batch open for up to batch_window_ms (never past the head
// request's start deadline) to fold in compatible arrivals; the folded
// batch runs as one attributed multi-source launch. Execution durations
// come from the simulated device (RunReport::query_ms, or total_ms for the
// naive rebuild-per-query mode), so the whole replay is deterministic:
// identical trace + options produce an identical ServeReport.
//
// Fault tolerance (DESIGN.md section 8): when ServeOptions::graph.faults
// injects device faults, a dispatch can come back with unserved requests.
// The engine quarantines an unhealthy session (device lost or staging
// failed), rebuilds it up to max_session_rebuilds times — charging each
// re-staging to the serve clock — and retries the leftover batch on the
// fresh device. Requests the device path still cannot answer are served by
// the host CPU reference at a deterministic degraded cost and finish with
// QueryStatus::kDegraded: correct answers, honest latency, no crash.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "serve/report.hpp"
#include "serve/types.hpp"

namespace eta::serve {

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options = {}) : options_(options) {}

  const ServeOptions& Options() const { return options_; }

  /// Replays `trace` (must be sorted by arrival_ms) against `csr` and
  /// returns the fleet report. The per-request outcomes are in
  /// report.results, sorted by request id.
  ServeReport Serve(const graph::Csr& csr, const std::vector<Request>& trace) const;

 private:
  ServeOptions options_;
};

}  // namespace eta::serve
