// Regression tests pinning the dataset stand-ins to the paper-relevant
// shape targets (Table II / Table IV). Run at 0.2 scale to stay fast; the
// chained-community web generators hold their iteration counts and LCC
// fractions across scales by construction.
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/stats.hpp"

namespace eta::graph {
namespace {

struct ShapeTarget {
  const char* name;
  double lcc_min, lcc_max;           // fraction
  uint32_t iters_min, iters_max;     // BFS expansions from the query source
  double reach_min, reach_max;       // reached fraction from the source
};

class DatasetShape : public ::testing::TestWithParam<ShapeTarget> {};

TEST_P(DatasetShape, MatchesPaperShape) {
  const ShapeTarget& t = GetParam();
  Csr csr = BuildDataset(t.name, /*scale=*/0.2);
  GraphStats stats = ComputeStats(csr);
  auto reach = ComputeReachability(csr, kQuerySource);

  EXPECT_GE(stats.lcc_fraction, t.lcc_min) << t.name;
  EXPECT_LE(stats.lcc_fraction, t.lcc_max) << t.name;
  EXPECT_GE(reach.iterations, t.iters_min) << t.name;
  EXPECT_LE(reach.iterations, t.iters_max) << t.name;
  double reach_frac = static_cast<double>(reach.visited) / stats.num_vertices;
  EXPECT_GE(reach_frac, t.reach_min) << t.name;
  EXPECT_LE(reach_frac, t.reach_max) << t.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetShape,
    ::testing::Values(
        // Social graphs: near-total LCC (paper 98-99%), high reach, short
        // diameters with a long tail.
        ShapeTarget{"slashdot", 0.95, 1.0, 5, 12, 0.80, 1.0},
        ShapeTarget{"livejournal", 0.95, 1.0, 10, 20, 0.80, 1.0},
        ShapeTarget{"orkut", 0.95, 1.0, 5, 12, 0.90, 1.0},
        // R-MAT (paper LCC 81%, act 81%, 9 iterations).
        ShapeTarget{"rmat", 0.85, 1.0, 6, 14, 0.75, 0.99},
        // Web crawls: LCC and iteration counts from Table II/IV.
        ShapeTarget{"uk2005", 0.58, 0.72, 150, 260, 0.55, 0.75},
        ShapeTarget{"sk2005", 0.63, 0.78, 45, 80, 0.60, 0.80},
        // uk-2006: the query source reaches a ~1e-4 sliver in 4 hops.
        ShapeTarget{"uk2006", 0.60, 0.80, 3, 6, 0.0, 0.01}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(DatasetShape, SkewMatchesSocialNetworks) {
  // The paper quotes max out-degrees of 5.2K-33K on graphs of ~10-40 avg
  // degree; at our scale the ratio (hub degree >> average) must persist.
  Csr csr = BuildDataset("livejournal", 0.2);
  GraphStats stats = ComputeStats(csr);
  EXPECT_GT(stats.max_out_degree, 50 * stats.avg_degree);
}

}  // namespace
}  // namespace eta::graph
