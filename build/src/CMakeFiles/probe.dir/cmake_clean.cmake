file(REMOVE_RECURSE
  "CMakeFiles/probe.dir/__/tools/probe.cpp.o"
  "CMakeFiles/probe.dir/__/tools/probe.cpp.o.d"
  "probe"
  "probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
