#!/usr/bin/env bash
# Snapshot bench results into the repo root.
#
# Every bench binary writes its BENCH_*.json next to wherever it ran
# (usually the build tree, which is disposable). This copies any such
# files found under the given build directory to the repository root, so
# a checked-out tree keeps the latest numbers after a gate run.
#
#   scripts/bench_snapshot.sh [build-dir]
#
# Invoked automatically at the end of the bench-running check.sh gates;
# a run that produced no BENCH_*.json is not an error.
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "bench_snapshot.sh: no build directory '$BUILD_DIR'" >&2
  exit 1
fi

count=0
while IFS= read -r -d '' json; do
  cp "$json" "$REPO_ROOT/$(basename "$json")"
  echo "bench_snapshot.sh: $json -> $(basename "$json")"
  count=$((count + 1))
done < <(find "$BUILD_DIR" -maxdepth 3 -name 'BENCH_*.json' -print0)

echo "bench_snapshot.sh: snapshotted $count file(s) into $REPO_ROOT"
