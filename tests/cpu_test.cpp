// Tests for the CPU reference algorithms (the ground truth of the repo).
#include <gtest/gtest.h>

#include "cpu/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eta::cpu {
namespace {

using graph::BuildCsr;
using graph::Csr;
using graph::Edge;

Csr Chain5() {
  // 0 -> 1 -> 2 -> 3 -> 4 with weights 5, 1, 7, 2.
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  csr.SetWeights({5, 1, 7, 2});
  return csr;
}

TEST(Bfs, ChainLevels) {
  std::vector<graph::Weight> levels = BfsLevels(Chain5(), 0);
  EXPECT_EQ(levels, (std::vector<graph::Weight>{0, 1, 2, 3, 4}));
}

TEST(Bfs, UnreachableIsInf) {
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}, {2, 3}});
  auto levels = BfsLevels(csr, 0);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], kInf);
  EXPECT_EQ(levels[3], kInf);
}

TEST(Bfs, PicksShortestHopCount) {
  // 0->1->2 and 0->2 directly.
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(BfsLevels(csr, 0)[2], 1u);
}

TEST(Sssp, ChainDistances) {
  auto dist = SsspDistances(Chain5(), 0);
  EXPECT_EQ(dist, (std::vector<graph::Weight>{0, 5, 6, 13, 15}));
}

TEST(Sssp, PrefersLighterLongerPath) {
  // 0->2 weight 10; 0->1->2 weight 2+3=5.
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}});
  csr.SetWeights({2, 10, 3});
  EXPECT_EQ(SsspDistances(csr, 0)[2], 5u);
}

TEST(Sssp, DijkstraEqualsBellmanFord) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    graph::RmatParams params;
    params.scale = 9;
    params.num_edges = 4000;
    params.seed = seed;
    Csr csr = BuildCsr(graph::GenerateRmat(params));
    csr.DeriveWeights(seed * 17);
    EXPECT_EQ(SsspDistances(csr, 0), SsspBellmanFord(csr, 0)) << "seed " << seed;
  }
}

TEST(Sswp, ChainWidthIsMinEdge) {
  auto width = SswpWidths(Chain5(), 0);
  EXPECT_EQ(width[0], kInf);
  EXPECT_EQ(width[1], 5u);
  EXPECT_EQ(width[2], 1u);
  EXPECT_EQ(width[4], 1u);
}

TEST(Sswp, PrefersWiderPath) {
  // 0->2 width 3; 0->1->2 width min(9, 8) = 8.
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}});
  csr.SetWeights({9, 3, 8});
  EXPECT_EQ(SswpWidths(csr, 0)[2], 8u);
}

TEST(Sswp, UnreachableIsZero) {
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}, {2, 3}});
  csr.DeriveWeights(1);
  auto width = SswpWidths(csr, 0);
  EXPECT_EQ(width[2], 0u);
}

// Property: SSWP width to any reached vertex is at least the smallest
// weight on some incoming edge path — specifically, for a direct neighbor
// of the source it is at least the direct edge's weight.
TEST(Sswp, DirectEdgeLowerBound) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = 77;
  Csr csr = BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(99);
  auto width = SswpWidths(csr, 0);
  auto neighbors = csr.Neighbors(0);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    EXPECT_GE(width[neighbors[i]], csr.Weights()[csr.RowStart(0) + i]);
  }
}

// Property: BFS level is a lower bound scaffold for SSSP hop structure —
// dist(v) >= level(v) when all weights are >= 1.
TEST(CrossAlgorithm, DistanceDominatesLevel) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 8000;
  params.seed = 123;
  Csr csr = BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(5);
  auto levels = BfsLevels(csr, 0);
  auto dist = SsspDistances(csr, 0);
  for (size_t v = 0; v < levels.size(); ++v) {
    if (levels[v] == kInf) {
      EXPECT_EQ(dist[v], kInf);
    } else {
      EXPECT_GE(dist[v], levels[v]);
    }
  }
}

TEST(CountReached, BothConventions) {
  std::vector<graph::Weight> min_labels = {0, 5, kInf, 3};
  EXPECT_EQ(CountReached(min_labels, /*widest_path=*/false), 3u);
  std::vector<graph::Weight> width_labels = {kInf, 5, 0, 3};
  EXPECT_EQ(CountReached(width_labels, /*widest_path=*/true), 3u);
}

TEST(SsspSelfConsistency, TriangleInequalityOverEdges) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 10000;
  params.seed = 321;
  Csr csr = BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(11);
  auto dist = SsspDistances(csr, 0);
  // Relaxed fixpoint: no edge can still improve.
  for (graph::VertexId v = 0; v < csr.NumVertices(); ++v) {
    if (dist[v] == kInf) continue;
    auto neighbors = csr.Neighbors(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_LE(dist[v] + csr.Weights()[csr.RowStart(v) + i] >= dist[neighbors[i]], true);
      EXPECT_GE(dist[neighbors[i]], 0u);
      EXPECT_LE(dist[neighbors[i]], dist[v] + csr.Weights()[csr.RowStart(v) + i]);
    }
  }
}

}  // namespace
}  // namespace eta::cpu
