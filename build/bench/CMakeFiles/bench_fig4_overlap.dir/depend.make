# Empty dependencies file for bench_fig4_overlap.
# This may be replaced when dependencies are built.
