file(REMOVE_RECURSE
  "libeta_sim.a"
)
