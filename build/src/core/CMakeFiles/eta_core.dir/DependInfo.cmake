
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/eta_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/eta_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/hybrid_bfs.cpp" "src/core/CMakeFiles/eta_core.dir/hybrid_bfs.cpp.o" "gcc" "src/core/CMakeFiles/eta_core.dir/hybrid_bfs.cpp.o.d"
  "/root/repo/src/core/pagerank.cpp" "src/core/CMakeFiles/eta_core.dir/pagerank.cpp.o" "gcc" "src/core/CMakeFiles/eta_core.dir/pagerank.cpp.o.d"
  "/root/repo/src/core/traversal.cpp" "src/core/CMakeFiles/eta_core.dir/traversal.cpp.o" "gcc" "src/core/CMakeFiles/eta_core.dir/traversal.cpp.o.d"
  "/root/repo/src/core/udc.cpp" "src/core/CMakeFiles/eta_core.dir/udc.cpp.o" "gcc" "src/core/CMakeFiles/eta_core.dir/udc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/eta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/eta_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
