// Table I — the theoretical space model.
//
// The paper compares the CPU->GPU transfer volume of the topology data
// across four representations, in units of 4-byte words:
//
//   G-Shard     2|E|
//   Edge list   2|E|
//   VST (Tigr)  |E| + 2|N| + 2|V|     (N = virtual/shadow vertices, K=10)
//   CSR (UDC)   |E| + |V|
//
// and normalizes each against CSR for LiveJournal. This module evaluates
// those formulas for any graph so bench_table1_space can regenerate the
// table for the stand-in datasets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace eta::graph {

/// Number of shadow (virtual) vertices produced by a degree cut with limit
/// K: sum over vertices of ceil(out_degree / K); zero-degree vertices
/// contribute nothing (they never propagate, Section IV-A).
uint64_t CountShadowVertices(const Csr& csr, uint32_t degree_limit);

struct SpaceRow {
  std::string structure;      // e.g. "CSR"
  std::string formula;        // e.g. "|E| + |V|"
  uint64_t words = 0;         // evaluated for a concrete graph
  double normalized = 0.0;    // words / CSR words
};

/// Evaluates all Table I rows for `csr` with the paper's K = 10.
std::vector<SpaceRow> ComputeSpaceModel(const Csr& csr, uint32_t degree_limit = 10);

}  // namespace eta::graph
