
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/social_influence.cpp" "examples/CMakeFiles/social_influence.dir/social_influence.cpp.o" "gcc" "examples/CMakeFiles/social_influence.dir/social_influence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/eta_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/eta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/eta_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
