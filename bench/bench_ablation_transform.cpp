// Ablation of the transform strategy (Section III-A): UDC's on-the-fly
// device transform vs Tigr's out-of-core VST preprocessing. Quantifies the
// paper's two claims: (1) VST needs a host-side preprocessing pass whose
// wall time grows with the graph, while UDC needs none; (2) VST transfers
// |E| + 2|N| + 2|V| words where UDC ships raw CSR (|E| + |V|).
#include "baselines/tigr.hpp"
#include "bench_common.hpp"
#include "core/udc.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

using namespace eta;

int main(int argc, char** argv) {
  std::vector<std::string> all;
  for (const auto& info : graph::AllDatasets()) all.push_back(info.name);
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, all);

  util::Table table({"Dataset", "VST preprocess (host ms)", "VST transfer",
                     "UDC transfer (raw CSR)", "Transfer ratio"});
  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);

    util::WallTimer timer;
    auto vst = baselines::Tigr::BuildVst(csr, /*split_degree=*/16);
    double vst_ms = timer.ElapsedMs();

    uint64_t vst_bytes = 4 * (csr.NumEdges() + 2 * vst.NumVirtual() +
                              2 * uint64_t{csr.NumVertices()});
    uint64_t udc_bytes = csr.TopologyBytes();
    table.AddRow({graph::FindDataset(name)->paper_name, util::FormatDouble(vst_ms, 1),
                  util::FormatBytes(vst_bytes), util::FormatBytes(udc_bytes),
                  util::FormatDouble(double(vst_bytes) / udc_bytes, 2) + "x"});
  }
  std::printf("%s\n", table.Render("Ablation - transform cost: out-of-core VST vs "
                                   "on-the-fly UDC (UDC preprocessing is zero by "
                                   "construction)")
                          .c_str());
  return 0;
}
