#include "graph/stats.hpp"

#include <numeric>
#include <vector>

namespace eta::graph {

namespace {

/// Union-find with path halving; ranks elided (union by index order is fine
/// at these sizes).
class DisjointSets {
 public:
  explicit DisjointSets(VertexId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

GraphStats ComputeStats(const Csr& csr) {
  GraphStats stats;
  const VertexId n = csr.NumVertices();
  stats.num_vertices = n;
  stats.num_edges = csr.NumEdges();
  stats.avg_degree = n ? static_cast<double>(csr.NumEdges()) / n : 0.0;

  std::vector<uint8_t> touched(n, 0);
  DisjointSets dsu(n);
  for (VertexId v = 0; v < n; ++v) {
    EdgeId deg = csr.OutDegree(v);
    stats.max_out_degree = std::max(stats.max_out_degree, deg);
    if (deg) touched[v] = 1;
    for (VertexId dst : csr.Neighbors(v)) {
      touched[dst] = 1;
      dsu.Union(v, dst);
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!touched[v]) ++stats.num_isolated;
  }

  std::vector<VertexId> component_size(n, 0);
  VertexId largest = 0;
  for (VertexId v = 0; v < n; ++v) {
    VertexId root = dsu.Find(v);
    largest = std::max(largest, ++component_size[root]);
  }
  stats.lcc_fraction = n ? static_cast<double>(largest) / n : 0.0;

  // Text size estimate: average "src dst\n" line of ~14 bytes at these ID
  // magnitudes; exact enough for a size column.
  stats.text_size_bytes = static_cast<uint64_t>(csr.NumEdges()) * 14;
  return stats;
}

Reachability ComputeReachability(const Csr& csr, VertexId source) {
  Reachability r;
  if (source >= csr.NumVertices()) return r;
  std::vector<uint8_t> visited(csr.NumVertices(), 0);
  std::vector<VertexId> frontier{source}, next;
  visited[source] = 1;
  r.visited = 1;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId dst : csr.Neighbors(v)) {
        if (!visited[dst]) {
          visited[dst] = 1;
          ++r.visited;
          next.push_back(dst);
        }
      }
    }
    frontier.swap(next);
    if (!frontier.empty()) ++r.iterations;
  }
  return r;
}

}  // namespace eta::graph
