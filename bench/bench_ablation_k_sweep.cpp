// Ablation (beyond the paper's figures, motivated by Section III): sweep
// the Degree Limit K. Small K balances warps perfectly but multiplies
// shadow-vertex bookkeeping and atomics; large K degrades into plain
// vertex-centric imbalance. The sweet spot sits in the middle — this bench
// quantifies the U-shape that justifies the paper's moderate K.
#include "bench_common.hpp"
#include "core/framework.hpp"
#include "core/udc.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal", "rmat"});

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    util::Table table({"K", "Shadow vertices", "Shadow/|V|", "Kernel (ms)",
                       "Total (ms)", "vs K=16"});
    double base_total = 0;
    std::vector<std::vector<std::string>> rows;
    for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u, 48u}) {
      core::EtaGraphOptions options;
      options.degree_limit = k;
      auto report = core::EtaGraph(options).Run(csr, core::Algo::kBfs,
                                                graph::kQuerySource);
      uint64_t shadows = core::ShadowCapacity(csr, k);
      if (k == 16) base_total = report.total_ms;
      if (report.oom) {
        // Tiny K multiplies the shadow bookkeeping until it no longer fits
        // device memory — itself a finding of the sweep.
        rows.push_back({std::to_string(k), std::to_string(shadows),
                        util::FormatDouble(double(shadows) / csr.NumVertices(), 2),
                        "O.O.M", "O.O.M", "-"});
        continue;
      }
      rows.push_back({std::to_string(k), std::to_string(shadows),
                      util::FormatDouble(double(shadows) / csr.NumVertices(), 2),
                      util::FormatDouble(report.kernel_ms, 3),
                      util::FormatDouble(report.total_ms, 3),
                      std::to_string(report.total_ms)});  // patched below
    }
    for (auto& row : rows) {
      if (row.back() != "-") {
        double total = std::stod(row.back());
        row.back() = util::FormatDouble(total / base_total, 2) + "x";
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render("Ablation - Degree Limit K sweep, BFS on " +
                                     graph::FindDataset(name)->paper_name)
                            .c_str());
  }
  return 0;
}
