#include "trace/flight_recorder.hpp"

#include <cstdio>

namespace eta::trace {

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    // Not yet wrapped: insertion order is oldest-to-newest.
    out = ring_;
  } else {
    // Wrapped: next_ points at the oldest slot.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::string FlightRecorder::Dump(const std::string& reason, double at_ms,
                                 uint64_t victim_request) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "# flight-recorder dump: reason=%s at=%.4fms victim=%llu "
                "events=%zu recorded=%llu\n",
                reason.c_str(), at_ms, static_cast<unsigned long long>(victim_request),
                ring_.size(), static_cast<unsigned long long>(total_));
  out += buf;
  for (const TraceEvent& e : Snapshot()) {
    const char* status = EventStatusName(e.kind, e.status);
    std::snprintf(buf, sizeof(buf),
                  "%12.4f req=%-8llu %-15s shard=%-3d a=%.4f b=%.4f c=%.4f op=%lld%s%s\n",
                  e.at_ms, static_cast<unsigned long long>(e.request_id),
                  EventKindName(e.kind), static_cast<int>(e.shard), e.a, e.b, e.c,
                  static_cast<long long>(e.op_id), status[0] != '\0' ? " " : "", status);
    out += buf;
  }
  return out;
}

}  // namespace eta::trace
