// Fundamental graph scalar types.
//
// The paper stores vertex IDs and CSR offsets in 4-byte words (its space
// model in Table I counts |E| + |V| words for CSR), so this reproduction
// uses 32-bit types throughout the device-visible layout. At the scaled
// dataset sizes (<= ~40M edges) 32 bits are ample.
#pragma once

#include <cstdint>

namespace eta::graph {

using VertexId = uint32_t;
using EdgeId = uint32_t;   // index into the column-index array
using Weight = uint32_t;   // positive edge weight for SSSP/SSWP

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = 0xffffffffu;

/// A directed edge (source, destination).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

}  // namespace eta::graph
