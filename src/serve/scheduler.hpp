// QueryScheduler — bounded admission queue with priority + FIFO ordering
// and start-deadline expiry.
//
// Admission control happens at Admit(): a full queue rejects the request
// outright (the caller records QueryStatus::kRejected). Dispatch order is
// highest priority first, FIFO within a priority level. Requests whose
// queueing deadline passes before dispatch are swept out by
// ExpireDeadlines() and reported as timed out — an overloaded engine sheds
// load explicitly instead of building unbounded queues.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/types.hpp"

namespace eta::serve {

class QueryScheduler {
 public:
  explicit QueryScheduler(size_t capacity) : capacity_(capacity) {}

  /// Enqueues `request`; returns false (reject) if the queue is full.
  bool Admit(const Request& request);

  bool Empty() const { return queue_.empty(); }
  size_t Depth() const { return queue_.size(); }

  /// Removes and returns every queued request that Request::ExpiredAt(now_ms)
  /// — i.e. whose start deadline lies strictly before `now_ms`; a request
  /// whose deadline equals `now_ms` stays queued and dispatchable. Returned
  /// in admission order.
  std::vector<Request> ExpireDeadlines(double now_ms);

  /// Pops the highest-priority (then oldest) request; nullopt when empty.
  std::optional<Request> PopNext();

  /// Pops up to `max_count` queued requests running `algo`, in
  /// priority/FIFO order — the batcher's fold operation.
  std::vector<Request> PopCompatible(core::Algo algo, uint32_t max_count);

 private:
  struct Entry {
    Request request;
    uint64_t seq = 0;  // admission order, the FIFO tiebreaker
  };

  /// Index of the best dispatchable entry among `queue_` entries matching
  /// `pred`; SIZE_MAX when none.
  template <typename Pred>
  size_t BestIndex(Pred&& pred) const {
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < queue_.size(); ++i) {
      if (!pred(queue_[i].request)) continue;
      if (best == SIZE_MAX ||
          queue_[i].request.priority > queue_[best].request.priority ||
          (queue_[i].request.priority == queue_[best].request.priority &&
           queue_[i].seq < queue_[best].seq)) {
        best = i;
      }
    }
    return best;
  }

  size_t capacity_;
  uint64_t next_seq_ = 0;
  std::vector<Entry> queue_;
};

}  // namespace eta::serve
