#!/usr/bin/env bash
# Static analysis over the library, tool, bench, and test sources. Any
# diagnostic is fatal (exit nonzero) — scripts/check.sh gates on this.
#
#   scripts/lint.sh [build-dir]
#
# Preferred path: clang-tidy with the profile in .clang-tidy (bugprone-*,
# performance-*, concurrency-*, WarningsAsErrors '*'), driven by the
# compile database cmake writes into the build dir. When clang-tidy is not
# installed (the reproduction container ships only g++), falls back to a
# strict g++ re-parse of every translation unit:
#   -fsyntax-only -Wall -Wextra -Wpedantic -Wshadow -Werror
# which still catches shadowed locals, sign trouble, and pedantic-ISO
# violations the normal build (plain -Wall -Wextra) lets through.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

SOURCES=$(find src tools bench tests -name '*.cpp' | sort)

if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "lint.sh: clang-tidy ($(clang-tidy --version | head -1))"
  # shellcheck disable=SC2086
  clang-tidy -p "$BUILD_DIR" --quiet $SOURCES
  echo "lint.sh: clang-tidy clean"
  exit 0
fi

echo "lint.sh: clang-tidy not found; strict g++ syntax pass"
# Mirror the include setup the build uses: library headers are found
# relative to src/, bench files include their own directory, and the tests
# pick up the environment's gtest from the default include path.
FLAGS=(-std=c++20 -fsyntax-only -Wall -Wextra -Wpedantic -Wshadow -Werror
       -Isrc -Ibench)
FAILED=0
for tu in $SOURCES; do
  if ! g++ "${FLAGS[@]}" "$tu"; then
    echo "lint.sh: FAILED on $tu" >&2
    FAILED=1
  fi
done
if [[ "$FAILED" != "0" ]]; then
  exit 1
fi
echo "lint.sh: $(echo "$SOURCES" | wc -l) translation units clean"
