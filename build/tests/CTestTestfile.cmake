# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/unified_memory_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/udc_test[1]_include.cmake")
include("/root/repo/build/tests/framework_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/traversal_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_shape_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/counters_invariant_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_bfs_test[1]_include.cmake")
