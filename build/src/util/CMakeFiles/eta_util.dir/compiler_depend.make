# Empty compiler generated dependencies file for eta_util.
# This may be replaced when dependencies are built.
