// End-to-end smoke tests: EtaGraph (all memory modes, SMP on/off) against
// the CPU references on small deterministic graphs.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eta::core {
namespace {

graph::Csr SmallSocialGraph() {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 8000;
  params.seed = 3;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(99);
  return csr;
}

class EtaGraphSmoke : public ::testing::TestWithParam<std::tuple<Algo, bool, MemoryMode>> {};

TEST_P(EtaGraphSmoke, MatchesCpuReference) {
  auto [algo, smp, mode] = GetParam();
  graph::Csr csr = SmallSocialGraph();
  EtaGraphOptions options;
  options.use_smp = smp;
  options.memory_mode = mode;
  EtaGraph framework(options);
  RunReport report = framework.Run(csr, algo, /*source=*/0);
  ASSERT_FALSE(report.oom);
  auto expected = CpuReference(csr, algo, 0);
  ASSERT_EQ(report.labels.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(report.labels[v], expected[v]) << "vertex " << v;
  }
  EXPECT_GT(report.iterations, 0u);
  EXPECT_GT(report.total_ms, 0.0);
  EXPECT_GT(report.kernel_ms, 0.0);
  EXPECT_LE(report.kernel_ms, report.total_ms + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EtaGraphSmoke,
    ::testing::Combine(::testing::Values(Algo::kBfs, Algo::kSssp, Algo::kSswp),
                       ::testing::Values(true, false),
                       ::testing::Values(MemoryMode::kUnifiedPrefetch,
                                         MemoryMode::kUnifiedOnDemand,
                                         MemoryMode::kExplicitCopy,
                                         MemoryMode::kChunkedStream)));

TEST(ChunkedStream, TransfersWholeChunksAndWastes) {
  graph::Csr csr = SmallSocialGraph();
  EtaGraphOptions options;
  options.memory_mode = MemoryMode::kChunkedStream;
  options.stream_chunk_bytes = 4096;
  RunReport chunked = EtaGraph(options).Run(csr, Algo::kBfs, 0);
  ASSERT_FALSE(chunked.oom);
  // Whole-chunk granularity: transfers are a multiple of the chunk size and
  // at least cover the traversed adjacency.
  EXPECT_GT(chunked.migrated_bytes, 0u);
  EXPECT_EQ(chunked.migrated_bytes % options.stream_chunk_bytes, 0u);

  options.memory_mode = MemoryMode::kUnifiedOnDemand;
  RunReport um = EtaGraph(options).Run(csr, Algo::kBfs, 0);
  EXPECT_EQ(chunked.labels, um.labels);
}

TEST(ChunkedStream, ReStreamsUnderWindowPressure) {
  graph::Csr csr = SmallSocialGraph();
  EtaGraphOptions options;
  options.memory_mode = MemoryMode::kChunkedStream;
  options.stream_chunk_bytes = 4096;
  // A tiny device forces a small window: chunks evict and re-stream, so the
  // total streamed volume exceeds the topology size.
  options.spec.device_memory_bytes = 320 * 1024;
  RunReport r = EtaGraph(options).Run(csr, Algo::kSssp, 0);
  ASSERT_FALSE(r.oom);
  EXPECT_EQ(r.labels, CpuReference(csr, Algo::kSssp, 0));
}

}  // namespace
}  // namespace eta::core
