// QueryScheduler — bounded admission queue with priority + FIFO ordering
// and start-deadline expiry.
//
// Admission control happens at Admit(): a full queue rejects the request
// outright (the caller records QueryStatus::kRejected). Dispatch order is
// highest priority first, FIFO within a priority level. Requests whose
// queueing deadline passes before dispatch are swept out by
// ExpireDeadlines() and reported as timed out — an overloaded engine sheds
// load explicitly instead of building unbounded queues.
//
// Implementation: entries append to a stable store and dispatch through
// per-(algo, graph) binary heaps of store indices ordered by
// (priority desc, seq asc). Pops mark tombstones instead of erasing from
// the middle of a vector, so dispatch is O(log depth) amortized rather
// than O(depth) — the difference is visible at the queue depths a sharded
// fleet drains into one scheduler. The (priority, seq) order is a total
// order (seqs are unique), so pop order is exactly the order the previous
// scan-and-erase implementation produced.
//
// EDF mode (DESIGN.md section 15): with `edf` on, the order within a
// priority class becomes earliest effective deadline first — the request's
// start deadline minus the caller-supplied running-mean service estimate
// for its algorithm, frozen at admission so heap invariants (and double
// runs) hold. Priority-class precedence is preserved: gold never starves
// behind an earlier-deadline bronze. Requests without a deadline carry an
// infinite key and fall back to FIFO behind every deadlined peer of their
// class. With `edf` off the comparator never reads the key, so pop order
// is byte-identical to the legacy (priority desc, seq asc) order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "serve/types.hpp"

namespace eta::serve {

class QueryScheduler {
 public:
  explicit QueryScheduler(size_t capacity, bool edf = false)
      : capacity_(capacity), edf_(edf) {}

  /// Enqueues `request`; returns false (reject) if the queue is full.
  /// `service_estimate_ms` is the caller's running-mean service estimate
  /// for the request's algorithm at admission time — only read in EDF mode,
  /// where the effective deadline is StartDeadline() - estimate.
  bool Admit(const Request& request, double service_estimate_ms = 0);

  bool Empty() const { return live_ == 0; }
  size_t Depth() const { return live_; }

  /// Removes and returns every queued request that Request::ExpiredAt(now_ms)
  /// — i.e. whose start deadline lies strictly before `now_ms`; a request
  /// whose deadline equals `now_ms` stays queued and dispatchable. Returned
  /// in admission order.
  std::vector<Request> ExpireDeadlines(double now_ms);

  /// Pops the highest-priority (then oldest) request; nullopt when empty.
  std::optional<Request> PopNext();

  /// Returns (a copy of) the request PopNext would pop, without popping —
  /// what the async dispatcher's pre-staging looks at to decide which
  /// graph to stage on the copy stream while the compute engine is busy.
  std::optional<Request> PeekNext() const;

  /// Pops up to `max_count` queued requests running `algo` against
  /// `graph_id`, in priority/FIFO order — the batcher's fold operation.
  std::vector<Request> PopCompatible(core::Algo algo, uint32_t graph_id,
                                     uint32_t max_count);

 private:
  struct Entry {
    Request request;
    uint64_t seq = 0;  // admission order, the FIFO tiebreaker
    /// Effective deadline (StartDeadline - service estimate), frozen at
    /// admission; +inf for deadline-free requests. Ignored unless edf_.
    double edf_key = 0;
    bool live = false;
  };

  /// One dispatch lane per (graph, algo) pair, keyed so iteration order is
  /// deterministic. Lanes hold indices into entries_; dead indices are
  /// pruned lazily at the heap top.
  static uint64_t LaneKey(core::Algo algo, uint32_t graph_id) {
    return (uint64_t{graph_id} << 8) | static_cast<uint64_t>(algo);
  }

  /// Heap comparator: true when entry `a` must pop *after* entry `b`
  /// (std::push_heap keeps the best-to-pop entry at the front).
  bool PopsAfter(uint32_t a, uint32_t b) const;
  /// The same total order on entry references — shared by the lane heaps
  /// and PeekNext's const scan so every consumer agrees on pop order.
  bool EntryPopsAfter(const Entry& ea, const Entry& eb) const;

  /// Drops dead indices off the lane's top; returns the live top index or
  /// UINT32_MAX when the lane is empty (empty lanes are erased by callers).
  uint32_t PruneTop(std::vector<uint32_t>& lane);

  /// Removes entry `index` (already popped from its lane) from the store.
  Request Take(uint32_t index);

  /// Rebuilds the store and lanes without dead entries once tombstones
  /// dominate, keeping every per-pop cost amortized.
  void MaybeCompact();

  size_t capacity_;
  bool edf_ = false;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  std::vector<Entry> entries_;
  std::map<uint64_t, std::vector<uint32_t>> lanes_;
  /// PeekNext memo, valid until the live set next mutates — the async
  /// dispatcher peeks once per shard per event-loop tick, which would
  /// otherwise rescan the whole store on every idle iteration.
  mutable bool peek_valid_ = false;
  mutable std::optional<Request> peek_cache_;
};

}  // namespace eta::serve
