file(REMOVE_RECURSE
  "CMakeFiles/hybrid_bfs_test.dir/hybrid_bfs_test.cpp.o"
  "CMakeFiles/hybrid_bfs_test.dir/hybrid_bfs_test.cpp.o.d"
  "hybrid_bfs_test"
  "hybrid_bfs_test.pdb"
  "hybrid_bfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_bfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
