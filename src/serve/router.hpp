// ShardedEngine — a fleet of GraphSessions behind one admission front.
//
// The sharded fleet is the serving-layer step past the single-session
// ServeEngine: N shards, each owning one simulated device, replayed under
// one deterministic discrete-event loop. Three policies live here:
//
//   Load-aware routing.  An arriving request goes to the live shard with
//   the lowest estimated backlog: the time until the shard is next free
//   plus the sum of its queued requests costed by the same per-algorithm
//   running-mean service-time estimator the cost-model observations feed
//   (ServeReport::cost_observations). Ties break to the lowest shard
//   index; if the chosen queue is full the next-best shard is tried, and a
//   request is rejected only when every live shard's queue is full.
//
//   Fault-aware routing.  When a shard's device is lost (or staging
//   fails), the shard is quarantined: its queued requests are drained and
//   re-routed to healthy peers at the fault time instead of stalling
//   behind the rebuild, while the in-flight batch retries on the re-staged
//   device under the shard's rebuild budget. A shard whose budget runs dry
//   is dead — drained one last time and never routed to again. When every
//   shard is dead, admission falls through to the CPU reference path, so
//   an admitted request always completes (served or degraded, never lost).
//
//   LRU residency.  Each shard serves the whole graph catalog but keeps at
//   most `device_mem_budget_bytes` of graphs resident, evicting the
//   least-recently-used session to make room (estimated via
//   core::ResidentGraph::EstimateDeviceBytes before paying the build,
//   charged exactly via DeviceBytesPeak after). A single graph larger than
//   the budget may still be staged alone — the budget bounds concurrent
//   residency, it does not make graphs unservable.
//
// Determinism contract: the replay is a pure function of (graph catalog,
// trace, options) — shard count included. Routing, draining, eviction and
// the event order are all derived from the simulated clock and shard
// index, never from host time or iteration order of unordered containers;
// two identically-configured runs render byte-identical reports and
// replay files. Unlike the single engine, a sharded dispatch folds only
// already-queued compatible requests (no batch-window hold): the time a
// shard spends busy is the natural window in which its queue accumulates,
// and holding N independent windows open would couple the shards' clocks.
//
// Async dispatch (ShardedOptions::async_dispatch, DESIGN.md section 11):
// each shard owns a sim::StreamScheduler modelling one compute engine plus
// one copy engine per direction. A dispatch becomes a per-dispatch stream
// (cold staging as a copy op, launch waves as compute ops); while the
// compute engine is busy, the next queued graph pre-stages on its own copy
// stream and records an event the consuming dispatch waits on. The replay
// stays a pure function of its inputs — the stream schedule is derived
// from the same simulated clock, and double runs stay byte-identical. On a
// single-graph catalog the head graph is always resident, no pre-staging
// triggers, and the async replay is byte-identical to the sync one (the
// equivalence scripts/check.sh --async gates); multi-graph catalogs keep
// bit-identical per-request answers while timestamps shift earlier. A
// launch fault fails only its own stream: the dispatch's remaining waves
// cancel at the fault time, pre-stages on other streams keep running, and
// the quarantine/rebuild path proceeds exactly as in the sync dispatcher.
//
// Per-shard fault injection: with ShardedOptions::shard_faults set, shard
// i uses shard_faults[i] verbatim (the way a test pins a device loss to
// one shard — scripted `*_at` one-shots ignore the seed, so without an
// override they would fire on every shard at once). Otherwise each shard
// derives its injector from the base config with seed + shard index, so a
// fleet under random fault rates does not fail in lockstep.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "serve/report.hpp"
#include "serve/types.hpp"
#include "sim/fault.hpp"

namespace eta::serve {

struct ShardedOptions {
  /// Per-shard serving knobs (mode, queue capacity, max_batch, rebuild
  /// budget, CPU fallback throughput, graph/device options). The mode must
  /// be session-based; kNaivePerQuery has no session to shard.
  /// batch_window_ms is ignored (see the determinism contract above).
  ServeOptions base{};
  uint32_t shards = 2;
  /// Per-shard resident-graph budget in bytes; 0 = unlimited (no eviction).
  uint64_t device_mem_budget_bytes = 0;
  /// Optional per-shard fault-config overrides: shard i uses
  /// shard_faults[i] when i < shard_faults.size(), else the derived base
  /// config (base.graph.faults with seed + i).
  std::vector<sim::FaultConfig> shard_faults;
  /// Stream-based async dispatch (DESIGN.md section 11): each shard runs a
  /// sim::StreamScheduler; dispatches become small event DAGs (stage op ->
  /// event -> launch waves on a compute stream), and while a shard's
  /// compute engine is busy the dispatcher pre-stages the next queued
  /// graph on the copy stream (build + hoisted topology prefetch), so
  /// staging overlaps compute instead of serializing behind it. Off by
  /// default; the sync path is untouched when false.
  bool async_dispatch = false;
  /// Test-only DAG-bug plants (the etaverify analog of
  /// EtaGraphOptions::inject): surgically reintroduces the ordering-bug
  /// classes the static verifier exists to catch, inside the real async
  /// dispatcher, without perturbing the functional answers — the shard
  /// clock still honours the pre-stage ready time, so replay diffs stay
  /// green while the recorded DAG carries the defect. Never enable
  /// outside tests/gates; requires async_dispatch.
  enum class DagPlant : uint8_t {
    kNone,
    /// Drop the dispatch's Wait on the pre-stage ready event: the launch
    /// waves race the staging copy (race + use-before-ready).
    kDropReadyWait,
    /// Swap the Record/Wait pair: the pre-stage records nothing, and the
    /// consuming dispatch waits first (an unbound no-op) then records on
    /// the pre-stage stream (wait-unrecorded + races).
    kSwapRecordWait,
    /// Enqueue a second, duplicate pre-stage copy of the same buffer on
    /// its own stream with no ordering (write-write race).
    kDoublePrestage,
  };
  DagPlant plant = DagPlant::kNone;

  /// Backlog autoscaling (DESIGN.md section 15). Armed when backlog_ms > 0
  /// and min_shards < shards: the fleet starts with `min_shards` active
  /// shards and scales the active count up/down from the mean backlog
  /// estimate over active live shards — the same signal the brownout
  /// ladder watches — through a HysteresisLadder with thresholds
  /// backlog_ms * 1, * 2, ... (one level per standby shard) and
  /// OverloadOptions::hysteresis. Scale-up activates the lowest-index
  /// standby; scale-down deactivates the highest-index active shard once
  /// it is idle, draining its queue to peers. Sessions stay resident on a
  /// deactivated shard (warm standby). Scale events are recorded on the
  /// simulated clock in active-shard-count units
  /// (ServeReport::scale_events). Default-off: the fixed-fleet event loop
  /// and report bytes are unchanged.
  struct AutoscaleOptions {
    uint32_t min_shards = 1;
    double backlog_ms = 0;
  };
  AutoscaleOptions autoscale{};

  /// True when autoscaling is armed for this fleet configuration.
  bool AutoscaleEnabled() const {
    return autoscale.backlog_ms > 0 && autoscale.min_shards < shards;
  }
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedOptions options = {}) : options_(options) {}

  const ShardedOptions& Options() const { return options_; }

  /// Replays `trace` (sorted by arrival_ms; every Request::graph_id must
  /// index `graphs`) against the fleet and returns the fleet report with
  /// per-shard accounting in report.shard_stats. The per-request outcomes
  /// are in report.results, sorted by request id.
  ServeReport ServeMany(std::span<const graph::Csr* const> graphs,
                        const std::vector<Request>& trace) const;

  /// Single-graph convenience: the catalog is just `csr` (graph_id 0).
  ServeReport Serve(const graph::Csr& csr, const std::vector<Request>& trace) const;

 private:
  ShardedOptions options_;
};

}  // namespace eta::serve
