// Serving-layer metrics registry (DESIGN.md section 9): counters, gauges,
// and fixed-bucket histograms keyed by name + label set, rendered as
// Prometheus text exposition (etagraph_serve --metrics-out=FILE) and folded
// into ServeReport.
//
// Histograms keep both the fixed bucket counts (what the Prometheus
// `_bucket` lines report) and the raw samples, so quantiles are *exact*
// nearest-rank percentiles of the observed values, not bucket-boundary
// interpolations. Raw-sample retention is bounded
// (FixedHistogram::kMaxRawSamples) so sustained traffic cannot grow a
// histogram without limit: runs at or under the cap behave exactly as
// before, while beyond it Percentile falls back to a deterministic
// nearest-rank over the fixed buckets (see Percentile). The replay engine
// is deterministic and single-threaded, so the registry does no locking;
// everything renders in insertion order, making the exposition
// byte-deterministic for identically-seeded runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eta::serve {

/// Label set attached to one child of a metric family, in render order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Inc(double delta = 1) { value_ += delta; }
  double Value() const { return value_; }

 private:
  double value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double Value() const { return value_; }

 private:
  double value_ = 0;
};

class FixedHistogram {
 public:
  /// `bounds` are inclusive bucket upper bounds, strictly increasing; a
  /// +Inf bucket is implicit. Prometheus-style cumulative counts come out
  /// of CumulativeCount.
  explicit FixedHistogram(std::vector<double> bounds);

  /// Raw samples retained for exact percentiles are capped here; counts,
  /// sum, min/max, and the bucket counts stay exact past the cap.
  static constexpr size_t kMaxRawSamples = 8192;

  void Observe(double value);

  uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  const std::vector<double>& Bounds() const { return bounds_; }

  /// Raw samples currently retained (== Count() until the cap is hit).
  size_t RetainedSamples() const { return samples_.size(); }

  /// Observations <= bounds[i] (the `_bucket{le="..."}` value); pass
  /// i == bounds.size() for the +Inf bucket (== Count()).
  uint64_t CumulativeCount(size_t bucket) const;

  /// Nearest-rank percentile (p in [0,100]; fractional ranks like 99.9
  /// are fine — p99.9 is Percentile(99.9)); returns 0 on an empty
  /// histogram — never NaN. Exact over the raw samples while Count() is at
  /// most kMaxRawSamples; beyond the cap every quantile — the tail p99.9
  /// included — degrades to nearest-rank over the fixed buckets: the
  /// inclusive upper bound of the bucket holding the ranked observation,
  /// or the exact observed maximum when the rank lands in the +Inf bucket
  /// (which is where a beyond-cap p99.9 usually lands, so the extreme
  /// tail stays exact even past the cap). Deterministic either way.
  double Percentile(double p) const;

  double Mean() const { return count_ == 0 ? 0 : sum_ / static_cast<double>(count_); }
  double Min() const { return count_ == 0 ? 0 : min_; }
  double Max() const { return count_ == 0 ? 0 : max_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;  // per-bucket (not cumulative), +Inf last
  std::vector<double> samples_;    // raw observations, capped at kMaxRawSamples
  mutable std::vector<double> sorted_;  // lazy cache for Percentile
  mutable bool sorted_valid_ = true;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Default latency bucket bounds (ms): roughly logarithmic 0.1 .. 5000.
std::vector<double> LatencyBucketsMs();
/// Batch-size buckets: 1, 2, 4, ... 32.
std::vector<double> BatchSizeBuckets();

/// Insertion-ordered registry of metric families. Get* registers the family
/// on first use (help/type recorded once) and interns one child per label
/// set; repeated calls with the same name + labels return the same object.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name, std::string_view help,
                      MetricLabels labels = {});
  Gauge& GetGauge(std::string_view name, std::string_view help, MetricLabels labels = {});
  FixedHistogram& GetHistogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, MetricLabels labels = {});

  /// The child's current value, or nullptr if never registered. (Lookup
  /// helpers for report assembly and tests.)
  const Counter* FindCounter(std::string_view name, const MetricLabels& labels) const;
  const FixedHistogram* FindHistogram(std::string_view name,
                                      const MetricLabels& labels) const;

  /// Prometheus text exposition format: `# HELP` / `# TYPE` per family,
  /// `name{labels} value` per child; histograms expand to cumulative
  /// `_bucket{le="..."}` lines plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  bool Empty() const { return families_.empty(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Child {
    MetricLabels labels;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<FixedHistogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    // unique_ptr children so Get* references stay valid across later
    // registrations (callers cache Counter&/FixedHistogram& across a run).
    std::vector<std::unique_ptr<Child>> children;
  };

  Family& GetFamily(std::string_view name, std::string_view help, Kind kind);
  Child& GetChild(Family& family, MetricLabels labels);

  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace eta::serve
