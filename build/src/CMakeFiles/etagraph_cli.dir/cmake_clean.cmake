file(REMOVE_RECURSE
  "CMakeFiles/etagraph_cli.dir/__/tools/etagraph_cli.cpp.o"
  "CMakeFiles/etagraph_cli.dir/__/tools/etagraph_cli.cpp.o.d"
  "etagraph_cli"
  "etagraph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etagraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
