// Property tests over the profiler counters: structural invariants that
// must hold for every run of every framework on every graph shape. These
// catch accounting bugs in the simulator (double-counted hits, negative
// rooflines, throughput overflows) that functional-correctness tests
// cannot see.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cusha.hpp"
#include "baselines/gunrock.hpp"
#include "baselines/tigr.hpp"
#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sim/profiler.hpp"

namespace eta {
namespace {

using core::Algo;
using core::RunReport;

void CheckCounterInvariants(const RunReport& r, const std::string& label) {
  const sim::Counters& c = r.counters;
  SCOPED_TRACE(label);
  // Hit counts never exceed accesses.
  EXPECT_LE(c.l1_hits, c.l1_accesses);
  EXPECT_LE(c.l2_hits, c.l2_accesses);
  // Every L2 access stems from an L1 miss or a write/atomic; reads that
  // miss both levels become DRAM transactions.
  EXPECT_LE(c.dram_read_transactions, c.l2_accesses);
  // Warp efficiency is a fraction.
  EXPECT_GE(c.WarpEfficiency(), 0.0);
  EXPECT_LE(c.WarpEfficiency(), 1.0 + 1e-9);
  // Thread instructions bounded by 32x warp instructions.
  EXPECT_LE(c.thread_instructions, 32 * c.warp_instructions);
  EXPECT_GE(c.thread_instructions, c.warp_instructions);  // >=1 lane active
  // The roofline clock is positive and kernel time fits inside the total.
  EXPECT_GT(c.elapsed_cycles, 0.0);
  EXPECT_GT(r.kernel_ms, 0.0);
  EXPECT_LE(r.kernel_ms, r.total_ms * (1.0 + 1e-9));
  // Hit rates and IPC are finite and sane.
  EXPECT_GE(c.Ipc(), 0.0);
  EXPECT_LT(c.IpcPerSm(28), 40.0);
}

class CounterInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CounterInvariants, HoldAcrossFrameworksAndAlgos) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 15000;
  params.seed = GetParam();
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(GetParam());

  for (Algo algo : {Algo::kBfs, Algo::kSssp, Algo::kSswp}) {
    CheckCounterInvariants(core::EtaGraph().Run(csr, algo, 0),
                           std::string("eta-") + core::AlgoName(algo));
    CheckCounterInvariants(baselines::Tigr().Run(csr, algo, 0),
                           std::string("tigr-") + core::AlgoName(algo));
    CheckCounterInvariants(baselines::Gunrock().Run(csr, algo, 0),
                           std::string("gunrock-") + core::AlgoName(algo));
    CheckCounterInvariants(baselines::Cusha().Run(csr, algo, 0),
                           std::string("cusha-") + core::AlgoName(algo));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterInvariants, ::testing::Values(1u, 2u, 3u));

TEST(CounterInvariants, TimelineMatchesTotals) {
  graph::RmatParams params;
  params.scale = 11;
  params.num_edges = 30000;
  params.seed = 5;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(5);
  auto r = core::EtaGraph().Run(csr, Algo::kBfs, 0);
  // Every span sits within [0, total]; compute busy time is at least the
  // kernel time (wall spans include stalls).
  for (const auto& span : r.timeline.Spans()) {
    EXPECT_GE(span.start_ms, 0.0);
    EXPECT_LE(span.end_ms, r.total_ms + 1e-9);
  }
  EXPECT_GE(r.timeline.TotalMs(sim::SpanKind::kCompute), r.kernel_ms * 0.5);
}

TEST(CounterInvariants, CushaIsBalancedAndCoalesced) {
  // The model must preserve each framework's architectural signature:
  // CuSha's edge-centric shards are near-perfectly balanced and streaming.
  graph::RmatParams params;
  params.scale = 11;
  params.num_edges = 40000;
  params.seed = 6;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(6);
  auto cusha = baselines::Cusha().Run(csr, Algo::kBfs, 0);
  auto tigr = baselines::Tigr().Run(csr, Algo::kBfs, 0);
  EXPECT_GT(cusha.counters.WarpEfficiency(), 0.9);
  EXPECT_GT(cusha.counters.WarpEfficiency(), tigr.counters.WarpEfficiency());
}

TEST(CounterInvariants, DerivedMetricsAreZeroNotNanOnEmptyCounters) {
  // A device that never launched (or an all-failed query's delta) divides by
  // zero everywhere; every derived metric must degrade to 0, never NaN.
  sim::Counters c;
  EXPECT_DOUBLE_EQ(c.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(c.IpcPerSm(28), 0.0);
  EXPECT_DOUBLE_EQ(c.IpcPerSm(0), 0.0);
  EXPECT_DOUBLE_EQ(c.L1HitRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.L2HitRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.WarpEfficiency(), 0.0);
  EXPECT_DOUBLE_EQ(c.L1Throughput(), 0.0);
  EXPECT_DOUBLE_EQ(c.L2Throughput(), 0.0);
  EXPECT_DOUBLE_EQ(c.DramThroughput(), 0.0);
  EXPECT_FALSE(std::isnan(c.Ipc()));
  EXPECT_FALSE(std::isnan(c.WarpEfficiency()));
}

TEST(CounterInvariants, DerivedMetricsPartialZeroDenominators) {
  // Instructions without cache traffic (and vice versa): only the metric
  // whose denominator is zero degrades.
  sim::Counters c;
  c.warp_instructions = 10;
  c.thread_instructions = 160;
  c.elapsed_cycles = 20;
  EXPECT_DOUBLE_EQ(c.Ipc(), 0.5);
  EXPECT_DOUBLE_EQ(c.WarpEfficiency(), 0.5);
  EXPECT_DOUBLE_EQ(c.L1HitRate(), 0.0);  // zero accesses
  EXPECT_DOUBLE_EQ(c.L2HitRate(), 0.0);

  sim::Counters d;
  d.l1_accesses = 8;
  d.l1_hits = 6;
  EXPECT_DOUBLE_EQ(d.L1HitRate(), 0.75);
  EXPECT_DOUBLE_EQ(d.Ipc(), 0.0);  // zero cycles
}

TEST(CounterInvariants, SinceSubtractsEveryField) {
  sim::Counters base;
  base.warp_instructions = 5;
  base.l1_accesses = 10;
  base.l1_hits = 4;
  base.elapsed_cycles = 100;
  base.launches = 2;
  sim::Counters total = base;
  total.warp_instructions += 7;
  total.l1_accesses += 3;
  total.l1_hits += 2;
  total.elapsed_cycles += 50;
  total.launches += 1;
  sim::Counters delta = total.Since(base);
  EXPECT_EQ(delta.warp_instructions, 7u);
  EXPECT_EQ(delta.l1_accesses, 3u);
  EXPECT_EQ(delta.l1_hits, 2u);
  EXPECT_DOUBLE_EQ(delta.elapsed_cycles, 50.0);
  EXPECT_EQ(delta.launches, 1u);
  // Delta of a snapshot against itself is empty.
  sim::Counters zero = base.Since(base);
  EXPECT_EQ(zero.warp_instructions, 0u);
  EXPECT_DOUBLE_EQ(zero.elapsed_cycles, 0.0);
}

TEST(CounterInvariants, EtaGraphUsesSharedMemoryOnlyWithSmp) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 10000;
  params.seed = 7;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(7);
  core::EtaGraphOptions with, without;
  without.use_smp = false;
  auto a = core::EtaGraph(with).Run(csr, Algo::kBfs, 0);
  auto b = core::EtaGraph(without).Run(csr, Algo::kBfs, 0);
  EXPECT_GT(a.counters.shared_accesses, 0u);
  EXPECT_EQ(b.counters.shared_accesses, 0u);
}

}  // namespace
}  // namespace eta
