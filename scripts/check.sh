#!/usr/bin/env bash
# Tier-1 verification gate.
#
# Configures + builds the whole tree in strict mode (-DETA_STRICT_WARNINGS=ON:
# -Wall -Wextra -Wshadow -Werror everywhere), refuses any compiler warning
# that mentions the serving layer, runs scripts/lint.sh, and then runs the
# full test suite. Usage:
#
#   scripts/check.sh [build-dir]
#   scripts/check.sh --sanitize [build-dir]
#   scripts/check.sh --tsan [build-dir]
#   scripts/check.sh --faults [build-dir]
#   scripts/check.sh --profile [build-dir]
#   scripts/check.sh --shard [build-dir]
#   scripts/check.sh --async [build-dir]
#   scripts/check.sh --verify [build-dir]
#   scripts/check.sh --overload [build-dir]
#   scripts/check.sh --trace [build-dir]
#
# --sanitize builds into a second build tree (default build-asan) with
# AddressSanitizer + UndefinedBehaviorSanitizer (-fno-sanitize-recover=all,
# so any report is fatal) and runs the full test suite under it. The
# simulated kernels execute against real host backing memory, which is
# exactly what makes host ASan meaningful here: a simulator indexing bug
# that slipped past etacheck would be a real heap-buffer-overflow.
#
# --tsan builds into a third build tree (default build-tsan) with
# ThreadSanitizer and runs the full test suite under it. The simulator is
# single-threaded by design; TSan enforces that no stray thread creation or
# unsynchronized shared state sneaks into the stream/async layer, whose
# code is written against real concurrent semantics.
#
# --faults builds normally and then exercises the fault model end to end
# (DESIGN.md section 8): the fault/recovery test binaries, a CLI fault
# matrix (every fault class through etagraph and etagraph_serve, with a
# replay-determinism diff), and the bench_fault_overhead zero-cost contract.
#
# --shard builds normally and then exercises the sharded serving fleet
# (DESIGN.md section 10): the scheduler/router test binaries, the
# max-batch>32 wave-split regression (no abort, replay byte-identical to a
# capped run), a shards x faults matrix with a double-run replay-determinism
# diff and a no-request-lost completeness check, and the fleet-scaling gate
# in bench_serve_throughput.
#
# --async builds normally and then exercises the stream dispatcher
# (DESIGN.md section 11): the stream/event test binary, a sync-vs-async
# replay diff across the serve matrix (shards x faults, single graph —
# the byte-identity contract), a double-run async replay-determinism
# diff, and the staging-overlap throughput-lift gate in
# bench_overlap_serve.
#
# --verify builds normally and then exercises etaverify end to end
# (DESIGN.md section 12): the verifier test binary, a planted-bug matrix
# (each surgical DAG plant x BFS/SSSP must exit nonzero and report the
# expected finding kind with buffer attribution, while the replay stays
# byte-identical to the healthy run — the timing-luck defects replay
# diffs cannot see), a clean multi-graph matrix over shards x faults that
# must verify with zero findings, and a double-run byte-identity diff of
# the verifier's JSON report.
#
# --overload builds normally and then exercises the overload-control stack
# (DESIGN.md section 13): the overload/router test binaries, an open-loop
# CLI matrix (arrivals x shards x faults with the full control stack on:
# SLO admission, brownout, retry budget, breaker), a double-run
# replay-determinism diff with a no-request-lost completeness check on
# every cell, an edf x memo x autoscale matrix (DESIGN.md section 15)
# under the same gates, and the calibrated-capacity gates in
# bench_overload (gold goodput >= 95% at 2x offered load, queues bounded,
# byte-identical double runs, and EDF meeting at least as many per-class
# deadlines as FIFO+priority at 1.2x).
#
# --trace builds normally and then exercises etatrace end to end
# (DESIGN.md section 14): the trace/flight-recorder test binary, a traced
# open-loop matrix (shards x faults x arrivals with --trace-requests,
# --blackbox-out, and --slo-alerts on) whose trace JSON, flight-recorder
# dumps, and replays must be byte-identical across double runs, a
# legacy-leak check (no trace/alert/exemplar vocabulary in untraced
# output), the bench_trace_overhead zero-cost contract (sim-identical
# replays with tracing on), and a bench_snapshot.sh pass that copies the
# fresh BENCH_*.json into the repo root.
#
# --profile builds normally and then exercises etaprof end to end
# (DESIGN.md section 9): the prof/metrics test binaries, a profiled CLI run
# and a profiled 64-query serve replay (trace JSON round-trip validated,
# with python3 as a second parser when available), a byte-identity diff of
# two identically-seeded profiled runs (trace + Prometheus metrics), and
# the bench_profiler_overhead zero-cost contract.
set -euo pipefail

SANITIZE=0
TSAN=0
FAULTS=0
PROFILE=0
SHARD=0
ASYNC=0
VERIFY=0
OVERLOAD=0
TRACE=0
if [[ "${1:-}" == "--sanitize" ]]; then
  SANITIZE=1
  shift
elif [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
elif [[ "${1:-}" == "--faults" ]]; then
  FAULTS=1
  shift
elif [[ "${1:-}" == "--profile" ]]; then
  PROFILE=1
  shift
elif [[ "${1:-}" == "--shard" ]]; then
  SHARD=1
  shift
elif [[ "${1:-}" == "--async" ]]; then
  ASYNC=1
  shift
elif [[ "${1:-}" == "--verify" ]]; then
  VERIFY=1
  shift
elif [[ "${1:-}" == "--overload" ]]; then
  OVERLOAD=1
  shift
elif [[ "${1:-}" == "--trace" ]]; then
  TRACE=1
  shift
fi

if [[ "$SANITIZE" == "1" ]]; then
  BUILD_DIR="${1:-build-asan}"
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DETA_STRICT_WARNINGS=ON \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
elif [[ "$TSAN" == "1" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DETA_STRICT_WARNINGS=ON \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S . -DETA_STRICT_WARNINGS=ON
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

cmake --build "$BUILD_DIR" -j "$(nproc)" 2>&1 | tee "$LOG"

# eta_serve builds with -Werror, so warnings there already fail the build;
# this catches anything that slips through (e.g. headers included elsewhere).
if grep -E "warning:" "$LOG" | grep -q "serve/"; then
  echo "check.sh: warnings in src/serve/ are not allowed:" >&2
  grep -E "warning:" "$LOG" | grep "serve/" >&2
  exit 1
fi

if [[ "$FAULTS" == "1" ]]; then
  # Fault-model gate: targeted test binaries first (fast, exact), then the
  # CLI matrix — one run per fault class per algorithm family, each of which
  # must recover (exit 0) or report the failure cleanly, never crash.
  "$BUILD_DIR/tests/fault_test"
  "$BUILD_DIR/tests/device_memory_test"

  echo "== CLI fault matrix =="
  for spec in "ecc=0.3" "uecc=0.05" "hang=0.05,watchdog=5" "alloc=0.1"; do
    for algo in bfs sssp sswp; do
      echo "-- etagraph --algo=$algo --faults=seed=3,$spec"
      "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo="$algo" \
        --framework=etagraph --faults="seed=3,$spec" --verify > /dev/null
    done
  done
  # Device loss at query 2 of a one-shot run is unrecoverable in-session:
  # the CLI must fail loudly (exit 1), not pretend it has an answer.
  if "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo=bfs \
      --framework=etagraph --faults=lost_at=2 > /dev/null; then
    echo "check.sh: etagraph ignored an injected device loss" >&2
    exit 1
  fi

  echo "== serve fault matrix + replay determinism =="
  REPLAY_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$REPLAY_DIR"' EXIT
  for spec in "ecc=0.3" "uecc=0.05" "hang=0.05,watchdog=5" "lost=0.01" "alloc=0.1" \
              "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
    safe="${spec//[^a-zA-Z0-9]/_}"
    for i in 1 2; do
      "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=32 \
        --faults="seed=3,$spec" --replay-out="$REPLAY_DIR/$safe.$i.txt" > /dev/null
    done
    if ! diff -u "$REPLAY_DIR/$safe.1.txt" "$REPLAY_DIR/$safe.2.txt"; then
      echo "check.sh: replay diverged for --faults=$spec" >&2
      exit 1
    fi
    echo "-- $spec: replays identical"
  done

  echo "== zero-cost contract =="
  "$BUILD_DIR/bench/bench_fault_overhead" --datasets=rmat --scale=0.25
  exit 0
fi

if [[ "$PROFILE" == "1" ]]; then
  # etaprof gate: targeted test binaries first (exact), then end-to-end runs
  # through both tools with every emitter validated and diffed.
  "$BUILD_DIR/tests/prof_test"
  "$BUILD_DIR/tests/metrics_test"

  PROF_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$PROF_DIR"' EXIT

  validate_json() {
    # Our own strict parser already validated the document before it was
    # written; re-check with an independent parser when one is around.
    if command -v python3 > /dev/null; then
      python3 -m json.tool "$1" > /dev/null
    fi
    [[ -s "$1" ]]
  }

  echo "== profiled CLI run =="
  for i in 1 2; do
    # Drop the lines that echo the (per-run) output paths before diffing.
    "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo=bfs \
      --profile --trace-json="$PROF_DIR/cli.$i.json" |
      grep -v "$PROF_DIR" > "$PROF_DIR/cli.$i.txt"
  done
  validate_json "$PROF_DIR/cli.1.json"
  grep -q "etaprof kernel summary" "$PROF_DIR/cli.1.txt"
  if ! diff -u "$PROF_DIR/cli.1.json" "$PROF_DIR/cli.2.json" ||
     ! diff -u "$PROF_DIR/cli.1.txt" "$PROF_DIR/cli.2.txt"; then
    echo "check.sh: profiled CLI runs diverged" >&2
    exit 1
  fi
  echo "-- trace valid, summaries identical"

  echo "== profiled 64-query serve replay =="
  for i in 1 2; do
    "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=64 \
      --profile --trace-json="$PROF_DIR/serve.$i.json" \
      --metrics-out="$PROF_DIR/serve.$i.prom" |
      grep -v "$PROF_DIR" > "$PROF_DIR/serve.$i.txt"
  done
  validate_json "$PROF_DIR/serve.1.json"
  grep -q "^serve_queue_wait_ms_bucket" "$PROF_DIR/serve.1.prom"
  grep -q "^serve_service_ms_bucket" "$PROF_DIR/serve.1.prom"
  grep -q "^serve_cost_error_ms" "$PROF_DIR/serve.1.prom"
  if ! diff -u "$PROF_DIR/serve.1.json" "$PROF_DIR/serve.2.json" ||
     ! diff -u "$PROF_DIR/serve.1.prom" "$PROF_DIR/serve.2.prom" ||
     ! diff -u "$PROF_DIR/serve.1.txt" "$PROF_DIR/serve.2.txt"; then
    echo "check.sh: profiled serve replays diverged" >&2
    exit 1
  fi
  echo "-- trace + metrics valid, replays identical"

  echo "== zero-cost contract =="
  "$BUILD_DIR/bench/bench_profiler_overhead" --datasets=rmat --scale=0.25
  exit 0
fi

if [[ "$SHARD" == "1" ]]; then
  # Sharded-fleet gate: targeted test binaries first (exact), then the
  # end-to-end matrix through etagraph_serve.
  "$BUILD_DIR/tests/serve_test"
  "$BUILD_DIR/tests/router_test"

  SHARD_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$SHARD_DIR"' EXIT

  echo "== max-batch past the attribution cap (wave-split regression) =="
  # Batches wider than the 32-source attribution cap must wave-split, never
  # abort, and answer byte-identically to a capped run of the same trace.
  for mb in 64 32; do
    "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=64 \
      --mean-arrival=0.05 --max-batch="$mb" \
      --replay-out="$SHARD_DIR/mb$mb.txt" > /dev/null
  done
  if ! diff -u "$SHARD_DIR/mb32.txt" "$SHARD_DIR/mb64.txt"; then
    echo "check.sh: --max-batch=64 replay diverged from --max-batch=32" >&2
    exit 1
  fi
  echo "-- no abort, replay identical to the capped run"

  echo "== shards x faults matrix + replay determinism =="
  REQS=48
  for shards in 2 4; do
    for spec in "none" "lost=0.01" \
                "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
      args=(--dataset=rmat --scale=0.1 --requests="$REQS" --mean-arrival=0.1
            --queue-cap="$REQS" --shards="$shards")
      label="shards=$shards faults=$spec"
      if [[ "$spec" != "none" ]]; then
        args+=(--faults="seed=3,$spec")
      fi
      safe="${label//[^a-zA-Z0-9]/_}"
      for i in 1 2; do
        "$BUILD_DIR/src/etagraph_serve" "${args[@]}" \
          --replay-out="$SHARD_DIR/$safe.$i.txt" > /dev/null
      done
      if ! diff -u "$SHARD_DIR/$safe.1.txt" "$SHARD_DIR/$safe.2.txt"; then
        echo "check.sh: sharded replay diverged for $label" >&2
        exit 1
      fi
      # No admitted request may be lost: every trace entry has a terminal
      # outcome, and with ample queues none of them is a rejection.
      outcomes="$(grep -cv '^#' "$SHARD_DIR/$safe.1.txt")"
      if [[ "$outcomes" != "$REQS" ]]; then
        echo "check.sh: $label: $outcomes outcomes for $REQS requests" >&2
        exit 1
      fi
      if grep -q " rejected " "$SHARD_DIR/$safe.1.txt"; then
        echo "check.sh: $label: rejected requests with an ample queue" >&2
        exit 1
      fi
      echo "-- $label: replays identical, all $REQS requests completed"
    done
  done

  echo "== fleet-scaling contract =="
  # A small dataset keeps the gate fast; the 4-shard >= 2x 1-shard exit
  # gate inside the bench is what matters here, not the absolute numbers.
  "$BUILD_DIR/bench/bench_serve_throughput" --datasets=rmat --scale=0.1 \
    --requests=32 --json="$SHARD_DIR/BENCH_serve.json"
  exit 0
fi

if [[ "$ASYNC" == "1" ]]; then
  # Stream-dispatcher gate: the stream/event test binary first (exact),
  # then the end-to-end contracts through etagraph_serve.
  "$BUILD_DIR/tests/stream_test"

  ASYNC_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$ASYNC_DIR"' EXIT

  echo "== sync vs async replay identity (shards x faults, single graph) =="
  # On a single-graph catalog prestaging never fires and every dispatch
  # stream starts on idle engines, so the async schedule must reproduce the
  # sync replay byte for byte — faults included (decisions are drawn at
  # functional execution, identically in both schedules). The async replay
  # must also be deterministic across two runs.
  REQS=48
  for shards in 1 2 4; do
    for spec in "none" "lost=0.01" \
                "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
      args=(--dataset=rmat --scale=0.1 --requests="$REQS" --mean-arrival=0.1
            --queue-cap="$REQS" --shards="$shards")
      label="shards=$shards faults=$spec"
      if [[ "$spec" != "none" ]]; then
        args+=(--faults="seed=3,$spec")
      fi
      safe="${label//[^a-zA-Z0-9]/_}"
      "$BUILD_DIR/src/etagraph_serve" "${args[@]}" \
        --replay-out="$ASYNC_DIR/$safe.sync.txt" > /dev/null
      for i in 1 2; do
        "$BUILD_DIR/src/etagraph_serve" "${args[@]}" --async \
          --replay-out="$ASYNC_DIR/$safe.async.$i.txt" > /dev/null
      done
      if ! diff -u "$ASYNC_DIR/$safe.sync.txt" "$ASYNC_DIR/$safe.async.1.txt"; then
        echo "check.sh: async replay diverged from sync for $label" >&2
        exit 1
      fi
      if ! diff -u "$ASYNC_DIR/$safe.async.1.txt" "$ASYNC_DIR/$safe.async.2.txt"; then
        echo "check.sh: async replay nondeterministic for $label" >&2
        exit 1
      fi
      echo "-- $label: async replay identical to sync, deterministic"
    done
  done

  echo "== staging-overlap throughput contract =="
  # The bench's own exit gates enforce answer identity sync vs async and a
  # throughput lift on at least one staging-heavy mix.
  "$BUILD_DIR/bench/bench_overlap_serve" --scale=0.1 --requests=96 \
    --json="$ASYNC_DIR/BENCH_overlap_serve.json"
  exit 0
fi

if [[ "$VERIFY" == "1" ]]; then
  # etaverify gate: the verifier test binary first (exact), then the
  # planted-bug and clean matrices through etagraph_serve. Every planted
  # run must keep its replay byte-identical to the healthy run — the
  # plants are timing-luck defects the dynamic diffs cannot see — while
  # the static verifier reports them and fails the process.
  "$BUILD_DIR/tests/verify_test"

  VERIFY_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$VERIFY_DIR"' EXIT

  CATALOG_ARGS=(--dataset=rmat --scale=0.1 --requests=60 --mean-arrival=0.01
                --queue-cap=60 --shards=1 --catalog=3 --async)

  echo "== planted-bug matrix (plant x algorithm) =="
  declare -A EXPECT=(
    [drop-ready-wait]="race-read-write use-before-ready"
    [swap-record-wait]="wait-unrecorded"
    [double-prestage]="race-write-write"
  )
  for algo_frac in "--bfs-frac=1 --sssp-frac=0" "--bfs-frac=0 --sssp-frac=1"; do
    # Healthy baseline for this trace mix: must verify clean, and its
    # replay is the byte-identity reference for every plant below.
    frac_safe="${algo_frac//[^a-zA-Z0-9]/_}"
    # shellcheck disable=SC2086
    "$BUILD_DIR/src/etagraph_serve" "${CATALOG_ARGS[@]}" --verify-dag $algo_frac \
      --replay-out="$VERIFY_DIR/healthy.$frac_safe.txt" > /dev/null
    for plant in drop-ready-wait swap-record-wait double-prestage; do
      label="plant=$plant $algo_frac"
      safe="${label//[^a-zA-Z0-9]/_}"
      # shellcheck disable=SC2086
      if "$BUILD_DIR/src/etagraph_serve" "${CATALOG_ARGS[@]}" --verify-dag \
          --plant="$plant" $algo_frac \
          --replay-out="$VERIFY_DIR/$safe.txt" > "$VERIFY_DIR/$safe.out"; then
        echo "check.sh: $label was not reported (exit 0)" >&2
        exit 1
      fi
      for kind in ${EXPECT[$plant]}; do
        if ! grep -q "ERROR \[etaverify\] $kind" "$VERIFY_DIR/$safe.out"; then
          echo "check.sh: $label missing expected finding '$kind':" >&2
          cat "$VERIFY_DIR/$safe.out" >&2
          exit 1
        fi
      done
      # The plant must be invisible to the dynamic replay: byte-identical
      # outcomes, only the static verifier's verdict differs.
      if ! diff -u "$VERIFY_DIR/healthy.$frac_safe.txt" "$VERIFY_DIR/$safe.txt"; then
        echo "check.sh: $label perturbed the replay" >&2
        exit 1
      fi
      echo "-- $label: reported (${EXPECT[$plant]}), replay untouched"
    done
  done

  echo "== clean matrix (shards x faults, multi-graph async) =="
  for shards in 1 2 4; do
    for spec in "none" "lost=0.01" \
                "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
      args=(--dataset=rmat --scale=0.1 --requests=48 --mean-arrival=0.1
            --queue-cap=48 --shards="$shards" --catalog=2 --async --verify-dag)
      label="shards=$shards faults=$spec"
      if [[ "$spec" != "none" ]]; then
        args+=(--faults="seed=3,$spec")
      fi
      safe="${label//[^a-zA-Z0-9]/_}"
      for i in 1 2; do
        if ! "$BUILD_DIR/src/etagraph_serve" "${args[@]}" \
            --verify-json="$VERIFY_DIR/$safe.$i.json" > /dev/null; then
          echo "check.sh: false positive — $label failed verification" >&2
          cat "$VERIFY_DIR/$safe.$i.json" >&2
          exit 1
        fi
      done
      # The verifier's verdict is a pure function of the DAG: two runs of
      # one configuration must emit byte-identical reports.
      if ! diff -u "$VERIFY_DIR/$safe.1.json" "$VERIFY_DIR/$safe.2.json"; then
        echo "check.sh: verifier report nondeterministic for $label" >&2
        exit 1
      fi
      echo "-- $label: clean, report deterministic"
    done
  done
  exit 0
fi

if [[ "$OVERLOAD" == "1" ]]; then
  # Overload-control gate: targeted test binaries first (exact), then the
  # end-to-end open-loop matrix through etagraph_serve with the full
  # control stack engaged, then the calibrated-capacity bench gates.
  "$BUILD_DIR/tests/overload_test"
  "$BUILD_DIR/tests/router_test"

  OV_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$OV_DIR"' EXIT

  echo "== open-loop matrix (arrivals x shards x faults) + replay determinism =="
  # Every cell runs the whole stack: SLO admission with per-class targets,
  # brownout + shed ladders, fleet retry budget, per-shard breaker. Two
  # runs must replay byte-identically, and every generated request must
  # have exactly one terminal outcome (ok / degraded / shedded / rejected /
  # timed out) — overload may refuse work, never lose it.
  REQS=48
  for shards in 1 4; do
    for spec in "none" "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
      args=(--dataset=slashdot --shards="$shards" --queue-cap="$REQS"
            --arrivals="poisson:rate=4000,n=$REQS,gold=0.2,silver=0.3"
            --slo-shed --slo-targets=50,200,1000 --shed-backlog=20,40
            --brownout=10,30 --retry-budget=50,10 --breaker=5,2)
      label="shards=$shards faults=$spec"
      if [[ "$spec" != "none" ]]; then
        args+=(--faults="seed=3,$spec")
      fi
      safe="${label//[^a-zA-Z0-9]/_}"
      for i in 1 2; do
        "$BUILD_DIR/src/etagraph_serve" "${args[@]}" \
          --replay-out="$OV_DIR/$safe.$i.txt" > /dev/null
      done
      if ! diff -u "$OV_DIR/$safe.1.txt" "$OV_DIR/$safe.2.txt"; then
        echo "check.sh: overload replay diverged for $label" >&2
        exit 1
      fi
      outcomes="$(grep -cv '^#' "$OV_DIR/$safe.1.txt")"
      if [[ "$outcomes" != "$REQS" ]]; then
        echo "check.sh: $label: $outcomes outcomes for $REQS requests" >&2
        exit 1
      fi
      echo "-- $label: replays identical, all $REQS requests accounted for"
    done
  done

  echo "== edf x memo x autoscale matrix + replay determinism =="
  # The million-user scheduler additions obey the same accounting contract:
  # EDF pop order, the whole-graph memo, and backlog autoscaling (fleets
  # only — a single shard has nothing to scale) must replay byte-identically
  # and never lose a request.
  for shards in 1 4; do
    for profile in "poisson:rate=4000" "bursty:rate=4000,on=5,off=10"; do
      args=(--dataset=slashdot --shards="$shards" --queue-cap="$REQS"
            --arrivals="$profile,n=$REQS,gold=0.2,silver=0.3,cc=0.15,pr=0.1"
            --slo-shed --slo-targets=50,200,1000 --shed-backlog=20,40
            --brownout=10,30 --edf --memo-window=50)
      if [[ "$shards" -gt 1 ]]; then
        args+=(--autoscale=1,20)
      fi
      label="edf+memo shards=$shards profile=${profile%%:*}"
      safe="${label//[^a-zA-Z0-9]/_}"
      for i in 1 2; do
        "$BUILD_DIR/src/etagraph_serve" "${args[@]}" \
          --replay-out="$OV_DIR/$safe.$i.txt" > /dev/null
      done
      if ! diff -u "$OV_DIR/$safe.1.txt" "$OV_DIR/$safe.2.txt"; then
        echo "check.sh: edf/memo/autoscale replay diverged for $label" >&2
        exit 1
      fi
      outcomes="$(grep -cv '^#' "$OV_DIR/$safe.1.txt")"
      if [[ "$outcomes" != "$REQS" ]]; then
        echo "check.sh: $label: $outcomes outcomes for $REQS requests" >&2
        exit 1
      fi
      echo "-- $label: replays identical, all $REQS requests accounted for"
    done
  done

  echo "== legacy byte-stability (no overload flags => no overload output) =="
  # A classless run must not mention the overload machinery anywhere: the
  # new report rows, JSON keys, and metric families appear only when the
  # feature is active.
  "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=32 \
    --metrics-out="$OV_DIR/legacy.prom" > "$OV_DIR/legacy.txt"
  if grep -Eiq "slo|shed|brownout|breaker|retry_budget|memo|edf|autoscale|scale_event|shards_active|deadline" \
      "$OV_DIR/legacy.txt" "$OV_DIR/legacy.prom"; then
    echo "check.sh: overload output leaked into a legacy run:" >&2
    grep -Ein "slo|shed|brownout|breaker|retry_budget|memo|edf|autoscale|scale_event|shards_active|deadline" \
      "$OV_DIR/legacy.txt" "$OV_DIR/legacy.prom" >&2
    exit 1
  fi
  echo "-- legacy run clean"

  echo "== calibrated-capacity contract =="
  # The bench's own exit gates enforce completeness, bounded queues, and
  # gold goodput >= 95% at 0.8x / 1.2x / 2.0x calibrated capacity, plus
  # byte-identical double runs at every multiple.
  "$BUILD_DIR/bench/bench_overload" --requests=240 \
    --json="$OV_DIR/BENCH_overload.json"
  exit 0
fi

if [[ "$TRACE" == "1" ]]; then
  # etatrace gate: the trace/flight-recorder/alert test binary first
  # (exact), then the end-to-end traced matrix through etagraph_serve.
  "$BUILD_DIR/tests/trace_test"

  TRACE_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$TRACE_DIR"' EXIT

  echo "== traced matrix (shards x faults x arrivals) + double-run identity =="
  # Every cell runs overloaded with the full stack on plus tracing, the
  # flight recorder, and burn-rate alerts. The per-request trace JSON, the
  # blackbox dumps, and the replay must all come back byte-identical on a
  # second run — causality that does not replay is not causality.
  REQS=48
  for shards in 1 4; do
    for spec in "none" "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
      args=(--dataset=slashdot --shards="$shards" --queue-cap="$REQS"
            --arrivals="poisson:rate=4000,n=$REQS,gold=0.2,silver=0.3"
            --slo-shed --slo-targets=50,200,1000 --shed-backlog=20,40
            --brownout=10,30 --trace-requests --slo-alerts)
      label="shards=$shards faults=$spec"
      if [[ "$spec" != "none" ]]; then
        args+=(--faults="seed=3,$spec")
      fi
      safe="${label//[^a-zA-Z0-9]/_}"
      for i in 1 2; do
        "$BUILD_DIR/src/etagraph_serve" "${args[@]}" \
          --trace-request-out="$TRACE_DIR/$safe.$i.trace.json" \
          --blackbox-out="$TRACE_DIR/$safe.$i.blackbox.txt" \
          --replay-out="$TRACE_DIR/$safe.$i.replay.txt" > /dev/null
      done
      for artifact in trace.json blackbox.txt replay.txt; do
        if ! diff -u "$TRACE_DIR/$safe.1.$artifact" "$TRACE_DIR/$safe.2.$artifact"; then
          echo "check.sh: $artifact diverged across runs for $label" >&2
          exit 1
        fi
      done
      if command -v python3 > /dev/null; then
        python3 -m json.tool "$TRACE_DIR/$safe.1.trace.json" > /dev/null
      fi
      # One span tree per generated request, and the always-on recorder
      # left at least the end-of-replay snapshot.
      traces="$(grep -c '"id":' "$TRACE_DIR/$safe.1.trace.json")"
      if [[ "$traces" != "$REQS" ]]; then
        echo "check.sh: $label: $traces span trees for $REQS requests" >&2
        exit 1
      fi
      grep -q "# flight-recorder dump:" "$TRACE_DIR/$safe.1.blackbox.txt"
      echo "-- $label: trace/blackbox/replay identical, $traces span trees"
    done
  done

  echo "== traced CLI retry timeline + double-run identity =="
  for i in 1 2; do
    "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo=bfs \
      --framework=etagraph --faults="seed=3,uecc=0.05" \
      --trace-requests --trace-request-out="$TRACE_DIR/cli.$i.json" \
      --blackbox-out="$TRACE_DIR/cli.$i.blackbox.txt" |
      grep -v "$TRACE_DIR" > "$TRACE_DIR/cli.$i.txt"
  done
  for artifact in json blackbox.txt txt; do
    if ! diff -u "$TRACE_DIR/cli.1.$artifact" "$TRACE_DIR/cli.2.$artifact"; then
      echo "check.sh: CLI trace artifact .$artifact diverged across runs" >&2
      exit 1
    fi
  done
  grep -q "etatrace attempt timeline" "$TRACE_DIR/cli.1.txt"
  echo "-- CLI attempt timeline deterministic"

  echo "== legacy-leak check (features off => no trace vocabulary) =="
  "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=32 \
    --metrics-out="$TRACE_DIR/legacy.prom" > "$TRACE_DIR/legacy.txt"
  if grep -Eq "traced|exemplar|serve_alert|blackbox|burn-rate|burn_rate" \
      "$TRACE_DIR/legacy.txt" "$TRACE_DIR/legacy.prom"; then
    echo "check.sh: trace output leaked into an untraced run:" >&2
    grep -En "traced|exemplar|serve_alert|blackbox|burn-rate|burn_rate" \
      "$TRACE_DIR/legacy.txt" "$TRACE_DIR/legacy.prom" >&2
    exit 1
  fi
  echo "-- legacy run clean"

  echo "== zero-cost contract =="
  # The bench's own exit gates enforce sim-identical replays with tracing
  # on (replay text, makespan, fault counters, Prometheus prefix) and
  # byte-identical traces across double runs.
  "$BUILD_DIR/bench/bench_trace_overhead" --datasets=rmat --scale=0.1 \
    --requests=64 --json="$BUILD_DIR/BENCH_trace_overhead.json"
  scripts/bench_snapshot.sh "$BUILD_DIR"
  exit 0
fi

# Lint gates the default build only; the sanitizer trees run the same
# sources under the same profile, so re-linting them is pure duplication.
if [[ "$SANITIZE" == "0" && "$TSAN" == "0" ]]; then
  scripts/lint.sh "$BUILD_DIR"
fi
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
