// Shared traversal-algorithm abstractions (Section II-C).
//
// All three problems are label-propagation traversals: a source label
// propagates along out-edges, each edge transforming it (Propagate) and
// each vertex keeping the best value seen (Improves + the matching atomic).
// BFS and SSSP minimize; SSWP maximizes a min-width. These helpers are the
// single source of truth for label semantics across EtaGraph, all three
// baselines, and the CPU references.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace eta::core {

inline constexpr graph::Weight kInf = 0xffffffffu;

/// kBfs/kSssp/kSswp are the paper's per-source traversals. kCc (connected
/// components via min-label propagation) and kPr (PageRank) are whole-graph
/// analytics served through the same request plumbing (DESIGN.md section
/// 15): their answer depends only on (algo, graph), never on the request
/// source — which is exactly what makes them memoizable.
enum class Algo { kBfs, kSssp, kSswp, kCc, kPr };

const char* AlgoName(Algo algo);

inline bool IsWeighted(Algo algo) { return algo == Algo::kSssp || algo == Algo::kSswp; }
inline bool IsWidest(Algo algo) { return algo == Algo::kSswp; }
/// True for algorithms whose answer is a whole-graph property (no per-source
/// attribution): identical requests inside a memo window can be answered
/// from a memo table at zero device cost.
inline bool IsWholeGraph(Algo algo) { return algo == Algo::kCc || algo == Algo::kPr; }

/// Initial label value.
inline graph::Weight InitLabel(Algo algo, bool is_source) {
  if (IsWidest(algo)) return is_source ? kInf : 0;
  return is_source ? 0 : kInf;
}

/// Candidate label for an edge's destination, given the source label and
/// edge weight.
inline graph::Weight Propagate(Algo algo, graph::Weight src_label, graph::Weight w) {
  switch (algo) {
    case Algo::kBfs: return src_label + 1;
    case Algo::kSssp: return src_label + w;
    case Algo::kSswp: return src_label < w ? src_label : w;  // min along path
    // Min-label propagation: the label travels unchanged; Improves() (min)
    // keeps the smallest reachable label. kPr never runs on the frontier
    // engine (it lowers to core::RunPageRank), but the case keeps the
    // switch total.
    case Algo::kCc: return src_label;
    case Algo::kPr: return src_label;
  }
  return 0;
}

/// True if `candidate` is strictly better than `current`.
inline bool Improves(Algo algo, graph::Weight candidate, graph::Weight current) {
  return IsWidest(algo) ? candidate > current : candidate < current;
}

/// True if `label` marks a reached vertex.
inline bool Reached(Algo algo, graph::Weight label) {
  return IsWidest(algo) ? label > 0 : label != kInf;
}

/// CPU ground truth for `algo` (dispatches to cpu::reference).
std::vector<graph::Weight> CpuReference(const graph::Csr& csr, Algo algo,
                                        graph::VertexId source);

}  // namespace eta::core
