
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/reference.cpp" "src/cpu/CMakeFiles/eta_cpu.dir/reference.cpp.o" "gcc" "src/cpu/CMakeFiles/eta_cpu.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/eta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
