#include "core/hybrid_bfs.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "sanitizer/sanitizer.hpp"
#include "sim/device.hpp"
#include "util/check.hpp"

namespace eta::core {

namespace {

using graph::EdgeId;
using graph::VertexId;
using graph::Weight;
using sim::Buffer;
using sim::kWarpSize;
using sim::LaneArray;
using sim::WarpCtx;

constexpr uint32_t kMaxK = 48;

struct BfsState {
  Buffer<EdgeId> row;      // out-edges
  Buffer<VertexId> col;
  Buffer<EdgeId> trow;     // in-edges (transpose)
  Buffer<VertexId> tcol;
  Buffer<Weight> levels;
  Buffer<VertexId> frontier_in;   // top-down worklist (read side)
  Buffer<VertexId> frontier_out;  // append side; swapped each iteration
  Buffer<uint32_t> counters;      // [0] = next frontier size / newly visited
};

/// Top-down step: one thread per frontier vertex; push through out-edges.
void TopDownKernel(WarpCtx& w, BfsState& d, uint32_t frontier_size, uint32_t iter,
                   bool use_smp, uint32_t k) {
  uint32_t mask = w.ActiveMask();
  if (!mask) return;
  (void)frontier_size;
  uint64_t base = w.WarpId() * kWarpSize;

  LaneArray<VertexId> v{};
  w.GatherContiguous(d.frontier_in, base, mask, v);
  LaneArray<uint64_t> vi{}, vi1{};
  WarpCtx::ForActive(mask, [&](uint32_t lane) {
    vi[lane] = v[lane];
    vi1[lane] = v[lane] + 1;
  });
  LaneArray<EdgeId> start{}, end{};
  w.Gather(d.row, vi, mask, start);
  w.Gather(d.row, vi1, mask, end);

  LaneArray<uint32_t> deg{};
  uint32_t max_deg = 0;
  const uint32_t max_edges =
      static_cast<uint32_t>(std::min<uint64_t>(d.col.count, UINT32_MAX));
  WarpCtx::ForActive(mask, [&](uint32_t lane) {
    // Row offsets are device-resident and may be corrupt after an ECC
    // fault; no vertex has more edges than the graph, and an inverted
    // pair must not underflow into a ~2^32-long edge loop.
    deg[lane] =
        end[lane] > start[lane] ? std::min(end[lane] - start[lane], max_edges) : 0;
    max_deg = std::max(max_deg, deg[lane]);
  });

  uint32_t nbr_buf[kWarpSize * kMaxK];
  if (use_smp) {
    // Bulk-fetch up to K neighbors; longer lists fall back to direct loads.
    LaneArray<uint64_t> s64{};
    LaneArray<uint32_t> cnt{};
    WarpCtx::ForActive(mask, [&](uint32_t lane) {
      s64[lane] = start[lane];
      cnt[lane] = std::min(deg[lane], k);
    });
    w.GatherBulk(d.col, s64, cnt, mask, nbr_buf, k);
  }

  LaneArray<uint32_t> one{};
  one.fill(1);
  LaneArray<uint64_t> zero_idx{};
  LaneArray<Weight> lvl{};
  lvl.fill(iter);

  for (uint32_t j = 0; j < max_deg; ++j) {
    uint32_t jmask = 0;
    WarpCtx::ForActive(mask, [&](uint32_t lane) {
      if (j < deg[lane]) jmask |= 1u << lane;
    });
    if (!jmask) break;
    LaneArray<VertexId> u{};
    if (use_smp && j < k) {
      WarpCtx::ForActive(jmask, [&](uint32_t lane) { u[lane] = nbr_buf[lane * k + j]; });
      w.ChargeShared(1, jmask);
    } else {
      LaneArray<uint64_t> eidx{};
      WarpCtx::ForActive(jmask, [&](uint32_t lane) { eidx[lane] = start[lane] + j; });
      w.Gather(d.col, eidx, jmask, u);
    }
    LaneArray<uint64_t> u_idx{};
    WarpCtx::ForActive(jmask, [&](uint32_t lane) { u_idx[lane] = u[lane]; });
    LaneArray<Weight> cur{};
    w.Gather(d.levels, u_idx, jmask, cur);
    uint32_t imask = 0;
    WarpCtx::ForActive(jmask, [&](uint32_t lane) {
      if (cur[lane] == kInf) imask |= 1u << lane;
    });
    w.ChargeAlu(2, jmask);
    if (!imask) continue;
    LaneArray<Weight> old{};
    w.AtomicMin(d.levels, u_idx, lvl, imask, old);
    uint32_t cmask = 0;
    WarpCtx::ForActive(imask, [&](uint32_t lane) {
      if (old[lane] == kInf) cmask |= 1u << lane;  // we claimed it
    });
    if (!cmask) continue;
    LaneArray<uint32_t> slot{};
    w.AtomicAdd(d.counters, zero_idx, one, cmask, slot);
    LaneArray<uint64_t> slot_idx{};
    WarpCtx::ForActive(cmask, [&](uint32_t lane) { slot_idx[lane] = slot[lane]; });
    w.Scatter(d.frontier_out, slot_idx, u, cmask);
  }
}

/// Bottom-up step: one thread per vertex; unvisited vertices scan their
/// in-neighbors and stop at the first frontier parent (early exit — the
/// divergence mask shrinks as lanes claim parents).
void BottomUpKernel(WarpCtx& w, BfsState& d, uint32_t iter) {
  uint32_t mask = w.ActiveMask();
  if (!mask) return;
  uint64_t base = w.WarpId() * kWarpSize;

  LaneArray<Weight> my_level{};
  w.GatherContiguous(d.levels, base, mask, my_level);
  uint32_t umask = 0;  // unvisited lanes
  WarpCtx::ForActive(mask, [&](uint32_t lane) {
    if (my_level[lane] == kInf) umask |= 1u << lane;
  });
  w.ChargeAlu(1, mask);
  if (!umask) return;

  LaneArray<EdgeId> start{}, end{};
  w.GatherContiguous(d.trow, base, umask, start);
  w.GatherContiguous(d.trow, base + 1, umask, end);
  LaneArray<uint32_t> deg{};
  uint32_t max_deg = 0;
  WarpCtx::ForActive(umask, [&](uint32_t lane) {
    deg[lane] = end[lane] - start[lane];
    max_deg = std::max(max_deg, deg[lane]);
  });

  LaneArray<uint32_t> one{};
  one.fill(1);
  LaneArray<uint64_t> zero_idx{};
  uint32_t active = umask;
  for (uint32_t j = 0; j < max_deg && active; ++j) {
    uint32_t jmask = 0;
    WarpCtx::ForActive(active, [&](uint32_t lane) {
      if (j < deg[lane]) jmask |= 1u << lane;
    });
    if (!jmask) break;
    LaneArray<uint64_t> eidx{};
    WarpCtx::ForActive(jmask, [&](uint32_t lane) { eidx[lane] = start[lane] + j; });
    LaneArray<VertexId> parent{};
    w.Gather(d.tcol, eidx, jmask, parent);
    LaneArray<uint64_t> p_idx{};
    WarpCtx::ForActive(jmask, [&](uint32_t lane) { p_idx[lane] = parent[lane]; });
    LaneArray<Weight> p_level{};
    w.Gather(d.levels, p_idx, jmask, p_level);
    w.ChargeAlu(2, jmask);

    uint32_t claim = 0;
    WarpCtx::ForActive(jmask, [&](uint32_t lane) {
      if (p_level[lane] == iter - 1) claim |= 1u << lane;
    });
    if (!claim) continue;
    // Relaxed store: each vertex is owned by exactly one thread in pull
    // mode, but other threads concurrently Gather levels for their parent
    // checks — the single-writer protocol a real kernel would express with
    // a volatile/st.relaxed store, declared here so racecheck knows it is
    // the design, not a dropped atomic.
    LaneArray<uint64_t> self{};
    LaneArray<Weight> lvl{};
    WarpCtx::ForActive(claim, [&](uint32_t lane) {
      self[lane] = base + lane;
      lvl[lane] = iter;
    });
    w.ScatterRelaxed(d.levels, self, lvl, claim);
    LaneArray<uint32_t> dummy{};
    w.AtomicAdd(d.counters, zero_idx, one, claim, dummy);
    active &= ~claim;  // early exit for claimed lanes
  }
}

/// Frontier rebuild after pull mode: compact vertices at `level == iter`
/// back into the worklist for the next top-down step.
void CompactKernel(WarpCtx& w, BfsState& d, uint32_t iter) {
  uint32_t mask = w.ActiveMask();
  if (!mask) return;
  uint64_t base = w.WarpId() * kWarpSize;
  LaneArray<Weight> level{};
  w.GatherContiguous(d.levels, base, mask, level);
  uint32_t fmask = 0;
  WarpCtx::ForActive(mask, [&](uint32_t lane) {
    if (level[lane] == iter) fmask |= 1u << lane;
  });
  w.ChargeAlu(1, mask);
  if (!fmask) return;
  LaneArray<uint32_t> one{};
  one.fill(1);
  LaneArray<uint64_t> zero_idx{};
  LaneArray<uint32_t> slot{};
  w.AtomicAdd(d.counters, zero_idx, one, fmask, slot);
  LaneArray<uint64_t> slot_idx{};
  LaneArray<VertexId> self{};
  WarpCtx::ForActive(fmask, [&](uint32_t lane) {
    slot_idx[lane] = slot[lane];
    self[lane] = static_cast<VertexId>(base + lane);
  });
  w.Scatter(d.frontier_in, slot_idx, self, fmask);
}

}  // namespace

HybridBfsResult RunHybridBfs(const graph::Csr& csr, VertexId source,
                             const HybridBfsOptions& options) {
  ETA_CHECK(source < csr.NumVertices());
  ETA_CHECK(options.degree_limit >= 1 && options.degree_limit <= kMaxK);

  HybridBfsResult result;
  const VertexId n = csr.NumVertices();
  const EdgeId m = csr.NumEdges();

  // Preprocessing (untimed, like every framework's format conversion).
  graph::Csr transpose = csr.Transpose();

  sanitizer::Sanitizer checker(options.check);
  sim::Device device(options.spec);
  if (options.check.Enabled()) device.SetObserver(&checker);
  BfsState d;
  try {
    d.row = device.Alloc<EdgeId>(n + 1, sim::MemKind::kUnified, "row");
    d.col = device.Alloc<VertexId>(m, sim::MemKind::kUnified, "col");
    d.trow = device.Alloc<EdgeId>(n + 1, sim::MemKind::kUnified, "trow");
    d.tcol = device.Alloc<VertexId>(m, sim::MemKind::kUnified, "tcol");
    d.levels = device.Alloc<Weight>(n, sim::MemKind::kDevice, "levels");
    d.frontier_in = device.Alloc<VertexId>(n, sim::MemKind::kDevice, "frontier_in");
    d.frontier_out = device.Alloc<VertexId>(n, sim::MemKind::kDevice, "frontier_out");
    d.counters = device.Alloc<uint32_t>(1, sim::MemKind::kDevice, "counters");
  } catch (const sim::OomError&) {
    result.oom = true;
    return result;
  }

  std::copy(csr.RowOffsets().begin(), csr.RowOffsets().end(), d.row.HostSpan().begin());
  std::copy(csr.ColIndices().begin(), csr.ColIndices().end(), d.col.HostSpan().begin());
  std::copy(transpose.RowOffsets().begin(), transpose.RowOffsets().end(),
            d.trow.HostSpan().begin());
  std::copy(transpose.ColIndices().begin(), transpose.ColIndices().end(),
            d.tcol.HostSpan().begin());
  device.MarkHostInitialized(d.row);
  device.MarkHostInitialized(d.col);
  device.MarkHostInitialized(d.trow);
  device.MarkHostInitialized(d.tcol);

  std::vector<Weight> init(n, kInf);
  init[source] = 0;
  device.CopyToDevice(d.levels, std::span<const Weight>(init));
  const VertexId src_val[1] = {source};
  device.CopyToDeviceRange(d.frontier_in, 0, std::span<const VertexId>(src_val), false);
  device.PrefetchAsync(d.row);
  device.PrefetchAsync(d.col);

  bool prefetched_transpose = false;
  bool bottom_up = false;
  uint32_t frontier_size = 1;
  const uint32_t zero[1] = {0};
  double kernel_ms = 0;

  for (uint32_t iter = 1; frontier_size > 0 && iter <= options.max_iterations; ++iter) {
    // Beamer's direction heuristic on frontier size.
    bool want_bottom_up = frontier_size > n / options.alpha;
    bool want_top_down = frontier_size < n / options.beta;
    if (!bottom_up && want_bottom_up) {
      bottom_up = true;
      if (!prefetched_transpose) {
        device.PrefetchAsync(d.trow);
        device.PrefetchAsync(d.tcol);
        prefetched_transpose = true;
      }
    } else if (bottom_up && want_top_down) {
      bottom_up = false;
      // Rebuild the worklist from the level array.
      device.CopyToDevice(d.counters, std::span<const uint32_t>(zero, 1), false);
      auto r = device.Launch("bfs_compact", {n, options.block_size},
                             [&](WarpCtx& w) { CompactKernel(w, d, iter - 1); });
      kernel_ms += r.compute_ms;
      uint32_t rebuilt = 0;
      device.CopyToHost(std::span<uint32_t>(&rebuilt, 1), d.counters, false);
      ETA_CHECK(rebuilt == frontier_size);
    }

    device.CopyToDevice(d.counters, std::span<const uint32_t>(zero, 1), false);
    if (bottom_up) {
      auto r = device.Launch("bfs_bottom_up", {n, options.block_size},
                             [&](WarpCtx& w) { BottomUpKernel(w, d, iter); });
      kernel_ms += r.compute_ms;
      ++result.bottom_up_iterations;
    } else {
      auto r = device.Launch(
          "bfs_top_down", {frontier_size, options.block_size}, [&](WarpCtx& w) {
            TopDownKernel(w, d, frontier_size, iter, options.use_smp,
                          options.degree_limit);
          });
      kernel_ms += r.compute_ms;
    }
    device.CopyToHost(std::span<uint32_t>(&frontier_size, 1), d.counters, false);
    if (!bottom_up) std::swap(d.frontier_in, d.frontier_out);
    ++result.iterations;
  }

  device.Synchronize();
  result.levels.resize(n);
  device.CopyToHost(std::span<Weight>(result.levels), d.levels);
  result.kernel_ms = kernel_ms;
  result.total_ms = device.NowMs();
  result.counters = device.TotalCounters();
  if (options.check.Enabled()) result.check = checker.Report();
  return result;
}

}  // namespace eta::core
