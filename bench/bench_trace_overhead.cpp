// etatrace overhead bench (DESIGN.md §14): the tracer's contract is that an
// instrumented replay is *simulation-identical* to an untraced one — same
// terminal outcomes, same timestamps, same counters, same rendered replay
// text — and costs only host wall time and memory. This bench verifies the
// identity on a sharded, faulted, SLO-classed replay (the emission-heaviest
// configuration) and reports the wall-clock factor an operator pays for
// --trace-requests. It also replays the traced run twice and requires the
// per-request trace JSON and the flight-recorder dumps to come back
// byte-identical — determinism is half the observability contract.
//
// Emits BENCH_trace_overhead.json (one object per dataset). Exit 1 on any
// divergence.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "serve/arrivals.hpp"
#include "serve/router.hpp"
#include "serve/trace_file.hpp"
#include "util/table.hpp"

using namespace eta;

namespace {

template <typename F>
double WallMs(F&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::ParseBenchArgs(argc, argv, {"slashdot", "rmat"});
  const auto requests = static_cast<uint32_t>(env.cl.GetInt("requests", 400));
  const auto shards = static_cast<uint32_t>(env.cl.GetInt("shards", 2));
  const uint64_t seed = static_cast<uint64_t>(env.cl.GetInt("seed", 1));
  const std::string json_path = env.cl.GetString("json", "BENCH_trace_overhead.json");

  util::Table table({"Dataset", "Requests", "Identical?", "Traces deterministic?",
                     "Wall off (ms)", "Wall on (ms)", "Host overhead", "Events"});
  std::string json = "[";
  bool all_ok = true;

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    if (!csr.HasWeights()) csr.DeriveWeights(1);

    serve::ShardedOptions fleet;
    fleet.shards = shards;
    fleet.base.queue_capacity = 64;
    fleet.base.overload.slo_admission = true;
    fleet.base.overload.shed_bronze_backlog_ms = 20;
    fleet.base.overload.brownout_bronze_backlog_ms = 10;
    fleet.base.graph.faults.seed = seed + 7;
    fleet.base.graph.faults.ecc_uncorrectable_rate = 0.01;
    fleet.base.graph.faults.hang_rate = 0.005;

    serve::ArrivalOptions arrivals;
    arrivals.profile = serve::ArrivalProfile::kPoisson;
    arrivals.num_requests = requests;
    arrivals.rate_qps = 2000;
    arrivals.seed = seed;
    const auto trace = serve::GenerateArrivals(csr.NumVertices(), arrivals);

    serve::ShardedOptions traced = fleet;
    traced.base.graph.trace_requests = true;

    serve::ServeReport off;
    serve::ServeReport on;
    serve::ServeReport on2;
    const double wall_off =
        WallMs([&] { off = serve::ShardedEngine(fleet).Serve(csr, trace); });
    const double wall_on =
        WallMs([&] { on = serve::ShardedEngine(traced).Serve(csr, trace); });
    on2 = serve::ShardedEngine(traced).Serve(csr, trace);

    // The identity the tracer promises: the simulation is untouched. The
    // rendered replay text covers every terminal outcome and timestamp
    // byte-for-byte; the untraced Prometheus exposition must come back as
    // an exact prefix of the traced one (tracing only *appends* the
    // exemplar family — every shared family is byte-identical).
    const std::string replay_off = serve::RenderReplayText(off.results);
    const std::string replay_on = serve::RenderReplayText(on.results);
    const std::string prom_off = off.metrics.RenderPrometheus();
    const std::string prom_on = on.metrics.RenderPrometheus();
    const bool identical = replay_off == replay_on &&
                           off.makespan_ms == on.makespan_ms &&
                           off.faults.launch_failures == on.faults.launch_failures &&
                           off.faults.retries == on.faults.retries &&
                           prom_on.rfind(prom_off, 0) == 0;
    // Determinism: the traced double run reproduces the trace JSON and the
    // flight-recorder dumps byte-for-byte.
    const bool deterministic =
        on.RenderRequestTraceJson() == on2.RenderRequestTraceJson() &&
        on.RenderBlackbox() == on2.RenderBlackbox();
    all_ok = all_ok && identical && deterministic;

    size_t events = 0;
    for (const auto& [id, evs] : on.request_traces) events += evs.size();

    const double overhead = wall_off > 0 ? wall_on / wall_off : 0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", overhead);
    table.AddRow({name, std::to_string(trace.size()), identical ? "yes" : "NO",
                  deterministic ? "yes" : "NO", util::FormatDouble(wall_off, 1),
                  util::FormatDouble(wall_on, 1), buf, std::to_string(events)});

    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s{\"dataset\":\"%s\",\"requests\":%zu,\"identical\":%s"
                  ",\"deterministic\":%s,\"wall_off_ms\":%.3f,\"wall_on_ms\":%.3f"
                  ",\"events\":%zu}",
                  json.size() > 1 ? "," : "", name.c_str(), trace.size(),
                  identical ? "true" : "false", deterministic ? "true" : "false",
                  wall_off, wall_on, events);
    json += row;
  }
  json += "]\n";

  std::printf("%s", table.Render("bench: etatrace overhead (off vs on)").c_str());
  std::printf("\ncontract: traced replay simulation-identical to untraced; traces "
              "byte-identical across double runs\n");
  std::ofstream out(json_path);
  out << json;
  std::printf("json: %s\n", json_path.c_str());
  if (!all_ok) {
    std::printf("FAIL: tracing changed the simulation (or traces were "
                "nondeterministic)\n");
    return 1;
  }
  return 0;
}
