// PageRank on the simulated GPU — an extension beyond the paper's three
// traversals that demonstrates two of its claims:
//   1. Section II-C's contrast: PageRank-like algorithms update *all*
//      vertices every iteration, so there is no frontier to exploit — the
//      static virtual active set is built once by a single UDC pass and
//      reused every iteration;
//   2. Section VIII's claim that "SMP can be easily applied to other
//      vertex-centric frameworks": the push kernel bulk-fetches each shadow
//      vertex's K neighbors into shared memory exactly like the traversal
//      kernels, toggleable for ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "sanitizer/config.hpp"
#include "sanitizer/report.hpp"
#include "sim/profiler.hpp"

namespace eta::core {

struct PageRankOptions {
  double damping = 0.85;
  /// Convergence threshold on the max per-vertex rank delta.
  double epsilon = 1e-6;
  uint32_t max_iterations = 100;
  uint32_t degree_limit = 16;
  bool use_smp = true;
  MemoryMode memory_mode = MemoryMode::kUnifiedPrefetch;
  sim::DeviceSpec spec{};
  uint32_t block_size = 256;
  /// etacheck instrumentation; see EtaGraphOptions::check.
  sanitizer::Config check{};
};

struct PageRankResult {
  bool oom = false;
  std::vector<float> ranks;  // sums to ~1 minus sink leakage
  uint32_t iterations = 0;
  double kernel_ms = 0;
  double total_ms = 0;
  sim::Counters counters;
  sanitizer::SanitizerReport check;
};

/// Runs push-style PageRank until convergence. Ranks are device-side f32;
/// verify against cpu::PageRankReference with a small tolerance.
PageRankResult RunPageRank(const graph::Csr& csr, const PageRankOptions& options = {});

}  // namespace eta::core
