
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/eta_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/eta_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/eta_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/eta_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/eta_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/eta_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/profiler.cpp" "src/sim/CMakeFiles/eta_sim.dir/profiler.cpp.o" "gcc" "src/sim/CMakeFiles/eta_sim.dir/profiler.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/eta_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/eta_sim.dir/timeline.cpp.o.d"
  "/root/repo/src/sim/unified_memory.cpp" "src/sim/CMakeFiles/eta_sim.dir/unified_memory.cpp.o" "gcc" "src/sim/CMakeFiles/eta_sim.dir/unified_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
