// Device memory management: the simulated cudaMalloc / cudaMallocManaged.
//
// Allocations live in a single simulated device address space (page-aligned
// bump allocation) with real host backing storage for functional execution.
// Explicit (kDevice) allocations count against the device capacity and
// throw OomError when it is exceeded — this is how every O.O.M entry in the
// paper's Table III reproduces. Unified (kUnified) allocations never fail:
// their pages migrate on demand and may oversubscribe (handled by
// sim::UnifiedMemory).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace eta::sim {

enum class MemKind {
  kDevice,   // cudaMalloc: counts against capacity, OOMs
  kUnified,  // cudaMallocManaged: page-migrated, can oversubscribe
  /// Host-backed storage accessed through a framework-managed staging
  /// buffer (GTS-style chunk streaming). Functionally identical to
  /// kUnified but invisible to the UM page machinery: the framework
  /// charges its own transfers.
  kHostStaged,
};

class OomError : public std::runtime_error {
 public:
  OomError(uint64_t requested, uint64_t used, uint64_t capacity)
      : std::runtime_error("simulated device out of memory"),
        requested_bytes(requested),
        used_bytes(used),
        capacity_bytes(capacity) {}

  uint64_t requested_bytes;
  uint64_t used_bytes;
  uint64_t capacity_bytes;
};

/// Untyped allocation handle. Copyable; the storage is owned by
/// DeviceMemory and outlives handles until Free().
struct RawBuffer {
  uint64_t id = 0;
  uint64_t base_addr = 0;
  uint64_t bytes = 0;          // page-rounded; what capacity accounting charges
  uint64_t payload_bytes = 0;  // caller-requested size; ECC faults only hit this
  MemKind kind = MemKind::kDevice;
  std::byte* data = nullptr;

  bool Valid() const { return data != nullptr; }
};

/// Typed view over a RawBuffer.
template <typename T>
struct Buffer {
  RawBuffer raw;
  uint64_t count = 0;

  bool Valid() const { return raw.Valid(); }
  uint64_t AddrOf(uint64_t index) const {
    ETA_DCHECK(index < count);
    return raw.base_addr + index * sizeof(T);
  }
  /// Direct host access to the backing storage. Host-side code uses this
  /// for initialization and verification; simulated kernels go through
  /// WarpCtx so costs are charged.
  std::span<T> HostSpan() const {
    return {reinterpret_cast<T*>(raw.data), count};
  }
};

class DeviceMemory {
 public:
  explicit DeviceMemory(uint64_t capacity_bytes, uint64_t page_bytes)
      : capacity_(capacity_bytes), page_bytes_(page_bytes) {}

  /// Allocates `bytes` of `kind` memory, zero-initialized and page-aligned.
  /// Throws OomError if a kDevice allocation would exceed capacity
  /// (kUnified allocations always succeed — they can oversubscribe).
  RawBuffer Allocate(uint64_t bytes, MemKind kind, const std::string& name);

  void Free(const RawBuffer& buffer);

  uint64_t DeviceBytesUsed() const { return device_used_; }
  uint64_t UnifiedBytesAllocated() const { return unified_allocated_; }
  uint64_t CapacityBytes() const { return capacity_; }

  /// Looks up the allocation containing `addr`; nullptr if none. Used by
  /// the warp engine to route unified-memory accesses.
  const RawBuffer* Find(uint64_t addr) const;

  /// Every live allocation with its name, ordered by base address — a
  /// deterministic enumeration used for UECC victim selection and the
  /// leakcheck teardown sweep.
  std::vector<std::pair<RawBuffer, std::string>> LiveAllocations() const;

 private:
  struct Record {
    RawBuffer handle;
    std::string name;
    std::unique_ptr<std::byte[]> storage;
  };

  uint64_t capacity_;
  uint64_t page_bytes_;
  uint64_t next_addr_ = 1ULL << 20;  // leave page 0 unmapped
  uint64_t next_id_ = 1;
  uint64_t device_used_ = 0;
  uint64_t unified_allocated_ = 0;
  std::unordered_map<uint64_t, Record> records_;         // id -> record
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;    // (base, id), sorted
};

}  // namespace eta::sim
