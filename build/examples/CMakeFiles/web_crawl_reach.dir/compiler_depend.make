# Empty compiler generated dependencies file for web_crawl_reach.
# This may be replaced when dependencies are built.
