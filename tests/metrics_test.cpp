// Tests for the serving-layer metrics registry (DESIGN.md section 9):
// FixedHistogram edge cases (empty / single-sample / all-in-one-bucket),
// exact nearest-rank percentiles, registry interning, Prometheus text
// exposition (label escaping, cumulative buckets), and the metrics +
// cost-model observations a serve replay populates.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/trace.hpp"
#include "util/json.hpp"

namespace eta::serve {
namespace {

// --- FixedHistogram -----------------------------------------------------------

TEST(FixedHistogram, EmptyIsSafe) {
  FixedHistogram h({1, 2, 4});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  // Percentile of nothing is 0, never NaN.
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 0.0);
    EXPECT_FALSE(std::isnan(h.Percentile(p)));
  }
  for (size_t i = 0; i <= 3; ++i) EXPECT_EQ(h.CumulativeCount(i), 0u);
}

TEST(FixedHistogram, SingleSampleIsEveryPercentile) {
  FixedHistogram h({1, 2, 4});
  h.Observe(1.5);
  EXPECT_EQ(h.Count(), 1u);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 1.5);
  }
  EXPECT_DOUBLE_EQ(h.Min(), 1.5);
  EXPECT_DOUBLE_EQ(h.Max(), 1.5);
  EXPECT_EQ(h.CumulativeCount(0), 0u);  // le=1
  EXPECT_EQ(h.CumulativeCount(1), 1u);  // le=2
  EXPECT_EQ(h.CumulativeCount(3), 1u);  // +Inf
}

TEST(FixedHistogram, AllSamplesInOneBucket) {
  FixedHistogram h({10, 100, 1000});
  for (int i = 0; i < 50; ++i) h.Observe(42);
  EXPECT_EQ(h.CumulativeCount(0), 0u);   // le=10
  EXPECT_EQ(h.CumulativeCount(1), 50u);  // le=100
  EXPECT_EQ(h.CumulativeCount(2), 50u);  // le=1000
  EXPECT_EQ(h.CumulativeCount(3), 50u);  // +Inf
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
}

TEST(FixedHistogram, ExactNearestRankPercentiles) {
  FixedHistogram h(LatencyBucketsMs());
  // 1..100 observed out of order: percentiles are exact, not interpolated
  // from bucket boundaries.
  for (int i = 100; i >= 1; --i) h.Observe(i);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
}

TEST(FixedHistogram, ValuesAboveAllBoundsLandInInf) {
  FixedHistogram h({1, 2});
  h.Observe(1e9);
  EXPECT_EQ(h.CumulativeCount(0), 0u);
  EXPECT_EQ(h.CumulativeCount(1), 0u);
  EXPECT_EQ(h.CumulativeCount(2), 1u);  // +Inf
}

TEST(FixedHistogram, RawSampleRetentionIsBounded) {
  constexpr size_t kCap = FixedHistogram::kMaxRawSamples;
  FixedHistogram h({10, 100, 1000});
  for (size_t i = 0; i < kCap; ++i) h.Observe(5);
  EXPECT_EQ(h.RetainedSamples(), kCap);
  // At the cap every observation is still retained: percentiles are exact.
  EXPECT_DOUBLE_EQ(h.Percentile(99), 5.0);

  for (int i = 0; i < 50; ++i) h.Observe(50);
  for (int i = 0; i < 50; ++i) h.Observe(500);
  EXPECT_EQ(h.Count(), kCap + 100);
  EXPECT_EQ(h.RetainedSamples(), kCap);  // retention stopped growing
  // Counts, sum, extrema and the bucket counts stay exact past the cap...
  EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(kCap) * 5.0 + 50 * 50.0 + 50 * 500.0);
  EXPECT_DOUBLE_EQ(h.Min(), 5.0);
  EXPECT_DOUBLE_EQ(h.Max(), 500.0);
  EXPECT_EQ(h.CumulativeCount(0), kCap);        // le=10
  EXPECT_EQ(h.CumulativeCount(1), kCap + 50);   // le=100
  EXPECT_EQ(h.CumulativeCount(2), kCap + 100);  // le=1000
  // ...while percentiles degrade to nearest-rank over the buckets: the
  // median rank lands in the le=10 bucket, the maximum in le=1000.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
}

TEST(FixedHistogram, OverCapRankInInfBucketReportsExactMax) {
  FixedHistogram h({1});
  for (size_t i = 0; i <= FixedHistogram::kMaxRawSamples; ++i) h.Observe(7.25);
  EXPECT_GT(h.Count(), FixedHistogram::kMaxRawSamples);
  // Every observation is past the last bound, so any rank falls in the
  // +Inf bucket — where the fallback reports the exact observed maximum
  // rather than an unbounded edge.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.25);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 7.25);
}

// --- Registry -----------------------------------------------------------------

TEST(MetricsRegistry, InternsChildrenByNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("requests_total", "Requests.", {{"algo", "BFS"}});
  Counter& b = reg.GetCounter("requests_total", "Requests.", {{"algo", "BFS"}});
  Counter& c = reg.GetCounter("requests_total", "Requests.", {{"algo", "SSSP"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.Inc();
  a.Inc(2);
  EXPECT_DOUBLE_EQ(b.Value(), 3.0);
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);

  EXPECT_EQ(reg.FindCounter("requests_total", {{"algo", "BFS"}}), &a);
  EXPECT_EQ(reg.FindCounter("requests_total", {{"algo", "PR"}}), nullptr);
  EXPECT_EQ(reg.FindCounter("nope", {}), nullptr);
}

TEST(MetricsRegistry, ReferencesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.GetCounter("c0", "h", {});
  for (int i = 0; i < 64; ++i) {
    std::string name = "h";
    name += std::to_string(i);
    reg.GetHistogram(name, "h", {1, 2}, {});
  }
  first.Inc(7);
  EXPECT_DOUBLE_EQ(reg.FindCounter("c0", {})->Value(), 7.0);
}

TEST(MetricsRegistry, RendersPrometheusTextExposition) {
  MetricsRegistry reg;
  reg.GetCounter("serve_queries_total", "Requests by status.", {{"status", "ok"}})
      .Inc(12);
  reg.GetGauge("serve_degradation_ratio", "CPU-degraded fraction.").Set(0.25);
  FixedHistogram& h =
      reg.GetHistogram("serve_latency_ms", "Latency.", {1, 5}, {{"algo", "BFS"}});
  h.Observe(0.5);
  h.Observe(3);
  h.Observe(100);

  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# HELP serve_queries_total Requests by status.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queries_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("serve_queries_total{status=\"ok\"} 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_degradation_ratio gauge\n"), std::string::npos);
  EXPECT_NE(text.find("serve_degradation_ratio 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_latency_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{algo=\"BFS\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{algo=\"BFS\",le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{algo=\"BFS\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_sum{algo=\"BFS\"} 103.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_count{algo=\"BFS\"} 3\n"), std::string::npos);
}

TEST(MetricsRegistry, EscapesLabelValues) {
  MetricsRegistry reg;
  reg.GetCounter("c", "h", {{"path", "a\\b\"c\nd"}}).Inc();
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("c{path=\"a\\\\b\\\"c\\nd\"} 1\n"), std::string::npos);
}

// --- Replay integration -------------------------------------------------------

graph::Csr RandomGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

TEST(ServeMetrics, ReplayPopulatesRegistryAndCostObservations) {
  graph::Csr csr = RandomGraph(31);
  ServeOptions options;
  options.mode = ServeMode::kSessionBatched;

  TraceOptions trace_options;
  trace_options.num_requests = 24;
  trace_options.seed = 3;
  auto trace = GenerateTrace(csr.NumVertices(), trace_options);

  ServeEngine engine(options);
  auto report = engine.Serve(csr, trace);
  ASSERT_EQ(report.completed, 24u);
  EXPECT_FALSE(report.metrics.Empty());

  // Every completed query observed a queue-wait and a service-time sample,
  // and the per-algo splits sum back to the total.
  uint64_t queue_samples = 0;
  uint64_t cost_queries = 0;
  for (const CostObservation& c : report.cost_observations) {
    EXPECT_GT(c.queries, 0u);
    EXPECT_GT(c.mean_service_ms, 0.0);
    EXPECT_GT(c.mean_cycles, 0.0);
    EXPECT_GE(c.mean_abs_error_ms, 0.0);
    cost_queries += c.queries;
    const FixedHistogram* queue =
        report.metrics.FindHistogram("serve_queue_wait_ms", {{"algo", c.algo}});
    const FixedHistogram* service =
        report.metrics.FindHistogram("serve_service_ms", {{"algo", c.algo}});
    const FixedHistogram* cycles =
        report.metrics.FindHistogram("serve_query_cycles", {{"algo", c.algo}});
    ASSERT_NE(queue, nullptr) << c.algo;
    ASSERT_NE(service, nullptr) << c.algo;
    ASSERT_NE(cycles, nullptr) << c.algo;
    EXPECT_EQ(queue->Count(), c.queries);
    EXPECT_EQ(service->Count(), c.queries);
    EXPECT_EQ(cycles->Count(), c.queries);
    EXPECT_NEAR(service->Mean(), c.mean_service_ms, 1e-9);
    EXPECT_NEAR(cycles->Mean(), c.mean_cycles, 1e-6);
    queue_samples += queue->Count();
  }
  EXPECT_EQ(cost_queries, report.completed);
  EXPECT_EQ(queue_samples, report.completed);

  // The exposition renders and is byte-deterministic across identical runs.
  const std::string text = report.metrics.RenderPrometheus();
  EXPECT_NE(text.find("serve_queries_total{algo=\"BFS\",status=\"ok\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_batch_size_bucket"), std::string::npos);
  auto again = ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(again.metrics.RenderPrometheus(), text);

  // Report renderers carry the split: text table and JSON (which must parse).
  const std::string rendered = report.Render("t");
  EXPECT_NE(rendered.find("Latency split (ms)"), std::string::npos);
  EXPECT_NE(rendered.find("Cost model observations"), std::string::npos);
  std::string error;
  auto doc = util::JsonParse(report.Json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const util::JsonValue* algos = doc->Find("algos");
  ASSERT_NE(algos, nullptr);
  EXPECT_EQ(algos->array.size(), report.cost_observations.size());
  for (const util::JsonValue& a : algos->array) {
    EXPECT_NE(a.Find("mean_abs_cost_error_ms"), nullptr);
    EXPECT_NE(a.Find("queue_wait_p99_ms"), nullptr);
    EXPECT_NE(a.Find("service_p50_ms"), nullptr);
  }
}

}  // namespace
}  // namespace eta::serve
