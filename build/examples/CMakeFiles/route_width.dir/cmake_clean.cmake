file(REMOVE_RECURSE
  "CMakeFiles/route_width.dir/route_width.cpp.o"
  "CMakeFiles/route_width.dir/route_width.cpp.o.d"
  "route_width"
  "route_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
