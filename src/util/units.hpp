// Byte-size constants and human-readable formatting.
#pragma once

#include <cstdint>
#include <string>

namespace eta::util {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// "1.5 MB", "12 KB", "3 B" — binary units with short suffixes, matching
/// the paper's table style.
std::string FormatBytes(uint64_t bytes);

/// Parses "64MB", "2GiB", "4096" (defaults to bytes). Aborts on garbage.
uint64_t ParseBytes(const std::string& text);

}  // namespace eta::util
