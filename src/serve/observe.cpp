#include "serve/observe.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/traversal.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace eta::serve {

void FinalizeTraceReport(const ServeOptions& options, const trace::RequestTracer& tracer,
                         const trace::FlightRecorder& recorder, double end_ms,
                         ServeReport* report) {
  ETA_CHECK(report != nullptr);
  report->traced = tracer.enabled();

  // The black box always closes with an end-of-replay snapshot, so
  // --blackbox-out is meaningful (and byte-deterministic) even when no
  // trigger fired mid-replay.
  report->blackbox.push_back(
      {"end-of-replay", end_ms, 0, recorder.Dump("end-of-replay", end_ms, 0)});

  // Exact-tail gauge; registered unconditionally so a traced and an
  // untraced run expose identical families (zero-cost contract).
  report->metrics
      .GetGauge("serve_latency_p999_ms", "Exact p99.9 end-to-end latency (simulated ms)")
      .Set(report->LatencyPercentileMs(0.999));

  if (!tracer.enabled()) return;
  report->request_traces = tracer.Traces();

  // Trace exemplars: the slowest completed request per algo — the trace
  // id behind the per-algo tail percentiles. Results are id-sorted and
  // the comparison is strict, so ties resolve to the lowest id.
  std::map<std::string, std::pair<double, uint64_t>> best;  // algo -> (latency, id)
  for (const QueryResult& r : report->results) {
    if (r.status != QueryStatus::kOk && r.status != QueryStatus::kDegraded) continue;
    auto [it, inserted] = best.try_emplace(core::AlgoName(r.algo), r.LatencyMs(), r.id);
    if (!inserted && r.LatencyMs() > it->second.first) it->second = {r.LatencyMs(), r.id};
  }
  for (const auto& [algo, entry] : best) report->latency_exemplars[algo] = entry.second;
  for (const auto& [algo, id] : report->latency_exemplars) {
    report->metrics
        .GetGauge("serve_latency_exemplar_request",
                  "Trace id of the slowest completed request per algo", {{"algo", algo}})
        .Set(static_cast<double>(id));
  }

  // Chrome-trace request tracks, merged onto the serve clock next to the
  // existing queue/device tracks. Only when the replay also profiled —
  // --trace-json requires --profile, and an unprofiled trace stays empty.
  if (options.graph.profile) {
    for (const QueryResult& r : report->results) {
      if (r.status != QueryStatus::kOk && r.status != QueryStatus::kDegraded) continue;
      prof::TraceSpan span;
      span.track = "trace/requests";
      span.name = "req " + std::to_string(r.id);
      span.start_ms = r.arrival_ms;
      span.end_ms = r.finish_ms;
      span.args.push_back({"status", QueryStatusName(r.status), false});
      span.args.push_back({"algo", core::AlgoName(r.algo), false});
      span.args.push_back({"latency_ms", util::FormatDouble(r.LatencyMs(), 4), true});
      report->trace_spans.push_back(std::move(span));
    }
    // Causal decision marks: zero-length spans so shed/route/fault edges
    // line up against the request and device tracks.
    for (const auto& [id, events] : report->request_traces) {
      for (const trace::TraceEvent& e : events) {
        if (e.kind == trace::EventKind::kAdmit || e.kind == trace::EventKind::kComplete) {
          continue;
        }
        prof::TraceSpan span;
        span.track = "trace/decisions";
        span.name = std::string(trace::EventKindName(e.kind)) + " req " + std::to_string(id);
        span.start_ms = e.at_ms;
        span.end_ms = e.at_ms;
        if (e.shard >= 0) {
          span.args.push_back({"shard", std::to_string(e.shard), true});
        }
        const char* status = trace::EventStatusName(e.kind, e.status);
        if (status[0] != '\0') span.args.push_back({"reason", status, false});
        if (e.op_id >= 0) {
          span.args.push_back({"op", std::to_string(e.op_id), true});
        }
        report->trace_spans.push_back(std::move(span));
      }
    }
  }
}

void EvaluateSloAlerts(const OverloadOptions& options,
                       const trace::AlertOptions& alert_options, ServeReport* report) {
  ETA_CHECK(report != nullptr);
  if (!alert_options.enabled) return;
  for (SloClass cls : {SloClass::kBronze, SloClass::kSilver, SloClass::kGold}) {
    const double target = SloTargetMs(options, cls);
    std::vector<trace::AlertSample> samples;
    for (const QueryResult& r : report->results) {
      if (r.slo != cls) continue;
      const bool completed =
          r.status == QueryStatus::kOk || r.status == QueryStatus::kDegraded;
      // Every classed outcome is a budget observation: a shed, timeout,
      // or rejection burns budget exactly like a late completion.
      samples.push_back({r.finish_ms, completed && r.LatencyMs() <= target});
    }
    if (samples.empty()) continue;
    // Results are id-sorted; the alert series runs on the sim clock.
    // stable_sort keeps id order within a tie, so the series (and the
    // rendered transitions) are byte-deterministic.
    std::stable_sort(samples.begin(), samples.end(),
                     [](const trace::AlertSample& a, const trace::AlertSample& b) {
                       return a.at_ms < b.at_ms;
                     });
    report->alerts.push_back(
        trace::EvaluateBurnRate(SloClassName(cls), samples, alert_options));
  }
  MetricsRegistry& m = report->metrics;
  for (const trace::AlertSeries& a : report->alerts) {
    m.GetGauge("serve_alert_firing", "Burn-rate alert state at end of replay (1 = firing)",
               {{"class", a.name}})
        .Set(a.firing_at_end ? 1 : 0);
    m.GetCounter("serve_alert_fired_total", "Transitions into the firing state",
                 {{"class", a.name}})
        .Inc(static_cast<double>(a.fired));
    m.GetGauge("serve_alert_max_fast_burn", "Worst fast-window error-budget burn rate",
               {{"class", a.name}})
        .Set(a.max_fast_burn);
  }
}

}  // namespace eta::serve
