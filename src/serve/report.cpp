#include "serve/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/table.hpp"

namespace eta::serve {

double ServeReport::ThroughputQps() const {
  return makespan_ms > 0 ? static_cast<double>(completed) / (makespan_ms / 1000.0) : 0;
}

double ServeReport::LatencyPercentileMs(double q) const {
  if (latency_us.Count() == 0) return 0;
  return static_cast<double>(latency_us.Percentile(q)) / 1000.0;
}

std::string ServeReport::Render(const std::string& title) const {
  util::Table table({"Metric", "Value"});
  auto row = [&](const std::string& name, const std::string& value) {
    table.AddRow({name, value});
  };
  row("mode", ServeModeName(mode));
  row("requests", std::to_string(total_requests));
  row("completed", std::to_string(completed));
  row("rejected", std::to_string(rejected));
  row("timed out", std::to_string(timed_out));
  row("degraded (cpu fallback)", std::to_string(degraded));
  row("dispatches", std::to_string(batches));
  if (session_rebuilds > 0) row("session rebuilds", std::to_string(session_rebuilds));
  if (faults.launch_failures > 0 || faults.ecc_corrected > 0) {
    row("launch failures", std::to_string(faults.launch_failures));
    row("query retries", std::to_string(faults.retries));
    row("ecc corrected", std::to_string(faults.ecc_corrected));
    row("restaged buffers", std::to_string(faults.restaged_buffers));
    row("restaged bytes", std::to_string(faults.restaged_bytes));
    row("backoff (ms)", util::FormatDouble(faults.backoff_ms, 3));
    row("device lost", faults.device_lost ? "yes" : "no");
  }
  row("graph load (ms)", util::FormatDouble(load_ms, 3));
  row("makespan (ms)", util::FormatDouble(makespan_ms, 3));
  row("throughput (qps, simulated)", util::FormatDouble(ThroughputQps(), 1));
  row("latency p50 (ms)", util::FormatDouble(LatencyPercentileMs(0.50), 3));
  row("latency p95 (ms)", util::FormatDouble(LatencyPercentileMs(0.95), 3));
  row("latency p99 (ms)", util::FormatDouble(LatencyPercentileMs(0.99), 3));
  row("mean queue wait (ms)", util::FormatDouble(queue_wait_us.Mean() / 1000.0, 3));
  row("max queue depth", std::to_string(queue_depth.Max()));
  row("mean batch occupancy", util::FormatDouble(MeanBatchOccupancy(), 2));
  row("max batch occupancy", std::to_string(batch_occupancy.Max()));
  row("reached vertices (sum)", std::to_string(reached_total));
  if (check.launches_checked > 0) {
    row("etacheck launches", std::to_string(check.launches_checked));
    row("etacheck errors", std::to_string(check.ErrorCount()));
    row("etacheck warnings", std::to_string(check.WarningCount()));
  }
  return table.Render(title);
}

std::string ServeReport::Json() const {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "{\"mode\":\"%s\",\"requests\":%" PRIu64 ",\"completed\":%" PRIu64
      ",\"rejected\":%" PRIu64 ",\"timed_out\":%" PRIu64 ",\"degraded\":%" PRIu64
      ",\"dispatches\":%" PRIu64 ",\"session_rebuilds\":%" PRIu64
      ",\"load_ms\":%.4f,\"makespan_ms\":%.4f,\"throughput_qps\":%.3f"
      ",\"latency_p50_ms\":%.4f,\"latency_p95_ms\":%.4f,\"latency_p99_ms\":%.4f"
      ",\"mean_batch_occupancy\":%.3f,\"reached_total\":%" PRIu64
      ",\"launch_failures\":%" PRIu64 ",\"query_retries\":%" PRIu64
      ",\"ecc_corrected\":%" PRIu64 ",\"restaged_buffers\":%" PRIu64
      ",\"restaged_bytes\":%" PRIu64 ",\"backoff_ms\":%.4f,\"device_lost\":%s"
      ",\"check_launches\":%" PRIu64 ",\"check_errors\":%" PRIu64
      ",\"check_warnings\":%" PRIu64 "}",
      ServeModeName(mode), total_requests, completed, rejected, timed_out, degraded,
      batches, session_rebuilds, load_ms, makespan_ms, ThroughputQps(),
      LatencyPercentileMs(0.50), LatencyPercentileMs(0.95), LatencyPercentileMs(0.99),
      MeanBatchOccupancy(), reached_total, faults.launch_failures, faults.retries,
      faults.ecc_corrected, faults.restaged_buffers, faults.restaged_bytes,
      faults.backoff_ms, faults.device_lost ? "true" : "false",
      check.launches_checked, static_cast<uint64_t>(check.ErrorCount()),
      static_cast<uint64_t>(check.WarningCount()));
  return buf;
}

}  // namespace eta::serve
