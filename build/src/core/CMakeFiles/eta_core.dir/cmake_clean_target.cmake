file(REMOVE_RECURSE
  "libeta_core.a"
)
