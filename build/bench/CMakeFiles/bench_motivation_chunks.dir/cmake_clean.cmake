file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_chunks.dir/bench_motivation_chunks.cpp.o"
  "CMakeFiles/bench_motivation_chunks.dir/bench_motivation_chunks.cpp.o.d"
  "bench_motivation_chunks"
  "bench_motivation_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
