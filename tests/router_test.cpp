// Tests for the sharded serving fleet (serve::ShardedEngine): answer
// equivalence against the single engine, replay determinism, load-aware
// routing, fault-aware draining of a quarantined shard, and LRU
// eviction/reload under a per-device memory budget.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/framework.hpp"
#include "cpu/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "serve/session.hpp"
#include "serve/trace.hpp"

namespace eta::serve {
namespace {

graph::Csr RandomGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

uint64_t CpuReached(const graph::Csr& csr, core::Algo algo, graph::VertexId source) {
  return cpu::CountReached(core::CpuReference(csr, algo, source),
                           core::IsWidest(algo));
}

std::vector<Request> BurstTrace(uint32_t count, graph::VertexId num_vertices) {
  std::vector<Request> trace;
  trace.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.source = (i * 37) % num_vertices;
    r.arrival_ms = 0;
    trace.push_back(r);
  }
  return trace;
}

const ShardStat& StatFor(const ServeReport& report, uint32_t shard) {
  EXPECT_LT(shard, report.shard_stats.size());
  return report.shard_stats[shard];
}

// --- Answer equivalence -------------------------------------------------------

TEST(ShardedEngine, MatchesSingleEngineAnswers) {
  graph::Csr csr = RandomGraph(21);

  TraceOptions trace_options;
  trace_options.num_requests = 48;
  trace_options.seed = 9;
  std::vector<Request> trace = GenerateTrace(csr.NumVertices(), trace_options);

  ServeOptions base;
  base.mode = ServeMode::kSession;
  base.queue_capacity = 128;

  ServeReport single = ServeEngine(base).Serve(csr, trace);
  ShardedOptions options;
  options.base = base;
  options.shards = 2;
  ServeReport fleet = ShardedEngine(options).Serve(csr, trace);

  ASSERT_EQ(single.results.size(), trace.size());
  ASSERT_EQ(fleet.results.size(), trace.size());
  EXPECT_EQ(fleet.completed, trace.size());
  EXPECT_EQ(fleet.rejected, 0u);
  EXPECT_EQ(fleet.timed_out, 0u);
  EXPECT_EQ(fleet.degraded, 0u);
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(single.results[i].id, fleet.results[i].id);
    ASSERT_EQ(single.results[i].status, QueryStatus::kOk);
    ASSERT_EQ(fleet.results[i].status, QueryStatus::kOk);
    // Which shard served a query must not change its answer.
    EXPECT_EQ(fleet.results[i].reached_vertices, single.results[i].reached_vertices)
        << "request " << fleet.results[i].id;
  }
  EXPECT_EQ(fleet.shard_stats.size(), 2u);
  // Single-engine reports carry no shard table (legacy byte-stability).
  EXPECT_TRUE(single.shard_stats.empty());
  EXPECT_EQ(single.Json().find("\"shards\""), std::string::npos);
  EXPECT_NE(fleet.Json().find("\"shards\""), std::string::npos);
}

// --- Determinism --------------------------------------------------------------

TEST(ShardedEngine, ReplayIsByteIdenticalAcrossRuns) {
  graph::Csr csr = RandomGraph(22);

  TraceOptions trace_options;
  trace_options.num_requests = 64;
  trace_options.mean_interarrival_ms = 0.4;
  trace_options.seed = 5;
  std::vector<Request> trace = GenerateTrace(csr.NumVertices(), trace_options);

  ShardedOptions options;
  options.shards = 3;
  ServeReport a = ShardedEngine(options).Serve(csr, trace);
  ServeReport b = ShardedEngine(options).Serve(csr, trace);

  EXPECT_EQ(a.Render("fleet"), b.Render("fleet"));
  EXPECT_EQ(a.Json(), b.Json());
  EXPECT_EQ(a.metrics.RenderPrometheus(), b.metrics.RenderPrometheus());
}

// --- Load-aware routing -------------------------------------------------------

TEST(ShardedEngine, LoadAwareRoutingSpreadsASaturatingTrace) {
  graph::Csr csr = RandomGraph(23);

  TraceOptions trace_options;
  trace_options.num_requests = 64;
  trace_options.mean_interarrival_ms = 0.05;  // far faster than service time
  trace_options.seed = 3;
  std::vector<Request> trace = GenerateTrace(csr.NumVertices(), trace_options);

  ShardedOptions options;
  options.shards = 4;
  ServeReport report = ShardedEngine(options).Serve(csr, trace);

  EXPECT_EQ(report.completed + report.rejected + report.timed_out, trace.size());
  ASSERT_EQ(report.shard_stats.size(), 4u);
  uint64_t dispatches = 0;
  for (const ShardStat& s : report.shard_stats) {
    // Backlog-aware admission must not starve any shard of a saturating load.
    EXPECT_GE(s.dispatches, 1u) << "shard " << s.shard;
    dispatches += s.dispatches;
  }
  EXPECT_EQ(dispatches, report.batches);
}

// --- Fault-aware routing (device loss on one shard) ---------------------------

TEST(ShardedEngine, DeviceLossDrainsQueuedWorkToHealthyPeers) {
  graph::Csr csr = RandomGraph(24);
  std::vector<Request> trace = BurstTrace(24, csr.NumVertices());

  ShardedOptions options;
  options.shards = 3;
  options.base.max_batch = 4;  // leave a queue behind the in-flight batch
  // Pin a scripted device loss to shard 1 only; shards 0 and 2 stay clean.
  options.shard_faults.resize(3);
  options.shard_faults[1].lost_at = 2;

  ServeReport report = ShardedEngine(options).Serve(csr, trace);

  // Every admitted request completes: served on a healthy peer or degraded,
  // never rejected, timed out, or lost.
  ASSERT_EQ(report.results.size(), trace.size());
  EXPECT_EQ(report.completed, trace.size());
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.timed_out, 0u);
  for (const QueryResult& q : report.results) {
    EXPECT_TRUE(q.status == QueryStatus::kOk || q.status == QueryStatus::kDegraded)
        << "request " << q.id;
    EXPECT_EQ(q.reached_vertices, CpuReached(csr, q.algo, q.source))
        << "request " << q.id;
  }

  ASSERT_EQ(report.shard_stats.size(), 3u);
  const ShardStat& lost = StatFor(report, 1);
  // The scripted loss replays on every rebuild, so the budget runs dry.
  EXPECT_GE(lost.launch_failures, 1u);
  EXPECT_EQ(lost.rebuilds, options.base.max_session_rebuilds);
  EXPECT_TRUE(lost.dead);
  // Its queued requests drained out, and only healthy peers took them in.
  EXPECT_GE(lost.rerouted_out, 1u);
  EXPECT_EQ(lost.rerouted_in, 0u);
  EXPECT_EQ(StatFor(report, 0).rerouted_in + StatFor(report, 2).rerouted_in,
            lost.rerouted_out);
  EXPECT_FALSE(StatFor(report, 0).dead);
  EXPECT_FALSE(StatFor(report, 2).dead);
  EXPECT_EQ(StatFor(report, 0).launch_failures, 0u);
  EXPECT_EQ(StatFor(report, 2).launch_failures, 0u);
  // The in-flight remainder on the dead shard was served degraded.
  EXPECT_GE(lost.degraded, 1u);
  EXPECT_EQ(report.degraded, lost.degraded);

  // The fault surfaces in the metrics output under its shard label.
  const std::string metrics = report.metrics.RenderPrometheus();
  EXPECT_NE(metrics.find("serve_shard_launch_failures_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("serve_shard_rerouted_total{shard=\"1\"}"),
            std::string::npos);
}

TEST(ShardedEngine, FleetWideDeathFallsBackToCpuNotLoss) {
  graph::Csr csr = RandomGraph(25);
  std::vector<Request> trace = BurstTrace(12, csr.NumVertices());
  // Two more arrivals after every shard is dead.
  for (uint32_t i = 0; i < 2; ++i) {
    Request r;
    r.id = 12 + i;
    r.algo = core::Algo::kBfs;
    r.source = i + 1;
    r.arrival_ms = 1e6;
    trace.push_back(r);
  }

  ShardedOptions options;
  options.shards = 2;
  options.shard_faults.resize(2);
  options.shard_faults[0].lost_at = 1;
  options.shard_faults[1].lost_at = 1;

  ServeReport report = ShardedEngine(options).Serve(csr, trace);

  ASSERT_EQ(report.results.size(), trace.size());
  EXPECT_EQ(report.completed, trace.size());
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.degraded, trace.size());  // no device ever survived launch 1
  for (const QueryResult& q : report.results) {
    EXPECT_EQ(q.status, QueryStatus::kDegraded) << "request " << q.id;
    EXPECT_EQ(q.reached_vertices, CpuReached(csr, q.algo, q.source))
        << "request " << q.id;
  }
  for (const ShardStat& s : report.shard_stats) EXPECT_TRUE(s.dead);
}

// --- LRU eviction under the device memory budget ------------------------------

TEST(ShardedEngine, EvictsLeastRecentlyUsedGraphUnderBudget) {
  graph::Csr g0 = RandomGraph(31);
  graph::Csr g1 = RandomGraph(32);
  graph::Csr g2 = RandomGraph(33);
  const graph::Csr* catalog[] = {&g0, &g1, &g2};

  uint64_t max_estimate = 0;
  for (const graph::Csr* g : catalog) {
    max_estimate = std::max(max_estimate, core::ResidentGraph::EstimateDeviceBytes(*g));
  }
  ASSERT_GT(max_estimate, 0u);

  // Room for two residents; the cyclic 0,1,2 access pattern then thrashes
  // LRU on every dispatch after the first two.
  ShardedOptions options;
  options.shards = 1;
  options.device_mem_budget_bytes = 2 * max_estimate;

  std::vector<Request> trace;
  for (uint32_t i = 0; i < 9; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.graph_id = i % 3;
    r.source = 2;
    r.arrival_ms = static_cast<double>(i) * 50.0;  // one dispatch per request
    trace.push_back(r);
  }

  ServeReport report = ShardedEngine(options).ServeMany(catalog, trace);

  ASSERT_EQ(report.results.size(), trace.size());
  EXPECT_EQ(report.completed, trace.size());
  for (const QueryResult& q : report.results) {
    ASSERT_EQ(q.status, QueryStatus::kOk) << "request " << q.id;
  }
  // Eviction must not change answers: each reached count matches the CPU
  // reference on that request's own graph.
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(report.results[i].reached_vertices,
              CpuReached(*catalog[trace[i].graph_id], core::Algo::kBfs, 2))
        << "request " << i;
  }

  ASSERT_EQ(report.shard_stats.size(), 1u);
  const ShardStat& s = report.shard_stats[0];
  // 9 stagings: the first two fit, the other 7 each evict exactly one LRU
  // victim, and 6 of them re-stage a graph staged before.
  EXPECT_EQ(s.evictions, 7u);
  EXPECT_EQ(s.reloads, 6u);
  EXPECT_LE(s.peak_resident_bytes, options.device_mem_budget_bytes);
  EXPECT_GT(s.peak_resident_bytes, 0u);

  const std::string metrics = report.metrics.RenderPrometheus();
  EXPECT_NE(metrics.find("serve_shard_evictions_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("serve_shard_reloads_total{shard=\"0\"}"),
            std::string::npos);
}

TEST(ShardedEngine, OverBudgetGraphStillStagesAlone) {
  graph::Csr g0 = RandomGraph(34);
  graph::Csr g1 = RandomGraph(35);
  const graph::Csr* catalog[] = {&g0, &g1};

  // A budget no graph fits under: the budget bounds concurrent residency,
  // it must not make graphs unservable.
  ShardedOptions options;
  options.shards = 1;
  options.device_mem_budget_bytes = 1;

  std::vector<Request> trace;
  const uint32_t graph_ids[] = {0, 1, 0};
  for (uint32_t i = 0; i < 3; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.graph_id = graph_ids[i];
    r.source = 4;
    r.arrival_ms = static_cast<double>(i) * 50.0;
    trace.push_back(r);
  }

  ServeReport report = ShardedEngine(options).ServeMany(catalog, trace);

  EXPECT_EQ(report.completed, 3u);
  for (const QueryResult& q : report.results) {
    EXPECT_EQ(q.status, QueryStatus::kOk) << "request " << q.id;
  }
  ASSERT_EQ(report.shard_stats.size(), 1u);
  const ShardStat& s = report.shard_stats[0];
  EXPECT_EQ(s.evictions, 2u);  // every switch evicts the lone resident
  EXPECT_EQ(s.reloads, 1u);    // the return to graph 0
  EXPECT_GT(s.peak_resident_bytes, options.device_mem_budget_bytes);
}

// --- Multi-graph serving sanity ----------------------------------------------

TEST(ShardedEngine, ServesAMixedGraphCatalogUnlimited) {
  graph::Csr g0 = RandomGraph(41);
  graph::Csr g1 = RandomGraph(42);
  const graph::Csr* catalog[] = {&g0, &g1};

  std::vector<Request> trace;
  for (uint32_t i = 0; i < 16; ++i) {
    Request r;
    r.id = i;
    r.algo = (i % 2 == 0) ? core::Algo::kBfs : core::Algo::kSssp;
    r.graph_id = i % 2;
    r.source = (i * 53) % g0.NumVertices();
    r.arrival_ms = static_cast<double>(i) * 0.5;
    trace.push_back(r);
  }

  ShardedOptions options;
  options.shards = 2;
  ServeReport report = ShardedEngine(options).ServeMany(catalog, trace);

  EXPECT_EQ(report.completed, trace.size());
  EXPECT_EQ(report.rejected, 0u);
  for (size_t i = 0; i < trace.size(); ++i) {
    const QueryResult& q = report.results[i];
    ASSERT_EQ(q.status, QueryStatus::kOk) << "request " << q.id;
    EXPECT_EQ(q.reached_vertices,
              CpuReached(*catalog[trace[i].graph_id], q.algo, q.source))
        << "request " << q.id;
  }
  // No budget, two graphs per shard at most: nothing is ever evicted.
  for (const ShardStat& s : report.shard_stats) {
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.reloads, 0u);
  }
}

// --- Whole-graph memoization (DESIGN.md section 15) ---------------------------

TEST(ShardedEngine, MemoHitsAreBitIdenticalAcrossRebuildEpochs) {
  graph::Csr g0 = RandomGraph(51);
  graph::Csr g1 = RandomGraph(52);
  const graph::Csr* catalog[] = {&g0, &g1};

  uint64_t max_estimate = 0;
  for (const graph::Csr* g : catalog) {
    max_estimate = std::max(max_estimate, core::ResidentGraph::EstimateDeviceBytes(*g));
  }

  // Budget fits one resident graph: every graph switch retires the other
  // graph's session — a fresh staging epoch that invalidates its memo.
  ShardedOptions options;
  options.shards = 1;
  options.device_mem_budget_bytes = max_estimate;
  options.base.mode = ServeMode::kSession;
  options.base.memo_window_ms = 1e9;

  // cc g0 (compute), cc g0 (hit), cc g1 (evicts g0: epoch ends), cc g1
  // (hit), cc g0 (recompute — its memo was invalidated), cc g0 (hit),
  // pr g0 (compute), pr g0 (hit).
  struct Spec {
    core::Algo algo;
    uint32_t graph;
  };
  const std::vector<Spec> specs = {
      {core::Algo::kCc, 0}, {core::Algo::kCc, 0}, {core::Algo::kCc, 1},
      {core::Algo::kCc, 1}, {core::Algo::kCc, 0}, {core::Algo::kCc, 0},
      {core::Algo::kPr, 0}, {core::Algo::kPr, 0},
  };
  std::vector<Request> trace;
  for (size_t i = 0; i < specs.size(); ++i) {
    Request r;
    r.id = i;
    r.algo = specs[i].algo;
    r.graph_id = specs[i].graph;
    r.source = 0;
    r.arrival_ms = static_cast<double>(i) * 500.0;  // one dispatch per request
    trace.push_back(r);
  }

  ServeReport report = ShardedEngine(options).ServeMany(catalog, trace);

  ASSERT_EQ(report.results.size(), trace.size());
  EXPECT_EQ(report.completed, trace.size());
  for (const QueryResult& q : report.results) {
    ASSERT_EQ(q.status, QueryStatus::kOk) << "request " << q.id;
  }
  // Exactly the four repeats hit the memo (batch_size 0 marks a memo-served
  // answer: no device launch produced it).
  EXPECT_EQ(report.memo_hits, 4u);
  EXPECT_TRUE(report.memo_configured);
  for (size_t i : {1u, 3u, 5u, 7u}) {
    EXPECT_EQ(report.results[i].batch_size, 0u) << "request " << i;
  }
  for (size_t i : {0u, 2u, 4u, 6u}) {
    EXPECT_GE(report.results[i].batch_size, 1u) << "request " << i;
  }
  // Each memo hit is bit-identical to the answer its epoch computed, and
  // the post-invalidation recompute (request 4) reproduces request 0's
  // answer exactly — the deterministic device agrees with itself.
  EXPECT_EQ(report.results[1].reached_vertices, report.results[0].reached_vertices);
  EXPECT_EQ(report.results[3].reached_vertices, report.results[2].reached_vertices);
  EXPECT_EQ(report.results[4].reached_vertices, report.results[0].reached_vertices);
  EXPECT_EQ(report.results[5].reached_vertices, report.results[4].reached_vertices);
  EXPECT_EQ(report.results[7].reached_vertices, report.results[6].reached_vertices);
  // CPU verification: the connected-components answers (memoized or not)
  // equal the host min-label-propagation component count.
  EXPECT_EQ(report.results[0].reached_vertices, CpuAnswer(g0, core::Algo::kCc, 0));
  EXPECT_EQ(report.results[1].reached_vertices, CpuAnswer(g0, core::Algo::kCc, 0));
  EXPECT_EQ(report.results[2].reached_vertices, CpuAnswer(g1, core::Algo::kCc, 0));

  // The memo hits never feed the cost estimator: only device-served queries
  // appear in the per-algo observation counts.
  for (const CostObservation& obs : report.cost_observations) {
    if (obs.algo == "CC") {
      EXPECT_EQ(obs.queries, 3u);
    }
    if (obs.algo == "PR") {
      EXPECT_EQ(obs.queries, 1u);
    }
  }

  // Determinism: a double run renders byte-identical reports, memo hits
  // and all.
  ServeReport again = ShardedEngine(options).ServeMany(catalog, trace);
  EXPECT_EQ(report.Render("memo"), again.Render("memo"));
  EXPECT_EQ(report.Json(), again.Json());
  EXPECT_EQ(report.metrics.RenderPrometheus(), again.metrics.RenderPrometheus());
  EXPECT_NE(report.metrics.RenderPrometheus().find("serve_memo_hits"),
            std::string::npos);
}

// --- Backlog autoscaling (DESIGN.md section 15) -------------------------------

TEST(ShardedEngine, AutoscaleGrowsFleetUnderBacklogAndReportsEvents) {
  graph::Csr csr = RandomGraph(53);

  TraceOptions trace_options;
  trace_options.num_requests = 64;
  trace_options.mean_interarrival_ms = 0.05;  // far faster than service time
  trace_options.seed = 7;
  std::vector<Request> trace = GenerateTrace(csr.NumVertices(), trace_options);

  ShardedOptions options;
  options.shards = 4;
  options.base.queue_capacity = 128;
  options.autoscale.min_shards = 1;
  options.autoscale.backlog_ms = 1.0;
  ASSERT_TRUE(options.AutoscaleEnabled());

  ServeReport report = ShardedEngine(options).Serve(csr, trace);

  // No request is lost to a scale decision.
  ASSERT_EQ(report.results.size(), trace.size());
  EXPECT_EQ(report.completed + report.rejected + report.timed_out, trace.size());

  // The saturating burst grew the fleet past the single seed shard...
  EXPECT_TRUE(report.autoscale_configured);
  ASSERT_FALSE(report.scale_events.empty());
  EXPECT_EQ(report.scale_events.front().from_level, 1u);
  EXPECT_GT(report.scale_events.front().to_level, 1u);
  // ...and the woken standbys actually served work.
  uint64_t standby_dispatches = 0;
  for (size_t i = 1; i < report.shard_stats.size(); ++i) {
    standby_dispatches += report.shard_stats[i].dispatches;
  }
  EXPECT_GE(standby_dispatches, 1u);

  const std::string metrics = report.metrics.RenderPrometheus();
  EXPECT_NE(metrics.find("serve_scale_events_total"), std::string::npos);
  EXPECT_NE(metrics.find("serve_shards_active"), std::string::npos);

  // Determinism: double runs render byte-identical reports, scale events
  // timestamped on the simulated clock included.
  ServeReport again = ShardedEngine(options).Serve(csr, trace);
  EXPECT_EQ(report.Render("autoscale"), again.Render("autoscale"));
  EXPECT_EQ(report.Json(), again.Json());
  EXPECT_EQ(report.metrics.RenderPrometheus(), again.metrics.RenderPrometheus());

  // Legacy byte-stability: the fixed fleet never renders the new vocabulary.
  ShardedOptions fixed = options;
  fixed.autoscale = {};
  ServeReport legacy = ShardedEngine(fixed).Serve(csr, trace);
  EXPECT_FALSE(legacy.autoscale_configured);
  EXPECT_EQ(legacy.Render("fleet").find("scale"), std::string::npos);
  EXPECT_EQ(legacy.metrics.RenderPrometheus().find("serve_shards_active"),
            std::string::npos);
}

}  // namespace
}  // namespace eta::serve
