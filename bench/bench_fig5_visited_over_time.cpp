// Fig 5 reproduction: number of visited vertices over (simulated) time for
// EtaGraph BFS. The paper's observation: growth is nearly linear in time
// regardless of how skewed the per-iteration activation counts are —
// i.e. EtaGraph's throughput is stable across traversal stages. We print
// the (time, visited) series and a least-squares linearity score (R^2).
#include <cmath>

#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(
      argc, argv, {"slashdot", "livejournal", "orkut", "rmat", "uk2005", "sk2005"});

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    auto report = core::EtaGraph().Run(csr, core::Algo::kBfs, graph::kQuerySource);
    const auto& stats = report.iteration_stats;
    if (stats.empty()) continue;

    // R^2 of visited-vs-time.
    double n = 0, sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (const auto& it : stats) {
      double x = it.end_ms, y = static_cast<double>(it.activated_cum);
      n += 1;
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      syy += y * y;
    }
    double cov = n * sxy - sx * sy;
    double varx = n * sxx - sx * sx;
    double vary = n * syy - sy * sy;
    double r2 = (varx > 0 && vary > 0) ? (cov * cov) / (varx * vary) : 1.0;

    std::printf("%-12s iters=%4u  R^2(visited vs time)=%.3f\n",
                graph::FindDataset(name)->paper_name.c_str(), report.iterations, r2);
    // Ten evenly spaced samples of the curve.
    size_t step = std::max<size_t>(1, stats.size() / 10);
    for (size_t i = 0; i < stats.size(); i += step) {
      std::printf("    t=%9.3fms visited=%9llu\n", stats[i].end_ms,
                  static_cast<unsigned long long>(stats[i].activated_cum));
    }
  }
  std::printf("\nshape: R^2 near 1 on the larger datasets (near-linear growth, as in\n"
              "Fig 5); tiny Slashdot finishes in a few iterations and is noisier.\n");
  return 0;
}
