# Empty compiler generated dependencies file for udc_test.
# This may be replaced when dependencies are built.
