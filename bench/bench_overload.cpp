// Overload-control benchmark (DESIGN.md §13): the sharded fleet under an
// open-loop Poisson arrival stream at 0.8x, 1.2x, and 2.0x of its measured
// capacity, with the full control stack on — SLO classes, predictive and
// pressure shedding, and the brownout ladder.
//
// Capacity is calibrated first from a saturating classless burst on the
// same fleet configuration, so the multiples mean the same thing on any
// machine and dataset. The headline claim: under 2x offered load the fleet
// degrades by *policy*, not by collapse — gold goodput stays >= 95%, the
// queues stay bounded, every request is accounted for, and a double run
// replays byte-identically.
//
// Emits BENCH_overload.json (one report object per load multiple).
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/arrivals.hpp"
#include "serve/router.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace eta;

int main(int argc, char** argv) {
  auto env = bench::ParseBenchArgs(argc, argv, {"slashdot"});
  const auto requests = static_cast<uint32_t>(env.cl.GetInt("requests", 600));
  const auto shards = static_cast<uint32_t>(env.cl.GetInt("shards", 2));
  const uint64_t seed = static_cast<uint64_t>(env.cl.GetInt("seed", 1));
  const std::string json_path = env.cl.GetString("json", "BENCH_overload.json");

  const graph::Csr csr = [&] {
    graph::Csr g = bench::Load(env, env.datasets.front());
    if (!g.HasWeights()) g.DeriveWeights(1);
    return g;
  }();
  std::printf("dataset %s: %u vertices, %u edges\n", env.datasets.front().c_str(),
              csr.NumVertices(), csr.NumEdges());

  serve::ShardedOptions fleet;
  fleet.shards = shards;
  fleet.base.queue_capacity = 64;

  // Calibrate: a near-simultaneous classless burst with an unbounded queue
  // saturates the fleet; its throughput is the capacity the load multiples
  // are measured against.
  serve::TraceOptions burst_options;
  burst_options.num_requests = 256;
  burst_options.mean_interarrival_ms = 0.01;
  burst_options.seed = seed;
  const auto burst = serve::GenerateTrace(csr.NumVertices(), burst_options);
  serve::ShardedOptions calibration = fleet;
  calibration.base.queue_capacity = burst.size();
  const double capacity_qps =
      serve::ShardedEngine(calibration).Serve(csr, burst).ThroughputQps();
  std::printf("calibrated capacity: %.1f qps (%u shard%s, saturating burst)\n\n",
              capacity_qps, shards, shards == 1 ? "" : "s");

  // The control stack under test. Thresholds sit well inside the gold
  // target (50 ms): bronze browns out first, then sheds; silver follows at
  // higher rungs; gold is never shed and must keep its SLO.
  fleet.base.overload.slo_admission = true;
  fleet.base.overload.brownout_bronze_backlog_ms = 10;
  fleet.base.overload.brownout_silver_backlog_ms = 30;
  fleet.base.overload.shed_bronze_backlog_ms = 20;
  fleet.base.overload.shed_silver_backlog_ms = 40;

  const double multiples[] = {0.8, 1.2, 2.0};
  util::Table table({"Load", "Class", "Offered", "Ok", "Degraded", "Shed",
                     "Goodput %", "p50 (ms)", "p99 (ms)"});
  std::vector<serve::ServeReport> reports;
  bool gates_ok = true;
  auto fail = [&](const char* what, double multiple) {
    std::printf("FAIL at %.1fx: %s\n", multiple, what);
    gates_ok = false;
  };

  for (double multiple : multiples) {
    serve::ArrivalOptions arrivals;
    arrivals.profile = serve::ArrivalProfile::kPoisson;
    arrivals.rate_qps = capacity_qps * multiple;
    arrivals.num_requests = requests;
    arrivals.gold_fraction = 0.2;
    arrivals.silver_fraction = 0.3;
    arrivals.seed = seed;
    const auto trace = serve::GenerateArrivals(csr.NumVertices(), arrivals);

    serve::ServeReport report = serve::ShardedEngine(fleet).Serve(csr, trace);
    serve::ServeReport replay = serve::ShardedEngine(fleet).Serve(csr, trace);
    if (report.Render("r") != replay.Render("r") || report.Json() != replay.Json() ||
        report.metrics.RenderPrometheus() != replay.metrics.RenderPrometheus()) {
      fail("double run is not byte-identical", multiple);
    }

    const std::string load = util::FormatDouble(multiple, 1) + "x";
    double gold_goodput = 0;
    for (const serve::SloStat& s : report.slo_stats) {
      table.AddRow({load, serve::SloClassName(s.slo), std::to_string(s.offered),
                    std::to_string(s.ok), std::to_string(s.degraded),
                    std::to_string(s.shedded),
                    util::FormatDouble(100.0 * s.Goodput(), 1),
                    util::FormatDouble(s.p50_ms, 2), util::FormatDouble(s.p99_ms, 2)});
      if (s.slo == serve::SloClass::kGold) gold_goodput = s.Goodput();
    }

    // Gates, at every multiple: nothing unaccounted, queues bounded by the
    // admission cap, and gold inside its SLO even at 2x.
    if (report.completed + report.rejected + report.timed_out + report.shedded !=
        trace.size()) {
      fail("request unaccounted for", multiple);
    }
    if (report.queue_depth.Max() > fleet.base.queue_capacity) {
      fail("queue depth exceeded the admission cap", multiple);
    }
    if (gold_goodput < 0.95) fail("gold goodput below 95%", multiple);
    reports.push_back(std::move(report));
  }
  std::printf("%s\n",
              table.Render("Overload control — Poisson load vs calibrated capacity")
                  .c_str());

  // EDF vs FIFO+priority at 1.2x calibrated capacity: the same trace on the
  // same control stack (whole-graph memo window and backlog autoscaling
  // armed on both), only the pop order differs. Gates: EDF meets at least
  // as many per-class deadlines as FIFO+priority, keeps gold goodput
  // >= 95%, and its memo hits and scale events replay deterministically.
  {
    const double multiple = 1.2;
    serve::ArrivalOptions arrivals;
    arrivals.profile = serve::ArrivalProfile::kPoisson;
    arrivals.rate_qps = capacity_qps * multiple;
    arrivals.num_requests = requests;
    arrivals.gold_fraction = 0.2;
    arrivals.silver_fraction = 0.3;
    arrivals.cc_fraction = 0.1;  // whole-graph traffic the memo can absorb
    arrivals.seed = seed;
    const auto trace = serve::GenerateArrivals(csr.NumVertices(), arrivals);

    serve::ShardedOptions edf_fleet = fleet;
    edf_fleet.base.edf = true;
    edf_fleet.base.memo_window_ms = 50;
    if (shards > 1) {
      edf_fleet.autoscale.min_shards = 1;
      edf_fleet.autoscale.backlog_ms = 20;
    }
    serve::ShardedOptions fifo_fleet = edf_fleet;
    fifo_fleet.base.edf = false;

    serve::ServeReport fifo = serve::ShardedEngine(fifo_fleet).Serve(csr, trace);
    serve::ServeReport edf = serve::ShardedEngine(edf_fleet).Serve(csr, trace);
    serve::ServeReport replay = serve::ShardedEngine(edf_fleet).Serve(csr, trace);
    if (edf.Render("r") != replay.Render("r") || edf.Json() != replay.Json() ||
        edf.metrics.RenderPrometheus() != replay.metrics.RenderPrometheus()) {
      fail("EDF double run is not byte-identical", multiple);
    }
    if (edf.memo_hits != replay.memo_hits ||
        edf.scale_events.size() != replay.scale_events.size()) {
      fail("memo/scale accounting is not deterministic across runs", multiple);
    }
    if (edf.completed + edf.rejected + edf.timed_out + edf.shedded != trace.size()) {
      fail("request unaccounted for under EDF", multiple);
    }

    util::Table edf_table(
        {"Sched", "Class", "Offered", "Deadlines met", "Goodput %"});
    auto add_rows = [&](const char* sched, const serve::ServeReport& r) {
      for (const serve::SloStat& s : r.slo_stats) {
        edf_table.AddRow({sched, serve::SloClassName(s.slo), std::to_string(s.offered),
                          std::to_string(s.slo_met),
                          util::FormatDouble(100.0 * s.Goodput(), 1)});
      }
    };
    add_rows("fifo", fifo);
    add_rows("edf", edf);
    std::printf("%s\n",
                edf_table.Render("EDF vs FIFO+priority at 1.2x calibrated capacity")
                    .c_str());

    for (const serve::SloStat& f : fifo.slo_stats) {
      for (const serve::SloStat& e : edf.slo_stats) {
        if (e.slo == f.slo && e.slo_met < f.slo_met) {
          fail("EDF met fewer deadlines than FIFO+priority in a class", multiple);
        }
        if (e.slo == serve::SloClass::kGold && e.Goodput() < 0.95) {
          fail("EDF gold goodput below 95%", multiple);
        }
      }
    }
    std::printf("1.2x edf: memo hits %llu, scale events %llu, shards active %u\n\n",
                static_cast<unsigned long long>(edf.memo_hits),
                static_cast<unsigned long long>(edf.scale_events.size()),
                edf.shards_active);
    reports.push_back(std::move(edf));
  }
  for (size_t i = 0; i < reports.size(); ++i) {
    const serve::ServeReport& r = reports[i];
    const std::string load = i < std::size(multiples)
                                 ? util::FormatDouble(multiples[i], 1) + "x"
                                 : std::string("1.2x-edf");
    std::printf("%s: makespan %.1f ms, served %.1f qps, shed %llu, degraded %llu, "
                "brownout max level %u\n",
                load.c_str(), r.makespan_ms, r.ThroughputQps(),
                static_cast<unsigned long long>(r.shedded),
                static_cast<unsigned long long>(r.degraded),
                r.overload.brownout_max_level);
  }

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < reports.size(); ++i) {
      std::fprintf(f, "  %s%s\n", reports[i].Json().c_str(),
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return gates_ok ? 0 : 1;
}
