// SLO burn-rate alerts over the simulated serve clock.
//
// Classic multi-window burn-rate alerting (an SRE-workbook pattern)
// evaluated deterministically after the replay: for every SLO class, the
// per-completion good/bad series is scanned once, and at each completion
// time the error-budget burn rate is computed over a fast and a slow
// trailing window. The alert fires when BOTH windows burn faster than
// the threshold (fast window = responsive, slow window = suppresses
// blips), and resolves when either drops back below it. burn = 1.0 means
// the class is consuming its error budget exactly at the rate that
// exhausts it by design; burn >= threshold (default 2x) pages.
//
// Everything runs on the simulated clock over an already-sorted series,
// so transitions are byte-identical across double runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eta::trace {

struct AlertOptions {
  bool enabled = false;
  double objective = 0.999;     // target good fraction (error budget = 1-objective)
  double fast_window_ms = 50;   // trailing fast window on the sim clock
  double slow_window_ms = 500;  // trailing slow window
  double burn_threshold = 2;    // fire when both windows burn >= this
};

/// One observation: a completion at `at_ms` that did (good) or did not
/// meet its SLO.
struct AlertSample {
  double at_ms = 0;
  bool good = true;
};

/// One alert state change, on the simulated clock.
struct AlertTransition {
  double at_ms = 0;
  bool firing = false;   // state after the transition
  double fast_burn = 0;  // burn rates at the transition point
  double slow_burn = 0;
};

/// Burn-rate evaluation of one series (one SLO class).
struct AlertSeries {
  std::string name;          // class name ("gold", ...)
  uint64_t samples = 0;
  uint64_t bad = 0;
  uint64_t fired = 0;        // transitions into the firing state
  bool firing_at_end = false;
  double max_fast_burn = 0;  // worst fast-window burn seen
  std::vector<AlertTransition> transitions;
};

/// Evaluates the burn-rate alert over `samples` (must be sorted by
/// at_ms; ties allowed). Pure function of its inputs.
AlertSeries EvaluateBurnRate(const std::string& name, const std::vector<AlertSample>& samples,
                             const AlertOptions& options);

/// Parses "objective[,fast_ms[,slow_ms[,burn]]]" (the --slo-alerts flag
/// value; empty string = defaults). Returns false and fills *error on a
/// malformed spec.
bool ParseAlertSpec(const std::string& spec, AlertOptions* options, std::string* error);

}  // namespace eta::trace
