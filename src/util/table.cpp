#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace eta::util {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  size_t digits = 0;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return digits * 2 >= cell.size();
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ETA_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  ETA_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddRule() { rows_.emplace_back(); }

std::string Table::Render(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  size_t total = 1;
  for (size_t w : widths) total += w + 3;

  auto rule = [&] { out << std::string(total, '-') << '\n'; };
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    out << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      size_t pad = widths[c] - cell.size();
      bool right = align_numeric && LooksNumeric(cell);
      out << ' ' << (right ? std::string(pad, ' ') + cell : cell + std::string(pad, ' '))
          << " |";
    }
    out << '\n';
  };

  if (!title.empty()) out << title << '\n';
  rule();
  emit(header_, /*align_numeric=*/false);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      emit(row, /*align_numeric=*/true);
    }
  }
  rule();
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string FormatMs(double ms) {
  if (ms >= 1000.0) return FormatDouble(ms / 1000.0, 2) + " s";
  if (ms >= 1.0) return FormatDouble(ms, 1) + " ms";
  return FormatDouble(ms * 1000.0, 0) + " us";
}

}  // namespace eta::util
