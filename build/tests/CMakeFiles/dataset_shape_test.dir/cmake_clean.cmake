file(REMOVE_RECURSE
  "CMakeFiles/dataset_shape_test.dir/dataset_shape_test.cpp.o"
  "CMakeFiles/dataset_shape_test.dir/dataset_shape_test.cpp.o.d"
  "dataset_shape_test"
  "dataset_shape_test.pdb"
  "dataset_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
