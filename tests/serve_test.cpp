// Tests for the query-serving engine: per-source attribution exactness,
// persistent-session reuse, batching equivalence, deadline/overflow
// handling, and report determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "serve/trace.hpp"

namespace eta::serve {
namespace {

graph::Csr RandomGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

uint64_t CountReached(core::Algo algo, const std::vector<graph::Weight>& labels) {
  uint64_t reached = 0;
  for (graph::Weight label : labels) reached += core::Reached(algo, label) ? 1 : 0;
  return reached;
}

// --- Per-source attribution (the batcher's demux primitive) -------------------

class AttributionTest : public ::testing::TestWithParam<core::Algo> {};

TEST_P(AttributionTest, MatchesSequentialSingleSourceRuns) {
  const core::Algo algo = GetParam();
  graph::Csr csr = RandomGraph(11);
  std::vector<graph::VertexId> sources = {0, 97, 350, 501};

  core::EtaGraph engine;
  auto batched = engine.RunMultiSource(csr, algo, sources, /*attribute_sources=*/true);
  ASSERT_FALSE(batched.oom);
  ASSERT_EQ(batched.per_source_reached.size(), sources.size());

  std::vector<graph::Weight> expected_merge(csr.NumVertices(), core::kInf);
  for (size_t i = 0; i < sources.size(); ++i) {
    auto single = engine.Run(csr, algo, sources[i]);
    ASSERT_FALSE(single.oom);
    // Demuxed per-source reachability is bit-identical to running alone.
    EXPECT_EQ(batched.per_source_reached[i], CountReached(algo, single.labels))
        << "source " << sources[i];
    for (size_t v = 0; v < single.labels.size(); ++v) {
      expected_merge[v] = std::min(expected_merge[v], single.labels[v]);
    }
  }
  // Attribution must not perturb the merged labels.
  EXPECT_EQ(batched.labels, expected_merge);
}

INSTANTIATE_TEST_SUITE_P(BfsAndSssp, AttributionTest,
                         ::testing::Values(core::Algo::kBfs, core::Algo::kSssp));

// --- Persistent sessions ------------------------------------------------------

TEST(GraphSession, ReusesResidentGraphAcrossQueries) {
  graph::Csr csr = RandomGraph(12);
  auto one_shot = core::EtaGraph().Run(csr, core::Algo::kBfs, 5);
  ASSERT_FALSE(one_shot.oom);

  GraphSession session(csr);
  ASSERT_TRUE(session.Loaded());

  auto first = session.RunQuery(core::Algo::kBfs, 5);
  auto second = session.RunQuery(core::Algo::kBfs, 5);
  ASSERT_FALSE(first.oom);
  ASSERT_FALSE(second.oom);
  // Same answers as a cold one-shot run...
  EXPECT_EQ(first.labels, one_shot.labels);
  EXPECT_EQ(second.labels, one_shot.labels);
  // ...but repeat queries skip staging: cheaper than the cold total.
  EXPECT_LT(second.query_ms, one_shot.total_ms);
  EXPECT_EQ(session.QueriesServed(), 2u);
}

TEST(GraphSession, ExplicitCopyStagingIsChargedOnceUpFront) {
  graph::Csr csr = RandomGraph(12);
  core::EtaGraphOptions options;
  options.memory_mode = core::MemoryMode::kExplicitCopy;
  auto one_shot = core::EtaGraph(options).Run(csr, core::Algo::kBfs, 5);
  ASSERT_FALSE(one_shot.oom);

  GraphSession session(csr, options);
  ASSERT_TRUE(session.Loaded());
  // Explicit mode pays the topology transfer at load time, not per query.
  EXPECT_GT(session.LoadMs(), 0.0);
  auto first = session.RunQuery(core::Algo::kBfs, 5);
  auto second = session.RunQuery(core::Algo::kBfs, 5);
  EXPECT_EQ(first.labels, one_shot.labels);
  EXPECT_EQ(second.labels, one_shot.labels);
  EXPECT_LT(second.query_ms, one_shot.total_ms);
}

TEST(GraphSession, ServesMixedAlgorithms) {
  graph::Csr csr = RandomGraph(13);
  GraphSession session(csr);
  ASSERT_TRUE(session.Loaded());
  for (core::Algo algo :
       {core::Algo::kBfs, core::Algo::kSssp, core::Algo::kSswp}) {
    auto report = session.RunQuery(algo, 7);
    ASSERT_FALSE(report.oom);
    EXPECT_EQ(report.labels, core::CpuReference(csr, algo, 7));
  }
}

// --- Scheduler ----------------------------------------------------------------

TEST(QueryScheduler, PriorityThenFifoOrder) {
  QueryScheduler sched(8);
  Request a{.id = 1, .priority = 0};
  Request b{.id = 2, .priority = 1};
  Request c{.id = 3, .priority = 1};
  ASSERT_TRUE(sched.Admit(a));
  ASSERT_TRUE(sched.Admit(b));
  ASSERT_TRUE(sched.Admit(c));
  EXPECT_EQ(sched.PopNext()->id, 2u);  // highest priority, admitted first
  EXPECT_EQ(sched.PopNext()->id, 3u);
  EXPECT_EQ(sched.PopNext()->id, 1u);
  EXPECT_FALSE(sched.PopNext().has_value());
}

TEST(QueryScheduler, RejectsWhenFullAndExpiresDeadlines) {
  QueryScheduler sched(2);
  Request a{.id = 1, .arrival_ms = 0, .deadline_ms = 1.0};
  Request b{.id = 2, .arrival_ms = 0, .deadline_ms = 100.0};
  Request c{.id = 3};
  EXPECT_TRUE(sched.Admit(a));
  EXPECT_TRUE(sched.Admit(b));
  EXPECT_FALSE(sched.Admit(c));  // full
  auto expired = sched.ExpireDeadlines(5.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(sched.Depth(), 1u);
}

// EDF-off contract (DESIGN.md section 15): the comparator never reads the
// EDF key, so pop order on a randomized deep trace is byte-identical to the
// legacy (priority desc, seq asc) total order — even when callers pass
// service estimates at admission.
TEST(QueryScheduler, EdfOffPopOrderMatchesPrioritySeqOnRandomizedTrace) {
  constexpr size_t kDepth = 4608;
  QueryScheduler sched(kDepth, /*edf=*/false);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  struct Key {
    int32_t priority;
    uint64_t id;
  };
  std::vector<Key> expected;
  expected.reserve(kDepth);
  for (uint64_t i = 0; i < kDepth; ++i) {
    Request r;
    r.id = i;
    r.priority = static_cast<int32_t>(next_rand() % 5);
    r.deadline_ms =
        next_rand() % 3 == 0 ? kNoDeadline : static_cast<double>(next_rand() % 1000);
    ASSERT_TRUE(sched.Admit(r, static_cast<double>(next_rand() % 50)));
    expected.push_back({r.priority, i});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Key& a, const Key& b) { return a.priority > b.priority; });
  for (const Key& k : expected) {
    auto popped = sched.PopNext();
    ASSERT_TRUE(popped.has_value());
    ASSERT_EQ(popped->id, k.id);
  }
  EXPECT_FALSE(sched.PopNext().has_value());
}

TEST(QueryScheduler, EdfPopsEarliestEffectiveDeadlineWithinPriority) {
  QueryScheduler sched(8, /*edf=*/true);
  // Same priority class: effective deadline (StartDeadline - estimate),
  // frozen at admission, orders the pops.
  ASSERT_TRUE(sched.Admit({.id = 1, .arrival_ms = 0, .deadline_ms = 100.0}, 10.0));  // 90
  ASSERT_TRUE(sched.Admit({.id = 2, .arrival_ms = 0, .deadline_ms = 50.0}, 10.0));   // 40
  ASSERT_TRUE(sched.Admit({.id = 3, .arrival_ms = 0, .deadline_ms = 60.0}, 30.0));   // 30
  // Deadline-free: an infinite key, FIFO behind every deadlined peer.
  ASSERT_TRUE(sched.Admit({.id = 4}));
  // A higher priority class preempts every earlier-deadline peer below —
  // gold never starves behind an earlier-deadline bronze.
  ASSERT_TRUE(sched.Admit({.id = 5, .priority = 1}));
  EXPECT_EQ(sched.PeekNext()->id, 5u);  // peek agrees with pop order
  EXPECT_EQ(sched.PopNext()->id, 5u);
  EXPECT_EQ(sched.PopNext()->id, 3u);
  EXPECT_EQ(sched.PopNext()->id, 2u);
  EXPECT_EQ(sched.PopNext()->id, 1u);
  EXPECT_EQ(sched.PopNext()->id, 4u);
  EXPECT_FALSE(sched.PopNext().has_value());
}

TEST(QueryScheduler, PopCompatibleFiltersByAlgorithm) {
  QueryScheduler sched(8);
  sched.Admit({.id = 1, .algo = core::Algo::kBfs});
  sched.Admit({.id = 2, .algo = core::Algo::kSssp});
  sched.Admit({.id = 3, .algo = core::Algo::kBfs});
  auto batch = sched.PopCompatible(core::Algo::kBfs, /*graph_id=*/0, 8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 3u);
  EXPECT_EQ(sched.Depth(), 1u);
}

TEST(QueryScheduler, PopCompatibleFiltersByGraph) {
  // A folded batch must stay on one topology: same algorithm, different
  // catalog graph is not compatible.
  QueryScheduler sched(8);
  sched.Admit({.id = 1, .algo = core::Algo::kBfs, .graph_id = 0});
  sched.Admit({.id = 2, .algo = core::Algo::kBfs, .graph_id = 1});
  sched.Admit({.id = 3, .algo = core::Algo::kBfs, .graph_id = 1});
  auto batch = sched.PopCompatible(core::Algo::kBfs, /*graph_id=*/1, 8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 2u);
  EXPECT_EQ(batch[1].id, 3u);
  EXPECT_EQ(sched.Depth(), 1u);
  EXPECT_EQ(sched.PopNext()->id, 1u);
}

TEST(QueryScheduler, DeadlineExactlyAtNowStaysDispatchable) {
  // Boundary rule (Request::ExpiredAt): a request expires only when the
  // clock has passed its start deadline, so deadline == now still serves.
  QueryScheduler sched(8);
  Request r{.id = 1, .arrival_ms = 2.0, .deadline_ms = 3.0};
  ASSERT_TRUE(sched.Admit(r));
  EXPECT_FALSE(r.ExpiredAt(5.0));
  EXPECT_TRUE(sched.ExpireDeadlines(5.0).empty());  // == StartDeadline()
  EXPECT_EQ(sched.Depth(), 1u);
  EXPECT_TRUE(r.ExpiredAt(5.0 + 1e-9));
  auto expired = sched.ExpireDeadlines(5.0 + 1e-9);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(sched.Depth(), 0u);
}

TEST(QueryScheduler, ExpiryPreservesPriorityOrderAmongSurvivors) {
  QueryScheduler sched(8);
  ASSERT_TRUE(sched.Admit({.id = 1, .deadline_ms = 1.0, .priority = 0}));
  ASSERT_TRUE(sched.Admit({.id = 2, .deadline_ms = kNoDeadline, .priority = 5}));
  ASSERT_TRUE(sched.Admit({.id = 3, .deadline_ms = kNoDeadline, .priority = 0}));
  ASSERT_TRUE(sched.Admit({.id = 4, .deadline_ms = 1.0, .priority = 5}));
  auto expired = sched.ExpireDeadlines(2.0);
  ASSERT_EQ(expired.size(), 2u);
  // Expiry reports in admission order, regardless of priority...
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(expired[1].id, 4u);
  // ...and survivors still pop in priority-then-FIFO order.
  EXPECT_EQ(sched.PopNext()->id, 2u);
  EXPECT_EQ(sched.PopNext()->id, 3u);
}

TEST(QueryScheduler, PoppedRequestsAreNeverReportedExpired) {
  QueryScheduler sched(8);
  ASSERT_TRUE(sched.Admit({.id = 1, .deadline_ms = 1.0}));
  ASSERT_EQ(sched.PopNext()->id, 1u);
  // Once dispatched, the request is the batcher's problem; a later sweep
  // must not double-report it.
  EXPECT_TRUE(sched.ExpireDeadlines(100.0).empty());
  EXPECT_EQ(sched.Depth(), 0u);
}

TEST(QueryScheduler, NoDeadlineNeverExpires) {
  QueryScheduler sched(8);
  Request r{.id = 1, .arrival_ms = 0.0, .deadline_ms = kNoDeadline};
  ASSERT_TRUE(sched.Admit(r));
  EXPECT_FALSE(r.ExpiredAt(1e12));
  EXPECT_TRUE(sched.ExpireDeadlines(1e12).empty());
}

namespace {

/// The original scan-and-erase scheduler, kept as the semantic reference:
/// every pop scans for the best (priority desc, seq asc) entry and erases
/// it from the middle of a vector. The production scheduler replaced this
/// with tombstoned per-lane heaps; the deep-queue test below proves the
/// pop/expiry sequences stayed byte-identical.
class ReferenceScheduler {
 public:
  explicit ReferenceScheduler(size_t capacity) : capacity_(capacity) {}

  bool Admit(const Request& r) {
    if (queue_.size() >= capacity_) return false;
    queue_.push_back({r, next_seq_++});
    return true;
  }
  size_t Depth() const { return queue_.size(); }

  std::vector<Request> ExpireDeadlines(double now_ms) {
    // The original stable_partition + sort-by-seq reduces to: expired in
    // admission order, survivors keep their relative order.
    std::vector<Request> expired;
    std::vector<Entry> kept;
    for (const Entry& e : queue_) {
      if (e.r.ExpiredAt(now_ms)) {
        expired.push_back(e.r);
      } else {
        kept.push_back(e);
      }
    }
    queue_ = std::move(kept);
    return expired;
  }

  std::optional<Request> PopNext() { return PopBest([](const Request&) { return true; }); }

  std::vector<Request> PopCompatible(core::Algo algo, uint32_t graph_id,
                                     uint32_t max_count) {
    std::vector<Request> out;
    while (out.size() < max_count) {
      auto r = PopBest([&](const Request& q) {
        return q.algo == algo && q.graph_id == graph_id;
      });
      if (!r.has_value()) break;
      out.push_back(*r);
    }
    return out;
  }

 private:
  struct Entry {
    Request r;
    uint64_t seq;
  };

  template <typename Pred>
  std::optional<Request> PopBest(Pred pred) {
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < queue_.size(); ++i) {
      if (!pred(queue_[i].r)) continue;
      if (best == SIZE_MAX ||
          queue_[i].r.priority > queue_[best].r.priority ||
          (queue_[i].r.priority == queue_[best].r.priority &&
           queue_[i].seq < queue_[best].seq)) {
        best = i;
      }
    }
    if (best == SIZE_MAX) return std::nullopt;
    Request r = queue_[best].r;
    queue_.erase(queue_.begin() + static_cast<long>(best));
    return r;
  }

  size_t capacity_;
  uint64_t next_seq_ = 0;
  std::vector<Entry> queue_;
};

}  // namespace

TEST(QueryScheduler, DeepQueueReplayMatchesScanEraseReference) {
  // Satellite regression for the quadratic-dispatch fix: at depth >= 4096,
  // an interleaved admit/pop/fold/expire replay must produce the exact
  // operation-by-operation output the original scan-and-erase scheduler
  // produced (the engine's replay bytes are a pure function of this
  // sequence).
  constexpr size_t kDepth = 4608;
  QueryScheduler sched(kDepth);
  ReferenceScheduler ref(kDepth);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto rnd = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const core::Algo algos[] = {core::Algo::kBfs, core::Algo::kSssp, core::Algo::kSswp};
  uint64_t next_id = 0;
  auto make_request = [&](double arrival) {
    Request r;
    r.id = next_id++;
    r.algo = algos[rnd() % 3];
    r.source = static_cast<graph::VertexId>(rnd() % 512);
    r.graph_id = static_cast<uint32_t>(rnd() % 2);
    r.arrival_ms = arrival;
    r.deadline_ms = (rnd() % 4 == 0) ? static_cast<double>(rnd() % 50) : kNoDeadline;
    r.priority = static_cast<int32_t>(rnd() % 5);
    return r;
  };

  double now = 0;
  for (size_t i = 0; i < kDepth; ++i) {
    Request r = make_request(now);
    ASSERT_EQ(sched.Admit(r), ref.Admit(r));
  }
  ASSERT_EQ(sched.Depth(), kDepth);

  size_t steps = 0;
  while ((ref.Depth() > 0 || sched.Depth() > 0) && steps < 100000) {
    ++steps;
    ASSERT_EQ(sched.Depth(), ref.Depth());
    switch (rnd() % 5) {
      case 0: {
        auto a = sched.PopNext();
        auto b = ref.PopNext();
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a.has_value()) {
          ASSERT_EQ(a->id, b->id);
        }
        break;
      }
      case 1: {
        const core::Algo algo = algos[rnd() % 3];
        const uint32_t graph = static_cast<uint32_t>(rnd() % 2);
        const uint32_t max = static_cast<uint32_t>(1 + rnd() % 40);
        auto a = sched.PopCompatible(algo, graph, max);
        auto b = ref.PopCompatible(algo, graph, max);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i].id, b[i].id);
        break;
      }
      case 2: {
        now += static_cast<double>(rnd() % 8);
        auto a = sched.ExpireDeadlines(now);
        auto b = ref.ExpireDeadlines(now);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i].id, b[i].id);
        break;
      }
      default: {
        Request r = make_request(now);
        ASSERT_EQ(sched.Admit(r), ref.Admit(r));
        break;
      }
    }
  }
  EXPECT_EQ(sched.Depth(), 0u);
  EXPECT_EQ(ref.Depth(), 0u);
}

// --- Engine end-to-end --------------------------------------------------------

TEST(ServeEngine, BatchedResultsMatchSequentialSession) {
  graph::Csr csr = RandomGraph(14);
  TraceOptions trace_options;
  trace_options.num_requests = 32;
  auto trace = GenerateTrace(csr.NumVertices(), trace_options);

  ServeOptions sequential;
  sequential.mode = ServeMode::kSession;
  ServeOptions batched;
  batched.mode = ServeMode::kSessionBatched;
  auto seq_report = ServeEngine(sequential).Serve(csr, trace);
  auto bat_report = ServeEngine(batched).Serve(csr, trace);

  ASSERT_EQ(seq_report.completed, trace.size());
  ASSERT_EQ(bat_report.completed, trace.size());
  // Folding must actually happen on this trace...
  EXPECT_GT(bat_report.batch_occupancy.Max(), 1u);
  // ...and must not change any request's answer.
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(bat_report.results[i].id, seq_report.results[i].id);
    EXPECT_EQ(bat_report.results[i].status, QueryStatus::kOk);
    EXPECT_EQ(bat_report.results[i].reached_vertices,
              seq_report.results[i].reached_vertices)
        << "request " << i;
  }
}

TEST(ServeEngine, ExpiredDeadlinesBecomeTimeouts) {
  graph::Csr csr = RandomGraph(15);
  // All requests arrive while the graph is still loading; the impatient
  // ones can never be dispatched before their start deadline.
  std::vector<Request> trace;
  for (uint64_t i = 0; i < 4; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.source = static_cast<graph::VertexId>(i);
    r.arrival_ms = 0;
    r.deadline_ms = i == 0 ? kNoDeadline : 1e-6;
    trace.push_back(r);
  }
  ServeOptions options;
  options.mode = ServeMode::kSession;
  auto report = ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.timed_out, 3u);
  EXPECT_EQ(report.results[0].status, QueryStatus::kOk);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(report.results[i].status, QueryStatus::kTimedOut);
  }
}

// EDF tentpole claim (DESIGN.md section 15): on a constructed mixed-deadline
// burst, EDF-on meets strictly more deadlines than the legacy FIFO+priority
// order, and no request is ever lost either way.
TEST(ServeEngine, EdfMeetsStrictlyMoreDeadlinesOnMixedBurst) {
  graph::Csr csr = RandomGraph(21);
  ServeOptions options;
  options.mode = ServeMode::kSession;
  options.queue_capacity = 64;

  // Probe replay: learn the first-dispatch time, the cold (first-touch)
  // service time, and the warm service time for this source on this graph.
  std::vector<Request> probe_trace;
  for (uint64_t i = 0; i < 2; ++i) {
    probe_trace.push_back(
        {.id = i, .algo = core::Algo::kBfs, .source = 1, .arrival_ms = 0});
  }
  ServeReport probe = ServeEngine(options).Serve(csr, probe_trace);
  ASSERT_EQ(probe.results.size(), 2u);
  const double start0 = probe.results[0].start_ms;
  const double cold_ms = probe.results[0].finish_ms - probe.results[0].start_ms;
  const double warm_ms = probe.results[1].finish_ms - probe.results[1].start_ms;
  ASSERT_GT(warm_ms, 0.0);

  // One t=0 burst of 16 identical queries: ids 0..7 deadline-free, ids
  // 8..15 sharing a tight deadline that fits the first dispatch plus ~9.5
  // warm services. FIFO admits in id order, so the deadlined tail waits
  // behind the deadline-free head and part of it must expire; EDF pops the
  // deadlined half first (deadline-free requests carry an infinite key) and
  // meets every deadline.
  const double tight = start0 + cold_ms + 9.5 * warm_ms;
  std::vector<Request> trace;
  for (uint64_t i = 0; i < 16; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.source = 1;
    r.arrival_ms = 0;
    if (i >= 8) r.deadline_ms = tight;
    trace.push_back(r);
  }

  ServeReport fifo = ServeEngine(options).Serve(csr, trace);
  options.edf = true;
  ServeReport edf = ServeEngine(options).Serve(csr, trace);

  EXPECT_GT(fifo.timed_out, 0u);
  EXPECT_EQ(edf.timed_out, 0u);
  EXPECT_GT(edf.completed, fifo.completed);
  // No request lost under either order.
  EXPECT_EQ(fifo.results.size(), trace.size());
  EXPECT_EQ(edf.results.size(), trace.size());
  // Every served answer is bit-identical across orders (same source).
  for (const QueryResult& q : edf.results) {
    if (q.status == QueryStatus::kOk) {
      EXPECT_EQ(q.reached_vertices, probe.results[0].reached_vertices);
    }
  }
}

TEST(ServeEngine, OverflowingQueueRejectsExplicitly) {
  graph::Csr csr = RandomGraph(16);
  std::vector<Request> trace;
  for (uint64_t i = 0; i < 4; ++i) {
    trace.push_back({.id = i, .algo = core::Algo::kBfs,
                     .source = static_cast<graph::VertexId>(i), .arrival_ms = 0});
  }
  ServeOptions options;
  options.mode = ServeMode::kSession;
  options.queue_capacity = 1;
  auto report = ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.rejected, 3u);
  EXPECT_EQ(report.results[0].status, QueryStatus::kOk);
}

TEST(ExecuteBatch, WaveSplitsPastAttributionCap) {
  // A folded batch wider than the 32-bit attribution mask executes as
  // successive launch waves; every request still gets its exact answer.
  graph::Csr csr = RandomGraph(18);
  GraphSession session(csr);
  ASSERT_TRUE(session.Loaded());
  constexpr size_t kRequests = 40;  // 32 + 8: two waves
  Batch batch;
  batch.algo = core::Algo::kBfs;
  for (uint64_t i = 0; i < kRequests; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.source = static_cast<graph::VertexId>((i * 13) % csr.NumVertices());
    batch.requests.push_back(r);
  }
  BatchOutcome out = ExecuteBatch(session, batch, /*start_ms=*/1.0);
  ASSERT_FALSE(out.device_failed);
  ASSERT_TRUE(out.unserved.empty());
  ASSERT_EQ(out.results.size(), kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    const QueryResult& q = out.results[i];
    EXPECT_EQ(q.batch_size, i < 32 ? 32u : 8u) << "request " << i;
    auto labels = core::CpuReference(csr, core::Algo::kBfs, batch.requests[i].source);
    EXPECT_EQ(q.reached_vertices, CountReached(core::Algo::kBfs, labels))
        << "request " << i;
  }
  // The waves tile [start, start + duration]: wave 1 starts where wave 0
  // finished.
  EXPECT_DOUBLE_EQ(out.results[0].start_ms, 1.0);
  EXPECT_DOUBLE_EQ(out.results[32].start_ms, out.results[0].finish_ms);
  EXPECT_DOUBLE_EQ(out.results[39].finish_ms, 1.0 + out.duration_ms);
}

TEST(ServeEngine, MaxBatchBeyondAttributionCapServesAndMatchesCapped) {
  // Satellite regression: --max-batch 64 used to drive RunBatch into the
  // kMaxAttributedSources ETA_CHECK abort. It must serve, and answer
  // bit-identically to max_batch = 32 (the engine's fold limit clamps at
  // the cap, so the wider setting changes nothing).
  graph::Csr csr = RandomGraph(19);
  std::vector<Request> trace;
  for (uint64_t i = 0; i < 48; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.source = static_cast<graph::VertexId>((i * 17) % csr.NumVertices());
    r.arrival_ms = 0;
    trace.push_back(r);
  }
  ServeOptions wide;
  wide.mode = ServeMode::kSessionBatched;
  wide.queue_capacity = 64;
  wide.max_batch = 64;
  ServeOptions capped = wide;
  capped.max_batch = 32;
  auto wide_report = ServeEngine(wide).Serve(csr, trace);
  auto capped_report = ServeEngine(capped).Serve(csr, trace);
  EXPECT_EQ(wide_report.completed, trace.size());
  EXPECT_LE(wide_report.batch_occupancy.Max(),
            core::ResidentGraph::kMaxAttributedSources);
  EXPECT_EQ(wide_report.Render("replay"), capped_report.Render("replay"));
  EXPECT_EQ(wide_report.Json(), capped_report.Json());
}

TEST(ServeEngine, ReportIsDeterministic) {
  graph::Csr csr = RandomGraph(17);
  TraceOptions trace_options;
  trace_options.num_requests = 24;
  trace_options.deadline_ms = 50.0;
  auto trace = GenerateTrace(csr.NumVertices(), trace_options);

  ServeOptions options;  // kSessionBatched default
  auto first = ServeEngine(options).Serve(csr, trace);
  auto second = ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(first.Render("replay"), second.Render("replay"));
  EXPECT_EQ(first.Json(), second.Json());
  ASSERT_EQ(first.results.size(), second.results.size());
  for (size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].status, second.results[i].status);
    EXPECT_EQ(first.results[i].reached_vertices, second.results[i].reached_vertices);
    EXPECT_DOUBLE_EQ(first.results[i].finish_ms, second.results[i].finish_ms);
  }
}

}  // namespace
}  // namespace eta::serve
