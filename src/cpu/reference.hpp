// Host reference implementations of the three traversal problems the paper
// evaluates (Section VI-B): breadth-first search, single-source shortest
// path, and single-source widest path. Every simulated framework's output
// is verified against these in the tests and in every benchmark run.
//
// Label conventions (shared with all GPU-side kernels):
//   BFS   label = hop count; unreached = kInf; source = 0.
//   SSSP  label = distance;  unreached = kInf; source = 0.
//   SSWP  label = width (max over paths of the min edge weight);
//         unreachable = 0; source = kInf (infinite bottleneck).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace eta::cpu {

inline constexpr graph::Weight kInf = 0xffffffffu;

/// Level-synchronous BFS.
std::vector<graph::Weight> BfsLevels(const graph::Csr& csr, graph::VertexId source);

/// Dijkstra with a binary heap. Requires weights on the graph.
std::vector<graph::Weight> SsspDistances(const graph::Csr& csr, graph::VertexId source);

/// Bellman-Ford (iterative relaxation); used by property tests to
/// cross-check Dijkstra and by tests of frontier semantics.
std::vector<graph::Weight> SsspBellmanFord(const graph::Csr& csr, graph::VertexId source);

/// Widest-path Dijkstra variant (max-heap on widths). Requires weights.
std::vector<graph::Weight> SswpWidths(const graph::Csr& csr, graph::VertexId source);

/// Number of labels that indicate a reached vertex under `algo` semantics.
uint64_t CountReached(const std::vector<graph::Weight>& labels, bool widest_path);

/// Min-label propagation to fixpoint: every vertex converges to the
/// smallest vertex ID that can reach it along directed edges. On a
/// symmetrized graph this is connected-components labeling. Ground truth
/// for EtaGraph::RunConnectedComponents.
std::vector<graph::Weight> MinLabelPropagation(const graph::Csr& csr);

/// Push-style PageRank with damping `d`, run until the max per-vertex
/// delta drops below `epsilon` or `max_iterations` pass. Sink vertices
/// (out-degree 0) leak rank, as in the classic formulation most GPU
/// frameworks implement. Ground truth for core::PageRank.
std::vector<double> PageRankReference(const graph::Csr& csr, double damping,
                                      double epsilon, uint32_t max_iterations);

}  // namespace eta::cpu
