file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_activation.dir/bench_table4_activation.cpp.o"
  "CMakeFiles/bench_table4_activation.dir/bench_table4_activation.cpp.o.d"
  "bench_table4_activation"
  "bench_table4_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
