#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace eta::graph {

std::vector<Edge> GenerateRmat(const RmatParams& params) {
  ETA_CHECK(params.scale >= 1 && params.scale <= 30);
  ETA_CHECK(params.a + params.b + params.c <= 1.0 + 1e-9);

  util::SplitMix64 rng = util::SplitMix64::Stream(params.seed, /*tag=*/0xa11);

  // Per-level quadrant probabilities, optionally noised as in PaRMAT so the
  // degree distribution is smooth rather than lattice-like.
  struct LevelProbs {
    double ab, abc, a;  // cumulative thresholds: a | a+b | a+b+c
  };
  std::vector<LevelProbs> levels(params.scale);
  for (uint32_t l = 0; l < params.scale; ++l) {
    double a = params.a, b = params.b, c = params.c;
    if (params.noise) {
      auto wobble = [&rng](double p) { return p * (0.9 + 0.2 * rng.NextDouble()); };
      a = wobble(a);
      b = wobble(b);
      c = wobble(c);
      double d = wobble(1.0 - params.a - params.b - params.c);
      double sum = a + b + c + d;
      a /= sum;
      b /= sum;
      c /= sum;
    }
    levels[l] = {a, a + b, a + b + c};
  }

  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  for (uint64_t i = 0; i < params.num_edges; ++i) {
    VertexId u = 0, v = 0;
    for (uint32_t l = 0; l < params.scale; ++l) {
      double r = rng.NextDouble();
      const LevelProbs& p = levels[l];
      uint32_t bit = 1u << (params.scale - 1 - l);
      if (r < p.ab) {
        // quadrant a: no bits
      } else if (r < p.abc) {
        v |= bit;  // quadrant b
      } else if (r < p.a) {
        u |= bit;  // quadrant c
      } else {
        u |= bit;  // quadrant d
        v |= bit;
      }
    }
    edges.push_back({u, v});
  }
  return edges;
}

std::vector<Edge> GenerateErdosRenyi(VertexId n, uint64_t m, uint64_t seed) {
  ETA_CHECK(n > 1);
  util::SplitMix64 rng = util::SplitMix64::Stream(seed, /*tag=*/0xe4);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    edges.push_back({u, v});
  }
  return edges;
}

namespace {

/// Skewed pick in [0, size): squaring the uniform variate biases toward low
/// indices, giving web-like in-degree skew within a layer.
VertexId SkewedPick(util::SplitMix64& rng, VertexId base, VertexId size) {
  double r = rng.NextDouble();
  return base + static_cast<VertexId>(r * r * size);
}

}  // namespace

std::vector<Edge> GenerateWebGraph(const WebGraphParams& p) {
  ETA_CHECK(p.num_communities >= 1);
  ETA_CHECK(p.community_depth >= 1);
  ETA_CHECK(p.lcc_fraction > 0.0 && p.lcc_fraction <= 1.0);

  util::SplitMix64 rng = util::SplitMix64::Stream(p.seed, /*tag=*/0x3b);

  const VertexId chain_vertices =
      std::max<VertexId>(p.num_communities * p.community_depth,
                         static_cast<VertexId>(p.lcc_fraction * p.num_vertices));
  const VertexId comm_size = chain_vertices / p.num_communities;
  ETA_CHECK(comm_size >= p.community_depth);
  const VertexId layer_size = comm_size / p.community_depth;
  const uint64_t chain_edges =
      static_cast<uint64_t>(static_cast<double>(p.num_edges) *
                            (static_cast<double>(chain_vertices) / p.num_vertices));

  std::vector<Edge> edges;
  edges.reserve(p.num_edges + 8ULL * p.num_communities);

  // --- The reachable chain of communities -------------------------------
  // Community i owns [i*comm_size, (i+1)*comm_size), split into
  // community_depth layers. Edges inside a community either advance one
  // layer (probability 1/2) or land in the same-or-earlier layers, so the
  // BFS depth through one community is ~community_depth; shortcuts that
  // would shrink the diameter are structurally impossible.
  const uint64_t edges_per_comm = chain_edges / p.num_communities;
  for (uint32_t ci = 0; ci < p.num_communities; ++ci) {
    const VertexId base = ci * comm_size;
    for (uint64_t e = 0; e < edges_per_comm; ++e) {
      // Skewed source pick: a few vertices per layer become out-hubs.
      uint32_t src_layer = static_cast<uint32_t>(rng.NextBounded(p.community_depth));
      VertexId src = SkewedPick(rng, base + src_layer * layer_size, layer_size);
      uint32_t dst_layer;
      if (src_layer + 1 < p.community_depth && rng.NextDouble() < 0.5) {
        dst_layer = src_layer + 1;  // advance
      } else {
        dst_layer = static_cast<uint32_t>(rng.NextBounded(src_layer + 1));  // back/lateral
      }
      VertexId dst = SkewedPick(rng, base + dst_layer * layer_size, layer_size);
      edges.push_back({src, dst});
    }
    // Forward links: last layer of community ci to the entry (layer 0) of
    // community ci+1. A handful of links keeps the crossing narrow.
    if (ci + 1 < p.num_communities) {
      const VertexId next_base = (ci + 1) * comm_size;
      const VertexId last_layer = base + (p.community_depth - 1) * layer_size;
      for (int k = 0; k < 4; ++k) {
        VertexId src = last_layer + static_cast<VertexId>(rng.NextBounded(layer_size));
        VertexId dst = next_base + static_cast<VertexId>(rng.NextBounded(
                           std::max<VertexId>(1, layer_size / 4)));
        edges.push_back({src, dst});
      }
    }
  }

  // --- Unreachable side components ---------------------------------------
  // The remaining vertices form independent random clusters with no edges
  // to or from the chain; they count toward |V| and |E| but never activate,
  // which is exactly how the paper's web crawls behave (LCC 65-71%).
  const VertexId side_begin = p.num_communities * comm_size;
  const VertexId side_count = p.num_vertices > side_begin ? p.num_vertices - side_begin : 0;
  if (side_count > 1) {
    const uint64_t side_edges = p.num_edges > edges.size() ? p.num_edges - edges.size() : 0;
    const VertexId cluster = std::max<VertexId>(64, side_count / 64);
    for (uint64_t e = 0; e < side_edges; ++e) {
      VertexId u = side_begin + static_cast<VertexId>(rng.NextBounded(side_count));
      VertexId cluster_base = side_begin + ((u - side_begin) / cluster) * cluster;
      VertexId cluster_size = std::min<VertexId>(cluster, side_begin + side_count - cluster_base);
      VertexId v = cluster_base + static_cast<VertexId>(rng.NextBounded(cluster_size));
      edges.push_back({u, v});
    }
  }
  return edges;
}

std::vector<Edge> MirrorEdges(std::vector<Edge> edges, double fraction, uint64_t seed) {
  ETA_CHECK(fraction >= 0.0 && fraction <= 1.0);
  util::SplitMix64 rng = util::SplitMix64::Stream(seed, /*tag=*/0x313);
  size_t original = edges.size();
  edges.reserve(original + static_cast<size_t>(original * fraction) + 1);
  for (size_t i = 0; i < original; ++i) {
    if (rng.NextDouble() < fraction) {
      edges.push_back({edges[i].dst, edges[i].src});
    }
  }
  return edges;
}

std::vector<Edge> CompactVertexIds(std::vector<Edge> edges, VertexId* num_vertices) {
  VertexId max_id = 0;
  for (const Edge& e : edges) max_id = std::max({max_id, e.src, e.dst});
  std::vector<VertexId> remap(static_cast<size_t>(max_id) + 1, kInvalidVertex);
  for (const Edge& e : edges) {
    remap[e.src] = 0;
    remap[e.dst] = 0;
  }
  VertexId next = 0;
  for (VertexId& slot : remap) {
    if (slot != kInvalidVertex) slot = next++;
  }
  for (Edge& e : edges) {
    e.src = remap[e.src];
    e.dst = remap[e.dst];
  }
  if (num_vertices) *num_vertices = next;
  return edges;
}

std::vector<Edge> AppendTailChain(std::vector<Edge> edges, VertexId attach,
                                  VertexId first_new_id, uint32_t depth,
                                  uint32_t width, uint64_t seed) {
  ETA_CHECK(depth >= 1 && width >= 1);
  util::SplitMix64 rng = util::SplitMix64::Stream(seed, /*tag=*/0x7a11);
  auto layer_vertex = [&](uint32_t layer, uint32_t i) {
    return first_new_id + layer * width + i;
  };
  // attach -> layer 0.
  for (uint32_t i = 0; i < width; ++i) edges.push_back({attach, layer_vertex(0, i)});
  for (uint32_t layer = 0; layer + 1 < depth; ++layer) {
    for (uint32_t i = 0; i < width; ++i) {
      // Every next-layer vertex covered, plus a random extra for texture.
      edges.push_back({layer_vertex(layer, i), layer_vertex(layer + 1, i)});
      edges.push_back({layer_vertex(layer, i),
                       layer_vertex(layer + 1,
                                    static_cast<uint32_t>(rng.NextBounded(width)))});
    }
  }
  return edges;
}

std::vector<Edge> PlantTinySourceComponent(std::vector<Edge> edges,
                                           VertexId component_size,
                                           uint32_t depth, uint64_t seed) {
  ETA_CHECK(component_size >= depth + 1);
  util::SplitMix64 rng = util::SplitMix64::Stream(seed, /*tag=*/0x71);

  // Shift the host graph out of the way.
  for (Edge& e : edges) {
    e.src += component_size;
    e.dst += component_size;
  }

  // Layered mini-component on [0, component_size): layer 0 is just the
  // source (vertex 0); layers 1..depth share the remaining vertices. Every
  // layer fully covers the next, so BFS from the source visits the whole
  // component in exactly `depth` hops.
  const VertexId ls = (component_size - 1) / depth;
  ETA_CHECK(ls >= 1);
  auto layer_begin = [&](uint32_t j) -> VertexId { return j == 0 ? 0 : 1 + (j - 1) * ls; };
  auto layer_size = [&](uint32_t j) -> VertexId {
    if (j == 0) return 1;
    return j == depth ? component_size - 1 - (depth - 1) * ls : ls;
  };
  for (uint32_t j = 0; j < depth; ++j) {
    // Coverage: every next-layer vertex has a parent in this layer.
    for (VertexId d = 0; d < layer_size(j + 1); ++d) {
      VertexId src = layer_begin(j) + (d % layer_size(j));
      edges.push_back({src, layer_begin(j + 1) + d});
    }
    // Texture: a few extra random forward edges.
    for (VertexId v = layer_begin(j); v < layer_begin(j) + layer_size(j); ++v) {
      VertexId dst = layer_begin(j + 1) +
                     static_cast<VertexId>(rng.NextBounded(layer_size(j + 1)));
      edges.push_back({v, dst});
    }
  }
  return edges;
}

}  // namespace eta::graph
