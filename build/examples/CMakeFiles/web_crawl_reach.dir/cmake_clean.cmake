file(REMOVE_RECURSE
  "CMakeFiles/web_crawl_reach.dir/web_crawl_reach.cpp.o"
  "CMakeFiles/web_crawl_reach.dir/web_crawl_reach.cpp.o.d"
  "web_crawl_reach"
  "web_crawl_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_crawl_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
