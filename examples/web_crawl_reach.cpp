// Web-crawl reachability on a larger-than-device-memory graph — the
// paper's uk-2006 scenario. Builds a web graph whose CSR exceeds the
// simulated GPU's memory, then contrasts the two Unified Memory policies:
// whole-graph prefetch (pays the full transfer, thrashes under
// oversubscription) vs fault-driven on-demand migration (only the touched
// pages ever move). When the query source reaches a small component, the
// on-demand policy wins by orders of magnitude.
//
//   $ ./web_crawl_reach
//
#include <cstdio>

#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/units.hpp"

using namespace eta;

int main() {
  // A crawl with a long chain of site clusters, plus a tiny isolated
  // cluster containing the query URL (vertex 0).
  graph::WebGraphParams params;
  params.num_vertices = 400'000;
  params.num_edges = 12'000'000;
  params.num_communities = 24;
  params.lcc_fraction = 0.7;
  params.seed = 99;
  auto edges = graph::GenerateWebGraph(params);
  edges = graph::PlantTinySourceComponent(std::move(edges), /*component_size=*/80,
                                          /*depth=*/4, 100);
  graph::Csr csr = graph::BuildCsr(std::move(edges));
  csr.DeriveWeights(1);

  // A device too small for the whole topology.
  sim::DeviceSpec spec;
  spec.device_memory_bytes = 40 * util::kMiB;
  std::printf("crawl graph: %u pages, %u links, CSR topology %s; device memory %s\n",
              csr.NumVertices(), csr.NumEdges(),
              util::FormatBytes(csr.TopologyBytes()).c_str(),
              util::FormatBytes(spec.device_memory_bytes).c_str());

  auto run = [&](core::MemoryMode mode) {
    core::EtaGraphOptions options;
    options.memory_mode = mode;
    options.spec = spec;
    return core::EtaGraph(options).Run(csr, core::Algo::kBfs, 0);
  };

  auto explicit_copy = run(core::MemoryMode::kExplicitCopy);
  std::printf("\ncudaMalloc + cudaMemcpy:      %s\n",
              explicit_copy.oom ? "O.O.M - graph does not fit device memory"
                                : "unexpectedly fit");

  auto prefetch = run(core::MemoryMode::kUnifiedPrefetch);
  std::printf("UM + whole-graph prefetch:    %.3f ms, migrated %s\n", prefetch.total_ms,
              util::FormatBytes(prefetch.migrated_bytes == 0
                                    ? uint64_t(csr.TopologyBytes())
                                    : prefetch.migrated_bytes)
                  .c_str());

  auto on_demand = run(core::MemoryMode::kUnifiedOnDemand);
  std::printf("UM on-demand (fault-driven):  %.3f ms, migrated %s (%.4f%% of topology)\n",
              on_demand.total_ms, util::FormatBytes(on_demand.migrated_bytes).c_str(),
              100.0 * on_demand.migrated_bytes / csr.TopologyBytes());

  std::printf("\nquery reached %llu of %u pages (%u iterations); on-demand migration\n"
              "was %.0fx faster because only the touched pages ever crossed PCIe —\n"
              "the paper's uk-2006 result.\n",
              static_cast<unsigned long long>(on_demand.activated), csr.NumVertices(),
              on_demand.iterations, prefetch.total_ms / on_demand.total_ms);

  bool ok = on_demand.labels == core::CpuReference(csr, core::Algo::kBfs, 0);
  std::printf("verified against CPU BFS: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
