file(REMOVE_RECURSE
  "CMakeFiles/eta_graph.dir/builder.cpp.o"
  "CMakeFiles/eta_graph.dir/builder.cpp.o.d"
  "CMakeFiles/eta_graph.dir/csr.cpp.o"
  "CMakeFiles/eta_graph.dir/csr.cpp.o.d"
  "CMakeFiles/eta_graph.dir/datasets.cpp.o"
  "CMakeFiles/eta_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/eta_graph.dir/generators.cpp.o"
  "CMakeFiles/eta_graph.dir/generators.cpp.o.d"
  "CMakeFiles/eta_graph.dir/io.cpp.o"
  "CMakeFiles/eta_graph.dir/io.cpp.o.d"
  "CMakeFiles/eta_graph.dir/space_model.cpp.o"
  "CMakeFiles/eta_graph.dir/space_model.cpp.o.d"
  "CMakeFiles/eta_graph.dir/stats.cpp.o"
  "CMakeFiles/eta_graph.dir/stats.cpp.o.d"
  "libeta_graph.a"
  "libeta_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
