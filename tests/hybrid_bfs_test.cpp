// Tests for the direction-optimizing BFS extension.
#include <gtest/gtest.h>

#include "core/hybrid_bfs.hpp"
#include "cpu/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eta::core {
namespace {

graph::Csr SocialGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 12;
  params.num_edges = 60'000;
  params.a = 0.57;
  params.b = 0.19;
  params.c = 0.19;
  params.seed = seed;
  auto edges = graph::MirrorEdges(graph::GenerateRmat(params), 0.7, seed);
  return graph::BuildCsr(std::move(edges));
}

class HybridBfs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HybridBfs, MatchesCpuOnSocialGraphs) {
  graph::Csr csr = SocialGraph(GetParam());
  auto result = RunHybridBfs(csr, 0);
  ASSERT_FALSE(result.oom);
  EXPECT_EQ(result.levels, cpu::BfsLevels(csr, 0));
  // Social graphs have the fat middle frontier that triggers pull mode.
  EXPECT_GT(result.bottom_up_iterations, 0u);
  EXPECT_LT(result.bottom_up_iterations, result.iterations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridBfs, ::testing::Values(1u, 2u, 3u));

TEST(HybridBfsShape, ChainNeverLeavesTopDown) {
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 0; v + 1 < 300; ++v) edges.push_back({v, v + 1});
  graph::Csr csr = graph::BuildCsr(std::move(edges));
  auto result = RunHybridBfs(csr, 0);
  EXPECT_EQ(result.bottom_up_iterations, 0u);  // frontier never fattens
  EXPECT_EQ(result.levels, cpu::BfsLevels(csr, 0));
  EXPECT_EQ(result.iterations, 300u);
}

TEST(HybridBfsShape, AlphaDisablesPullMode) {
  graph::Csr csr = SocialGraph(4);
  HybridBfsOptions never;
  never.alpha = 0.5;  // threshold > |V|: never switch
  auto result = RunHybridBfs(csr, 0, never);
  EXPECT_EQ(result.bottom_up_iterations, 0u);
  EXPECT_EQ(result.levels, cpu::BfsLevels(csr, 0));
}

TEST(HybridBfsShape, PullModeCutsKernelTimeOnSocial) {
  graph::Csr csr = SocialGraph(5);
  HybridBfsOptions hybrid;
  HybridBfsOptions push_only;
  push_only.alpha = 0.5;
  auto a = RunHybridBfs(csr, 0, hybrid);
  auto b = RunHybridBfs(csr, 0, push_only);
  ASSERT_EQ(a.levels, b.levels);
  // The fat middle iterations dominate; pull mode's early-exit scans beat
  // pushing every edge through atomics.
  EXPECT_LT(a.kernel_ms, b.kernel_ms);
}

TEST(HybridBfsShape, NonZeroSourceAndUnreachable) {
  std::vector<graph::Edge> edges = {{5, 6}, {6, 7}, {1, 2}};
  graph::Csr csr = graph::BuildCsr(std::move(edges), {.min_vertices = 10});
  auto result = RunHybridBfs(csr, 5);
  EXPECT_EQ(result.levels, cpu::BfsLevels(csr, 5));
  EXPECT_EQ(result.levels[2], cpu::kInf);
}

TEST(HybridBfsShape, Deterministic) {
  graph::Csr csr = SocialGraph(6);
  auto a = RunHybridBfs(csr, 0);
  auto b = RunHybridBfs(csr, 0);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms);
  EXPECT_EQ(a.bottom_up_iterations, b.bottom_up_iterations);
}

}  // namespace
}  // namespace eta::core
