#include "serve/types.hpp"

namespace eta::serve {

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNaivePerQuery: return "naive";
    case ServeMode::kSession: return "session";
    case ServeMode::kSessionBatched: return "session+batch";
  }
  return "?";
}

}  // namespace eta::serve
