#include "core/framework.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/udc.hpp"
#include "sanitizer/sanitizer.hpp"
#include "sim/device.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace eta::core {

namespace {

using graph::EdgeId;
using graph::VertexId;
using graph::Weight;
using sim::Buffer;
using sim::kWarpSize;
using sim::LaneArray;
using sim::WarpCtx;

const char* ModeNameImpl(MemoryMode mode) {
  switch (mode) {
    case MemoryMode::kUnifiedPrefetch: return "um+prefetch";
    case MemoryMode::kUnifiedOnDemand: return "um";
    case MemoryMode::kExplicitCopy: return "explicit";
    case MemoryMode::kChunkedStream: return "chunked";
  }
  return "?";
}

/// GTS-style fixed-chunk streaming state: which chunks of the adjacency
/// (and weight) arrays currently sit in the device-side window buffer.
struct ChunkStream {
  uint64_t chunk_bytes = 1 << 20;
  uint64_t window_chunks = 0;           // capacity of the device buffer
  std::vector<uint8_t> resident;        // per chunk of col[] (+ wts[] mirrored)
  std::vector<uint32_t> fifo;           // eviction order
  size_t fifo_head = 0;
  uint64_t transferred_bytes = 0;

  uint64_t ResidentCount() const { return fifo.size() - fifo_head; }
};

/// Maximum supported degree limit; bounds the per-warp scratch arrays that
/// stand in for the shared-memory partition (256 threads x K x 4B must also
/// fit the 48 KB scratchpad, which caps K at 48 for a weighted traversal).
constexpr uint32_t kMaxDegreeLimit = 48;

/// All device-side state of one resident graph.
struct DeviceState {
  Buffer<EdgeId> row;
  Buffer<VertexId> col;
  Buffer<Weight> wts;
  Buffer<Weight> labels;
  Buffer<uint32_t> stamp;      // last iteration each vertex was appended
  Buffer<VertexId> act_set;
  Buffer<uint32_t> act_count;  // single counter
  // Dual virtual active sets (Section V-B): shadows with degree == K and
  // shadows with degree < K, so the K-degree kernel can unroll exactly K.
  Buffer<VertexId> full_id;
  Buffer<EdgeId> full_start;
  Buffer<VertexId> part_id;
  Buffer<EdgeId> part_start;
  Buffer<EdgeId> part_end;
  Buffer<uint32_t> virt_counts;  // [0]=full, [1]=partial
  /// Per-vertex source bitmask for attributed multi-source runs; allocated
  /// lazily on the first attributed query and resident thereafter.
  Buffer<uint32_t> reach_mask;
};

/// actSet2virtActSet — the on-device Unified Degree Cut of Procedure 1.
/// One thread per active vertex; each emits ceil(deg/K) shadow tuples into
/// the matching virtual active set via atomic cursors.
void UdcKernel(WarpCtx& w, DeviceState& d, uint32_t k) {
  uint32_t mask = w.ActiveMask();
  if (!mask) return;
  uint64_t base = w.WarpId() * kWarpSize;

  LaneArray<VertexId> v{};
  w.GatherContiguous(d.act_set, base, mask, v);

  LaneArray<uint64_t> vidx{}, vidx1{};
  WarpCtx::ForActive(mask, [&](uint32_t lane) {
    vidx[lane] = v[lane];
    vidx1[lane] = v[lane] + 1;
  });
  LaneArray<EdgeId> start{}, end{};
  w.Gather(d.row, vidx, mask, start);
  w.Gather(d.row, vidx1, mask, end);
  w.ChargeAlu(4, mask);

  uint32_t max_shadows = 0;
  LaneArray<uint32_t> nshadow{};
  const uint32_t max_edges =
      static_cast<uint32_t>(std::min<uint64_t>(d.col.count, UINT32_MAX));
  WarpCtx::ForActive(mask, [&](uint32_t lane) {
    // Row offsets can be corrupt after an ECC fault; an inverted or
    // oversized pair must not inflate the shadow loop past the graph.
    uint32_t degree =
        end[lane] > start[lane] ? std::min(end[lane] - start[lane], max_edges) : 0;
    nshadow[lane] = (degree + k - 1) / k;
    max_shadows = std::max(max_shadows, nshadow[lane]);
  });

  LaneArray<uint32_t> one{};
  one.fill(1);
  LaneArray<uint64_t> counter_idx{};
  for (uint32_t s = 0; s < max_shadows; ++s) {
    uint32_t submask = 0, fullmask = 0;
    LaneArray<EdgeId> sstart{}, send{};
    WarpCtx::ForActive(mask, [&](uint32_t lane) {
      if (s >= nshadow[lane]) return;
      submask |= 1u << lane;
      sstart[lane] = start[lane] + s * k;
      send[lane] = std::min<EdgeId>(sstart[lane] + k, end[lane]);
      bool is_full = send[lane] - sstart[lane] == k;
      if (is_full) fullmask |= 1u << lane;
      counter_idx[lane] = is_full ? 0 : 1;
    });
    if (!submask) break;
    uint32_t partmask = submask & ~fullmask;
    w.ChargeAlu(4, submask);

    LaneArray<uint32_t> slot{};
    w.AtomicAdd(d.virt_counts, counter_idx, one, submask, slot);
    LaneArray<uint64_t> slot_idx{};
    WarpCtx::ForActive(submask, [&](uint32_t lane) { slot_idx[lane] = slot[lane]; });
    if (fullmask) {
      w.Scatter(d.full_id, slot_idx, v, fullmask);
      w.Scatter(d.full_start, slot_idx, sstart, fullmask);
    }
    if (partmask) {
      w.Scatter(d.part_id, slot_idx, v, partmask);
      w.Scatter(d.part_start, slot_idx, sstart, partmask);
      w.Scatter(d.part_end, slot_idx, send, partmask);
    }
  }
}

struct TraverseParams {
  Algo algo = Algo::kBfs;
  bool use_smp = true;
  bool full_set = true;  // which virtual active set this launch processes
  uint32_t k = 16;
  uint32_t iteration = 1;
  /// Min-label-propagation mode (connected components): the candidate label
  /// is the source label itself rather than Propagate(algo, ...).
  bool copy_label = false;
  /// Attributed multi-source mode: propagate per-vertex source bitmasks
  /// alongside the labels, reactivating vertices whose mask grows.
  bool attribute = false;
  /// Fault injection (EtaGraphOptions::inject): replace the reach-mask
  /// AtomicOr with a plain read-modify-write.
  bool drop_reach_atomic = false;
};

/// The traversal kernel of Procedure 1: one thread per shadow vertex.
/// With SMP it first bulk-fetches its (at most K) neighbor IDs (and
/// weights) into the shared-memory partition with unrolled loads, then
/// relaxes each neighbor from the scratchpad; without SMP it loads
/// neighbors one by one from global memory (the paper's strawman).
void TraverseKernel(WarpCtx& w, DeviceState& d, const TraverseParams& p) {
  uint32_t mask = w.ActiveMask();
  if (!mask) return;
  uint64_t base = w.WarpId() * kWarpSize;

  LaneArray<VertexId> id{};
  LaneArray<EdgeId> start{}, end{};
  if (p.full_set) {
    w.GatherContiguous(d.full_id, base, mask, id);
    w.GatherContiguous(d.full_start, base, mask, start);
    WarpCtx::ForActive(mask, [&](uint32_t lane) { end[lane] = start[lane] + p.k; });
    w.ChargeAlu(1, mask);
  } else {
    w.GatherContiguous(d.part_id, base, mask, id);
    w.GatherContiguous(d.part_start, base, mask, start);
    w.GatherContiguous(d.part_end, base, mask, end);
  }

  LaneArray<uint64_t> id_idx{};
  LaneArray<uint32_t> deg{};
  uint32_t max_deg = 0;
  WarpCtx::ForActive(mask, [&](uint32_t lane) {
    id_idx[lane] = id[lane];
    // Partition bounds are device-resident, so after an uncorrectable ECC
    // hit they can be arbitrary — including inverted. Clamp to the build
    // invariant (end >= start, degree <= k): the shared-memory stand-in
    // below has exactly k slots per lane, and an unclamped degree would
    // index past it.
    deg[lane] =
        end[lane] > start[lane] ? std::min(end[lane] - start[lane], p.k) : 0;
    max_deg = std::max(max_deg, deg[lane]);
  });
  LaneArray<Weight> src_label{};
  w.Gather(d.labels, id_idx, mask, src_label);
  LaneArray<uint32_t> src_mask{};
  if (p.attribute) w.Gather(d.reach_mask, id_idx, mask, src_mask);

  const bool weighted = !p.copy_label && IsWeighted(p.algo);
  // The shared-memory partition of this warp (functional stand-in; the
  // traffic is charged through GatherBulk / ChargeShared).
  uint32_t nbr_buf[kWarpSize * kMaxDegreeLimit];
  uint32_t wgt_buf[kWarpSize * kMaxDegreeLimit];
  if (p.use_smp) {
    LaneArray<uint64_t> start64{};
    WarpCtx::ForActive(mask, [&](uint32_t lane) { start64[lane] = start[lane]; });
    w.GatherBulk(d.col, start64, deg, mask, nbr_buf, p.k);
    if (weighted) w.GatherBulk(d.wts, start64, deg, mask, wgt_buf, p.k);
  }

  LaneArray<uint32_t> one{};
  one.fill(1);
  LaneArray<uint64_t> zero_idx{};
  LaneArray<uint32_t> iter_val{};
  iter_val.fill(p.iteration);

  for (uint32_t j = 0; j < max_deg; ++j) {
    uint32_t jmask = 0;
    WarpCtx::ForActive(mask, [&](uint32_t lane) {
      if (j < deg[lane]) jmask |= 1u << lane;
    });
    if (!jmask) break;

    LaneArray<VertexId> u{};
    LaneArray<Weight> ew{};
    if (p.use_smp) {
      WarpCtx::ForActive(jmask, [&](uint32_t lane) {
        u[lane] = nbr_buf[lane * p.k + j];
        if (weighted) ew[lane] = wgt_buf[lane * p.k + j];
      });
      w.ChargeShared(weighted ? 2 : 1, jmask);
    } else {
      LaneArray<uint64_t> eidx{};
      WarpCtx::ForActive(jmask, [&](uint32_t lane) { eidx[lane] = start[lane] + j; });
      w.Gather(d.col, eidx, jmask, u);
      if (weighted) w.Gather(d.wts, eidx, jmask, ew);
    }

    const bool maximize = !p.copy_label && IsWidest(p.algo);
    auto improves = [&](Weight candidate, Weight current) {
      return p.copy_label ? candidate < current : Improves(p.algo, candidate, current);
    };
    LaneArray<uint64_t> u_idx{};
    LaneArray<Weight> cand{};
    WarpCtx::ForActive(jmask, [&](uint32_t lane) {
      u_idx[lane] = u[lane];
      cand[lane] =
          p.copy_label ? src_label[lane] : Propagate(p.algo, src_label[lane], ew[lane]);
    });

    // Attribution: reach masks flow along *every* traversed edge, not only
    // label-improving ones; a destination whose mask gains bits re-enters
    // the frontier so the masks converge to the exact per-source
    // reachability fixpoint (the union of |sources| traversals).
    uint32_t gmask = 0;
    if (p.attribute) {
      LaneArray<uint32_t> old_mask{};
      if (p.drop_reach_atomic) {
        // Injected bug: the unsynchronized read-modify-write a dropped
        // AtomicOr degenerates to. Lanes of one warp targeting the same
        // destination lose updates; racecheck must flag both the store
        // over the foreign read and the store over the foreign store.
        w.Gather(d.reach_mask, u_idx, jmask, old_mask);
        LaneArray<uint32_t> new_mask{};
        WarpCtx::ForActive(jmask, [&](uint32_t lane) {
          new_mask[lane] = old_mask[lane] | src_mask[lane];
        });
        w.Scatter(d.reach_mask, u_idx, new_mask, jmask);
      } else {
        w.AtomicOr(d.reach_mask, u_idx, src_mask, jmask, old_mask);
      }
      WarpCtx::ForActive(jmask, [&](uint32_t lane) {
        if (src_mask[lane] & ~old_mask[lane]) gmask |= 1u << lane;
      });
    }

    LaneArray<Weight> cur{};
    w.Gather(d.labels, u_idx, jmask, cur);
    uint32_t imask = 0;
    WarpCtx::ForActive(jmask, [&](uint32_t lane) {
      if (improves(cand[lane], cur[lane])) imask |= 1u << lane;
    });
    w.ChargeAlu(2, jmask);

    uint32_t cmask = 0;
    if (imask) {
      LaneArray<Weight> old{};
      if (maximize) {
        w.AtomicMax(d.labels, u_idx, cand, imask, old);
      } else {
        w.AtomicMin(d.labels, u_idx, cand, imask, old);
      }
      WarpCtx::ForActive(imask, [&](uint32_t lane) {
        if (improves(cand[lane], old[lane])) cmask |= 1u << lane;
      });
    }
    uint32_t amask = cmask | gmask;
    if (!amask) continue;

    // Append to the next active set, deduplicated per iteration by the
    // stamp array (one entry per vertex per iteration).
    LaneArray<uint32_t> prev_stamp{};
    w.AtomicMax(d.stamp, u_idx, iter_val, amask, prev_stamp);
    uint32_t nmask = 0;
    WarpCtx::ForActive(amask, [&](uint32_t lane) {
      if (prev_stamp[lane] < p.iteration) nmask |= 1u << lane;
    });
    if (!nmask) continue;

    LaneArray<uint32_t> slot{};
    w.AtomicAdd(d.act_count, zero_idx, one, nmask, slot);
    LaneArray<uint64_t> slot_idx{};
    WarpCtx::ForActive(nmask, [&](uint32_t lane) { slot_idx[lane] = slot[lane]; });
    w.Scatter(d.act_set, slot_idx, u, nmask);
  }
}

}  // namespace

const char* MemoryModeName(MemoryMode mode) { return ModeNameImpl(mode); }

/// Device plus resident buffers of one session; lives for the session's
/// whole lifetime so UM residency, cache state, and the chunk window carry
/// across queries.
struct ResidentGraph::State {
  /// Declared before the device: the device holds a raw observer pointer
  /// into the checker, so the checker must be destroyed last.
  std::unique_ptr<sanitizer::Sanitizer> checker;
  /// Same lifetime rule as the checker: the device holds a raw pointer.
  std::unique_ptr<sim::FaultInjector> injector;
  /// Same lifetime rule again (raw pointer in the device).
  std::unique_ptr<sim::LaunchProfiler> profiler;
  sim::Device device;
  DeviceState d;
  ChunkStream stream;
  Buffer<uint32_t> stream_window;  // the staging buffer (kDevice)

  explicit State(const sim::DeviceSpec& spec) : device(spec) {}
};

uint64_t ResidentGraph::EstimateDeviceBytes(const graph::Csr& csr,
                                            const EtaGraphOptions& options) {
  return EstimateDeviceBytes(csr, options, csr.HasWeights());
}

uint64_t ResidentGraph::EstimateDeviceBytes(const graph::Csr& csr,
                                            const EtaGraphOptions& options,
                                            bool stage_weights) {
  const VertexId n = csr.NumVertices();
  const EdgeId m = csr.NumEdges();
  const bool chunked = options.memory_mode == MemoryMode::kChunkedStream;
  const bool unified = options.memory_mode == MemoryMode::kUnifiedPrefetch ||
                       options.memory_mode == MemoryMode::kUnifiedOnDemand;
  const uint64_t page = std::max<uint64_t>(options.spec.page_bytes, 1);
  // DeviceMemory::Allocate page-rounds every allocation and only kDevice
  // allocations count against capacity; mirror both rules.
  auto paged = [&](uint64_t count, uint64_t elem) {
    return (std::max<uint64_t>(count * elem, 1) + page - 1) / page * page;
  };
  uint64_t total = 0;
  if (!unified) total += paged(uint64_t{n} + 1, sizeof(EdgeId));  // row_offsets
  if (!unified && !chunked) {
    total += paged(m, sizeof(VertexId));  // col_indices
    if (stage_weights) total += paged(m, sizeof(Weight));
  }
  if (chunked) {
    // The bounded staging window, sized exactly as the constructor does.
    const uint64_t chunk_bytes = options.stream_chunk_bytes;
    const uint64_t reserve = uint64_t{n} * 40 + (1 << 20);
    const uint64_t avail = options.spec.device_memory_bytes > reserve
                               ? options.spec.device_memory_bytes - reserve
                               : chunk_bytes;
    const uint64_t window_chunks = std::max<uint64_t>(
        2, avail / 2 / ((stage_weights ? 2 : 1) * chunk_bytes));
    const uint64_t window_words =
        window_chunks * (stage_weights ? 2 : 1) * chunk_bytes / sizeof(uint32_t);
    total += paged(window_words, sizeof(uint32_t));
  }
  total += paged(n, sizeof(Weight));    // labels
  total += paged(n, sizeof(uint32_t));  // stamp
  const uint64_t act_cap = options.inject.shrink_frontier && n > 1 ? n - 1 : n;
  total += paged(act_cap, sizeof(VertexId));  // act_set
  total += paged(1, sizeof(uint32_t));        // act_count
  const uint64_t shadow_cap = ShadowCapacity(csr, options.degree_limit) + 1;
  total += paged(shadow_cap, sizeof(VertexId));  // full_id
  total += paged(shadow_cap, sizeof(EdgeId));    // full_start
  total += paged(shadow_cap, sizeof(VertexId));  // part_id
  total += paged(shadow_cap, sizeof(EdgeId));    // part_start
  total += paged(shadow_cap, sizeof(EdgeId));    // part_end
  total += paged(2, sizeof(uint32_t));           // virt_counts
  total += paged(n, sizeof(uint32_t));           // reach_mask (lazy)
  return total;
}

ResidentGraph::ResidentGraph(const graph::Csr& csr, EtaGraphOptions options)
    : ResidentGraph(csr, options, csr.HasWeights()) {}

ResidentGraph::ResidentGraph(const graph::Csr& csr, EtaGraphOptions options,
                             bool stage_weights)
    : csr_(csr), options_(options), weights_staged_(stage_weights) {
  ETA_CHECK(!weights_staged_ || csr.HasWeights());
  ETA_CHECK(options_.degree_limit >= 1 && options_.degree_limit <= kMaxDegreeLimit);

  const VertexId n = csr.NumVertices();
  const EdgeId m = csr.NumEdges();
  const uint32_t k = options_.degree_limit;
  const bool chunked = options_.memory_mode == MemoryMode::kChunkedStream;
  const bool unified = options_.memory_mode == MemoryMode::kUnifiedPrefetch ||
                       options_.memory_mode == MemoryMode::kUnifiedOnDemand;
  // Chunk streaming keeps row offsets and labels resident but ships the
  // adjacency (and weights) through a bounded staging window.
  const sim::MemKind adj_kind = chunked   ? sim::MemKind::kHostStaged
                                : unified ? sim::MemKind::kUnified
                                          : sim::MemKind::kDevice;
  const sim::MemKind row_kind =
      chunked ? sim::MemKind::kDevice
              : (unified ? sim::MemKind::kUnified : sim::MemKind::kDevice);

  state_ = std::make_unique<State>(options_.spec);
  sim::Device& device = state_->device;
  DeviceState& d = state_->d;
  ChunkStream& stream = state_->stream;
  if (options_.check.Enabled()) {
    // Attach before any allocation so the checker shadows every buffer.
    state_->checker = std::make_unique<sanitizer::Sanitizer>(options_.check);
    device.SetObserver(state_->checker.get());
  }
  if (options_.faults.Enabled()) {
    // Attach before any allocation so staging is already under injection;
    // a session rebuilt from the same config replays the same schedule.
    state_->injector = std::make_unique<sim::FaultInjector>(options_.faults);
    device.SetFaultInjector(state_->injector.get());
  }
  if (options_.profile) {
    state_->profiler = std::make_unique<sim::LaunchProfiler>();
    device.SetProfiler(state_->profiler.get());
  }
  try {
    d.row = device.Alloc<EdgeId>(n + 1, row_kind, "row_offsets");
    d.col = device.Alloc<VertexId>(m, adj_kind, "col_indices");
    if (weights_staged_) d.wts = device.Alloc<Weight>(m, adj_kind, "weights");
    if (chunked) {
      stream.chunk_bytes = options_.stream_chunk_bytes;
      uint64_t num_chunks =
          (uint64_t{m} * sizeof(VertexId) + stream.chunk_bytes - 1) / stream.chunk_bytes;
      stream.resident.assign(num_chunks, 0);
      // Window: half of whatever device memory remains after the resident
      // structures below are sized (estimated here; GTS dedicates a fixed
      // staging area).
      uint64_t reserve = uint64_t{n} * 40 + (1 << 20);
      uint64_t avail = options_.spec.device_memory_bytes > reserve
                           ? options_.spec.device_memory_bytes - reserve
                           : stream.chunk_bytes;
      stream.window_chunks = std::max<uint64_t>(
          2, avail / 2 / ((weights_staged_ ? 2 : 1) * stream.chunk_bytes));
      uint64_t window_words = stream.window_chunks * (weights_staged_ ? 2 : 1) *
                              stream.chunk_bytes / sizeof(uint32_t);
      state_->stream_window = device.Alloc<uint32_t>(window_words, sim::MemKind::kDevice,
                                                     "stream_window");
    }
    d.labels = device.Alloc<Weight>(n, sim::MemKind::kDevice, "labels");
    d.stamp = device.Alloc<uint32_t>(n, sim::MemKind::kDevice, "stamp");
    const uint64_t act_cap = options_.inject.shrink_frontier && n > 1 ? n - 1 : n;
    d.act_set = device.Alloc<VertexId>(act_cap, sim::MemKind::kDevice, "act_set");
    d.act_count = device.Alloc<uint32_t>(1, sim::MemKind::kDevice, "act_count");
    uint64_t shadow_cap = ShadowCapacity(csr, k) + 1;
    d.full_id = device.Alloc<VertexId>(shadow_cap, sim::MemKind::kDevice, "full_id");
    d.full_start = device.Alloc<EdgeId>(shadow_cap, sim::MemKind::kDevice, "full_start");
    d.part_id = device.Alloc<VertexId>(shadow_cap, sim::MemKind::kDevice, "part_id");
    d.part_start = device.Alloc<EdgeId>(shadow_cap, sim::MemKind::kDevice, "part_start");
    d.part_end = device.Alloc<EdgeId>(shadow_cap, sim::MemKind::kDevice, "part_end");
    d.virt_counts = device.Alloc<uint32_t>(2, sim::MemKind::kDevice, "virt_counts");
  } catch (const sim::OomError& e) {
    oom_ = true;
    oom_request_bytes_ = e.requested_bytes;
    return;
  }
  device_bytes_peak_ = device.Mem().DeviceBytesUsed();

  // --- Stage topology ------------------------------------------------------
  if (unified || chunked) {
    // Managed/host-staged memory: the host writes in place; pages migrate
    // on demand (UM) or chunks stream per iteration (GTS mode).
    std::copy(csr.RowOffsets().begin(), csr.RowOffsets().end(), d.row.HostSpan().begin());
    std::copy(csr.ColIndices().begin(), csr.ColIndices().end(), d.col.HostSpan().begin());
    if (weights_staged_) {
      std::copy(csr.Weights().begin(), csr.Weights().end(), d.wts.HostSpan().begin());
    }
    if (chunked) {
      // Row offsets are resident device data in GTS mode: explicit upload.
      device.ChargeHostToDevice((uint64_t{n} + 1) * sizeof(EdgeId), /*pageable=*/false,
                                "row-upload");
    }
  } else {
    device.CopyToDevice(d.row, csr.RowOffsets());
    device.CopyToDevice(d.col, csr.ColIndices());
    if (weights_staged_) device.CopyToDevice(d.wts, csr.Weights());
  }
  if (unified || chunked) {
    // The std::copy staging above wrote through HostSpan, which the device
    // cannot see; tell an attached checker those bytes are defined.
    device.MarkHostInitialized(d.row);
    device.MarkHostInitialized(d.col);
    if (weights_staged_) device.MarkHostInitialized(d.wts);
  }
  // The stamp array relies on the allocator's zero-fill (stamp 0 = "never
  // appended") plus host-side scattered seeding in Execute.
  device.MarkHostInitialized(d.stamp);
  load_ms_ = device.NowMs();
}

ResidentGraph::~ResidentGraph() { Shutdown(); }

void ResidentGraph::Shutdown() {
  if (shutdown_ || state_ == nullptr) return;
  shutdown_ = true;
  sim::Device& device = state_->device;
  DeviceState& d = state_->d;
  device.Free(d.row);
  device.Free(d.col);
  device.Free(d.wts);
  device.Free(d.labels);
  device.Free(d.stamp);
  device.Free(d.act_set);
  device.Free(d.act_count);
  device.Free(d.full_id);
  device.Free(d.full_start);
  device.Free(d.part_id);
  device.Free(d.part_start);
  device.Free(d.part_end);
  device.Free(d.virt_counts);
  device.Free(d.reach_mask);
  device.Free(state_->stream_window);
  // Everything the session owns is gone; anything still live is a leak the
  // sweep hands to an attached leakcheck observer.
  device.ReportLeaks();
}

double ResidentGraph::NowMs() const { return state_->device.NowMs(); }

double ResidentGraph::PrefetchTopology() {
  if (shutdown_ || oom_ || device_lost_ || prefetched_) return 0;
  if (options_.memory_mode != MemoryMode::kUnifiedPrefetch) return 0;
  sim::Device& device = state_->device;
  DeviceState& d = state_->d;
  const double before = device.NowMs();
  device.PrefetchAsync(d.row);
  device.PrefetchAsync(d.col);
  if (weights_staged_) device.PrefetchAsync(d.wts);
  // The caller charges this op to a copy stream as one block, so the pages
  // must be landed (not merely scheduled) before the clock delta is read.
  device.Synchronize();
  prefetched_ = true;
  return device.NowMs() - before;
}

RunReport ResidentGraph::Run(Algo algo, VertexId source) {
  ETA_CHECK(source < csr_.NumVertices());
  std::vector<Weight> init_labels(csr_.NumVertices(), InitLabel(algo, false));
  init_labels[source] = InitLabel(algo, true);
  const VertexId sources[1] = {source};
  return Execute(algo, std::move(init_labels), std::span<const VertexId>(sources),
                 /*copy_label=*/false, /*attribute_sources=*/false);
}

RunReport ResidentGraph::RunMultiSource(Algo algo, std::span<const VertexId> sources,
                                        bool attribute_sources) {
  ETA_CHECK(!sources.empty());
  ETA_CHECK(!attribute_sources || sources.size() <= kMaxAttributedSources);
  std::vector<Weight> init_labels(csr_.NumVertices(), InitLabel(algo, false));
  for (VertexId s : sources) {
    ETA_CHECK(s < csr_.NumVertices());
    init_labels[s] = InitLabel(algo, true);
  }
  return Execute(algo, std::move(init_labels), sources, /*copy_label=*/false,
                 attribute_sources);
}

RunReport ResidentGraph::RunConnectedComponents() {
  const VertexId n = csr_.NumVertices();
  std::vector<Weight> init_labels(n);
  std::vector<VertexId> sources(n);
  for (VertexId v = 0; v < n; ++v) {
    init_labels[v] = v;
    sources[v] = v;
  }
  // Unweighted kernel path; the copy_label flag overrides the propagation.
  return Execute(Algo::kBfs, std::move(init_labels),
                 std::span<const VertexId>(sources), /*copy_label=*/true,
                 /*attribute_sources=*/false);
}

RunReport ResidentGraph::Execute(Algo algo, std::vector<Weight> init_labels,
                                 std::span<const VertexId> initial_active,
                                 bool copy_label, bool attribute_sources) {
  ETA_CHECK(!shutdown_);
  RunReport report;
  report.framework = std::string("EtaGraph[") + ModeNameImpl(options_.memory_mode) +
                     (options_.use_smp ? "" : ",no-smp") + "]";
  report.algo = algo;
  if (oom_) {
    report.oom = true;
    report.oom_request_bytes = oom_request_bytes_;
    return report;
  }
  if (device_lost_) {
    report.faults.device_lost = true;
    return report;
  }
  const bool weighted = !copy_label && IsWeighted(algo);
  ETA_CHECK(!weighted || weights_staged_);
  ETA_CHECK(!attribute_sources || initial_active.size() <= kMaxAttributedSources);

  sim::Device& device = state_->device;
  DeviceState& d = state_->d;
  ChunkStream& stream = state_->stream;
  const VertexId n = csr_.NumVertices();
  const bool chunked = options_.memory_mode == MemoryMode::kChunkedStream;

  const double start_clock = device.NowMs();
  const uint64_t migrated_start =
      chunked ? stream.transferred_bytes : device.Um().TotalMigratedBytes();
  const size_t migration_ops_start = device.Um().MigrationSizes().Values().size();
  const sim::Counters counters_start = device.TotalCounters();
  const size_t profile_start =
      state_->profiler != nullptr ? state_->profiler->Launches().size() : 0;

  if (attribute_sources && !d.reach_mask.Valid()) {
    try {
      d.reach_mask = device.Alloc<uint32_t>(n, sim::MemKind::kDevice, "reach_mask");
    } catch (const sim::OomError& e) {
      report.oom = true;
      report.oom_request_bytes = e.requested_bytes;
      return report;
    }
    device_bytes_peak_ = std::max(device_bytes_peak_, device.Mem().DeviceBytesUsed());
  }

  // --- Attempt/retry loop (DESIGN.md section 8) ----------------------------
  // A failed launch executes no warps, so recovery restarts the whole query:
  // after a UECC, verify/re-stage the resident topology from its host
  // shadows; charge exponential backoff to the simulated clock; run again.
  // Device loss is terminal for the session.
  FaultStats faults;
  // etatrace: per-attempt records, filled only under trace_requests (the
  // vector stays empty and untouched otherwise — zero-cost contract).
  std::vector<AttemptRecord> attempt_log;
  const bool trace = options_.trace_requests;
  const uint32_t max_attempts = 1 + options_.recovery.max_retries;
  for (uint32_t attempt = 0;; ++attempt) {
    AttemptFailure failure;
    RunReport attempt_report =
        ExecuteAttempt(algo, init_labels, initial_active, copy_label, attribute_sources,
                       start_clock, &faults, &failure);
    if (!failure.failed) {
      if (trace) {
        AttemptRecord rec;
        rec.attempt = attempt;
        rec.succeeded = true;
        attempt_log.push_back(rec);
      }
      report = std::move(attempt_report);
      break;
    }
    AttemptRecord rec;  // written only when trace is on
    rec.attempt = attempt;
    // The aborted attempt may have stamped vertices up to its failing
    // iteration; start the next epoch above them so stale stamps never
    // suppress appends.
    stamp_base_ += failure.iter + 2;
    ++faults.launch_failures;
    switch (failure.status) {
      case sim::LaunchStatus::kEccUncorrectable:
        ++faults.ecc_uncorrectable;
        rec.fault = 1;
        break;
      case sim::LaunchStatus::kKernelTimeout:
        ++faults.hangs;
        rec.fault = 2;
        break;
      case sim::LaunchStatus::kDeviceLost:
        faults.device_lost = true;
        rec.fault = 3;
        break;
      case sim::LaunchStatus::kOk: break;
    }
    if (failure.status == sim::LaunchStatus::kDeviceLost) {
      device_lost_ = true;
      if (trace) attempt_log.push_back(rec);
      report = std::move(attempt_report);
      break;
    }
    if (attempt + 1 >= max_attempts) {
      faults.exhausted = true;
      if (trace) attempt_log.push_back(rec);
      report = std::move(attempt_report);
      break;
    }
    // Fleet-wide retry budget: one token per retry (the token also covers
    // the re-stage a UECC retry needs). A dry bucket ends recovery exactly
    // like exhausting max_retries — the caller's degraded path takes over —
    // so a sticky-fault storm cannot multiply offered load.
    if (options_.recovery.budget != nullptr && !options_.recovery.budget->TryAcquireRetry()) {
      faults.exhausted = true;
      if (trace) {
        rec.budget_denied = true;
        attempt_log.push_back(rec);
      }
      report = std::move(attempt_report);
      break;
    }
    if (failure.status == sim::LaunchStatus::kEccUncorrectable) {
      const uint64_t restaged_before = faults.restaged_buffers;
      RestageCorrupted(&faults);
      rec.restaged = faults.restaged_buffers > restaged_before;
    }
    const double delay = options_.recovery.backoff_base_ms *
                         std::pow(options_.recovery.backoff_multiplier, attempt);
    device.ChargeDelay(delay, "fault-backoff");
    faults.backoff_ms += delay;
    ++faults.retries;
    if (trace) {
      rec.backoff_ms = delay;
      attempt_log.push_back(rec);
    }
  }

  report.framework = std::string("EtaGraph[") + ModeNameImpl(options_.memory_mode) +
                     (options_.use_smp ? "" : ",no-smp") + "]";
  report.algo = algo;
  report.faults = faults;
  if (trace) report.attempts = std::move(attempt_log);
  report.device_bytes_peak = device_bytes_peak_;
  report.total_ms = device.NowMs();
  report.query_ms = device.NowMs() - start_clock;
  report.counters = device.TotalCounters();
  report.query_counters = device.TotalCounters().Since(counters_start);
  if (state_->profiler != nullptr) {
    const auto& launches = state_->profiler->Launches();
    report.kernel_profiles.assign(launches.begin() + static_cast<long>(profile_start),
                                  launches.end());
  }
  report.timeline = device.GetTimeline();
  const auto& sizes = device.Um().MigrationSizes().Values();
  report.migration_sizes.assign(sizes.begin() + static_cast<long>(migration_ops_start),
                                sizes.end());
  report.migrated_bytes =
      (chunked ? stream.transferred_bytes : device.Um().TotalMigratedBytes()) -
      migrated_start;
  if (state_->checker != nullptr) report.check = state_->checker->Report();
  ++queries_served_;
  return report;
}

RunReport ResidentGraph::ExecuteAttempt(Algo algo, const std::vector<Weight>& init_labels,
                                        std::span<const VertexId> initial_active,
                                        bool copy_label, bool attribute_sources,
                                        double query_start_clock, FaultStats* faults,
                                        AttemptFailure* failure) {
  (void)query_start_clock;
  RunReport report;
  sim::Device& device = state_->device;
  DeviceState& d = state_->d;
  ChunkStream& stream = state_->stream;
  const VertexId n = csr_.NumVertices();
  const uint32_t k = options_.degree_limit;
  const bool chunked = options_.memory_mode == MemoryMode::kChunkedStream;

  // Folds one launch's fault outcome into the attempt; false = abort.
  auto launch_ok = [&](const sim::LaunchResult& r, uint32_t iter) {
    faults->ecc_corrected += r.ecc_corrected;
    if (r.Ok()) return true;
    failure->failed = true;
    failure->status = r.status;
    failure->iter = iter;
    return false;
  };

  // --- Init labels and the active set --------------------------------------
  device.CopyToDevice(d.labels, std::span<const Weight>(init_labels));

  device.CopyToDeviceRange(d.act_set, 0, initial_active, /*pageable=*/false);
  const auto initial_count = static_cast<uint32_t>(initial_active.size());
  device.CopyToDevice(d.act_count, std::span<const uint32_t>(&initial_count, 1), false);
  // Seed stamps for the initial set: functionally scattered writes, charged
  // as one |sources|-sized upload (a real implementation memsets or ships a
  // prepared stamp array). Stamps are offset by stamp_base_ so stale values
  // from earlier session queries never suppress appends.
  std::vector<uint32_t> stamp_upload(initial_active.size(), stamp_base_ + 1);
  device.CopyToDeviceRange(d.stamp, 0, std::span<const uint32_t>(stamp_upload), false);
  for (VertexId s : initial_active) d.stamp.HostSpan()[s] = stamp_base_ + 1;

  if (attribute_sources) {
    std::vector<uint32_t> init_masks(n, 0);
    for (size_t i = 0; i < initial_active.size(); ++i) {
      init_masks[initial_active[i]] |= 1u << i;
    }
    device.CopyToDevice(d.reach_mask, std::span<const uint32_t>(init_masks));
  }

  // Topology prefetch is a load-time cost: only the session's first query
  // pays it; afterwards the managed pages are already resident.
  if (!prefetched_ && options_.memory_mode == MemoryMode::kUnifiedPrefetch) {
    device.PrefetchAsync(d.row);
    device.PrefetchAsync(d.col);
    if (weights_staged_) device.PrefetchAsync(d.wts);
    prefetched_ = true;
  }

  // --- Main loop (Procedure 1) ----------------------------------------------
  uint32_t act_count = initial_count;
  uint64_t activated_cum = initial_count;
  double kernel_ms = 0;
  const uint32_t zeros[2] = {0, 0};
  for (uint32_t iter = 1; act_count > 0 && iter <= options_.max_iterations; ++iter) {
    // One fused reset: the UDC kernel does not read act_count (the host
    // already holds it as the launch bound), so all three cursors reset in
    // a single small H2D before the transform.
    device.CopyToDevice(d.virt_counts, std::span<const uint32_t>(zeros, 2), false);
    device.CopyToDevice(d.act_count, std::span<const uint32_t>(zeros, 1), false);

    auto udc = device.Launch("udc", {act_count, options_.block_size},
                             [&](WarpCtx& w) { UdcKernel(w, d, k); });
    kernel_ms += udc.compute_ms;
    if (!launch_ok(udc, iter)) {
      report.kernel_ms = kernel_ms;
      return report;
    }

    uint32_t vc[2] = {0, 0};
    device.CopyToHost(std::span<uint32_t>(vc, 2), d.virt_counts, false);
    // Shadow counts come back from device memory; a fault-corrupted count
    // must never launch a grid bigger than the staging arrays it indexes.
    // Only active under injection: the planted-bug paths (options_.inject)
    // deliberately let etacheck observe raw overflows.
    if (options_.faults.Enabled()) {
      vc[0] = static_cast<uint32_t>(std::min<uint64_t>(vc[0], d.full_id.count));
      vc[1] = static_cast<uint32_t>(std::min<uint64_t>(vc[1], d.part_id.count));
    }
    uint64_t prev_active = act_count;

    if (chunked && prev_active > 0) {
      // GTS-style staging: ship every fixed-size chunk that any active
      // vertex's adjacency touches, wholly, before the traversal kernels.
      // Multi-stream pipelining hides part of the copy (overlap below),
      // but a mostly-idle chunk still costs its full bytes — the waste the
      // paper's introduction calls out. The resident-chunk window persists
      // across session queries (a warm window, like UM residency).
      auto act_host = d.act_set.HostSpan();
      uint64_t new_bytes = 0;
      for (uint64_t i = 0; i < prev_active; ++i) {
        VertexId v = act_host[i];
        // Active-set entries are device data: skip ids a fault pushed out
        // of range instead of indexing the host CSR with them.
        if (v >= csr_.NumVertices() || csr_.OutDegree(v) == 0) continue;
        uint64_t first =
            uint64_t{csr_.RowStart(v)} * sizeof(VertexId) / stream.chunk_bytes;
        uint64_t last =
            (uint64_t{csr_.RowEnd(v)} * sizeof(VertexId) - 1) / stream.chunk_bytes;
        for (uint64_t c = first; c <= last; ++c) {
          if (stream.resident[c]) continue;
          while (stream.ResidentCount() >= stream.window_chunks) {
            stream.resident[stream.fifo[stream.fifo_head++]] = 0;
          }
          stream.resident[c] = 1;
          stream.fifo.push_back(static_cast<uint32_t>(c));
          new_bytes += stream.chunk_bytes * (weights_staged_ ? 2 : 1);
        }
      }
      if (new_bytes > 0) {
        device.ChargeHostToDevice(new_bytes, /*pageable=*/false, "chunk-stream",
                                  /*overlap=*/0.6);
        stream.transferred_bytes += new_bytes;
      }
    }

    TraverseParams params;
    params.algo = algo;
    params.use_smp = options_.use_smp;
    params.k = k;
    params.iteration = stamp_base_ + iter + 1;  // stamps compare against the *next* set
    params.copy_label = copy_label;
    params.attribute = attribute_sources;
    params.drop_reach_atomic = options_.inject.drop_reach_atomic;
    if (vc[0] > 0) {
      params.full_set = true;
      auto r = device.Launch("traverse_full", {vc[0], options_.block_size},
                             [&](WarpCtx& w) { TraverseKernel(w, d, params); });
      kernel_ms += r.compute_ms;
      if (!launch_ok(r, iter)) {
        report.kernel_ms = kernel_ms;
        return report;
      }
    }
    if (vc[1] > 0) {
      params.full_set = false;
      auto r = device.Launch("traverse_part", {vc[1], options_.block_size},
                             [&](WarpCtx& w) { TraverseKernel(w, d, params); });
      kernel_ms += r.compute_ms;
      if (!launch_ok(r, iter)) {
        report.kernel_ms = kernel_ms;
        return report;
      }
    }

    device.CopyToHost(std::span<uint32_t>(&act_count, 1), d.act_count, false);
    // Same contract as vc above: the next launch bound and the host-side
    // chunk walk must stay inside the active-set allocation.
    if (options_.faults.Enabled()) {
      act_count =
          static_cast<uint32_t>(std::min<uint64_t>(act_count, d.act_set.count));
    }
    activated_cum += act_count;
    report.iteration_stats.push_back({iter, prev_active, uint64_t{vc[0]} + vc[1],
                                      device.NowMs(), activated_cum});
  }

  // --- Results back ----------------------------------------------------------
  device.Synchronize();
  report.labels.resize(n);
  device.CopyToHost(std::span<Weight>(report.labels), d.labels);

  if (attribute_sources) {
    std::vector<uint32_t> masks(n);
    device.CopyToHost(std::span<uint32_t>(masks), d.reach_mask);
    report.per_source_reached.assign(initial_active.size(), 0);
    for (uint32_t m : masks) {
      while (m) {
        report.per_source_reached[std::countr_zero(m)]++;
        m &= m - 1;
      }
    }
  }

  report.kernel_ms = kernel_ms;
  report.iterations = static_cast<uint32_t>(report.iteration_stats.size());
  for (Weight label : report.labels) {
    if (Reached(algo, label)) ++report.activated;
  }
  report.activated_fraction = n ? static_cast<double>(report.activated) / n : 0;

  stamp_base_ += report.iterations + 1;
  return report;
}

void ResidentGraph::RestageCorrupted(FaultStats* faults) {
  sim::Device& device = state_->device;
  DeviceState& d = state_->d;
  ChunkStream& stream = state_->stream;

  auto restage = [&](auto& buf, auto host, const char* label) {
    if (!buf.Valid()) return;
    auto dev = buf.HostSpan();
    if (std::equal(host.begin(), host.end(), dev.begin())) return;
    if (buf.raw.kind == sim::MemKind::kDevice) {
      device.CopyToDevice(buf, host, /*pageable=*/false);
    } else if (buf.raw.kind == sim::MemKind::kUnified) {
      // Restore the backing pages and charge their re-migration.
      std::copy(host.begin(), host.end(), dev.begin());
      device.ChargeHostToDevice(host.size_bytes(), /*pageable=*/false,
                                std::string(label) + ":restage");
      device.MarkHostInitialized(buf);
    } else {
      // kHostStaged: the host storage is the functional truth; fixing it
      // costs nothing here, and the streamed window is dropped below so the
      // chunks re-ship through the normal (charged) path.
      std::copy(host.begin(), host.end(), dev.begin());
      device.MarkHostInitialized(buf);
    }
    ++faults->restaged_buffers;
    faults->restaged_bytes += host.size_bytes();
  };

  restage(d.row, std::span<const EdgeId>(csr_.RowOffsets()), "row");
  const uint64_t before_adj = faults->restaged_buffers;
  restage(d.col, std::span<const VertexId>(csr_.ColIndices()), "col");
  if (weights_staged_) restage(d.wts, std::span<const Weight>(csr_.Weights()), "wts");
  if (options_.memory_mode == MemoryMode::kChunkedStream &&
      faults->restaged_buffers != before_adj) {
    std::fill(stream.resident.begin(), stream.resident.end(), 0);
    stream.fifo.clear();
    stream.fifo_head = 0;
  }

  // The stamp array is the one piece of dynamic state a retry does not fully
  // rewrite, and it has no host shadow to verify against: re-zero it
  // (charged) and restart the stamp epoch.
  const VertexId n = csr_.NumVertices();
  std::vector<uint32_t> zeros(n, 0);
  device.CopyToDevice(d.stamp, std::span<const uint32_t>(zeros), /*pageable=*/false);
  ++faults->restaged_buffers;
  faults->restaged_bytes += uint64_t{n} * sizeof(uint32_t);
  stamp_base_ = 0;
}

const sanitizer::SanitizerReport* ResidentGraph::CheckReport() const {
  return state_ != nullptr && state_->checker != nullptr ? &state_->checker->Report()
                                                         : nullptr;
}

const sim::LaunchProfiler* ResidentGraph::Profiler() const {
  return state_ != nullptr ? state_->profiler.get() : nullptr;
}

const sim::Timeline& ResidentGraph::SessionTimeline() const {
  return state_->device.GetTimeline();
}

namespace {

/// One-shot epilogue: tear the session down (running the leakcheck sweep)
/// and re-copy the checker report so teardown findings reach the caller.
RunReport FinishOneShot(ResidentGraph& session, RunReport report) {
  session.Shutdown();
  if (const sanitizer::SanitizerReport* check = session.CheckReport()) {
    report.check = *check;
  }
  return report;
}

}  // namespace

RunReport EtaGraph::Run(const graph::Csr& csr, Algo algo, VertexId source) const {
  ResidentGraph session(csr, options_, /*stage_weights=*/IsWeighted(algo));
  return FinishOneShot(session, session.Run(algo, source));
}

RunReport EtaGraph::RunMultiSource(const graph::Csr& csr, Algo algo,
                                   std::span<const VertexId> sources,
                                   bool attribute_sources) const {
  ResidentGraph session(csr, options_, /*stage_weights=*/IsWeighted(algo));
  return FinishOneShot(session, session.RunMultiSource(algo, sources, attribute_sources));
}

RunReport EtaGraph::RunConnectedComponents(const graph::Csr& csr) const {
  ResidentGraph session(csr, options_, /*stage_weights=*/false);
  return FinishOneShot(session, session.RunConnectedComponents());
}

}  // namespace eta::core
