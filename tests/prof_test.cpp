// Tests for etaprof (DESIGN.md section 9): per-launch kernel profiling
// (recording, reconciliation against query totals, fault annotations, the
// zero-cost off-by-default contract), the nvprof-style summary aggregation,
// and the Chrome trace-event exporter (round-trip parse, determinism, span
// merging across serve and device clocks).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "prof/summary.hpp"
#include "prof/trace_export.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "sim/fault.hpp"
#include "sim/profiler.hpp"
#include "util/json.hpp"

namespace eta {
namespace {

graph::Csr RandomGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

core::RunReport ProfiledRun(const graph::Csr& csr, core::Algo algo) {
  core::EtaGraphOptions options;
  options.profile = true;
  return core::EtaGraph(options).Run(csr, algo, 0);
}

// --- Recording ----------------------------------------------------------------

TEST(LaunchProfiler, RecordsEveryLaunchAndReconciles) {
  graph::Csr csr = RandomGraph(21);
  auto report = ProfiledRun(csr, core::Algo::kBfs);
  ASSERT_FALSE(report.oom);
  ASSERT_FALSE(report.kernel_profiles.empty());
  EXPECT_EQ(report.kernel_profiles.size(), report.query_counters.launches);

  uint64_t warp_instructions = 0;
  double cycles = 0;
  double kernel_ms = 0;
  uint64_t index = 0;
  for (const sim::KernelProfile& p : report.kernel_profiles) {
    EXPECT_EQ(p.launch_index, ++index);  // 1-based, dense
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.grid_threads, 0u);
    EXPECT_GT(p.block_size, 0u);
    EXPECT_GE(p.end_ms, p.start_ms);
    EXPECT_TRUE(p.Ok());
    EXPECT_EQ(p.counters.launches, 1u);
    warp_instructions += p.counters.warp_instructions;
    cycles += p.counters.elapsed_cycles;
    kernel_ms += p.DurationMs();
  }
  // The profiles tile the query: summed per-launch deltas equal the totals.
  EXPECT_EQ(warp_instructions, report.query_counters.warp_instructions);
  EXPECT_NEAR(cycles, report.query_counters.elapsed_cycles, 1e-6);
  EXPECT_NEAR(kernel_ms, report.kernel_ms, 1e-6);
}

TEST(LaunchProfiler, OffByDefaultAndBitIdentical) {
  graph::Csr csr = RandomGraph(22);
  auto off = core::EtaGraph().Run(csr, core::Algo::kSssp, 0);
  auto on = ProfiledRun(csr, core::Algo::kSssp);
  EXPECT_TRUE(off.kernel_profiles.empty());
  // Host-side recording only: the simulated run must not notice.
  EXPECT_EQ(off.total_ms, on.total_ms);
  EXPECT_EQ(off.kernel_ms, on.kernel_ms);
  EXPECT_EQ(off.labels, on.labels);
  EXPECT_EQ(off.counters.elapsed_cycles, on.counters.elapsed_cycles);
  EXPECT_EQ(off.counters.warp_instructions, on.counters.warp_instructions);
}

TEST(LaunchProfiler, FailedLaunchesAppearWithFaultStatus) {
  graph::Csr csr = RandomGraph(23);
  core::EtaGraphOptions options;
  options.profile = true;
  options.faults.uecc_at = 2;  // second launch dies with an uncorrectable ECC
  auto report = core::EtaGraph(options).Run(csr, core::Algo::kBfs, 0);
  ASSERT_FALSE(report.oom);
  ASSERT_GE(report.kernel_profiles.size(), 2u);

  const sim::KernelProfile& failed = report.kernel_profiles[1];
  EXPECT_FALSE(failed.Ok());
  EXPECT_EQ(failed.status, sim::LaunchStatus::kEccUncorrectable);
  EXPECT_FALSE(failed.fault_buffer.empty());
  // An aborted launch executes no warps: its counter delta is all zero.
  EXPECT_EQ(failed.counters.warp_instructions, 0u);
  EXPECT_EQ(failed.counters.elapsed_cycles, 0);
  // Successful profiles still reconcile with the query totals (which count
  // only completed work).
  uint64_t ok_launches = 0;
  for (const sim::KernelProfile& p : report.kernel_profiles) ok_launches += p.Ok();
  EXPECT_EQ(ok_launches, report.query_counters.launches);
}

// --- Summary ------------------------------------------------------------------

TEST(KernelSummary, AggregatesByNameSortedByTotalTime) {
  graph::Csr csr = RandomGraph(24);
  auto report = ProfiledRun(csr, core::Algo::kBfs);
  auto rows = prof::SummarizeKernels(report.kernel_profiles);
  ASSERT_FALSE(rows.empty());

  uint64_t calls = 0;
  double total_ms = 0;
  double pct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    calls += rows[i].calls;
    total_ms += rows[i].total_ms;
    pct += rows[i].time_pct;
    EXPECT_LE(rows[i].min_ms, rows[i].avg_ms);
    EXPECT_LE(rows[i].avg_ms, rows[i].max_ms);
    if (i > 0) {
      EXPECT_GE(rows[i - 1].total_ms, rows[i].total_ms);
    }
  }
  EXPECT_EQ(calls, report.kernel_profiles.size());
  EXPECT_NEAR(total_ms, report.kernel_ms, 1e-6);
  EXPECT_NEAR(pct, 100.0, 1e-6);

  const std::string table = prof::RenderKernelSummary(report.kernel_profiles, "t");
  EXPECT_NE(table.find("Kernel"), std::string::npos);
  EXPECT_NE(table.find(rows[0].name), std::string::npos);
}

TEST(KernelSummary, EmptyInputRendersEmptyTable) {
  auto rows = prof::SummarizeKernels({});
  EXPECT_TRUE(rows.empty());
}

// --- Trace export -------------------------------------------------------------

std::vector<prof::TraceSpan> DeviceSpans(const core::RunReport& report) {
  std::vector<prof::TraceSpan> spans;
  prof::AppendTimelineSpans(report.timeline, "device", 0, &spans);
  prof::AppendKernelSpans(report.kernel_profiles, "device", 0, &spans);
  return spans;
}

TEST(TraceExport, RoundTripsThroughJsonParse) {
  graph::Csr csr = RandomGraph(25);
  auto report = ProfiledRun(csr, core::Algo::kBfs);
  auto spans = DeviceSpans(report);
  ASSERT_FALSE(spans.empty());

  const std::string json =
      prof::RenderChromeTrace(spans, {{"dataset", "rmat-test"}});
  std::string error;
  auto doc = util::JsonParse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->IsObject());

  const util::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  // Metadata events (process/thread names) + one X event per span.
  size_t x_events = 0;
  for (const util::JsonValue& e : events->array) {
    const util::JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      ++x_events;
      EXPECT_NE(e.Find("name"), nullptr);
      EXPECT_NE(e.Find("ts"), nullptr);
      EXPECT_NE(e.Find("dur"), nullptr);
      EXPECT_GE(e.Find("dur")->number, 0.0);
    } else {
      EXPECT_EQ(ph->string, "M");
    }
  }
  EXPECT_EQ(x_events, spans.size());

  const util::JsonValue* other = doc->Find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->Find("dataset"), nullptr);
  EXPECT_EQ(other->Find("dataset")->string, "rmat-test");
}

TEST(TraceExport, DeterministicAcrossIdenticalRuns) {
  graph::Csr csr = RandomGraph(26);
  auto a = ProfiledRun(csr, core::Algo::kSssp);
  auto b = ProfiledRun(csr, core::Algo::kSssp);
  EXPECT_EQ(prof::RenderChromeTrace(DeviceSpans(a)),
            prof::RenderChromeTrace(DeviceSpans(b)));
}

TEST(TraceExport, OffsetShiftsSpansOntoCallerClock) {
  graph::Csr csr = RandomGraph(27);
  auto report = ProfiledRun(csr, core::Algo::kBfs);
  std::vector<prof::TraceSpan> base;
  std::vector<prof::TraceSpan> shifted;
  prof::AppendKernelSpans(report.kernel_profiles, "device", 0, &base);
  prof::AppendKernelSpans(report.kernel_profiles, "device", 10.5, &shifted);
  ASSERT_EQ(base.size(), shifted.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(shifted[i].start_ms, base[i].start_ms + 10.5);
    EXPECT_DOUBLE_EQ(shifted[i].end_ms, base[i].end_ms + 10.5);
  }
}

TEST(TraceExport, EscapesSpanNames) {
  std::vector<prof::TraceSpan> spans;
  spans.push_back({"device/compute", "ker\"nel\n\\x", 0.0, 1.0, {}});
  const std::string json = prof::RenderChromeTrace(spans, {{"data\"set", "a\\b"}});
  std::string error;
  auto doc = util::JsonParse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const util::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const util::JsonValue& e : events->array) {
    const util::JsonValue* name = e.Find("name");
    if (name != nullptr && name->string == "ker\"nel\n\\x") found = true;
  }
  EXPECT_TRUE(found);
  ASSERT_NE(doc->Find("otherData"), nullptr);
  EXPECT_EQ(doc->Find("otherData")->Find("data\"set")->string, "a\\b");
}

// --- Serve-layer merge --------------------------------------------------------

TEST(TraceExport, ServeReplayMergesQueueBatcherAndDeviceSpans) {
  graph::Csr csr = RandomGraph(28);
  serve::ServeOptions options;
  options.mode = serve::ServeMode::kSessionBatched;
  options.graph.profile = true;

  serve::TraceOptions trace_options;
  trace_options.num_requests = 16;
  trace_options.seed = 5;
  auto trace = serve::GenerateTrace(csr.NumVertices(), trace_options);

  serve::ServeEngine engine(options);
  auto report = engine.Serve(csr, trace);
  ASSERT_FALSE(report.trace_spans.empty());

  bool has_serve = false;
  bool has_device_kernel = false;
  for (const prof::TraceSpan& s : report.trace_spans) {
    if (s.track.rfind("serve/", 0) == 0) has_serve = true;
    if (s.track == "device/kernels") has_device_kernel = true;
    EXPECT_GE(s.end_ms, s.start_ms);
    EXPECT_GE(s.start_ms, 0.0);
  }
  EXPECT_TRUE(has_serve);
  EXPECT_TRUE(has_device_kernel);

  const std::string json = prof::RenderChromeTrace(report.trace_spans);
  std::string error;
  EXPECT_TRUE(util::JsonParse(json, &error).has_value()) << error;

  // Profiling off: no spans are collected.
  serve::ServeOptions plain = options;
  plain.graph.profile = false;
  auto unprofiled = serve::ServeEngine(plain).Serve(csr, trace);
  EXPECT_TRUE(unprofiled.trace_spans.empty());
  // And the replay itself is unchanged (zero-cost contract at serve level).
  EXPECT_EQ(unprofiled.makespan_ms, report.makespan_ms);
  EXPECT_EQ(unprofiled.completed, report.completed);
}

// The exporter's snprintf-into-string helper retries past its 512-byte
// stack buffer: a span name longer than the buffer survives the rendered
// Chrome trace untruncated, and the document still parses.
TEST(ChromeTrace, LongSpanNameRendersUntruncated) {
  const std::string long_name(700, 'k');
  std::vector<prof::TraceSpan> spans;
  prof::TraceSpan s;
  s.track = "device/compute";
  s.name = long_name;
  s.start_ms = 0;
  s.end_ms = 1.5;
  spans.push_back(s);

  const std::string json = prof::RenderChromeTrace(spans);
  EXPECT_NE(json.find(long_name), std::string::npos);
  std::string error;
  auto doc = util::JsonParse(json, &error);
  EXPECT_TRUE(doc.has_value()) << error;
}

}  // namespace
}  // namespace eta
