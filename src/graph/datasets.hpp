// Dataset registry: scaled stand-ins for the paper's seven graphs.
//
// The paper evaluates on six real graphs (SNAP social networks, WebGraph
// crawls) and one PaRMAT R-MAT graph (Table II). The real downloads are
// unavailable offline and too large for a 1-core simulation budget, so each
// dataset here is a deterministic synthetic graph at ~1/30 linear scale
// whose *shape* matches what the paper reports and what the evaluation
// depends on:
//   - social graphs (Slashdot, LiveJournal, com-Orkut): R-MAT power-law
//     skew with the paper's average degrees;
//   - RMAT25: the paper's own PaRMAT parameters (a=0.45, b=0.22, c=0.22);
//   - web crawls (uk-2005, sk-2005, uk-2006): chained-community graphs that
//     hit the paper's LCC fractions and, critically, its BFS iteration
//     counts (200 / 57 / 4, Table IV) and uk-2006's ~1e-4 activated
//     fraction from the queried source.
// Simulated device memory (sim::DeviceSpec) is scaled by the same factor,
// so each O.O.M entry of Table III reproduces from allocation arithmetic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace eta::graph {

struct PaperStats {
  double vertices_m = 0;   // millions, as reported in Table II
  double edges_m = 0;      // millions
  double avg_degree = 0;
  double lcc_percent = 0;
  uint32_t bfs_iterations = 0;  // Table IV (0 = not reported)
};

struct DatasetInfo {
  std::string name;        // registry key, e.g. "livejournal"
  std::string paper_name;  // label used in the paper, e.g. "LiveJournal"
  std::string kind;        // "social" | "web" | "rmat"
  PaperStats paper;        // the original graph's stats for comparison
};

/// All seven datasets in Table II order.
const std::vector<DatasetInfo>& AllDatasets();

/// Looks up registry metadata; nullopt if the name is unknown.
std::optional<DatasetInfo> FindDataset(const std::string& name);

/// Builds the named stand-in. `scale` in (0, 1] shrinks edge/vertex counts
/// proportionally for smoke tests (default 1 = the calibrated benchmark
/// size). Weights are attached (deterministically derived) so the same Csr
/// serves BFS, SSSP and SSWP. Aborts on unknown name.
Csr BuildDataset(const std::string& name, double scale = 1.0);

/// Same, but caches the built graph as a Galois .gr file under `cache_dir`
/// so repeated bench invocations skip generation. The cache key includes
/// the scale.
Csr BuildDatasetCached(const std::string& name, const std::string& cache_dir,
                       double scale = 1.0);

/// The traversal source used by every experiment ("the first source node of
/// each dataset", Section VI-B) — vertex 0 for every stand-in; the
/// generators guarantee a non-trivial traversal from it.
inline constexpr VertexId kQuerySource = 0;

}  // namespace eta::graph
