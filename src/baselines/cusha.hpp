// CuSha baseline (Khorasani et al., HPDC'14) — edge-centric GPU framework
// built on G-Shards and Concatenated Windows (CW).
//
// Modeled fidelity:
//   - edges are preprocessed (host side, excluded from timing) into shards:
//     sorted by destination window, then by source — so the kernel's reads
//     of shard entries and its writes into the destination window are fully
//     coalesced, CuSha's core contribution;
//   - every iteration streams *all* shards (no frontier): per-edge work is
//     cheap but total work is |E| x iterations, which loses badly on
//     high-diameter graphs;
//   - source values are shard-local snapshots refreshed once per iteration
//     through the CW mapping (coalesced), giving level-synchronous
//     semantics;
//   - the shard representation costs ~6 words/edge of cudaMalloc memory
//     (2|E| topology words of Table I plus value snapshots, update slots
//     and the CW map), which is why CuSha is the first framework to go
//     out of memory in Table III (from RMAT25 and uk-2005 up).
#pragma once

#include "core/run_report.hpp"
#include "core/traversal.hpp"
#include "graph/csr.hpp"
#include "sim/spec.hpp"

namespace eta::baselines {

struct CushaOptions {
  /// Destination-window width in vertices (a shard's dst range must fit the
  /// block's shared memory).
  uint32_t window_vertices = 2048;
  sim::DeviceSpec spec{};
  uint32_t block_size = 256;
  uint32_t max_iterations = 100000;
};

class Cusha {
 public:
  explicit Cusha(CushaOptions options = {}) : options_(options) {}

  core::RunReport Run(const graph::Csr& csr, core::Algo algo,
                      graph::VertexId source) const;

  /// Host-side shard construction, exposed for tests: returns edge order
  /// (indices into the CSR edge sequence) sorted by (dst window, src).
  struct Shards {
    std::vector<graph::VertexId> src;
    std::vector<graph::VertexId> dst;
    std::vector<graph::Weight> weight;       // empty if unweighted
    std::vector<graph::EdgeId> shard_start;  // per-window offsets, size W+1
  };
  static Shards BuildShards(const graph::Csr& csr, uint32_t window_vertices);

 private:
  CushaOptions options_;
};

}  // namespace eta::baselines
