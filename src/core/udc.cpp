#include "core/udc.hpp"

#include <algorithm>
#include <map>

#include "graph/space_model.hpp"
#include "util/check.hpp"

namespace eta::core {

uint64_t ShadowCapacity(const graph::Csr& csr, uint32_t degree_limit) {
  return graph::CountShadowVertices(csr, degree_limit);
}

std::vector<ShadowVertex> TransformActiveSet(const graph::Csr& csr,
                                             std::span<const graph::VertexId> active_set,
                                             uint32_t degree_limit) {
  ETA_CHECK(degree_limit >= 1);
  std::vector<ShadowVertex> shadows;
  for (graph::VertexId v : active_set) {
    graph::EdgeId start = csr.RowStart(v);
    graph::EdgeId end = csr.RowEnd(v);
    for (graph::EdgeId s = start; s < end; s += degree_limit) {
      shadows.push_back({v, s, std::min<graph::EdgeId>(s + degree_limit, end)});
    }
  }
  return shadows;
}

bool ValidateShadows(const graph::Csr& csr,
                     std::span<const graph::VertexId> active_set,
                     std::span<const ShadowVertex> shadows, uint32_t degree_limit) {
  // Collect per-vertex edge-range coverage.
  std::map<graph::VertexId, std::vector<std::pair<graph::EdgeId, graph::EdgeId>>> cover;
  for (const ShadowVertex& s : shadows) {
    if (s.Degree() == 0 || s.Degree() > degree_limit) return false;
    if (s.start < csr.RowStart(s.id) || s.end > csr.RowEnd(s.id)) return false;
    cover[s.id].push_back({s.start, s.end});
  }
  for (graph::VertexId v : active_set) {
    auto it = cover.find(v);
    graph::EdgeId deg = csr.OutDegree(v);
    if (deg == 0) {
      if (it != cover.end()) return false;  // zero-degree vertices drop out
      continue;
    }
    if (it == cover.end()) return false;
    auto& ranges = it->second;
    std::sort(ranges.begin(), ranges.end());
    // Disjoint union covering exactly [RowStart, RowEnd).
    graph::EdgeId cursor = csr.RowStart(v);
    for (auto [s, e] : ranges) {
      if (s != cursor) return false;
      cursor = e;
    }
    if (cursor != csr.RowEnd(v)) return false;
    cover.erase(it);
  }
  return cover.empty();  // no shadows for inactive vertices
}

}  // namespace eta::core
