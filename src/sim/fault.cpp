#include "sim/fault.hpp"

#include <charconv>
#include <cstdlib>

namespace eta::sim {

namespace {

// Stream tags; stable so fault schedules survive refactors.
constexpr uint64_t kLaunchStream = 0xfa017;
constexpr uint64_t kAllocStream = 0xfa02a;
constexpr uint64_t kVictimStream = 0xfa03b;

bool ParseDouble(std::string_view v, double* out) {
  // std::from_chars<double> is spotty across libstdc++ versions; strtod on a
  // bounded copy is portable and the spec strings are tiny.
  char buf[64];
  if (v.empty() || v.size() >= sizeof(buf)) return false;
  v.copy(buf, v.size());
  buf[v.size()] = '\0';
  char* end = nullptr;
  double d = std::strtod(buf, &end);
  if (end != buf + v.size()) return false;
  *out = d;
  return true;
}

bool ParseU64(std::string_view v, uint64_t* out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && p == v.data() + v.size();
}

}  // namespace

const char* LaunchStatusName(LaunchStatus status) {
  switch (status) {
    case LaunchStatus::kOk: return "ok";
    case LaunchStatus::kEccUncorrectable: return "ecc-uncorrectable";
    case LaunchStatus::kKernelTimeout: return "kernel-timeout";
    case LaunchStatus::kDeviceLost: return "device-lost";
  }
  return "?";
}

std::optional<FaultConfig> FaultConfig::Parse(std::string_view spec, std::string* error) {
  FaultConfig config;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view item = spec.substr(pos, comma == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) *error = "expected key=value, got '" + std::string(item) + "'";
      return std::nullopt;
    }
    std::string_view key = item.substr(0, eq);
    std::string_view val = item.substr(eq + 1);
    bool ok = true;
    double rate = 0;
    if (key == "seed") {
      ok = ParseU64(val, &config.seed);
    } else if (key == "ecc") {
      ok = ParseDouble(val, &config.ecc_correctable_rate);
    } else if (key == "uecc") {
      ok = ParseDouble(val, &config.ecc_uncorrectable_rate);
    } else if (key == "hang") {
      ok = ParseDouble(val, &config.hang_rate);
    } else if (key == "lost") {
      ok = ParseDouble(val, &config.device_loss_rate);
    } else if (key == "alloc") {
      ok = ParseDouble(val, &config.alloc_fail_rate);
    } else if (key == "watchdog") {
      ok = ParseDouble(val, &config.watchdog_ms) && config.watchdog_ms > 0;
    } else if (key == "words") {
      uint64_t w = 0;
      ok = ParseU64(val, &w) && w > 0;
      config.corrupt_words = static_cast<uint32_t>(w);
    } else if (key == "ecc_at") {
      ok = ParseU64(val, &config.ecc_at);
    } else if (key == "uecc_at") {
      ok = ParseU64(val, &config.uecc_at);
    } else if (key == "hang_at") {
      ok = ParseU64(val, &config.hang_at);
    } else if (key == "lost_at") {
      ok = ParseU64(val, &config.lost_at);
    } else if (key == "alloc_at") {
      ok = ParseU64(val, &config.alloc_fail_at);
    } else {
      if (error != nullptr) *error = "unknown --faults key '" + std::string(key) + "'";
      return std::nullopt;
    }
    (void)rate;
    if (!ok) {
      if (error != nullptr) {
        *error = "bad value for --faults key '" + std::string(key) + "': '" +
                 std::string(val) + "'";
      }
      return std::nullopt;
    }
  }
  for (double r : {config.ecc_correctable_rate, config.ecc_uncorrectable_rate,
                   config.hang_rate, config.device_loss_rate, config.alloc_fail_rate}) {
    if (r < 0 || r > 1) {
      if (error != nullptr) *error = "--faults rates must be in [0,1]";
      return std::nullopt;
    }
  }
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config),
      launch_rng_(util::SplitMix64::Stream(config.seed, kLaunchStream)),
      alloc_rng_(util::SplitMix64::Stream(config.seed, kAllocStream)),
      victim_rng_(util::SplitMix64::Stream(config.seed, kVictimStream)) {}

LaunchFault FaultInjector::NextLaunch() {
  ++launches_;
  LaunchFault fault;
  // One draw per class per launch, always consumed, so the schedule of one
  // class never shifts when another class's rate changes.
  double d_ecc = launch_rng_.NextDouble();
  double d_uecc = launch_rng_.NextDouble();
  double d_hang = launch_rng_.NextDouble();
  double d_lost = launch_rng_.NextDouble();
  uint64_t v1 = victim_rng_.Next();
  uint64_t v2 = victim_rng_.Next();

  if (config_.ecc_at == launches_ || d_ecc < config_.ecc_correctable_rate) {
    fault.ecc_corrected = 1;
  }
  // Severity order: losing the device trumps a hang trumps a UECC abort.
  if (config_.lost_at == launches_ || d_lost < config_.device_loss_rate) {
    fault.status = LaunchStatus::kDeviceLost;
  } else if (config_.hang_at == launches_ || d_hang < config_.hang_rate) {
    fault.status = LaunchStatus::kKernelTimeout;
  } else if (config_.uecc_at == launches_ || d_uecc < config_.ecc_uncorrectable_rate) {
    fault.status = LaunchStatus::kEccUncorrectable;
    fault.victim_entropy = v1;
    fault.offset_entropy = v2;
  }
  return fault;
}

bool FaultInjector::NextAllocFails() {
  ++allocs_;
  double d = alloc_rng_.NextDouble();
  return config_.alloc_fail_at == allocs_ || d < config_.alloc_fail_rate;
}

}  // namespace eta::sim
