#include "serve/types.hpp"

namespace eta::serve {

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kTimedOut: return "timed-out";
    case QueryStatus::kDegraded: return "degraded";
  }
  return "?";
}

std::optional<QueryStatus> ParseQueryStatus(std::string_view name) {
  if (name == "ok") return QueryStatus::kOk;
  if (name == "rejected") return QueryStatus::kRejected;
  if (name == "timed-out") return QueryStatus::kTimedOut;
  if (name == "degraded") return QueryStatus::kDegraded;
  return std::nullopt;
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNaivePerQuery: return "naive";
    case ServeMode::kSession: return "session";
    case ServeMode::kSessionBatched: return "session+batch";
  }
  return "?";
}

}  // namespace eta::serve
