#!/usr/bin/env bash
# Tier-1 verification gate.
#
# Configures + builds the whole tree (the root CMakeLists applies
# -Wall -Wextra; the src/serve target additionally compiles with -Werror),
# refuses any compiler warning that mentions the serving layer, and then
# runs the full test suite. Usage:
#
#   scripts/check.sh [build-dir]
#   scripts/check.sh --sanitize [build-dir]
#   scripts/check.sh --faults [build-dir]
#   scripts/check.sh --profile [build-dir]
#
# --sanitize builds into a second build tree (default build-asan) with
# AddressSanitizer + UndefinedBehaviorSanitizer (-fno-sanitize-recover=all,
# so any report is fatal) and runs the full test suite under it. The
# simulated kernels execute against real host backing memory, which is
# exactly what makes host ASan meaningful here: a simulator indexing bug
# that slipped past etacheck would be a real heap-buffer-overflow.
#
# --faults builds normally and then exercises the fault model end to end
# (DESIGN.md section 8): the fault/recovery test binaries, a CLI fault
# matrix (every fault class through etagraph and etagraph_serve, with a
# replay-determinism diff), and the bench_fault_overhead zero-cost contract.
#
# --profile builds normally and then exercises etaprof end to end
# (DESIGN.md section 9): the prof/metrics test binaries, a profiled CLI run
# and a profiled 64-query serve replay (trace JSON round-trip validated,
# with python3 as a second parser when available), a byte-identity diff of
# two identically-seeded profiled runs (trace + Prometheus metrics), and
# the bench_profiler_overhead zero-cost contract.
set -euo pipefail

SANITIZE=0
FAULTS=0
PROFILE=0
if [[ "${1:-}" == "--sanitize" ]]; then
  SANITIZE=1
  shift
elif [[ "${1:-}" == "--faults" ]]; then
  FAULTS=1
  shift
elif [[ "${1:-}" == "--profile" ]]; then
  PROFILE=1
  shift
fi

if [[ "$SANITIZE" == "1" ]]; then
  BUILD_DIR="${1:-build-asan}"
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S .
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

cmake --build "$BUILD_DIR" -j "$(nproc)" 2>&1 | tee "$LOG"

# eta_serve builds with -Werror, so warnings there already fail the build;
# this catches anything that slips through (e.g. headers included elsewhere).
if grep -E "warning:" "$LOG" | grep -q "serve/"; then
  echo "check.sh: warnings in src/serve/ are not allowed:" >&2
  grep -E "warning:" "$LOG" | grep "serve/" >&2
  exit 1
fi

if [[ "$FAULTS" == "1" ]]; then
  # Fault-model gate: targeted test binaries first (fast, exact), then the
  # CLI matrix — one run per fault class per algorithm family, each of which
  # must recover (exit 0) or report the failure cleanly, never crash.
  "$BUILD_DIR/tests/fault_test"
  "$BUILD_DIR/tests/device_memory_test"

  echo "== CLI fault matrix =="
  for spec in "ecc=0.3" "uecc=0.05" "hang=0.05,watchdog=5" "alloc=0.1"; do
    for algo in bfs sssp sswp; do
      echo "-- etagraph --algo=$algo --faults=seed=3,$spec"
      "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo="$algo" \
        --framework=etagraph --faults="seed=3,$spec" --verify > /dev/null
    done
  done
  # Device loss at query 2 of a one-shot run is unrecoverable in-session:
  # the CLI must fail loudly (exit 1), not pretend it has an answer.
  if "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo=bfs \
      --framework=etagraph --faults=lost_at=2 > /dev/null; then
    echo "check.sh: etagraph ignored an injected device loss" >&2
    exit 1
  fi

  echo "== serve fault matrix + replay determinism =="
  REPLAY_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$REPLAY_DIR"' EXIT
  for spec in "ecc=0.3" "uecc=0.05" "hang=0.05,watchdog=5" "lost=0.01" "alloc=0.1" \
              "uecc=0.03,hang=0.02,lost=0.002,alloc=0.05,watchdog=5"; do
    safe="${spec//[^a-zA-Z0-9]/_}"
    for i in 1 2; do
      "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=32 \
        --faults="seed=3,$spec" --replay-out="$REPLAY_DIR/$safe.$i.txt" > /dev/null
    done
    if ! diff -u "$REPLAY_DIR/$safe.1.txt" "$REPLAY_DIR/$safe.2.txt"; then
      echo "check.sh: replay diverged for --faults=$spec" >&2
      exit 1
    fi
    echo "-- $spec: replays identical"
  done

  echo "== zero-cost contract =="
  "$BUILD_DIR/bench/bench_fault_overhead" --datasets=rmat --scale=0.25
  exit 0
fi

if [[ "$PROFILE" == "1" ]]; then
  # etaprof gate: targeted test binaries first (exact), then end-to-end runs
  # through both tools with every emitter validated and diffed.
  "$BUILD_DIR/tests/prof_test"
  "$BUILD_DIR/tests/metrics_test"

  PROF_DIR="$(mktemp -d)"
  trap 'rm -f "$LOG"; rm -rf "$PROF_DIR"' EXIT

  validate_json() {
    # Our own strict parser already validated the document before it was
    # written; re-check with an independent parser when one is around.
    if command -v python3 > /dev/null; then
      python3 -m json.tool "$1" > /dev/null
    fi
    [[ -s "$1" ]]
  }

  echo "== profiled CLI run =="
  for i in 1 2; do
    # Drop the lines that echo the (per-run) output paths before diffing.
    "$BUILD_DIR/src/etagraph_cli" --dataset=rmat --scale=0.1 --algo=bfs \
      --profile --trace-json="$PROF_DIR/cli.$i.json" |
      grep -v "$PROF_DIR" > "$PROF_DIR/cli.$i.txt"
  done
  validate_json "$PROF_DIR/cli.1.json"
  grep -q "etaprof kernel summary" "$PROF_DIR/cli.1.txt"
  if ! diff -u "$PROF_DIR/cli.1.json" "$PROF_DIR/cli.2.json" ||
     ! diff -u "$PROF_DIR/cli.1.txt" "$PROF_DIR/cli.2.txt"; then
    echo "check.sh: profiled CLI runs diverged" >&2
    exit 1
  fi
  echo "-- trace valid, summaries identical"

  echo "== profiled 64-query serve replay =="
  for i in 1 2; do
    "$BUILD_DIR/src/etagraph_serve" --dataset=rmat --scale=0.1 --requests=64 \
      --profile --trace-json="$PROF_DIR/serve.$i.json" \
      --metrics-out="$PROF_DIR/serve.$i.prom" |
      grep -v "$PROF_DIR" > "$PROF_DIR/serve.$i.txt"
  done
  validate_json "$PROF_DIR/serve.1.json"
  grep -q "^serve_queue_wait_ms_bucket" "$PROF_DIR/serve.1.prom"
  grep -q "^serve_service_ms_bucket" "$PROF_DIR/serve.1.prom"
  grep -q "^serve_cost_error_ms" "$PROF_DIR/serve.1.prom"
  if ! diff -u "$PROF_DIR/serve.1.json" "$PROF_DIR/serve.2.json" ||
     ! diff -u "$PROF_DIR/serve.1.prom" "$PROF_DIR/serve.2.prom" ||
     ! diff -u "$PROF_DIR/serve.1.txt" "$PROF_DIR/serve.2.txt"; then
    echo "check.sh: profiled serve replays diverged" >&2
    exit 1
  fi
  echo "-- trace + metrics valid, replays identical"

  echo "== zero-cost contract =="
  "$BUILD_DIR/bench/bench_profiler_overhead" --datasets=rmat --scale=0.25
  exit 0
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
