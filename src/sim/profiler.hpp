// Profiler counters — the simulator's equivalent of nvprof metrics.
//
// Fig 7 of the paper reports IPC, Unified (L1+texture) cache hit rate, L2
// hit rate, read throughputs at L2/Unified/global, and global memory read
// transactions, measured with nvprof. The counters here are defined the
// same way so bench_fig7_smp_counters can print the same ratios.
#pragma once

#include <cstdint>
#include <string>

namespace eta::sim {

struct Counters {
  // Issue.
  uint64_t warp_instructions = 0;    // warp-level issued instructions
  uint64_t thread_instructions = 0;  // warp instr weighted by active lanes

  // Unified (L1) cache, per-sector accesses.
  uint64_t l1_accesses = 0;
  uint64_t l1_hits = 0;

  // L2 cache.
  uint64_t l2_accesses = 0;
  uint64_t l2_hits = 0;

  // Device memory (32B transactions).
  uint64_t dram_read_transactions = 0;
  uint64_t dram_write_transactions = 0;

  // Shared memory.
  uint64_t shared_accesses = 0;

  // Atomics (L2-resident).
  uint64_t atomic_operations = 0;

  // Latency accounting: per-warp serialized memory latency, summed across
  // warps (the latency-bound term of the roofline).
  uint64_t mem_latency_cycles = 0;

  // Elapsed simulated cycles attributed to kernels (sum over launches).
  double elapsed_cycles = 0;

  uint64_t launches = 0;

  Counters& operator+=(const Counters& other);

  // --- Derived metrics (nvprof names in comments) -------------------------
  double Ipc() const;                 // "ipc" (per-SM), needs num_sms
  double IpcPerSm(uint32_t num_sms) const;
  double L1HitRate() const;           // "tex_cache_hit_rate" / unified hit
  double L2HitRate() const;           // "l2_l1_read_hit_rate"
  uint64_t L1Bytes() const { return l1_accesses * 32; }
  uint64_t L2Bytes() const { return l2_accesses * 32; }
  uint64_t DramReadBytes() const { return dram_read_transactions * 32; }

  /// Read throughput in bytes/cycle at each level (proportional to
  /// nvprof's GB/s throughputs for a fixed clock).
  double L1Throughput() const;
  double L2Throughput() const;
  double DramThroughput() const;

  /// Warp execution efficiency ("warp_execution_efficiency" in nvprof):
  /// mean fraction of lanes active per issued warp instruction. The direct
  /// measure of the SIMT load imbalance that UDC attacks.
  double WarpEfficiency() const;

  std::string Summary() const;
};

}  // namespace eta::sim
