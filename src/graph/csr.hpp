// Compressed Sparse Row graph representation — the storage format the
// paper's EtaGraph consumes directly (Section II-B, Table I): a row-offset
// array of |V|+1 words and a column-index array of |E| words, plus an
// optional parallel weight array for SSSP/SSWP.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace eta::graph {

class Csr {
 public:
  Csr() = default;

  /// Takes ownership of prebuilt arrays. row_offsets must have size n+1,
  /// be non-decreasing, start at 0 and end at col_indices.size().
  Csr(std::vector<EdgeId> row_offsets, std::vector<VertexId> col_indices);

  VertexId NumVertices() const { return static_cast<VertexId>(row_offsets_.size() - 1); }
  EdgeId NumEdges() const { return static_cast<EdgeId>(col_indices_.size()); }

  EdgeId OutDegree(VertexId v) const {
    ETA_DCHECK(v < NumVertices());
    return row_offsets_[v + 1] - row_offsets_[v];
  }

  EdgeId RowStart(VertexId v) const { return row_offsets_[v]; }
  EdgeId RowEnd(VertexId v) const { return row_offsets_[v + 1]; }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {col_indices_.data() + row_offsets_[v], OutDegree(v)};
  }

  std::span<const EdgeId> RowOffsets() const { return row_offsets_; }
  std::span<const VertexId> ColIndices() const { return col_indices_; }

  bool HasWeights() const { return !weights_.empty(); }
  std::span<const Weight> Weights() const { return weights_; }

  /// Attaches a weight array (size |E|). Replaces any existing weights.
  void SetWeights(std::vector<Weight> weights);

  /// Derives deterministic per-edge weights in [1, max_weight] from a hash
  /// of (src, dst, seed), so every framework and the CPU reference see the
  /// same weights without any shared state.
  void DeriveWeights(uint64_t seed, Weight max_weight = 63);

  /// Device-visible topology bytes: 4(|E| + |V| + 1), i.e. Table I's CSR row.
  uint64_t TopologyBytes() const {
    return static_cast<uint64_t>(row_offsets_.size() + col_indices_.size()) * 4;
  }

  /// Validates structural invariants (monotone offsets, in-range targets).
  /// Returns false and logs the first violation if broken.
  bool Validate() const;

  /// Builds the reverse graph (CSC of this graph expressed as a CSR).
  Csr Transpose() const;

 private:
  std::vector<EdgeId> row_offsets_{0};
  std::vector<VertexId> col_indices_;
  std::vector<Weight> weights_;
};

}  // namespace eta::graph
