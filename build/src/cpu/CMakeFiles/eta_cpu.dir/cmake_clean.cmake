file(REMOVE_RECURSE
  "CMakeFiles/eta_cpu.dir/reference.cpp.o"
  "CMakeFiles/eta_cpu.dir/reference.cpp.o.d"
  "libeta_cpu.a"
  "libeta_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
