// Fig 6 reproduction: normalized total runtimes of the EtaGraph setups —
// full EtaGraph vs 'w/o SMP' (shared-memory prefetch disabled) vs 'w/o UM'
// (cudaMalloc + cudaMemcpy) — per dataset. Paper shapes: w/o SMP costs
// 1.11-2.14x on the compute-bound datasets, w/o UM costs 1.02-1.26x and
// cannot run uk-2006 at all.
#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  std::vector<std::string> all;
  for (const auto& info : graph::AllDatasets()) all.push_back(info.name);
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, all);
  std::string algo_name = env.cl.GetString("algo", "sssp");
  core::Algo algo = algo_name == "bfs"    ? core::Algo::kBfs
                    : algo_name == "sswp" ? core::Algo::kSswp
                                          : core::Algo::kSssp;

  util::Table table({"Dataset", "EtaGraph (ms)", "w/o SMP", "w/o UM", "w/o UMP"});
  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    auto run = [&](bool smp, core::MemoryMode mode) {
      core::EtaGraphOptions options;
      options.use_smp = smp;
      options.memory_mode = mode;
      return core::EtaGraph(options).Run(csr, algo, graph::kQuerySource);
    };
    auto base = run(true, core::MemoryMode::kUnifiedPrefetch);
    auto no_smp = run(false, core::MemoryMode::kUnifiedPrefetch);
    auto no_um = run(true, core::MemoryMode::kExplicitCopy);
    auto no_ump = run(true, core::MemoryMode::kUnifiedOnDemand);
    auto norm = [&](const core::RunReport& r) {
      return r.oom ? std::string("O.O.M")
                   : util::FormatDouble(r.total_ms / base.total_ms, 2) + "x";
    };
    table.AddRow({graph::FindDataset(name)->paper_name,
                  util::FormatDouble(base.total_ms, 2), norm(no_smp), norm(no_um),
                  norm(no_ump)});
  }
  std::printf("%s\n", table.Render("Fig 6 - normalized runtimes of EtaGraph setups (" +
                                   std::string(core::AlgoName(algo)) +
                                   "); paper: w/o SMP 1.11-2.14x, w/o UM 1.02-1.26x "
                                   "and O.O.M on uk-2006")
                          .c_str());
  return 0;
}
