// Fault-injection zero-cost contract bench: with injection disabled the
// fault hooks must be invisible — every simulated counter, timestamp, and
// label of a run with no injector attached must be bit-identical to a run
// before the fault machinery existed. This bench goes one step further and
// also verifies the *armed-but-silent* case: an injector attached with a
// scripted fault that never fires (ecc_at far beyond the launch count) must
// still reproduce the plain run bit-for-bit, because fault decisions are
// drawn before any cost is charged and a kOk decision charges nothing.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "sim/fault.hpp"

using namespace eta;

namespace {

template <typename F>
double WallMs(F&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool Identical(const core::RunReport& a, const core::RunReport& b) {
  return a.total_ms == b.total_ms && a.kernel_ms == b.kernel_ms &&
         a.query_ms == b.query_ms && a.iterations == b.iterations &&
         a.activated == b.activated && a.labels == b.labels &&
         a.migrated_bytes == b.migrated_bytes &&
         a.device_bytes_peak == b.device_bytes_peak &&
         a.counters.warp_instructions == b.counters.warp_instructions &&
         a.counters.thread_instructions == b.counters.thread_instructions &&
         a.counters.l1_accesses == b.counters.l1_accesses &&
         a.counters.l2_accesses == b.counters.l2_accesses &&
         a.counters.dram_read_transactions == b.counters.dram_read_transactions &&
         a.counters.dram_write_transactions == b.counters.dram_write_transactions &&
         a.counters.atomic_operations == b.counters.atomic_operations &&
         a.counters.elapsed_cycles == b.counters.elapsed_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"slashdot", "rmat"});
  std::string algo_name = env.cl.GetString("algo", "sssp");
  core::Algo algo = algo_name == "bfs"    ? core::Algo::kBfs
                    : algo_name == "sswp" ? core::Algo::kSswp
                                          : core::Algo::kSssp;

  util::Table table({"Dataset", "Sim total (ms)", "Identical?", "Wall off (ms)",
                     "Wall armed (ms)", "Host overhead"});
  bool all_identical = true;
  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);

    core::EtaGraphOptions plain;
    core::EtaGraphOptions armed = plain;
    // Enabled() holds (the injector attaches and draws per launch), but the
    // scripted decision index is unreachable, so no fault ever fires.
    armed.faults.ecc_at = 1000000000;

    core::RunReport off;
    core::RunReport on;
    double wall_off = WallMs([&] {
      off = core::EtaGraph(plain).Run(csr, algo, graph::kQuerySource);
    });
    double wall_on = WallMs([&] {
      on = core::EtaGraph(armed).Run(csr, algo, graph::kQuerySource);
    });

    bool identical = Identical(off, on) && on.faults.launch_failures == 0 &&
                     on.faults.ecc_corrected == 0 && !on.faults.Failed();
    all_identical = all_identical && identical;

    table.AddRow({graph::FindDataset(name)->paper_name,
                  util::FormatDouble(on.total_ms, 2), identical ? "yes" : "NO",
                  util::FormatDouble(wall_off, 1), util::FormatDouble(wall_on, 1),
                  util::FormatDouble(wall_on / std::max(wall_off, 1e-9), 2) + "x"});
  }
  std::printf("%s\n",
              table.Render("fault-injection overhead (" +
                           std::string(core::AlgoName(algo)) +
                           "); contract: an armed-but-silent injector leaves every "
                           "simulated counter bit-identical")
                  .c_str());
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: armed run diverged from plain run\n");
    return 1;
  }
  return 0;
}
