#include "trace/alerts.hpp"

#include <algorithm>
#include <cstdlib>

namespace eta::trace {
namespace {

/// Bad fraction over the trailing window (t - window, t], divided by the
/// error budget. Two-pointer scan: `begin` is advanced by the caller.
double BurnAt(const std::vector<AlertSample>& samples, size_t begin, size_t end_inclusive,
              double budget) {
  uint64_t n = 0, bad = 0;
  for (size_t i = begin; i <= end_inclusive; ++i) {
    ++n;
    if (!samples[i].good) ++bad;
  }
  if (n == 0) return 0;
  const double bad_fraction = static_cast<double>(bad) / static_cast<double>(n);
  return budget <= 0 ? (bad_fraction > 0 ? 1e9 : 0) : bad_fraction / budget;
}

size_t WindowBegin(const std::vector<AlertSample>& samples, size_t begin, size_t at,
                   double window_ms) {
  const double cutoff = samples[at].at_ms - window_ms;
  while (begin < at && samples[begin].at_ms <= cutoff) ++begin;
  return begin;
}

}  // namespace

AlertSeries EvaluateBurnRate(const std::string& name, const std::vector<AlertSample>& samples,
                             const AlertOptions& options) {
  AlertSeries out;
  out.name = name;
  out.samples = samples.size();
  const double budget = 1.0 - options.objective;
  bool firing = false;
  size_t fast_begin = 0, slow_begin = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (!samples[i].good) ++out.bad;
    fast_begin = WindowBegin(samples, fast_begin, i, options.fast_window_ms);
    slow_begin = WindowBegin(samples, slow_begin, i, options.slow_window_ms);
    const double fast = BurnAt(samples, fast_begin, i, budget);
    const double slow = BurnAt(samples, slow_begin, i, budget);
    out.max_fast_burn = std::max(out.max_fast_burn, fast);
    const bool should_fire = fast >= options.burn_threshold && slow >= options.burn_threshold;
    if (should_fire != firing) {
      firing = should_fire;
      if (firing) ++out.fired;
      out.transitions.push_back({samples[i].at_ms, firing, fast, slow});
    }
  }
  out.firing_at_end = firing;
  return out;
}

bool ParseAlertSpec(const std::string& spec, AlertOptions* options, std::string* error) {
  options->enabled = true;
  if (spec.empty()) return true;
  double* fields[] = {&options->objective, &options->fast_window_ms, &options->slow_window_ms,
                      &options->burn_threshold};
  size_t field = 0, pos = 0;
  while (pos <= spec.size()) {
    if (field >= 4) {
      *error = "too many fields (want objective[,fast_ms[,slow_ms[,burn]]])";
      return false;
    }
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end == nullptr || *end != '\0') {
      *error = "bad number '" + token + "'";
      return false;
    }
    *fields[field++] = value;
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  if (options->objective <= 0 || options->objective >= 1) {
    *error = "objective must be in (0,1)";
    return false;
  }
  if (options->fast_window_ms <= 0 || options->slow_window_ms <= 0 ||
      options->fast_window_ms > options->slow_window_ms) {
    *error = "windows must satisfy 0 < fast <= slow";
    return false;
  }
  if (options->burn_threshold <= 0) {
    *error = "burn threshold must be positive";
    return false;
  }
  return true;
}

}  // namespace eta::trace
