// The simulated GPU device: allocation, host<->device transfer, kernel
// launch, and the WarpCtx SIMT execution API kernels are written against.
//
// Execution model
// ---------------
// A launch is a grid of `num_threads` threads in `block_size`-thread
// blocks; blocks map round-robin onto SMs. The engine invokes the kernel
// functor once per 32-thread warp. Kernels are written *warp-wide*: they
// operate on lane arrays and issue memory operations for a whole warp at
// once, which is exactly what lets the simulator model coalescing, cache
// behaviour, divergence and latency per warp instruction. Functionally the
// kernel reads and writes real host backing memory, so results are exact;
// architecturally every access is routed through the coalescer, the per-SM
// L1, the shared L2, DRAM, and (for managed buffers) the unified-memory
// page machinery, so costs and counters are faithful to the mechanism.
//
// Timing is a deterministic roofline over the launch's aggregate demands:
//   cycles = max(issue, latency/(SMs x hiding warps), L2 bw, DRAM bw)
// which preserves the *relative* effects the paper measures (load balance,
// coalescing, cache hit rates, transfer overlap) without pretending to be
// cycle-exact. See DESIGN.md section 1.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/fault.hpp"
#include "sim/memory.hpp"
#include "sim/observer.hpp"
#include "sim/profiler.hpp"
#include "sim/spec.hpp"
#include "sim/timeline.hpp"
#include "sim/unified_memory.hpp"
#include "util/check.hpp"

namespace eta::sim {

inline constexpr uint32_t kWarpSize = 32;
inline constexpr uint32_t kFullMask = 0xffffffffu;

/// Per-lane value block, the register file of a warp-wide operation.
template <typename T>
using LaneArray = std::array<T, kWarpSize>;

struct LaunchConfig {
  uint64_t num_threads = 0;
  uint32_t block_size = 256;
};

struct LaunchResult {
  double start_ms = 0;
  double end_ms = 0;
  /// Pure kernel-execution time (roofline), excluding fault transfers.
  double compute_ms = 0;
  /// Wall time including unified-memory fault servicing and prefetch
  /// arrival stalls.
  double wall_ms = 0;
  Counters counters;            // this launch only
  uint64_t migrated_bytes = 0;  // UM pages pulled in by this launch
  uint32_t fault_ops = 0;
  /// Terminal status. Anything but kOk means no warp executed: the launch
  /// aborted at the boundary (callers must check before trusting outputs).
  LaunchStatus status = LaunchStatus::kOk;
  /// Correctable ECC events scrubbed during this launch (logged only).
  uint32_t ecc_corrected = 0;
  /// UECC victim allocation name (empty unless status == kEccUncorrectable).
  std::string fault_buffer;

  bool Ok() const { return status == LaunchStatus::kOk; }
};

class Device;

/// Execution context handed to the kernel functor, one warp at a time.
/// All memory operations take a lane mask (bit i = lane i participates).
class WarpCtx {
 public:
  WarpCtx(Device& device, uint64_t warp_id, uint32_t sm, const LaunchConfig& config)
      : device_(device), warp_id_(warp_id), sm_(sm), config_(config) {}

  uint64_t WarpId() const { return warp_id_; }
  uint64_t GlobalThread(uint32_t lane) const { return warp_id_ * kWarpSize + lane; }

  /// Lanes whose global thread index is within the launch bound.
  uint32_t ActiveMask() const {
    uint64_t first = warp_id_ * kWarpSize;
    if (first + kWarpSize <= config_.num_threads) return kFullMask;
    if (first >= config_.num_threads) return 0;
    return kFullMask >> (kWarpSize - static_cast<uint32_t>(config_.num_threads - first));
  }

  /// Charges `instructions` warp-level ALU/control instructions.
  void ChargeAlu(uint32_t instructions, uint32_t mask);

  /// Charges shared-memory traffic: `ops` warp accesses over `mask` lanes.
  /// (Functional data stays in the kernel's own arrays; the scratchpad is a
  /// cost model, not a second storage.)
  void ChargeShared(uint32_t ops, uint32_t mask);

  /// Warp gather: lane i loads element idx[i] of `buf`. One load
  /// instruction; coalesced into unique 32B sectors; each sector probes
  /// L1 -> L2 -> DRAM. Serial-dependence latency: the warp pays the worst
  /// lane's level once per gather (issue-and-wait pattern).
  template <typename T>
  void Gather(const Buffer<T>& buf, const LaneArray<uint64_t>& idx, uint32_t mask,
              LaneArray<T>& out);

  /// Contiguous warp load: lane i loads element base + i. The common
  /// fully-coalesced pattern (frontier arrays, offset arrays).
  template <typename T>
  void GatherContiguous(const Buffer<T>& buf, uint64_t base, uint32_t mask,
                        LaneArray<T>& out);

  /// SMP-style bulk gather: lane i loads elements [start[i], start[i] +
  /// count[i]) into out[i * stride ..]. Issued as `max(count)` unrolled
  /// load instructions whose misses pipeline: the warp pays one full
  /// worst-level latency plus a per-sector streaming interval, modelling
  /// the instruction-level parallelism the paper's shared-memory prefetch
  /// unlocks (Section V-B). Also charges the shared-memory stores.
  template <typename T>
  void GatherBulk(const Buffer<T>& buf, const LaneArray<uint64_t>& start,
                  const LaneArray<uint32_t>& count, uint32_t mask, T* out,
                  uint32_t stride);

  /// Warp scatter store: lane i writes val[i] to element idx[i].
  /// Write-through: L2 allocate, DRAM write on L2 miss; stores do not stall
  /// the warp.
  template <typename T>
  void Scatter(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
               const LaneArray<T>& val, uint32_t mask);

  /// Scatter declared race-tolerant — the CUDA `st.relaxed` / volatile-store
  /// idiom for single-writer protocols where concurrent readers are part of
  /// the design (e.g. pull-phase level claiming in hybrid BFS). Identical
  /// cost and functional behaviour to Scatter; racecheck treats it like an
  /// atomic instead of a hazard, while memcheck still bounds-checks it.
  template <typename T>
  void ScatterRelaxed(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                      const LaneArray<T>& val, uint32_t mask);

  /// Block-level barrier (__syncthreads). `arrive_mask` is the lane mask the
  /// warp arrives with; arriving under a mask narrower than ActiveMask()
  /// is the classic divergent-barrier hang that synccheck flags. Charges one
  /// warp instruction.
  void Barrier(uint32_t arrive_mask);

  /// Warp atomic min: old values returned. Lanes targeting the same
  /// element serialize.
  template <typename T>
  void AtomicMin(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                 const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old);

  /// Warp atomic max (SSWP uses max of min-so-far widths).
  template <typename T>
  void AtomicMax(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                 const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old);

  /// Warp atomic add; used for frontier-append cursors.
  template <typename T>
  void AtomicAdd(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                 const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old);

  /// Warp atomic or; used for per-source reach-mask accumulation in
  /// attributed multi-source traversals.
  template <typename T>
  void AtomicOr(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old);

  /// Convenience: iterate set bits of mask.
  template <typename F>
  static void ForActive(uint32_t mask, F&& fn) {
    while (mask) {
      uint32_t lane = static_cast<uint32_t>(std::countr_zero(mask));
      fn(lane);
      mask &= mask - 1;
    }
  }

  static uint32_t PopCount(uint32_t mask) { return static_cast<uint32_t>(std::popcount(mask)); }

 private:
  // Cost accounting helpers (defined after Device below).
  void AccumGatherCost(uint32_t mask, uint32_t sectors, uint32_t worst_latency);
  void AccumBulkCost(uint32_t mask, uint32_t sectors, uint32_t worst_latency,
                     uint32_t unrolled_loads);
  void AccumStoreCost(uint32_t mask);
  void AccumAtomicCost(uint32_t mask, uint32_t max_multiplicity);

  template <typename T, typename Op>
  void AtomicOp(Buffer<T>& buf, const LaneArray<uint64_t>& idx, const LaneArray<T>& val,
                uint32_t mask, LaneArray<T>& old, Op op);

  template <typename T>
  void ScatterImpl(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                   const LaneArray<T>& val, uint32_t mask, AccessKind kind);

  /// The checked device-side indexing path every warp memory op goes
  /// through. Reports each lane's access to the attached observer (with the
  /// raw, unclamped index so the sanitizer sees out-of-bounds attempts),
  /// keeps the DCHECK for unchecked debug builds, and clamps into bounds so
  /// a release build can never corrupt host memory on a buggy index —
  /// `safe` is what the functional load/store must use.
  template <typename T>
  void CheckedAddrs(const Buffer<T>& buf, const LaneArray<uint64_t>& idx, uint32_t mask,
                    AccessKind kind, LaneArray<uint64_t>& safe,
                    LaneArray<uint64_t>& addrs) const;

  Device& device_;
  uint64_t warp_id_;
  uint32_t sm_;
  LaunchConfig config_;
};

class Device {
 public:
  explicit Device(DeviceSpec spec = {});

  const DeviceSpec& Spec() const { return spec_; }

  // --- Allocation ---------------------------------------------------------
  template <typename T>
  Buffer<T> Alloc(uint64_t count, MemKind kind, const std::string& name) {
    if (fault_ != nullptr && (lost_ || fault_->NextAllocFails())) {
      // Injected allocation failure (or allocation on a lost device)
      // surfaces exactly like real memory pressure.
      throw OomError(count * sizeof(T), mem_.DeviceBytesUsed(), mem_.CapacityBytes());
    }
    RawBuffer raw = mem_.Allocate(count * sizeof(T), kind, name);
    if (kind == MemKind::kUnified) um_.Register(raw.base_addr, raw.bytes);
    UpdateUmBudget();
    if (observer_ != nullptr) observer_->OnAlloc(raw, name);
    return Buffer<T>{raw, count};
  }

  template <typename T>
  void Free(Buffer<T>& buffer) {
    if (!buffer.Valid()) return;
    if (observer_ != nullptr) observer_->OnFree(buffer.raw);
    if (buffer.raw.kind == MemKind::kUnified) um_.Unregister(buffer.raw.base_addr);
    mem_.Free(buffer.raw);
    UpdateUmBudget();
    buffer = Buffer<T>{};
  }

  // --- Host <-> device transfers -------------------------------------------
  /// Synchronous cudaMemcpy H2D. `pageable` selects the slower staging path
  /// (the default for frameworks that do not pin their host graphs).
  template <typename T>
  void CopyToDevice(Buffer<T>& buffer, std::span<const T> src, bool pageable = true) {
    ETA_CHECK(buffer.raw.kind == MemKind::kDevice);
    ETA_CHECK(src.size() <= buffer.count);
    std::memcpy(buffer.raw.data, src.data(), src.size_bytes());
    RecordTransfer(src.size_bytes(), pageable, SpanKind::kTransferH2D, "h2d");
    if (observer_ != nullptr) observer_->OnHostWrite(buffer.raw, 0, src.size_bytes());
  }

  /// H2D copy into a sub-range of the buffer (cudaMemcpy with an offset
  /// destination pointer) — used for single-element setup writes.
  template <typename T>
  void CopyToDeviceRange(Buffer<T>& buffer, uint64_t offset, std::span<const T> src,
                         bool pageable = true) {
    ETA_CHECK(buffer.raw.kind == MemKind::kDevice);
    ETA_CHECK(offset + src.size() <= buffer.count);
    std::memcpy(buffer.raw.data + offset * sizeof(T), src.data(), src.size_bytes());
    RecordTransfer(src.size_bytes(), pageable, SpanKind::kTransferH2D, "h2d");
    if (observer_ != nullptr) {
      observer_->OnHostWrite(buffer.raw, offset * sizeof(T), src.size_bytes());
    }
  }

  template <typename T>
  void CopyToHost(std::span<T> dst, const Buffer<T>& buffer, bool pageable = true) {
    ETA_CHECK(dst.size() <= buffer.count);
    std::memcpy(dst.data(), buffer.raw.data, dst.size_bytes());
    RecordTransfer(dst.size_bytes(), pageable, SpanKind::kTransferD2H, "d2h");
  }

  /// cudaMemPrefetchAsync for a managed buffer: schedules the transfer and
  /// returns immediately; kernels stall on pages that have not landed.
  template <typename T>
  double PrefetchAsync(const Buffer<T>& buffer) {
    ETA_CHECK(buffer.raw.kind == MemKind::kUnified);
    // Back-to-back prefetches share one PCIe link: they queue.
    double start = std::max(now_ms_, pending_transfer_end_);
    double end = um_.PrefetchToDevice(buffer.raw.base_addr, start);
    if (end > start) {
      timeline_.Add(SpanKind::kTransferH2D, start, end, "prefetch");
    }
    pending_transfer_end_ = std::max(pending_transfer_end_, end);
    return end;
  }

  /// cudaDeviceSynchronize: waits out any in-flight prefetch.
  void Synchronize() { now_ms_ = std::max(now_ms_, pending_transfer_end_); }

  /// Declares the buffer's contents host-initialized without charging a
  /// transfer: call sites that stage data straight into HostSpan() (unified
  /// memory, chunked streaming) or that rely on the allocator's zero-fill
  /// use this to tell an attached sanitizer the bytes are defined. Free when
  /// no observer is attached; never moves the simulated clock.
  template <typename T>
  void MarkHostInitialized(const Buffer<T>& buffer) {
    if (observer_ != nullptr) {
      observer_->OnHostWrite(buffer.raw, 0, buffer.count * sizeof(T));
    }
  }

  /// Charges a host->device transfer without moving bytes — used by
  /// frameworks that manage their own staging (e.g. GTS-style chunked
  /// streaming) where the functional data already lives in host-backed
  /// storage and only the cost is modeled.
  /// `overlap` in [0,1): that fraction of the transfer hides behind
  /// subsequent kernels (multi-stream pipelining); the timeline records the
  /// full span, but the clock only advances by the exposed part.
  void ChargeHostToDevice(uint64_t bytes, bool pageable, const std::string& label,
                          double overlap = 0.0) {
    double dur = spec_.memcpy_latency_us / 1000.0 + spec_.PcieMsForBytes(bytes, pageable);
    timeline_.Add(SpanKind::kTransferH2D, now_ms_, now_ms_ + dur, label);
    now_ms_ += dur * (1.0 - overlap);
  }

  /// Advances the simulated clock by `ms` with no device activity — how
  /// recovery layers charge retry backoff to simulated time. Recorded as a
  /// kStall span so the timeline shows where a fault run lost its wall time.
  void ChargeDelay(double ms, const std::string& label) {
    if (ms <= 0) return;
    timeline_.Add(SpanKind::kStall, now_ms_, now_ms_ + ms, label);
    now_ms_ += ms;
  }

  // --- Kernel launch --------------------------------------------------------
  template <typename F>
  LaunchResult Launch(const std::string& label, const LaunchConfig& config, F&& kernel) {
    if (fault_ != nullptr) {
      LaunchFault fate = DecideLaunchFault();
      if (fate.status != LaunchStatus::kOk) return FailLaunch(label, config, fate);
      pending_ecc_corrected_ = fate.ecc_corrected;
    }
    BeginLaunch();
    if (observer_ != nullptr) observer_->OnLaunchBegin(label, config);
    const uint32_t warps_per_block = std::max(1u, config.block_size / kWarpSize);
    const uint64_t num_warps =
        (config.num_threads + kWarpSize - 1) / kWarpSize;
    for (uint64_t w = 0; w < num_warps; ++w) {
      uint64_t block = w / warps_per_block;
      uint32_t sm = static_cast<uint32_t>(block % spec_.num_sms);
      WarpCtx ctx(*this, w, sm, config);
      kernel(ctx);
    }
    if (observer_ != nullptr) observer_->OnLaunchEnd();
    return EndLaunch(label, config, num_warps);
  }

  // --- Introspection ---------------------------------------------------------
  double NowMs() const { return now_ms_; }
  const Counters& TotalCounters() const { return total_; }
  const Timeline& GetTimeline() const { return timeline_; }
  Timeline& MutableTimeline() { return timeline_; }
  const UnifiedMemory& Um() const { return um_; }
  DeviceMemory& Mem() { return mem_; }
  const DeviceMemory& Mem() const { return mem_; }
  const LaunchResult& LastLaunch() const { return last_launch_; }

  /// Attaches (or detaches, with nullptr) an instrumentation observer. The
  /// observer must outlive every subsequent device operation; it sees only
  /// events that happen while attached, so attach before allocating the
  /// buffers it should know about.
  void SetObserver(AccessObserver* observer) { observer_ = observer; }
  AccessObserver* Observer() const { return observer_; }

  /// Attaches (or detaches) a fault injector. With none attached (the
  /// default) every launch/alloc takes the zero-cost fast path and the
  /// simulation is bit-identical to a faultless build. The injector must
  /// outlive every subsequent launch and allocation.
  void SetFaultInjector(FaultInjector* injector) { fault_ = injector; }

  /// Attaches (or detaches) a per-launch profiler (etaprof). Recording is
  /// host-side only: it never moves the simulated clock or the counters, so
  /// a profiled run is bit-identical to an unprofiled one. The profiler must
  /// outlive every subsequent launch.
  void SetProfiler(LaunchProfiler* profiler) { profiler_ = profiler; }
  LaunchProfiler* Profiler() const { return profiler_; }

  /// True once a kDeviceLost fault has fired: the device fell off the bus
  /// and every further launch/alloc fails until the Device is rebuilt.
  bool Lost() const { return lost_; }

  /// Leakcheck teardown sweep: reports every still-live allocation to the
  /// attached observer via OnLeakedBuffer, in base-address order. Runs at
  /// most once per device; call after freeing everything that should be
  /// freed, before reading the sanitizer report.
  void ReportLeaks();

 private:
  friend class WarpCtx;

  struct LaunchAccum {
    Counters c;
    uint64_t migrated_bytes = 0;
    uint32_t fault_ops = 0;
    uint64_t evicted_bytes = 0;
    double arrival_barrier_ms = 0;
  };

  void BeginLaunch();
  LaunchResult EndLaunch(const std::string& label, const LaunchConfig& config,
                         uint64_t num_warps);
  /// Consults the injector (or the sticky lost flag) for the next launch.
  LaunchFault DecideLaunchFault();
  /// Aborts a launch without executing warps: charges the abort/watchdog
  /// time, applies UECC corruption, and latches device loss.
  LaunchResult FailLaunch(const std::string& label, const LaunchConfig& config,
                          const LaunchFault& fate);
  /// Flips words in a deterministically chosen live allocation (UECC).
  void CorruptVictim(const LaunchFault& fate, std::string* victim_name);
  void UpdateUmBudget();
  void RecordTransfer(uint64_t bytes, bool pageable, SpanKind kind,
                      const std::string& label);

  /// Cache/DRAM read path for `count` unique sectors on SM `sm`. Returns
  /// the worst latency level encountered (cycles).
  uint32_t ReadSectors(uint32_t sm, const uint64_t* sectors, uint32_t count);
  /// Write-through store path.
  void WriteSectors(uint32_t sm, const uint64_t* sectors, uint32_t count);
  /// Unified-memory residency handling for one DRAM-level access.
  void TouchManaged(uint64_t addr, bool write);

  DeviceSpec spec_;
  DeviceMemory mem_;
  UnifiedMemory um_;
  SectorCache l2_;
  std::vector<SectorCache> l1_;
  Timeline timeline_;
  Counters total_;
  LaunchResult last_launch_;
  LaunchAccum accum_;
  bool in_launch_ = false;
  double now_ms_ = 0;
  double pending_transfer_end_ = 0;
  AccessObserver* observer_ = nullptr;
  FaultInjector* fault_ = nullptr;
  LaunchProfiler* profiler_ = nullptr;
  bool lost_ = false;
  bool leaks_reported_ = false;
  uint32_t pending_ecc_corrected_ = 0;
};

// ---------------------------------------------------------------------------
// WarpCtx implementation (templates; the sector-level core lives in
// device.cpp).
// ---------------------------------------------------------------------------

namespace internal {

/// Deduplicates sectors of up to 32 addresses in place; returns count.
/// Linear-scan dedup: warps usually touch far fewer than 32 distinct
/// sectors, so the scan is short.
uint32_t CoalesceSectors(const LaneArray<uint64_t>& addrs, uint32_t mask,
                         uint32_t elem_bytes, uint64_t* sectors);

}  // namespace internal

template <typename T>
void WarpCtx::CheckedAddrs(const Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                           uint32_t mask, AccessKind kind, LaneArray<uint64_t>& safe,
                           LaneArray<uint64_t>& addrs) const {
  AccessObserver* obs = device_.observer_;
  ForActive(mask, [&](uint32_t lane) {
    uint64_t i = idx[lane];
    if (obs != nullptr) {
      obs->OnDeviceAccess(DeviceAccess{&buf.raw, i, 1, sizeof(T), buf.count, kind,
                                       warp_id_, lane});
    } else {
      ETA_DCHECK(i < buf.count);
    }
    if (i >= buf.count) i = buf.count > 0 ? buf.count - 1 : 0;
    safe[lane] = i;
    // Not AddrOf: after clamping the address is in range by construction,
    // and AddrOf's own DCHECK stays armed for out-of-simulator callers.
    addrs[lane] = buf.raw.base_addr + i * sizeof(T);
  });
}

template <typename T>
void WarpCtx::Gather(const Buffer<T>& buf, const LaneArray<uint64_t>& idx, uint32_t mask,
                     LaneArray<T>& out) {
  if (!mask) return;
  LaneArray<uint64_t> safe;
  LaneArray<uint64_t> addrs;
  CheckedAddrs(buf, idx, mask, AccessKind::kRead, safe, addrs);
  uint64_t sectors[kWarpSize];
  uint32_t n = internal::CoalesceSectors(addrs, mask, sizeof(T), sectors);
  uint32_t worst = device_.ReadSectors(sm_, sectors, n);
  AccumGatherCost(mask, n, worst);
  const T* data = reinterpret_cast<const T*>(buf.raw.data);
  ForActive(mask, [&](uint32_t lane) { out[lane] = data[safe[lane]]; });
}

template <typename T>
void WarpCtx::GatherContiguous(const Buffer<T>& buf, uint64_t base, uint32_t mask,
                               LaneArray<T>& out) {
  if (!mask) return;
  LaneArray<uint64_t> idx;
  ForActive(mask, [&](uint32_t lane) { idx[lane] = base + lane; });
  Gather(buf, idx, mask, out);
}

template <typename T>
void WarpCtx::GatherBulk(const Buffer<T>& buf, const LaneArray<uint64_t>& start,
                         const LaneArray<uint32_t>& count, uint32_t mask, T* out,
                         uint32_t stride) {
  if (!mask) return;
  // Checked-indexing pass: report each lane's run to the observer with the
  // raw range, then clamp the run into bounds so the streaming loops below
  // never touch host memory past the allocation.
  AccessObserver* obs = device_.observer_;
  LaneArray<uint64_t> safe_start;
  LaneArray<uint32_t> safe_count;
  ForActive(mask, [&](uint32_t lane) {
    uint64_t s = start[lane];
    uint32_t c = count[lane];
    if (c > 0) {
      if (obs != nullptr) {
        obs->OnDeviceAccess(DeviceAccess{&buf.raw, s, c, sizeof(T), buf.count,
                                         AccessKind::kRead, warp_id_, lane});
      } else {
        ETA_DCHECK(s + c <= buf.count);
      }
    }
    if (s >= buf.count) {
      s = 0;
      c = 0;
    } else if (s + c > buf.count) {
      c = static_cast<uint32_t>(buf.count - s);
    }
    // `out` holds exactly `stride` slots per lane; a count beyond that
    // (fault-corrupted device data) must not spill into neighbor lanes.
    if (c > stride) c = stride;
    safe_start[lane] = s;
    safe_count[lane] = c;
  });
  // Each lane's run is contiguous, so its sectors are requested exactly
  // once (the unrolled loads have nothing intervening to evict them); a
  // rare cross-lane duplicate simply hits in the L1 on its second probe.
  uint32_t worst = 0;
  uint32_t max_count = 0;
  uint32_t total_sectors = 0;
  const uint32_t sector_bytes = device_.Spec().sector_bytes;
  ForActive(mask, [&](uint32_t lane) {
    max_count = std::max(max_count, safe_count[lane]);
    if (safe_count[lane] == 0) return;
    uint64_t first = buf.AddrOf(safe_start[lane]) / sector_bytes;
    uint64_t last =
        (buf.AddrOf(safe_start[lane]) + uint64_t{safe_count[lane]} * sizeof(T) - 1) /
        sector_bytes;
    uint64_t chunk[kWarpSize];
    uint32_t n = 0;
    for (uint64_t s = first; s <= last; ++s) {
      chunk[n++] = s;
      if (n == kWarpSize) {
        worst = std::max(worst, device_.ReadSectors(sm_, chunk, n));
        total_sectors += n;
        n = 0;
      }
    }
    if (n > 0) {
      worst = std::max(worst, device_.ReadSectors(sm_, chunk, n));
      total_sectors += n;
    }
  });
  AccumBulkCost(mask, total_sectors, worst, max_count);

  const T* data = reinterpret_cast<const T*>(buf.raw.data);
  ForActive(mask, [&](uint32_t lane) {
    for (uint32_t j = 0; j < safe_count[lane]; ++j) {
      out[lane * stride + j] = data[safe_start[lane] + j];
    }
  });
}

template <typename T>
void WarpCtx::ScatterImpl(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                          const LaneArray<T>& val, uint32_t mask, AccessKind kind) {
  if (!mask) return;
  LaneArray<uint64_t> safe;
  LaneArray<uint64_t> addrs;
  CheckedAddrs(buf, idx, mask, kind, safe, addrs);
  uint64_t sectors[kWarpSize];
  uint32_t n = internal::CoalesceSectors(addrs, mask, sizeof(T), sectors);
  device_.WriteSectors(sm_, sectors, n);
  AccumStoreCost(mask);
  T* data = reinterpret_cast<T*>(buf.raw.data);
  ForActive(mask, [&](uint32_t lane) { data[safe[lane]] = val[lane]; });
}

template <typename T>
void WarpCtx::Scatter(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                      const LaneArray<T>& val, uint32_t mask) {
  ScatterImpl(buf, idx, val, mask, AccessKind::kWrite);
}

template <typename T>
void WarpCtx::ScatterRelaxed(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                             const LaneArray<T>& val, uint32_t mask) {
  ScatterImpl(buf, idx, val, mask, AccessKind::kRelaxedWrite);
}

template <typename T, typename Op>
void WarpCtx::AtomicOp(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                       const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old, Op op) {
  if (!mask) return;
  LaneArray<uint64_t> safe;
  LaneArray<uint64_t> addrs;
  CheckedAddrs(buf, idx, mask, AccessKind::kAtomic, safe, addrs);
  uint64_t sectors[kWarpSize];
  uint32_t n = internal::CoalesceSectors(addrs, mask, sizeof(T), sectors);
  // Atomics resolve at the L2; same-address lanes serialize.
  device_.WriteSectors(sm_, sectors, n);
  uint32_t max_mult = 1;
  ForActive(mask, [&](uint32_t lane) {
    uint32_t mult = 0;
    ForActive(mask, [&](uint32_t other) { mult += idx[other] == idx[lane]; });
    max_mult = std::max(max_mult, mult);
  });
  AccumAtomicCost(mask, max_mult);
  T* data = reinterpret_cast<T*>(buf.raw.data);
  ForActive(mask, [&](uint32_t lane) { old[lane] = op(&data[safe[lane]], val[lane]); });
}

template <typename T>
void WarpCtx::AtomicMin(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                        const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old) {
  AtomicOp(buf, idx, val, mask, old,
           [](T* slot, T v) { T o = *slot; if (v < o) *slot = v; return o; });
}

template <typename T>
void WarpCtx::AtomicMax(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                        const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old) {
  AtomicOp(buf, idx, val, mask, old,
           [](T* slot, T v) { T o = *slot; if (v > o) *slot = v; return o; });
}

template <typename T>
void WarpCtx::AtomicAdd(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                        const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old) {
  AtomicOp(buf, idx, val, mask, old,
           [](T* slot, T v) { T o = *slot; *slot = o + v; return o; });
}

template <typename T>
void WarpCtx::AtomicOr(Buffer<T>& buf, const LaneArray<uint64_t>& idx,
                       const LaneArray<T>& val, uint32_t mask, LaneArray<T>& old) {
  AtomicOp(buf, idx, val, mask, old,
           [](T* slot, T v) { T o = *slot; *slot = o | v; return o; });
}

}  // namespace eta::sim
