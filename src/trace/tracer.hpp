// RequestTracer — deterministic per-request causal span trees.
//
// When EtaGraphOptions::trace_requests is on, every emission point in the
// serve path (admission, routing, batching, dispatch, the device retry
// loop, CPU fallback, completion) appends a typed TraceEvent to the
// request's trace. Off, Record() is one untaken branch and the replay is
// bit-identical to an untraced run (enforced by bench_trace_overhead).
//
// The trace id IS the request id; events within a request are in
// emission order, which on the deterministic serve clock is causal
// order. RenderJson() walks requests in id order, so double runs render
// byte-identical documents.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/events.hpp"

namespace eta::trace {

class RequestTracer {
 public:
  explicit RequestTracer(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void Record(const TraceEvent& event) {
    if (!enabled_) return;
    // Fleet-level events (kScale) belong to no request's span tree; the
    // flight recorder keeps them, the per-request tracer drops them.
    if (event.request_id == kFleetEventId) return;
    traces_[event.request_id].push_back(event);
  }

  /// Request id -> events in emission (causal) order. Ordered container:
  /// iteration order is the render order.
  const std::map<uint64_t, std::vector<TraceEvent>>& Traces() const { return traces_; }

  uint64_t TotalEvents() const;

  /// {"traces":[{"id":N,"events":[{...},...]},...]} — requests in id
  /// order, fixed-precision numbers, no wall clock. Self-contained: the
  /// trace-replay test re-derives every terminal QueryStatus from this
  /// document alone.
  std::string RenderJson() const;

 private:
  bool enabled_ = false;
  std::map<uint64_t, std::vector<TraceEvent>> traces_;
};

/// One rendered per-request trace (for embedding in ServeReport without
/// making report.hpp depend on the tracer internals).
std::string RenderTraceEventJson(const TraceEvent& event);

}  // namespace eta::trace
