// Staging/compute overlap under the stream dispatcher (DESIGN.md section
// 11): the same staging-heavy trace replayed sync vs async on one shard.
//
// Two mixes stress the two places staging lands on the critical path:
//
//   cold-burst    a burst over a 4-graph catalog with no memory budget —
//                 every graph staged once, cold, mid-replay. The async
//                 dispatcher pre-stages the next queued graph on the copy
//                 stream while the current batch computes.
//   evict-thrash  the same burst under a budget that fits only the two
//                 largest graphs, so the round-robin catalog evicts and
//                 re-stages continuously — the worst case the LRU layer
//                 can hand the dispatcher, and the best case for overlap.
//
// Answers are required bit-identical between the two dispatchers on both
// mixes (per-request status + reached counts); the throughput lift on at
// least one mix is the paper-motivated win (overlap excavated from the
// copy/compute engines) and gates the exit code.
//
// Emits BENCH_overlap_serve.json (one JSON object per row) next to the
// table.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "serve/router.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace eta;

namespace {

constexpr size_t kGraphs = 4;

bool SameAnswers(const serve::ServeReport& a, const serve::ServeReport& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const serve::QueryResult& x = a.results[i];
    const serve::QueryResult& y = b.results[i];
    if (x.id != y.id || x.status != y.status ||
        x.reached_vertices != y.reached_vertices) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::ParseBenchArgs(argc, argv, {"slashdot"});
  const auto requests = static_cast<uint32_t>(env.cl.GetInt("requests", 192));
  const uint64_t seed = static_cast<uint64_t>(env.cl.GetInt("seed", 1));
  const std::string json_path = env.cl.GetString("json", "BENCH_overlap_serve.json");

  // A 4-graph catalog of shrinking stand-ins: distinct footprints make the
  // eviction mix thrash deterministically (the two largest fit, the rest
  // rotate through).
  const double sub_scales[kGraphs] = {1.0, 0.8, 0.65, 0.5};
  std::vector<graph::Csr> catalog;
  catalog.reserve(kGraphs);
  for (double sub : sub_scales) {
    graph::Csr g = graph::BuildDatasetCached(env.datasets.front(), env.cache_dir,
                                             env.scale * sub);
    if (!g.HasWeights()) g.DeriveWeights(1);
    catalog.push_back(std::move(g));
  }
  std::vector<const graph::Csr*> graphs;
  uint32_t min_vertices = catalog.front().NumVertices();
  for (const graph::Csr& g : catalog) {
    graphs.push_back(&g);
    min_vertices = std::min(min_vertices, g.NumVertices());
  }
  std::printf("catalog: %zu scaled %s stand-ins, %u..%u vertices\n", kGraphs,
              env.datasets.front().c_str(), min_vertices,
              catalog.front().NumVertices());

  // One saturating burst, round-robin across the catalog — every dispatch
  // is followed by a queued request for a different graph, so the async
  // dispatcher always has something to pre-stage. Sources are drawn below
  // the smallest catalog member so every request is valid on its graph.
  serve::TraceOptions trace_options;
  trace_options.num_requests = requests;
  trace_options.mean_interarrival_ms = 0.01;
  trace_options.seed = seed;
  std::vector<serve::Request> trace = serve::GenerateTrace(min_vertices, trace_options);
  for (size_t i = 0; i < trace.size(); ++i) {
    trace[i].graph_id = static_cast<uint32_t>(i % kGraphs);
  }

  // The thrash budget: the two largest graphs fit together (even with
  // weights staged, the fattest footprint a session takes), three never do.
  std::vector<uint64_t> est;
  for (const graph::Csr& g : catalog) {
    est.push_back(core::ResidentGraph::EstimateDeviceBytes(g, {}, /*stage_weights=*/true));
  }
  std::sort(est.begin(), est.end(), std::greater<>());
  const uint64_t thrash_budget = est[0] + est[1];

  struct Mix {
    const char* name;
    uint64_t budget;
  };
  const Mix mixes[] = {{"cold-burst", 0}, {"evict-thrash", thrash_budget}};

  std::vector<serve::ServeReport> reports;
  util::Table table({"Mix", "Dispatch", "Makespan (ms)", "Throughput (qps)",
                     "Prestages", "Overlap (ms)", "Reloads", "Completed"});
  bool answers_identical = true;
  double best_lift = 0;
  for (const Mix& mix : mixes) {
    serve::ServeReport pair[2];
    for (int async = 0; async < 2; ++async) {
      serve::ShardedOptions options;
      options.shards = 1;
      options.base.queue_capacity = trace.size();  // admit the whole burst
      options.device_mem_budget_bytes = mix.budget;
      options.async_dispatch = async == 1;
      pair[async] = serve::ShardedEngine(options).ServeMany(graphs, trace);
      const serve::ServeReport& r = pair[async];
      uint64_t prestages = 0;
      uint64_t reloads = 0;
      double overlap_ms = 0;
      for (const serve::ShardStat& s : r.shard_stats) {
        prestages += s.prestages;
        reloads += s.reloads;
        overlap_ms += s.overlap_ms;
      }
      table.AddRow({mix.name, async ? "async" : "sync",
                    util::FormatDouble(r.makespan_ms, 2),
                    util::FormatDouble(r.ThroughputQps(), 1),
                    std::to_string(prestages), util::FormatDouble(overlap_ms, 2),
                    std::to_string(reloads), std::to_string(r.completed)});
    }
    if (!SameAnswers(pair[0], pair[1])) {
      std::printf("FAIL: %s answers diverge between sync and async dispatch\n",
                  mix.name);
      answers_identical = false;
    }
    const double lift = pair[0].ThroughputQps() > 0
                            ? pair[1].ThroughputQps() / pair[0].ThroughputQps()
                            : 0;
    best_lift = std::max(best_lift, lift);
    std::printf("note: %s async dispatch clears %.3fx the sync throughput.\n",
                mix.name, lift);
    reports.push_back(std::move(pair[0]));
    reports.push_back(std::move(pair[1]));
  }
  std::printf("%s\n",
              table.Render("Staging overlap — sync vs async dispatch, 1 shard")
                  .c_str());

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < reports.size(); ++i) {
      std::fprintf(f, "  %s%s\n", reports[i].Json().c_str(),
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Gates: async must answer exactly what sync answers, and the overlap
  // must buy throughput on at least one staging-heavy mix.
  if (!answers_identical) return 1;
  if (!(best_lift > 1.0)) {
    std::printf("FAIL: async dispatch lifted no mix (best %.3fx)\n", best_lift);
    return 1;
  }
  return 0;
}
