// DeviceMemory edge behaviour: OOM arithmetic, double-free hard abort,
// out-of-range cudaMemcpy, and kHostStaged's invisibility to the
// unified-memory page machinery.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "sim/device.hpp"
#include "util/units.hpp"

namespace eta {
namespace {

sim::DeviceSpec TinySpec() {
  sim::DeviceSpec spec;
  spec.device_memory_bytes = 1 * util::kMiB;
  return spec;
}

TEST(DeviceMemoryTest, OomErrorCarriesTheAllocationArithmetic) {
  sim::Device device(TinySpec());
  // 512 KiB of the 1 MiB capacity: exactly page-sized, no rounding slack.
  auto half = device.Alloc<uint32_t>(128 * 1024, sim::MemKind::kDevice, "half");
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 512 * util::kKiB);
  try {
    device.Alloc<uint32_t>(256 * 1024, sim::MemKind::kDevice, "toobig");
    FAIL() << "expected OomError";
  } catch (const sim::OomError& oom) {
    EXPECT_EQ(oom.requested_bytes, 1 * util::kMiB);
    EXPECT_EQ(oom.used_bytes, 512 * util::kKiB);
    EXPECT_EQ(oom.capacity_bytes, 1 * util::kMiB);
  }
  // The failed allocation must not leak accounting.
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 512 * util::kKiB);
  device.Free(half);
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 0u);
}

TEST(DeviceMemoryTest, RequestIsPageRounded) {
  sim::Device device(TinySpec());
  auto one = device.Alloc<uint32_t>(1, sim::MemKind::kDevice, "one");
  EXPECT_EQ(one.raw.bytes, device.Spec().page_bytes);
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), device.Spec().page_bytes);
  // Fresh allocations are zero-filled.
  EXPECT_EQ(one.HostSpan()[0], 0u);
  device.Free(one);
}

TEST(DeviceMemoryTest, UnifiedAllocationsOversubscribeInsteadOfThrowing) {
  sim::Device device(TinySpec());
  // 4 MiB managed on a 1 MiB device: must not throw (pages migrate/evict).
  auto big = device.Alloc<uint32_t>(1024 * 1024, sim::MemKind::kUnified, "big");
  EXPECT_TRUE(big.Valid());
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 0u);
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), 4 * util::kMiB);
  device.Free(big);
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), 0u);
}

TEST(DeviceMemoryDeathTest, DoubleFreeAborts) {
  sim::Device device;
  auto buf = device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "victim");
  sim::RawBuffer stale = buf.raw;
  device.Free(buf);  // also resets the handle, so Device::Free is now a no-op
  EXPECT_DEATH(device.Mem().Free(stale), "CHECK failed");
}

TEST(DeviceMemoryDeathTest, MemcpyPastTheAllocationAborts) {
  sim::Device device;
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "small");
  std::vector<uint32_t> five(5, 1);
  EXPECT_DEATH(device.CopyToDevice(buf, std::span<const uint32_t>(five)),
               "CHECK failed");
  std::vector<uint32_t> two(2, 1);
  EXPECT_DEATH(
      device.CopyToDeviceRange(buf, 3, std::span<const uint32_t>(two)),
      "CHECK failed");
}

TEST(DeviceMemoryTest, FindResolvesAllocationsAndGuardPages) {
  sim::Device device;
  auto a = device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "a");
  auto b = device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "b");
  const sim::DeviceMemory& mem = device.Mem();
  ASSERT_NE(mem.Find(a.raw.base_addr), nullptr);
  EXPECT_EQ(mem.Find(a.raw.base_addr)->id, a.raw.id);
  EXPECT_EQ(mem.Find(a.raw.base_addr + a.raw.bytes - 1)->id, a.raw.id);
  // The guard page between allocations maps to nothing.
  EXPECT_EQ(mem.Find(a.raw.base_addr + a.raw.bytes), nullptr);
  EXPECT_EQ(mem.Find(b.raw.base_addr)->id, b.raw.id);
  EXPECT_EQ(mem.Find(0), nullptr);
  device.Free(a);
  device.Free(b);
}

TEST(DeviceMemoryTest, HostStagedIsInvisibleToUnifiedMemory) {
  sim::Device device;
  auto staged = device.Alloc<uint32_t>(1024, sim::MemKind::kHostStaged, "staged");
  auto managed = device.Alloc<uint32_t>(1024, sim::MemKind::kUnified, "managed");
  for (uint64_t i = 0; i < 1024; ++i) {
    staged.HostSpan()[i] = static_cast<uint32_t>(i);
    managed.HostSpan()[i] = static_cast<uint32_t>(i);
  }

  // Only the managed range registers with the page machinery.
  EXPECT_FALSE(device.Um().IsManaged(staged.raw.base_addr));
  EXPECT_TRUE(device.Um().IsManaged(managed.raw.base_addr));
  // Both count as non-device allocations at the allocator level.
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), staged.raw.bytes + managed.raw.bytes);
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 0u);

  // A kernel touching the staged buffer migrates nothing; the same touch on
  // the managed buffer faults pages in.
  auto read_first = [&](sim::Buffer<uint32_t>& buf) {
    device.Launch("touch", {32, 256}, [&](sim::WarpCtx& w) {
      uint32_t mask = w.ActiveMask();
      if (!mask) return;
      sim::LaneArray<uint64_t> idx{};
      sim::WarpCtx::ForActive(mask, [&](uint32_t lane) { idx[lane] = lane; });
      sim::LaneArray<uint32_t> out{};
      w.Gather(buf, idx, mask, out);
    });
  };
  read_first(staged);
  EXPECT_EQ(device.Um().TotalMigratedBytes(), 0u);
  read_first(managed);
  EXPECT_GT(device.Um().TotalMigratedBytes(), 0u);

  device.Free(staged);
  device.Free(managed);
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), 0u);
}

}  // namespace
}  // namespace eta
