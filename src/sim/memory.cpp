#include "sim/memory.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace eta::sim {

RawBuffer DeviceMemory::Allocate(uint64_t bytes, MemKind kind, const std::string& name) {
  uint64_t rounded = (std::max<uint64_t>(bytes, 1) + page_bytes_ - 1) / page_bytes_ * page_bytes_;
  if (kind == MemKind::kDevice) {
    if (device_used_ + rounded > capacity_) {
      throw OomError(rounded, device_used_, capacity_);
    }
    device_used_ += rounded;
  } else {
    unified_allocated_ += rounded;
  }

  Record record;
  record.storage = std::make_unique<std::byte[]>(rounded);
  std::memset(record.storage.get(), 0, rounded);
  record.name = name;
  record.handle = RawBuffer{next_id_++,
                            next_addr_,
                            rounded,
                            std::max<uint64_t>(bytes, 1),
                            kind,
                            record.storage.get()};
  next_addr_ += rounded + page_bytes_;  // guard page between allocations

  uint64_t id = record.handle.id;
  uint64_t base = record.handle.base_addr;
  RawBuffer handle = record.handle;
  records_.emplace(id, std::move(record));
  ranges_.insert(std::lower_bound(ranges_.begin(), ranges_.end(),
                                  std::make_pair(base, uint64_t{0})),
                 {base, id});
  return handle;
}

void DeviceMemory::Free(const RawBuffer& buffer) {
  auto it = records_.find(buffer.id);
  ETA_CHECK(it != records_.end());
  if (buffer.kind == MemKind::kDevice) {
    ETA_CHECK(device_used_ >= it->second.handle.bytes);
    device_used_ -= it->second.handle.bytes;
  } else {
    unified_allocated_ -= it->second.handle.bytes;
  }
  auto rit = std::lower_bound(ranges_.begin(), ranges_.end(),
                              std::make_pair(buffer.base_addr, uint64_t{0}));
  ETA_CHECK(rit != ranges_.end() && rit->second == buffer.id);
  ranges_.erase(rit);
  records_.erase(it);
}

std::vector<std::pair<RawBuffer, std::string>> DeviceMemory::LiveAllocations() const {
  std::vector<std::pair<RawBuffer, std::string>> live;
  live.reserve(ranges_.size());
  for (const auto& [base, id] : ranges_) {
    const Record& record = records_.at(id);
    live.emplace_back(record.handle, record.name);
  }
  return live;
}

const RawBuffer* DeviceMemory::Find(uint64_t addr) const {
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(),
                             std::make_pair(addr, std::numeric_limits<uint64_t>::max()));
  if (it == ranges_.begin()) return nullptr;
  --it;
  const Record& record = records_.at(it->second);
  if (addr < record.handle.base_addr + record.handle.bytes) return &record.handle;
  return nullptr;
}

}  // namespace eta::sim
