// Tests for the extension features built on the EtaGraph machinery:
// multi-source traversal, connected components (min-label propagation),
// and PageRank.
#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hpp"
#include "core/pagerank.hpp"
#include "cpu/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eta::core {
namespace {

graph::Csr RandomGraph(uint64_t seed, bool symmetric = false) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 8000;
  params.seed = seed;
  auto edges = graph::GenerateRmat(params);
  if (symmetric) edges = graph::MirrorEdges(std::move(edges), 1.0, seed);
  graph::Csr csr = graph::BuildCsr(std::move(edges));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

// --- Multi-source traversal ---------------------------------------------------

TEST(MultiSource, BfsIsMinOverSources) {
  graph::Csr csr = RandomGraph(21);
  std::vector<graph::VertexId> sources = {0, 100, 500};
  auto report = EtaGraph().RunMultiSource(csr, Algo::kBfs, sources);
  ASSERT_FALSE(report.oom);
  // Expected: elementwise min of the single-source BFS levels.
  std::vector<graph::Weight> expected(csr.NumVertices(), kInf);
  for (graph::VertexId s : sources) {
    auto single = cpu::BfsLevels(csr, s);
    for (size_t v = 0; v < expected.size(); ++v) {
      expected[v] = std::min(expected[v], single[v]);
    }
  }
  EXPECT_EQ(report.labels, expected);
}

TEST(MultiSource, SsspIsMinOverSources) {
  graph::Csr csr = RandomGraph(22);
  std::vector<graph::VertexId> sources = {3, 777};
  auto report = EtaGraph().RunMultiSource(csr, Algo::kSssp, sources);
  std::vector<graph::Weight> expected(csr.NumVertices(), kInf);
  for (graph::VertexId s : sources) {
    auto single = cpu::SsspDistances(csr, s);
    for (size_t v = 0; v < expected.size(); ++v) {
      expected[v] = std::min(expected[v], single[v]);
    }
  }
  EXPECT_EQ(report.labels, expected);
}

TEST(MultiSource, SingleSourceDegenerates) {
  graph::Csr csr = RandomGraph(23);
  std::vector<graph::VertexId> one = {0};
  auto multi = EtaGraph().RunMultiSource(csr, Algo::kSswp, one);
  auto single = EtaGraph().Run(csr, Algo::kSswp, 0);
  EXPECT_EQ(multi.labels, single.labels);
  EXPECT_DOUBLE_EQ(multi.total_ms, single.total_ms);  // identical execution
}

// --- Connected components -------------------------------------------------------

TEST(ConnectedComponents, MatchesCpuLabelPropagation) {
  graph::Csr csr = RandomGraph(31, /*symmetric=*/true);
  auto report = EtaGraph().RunConnectedComponents(csr);
  ASSERT_FALSE(report.oom);
  EXPECT_EQ(report.labels, cpu::MinLabelPropagation(csr));
}

TEST(ConnectedComponents, SymmetrizedComponentsAreConsistent) {
  // Two disjoint cliques + isolated vertices.
  std::vector<graph::Edge> edges;
  for (graph::VertexId a = 0; a < 5; ++a) {
    for (graph::VertexId b = 0; b < 5; ++b) {
      if (a != b) edges.push_back({a, b});
    }
  }
  for (graph::VertexId a = 10; a < 14; ++a) {
    for (graph::VertexId b = 10; b < 14; ++b) {
      if (a != b) edges.push_back({a, b});
    }
  }
  graph::Csr csr = graph::BuildCsr(std::move(edges), {.min_vertices = 16});
  auto report = EtaGraph().RunConnectedComponents(csr);
  for (graph::VertexId v = 0; v < 5; ++v) EXPECT_EQ(report.labels[v], 0u);
  for (graph::VertexId v = 10; v < 14; ++v) EXPECT_EQ(report.labels[v], 10u);
  EXPECT_EQ(report.labels[15], 15u);  // isolated keeps its own id
}

TEST(ConnectedComponents, SmpToggleGivesSameLabels) {
  graph::Csr csr = RandomGraph(33, /*symmetric=*/true);
  EtaGraphOptions no_smp;
  no_smp.use_smp = false;
  EXPECT_EQ(EtaGraph().RunConnectedComponents(csr).labels,
            EtaGraph(no_smp).RunConnectedComponents(csr).labels);
}

// --- PageRank --------------------------------------------------------------------

TEST(PageRank, MatchesCpuReference) {
  graph::Csr csr = RandomGraph(41);
  PageRankOptions options;
  options.max_iterations = 30;
  options.epsilon = 0;  // fixed iteration count for exact comparison
  auto result = RunPageRank(csr, options);
  ASSERT_FALSE(result.oom);
  auto expected = cpu::PageRankReference(csr, options.damping, 0, 30);
  ASSERT_EQ(result.ranks.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(result.ranks[v], expected[v], 1e-4) << "vertex " << v;
  }
}

TEST(PageRank, RankSumBoundedByOne) {
  graph::Csr csr = RandomGraph(42);
  auto result = RunPageRank(csr);
  double sum = 0;
  for (float r : result.ranks) {
    EXPECT_GE(r, 0.f);
    sum += r;
  }
  EXPECT_LE(sum, 1.0 + 1e-3);  // sinks leak rank; never exceeds 1
  EXPECT_GT(sum, 0.1);
}

TEST(PageRank, HubOutranksLeaf) {
  // star: everything points at vertex 0.
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 1; v < 100; ++v) edges.push_back({v, 0});
  graph::Csr csr = graph::BuildCsr(std::move(edges));
  auto result = RunPageRank(csr);
  for (graph::VertexId v = 1; v < 100; ++v) EXPECT_GT(result.ranks[0], result.ranks[v]);
}

TEST(PageRank, ConvergesBeforeIterationCap) {
  graph::Csr csr = RandomGraph(43);
  PageRankOptions options;
  options.epsilon = 1e-4;
  options.max_iterations = 100;
  auto result = RunPageRank(csr, options);
  EXPECT_LT(result.iterations, 100u);
  EXPECT_GT(result.iterations, 2u);
}

TEST(PageRank, SmpReducesLoadTransactions) {
  graph::Csr csr = RandomGraph(44);
  PageRankOptions with, without;
  with.max_iterations = without.max_iterations = 5;
  with.epsilon = without.epsilon = 0;
  without.use_smp = false;
  auto a = RunPageRank(csr, with);
  auto b = RunPageRank(csr, without);
  // Same math...
  for (size_t v = 0; v < a.ranks.size(); ++v) {
    ASSERT_FLOAT_EQ(a.ranks[v], b.ranks[v]);
  }
  // ...fewer LSU global-load transactions (Section VIII's portability
  // claim for SMP).
  EXPECT_LT(a.counters.l1_accesses, b.counters.l1_accesses);
}

}  // namespace
}  // namespace eta::core
