#include "sim/cache.hpp"

#include <bit>

namespace eta::sim {

SectorCache::SectorCache(uint64_t capacity_bytes, uint32_t ways, uint32_t sector_bytes) {
  ETA_CHECK(ways >= 1);
  ETA_CHECK(sector_bytes >= 1);
  uint64_t sectors = capacity_bytes / sector_bytes;
  ETA_CHECK(sectors >= ways);
  uint64_t sets = std::bit_floor(sectors / ways);
  ETA_CHECK(sets >= 1);
  num_sets_ = static_cast<uint32_t>(sets);
  set_mask_ = num_sets_ - 1;
  ways_ = ways;
  ways_storage_.resize(static_cast<size_t>(num_sets_) * ways_);
}

bool SectorCache::Access(uint64_t sector) {
  ++accesses_;
  ++tick_;
  Way* set = &ways_storage_[(sector & set_mask_) * ways_];
  uint32_t victim = 0;
  uint64_t oldest = ~0ULL;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == sector) {
      set[w].stamp = tick_;
      ++hits_;
      return true;
    }
    if (set[w].stamp < oldest) {
      oldest = set[w].stamp;
      victim = w;
    }
  }
  set[victim].tag = sector;
  set[victim].stamp = tick_;
  return false;
}

bool SectorCache::Probe(uint64_t sector) const {
  const Way* set = &ways_storage_[(sector & set_mask_) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == sector) return true;
  }
  return false;
}

void SectorCache::InvalidateAll() {
  for (Way& w : ways_storage_) w = Way{};
}

void SectorCache::InvalidateRange(uint64_t first_sector, uint64_t last_sector) {
  for (Way& w : ways_storage_) {
    if (w.tag != kEmptyTag && w.tag >= first_sector && w.tag < last_sector) {
      w = Way{};
    }
  }
}

}  // namespace eta::sim
