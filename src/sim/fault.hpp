// Deterministic fault injection for the simulated GPU.
//
// A FaultInjector attached to a sim::Device decides, from seeded RNG
// streams, whether each kernel launch or device allocation fails and how.
// Four fault classes are modeled (DESIGN.md section 8):
//
//   - ECC correctable:   transient bit flip scrubbed by hardware; the launch
//                        succeeds and the event is only counted.
//   - ECC uncorrectable: a double-bit flip in a live device allocation; the
//                        launch aborts with kEccUncorrectable and the chosen
//                        victim buffer's backing bytes are actually corrupted
//                        (so recovery code must verify/re-stage, not just
//                        retry).
//   - Kernel hang:       the launch never retires; the watchdog kills it
//                        after `watchdog_ms` of simulated time.
//   - Device loss:       the device falls off the bus mid-launch; every
//                        subsequent operation fails until the device object
//                        is rebuilt.
//
// Determinism contract: decisions are drawn from SplitMix64 streams keyed by
// (seed, fault class) and consumed one draw per launch / per allocation, so
// two runs with the same config, graph and request stream inject byte-for-
// byte identical fault schedules. A failed launch executes no warps and has
// no functional effect other than the declared corruption, which keeps
// retry-from-scratch sound.
//
// With no injector attached (the default) the device's fault hooks reduce to
// one untaken branch per launch/alloc: every simulated counter is
// bit-identical to a build without this file (enforced by
// bench_fault_overhead, like the etacheck zero-cost contract).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace eta::sim {

/// Terminal status of a kernel launch. Anything other than kOk means the
/// kernel executed no warps and produced no functional effects (beyond the
/// declared ECC corruption for kEccUncorrectable).
enum class LaunchStatus : uint8_t {
  kOk,
  kEccUncorrectable,  // double-bit ECC error; a live buffer was corrupted
  kKernelTimeout,     // hang killed by the watchdog after watchdog_ms
  kDeviceLost,        // device fell off the bus; sticky until rebuild
};

const char* LaunchStatusName(LaunchStatus status);

/// Injection knobs. Rates are per-decision probabilities in [0,1]; the
/// `*_at` fields script a one-shot fault at the Nth decision (1-based,
/// 0 = disabled) for deterministic tests. Parsed from the tools' --faults
/// flag, e.g.:
///   --faults=seed=7,ecc=0.05,uecc=0.02,hang=0.01,lost=0.005,alloc=0.05
///   --faults=uecc_at=3,watchdog=40
struct FaultConfig {
  uint64_t seed = 1;
  double ecc_correctable_rate = 0;    // per launch; logged only
  double ecc_uncorrectable_rate = 0;  // per launch; corrupts + aborts
  double hang_rate = 0;               // per launch; watchdog timeout
  double device_loss_rate = 0;        // per launch; sticky device loss
  double alloc_fail_rate = 0;         // per allocation; throws OomError
  double watchdog_ms = 25.0;          // simulated time burned by a hang
  uint32_t corrupt_words = 4;         // 32-bit words flipped per UECC event

  // Scripted one-shots (1-based decision index; 0 = off). These compose
  // with the rates: a decision fires if either the script or the draw says
  // so, scripts taking precedence for attribution.
  uint64_t ecc_at = 0;
  uint64_t uecc_at = 0;
  uint64_t hang_at = 0;
  uint64_t lost_at = 0;
  uint64_t alloc_fail_at = 0;

  /// True when any fault can ever fire; frameworks only attach an injector
  /// (and thus leave the zero-cost fast path) when this holds.
  bool Enabled() const {
    return ecc_correctable_rate > 0 || ecc_uncorrectable_rate > 0 || hang_rate > 0 ||
           device_loss_rate > 0 || alloc_fail_rate > 0 || ecc_at != 0 || uecc_at != 0 ||
           hang_at != 0 || lost_at != 0 || alloc_fail_at != 0;
  }

  /// Parses a comma-separated spec ("key=value,..."); keys: seed, ecc, uecc,
  /// hang, lost, alloc, watchdog, words, ecc_at, uecc_at, hang_at, lost_at,
  /// alloc_at. Returns nullopt (with a message in *error) on a bad spec.
  static std::optional<FaultConfig> Parse(std::string_view spec, std::string* error);
};

/// One launch's injected fate, decided before any warp executes.
struct LaunchFault {
  LaunchStatus status = LaunchStatus::kOk;
  uint32_t ecc_corrected = 0;  // correctable events logged on this launch
  // Entropy for deterministic UECC victim selection (the device maps these
  // onto its live allocation table).
  uint64_t victim_entropy = 0;
  uint64_t offset_entropy = 0;
};

/// Seeded decision source. One instance per device session; the device
/// consults it once per launch and once per allocation. Streams for launch
/// and allocation decisions are independent, so adding an allocation never
/// perturbs the launch fault schedule.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& Config() const { return config_; }

  /// Fate of the next kernel launch.
  LaunchFault NextLaunch();

  /// True if the next device allocation should fail.
  bool NextAllocFails();

  uint64_t LaunchesDecided() const { return launches_; }
  uint64_t AllocsDecided() const { return allocs_; }

 private:
  FaultConfig config_;
  util::SplitMix64 launch_rng_;
  util::SplitMix64 alloc_rng_;
  util::SplitMix64 victim_rng_;
  uint64_t launches_ = 0;
  uint64_t allocs_ = 0;
};

}  // namespace eta::sim
