#include "core/traversal.hpp"

#include "cpu/reference.hpp"
#include "util/check.hpp"

namespace eta::core {

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kBfs: return "BFS";
    case Algo::kSssp: return "SSSP";
    case Algo::kSswp: return "SSWP";
  }
  return "?";
}

std::vector<graph::Weight> CpuReference(const graph::Csr& csr, Algo algo,
                                        graph::VertexId source) {
  switch (algo) {
    case Algo::kBfs: return cpu::BfsLevels(csr, source);
    case Algo::kSssp: return cpu::SsspDistances(csr, source);
    case Algo::kSswp: return cpu::SswpWidths(csr, source);
  }
  ETA_CHECK(false);
  return {};
}

}  // namespace eta::core
