// Table I reproduction: theoretical space overhead of the graph
// representations (G-Shard, edge list, VST, CSR) and normalized usage for
// the LiveJournal stand-in (the paper's reference dataset), plus the same
// ratios for every other dataset for completeness.
#include "bench_common.hpp"
#include "graph/space_model.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal"});

  // The paper's reported normalized usage for LiveJournal (Table I).
  const double paper_norm[4] = {1.87, 1.87, 1.32, 1.0};

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    auto rows = graph::ComputeSpaceModel(csr, /*degree_limit=*/10);

    util::Table table({"Structure", "Theory Space Overhead", "Words",
                       "Normalized (measured)", "Normalized (paper, LJ)"});
    for (size_t i = 0; i < rows.size(); ++i) {
      table.AddRow({rows[i].structure, rows[i].formula, std::to_string(rows[i].words),
                    util::FormatDouble(rows[i].normalized, 2),
                    name == "livejournal" ? util::FormatDouble(paper_norm[i], 2) : "-"});
    }
    std::printf("%s\n",
                table.Render("Table I - transfer volume by representation, K=10, dataset=" +
                             name)
                    .c_str());
  }
  std::printf("Shape check: G-Shard/EdgeList ~2x of CSR words, VST between, CSR == 1.\n");
  return 0;
}
