// Widest-path routing (SSWP): given a transport network whose edge weights
// are link capacities, find the maximum bottleneck capacity from a depot to
// every destination — the paper's third traversal workload. Demonstrates
// weighted traversal, a non-zero source, and the Unified Memory modes.
//
//   $ ./route_width [--hubs=N]
//
#include <algorithm>
#include <cstdio>

#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace eta;

namespace {

/// A hub-and-spoke freight network: `hubs` regional hubs in a ring of
/// high-capacity trunks; each hub serves a fan of local depots over
/// lower-capacity links; a few random cross-links add alternative routes.
graph::Csr BuildFreightNetwork(uint32_t hubs, uint32_t depots_per_hub, uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<graph::Edge> edges;
  std::vector<graph::Weight> weights;
  auto add = [&](graph::VertexId a, graph::VertexId b, graph::Weight cap) {
    edges.push_back({a, b});
    weights.push_back(cap);
    edges.push_back({b, a});
    weights.push_back(cap);
  };
  const auto depot = [&](uint32_t hub, uint32_t i) {
    return hubs + hub * depots_per_hub + i;
  };
  for (uint32_t h = 0; h < hubs; ++h) {
    add(h, (h + 1) % hubs, 80 + static_cast<graph::Weight>(rng.NextBounded(20)));
    for (uint32_t i = 0; i < depots_per_hub; ++i) {
      add(h, depot(h, i), 10 + static_cast<graph::Weight>(rng.NextBounded(30)));
    }
  }
  for (uint32_t k = 0; k < hubs * 2; ++k) {  // cross-links
    auto a = static_cast<graph::VertexId>(rng.NextBounded(hubs * (depots_per_hub + 1)));
    auto b = static_cast<graph::VertexId>(rng.NextBounded(hubs * (depots_per_hub + 1)));
    if (a != b) add(a, b, 5 + static_cast<graph::Weight>(rng.NextBounded(15)));
  }

  // Build CSR keeping the parallel weight array aligned (no dedup).
  graph::VertexId n = hubs * (depots_per_hub + 1);
  std::vector<graph::EdgeId> offsets(n + 1, 0);
  for (const auto& e : edges) ++offsets[e.src + 1];
  for (graph::VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<graph::VertexId> targets(edges.size());
  std::vector<graph::Weight> out_weights(edges.size());
  std::vector<graph::EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < edges.size(); ++i) {
    graph::EdgeId slot = cursor[edges[i].src]++;
    targets[slot] = edges[i].dst;
    out_weights[slot] = weights[i];
  }
  graph::Csr csr(std::move(offsets), std::move(targets));
  csr.SetWeights(std::move(out_weights));
  return csr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  auto cl = util::CommandLine::Parse(argc, argv, &error);
  if (!cl) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const auto hubs = static_cast<uint32_t>(cl->GetInt("hubs", 64));
  graph::Csr csr = BuildFreightNetwork(hubs, /*depots_per_hub=*/30, /*seed=*/5);
  std::printf("freight network: %u sites, %u directed links\n", csr.NumVertices(),
              csr.NumEdges());

  const graph::VertexId depot0 = hubs;  // first depot of hub 0
  core::RunReport widest = core::EtaGraph().Run(csr, core::Algo::kSswp, depot0);
  core::RunReport shortest = core::EtaGraph().Run(csr, core::Algo::kSssp, depot0);

  // Distribution of guaranteed shipment capacity from the depot.
  std::vector<graph::Weight> widths;
  for (graph::Weight w : widest.labels) {
    if (w != 0 && w != core::kInf) widths.push_back(w);
  }
  std::sort(widths.begin(), widths.end());
  auto pct = [&](double q) { return widths[static_cast<size_t>(q * (widths.size() - 1))]; };
  std::printf("\nmax bottleneck capacity from depot %u to %zu reachable sites:\n",
              depot0, widths.size());
  std::printf("  p10=%u  p50=%u  p90=%u  max=%u tons\n", pct(0.1), pct(0.5), pct(0.9),
              widths.back());

  // Widest and shortest routes disagree — show a destination where the
  // high-capacity route is not the short one.
  for (graph::VertexId v = 0; v < csr.NumVertices(); ++v) {
    if (widest.labels[v] == 0 || widest.labels[v] == core::kInf) continue;
    if (widest.labels[v] >= 80 && shortest.labels[v] >= 40) {
      std::printf("\nsite %u: %u tons guaranteed via trunk ring, though the direct\n"
                  "route costs distance %u — widest != shortest.\n",
                  v, widest.labels[v], shortest.labels[v]);
      break;
    }
  }
  std::printf("\nsimulated: SSWP %.3f ms, SSSP %.3f ms (%u / %u iterations)\n",
              widest.total_ms, shortest.total_ms, widest.iterations,
              shortest.iterations);

  bool ok = widest.labels == core::CpuReference(csr, core::Algo::kSswp, depot0);
  std::printf("verified against CPU widest-path Dijkstra: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
