// Profiler counters — the simulator's equivalent of nvprof metrics.
//
// Fig 7 of the paper reports IPC, Unified (L1+texture) cache hit rate, L2
// hit rate, read throughputs at L2/Unified/global, and global memory read
// transactions, measured with nvprof. The counters here are defined the
// same way so bench_fig7_smp_counters can print the same ratios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.hpp"

namespace eta::sim {

struct Counters {
  // Issue.
  uint64_t warp_instructions = 0;    // warp-level issued instructions
  uint64_t thread_instructions = 0;  // warp instr weighted by active lanes

  // Unified (L1) cache, per-sector accesses.
  uint64_t l1_accesses = 0;
  uint64_t l1_hits = 0;

  // L2 cache.
  uint64_t l2_accesses = 0;
  uint64_t l2_hits = 0;

  // Device memory (32B transactions).
  uint64_t dram_read_transactions = 0;
  uint64_t dram_write_transactions = 0;

  // Shared memory.
  uint64_t shared_accesses = 0;

  // Atomics (L2-resident).
  uint64_t atomic_operations = 0;

  // Latency accounting: per-warp serialized memory latency, summed across
  // warps (the latency-bound term of the roofline).
  uint64_t mem_latency_cycles = 0;

  // Elapsed simulated cycles attributed to kernels (sum over launches).
  double elapsed_cycles = 0;

  uint64_t launches = 0;

  Counters& operator+=(const Counters& other);

  // --- Derived metrics (nvprof names in comments) -------------------------
  double Ipc() const;                 // "ipc" (per-SM), needs num_sms
  double IpcPerSm(uint32_t num_sms) const;
  double L1HitRate() const;           // "tex_cache_hit_rate" / unified hit
  double L2HitRate() const;           // "l2_l1_read_hit_rate"
  uint64_t L1Bytes() const { return l1_accesses * 32; }
  uint64_t L2Bytes() const { return l2_accesses * 32; }
  uint64_t DramReadBytes() const { return dram_read_transactions * 32; }

  /// Read throughput in bytes/cycle at each level (proportional to
  /// nvprof's GB/s throughputs for a fixed clock).
  double L1Throughput() const;
  double L2Throughput() const;
  double DramThroughput() const;

  /// Warp execution efficiency ("warp_execution_efficiency" in nvprof):
  /// mean fraction of lanes active per issued warp instruction. The direct
  /// measure of the SIMT load imbalance that UDC attacks.
  double WarpEfficiency() const;

  /// Per-field difference against an earlier snapshot of the same device's
  /// totals (the per-query counter delta a serving layer attributes to one
  /// query). Every field of `base` must be <= the corresponding field here.
  Counters Since(const Counters& base) const;

  std::string Summary() const;
};

// ---------------------------------------------------------------------------
// Per-launch profiling (etaprof, DESIGN.md section 9).
//
// nvprof's per-kernel timeline view: one record per launch with the kernel
// name, launch geometry, simulated start/end, and this launch's own Counters
// delta. Recording is host-side bookkeeping only — it never touches the
// simulated clock or the counters, so a profiled run is bit-identical to an
// unprofiled one (bench_profiler_overhead enforces the contract).
// ---------------------------------------------------------------------------

struct KernelProfile {
  std::string name;
  /// 1-based position among the device's profiled launches (failed launches
  /// included — an aborted launch is a timeline event worth seeing).
  uint64_t launch_index = 0;
  uint64_t grid_threads = 0;
  uint32_t block_size = 0;
  double start_ms = 0;
  double end_ms = 0;
  /// Pure roofline kernel time (excludes UM fault servicing); 0 for failed
  /// launches, which execute no warps.
  double compute_ms = 0;
  Counters counters;  // this launch only (all-zero for failed launches)
  LaunchStatus status = LaunchStatus::kOk;
  uint32_t ecc_corrected = 0;
  /// UECC victim allocation (empty unless status == kEccUncorrectable).
  std::string fault_buffer;

  double DurationMs() const { return end_ms - start_ms; }
  bool Ok() const { return status == LaunchStatus::kOk; }
};

/// Append-only per-launch record an attached Device writes into. With no
/// profiler attached (the default) the device takes the zero-cost fast path.
class LaunchProfiler {
 public:
  void Record(KernelProfile profile) {
    profile.launch_index = launches_.size() + 1;
    launches_.push_back(std::move(profile));
  }

  const std::vector<KernelProfile>& Launches() const { return launches_; }

 private:
  std::vector<KernelProfile> launches_;
};

}  // namespace eta::sim
