// Gunrock baseline (Wang et al., PPoPP'16) — frontier-centric framework
// with load-balanced advance + filter operators.
//
// Modeled fidelity:
//   - each iteration is an advance kernel (edge-parallel over the
//     frontier's out-edges, owner located via a sorted-search over the
//     scanned degree array) followed by a filter kernel that deduplicates
//     and compacts the raw output frontier — two launches plus an extra
//     pass over the expanded frontier, Gunrock's characteristic
//     per-iteration overhead;
//   - the edge frontier is double-buffered at |E| capacity, the footprint
//     that makes Gunrock the second framework to run out of memory in
//     Table III (sk-2005 onward);
//   - topology is cudaMalloc'd and memcpy'd up front (pageable).
#pragma once

#include "core/run_report.hpp"
#include "core/traversal.hpp"
#include "graph/csr.hpp"
#include "sim/spec.hpp"

namespace eta::baselines {

struct GunrockOptions {
  sim::DeviceSpec spec{};
  uint32_t block_size = 256;
  uint32_t max_iterations = 100000;
};

class Gunrock {
 public:
  explicit Gunrock(GunrockOptions options = {}) : options_(options) {}

  core::RunReport Run(const graph::Csr& csr, core::Algo algo,
                      graph::VertexId source) const;

 private:
  GunrockOptions options_;
};

}  // namespace eta::baselines
