// Table IV reproduction: activated-vertex percentage and iteration count of
// EtaGraph BFS per dataset, with the paper's values alongside.
#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  std::vector<std::string> all;
  for (const auto& info : graph::AllDatasets()) all.push_back(info.name);
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, all);

  util::Table table({"Dataset", "Act.% (measured)", "Act.% (paper)", "Itr.# (measured)",
                     "Itr.# (paper)"});
  for (const std::string& name : env.datasets) {
    auto info = *graph::FindDataset(name);
    graph::Csr csr = bench::Load(env, name);
    auto report = core::EtaGraph().Run(csr, core::Algo::kBfs, graph::kQuerySource);
    // The paper prints Slashdot..sk-2005 as whole percents and uk-2006 in
    // scientific notation; mirror that.
    char measured[32];
    double pct = report.activated_fraction * 100;
    if (pct < 0.1) {
      std::snprintf(measured, sizeof(measured), "%.2E", pct);
    } else {
      std::snprintf(measured, sizeof(measured), "%.0f", pct);
    }
    const char* paper_act = name == "slashdot"      ? "100"
                            : name == "livejournal" ? "91"
                            : name == "orkut"       ? "99"
                            : name == "rmat"        ? "81"
                            : name == "uk2005"      ? "99"
                            : name == "sk2005"      ? "99"
                                                    : "1.15E-04";
    table.AddRow({info.paper_name, measured, paper_act, std::to_string(report.iterations),
                  std::to_string(info.paper.bfs_iterations)});
  }
  std::printf("%s\n",
              table.Render("Table IV - EtaGraph BFS activation and iterations").c_str());
  return 0;
}
