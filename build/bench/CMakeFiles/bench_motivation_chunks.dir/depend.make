# Empty dependencies file for bench_motivation_chunks.
# This may be replaced when dependencies are built.
