// Tests for the query-serving engine: per-source attribution exactness,
// persistent-session reuse, batching equivalence, deadline/overflow
// handling, and report determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/engine.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "serve/trace.hpp"

namespace eta::serve {
namespace {

graph::Csr RandomGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

uint64_t CountReached(core::Algo algo, const std::vector<graph::Weight>& labels) {
  uint64_t reached = 0;
  for (graph::Weight label : labels) reached += core::Reached(algo, label) ? 1 : 0;
  return reached;
}

// --- Per-source attribution (the batcher's demux primitive) -------------------

class AttributionTest : public ::testing::TestWithParam<core::Algo> {};

TEST_P(AttributionTest, MatchesSequentialSingleSourceRuns) {
  const core::Algo algo = GetParam();
  graph::Csr csr = RandomGraph(11);
  std::vector<graph::VertexId> sources = {0, 97, 350, 501};

  core::EtaGraph engine;
  auto batched = engine.RunMultiSource(csr, algo, sources, /*attribute_sources=*/true);
  ASSERT_FALSE(batched.oom);
  ASSERT_EQ(batched.per_source_reached.size(), sources.size());

  std::vector<graph::Weight> expected_merge(csr.NumVertices(), core::kInf);
  for (size_t i = 0; i < sources.size(); ++i) {
    auto single = engine.Run(csr, algo, sources[i]);
    ASSERT_FALSE(single.oom);
    // Demuxed per-source reachability is bit-identical to running alone.
    EXPECT_EQ(batched.per_source_reached[i], CountReached(algo, single.labels))
        << "source " << sources[i];
    for (size_t v = 0; v < single.labels.size(); ++v) {
      expected_merge[v] = std::min(expected_merge[v], single.labels[v]);
    }
  }
  // Attribution must not perturb the merged labels.
  EXPECT_EQ(batched.labels, expected_merge);
}

INSTANTIATE_TEST_SUITE_P(BfsAndSssp, AttributionTest,
                         ::testing::Values(core::Algo::kBfs, core::Algo::kSssp));

// --- Persistent sessions ------------------------------------------------------

TEST(GraphSession, ReusesResidentGraphAcrossQueries) {
  graph::Csr csr = RandomGraph(12);
  auto one_shot = core::EtaGraph().Run(csr, core::Algo::kBfs, 5);
  ASSERT_FALSE(one_shot.oom);

  GraphSession session(csr);
  ASSERT_TRUE(session.Loaded());

  auto first = session.RunQuery(core::Algo::kBfs, 5);
  auto second = session.RunQuery(core::Algo::kBfs, 5);
  ASSERT_FALSE(first.oom);
  ASSERT_FALSE(second.oom);
  // Same answers as a cold one-shot run...
  EXPECT_EQ(first.labels, one_shot.labels);
  EXPECT_EQ(second.labels, one_shot.labels);
  // ...but repeat queries skip staging: cheaper than the cold total.
  EXPECT_LT(second.query_ms, one_shot.total_ms);
  EXPECT_EQ(session.QueriesServed(), 2u);
}

TEST(GraphSession, ExplicitCopyStagingIsChargedOnceUpFront) {
  graph::Csr csr = RandomGraph(12);
  core::EtaGraphOptions options;
  options.memory_mode = core::MemoryMode::kExplicitCopy;
  auto one_shot = core::EtaGraph(options).Run(csr, core::Algo::kBfs, 5);
  ASSERT_FALSE(one_shot.oom);

  GraphSession session(csr, options);
  ASSERT_TRUE(session.Loaded());
  // Explicit mode pays the topology transfer at load time, not per query.
  EXPECT_GT(session.LoadMs(), 0.0);
  auto first = session.RunQuery(core::Algo::kBfs, 5);
  auto second = session.RunQuery(core::Algo::kBfs, 5);
  EXPECT_EQ(first.labels, one_shot.labels);
  EXPECT_EQ(second.labels, one_shot.labels);
  EXPECT_LT(second.query_ms, one_shot.total_ms);
}

TEST(GraphSession, ServesMixedAlgorithms) {
  graph::Csr csr = RandomGraph(13);
  GraphSession session(csr);
  ASSERT_TRUE(session.Loaded());
  for (core::Algo algo :
       {core::Algo::kBfs, core::Algo::kSssp, core::Algo::kSswp}) {
    auto report = session.RunQuery(algo, 7);
    ASSERT_FALSE(report.oom);
    EXPECT_EQ(report.labels, core::CpuReference(csr, algo, 7));
  }
}

// --- Scheduler ----------------------------------------------------------------

TEST(QueryScheduler, PriorityThenFifoOrder) {
  QueryScheduler sched(8);
  Request a{.id = 1, .priority = 0};
  Request b{.id = 2, .priority = 1};
  Request c{.id = 3, .priority = 1};
  ASSERT_TRUE(sched.Admit(a));
  ASSERT_TRUE(sched.Admit(b));
  ASSERT_TRUE(sched.Admit(c));
  EXPECT_EQ(sched.PopNext()->id, 2u);  // highest priority, admitted first
  EXPECT_EQ(sched.PopNext()->id, 3u);
  EXPECT_EQ(sched.PopNext()->id, 1u);
  EXPECT_FALSE(sched.PopNext().has_value());
}

TEST(QueryScheduler, RejectsWhenFullAndExpiresDeadlines) {
  QueryScheduler sched(2);
  Request a{.id = 1, .arrival_ms = 0, .deadline_ms = 1.0};
  Request b{.id = 2, .arrival_ms = 0, .deadline_ms = 100.0};
  Request c{.id = 3};
  EXPECT_TRUE(sched.Admit(a));
  EXPECT_TRUE(sched.Admit(b));
  EXPECT_FALSE(sched.Admit(c));  // full
  auto expired = sched.ExpireDeadlines(5.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(sched.Depth(), 1u);
}

TEST(QueryScheduler, PopCompatibleFiltersByAlgorithm) {
  QueryScheduler sched(8);
  sched.Admit({.id = 1, .algo = core::Algo::kBfs});
  sched.Admit({.id = 2, .algo = core::Algo::kSssp});
  sched.Admit({.id = 3, .algo = core::Algo::kBfs});
  auto batch = sched.PopCompatible(core::Algo::kBfs, 8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 3u);
  EXPECT_EQ(sched.Depth(), 1u);
}

TEST(QueryScheduler, DeadlineExactlyAtNowStaysDispatchable) {
  // Boundary rule (Request::ExpiredAt): a request expires only when the
  // clock has passed its start deadline, so deadline == now still serves.
  QueryScheduler sched(8);
  Request r{.id = 1, .arrival_ms = 2.0, .deadline_ms = 3.0};
  ASSERT_TRUE(sched.Admit(r));
  EXPECT_FALSE(r.ExpiredAt(5.0));
  EXPECT_TRUE(sched.ExpireDeadlines(5.0).empty());  // == StartDeadline()
  EXPECT_EQ(sched.Depth(), 1u);
  EXPECT_TRUE(r.ExpiredAt(5.0 + 1e-9));
  auto expired = sched.ExpireDeadlines(5.0 + 1e-9);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(sched.Depth(), 0u);
}

TEST(QueryScheduler, ExpiryPreservesPriorityOrderAmongSurvivors) {
  QueryScheduler sched(8);
  ASSERT_TRUE(sched.Admit({.id = 1, .deadline_ms = 1.0, .priority = 0}));
  ASSERT_TRUE(sched.Admit({.id = 2, .deadline_ms = kNoDeadline, .priority = 5}));
  ASSERT_TRUE(sched.Admit({.id = 3, .deadline_ms = kNoDeadline, .priority = 0}));
  ASSERT_TRUE(sched.Admit({.id = 4, .deadline_ms = 1.0, .priority = 5}));
  auto expired = sched.ExpireDeadlines(2.0);
  ASSERT_EQ(expired.size(), 2u);
  // Expiry reports in admission order, regardless of priority...
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(expired[1].id, 4u);
  // ...and survivors still pop in priority-then-FIFO order.
  EXPECT_EQ(sched.PopNext()->id, 2u);
  EXPECT_EQ(sched.PopNext()->id, 3u);
}

TEST(QueryScheduler, PoppedRequestsAreNeverReportedExpired) {
  QueryScheduler sched(8);
  ASSERT_TRUE(sched.Admit({.id = 1, .deadline_ms = 1.0}));
  ASSERT_EQ(sched.PopNext()->id, 1u);
  // Once dispatched, the request is the batcher's problem; a later sweep
  // must not double-report it.
  EXPECT_TRUE(sched.ExpireDeadlines(100.0).empty());
  EXPECT_EQ(sched.Depth(), 0u);
}

TEST(QueryScheduler, NoDeadlineNeverExpires) {
  QueryScheduler sched(8);
  Request r{.id = 1, .arrival_ms = 0.0, .deadline_ms = kNoDeadline};
  ASSERT_TRUE(sched.Admit(r));
  EXPECT_FALSE(r.ExpiredAt(1e12));
  EXPECT_TRUE(sched.ExpireDeadlines(1e12).empty());
}

// --- Engine end-to-end --------------------------------------------------------

TEST(ServeEngine, BatchedResultsMatchSequentialSession) {
  graph::Csr csr = RandomGraph(14);
  TraceOptions trace_options;
  trace_options.num_requests = 32;
  auto trace = GenerateTrace(csr.NumVertices(), trace_options);

  ServeOptions sequential;
  sequential.mode = ServeMode::kSession;
  ServeOptions batched;
  batched.mode = ServeMode::kSessionBatched;
  auto seq_report = ServeEngine(sequential).Serve(csr, trace);
  auto bat_report = ServeEngine(batched).Serve(csr, trace);

  ASSERT_EQ(seq_report.completed, trace.size());
  ASSERT_EQ(bat_report.completed, trace.size());
  // Folding must actually happen on this trace...
  EXPECT_GT(bat_report.batch_occupancy.Max(), 1u);
  // ...and must not change any request's answer.
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(bat_report.results[i].id, seq_report.results[i].id);
    EXPECT_EQ(bat_report.results[i].status, QueryStatus::kOk);
    EXPECT_EQ(bat_report.results[i].reached_vertices,
              seq_report.results[i].reached_vertices)
        << "request " << i;
  }
}

TEST(ServeEngine, ExpiredDeadlinesBecomeTimeouts) {
  graph::Csr csr = RandomGraph(15);
  // All requests arrive while the graph is still loading; the impatient
  // ones can never be dispatched before their start deadline.
  std::vector<Request> trace;
  for (uint64_t i = 0; i < 4; ++i) {
    Request r;
    r.id = i;
    r.algo = core::Algo::kBfs;
    r.source = static_cast<graph::VertexId>(i);
    r.arrival_ms = 0;
    r.deadline_ms = i == 0 ? kNoDeadline : 1e-6;
    trace.push_back(r);
  }
  ServeOptions options;
  options.mode = ServeMode::kSession;
  auto report = ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.timed_out, 3u);
  EXPECT_EQ(report.results[0].status, QueryStatus::kOk);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(report.results[i].status, QueryStatus::kTimedOut);
  }
}

TEST(ServeEngine, OverflowingQueueRejectsExplicitly) {
  graph::Csr csr = RandomGraph(16);
  std::vector<Request> trace;
  for (uint64_t i = 0; i < 4; ++i) {
    trace.push_back({.id = i, .algo = core::Algo::kBfs,
                     .source = static_cast<graph::VertexId>(i), .arrival_ms = 0});
  }
  ServeOptions options;
  options.mode = ServeMode::kSession;
  options.queue_capacity = 1;
  auto report = ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.rejected, 3u);
  EXPECT_EQ(report.results[0].status, QueryStatus::kOk);
}

TEST(ServeEngine, ReportIsDeterministic) {
  graph::Csr csr = RandomGraph(17);
  TraceOptions trace_options;
  trace_options.num_requests = 24;
  trace_options.deadline_ms = 50.0;
  auto trace = GenerateTrace(csr.NumVertices(), trace_options);

  ServeOptions options;  // kSessionBatched default
  auto first = ServeEngine(options).Serve(csr, trace);
  auto second = ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(first.Render("replay"), second.Render("replay"));
  EXPECT_EQ(first.Json(), second.Json());
  ASSERT_EQ(first.results.size(), second.results.size());
  for (size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].status, second.results[i].status);
    EXPECT_EQ(first.results[i].reached_vertices, second.results[i].reached_vertices);
    EXPECT_DOUBLE_EQ(first.results[i].finish_ms, second.results[i].finish_ms);
  }
}

}  // namespace
}  // namespace eta::serve
