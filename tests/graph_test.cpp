// Tests for src/graph: CSR construction and invariants, transpose, weight
// derivation, generators, and the Table I space model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/space_model.hpp"
#include "graph/stats.hpp"

namespace eta::graph {
namespace {

std::vector<Edge> DiamondEdges() {
  // 0 -> {1,2} -> 3, plus 3 -> 0 back edge.
  return {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}};
}

TEST(Builder, BasicCsrShape) {
  Csr csr = BuildCsr(DiamondEdges());
  EXPECT_EQ(csr.NumVertices(), 4u);
  EXPECT_EQ(csr.NumEdges(), 5u);
  EXPECT_EQ(csr.OutDegree(0), 2u);
  EXPECT_EQ(csr.OutDegree(3), 1u);
  EXPECT_TRUE(csr.Validate());
}

TEST(Builder, RemovesSelfLoopsAndDuplicates) {
  std::vector<Edge> edges = {{0, 1}, {0, 1}, {1, 1}, {1, 2}};
  Csr csr = BuildCsr(std::move(edges));
  EXPECT_EQ(csr.NumEdges(), 2u);  // one duplicate, one self loop removed
}

TEST(Builder, KeepsDuplicatesWhenAsked) {
  std::vector<Edge> edges = {{0, 1}, {0, 1}};
  Csr csr = BuildCsr(std::move(edges), {.remove_duplicates = false});
  EXPECT_EQ(csr.NumEdges(), 2u);
}

TEST(Builder, MinVerticesPadsIsolatedTail) {
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}}, {.min_vertices = 10});
  EXPECT_EQ(csr.NumVertices(), 10u);
  EXPECT_EQ(csr.OutDegree(9), 0u);
}

TEST(Builder, NeighborsSorted) {
  std::vector<Edge> edges = {{0, 5}, {0, 2}, {0, 9}, {0, 1}};
  Csr csr = BuildCsr(std::move(edges));
  auto nbrs = csr.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Builder, EdgeListRoundTrip) {
  Csr csr = BuildCsr(DiamondEdges());
  std::vector<Edge> back = ToEdgeList(csr);
  std::vector<Edge> expected = DiamondEdges();
  std::sort(expected.begin(), expected.end());
  std::sort(back.begin(), back.end());
  EXPECT_EQ(back, expected);
}

TEST(Csr, TransposeInvertsEdges) {
  Csr csr = BuildCsr(DiamondEdges());
  Csr t = csr.Transpose();
  ASSERT_TRUE(t.Validate());
  EXPECT_EQ(t.NumEdges(), csr.NumEdges());
  // Every edge (u,v) appears as (v,u).
  std::vector<Edge> orig = ToEdgeList(csr);
  std::vector<Edge> flipped = ToEdgeList(t);
  for (Edge& e : flipped) std::swap(e.src, e.dst);
  std::sort(orig.begin(), orig.end());
  std::sort(flipped.begin(), flipped.end());
  EXPECT_EQ(orig, flipped);
}

TEST(Csr, TransposeIsInvolution) {
  RmatParams params;
  params.scale = 8;
  params.num_edges = 1000;
  Csr csr = BuildCsr(GenerateRmat(params));
  Csr back = csr.Transpose().Transpose();
  EXPECT_EQ(std::vector<EdgeId>(csr.RowOffsets().begin(), csr.RowOffsets().end()),
            std::vector<EdgeId>(back.RowOffsets().begin(), back.RowOffsets().end()));
}

TEST(Csr, DeriveWeightsDeterministicAndInRange) {
  Csr a = BuildCsr(DiamondEdges());
  Csr b = BuildCsr(DiamondEdges());
  a.DeriveWeights(42, 63);
  b.DeriveWeights(42, 63);
  EXPECT_EQ(std::vector<Weight>(a.Weights().begin(), a.Weights().end()),
            std::vector<Weight>(b.Weights().begin(), b.Weights().end()));
  for (Weight w : a.Weights()) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 63u);
  }
  b.DeriveWeights(43, 63);
  EXPECT_NE(std::vector<Weight>(a.Weights().begin(), a.Weights().end()),
            std::vector<Weight>(b.Weights().begin(), b.Weights().end()));
}

TEST(Csr, TopologyBytesMatchesTableOneFormula) {
  Csr csr = BuildCsr(DiamondEdges());
  EXPECT_EQ(csr.TopologyBytes(), 4 * (csr.NumEdges() + csr.NumVertices() + 1));
}

// --- Generators -------------------------------------------------------------

TEST(Rmat, DeterministicForSeed) {
  RmatParams params;
  params.scale = 10;
  params.num_edges = 5000;
  params.seed = 7;
  auto a = GenerateRmat(params);
  auto b = GenerateRmat(params);
  EXPECT_EQ(a, b);
  params.seed = 8;
  EXPECT_NE(GenerateRmat(params), a);
}

TEST(Rmat, RespectsScaleBound) {
  RmatParams params;
  params.scale = 9;
  params.num_edges = 20000;
  for (const Edge& e : GenerateRmat(params)) {
    EXPECT_LT(e.src, 512u);
    EXPECT_LT(e.dst, 512u);
  }
}

TEST(Rmat, SkewedDegreeDistribution) {
  RmatParams params;
  params.scale = 12;
  params.num_edges = 1 << 16;
  Csr csr = BuildCsr(GenerateRmat(params), {.remove_duplicates = false});
  GraphStats stats = ComputeStats(csr);
  // Power-law-ish: the max degree should far exceed the average.
  EXPECT_GT(stats.max_out_degree, 20 * stats.avg_degree);
}

TEST(ErdosRenyi, UniformDegrees) {
  Csr csr = BuildCsr(GenerateErdosRenyi(1000, 50000, 3), {.remove_duplicates = false});
  GraphStats stats = ComputeStats(csr);
  // Poisson degrees: max degree stays within a small factor of the mean.
  EXPECT_LT(stats.max_out_degree, 4 * stats.avg_degree);
}

TEST(WebGraph, HitsDiameterAndLccTargets) {
  WebGraphParams params;
  params.num_vertices = 30000;
  params.num_edges = 300000;
  params.num_communities = 20;
  params.lcc_fraction = 0.6;
  params.community_depth = 3;
  Csr csr = BuildCsr(GenerateWebGraph(params));
  auto reach = ComputeReachability(csr, 0);
  // ~num_communities * depth iterations (chain structure), generous bounds.
  EXPECT_GE(reach.iterations, 40u);
  EXPECT_LE(reach.iterations, 80u);
  GraphStats stats = ComputeStats(csr);
  EXPECT_NEAR(stats.lcc_fraction, 0.6, 0.08);
  // Reachable set == the chain (the LCC), nothing else.
  EXPECT_NEAR(static_cast<double>(reach.visited) / stats.num_vertices, 0.6, 0.08);
}

TEST(MirrorEdges, AddsReverses) {
  std::vector<Edge> edges = {{0, 1}, {2, 3}};
  auto full = MirrorEdges(edges, 1.0, 1);
  ASSERT_EQ(full.size(), 4u);
  EXPECT_EQ(full[2], (Edge{1, 0}));
  EXPECT_EQ(full[3], (Edge{3, 2}));
  auto none = MirrorEdges(edges, 0.0, 1);
  EXPECT_EQ(none.size(), 2u);
}

TEST(CompactVertexIds, DropsPhantoms) {
  std::vector<Edge> edges = {{10, 20}, {20, 900}};
  VertexId n = 0;
  auto compact = CompactVertexIds(std::move(edges), &n);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(compact[0], (Edge{0, 1}));
  EXPECT_EQ(compact[1], (Edge{1, 2}));
}

TEST(AppendTailChain, ExtendsBfsDepth) {
  std::vector<Edge> edges = {{0, 1}};
  auto with_tail = AppendTailChain(std::move(edges), /*attach=*/0, /*first_new_id=*/2,
                                   /*depth=*/10, /*width=*/4, 9);
  Csr csr = BuildCsr(std::move(with_tail));
  auto reach = ComputeReachability(csr, 0);
  EXPECT_GE(reach.iterations, 10u);
  EXPECT_EQ(reach.visited, 2u + 10 * 4);
}

TEST(PlantTinySourceComponent, IsolatesSource) {
  std::vector<Edge> host = GenerateErdosRenyi(500, 4000, 4);
  auto planted = PlantTinySourceComponent(std::move(host), /*component_size=*/50,
                                          /*depth=*/4, 11);
  Csr csr = BuildCsr(std::move(planted));
  auto reach = ComputeReachability(csr, 0);
  EXPECT_EQ(reach.visited, 50u);
  EXPECT_EQ(reach.iterations, 4u);
}

// --- Stats -------------------------------------------------------------------

TEST(Stats, LccOnDisconnectedGraph) {
  // Component A: 0-1-2 (3 vertices); component B: 3-4 (2 vertices);
  // vertex 5 isolated.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  Csr csr = BuildCsr(std::move(edges), {.min_vertices = 6});
  GraphStats stats = ComputeStats(csr);
  EXPECT_DOUBLE_EQ(stats.lcc_fraction, 3.0 / 6.0);
  EXPECT_EQ(stats.num_isolated, 1u);
}

TEST(Stats, ReachabilityOnChain) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  Csr csr = BuildCsr(std::move(edges));
  auto reach = ComputeReachability(csr, 0);
  EXPECT_EQ(reach.visited, 5u);
  EXPECT_EQ(reach.iterations, 4u);
  auto from_tail = ComputeReachability(csr, 4);
  EXPECT_EQ(from_tail.visited, 1u);
  EXPECT_EQ(from_tail.iterations, 0u);
}

// --- Space model (Table I) ---------------------------------------------------

TEST(SpaceModel, ShadowCountFormula) {
  // Out-degrees: v0=2, v1=1, v2=1, v3=1.
  Csr csr = BuildCsr(DiamondEdges());
  EXPECT_EQ(CountShadowVertices(csr, 2), 4u);   // ceil: 1+1+1+1
  EXPECT_EQ(CountShadowVertices(csr, 1), 5u);   // one per edge
  EXPECT_EQ(CountShadowVertices(csr, 100), 4u);  // one per nonzero vertex
}

TEST(SpaceModel, TableOneRows) {
  Csr csr = BuildCsr(DiamondEdges());  // |E|=5, |V|=4
  auto rows = ComputeSpaceModel(csr, /*degree_limit=*/10);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].structure, "G-Shard");
  EXPECT_EQ(rows[0].words, 10u);  // 2|E|
  EXPECT_EQ(rows[1].words, 10u);  // edge list
  EXPECT_EQ(rows[2].words, 5u + 2 * 4 + 2 * 4);  // VST (|N|=4 at K=10)
  EXPECT_EQ(rows[3].words, 9u);   // CSR
  EXPECT_DOUBLE_EQ(rows[3].normalized, 1.0);
  EXPECT_NEAR(rows[0].normalized, 10.0 / 9.0, 1e-12);
}

TEST(SpaceModel, LiveJournalRatiosMatchPaper) {
  // The paper's Table I reports G-Shard/EdgeList at 1.87x and VST at 1.32x
  // of CSR for LiveJournal. The ratios depend only on |E|/|V| and the
  // shadow count, so the stand-in reproduces them approximately.
  RmatParams params;  // LJ-like: avg degree ~14
  params.scale = 14;
  params.num_edges = 14 * (1 << 14);
  Csr csr = BuildCsr(GenerateRmat(params));
  auto rows = ComputeSpaceModel(csr, 10);
  EXPECT_NEAR(rows[0].normalized, 1.87, 0.15);
  EXPECT_GT(rows[2].normalized, 1.0);
  EXPECT_LT(rows[2].normalized, rows[0].normalized);
}

}  // namespace
}  // namespace eta::graph
