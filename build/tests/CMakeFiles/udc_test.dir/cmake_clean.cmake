file(REMOVE_RECURSE
  "CMakeFiles/udc_test.dir/udc_test.cpp.o"
  "CMakeFiles/udc_test.dir/udc_test.cpp.o.d"
  "udc_test"
  "udc_test.pdb"
  "udc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
