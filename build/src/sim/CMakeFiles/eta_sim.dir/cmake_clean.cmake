file(REMOVE_RECURSE
  "CMakeFiles/eta_sim.dir/cache.cpp.o"
  "CMakeFiles/eta_sim.dir/cache.cpp.o.d"
  "CMakeFiles/eta_sim.dir/device.cpp.o"
  "CMakeFiles/eta_sim.dir/device.cpp.o.d"
  "CMakeFiles/eta_sim.dir/memory.cpp.o"
  "CMakeFiles/eta_sim.dir/memory.cpp.o.d"
  "CMakeFiles/eta_sim.dir/profiler.cpp.o"
  "CMakeFiles/eta_sim.dir/profiler.cpp.o.d"
  "CMakeFiles/eta_sim.dir/timeline.cpp.o"
  "CMakeFiles/eta_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/eta_sim.dir/unified_memory.cpp.o"
  "CMakeFiles/eta_sim.dir/unified_memory.cpp.o.d"
  "libeta_sim.a"
  "libeta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
