// ASCII table rendering for paper-style output.
//
// Every bench binary prints its reproduction of a paper table/figure as a
// plain-text table on stdout; this class handles column sizing and
// alignment so each bench focuses on the data.
#pragma once

#include <string>
#include <vector>

namespace eta::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void AddRule();

  /// Renders the table with a title line, column rules, and right-aligned
  /// numeric-looking cells.
  std::string Render(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row encodes a rule
};

/// Formats a double with the given precision, trimming trailing zeros.
std::string FormatDouble(double value, int precision = 2);

/// "12.3 ms" / "1.23 s" style duration formatting from milliseconds.
std::string FormatMs(double ms);

}  // namespace eta::util
