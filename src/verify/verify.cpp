#include "verify/verify.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "sim/stream.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace eta::verify {

namespace {

/// snprintf into a std::string, matching the sanitizer-report style. Long
/// chunks (e.g. a pathological buffer or stream label) retry into the
/// string itself instead of silently truncating at the stack-buffer size.
template <typename... Args>
void Appendf(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n <= 0) return;
  if (static_cast<size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<size_t>(n));
    return;
  }
  const size_t base = out.size();
  out.resize(base + static_cast<size_t>(n) + 1);
  std::snprintf(out.data() + base, static_cast<size_t>(n) + 1, fmt, args...);
  out.resize(base + static_cast<size_t>(n));
}

const char* KindDescription(DagFindingKind kind) {
  switch (kind) {
    case DagFindingKind::kRaceWriteWrite: return "unordered cross-stream writes to";
    case DagFindingKind::kRaceReadWrite: return "unordered cross-stream read/write of";
    case DagFindingKind::kUseBeforeReady: return "read with no ordered staging write of";
    case DagFindingKind::kWaitUnrecorded:
      return "wait on an event never recorded before it";
    case DagFindingKind::kWaitCycle:
      return "wait satisfiable only by a record ordered after it";
    case DagFindingKind::kOrphanStream:
      return "stream tail never observed by any host join";
  }
  return "?";
}

/// Dense bitset reachability over the DAG log. Every edge points backward
/// in log order, so one forward pass closes the relation: row i holds
/// every node that happens-before node i.
class Reach {
 public:
  explicit Reach(size_t n) : words_((n + 63) / 64), bits_(n * words_, 0) {}

  /// Declares `pred` (pred < node) a direct predecessor of `node`,
  /// folding in pred's already-closed ancestry.
  void AddPred(size_t node, size_t pred) {
    uint64_t* row = &bits_[node * words_];
    const uint64_t* pred_row = &bits_[pred * words_];
    for (size_t w = 0; w < words_; ++w) row[w] |= pred_row[w];
    row[pred / 64] |= uint64_t{1} << (pred % 64);
  }

  /// a happens-before b; callers ensure a < b in log order.
  bool Before(size_t a, size_t b) const {
    return ((bits_[b * words_ + a / 64] >> (a % 64)) & 1) != 0;
  }

 private:
  size_t words_;
  std::vector<uint64_t> bits_;
};

}  // namespace

const char* DagFindingKindName(DagFindingKind kind) {
  switch (kind) {
    case DagFindingKind::kRaceWriteWrite: return "race-write-write";
    case DagFindingKind::kRaceReadWrite: return "race-read-write";
    case DagFindingKind::kUseBeforeReady: return "use-before-ready";
    case DagFindingKind::kWaitUnrecorded: return "wait-unrecorded";
    case DagFindingKind::kWaitCycle: return "wait-cycle";
    case DagFindingKind::kOrphanStream: return "orphan-stream";
  }
  return "?";
}

std::string DagFinding::Message() const {
  std::string out;
  Appendf(out, "ERROR [etaverify] %s: %s", DagFindingKindName(kind),
          KindDescription(kind));
  if (!buffer.empty()) Appendf(out, " %s", buffer.c_str());
  Appendf(out, " in '%s' on stream %s (op %" PRIu64 ")", op.c_str(), stream.c_str(),
          op_index);
  if (peer_index != kNoNode) {
    Appendf(out, " vs '%s' on stream %s (op %" PRIu64 ")", peer_op.c_str(),
            peer_stream.c_str(), peer_index);
  }
  if (occurrences > 1) Appendf(out, " (x%" PRIu64 ")", occurrences);
  if (!note.empty()) out += " — " + note;
  return out;
}

uint64_t DagReport::Count() const {
  uint64_t n = 0;
  for (const DagFinding& f : findings) n += f.occurrences;
  return n;
}

void DagReport::Merge(const DagReport& other) {
  ops_checked += other.ops_checked;
  streams_checked += other.streams_checked;
  allocs_checked += other.allocs_checked;
  events_checked += other.events_checked;
  for (const DagFinding& f : other.findings) {
    bool merged = false;
    for (DagFinding& mine : findings) {
      if (mine.kind == f.kind && mine.stream == f.stream && mine.op == f.op &&
          mine.buffer == f.buffer) {
        mine.occurrences += f.occurrences;
        merged = true;
        break;
      }
    }
    if (!merged) findings.push_back(f);
  }
}

std::string DagReport::Render(bool verbose) const {
  if (findings.empty() && !verbose) return "";
  std::string out;
  Appendf(out,
          "========= etaverify: %" PRIu64 " finding(s) over %" PRIu64 " op(s), %" PRIu64
          " stream(s), %" PRIu64 " alloc(s), %" PRIu64 " event(s)\n",
          Count(), ops_checked, streams_checked, allocs_checked, events_checked);
  for (const DagFinding& f : findings) {
    out += "=========   " + f.Message() + "\n";
  }
  return out;
}

std::string DagReport::Json() const {
  std::string out = "{\n";
  Appendf(out, "  \"findings_total\": %" PRIu64 ",\n", Count());
  Appendf(out, "  \"ops_checked\": %" PRIu64 ",\n", ops_checked);
  Appendf(out, "  \"streams_checked\": %" PRIu64 ",\n", streams_checked);
  Appendf(out, "  \"allocs_checked\": %" PRIu64 ",\n", allocs_checked);
  Appendf(out, "  \"events_checked\": %" PRIu64 ",\n", events_checked);
  out += "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const DagFinding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    Appendf(out, "\"kind\": \"%s\", ", DagFindingKindName(f.kind));
    Appendf(out, "\"stream\": \"%s\", ", util::JsonEscape(f.stream).c_str());
    Appendf(out, "\"op\": \"%s\", ", util::JsonEscape(f.op).c_str());
    Appendf(out, "\"op_index\": %" PRIu64 ", ", f.op_index);
    Appendf(out, "\"buffer\": \"%s\", ", util::JsonEscape(f.buffer).c_str());
    if (f.peer_index != DagFinding::kNoNode) {
      Appendf(out, "\"peer_stream\": \"%s\", ", util::JsonEscape(f.peer_stream).c_str());
      Appendf(out, "\"peer_op\": \"%s\", ", util::JsonEscape(f.peer_op).c_str());
      Appendf(out, "\"peer_index\": %" PRIu64 ", ", f.peer_index);
    }
    Appendf(out, "\"occurrences\": %" PRIu64 "}", f.occurrences);
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}";
  return out;
}

DagReport VerifyDag(const sim::StreamScheduler& streams) {
  using sim::DagNode;
  DagReport rep;
  const std::vector<DagNode>& nodes = streams.DagNodes();
  const std::vector<std::string>& allocs = streams.DagAllocs();
  rep.allocs_checked = allocs.size();
  const size_t n = nodes.size();
  if (n == 0) return rep;

  // --- Close happens-before over the log's backward-pointing edges. ----
  Reach reach(n);
  std::map<uint32_t, size_t> last_op;      // stream id -> latest kOp node
  std::map<uint32_t, size_t> last_record;  // event id -> latest record node
  std::set<uint32_t> events;
  std::vector<size_t> joins;
  size_t latest_join = DagFinding::kNoNode;

  for (size_t i = 0; i < n; ++i) {
    const DagNode& node = nodes[i];
    if (node.type == DagNode::Type::kJoin) {
      if (node.stream == DagNode::kNoStream) {
        for (const auto& [stream, idx] : last_op) reach.AddPred(i, idx);
      } else if (auto it = last_op.find(node.stream); it != last_op.end()) {
        reach.AddPred(i, it->second);
      }
      if (latest_join != DagFinding::kNoNode) reach.AddPred(i, latest_join);
      latest_join = i;
      joins.push_back(i);
      continue;
    }
    ++rep.ops_checked;
    if (auto it = last_op.find(node.stream); it != last_op.end()) {
      reach.AddPred(i, it->second);
    }
    if (latest_join != DagFinding::kNoNode) reach.AddPred(i, latest_join);
    if (node.kind == sim::StreamOpKind::kWait && node.bound) {
      auto it = last_record.find(node.event);
      ETA_CHECK(it != last_record.end());  // bound: a record preceded in log order
      reach.AddPred(i, it->second);
    }
    if (node.kind == sim::StreamOpKind::kRecord) last_record[node.event] = i;
    if (node.event != DagNode::kNoEvent) events.insert(node.event);
    last_op[node.stream] = i;
  }
  rep.streams_checked = last_op.size();
  rep.events_checked = events.size();

  auto stream_name = [&](uint32_t id) {
    sim::Stream s;
    s.id = id;
    s.valid = true;
    return streams.StreamName(s);
  };
  auto add_finding = [&](DagFinding f) {
    for (DagFinding& mine : rep.findings) {
      if (mine.kind == f.kind && mine.stream == f.stream && mine.op == f.op &&
          mine.buffer == f.buffer) {
        ++mine.occurrences;
        return;
      }
    }
    rep.findings.push_back(std::move(f));
  };
  auto attribute = [&](DagFinding& f, size_t node) {
    f.stream = stream_name(nodes[node].stream);
    f.op = nodes[node].label;
    f.op_index = node;
  };
  auto attribute_peer = [&](DagFinding& f, size_t node) {
    f.peer_stream = stream_name(nodes[node].stream);
    f.peer_op = nodes[node].label;
    f.peer_index = node;
  };

  // --- Per-allocation access lists (cancelled ops never ran — their
  // functors were skipped — so they contribute no accesses). -----------
  struct Access {
    size_t node = 0;
    bool write = false;
  };
  std::vector<std::vector<Access>> by_alloc(allocs.size());
  for (size_t i = 0; i < n; ++i) {
    const DagNode& node = nodes[i];
    if (node.type != DagNode::Type::kOp || node.cancelled) continue;
    for (const sim::DagAccess& a : node.accesses) {
      ETA_CHECK(a.alloc < allocs.size());
      by_alloc[a.alloc].push_back({i, a.write});
    }
  }

  // --- (a) Races: conflicting cross-stream accesses with no ordering. --
  for (size_t al = 0; al < by_alloc.size(); ++al) {
    const std::vector<Access>& accs = by_alloc[al];
    for (size_t x = 0; x < accs.size(); ++x) {
      for (size_t y = x + 1; y < accs.size(); ++y) {
        const Access& a = accs[x];  // log order: a.node <= b.node
        const Access& b = accs[y];
        if (!a.write && !b.write) continue;
        if (a.node == b.node) continue;  // one op's own accesses
        if (nodes[a.node].stream == nodes[b.node].stream) continue;
        if (reach.Before(a.node, b.node)) continue;
        DagFinding f;
        f.kind = (a.write && b.write) ? DagFindingKind::kRaceWriteWrite
                                      : DagFindingKind::kRaceReadWrite;
        attribute(f, b.node);
        f.buffer = allocs[al];
        attribute_peer(f, a.node);
        f.note = "no happens-before path between the accesses";
        add_finding(std::move(f));
      }
    }
  }

  // --- (b) Use-before-ready: a read no staging write is ordered before. -
  for (size_t al = 0; al < by_alloc.size(); ++al) {
    const std::vector<Access>& accs = by_alloc[al];
    for (const Access& a : accs) {
      if (a.write) continue;
      bool ready = false;
      for (const Access& w : accs) {
        if (!w.write) continue;
        if (w.node == a.node ||
            (w.node < a.node && reach.Before(w.node, a.node))) {
          ready = true;
          break;
        }
      }
      if (ready) continue;
      DagFinding f;
      f.kind = DagFindingKind::kUseBeforeReady;
      attribute(f, a.node);
      f.buffer = allocs[al];
      f.note = "the consumer may observe an unstaged buffer";
      add_finding(std::move(f));
    }
  }

  // --- (c)+(d) Unbound waits: silent no-ops, or deadlocks when the only
  // satisfying record is ordered after the wait. ------------------------
  for (size_t i = 0; i < n; ++i) {
    const DagNode& node = nodes[i];
    if (node.type != DagNode::Type::kOp || node.kind != sim::StreamOpKind::kWait ||
        node.bound || node.cancelled) {
      continue;
    }
    size_t later_record = DagFinding::kNoNode;
    bool ordered_after = false;
    for (size_t j = i + 1; j < n; ++j) {
      const DagNode& r = nodes[j];
      if (r.type != DagNode::Type::kOp || r.kind != sim::StreamOpKind::kRecord ||
          r.event != node.event) {
        continue;
      }
      later_record = j;
      ordered_after = reach.Before(i, j);
      break;
    }
    DagFinding f;
    attribute(f, i);
    if (later_record != DagFinding::kNoNode && ordered_after) {
      f.kind = DagFindingKind::kWaitCycle;
      attribute_peer(f, later_record);
      Appendf(f.note, "event %u: a blocking wait here can never be satisfied",
              node.event);
    } else {
      f.kind = DagFindingKind::kWaitUnrecorded;
      if (later_record != DagFinding::kNoNode) {
        attribute_peer(f, later_record);
        Appendf(f.note,
                "event %u is recorded only later — likely a swapped Record/Wait pair; "
                "snapshot semantics make this wait a no-op",
                node.event);
      } else {
        Appendf(f.note, "event %u is never recorded; this wait is a silent no-op",
                node.event);
      }
    }
    add_finding(std::move(f));
  }

  // --- (c) Orphan streams: tail work no host join ever observes. -------
  for (const auto& [stream, idx] : last_op) {
    bool joined = false;
    for (size_t j : joins) {
      if (j > idx && reach.Before(idx, j)) {
        joined = true;
        break;
      }
    }
    if (joined) continue;
    DagFinding f;
    f.kind = DagFindingKind::kOrphanStream;
    attribute(f, idx);
    f.note = "the host finishes without ever observing this stream complete";
    add_finding(std::move(f));
  }

  return rep;
}

}  // namespace eta::verify
