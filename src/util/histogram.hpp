// Simple value-accumulating histogram used for migrated-page-size stats
// (Table V) and degree-distribution reporting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace eta::util {

class Histogram {
 public:
  void Add(uint64_t value) {
    sum_ += value;
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    values_.push_back(value);
  }

  uint64_t Count() const { return count_; }
  uint64_t Sum() const { return sum_; }
  uint64_t Min() const { return count_ ? min_ : 0; }
  uint64_t Max() const { return count_ ? max_ : 0; }
  double Mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }

  /// q in [0,1]; nearest-rank percentile. Requires at least one sample.
  uint64_t Percentile(double q) const {
    ETA_CHECK(count_ > 0);
    std::vector<uint64_t> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  const std::vector<uint64_t>& Values() const { return values_; }

 private:
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
  std::vector<uint64_t> values_;
};

}  // namespace eta::util
