// Lightweight runtime-check macros used throughout the library.
//
// ETA_CHECK fires in every build type; it guards invariants whose violation
// would silently corrupt a simulation (wrong counters are worse than a
// crash in a research artifact). ETA_DCHECK compiles out in NDEBUG builds
// and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace eta::util {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace eta::util

#define ETA_CHECK(cond)                                           \
  do {                                                            \
    if (!(cond)) ::eta::util::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define ETA_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define ETA_DCHECK(cond) ETA_CHECK(cond)
#endif
