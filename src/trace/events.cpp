#include "trace/events.hpp"

namespace eta::trace {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kAdmit: return "admit";
    case EventKind::kReject: return "reject";
    case EventKind::kShed: return "shed";
    case EventKind::kBrownout: return "brownout";
    case EventKind::kRouteCandidate: return "route-candidate";
    case EventKind::kRoute: return "route";
    case EventKind::kTimeout: return "timeout";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kWave: return "wave";
    case EventKind::kFault: return "fault";
    case EventKind::kRebuild: return "rebuild";
    case EventKind::kReroute: return "reroute";
    case EventKind::kCpuFallback: return "cpu-fallback";
    case EventKind::kComplete: return "complete";
    case EventKind::kMemo: return "memo";
    case EventKind::kScale: return "scale";
  }
  return "?";
}

const char* EventStatusName(EventKind kind, uint8_t status) {
  switch (kind) {
    case EventKind::kShed:
      switch (static_cast<ShedReason>(status)) {
        case ShedReason::kPredictive: return "predictive";
        case ShedReason::kPressure: return "pressure";
        case ShedReason::kQueueFull: return "queue-full";
      }
      return "?";
    case EventKind::kFault:
      switch (static_cast<FaultClass>(status)) {
        case FaultClass::kOther: return "other";
        case FaultClass::kEccUncorrectable: return "uecc";
        case FaultClass::kKernelTimeout: return "hang";
        case FaultClass::kDeviceLost: return "device-lost";
      }
      return "?";
    case EventKind::kComplete:
      // Mirrors serve::QueryStatusName (the trace library sits below
      // serve and cannot include it).
      switch (status) {
        case 0: return "ok";
        case 1: return "rejected";
        case 2: return "timed-out";
        case 3: return "degraded";
        case 4: return "shedded";
      }
      return "?";
    default:
      return "";
  }
}

}  // namespace eta::trace
