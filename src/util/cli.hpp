// Tiny command-line flag parser shared by the bench and example binaries.
//
// Supports "--name=value", "--name value" and boolean "--name" forms.
// Unknown flags are an error: bench binaries are the reproducibility
// surface of this repo and a silently-ignored typo in a sweep parameter
// would invalidate results.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace eta::util {

class CommandLine {
 public:
  /// Parses argv. On error (malformed flag) returns std::nullopt and writes
  /// a message to *error.
  static std::optional<CommandLine> Parse(int argc, const char* const* argv,
                                          std::string* error);

  /// Flag accessors with defaults. GetInt/GetDouble abort on unparsable
  /// values (a sweep must not continue with a bogus parameter).
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  bool Has(const std::string& name) const { return flags_.contains(name); }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& Positional() const { return positional_; }

  /// Flags seen but never read; used by binaries to reject typos.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace eta::util
