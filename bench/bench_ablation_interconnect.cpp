// Interconnect-bandwidth ablation, testing the paper's claim that
// "EtaGraph has [a] performance advantage over Gunrock and Tigr, even if
// [a] higher-bandwidth CPU-GPU interconnect (NVLink, etc.) is equipped"
// (Section VI-C). Sweeps the host-device link from PCIe 3.0 x16 up through
// NVLink-class bandwidths and re-runs the frameworks: the faster the link,
// the smaller EtaGraph's transfer advantage — but its kernel efficiency
// (UDC + frontier + SMP) keeps it ahead.
#include "baselines/gunrock.hpp"
#include "baselines/tigr.hpp"
#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal", "uk2005"});

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    util::Table table({"Link GB/s", "Tigr total", "Gunrock total", "EtaGraph total",
                       "EtaGraph vs best baseline"});
    for (double gbps : {12.0, 25.0, 50.0, 80.0}) {
      sim::DeviceSpec spec;
      spec.pcie_gb_per_s = gbps;

      baselines::TigrOptions topt;
      topt.spec = spec;
      auto tigr = baselines::Tigr(topt).Run(csr, core::Algo::kSssp, graph::kQuerySource);
      baselines::GunrockOptions gopt;
      gopt.spec = spec;
      auto gunrock =
          baselines::Gunrock(gopt).Run(csr, core::Algo::kSssp, graph::kQuerySource);
      core::EtaGraphOptions eopt;
      eopt.spec = spec;
      auto eta = core::EtaGraph(eopt).Run(csr, core::Algo::kSssp, graph::kQuerySource);

      double best_baseline = 1e300;
      if (!tigr.oom) best_baseline = std::min(best_baseline, tigr.total_ms);
      if (!gunrock.oom) best_baseline = std::min(best_baseline, gunrock.total_ms);
      table.AddRow({util::FormatDouble(gbps, 0),
                    tigr.oom ? "O.O.M" : util::FormatDouble(tigr.total_ms, 2),
                    gunrock.oom ? "O.O.M" : util::FormatDouble(gunrock.total_ms, 2),
                    util::FormatDouble(eta.total_ms, 2),
                    util::FormatDouble(best_baseline / eta.total_ms, 2) + "x"});
    }
    std::printf("%s\n", table.Render("Ablation - interconnect bandwidth sweep (SSSP on " +
                                     graph::FindDataset(name)->paper_name +
                                     "); paper claim: EtaGraph stays ahead even with "
                                     "NVLink-class links")
                            .c_str());
  }
  return 0;
}
