#include "sim/timeline.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace eta::sim {

void Timeline::Add(SpanKind kind, double start_ms, double end_ms, std::string label) {
  ETA_CHECK(end_ms >= start_ms);
  spans_.push_back({kind, start_ms, end_ms, std::move(label)});
}

double Timeline::TotalMs(SpanKind kind) const {
  double total = 0;
  for (const Span& s : spans_) {
    if (s.kind == kind) total += s.Duration();
  }
  return total;
}

double Timeline::OverlapMs() const {
  double overlap = 0;
  for (const Span& c : spans_) {
    if (c.kind != SpanKind::kCompute) continue;
    for (const Span& t : spans_) {
      if (t.kind == SpanKind::kCompute || t.kind == SpanKind::kStall) continue;
      double lo = std::max(c.start_ms, t.start_ms);
      double hi = std::min(c.end_ms, t.end_ms);
      if (hi > lo) overlap += hi - lo;
    }
  }
  return overlap;
}

std::string Timeline::RenderAscii(double horizon_ms, uint32_t columns) const {
  ETA_CHECK(columns >= 1);
  if (horizon_ms <= 0) horizon_ms = 1;
  std::vector<uint8_t> compute(columns, 0), transfer(columns, 0);
  for (const Span& s : spans_) {
    if (s.kind == SpanKind::kStall) continue;  // idle time renders as '.'
    auto lo = static_cast<int64_t>(s.start_ms / horizon_ms * columns);
    auto hi = static_cast<int64_t>(s.end_ms / horizon_ms * columns);
    lo = std::clamp<int64_t>(lo, 0, columns - 1);
    hi = std::clamp<int64_t>(hi, lo, columns - 1);
    for (int64_t i = lo; i <= hi; ++i) {
      (s.kind == SpanKind::kCompute ? compute : transfer)[static_cast<size_t>(i)] = 1;
    }
  }
  std::string out;
  out.reserve(columns + 1);
  for (uint32_t i = 0; i < columns; ++i) {
    if (compute[i] && transfer[i]) {
      out.push_back('%');
    } else if (compute[i]) {
      out.push_back('#');
    } else if (transfer[i]) {
      out.push_back('=');
    } else {
      out.push_back('.');
    }
  }
  return out;
}

}  // namespace eta::sim
