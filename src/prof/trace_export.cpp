#include "prof/trace_export.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "util/json.hpp"

namespace eta::prof {

namespace {

const char* TimelineThread(sim::SpanKind kind) {
  switch (kind) {
    case sim::SpanKind::kCompute: return "compute";
    case sim::SpanKind::kTransferH2D: return "copy-h2d";
    case sim::SpanKind::kTransferD2H: return "copy-d2h";
    case sim::SpanKind::kStall: return "stall";
  }
  return "?";
}

std::string FormatNumber(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

void Appendf(std::string* out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_list retry;
  va_start(args, fmt);
  va_copy(retry, args);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    if (static_cast<size_t>(n) < sizeof(buf)) {
      out->append(buf, static_cast<size_t>(n));
    } else {
      // Long chunk (e.g. a pathological span label): retry into the string
      // itself instead of silently truncating.
      const size_t base = out->size();
      out->resize(base + static_cast<size_t>(n) + 1);
      std::vsnprintf(out->data() + base, static_cast<size_t>(n) + 1, fmt, retry);
      out->resize(base + static_cast<size_t>(n));
    }
  }
  va_end(retry);
}

}  // namespace

void AppendTimelineSpans(const sim::Timeline& timeline, std::string_view process,
                         double offset_ms, std::vector<TraceSpan>* out) {
  AppendTimelineSpans(std::span<const sim::Span>(timeline.Spans()), process, offset_ms,
                      out);
}

void AppendTimelineSpans(std::span<const sim::Span> spans, std::string_view process,
                         double offset_ms, std::vector<TraceSpan>* out) {
  for (const sim::Span& span : spans) {
    TraceSpan t;
    t.track = std::string(process) + "/" + TimelineThread(span.kind);
    t.name = span.label;
    t.start_ms = span.start_ms + offset_ms;
    t.end_ms = span.end_ms + offset_ms;
    out->push_back(std::move(t));
  }
}

void AppendKernelSpans(std::span<const sim::KernelProfile> profiles,
                       std::string_view process, double offset_ms,
                       std::vector<TraceSpan>* out) {
  for (const sim::KernelProfile& p : profiles) {
    TraceSpan t;
    t.track = std::string(process) + "/kernels";
    t.name = p.name;
    t.start_ms = p.start_ms + offset_ms;
    t.end_ms = p.end_ms + offset_ms;
    t.args.push_back({"launch", std::to_string(p.launch_index), /*number=*/true});
    t.args.push_back({"grid_threads", std::to_string(p.grid_threads), true});
    t.args.push_back({"block_size", std::to_string(p.block_size), true});
    if (p.Ok()) {
      t.args.push_back({"cycles", FormatNumber(p.counters.elapsed_cycles), true});
      t.args.push_back(
          {"warp_instructions", std::to_string(p.counters.warp_instructions), true});
    } else {
      t.args.push_back({"status", sim::LaunchStatusName(p.status), false});
      if (!p.fault_buffer.empty()) t.args.push_back({"fault_buffer", p.fault_buffer, false});
    }
    if (p.ecc_corrected > 0) {
      t.args.push_back({"ecc_corrected", std::to_string(p.ecc_corrected), true});
    }
    out->push_back(std::move(t));
  }
}

std::string RenderChromeTrace(
    const std::vector<TraceSpan>& spans,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  // pid per process, tid per track, both in first-appearance order so the
  // document is a pure function of the span list.
  std::vector<std::string> processes;
  std::vector<std::pair<std::string, std::string>> tracks;  // track -> process
  auto pid_of = [&](const std::string& process) {
    for (size_t i = 0; i < processes.size(); ++i) {
      if (processes[i] == process) return static_cast<int>(i + 1);
    }
    processes.push_back(process);
    return static_cast<int>(processes.size());
  };
  auto tid_of = [&](const std::string& track, std::string* process) {
    *process = track.substr(0, track.find('/'));
    std::string thread =
        track.find('/') == std::string::npos ? "main" : track.substr(track.find('/') + 1);
    for (size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i].first == track) return static_cast<int>(i + 1);
    }
    tracks.emplace_back(track, thread);
    return static_cast<int>(tracks.size());
  };

  struct Event {
    int pid = 0;
    int tid = 0;
    const TraceSpan* span = nullptr;
  };
  std::vector<Event> events;
  events.reserve(spans.size());
  for (const TraceSpan& span : spans) {
    std::string process;
    Event e;
    e.tid = tid_of(span.track, &process);
    e.pid = pid_of(process);
    e.span = &span;
    events.push_back(e);
  }

  std::string out;
  out.reserve(256 + spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",";
  if (!metadata.empty()) {
    out += "\"otherData\":{";
    for (size_t i = 0; i < metadata.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += util::JsonEscape(metadata[i].first);
      out += "\":\"";
      out += util::JsonEscape(metadata[i].second);
      out += "\"";
    }
    out += "},";
  }
  out += "\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (size_t i = 0; i < processes.size(); ++i) {
    sep();
    Appendf(&out,
            "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\","
            "\"args\":{\"name\":\"%s\"}}",
            static_cast<int>(i + 1), util::JsonEscape(processes[i]).c_str());
  }
  for (size_t i = 0; i < tracks.size(); ++i) {
    std::string process;
    std::string track = tracks[i].first;
    int tid = static_cast<int>(i + 1);
    int pid = 0;
    // Recompute the owning pid (already interned above).
    std::string proc = track.substr(0, track.find('/'));
    for (size_t j = 0; j < processes.size(); ++j) {
      if (processes[j] == proc) pid = static_cast<int>(j + 1);
    }
    sep();
    Appendf(&out,
            "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"%s\"}}",
            pid, tid, util::JsonEscape(tracks[i].second).c_str());
  }
  for (const Event& e : events) {
    sep();
    Appendf(&out, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f",
            e.pid, e.tid, util::JsonEscape(e.span->name).c_str(), e.span->start_ms * 1000.0,
            (e.span->end_ms - e.span->start_ms) * 1000.0);
    if (!e.span->args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < e.span->args.size(); ++i) {
        const TraceArg& arg = e.span->args[i];
        if (i > 0) out += ",";
        out += "\"";
        out += util::JsonEscape(arg.key);
        out += "\":";
        if (arg.number) {
          out += arg.value;
        } else {
          out += "\"";
          out += util::JsonEscape(arg.value);
          out += "\"";
        }
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace eta::prof
