// Request/result vocabulary of the query-serving engine.
//
// A Request is one client query (algorithm + source vertex) with an arrival
// time on the simulated clock, an optional queueing deadline, and a
// priority. The engine answers each request with a QueryResult carrying an
// explicit terminal status — admission rejection and deadline expiry are
// first-class outcomes, never crashes.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

#include "core/options.hpp"
#include "core/traversal.hpp"
#include "graph/types.hpp"
#include "trace/alerts.hpp"

namespace eta::serve {

inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Service-level-objective class of a request. Classless (kNone) requests
/// take the legacy path: no shedding, no brownout, no per-class accounting.
/// Classed requests carry a completion target (OverloadOptions) and are
/// subject to the admission controller: under pressure bronze is degraded or
/// shed first, then silver; gold is never shed while any shard is alive.
enum class SloClass : uint8_t {
  kNone = 0,
  kBronze,
  kSilver,
  kGold,
};
const char* SloClassName(SloClass slo);
/// Inverse of SloClassName; nullopt on an unknown name.
std::optional<SloClass> ParseSloClass(std::string_view name);
/// Canonical scheduler priority for a class (gold jumps the queue).
int32_t SloPriority(SloClass slo);

struct Request {
  uint64_t id = 0;
  core::Algo algo = core::Algo::kBfs;
  graph::VertexId source = 0;
  /// Which graph in the serving catalog this query targets. Single-graph
  /// engines serve one catalog entry, so the default of 0 always resolves;
  /// the sharded fleet uses it for residency (eviction/reload) decisions
  /// and to keep folded batches on one topology.
  uint32_t graph_id = 0;
  /// Arrival on the simulated clock (ms).
  double arrival_ms = 0;
  /// Maximum queueing delay before the query must be dispatched; requests
  /// still queued past arrival_ms + deadline_ms time out. kNoDeadline
  /// disables the limit.
  double deadline_ms = kNoDeadline;
  /// Higher values are dispatched first; FIFO within a priority level.
  int32_t priority = 0;
  /// SLO class; kNone means the legacy classless path (see SloClass).
  SloClass slo = SloClass::kNone;
  /// Originating tenant (arrival-process bookkeeping only; the engine does
  /// not partition by tenant).
  uint32_t tenant = 0;

  double StartDeadline() const { return arrival_ms + deadline_ms; }

  /// The single boundary rule for deadline expiry, shared by the scheduler
  /// sweep and the engine's batch-window filter: a request expires only
  /// when the clock has passed *strictly beyond* its start deadline, so a
  /// request whose deadline equals `now_ms` is still dispatchable.
  bool ExpiredAt(double now_ms) const { return now_ms > StartDeadline(); }
};

enum class QueryStatus : uint8_t {
  kOk,        // served on the device; reached_vertices is valid
  kRejected,  // admission queue was full on arrival
  kTimedOut,  // still queued when the start deadline passed
  kDegraded,  // device path exhausted; served by the CPU fallback instead
  kShedded,   // admission controller predicted a hopeless SLO and shed it
};
const char* QueryStatusName(QueryStatus status);
/// Inverse of QueryStatusName (for replay-file round trips); nullopt on an
/// unknown name.
std::optional<QueryStatus> ParseQueryStatus(std::string_view name);

struct QueryResult {
  uint64_t id = 0;
  QueryStatus status = QueryStatus::kOk;
  core::Algo algo = core::Algo::kBfs;
  graph::VertexId source = 0;
  /// Vertices reachable from this request's source — bit-identical whether
  /// the query ran alone or folded into a multi-source batch (per-source
  /// attribution, see core::ResidentGraph::RunMultiSource).
  uint64_t reached_vertices = 0;
  /// Requests sharing this query's launch (1 = ran alone); 0 if no device
  /// launch produced the answer (not served, or served degraded on the CPU).
  uint32_t batch_size = 0;
  double arrival_ms = 0;
  double start_ms = 0;   // dispatch time on the simulated clock
  double finish_ms = 0;  // completion time on the simulated clock
  /// Copied from the request so per-class accounting survives into reports.
  SloClass slo = SloClass::kNone;

  double QueueMs() const { return start_ms - arrival_ms; }
  double LatencyMs() const { return finish_ms - arrival_ms; }
};

enum class ServeMode : uint8_t {
  /// One fresh device per query: allocate, stage the topology, run, tear
  /// down. The no-serving-layer strawman.
  kNaivePerQuery,
  /// One persistent GraphSession; queries run back to back against the
  /// resident topology.
  kSession,
  /// Session plus multi-source batching of compatible requests.
  kSessionBatched,
};
const char* ServeModeName(ServeMode mode);

/// Overload-control knobs (DESIGN.md §13). All default-off: a
/// default-constructed OverloadOptions leaves every legacy code path — and
/// every legacy report byte — unchanged.
struct OverloadOptions {
  /// Per-class completion targets (ms from arrival). A classed request meets
  /// its SLO when it finishes (ok or degraded) within the target; targets
  /// also feed the predictive shed decision at admission.
  double gold_slo_ms = 50.0;
  double silver_slo_ms = 200.0;
  double bronze_slo_ms = 1000.0;
  /// Master switch for SLO-aware admission on the sharded router: predictive
  /// shed-early (queue-wait + service estimate vs the class target) plus the
  /// class-ordered fallbacks when every queue is full. Classless requests are
  /// unaffected even when set.
  bool slo_admission = false;
  /// Backlog (ms of estimated queued work on the least-loaded live shard) at
  /// which pressure shedding engages, class-ordered: bronze sheds first,
  /// silver at the higher threshold, gold never. 0 disables a rung.
  double shed_bronze_backlog_ms = 0;
  double shed_silver_backlog_ms = 0;
  /// Brownout ladder thresholds on the same backlog estimate: at level 1
  /// bronze is served by the CPU fallback (kDegraded), at level 2 silver
  /// too. 0 disables a level.
  double brownout_bronze_backlog_ms = 0;
  double brownout_silver_backlog_ms = 0;
  /// Hysteresis for both ladders: a level entered at threshold T is left
  /// only when the backlog drops below T * hysteresis.
  double hysteresis = 0.5;
  /// Fleet-wide retry budget: token-bucket refill rate (tokens per simulated
  /// second) capping fault retries and session rebuilds across all shards.
  /// 0 leaves the legacy unbounded behavior.
  double retry_tokens_per_s = 0;
  /// Bucket depth (burst allowance) for the retry budget.
  double retry_burst = 8.0;
  /// Circuit breaker: after a dispatch-level device failure a shard is held
  /// out of routing for this cooldown, then half-opened with a single probe
  /// dispatch; each consecutive failure multiplies the cooldown by
  /// breaker_backoff. 0 disables the breaker.
  double breaker_cooldown_ms = 0;
  double breaker_backoff = 2.0;
};
/// The completion target for a class (infinite for kNone).
double SloTargetMs(const OverloadOptions& options, SloClass slo);

struct ServeOptions {
  ServeMode mode = ServeMode::kSessionBatched;
  core::EtaGraphOptions graph{};
  /// Bounded admission queue; arrivals that find it full are rejected.
  size_t queue_capacity = 64;
  /// How long a forming batch stays open for further compatible arrivals.
  double batch_window_ms = 2.0;
  /// Requests folded into one multi-source launch, at most
  /// core::ResidentGraph::kMaxAttributedSources.
  uint32_t max_batch = 16;
  /// How many times the engine may tear down and re-stage an unhealthy
  /// session (device lost, or load failed) before giving up on the device
  /// path for good. Each rebuild charges a fresh graph-staging on the serve
  /// clock.
  uint32_t max_session_rebuilds = 2;
  /// Throughput of the CPU fallback that serves degraded queries, in
  /// traversed units (n + m) per millisecond of simulated time. The default
  /// models a ~0.1 GTEPS host — deliberately far below the simulated GPU,
  /// so degradation is visible in the latency histograms.
  double cpu_fallback_units_per_ms = 100000.0;
  /// EDF pop order (DESIGN.md section 15): within a priority class the
  /// scheduler pops earliest effective deadline first (start deadline minus
  /// the running-mean service estimate for the request's algorithm, frozen
  /// at admission). Priority-class precedence is preserved. Default-off:
  /// the legacy (priority, seq) order is byte-identical when false.
  bool edf = false;
  /// Whole-graph memoization window (DESIGN.md section 15): identical
  /// whole-graph (CC/PageRank) requests against the same graph answered
  /// within this many simulated ms of the computed answer are served from a
  /// per-shard memo table at zero device cost (counted as memo hits,
  /// invalidated on session retirement/rebuild). 0 disables memoization.
  double memo_window_ms = 0;
  /// Overload control (arrivals/SLO/brownout/budget/breaker); default-off.
  OverloadOptions overload{};
  /// SLO burn-rate alerting (DESIGN.md section 14): multi-window
  /// error-budget burn evaluated per class over the completed replay, on
  /// the simulated clock. Default-off (enabled = false): no evaluation
  /// runs and no alert rows/keys/families are rendered, so legacy output
  /// stays byte-identical.
  trace::AlertOptions slo_alerts{};
};

}  // namespace eta::serve
