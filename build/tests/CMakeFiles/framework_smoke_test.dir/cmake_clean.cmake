file(REMOVE_RECURSE
  "CMakeFiles/framework_smoke_test.dir/framework_smoke_test.cpp.o"
  "CMakeFiles/framework_smoke_test.dir/framework_smoke_test.cpp.o.d"
  "framework_smoke_test"
  "framework_smoke_test.pdb"
  "framework_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
