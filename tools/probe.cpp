// Internal calibration probe (not part of the bench suite): prints dataset
// shape stats and a quick framework comparison for one dataset.
#include <cstdio>

#include "baselines/cusha.hpp"
#include "baselines/gunrock.hpp"
#include "baselines/tigr.hpp"
#include "core/framework.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace eta;

int main(int argc, char** argv) {
  std::string error;
  auto cl = util::CommandLine::Parse(argc, argv, &error);
  if (!cl) return 1;
  std::string mode = cl->GetString("mode", "stats");
  std::string only = cl->GetString("dataset", "");

  if (mode == "stats") {
    for (const auto& info : graph::AllDatasets()) {
      if (!only.empty() && info.name != only) continue;
      util::WallTimer t;
      graph::Csr csr = graph::BuildDataset(info.name);
      double gen_ms = t.ElapsedMs();
      graph::GraphStats s = graph::ComputeStats(csr);
      auto reach = graph::ComputeReachability(csr, graph::kQuerySource);
      std::printf(
          "%-12s n=%9u m=%9u avg=%5.1f maxdeg=%6u lcc=%5.1f%% reach=%8u (%6.3f%%) "
          "iters=%3u gen=%.0fms\n",
          info.name.c_str(), s.num_vertices, s.num_edges, s.avg_degree,
          s.max_out_degree, s.lcc_fraction * 100, reach.visited,
          100.0 * reach.visited / s.num_vertices, reach.iterations, gen_ms);
    }
    return 0;
  }

  if (mode == "compare") {
    graph::Csr csr = graph::BuildDataset(only.empty() ? "livejournal" : only);
    core::Algo algo = core::Algo::kBfs;
    std::string algo_name = cl->GetString("algo", "bfs");
    if (algo_name == "sssp") algo = core::Algo::kSssp;
    if (algo_name == "sswp") algo = core::Algo::kSswp;

    auto run = [&](const char* name, core::RunReport r, double host_ms) {
      if (r.oom) {
        std::printf("%-22s O.O.M (req %.1f MB)\n", name,
                    r.oom_request_bytes / 1048576.0);
        return;
      }
      std::printf("%-22s kernel=%9.3fms total=%9.3fms iters=%4u act=%5.1f%% host=%6.0fms\n",
                  name, r.kernel_ms, r.total_ms, r.iterations,
                  r.activated_fraction * 100, host_ms);
    };
    util::WallTimer t;
    { t.Reset(); auto r = baselines::Cusha().Run(csr, algo, 0); run("CuSha", r, t.ElapsedMs()); }
    { t.Reset(); auto r = baselines::Gunrock().Run(csr, algo, 0); run("Gunrock", r, t.ElapsedMs()); }
    { t.Reset(); auto r = baselines::Tigr().Run(csr, algo, 0); run("Tigr", r, t.ElapsedMs()); }
    core::EtaGraphOptions opt;
    { t.Reset(); auto r = core::EtaGraph(opt).Run(csr, algo, 0); run("EtaGraph", r, t.ElapsedMs()); }
    opt.memory_mode = core::MemoryMode::kUnifiedOnDemand;
    { t.Reset(); auto r = core::EtaGraph(opt).Run(csr, algo, 0); run("EtaGraph w/o UMP", r, t.ElapsedMs()); }
    opt.memory_mode = core::MemoryMode::kExplicitCopy;
    { t.Reset(); auto r = core::EtaGraph(opt).Run(csr, algo, 0); run("EtaGraph w/o UM", r, t.ElapsedMs()); }
    opt.memory_mode = core::MemoryMode::kUnifiedPrefetch;
    opt.use_smp = false;
    { t.Reset(); auto r = core::EtaGraph(opt).Run(csr, algo, 0); run("EtaGraph w/o SMP", r, t.ElapsedMs()); }
    return 0;
  }
  if (mode == "counters") {
    graph::Csr csr = graph::BuildDataset(only.empty() ? "livejournal" : only);
    for (bool smp : {true, false}) {
      core::EtaGraphOptions opt;
      opt.use_smp = smp;
      auto r = core::EtaGraph(opt).Run(csr, core::Algo::kBfs, 0);
      const sim::Counters& c = r.counters;
      std::printf(
          "smp=%d kernel=%.3fms cycles=%.0f instr=%llu latcyc=%llu\n"
          "  L1 %llu/%llu (%.1f%%)  L2 %llu/%llu (%.1f%%)  dramRd=%llu dramWr=%llu "
          "shared=%llu atomics=%llu ipc/sm=%.3f\n",
          smp, r.kernel_ms, c.elapsed_cycles,
          (unsigned long long)c.warp_instructions, (unsigned long long)c.mem_latency_cycles,
          (unsigned long long)c.l1_hits, (unsigned long long)c.l1_accesses,
          100 * c.L1HitRate(), (unsigned long long)c.l2_hits,
          (unsigned long long)c.l2_accesses, 100 * c.L2HitRate(),
          (unsigned long long)c.dram_read_transactions,
          (unsigned long long)c.dram_write_transactions,
          (unsigned long long)c.shared_accesses, (unsigned long long)c.atomic_operations,
          c.IpcPerSm(28));
    }
    return 0;
  }
  std::fprintf(stderr, "unknown --mode\n");
  return 1;
}
