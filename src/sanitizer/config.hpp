// Which etacheck checkers run. Mirrors compute-sanitizer's tool selection
// (--tool memcheck|racecheck|synccheck), except the simulator can run all
// three in one pass because instrumentation is exact, not sampled.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace eta::sanitizer {

struct Config {
  bool memcheck = false;   // out-of-bounds, use-after-free, uninitialized reads
  bool racecheck = false;  // unsynchronized same-address conflicts within a launch
  bool synccheck = false;  // divergent or missed block barriers
  bool leakcheck = false;  // device buffers still allocated at session teardown

  /// Anything on? Off (the default) means no observer is attached anywhere
  /// and the simulation runs byte-identical to an unchecked build.
  bool Enabled() const { return memcheck || racecheck || synccheck || leakcheck; }

  static Config All() { return Config{true, true, true, true}; }

  /// Parses a comma-separated tool list: "memcheck,racecheck", "leakcheck",
  /// "all", or "" (empty also means all — `--check` with no value enables
  /// everything). Returns nullopt on an unknown tool name.
  static std::optional<Config> Parse(std::string_view list) {
    if (list.empty() || list == "all" || list == "true") return All();
    Config config;
    while (!list.empty()) {
      auto comma = list.find(',');
      std::string_view tool = list.substr(0, comma);
      list = comma == std::string_view::npos ? std::string_view{} : list.substr(comma + 1);
      if (tool == "memcheck") {
        config.memcheck = true;
      } else if (tool == "racecheck") {
        config.racecheck = true;
      } else if (tool == "synccheck") {
        config.synccheck = true;
      } else if (tool == "leakcheck") {
        config.leakcheck = true;
      } else {
        return std::nullopt;
      }
    }
    return config;
  }
};

}  // namespace eta::sanitizer
