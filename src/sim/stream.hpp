// Streams and events — the CUDA-style async work-queue layer over the
// simulated device (DESIGN.md section 11).
//
// A Stream is an ordered work queue; ops enqueued on one stream serialize.
// Ops on different streams may overlap, subject to the engine rules the
// paper's overlap analysis assumes (Fig 4): the device has one copy engine
// per direction (H2D, D2H) and one compute engine, each engine executes
// one op at a time, and each engine serves its ops in enqueue order (the
// hardware copy-queue FIFO — this is the fixed tiebreak that keeps the
// schedule deterministic). An Event records a point in a stream; other
// streams can Wait on it, forming the small DAGs the serving layer's
// dispatcher builds (stage on a copy stream -> event -> batch waves on the
// compute stream).
//
// Execution model: the simulator executes functionally at *enqueue* time,
// in program order, on the host thread — LaunchAsync runs its work functor
// (typically a Device::Launch, so counters, sanitizer events, and fault
// decisions are identical to the synchronous path) and MemcpyAsync runs
// its copy functor immediately. Only *timing* is asynchronous: each op's
// start is the earliest instant permitted by its stream tail, its engine
// tail, and any event waits, all computed on the single simulated clock.
// Because every dependency an op can have (stream order, engine FIFO
// order, waits on previously recorded events) points backward in program
// order, this eager schedule is exactly what an event-driven simulation of
// the same queues would produce — each enqueue is one scheduler step that
// advances the op to its start time. Two identical enqueue sequences yield
// byte-identical schedules.
//
// Fault semantics (DESIGN.md section 8, mapped onto streams): a failed
// launch marks its stream failed at the op's end time. Later ops enqueued
// on a failed stream are cancelled — zero duration, functors never run,
// engines never occupied. Events recorded on a failed stream still
// complete (at the failure time, carrying the failed flag) so waiters
// never deadlock; a Wait on a failed event fails the *waiting* stream too
// (dependent work cancels), while streams with no dependency on the fault
// keep running.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/spec.hpp"
#include "sim/timeline.hpp"

namespace eta::sim {

class Device;
struct LaunchConfig;
class WarpCtx;

/// Opaque stream handle (cudaStream_t). Value-copyable; id is dense.
struct Stream {
  uint32_t id = 0;
  bool valid = false;

  bool operator==(const Stream& other) const {
    return id == other.id && valid == other.valid;
  }
};

/// Opaque event handle (cudaEvent_t). Value-copyable; id is dense.
struct Event {
  uint32_t id = 0;
  bool valid = false;

  bool operator==(const Event& other) const {
    return id == other.id && valid == other.valid;
  }
};

enum class StreamOpKind { kCopyH2D, kCopyD2H, kCompute, kRecord, kWait };
enum class StreamOpStatus { kDone, kFailed, kCancelled };

const char* StreamOpKindName(StreamOpKind kind);
const char* StreamOpStatusName(StreamOpStatus status);

/// One scheduled op, for introspection and trace export. Record/Wait ops
/// are bookkeeping points (zero duration, no engine occupancy).
struct StreamOp {
  StreamOpKind kind = StreamOpKind::kCompute;
  StreamOpStatus status = StreamOpStatus::kDone;
  uint32_t stream = 0;
  uint32_t event = UINT32_MAX;  // kRecord/kWait only
  std::string label;
  double start_ms = 0;
  double end_ms = 0;
  uint64_t bytes = 0;  // copy ops only
  /// Caller-attached identity (etatrace, DESIGN.md section 14): the serve
  /// dispatcher tags each launch wave with the head request id via
  /// TagLastOp, so a per-request span tree and an etaverify finding can
  /// name the same op — and the op can name its victim request. 0 = untagged.
  uint64_t tag = 0;

  double DurationMs() const { return end_ms - start_ms; }
};

/// One entry of an op's recorded buffer access set (etaverify, DESIGN.md
/// section 12): the op reads or writes `alloc`, a device allocation handle
/// from StreamScheduler::RegisterAlloc.
struct DagAccess {
  static constexpr uint32_t kNoAlloc = UINT32_MAX;

  uint32_t alloc = kNoAlloc;
  bool write = false;
};

/// One program-order entry of the DAG verification log. kOp nodes mirror
/// enqueued stream ops (including snapshot no-op waits, which never appear
/// in Ops()); kJoin nodes mark host-side synchronization points — the
/// instants the enqueueing code observed a stream's completion before
/// proceeding (the static analog of cudaStreamSynchronize).
struct DagNode {
  enum class Type : uint8_t { kOp, kJoin };
  static constexpr uint32_t kNoStream = UINT32_MAX;
  static constexpr uint32_t kNoEvent = UINT32_MAX;

  Type type = Type::kOp;
  StreamOpKind kind = StreamOpKind::kCompute;
  /// kOp: the op's stream. kJoin: the joined stream, kNoStream = join-all.
  uint32_t stream = kNoStream;
  uint32_t event = kNoEvent;  // kRecord/kWait only
  /// kWait only: the event had been recorded when the wait was enqueued
  /// (snapshot semantics — an unbound wait orders nothing at runtime).
  bool bound = false;
  /// The op was cancelled (its stream had failed); its functor never ran,
  /// so it carries no accesses the verifier should consider.
  bool cancelled = false;
  std::string label;
  std::vector<DagAccess> accesses;
};

class StreamScheduler {
 public:
  /// `spec` supplies the PCIe cost model for byte-sized MemcpyAsync ops.
  explicit StreamScheduler(DeviceSpec spec = {}) : spec_(spec) {}

  /// What a LaunchAsync work functor reports back: how long the launch ran
  /// on the simulated device and whether it aborted at a fault boundary.
  struct LaunchOutcome {
    double duration_ms = 0;
    bool failed = false;
  };

  Stream CreateStream(std::string name = "");
  Event CreateEvent();

  /// Enqueues an async copy of `bytes` in direction `dir` (kCopyH2D or
  /// kCopyD2H), costed by the spec's PCIe model. `copy`, if given, performs
  /// the functional transfer and runs at enqueue (skipped when the stream
  /// has failed). `earliest_ms` floors the start time (the enqueue instant
  /// on an external clock, e.g. the serve clock).
  StreamOpStatus MemcpyAsync(Stream s, StreamOpKind dir, uint64_t bytes, bool pageable,
                             std::string label, const std::function<void()>& copy = {},
                             double earliest_ms = 0);

  /// Enqueues a copy-engine op with an explicit duration — the serving
  /// layer's session staging, whose cost (graph load + topology prefetch)
  /// is computed by the session device itself.
  StreamOpStatus CopyAsync(Stream s, StreamOpKind dir, double duration_ms,
                           std::string label, double earliest_ms = 0,
                           uint64_t bytes = 0);

  /// Enqueues a compute op. `work(start_ms)` runs at enqueue (program
  /// order) unless the stream has already failed; it returns the op's
  /// simulated duration and whether it failed. A failed op marks the
  /// stream failed at its end time: every later op on this stream is
  /// cancelled (zero duration, work never invoked).
  StreamOpStatus LaunchAsync(Stream s, std::string label,
                             const std::function<LaunchOutcome(double start_ms)>& work,
                             double earliest_ms = 0);

  /// Device-bound convenience: runs `kernel` through device.Launch — the
  /// functional execution, counters, sanitizer observer events, and fault
  /// decisions are exactly those of a synchronous launch; only the stream
  /// schedule re-times it. The device's own clock still advances serially
  /// (program order); the stream schedule is the overlapped view.
  StreamOpStatus LaunchAsync(Stream s, Device& device, std::string label,
                             LaunchConfig config,
                             const std::function<void(WarpCtx&)>& kernel,
                             double earliest_ms = 0);

  /// cudaEventRecord: the event completes when every op enqueued on `s` so
  /// far completes. Records on a failed stream complete at the failure
  /// time with the failed flag set. Re-recording overwrites.
  void Record(Stream s, Event e);

  /// cudaStreamWaitEvent, with snapshot semantics: waiting on an event
  /// never (yet) recorded is a no-op, not a future dependency. Waiting on
  /// a failed event fails the waiting stream (its successors cancel).
  void Wait(Stream s, Event e);

  /// cudaEventQuery at simulated instant `at_ms`: true iff the event has
  /// been recorded and its completion time has been reached.
  bool Complete(Event e, double at_ms) const;
  bool Recorded(Event e) const;
  /// Completion timestamp of a recorded event (0 if never recorded).
  double EventMs(Event e) const;
  /// True when the event was recorded after a fault on its stream.
  bool EventFailed(Event e) const;

  double StreamEndMs(Stream s) const;
  bool StreamFailed(Stream s) const;
  const std::string& StreamName(Stream s) const;

  /// cudaDeviceSynchronize: the makespan over every stream.
  double SynchronizeMs() const;
  /// Busy-until time of one engine queue (kCopyH2D, kCopyD2H, kCompute).
  double EngineEndMs(StreamOpKind dir) const;

  const std::vector<StreamOp>& Ops() const { return ops_; }

  /// --- DAG verification log (etaverify, DESIGN.md section 12) ----------
  ///
  /// Off by default: every hook below reduces to one untaken branch, no
  /// allocation happens, and the schedule — timestamps, engine tails,
  /// Ops() — is bit-identical with or without the log (recording is
  /// host-side bookkeeping only, mirroring the AccessObserver contract).
  void EnableDagLog();
  bool DagLogEnabled() const { return dag_ != nullptr; }

  /// Registers a device allocation for access tracking and returns its
  /// dense handle (DagAccess::kNoAlloc when the log is disabled). Each
  /// staging epoch of a graph is its own allocation: a buffer freed and
  /// re-staged later is a *different* allocation, so accesses to distinct
  /// epochs never conflict.
  uint32_t RegisterAlloc(std::string name);

  /// Attaches `accesses` to the most recently enqueued op. Call directly
  /// after the enqueue that produced the op; kNoAlloc entries are dropped,
  /// and the call is a no-op when the log is disabled.
  void AnnotateLastOp(const std::vector<DagAccess>& accesses);

  /// Tags the most recently enqueued op with a caller identity (request
  /// id). Pure host-side bookkeeping on the already-recorded op: no
  /// simulated cost, no effect on the schedule. Call directly after the
  /// enqueue that produced the op.
  void TagLastOp(uint64_t tag);

  /// Records that the enqueueing code observed stream `s` complete before
  /// proceeding (e.g. the serve loop dispatching only once free_at was
  /// reached): everything enqueued on `s` so far happens-before everything
  /// enqueued — on any stream — after this call.
  void HostJoin(Stream s);
  /// Records a device-wide synchronize: every op enqueued so far
  /// happens-before everything enqueued after this call.
  void HostJoinAll();

  /// The recorded log, program order. Empty unless EnableDagLog() ran.
  const std::vector<DagNode>& DagNodes() const;
  /// Registered allocation names, dense in handle order.
  const std::vector<std::string>& DagAllocs() const;

  /// Engine occupancy as a Timeline (copy ops as transfer spans, compute
  /// ops as compute spans). Per-kind spans never overlap (one op per
  /// engine), so Timeline's invariants hold; OverlapMs() is the
  /// copy/compute overlap the schedule actually achieved.
  const Timeline& EngineTimeline() const { return timeline_; }
  double OverlapMs() const { return timeline_.OverlapMs(); }

 private:
  struct StreamState {
    std::string name;
    double tail_ms = 0;  // completion time of the last op enqueued
    bool failed = false;
    double failed_at_ms = 0;
  };
  struct EventState {
    bool recorded = false;
    bool failed = false;
    double ready_ms = 0;
  };

  struct DagLog {
    std::vector<DagNode> nodes;
    std::vector<std::string> allocs;
  };

  StreamState& Get(Stream s);
  const StreamState& Get(Stream s) const;
  double& EngineTail(StreamOpKind dir);

  /// Appends a cancelled op at the stream's failure time.
  StreamOpStatus Cancel(StreamState& st, Stream s, StreamOpKind kind,
                        std::string label, uint32_t event = DagNode::kNoEvent);

  /// DAG-log hook: records one kOp node when the log is enabled.
  void LogOp(StreamOpKind kind, uint32_t stream, const std::string& label,
             uint32_t event = DagNode::kNoEvent, bool bound = false,
             bool cancelled = false);

  DeviceSpec spec_;
  std::vector<StreamState> streams_;
  std::vector<EventState> events_;
  std::vector<StreamOp> ops_;
  double engine_tail_[3] = {0, 0, 0};  // h2d, d2h, compute
  Timeline timeline_;
  std::unique_ptr<DagLog> dag_;
};

}  // namespace eta::sim
