// Deterministic, machine-readable sanitizer findings — the analog of
// compute-sanitizer's per-error records, aggregated so a hazard that fires
// on every element of a large frontier produces one finding with an
// occurrence count instead of a million lines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eta::sanitizer {

enum class Checker : uint8_t { kMemcheck, kRacecheck, kSynccheck, kLeakcheck };
enum class Severity : uint8_t { kError, kWarning };

enum class FindingKind : uint8_t {
  // memcheck
  kOobRead,
  kOobWrite,
  kUninitRead,
  kUseAfterFree,
  // racecheck — named <earlier access><later access>; the later access is
  // the one that trips the report.
  kRaceWriteWrite,   // plain store over another thread's plain store
  kRaceReadWrite,    // plain store over a value another thread already read
  kRaceAtomicWrite,  // plain store over another thread's atomic/relaxed store
  kRaceWriteAtomic,  // atomic/relaxed store over another thread's plain store
  kRaceWriteRead,    // read of another thread's plain store (often benign)
  // synccheck
  kBarrierDivergence,  // barrier reached under a mask narrower than the warp's
  kBarrierMismatch,    // warps of one block hit different barrier counts
  // leakcheck
  kLeakedBuffer,  // still allocated when the session's teardown sweep ran
};

const char* CheckerName(Checker checker);
const char* FindingKindName(FindingKind kind);
const char* SeverityName(Severity severity);
Checker FindingChecker(FindingKind kind);

/// kRaceWriteRead demotes to a warning: a read racing a plain store is the
/// publish side of single-writer protocols and torn 4-byte reads cannot
/// happen in the simulator, so it deserves eyes but not a failed gate.
/// Everything else is an error.
Severity FindingSeverity(FindingKind kind);

/// One distinct defect. Findings aggregate by (kind, kernel, buffer): the
/// first occurrence keeps the attribution fields below and later hits only
/// bump `occurrences`, which keeps reports small and their order stable.
struct Finding {
  static constexpr uint64_t kNoThread = ~uint64_t{0};

  FindingKind kind = FindingKind::kOobRead;
  std::string kernel;  // launch label; empty for host-side events
  std::string buffer;  // allocation name; empty for synccheck findings
  uint64_t elem_index = 0;  // first offending element (block id for kBarrierMismatch)
  uint64_t warp = 0;
  uint32_t lane = 0;
  /// Race peer: global thread id (warp * 32 + lane) of the other
  /// participant at first occurrence; kNoThread when not applicable.
  uint64_t other_thread = kNoThread;
  /// Instrumented-operation ordinal within the launch at first occurrence —
  /// the simulator's PC analog for "which access was it".
  uint64_t step = 0;
  uint64_t occurrences = 1;
  /// Extra attribution for findings the fixed fields can't express
  /// (barrier-count mismatches); rendered verbatim.
  std::string note;

  Severity SeverityLevel() const { return FindingSeverity(kind); }
  std::string Message() const;
};

struct SanitizerReport {
  /// Discovery order, which is deterministic because warps execute
  /// sequentially in the simulator.
  std::vector<Finding> findings;
  uint64_t launches_checked = 0;
  uint64_t accesses_checked = 0;

  uint64_t ErrorCount() const;
  uint64_t WarningCount() const;
  bool Clean() const { return ErrorCount() == 0; }

  /// Folds another report in (serve-layer aggregation across sessions or
  /// per-query engines), re-aggregating duplicate findings.
  void Merge(const SanitizerReport& other);

  /// compute-sanitizer-style text block; empty string when there is
  /// nothing to say and `verbose` is false.
  std::string Render(bool verbose = false) const;

  /// Machine-readable form for tools' --check-json.
  std::string Json() const;
};

}  // namespace eta::sanitizer
