// Graph shape statistics — the quantities Table II reports per dataset
// (vertex/edge counts, average degree, size, largest-connected-component
// fraction) plus the degree extremes the paper quotes in Section VI-B.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace eta::graph {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0.0;
  EdgeId max_out_degree = 0;
  VertexId num_isolated = 0;       // vertices with no in- or out-edges
  /// Fraction (in [0,1]) of vertices in the largest weakly-connected
  /// component — the %LCC column of Table II.
  double lcc_fraction = 0.0;
  /// Bytes of a human-readable edge-list rendering (the Size column of
  /// Table II uses the text format).
  uint64_t text_size_bytes = 0;
};

GraphStats ComputeStats(const Csr& csr);

/// Number of vertices reachable from `source` (directed), and the BFS depth
/// (number of frontier expansions). Host-side; used by tests and Table IV.
struct Reachability {
  VertexId visited = 0;
  uint32_t iterations = 0;
};
Reachability ComputeReachability(const Csr& csr, VertexId source);

}  // namespace eta::graph
