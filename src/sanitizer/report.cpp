#include "sanitizer/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/json.hpp"

namespace eta::sanitizer {

namespace {

/// snprintf into a std::string, matching the serve-layer JSON style. Long
/// chunks (e.g. a pathological kernel label) retry into the string itself
/// instead of silently truncating at the stack-buffer size.
template <typename... Args>
void Appendf(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n <= 0) return;
  if (static_cast<size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<size_t>(n));
    return;
  }
  const size_t base = out.size();
  out.resize(base + static_cast<size_t>(n) + 1);
  std::snprintf(out.data() + base, static_cast<size_t>(n) + 1, fmt, args...);
  out.resize(base + static_cast<size_t>(n));
}

}  // namespace

const char* CheckerName(Checker checker) {
  switch (checker) {
    case Checker::kMemcheck: return "memcheck";
    case Checker::kRacecheck: return "racecheck";
    case Checker::kSynccheck: return "synccheck";
    case Checker::kLeakcheck: return "leakcheck";
  }
  return "?";
}

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kOobRead: return "oob-read";
    case FindingKind::kOobWrite: return "oob-write";
    case FindingKind::kUninitRead: return "uninit-read";
    case FindingKind::kUseAfterFree: return "use-after-free";
    case FindingKind::kRaceWriteWrite: return "race-write-write";
    case FindingKind::kRaceReadWrite: return "race-read-write";
    case FindingKind::kRaceAtomicWrite: return "race-atomic-write";
    case FindingKind::kRaceWriteAtomic: return "race-write-atomic";
    case FindingKind::kRaceWriteRead: return "race-write-read";
    case FindingKind::kBarrierDivergence: return "barrier-divergence";
    case FindingKind::kBarrierMismatch: return "barrier-mismatch";
    case FindingKind::kLeakedBuffer: return "leaked-buffer";
  }
  return "?";
}

const char* SeverityName(Severity severity) {
  return severity == Severity::kError ? "ERROR" : "WARNING";
}

Checker FindingChecker(FindingKind kind) {
  switch (kind) {
    case FindingKind::kOobRead:
    case FindingKind::kOobWrite:
    case FindingKind::kUninitRead:
    case FindingKind::kUseAfterFree:
      return Checker::kMemcheck;
    case FindingKind::kRaceWriteWrite:
    case FindingKind::kRaceReadWrite:
    case FindingKind::kRaceAtomicWrite:
    case FindingKind::kRaceWriteAtomic:
    case FindingKind::kRaceWriteRead:
      return Checker::kRacecheck;
    case FindingKind::kBarrierDivergence:
    case FindingKind::kBarrierMismatch:
      return Checker::kSynccheck;
    case FindingKind::kLeakedBuffer:
      return Checker::kLeakcheck;
  }
  return Checker::kMemcheck;
}

Severity FindingSeverity(FindingKind kind) {
  return kind == FindingKind::kRaceWriteRead ? Severity::kWarning : Severity::kError;
}

namespace {

const char* KindDescription(FindingKind kind) {
  switch (kind) {
    case FindingKind::kOobRead: return "read past the end of";
    case FindingKind::kOobWrite: return "write past the end of";
    case FindingKind::kUninitRead: return "read of uninitialized element in";
    case FindingKind::kUseAfterFree: return "access to freed buffer";
    case FindingKind::kRaceWriteWrite:
      return "plain store over another thread's plain store to";
    case FindingKind::kRaceReadWrite:
      return "plain store over a value another thread read from";
    case FindingKind::kRaceAtomicWrite:
      return "plain store over another thread's atomic to";
    case FindingKind::kRaceWriteAtomic:
      return "atomic over another thread's plain store to";
    case FindingKind::kRaceWriteRead:
      return "read of another thread's unsynchronized store to";
    case FindingKind::kBarrierDivergence: return "divergent barrier in";
    case FindingKind::kBarrierMismatch: return "barrier count mismatch in";
    case FindingKind::kLeakedBuffer: return "buffer still allocated at teardown:";
  }
  return "?";
}

}  // namespace

std::string Finding::Message() const {
  std::string out;
  Appendf(out, "%s [%s] %s: %s", SeverityName(SeverityLevel()),
          CheckerName(FindingChecker(kind)), FindingKindName(kind),
          KindDescription(kind));
  if (kind == FindingKind::kLeakedBuffer) {
    Appendf(out, " %s", buffer.c_str());
  } else if (!buffer.empty()) {
    Appendf(out, " %s[%" PRIu64 "]", buffer.c_str(), elem_index);
  } else if (kind == FindingKind::kBarrierMismatch) {
    Appendf(out, " block %" PRIu64, elem_index);
  }
  if (kind == FindingKind::kLeakedBuffer) {
    if (occurrences > 1) Appendf(out, " (x%" PRIu64 ")", occurrences);
    if (!note.empty()) out += " — " + note;
    return out;
  }
  if (!kernel.empty()) Appendf(out, " in '%s'", kernel.c_str());
  Appendf(out, " by warp %" PRIu64 " lane %u", warp, lane);
  if (other_thread != kNoThread) {
    Appendf(out, " (peer thread %" PRIu64 ")", other_thread);
  }
  Appendf(out, " at step %" PRIu64, step);
  if (occurrences > 1) Appendf(out, " (x%" PRIu64 ")", occurrences);
  if (!note.empty()) out += " — " + note;
  return out;
}

uint64_t SanitizerReport::ErrorCount() const {
  uint64_t n = 0;
  for (const Finding& f : findings) {
    if (f.SeverityLevel() == Severity::kError) n += f.occurrences;
  }
  return n;
}

uint64_t SanitizerReport::WarningCount() const {
  uint64_t n = 0;
  for (const Finding& f : findings) {
    if (f.SeverityLevel() == Severity::kWarning) n += f.occurrences;
  }
  return n;
}

void SanitizerReport::Merge(const SanitizerReport& other) {
  launches_checked += other.launches_checked;
  accesses_checked += other.accesses_checked;
  for (const Finding& f : other.findings) {
    bool merged = false;
    for (Finding& mine : findings) {
      if (mine.kind == f.kind && mine.kernel == f.kernel && mine.buffer == f.buffer) {
        mine.occurrences += f.occurrences;
        merged = true;
        break;
      }
    }
    if (!merged) findings.push_back(f);
  }
}

std::string SanitizerReport::Render(bool verbose) const {
  if (findings.empty() && !verbose) return "";
  std::string out;
  Appendf(out,
          "========= etacheck: %" PRIu64 " error(s), %" PRIu64
          " warning(s) over %" PRIu64 " launch(es), %" PRIu64 " access(es)\n",
          ErrorCount(), WarningCount(), launches_checked, accesses_checked);
  for (const Finding& f : findings) {
    out += "=========   " + f.Message() + "\n";
  }
  return out;
}

std::string SanitizerReport::Json() const {
  std::string out = "{\n";
  Appendf(out, "  \"errors\": %" PRIu64 ",\n", ErrorCount());
  Appendf(out, "  \"warnings\": %" PRIu64 ",\n", WarningCount());
  Appendf(out, "  \"launches_checked\": %" PRIu64 ",\n", launches_checked);
  Appendf(out, "  \"accesses_checked\": %" PRIu64 ",\n", accesses_checked);
  out += "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    Appendf(out, "\"checker\": \"%s\", ", CheckerName(FindingChecker(f.kind)));
    Appendf(out, "\"kind\": \"%s\", ", FindingKindName(f.kind));
    Appendf(out, "\"severity\": \"%s\", ", SeverityName(f.SeverityLevel()));
    Appendf(out, "\"kernel\": \"%s\", ", util::JsonEscape(f.kernel).c_str());
    Appendf(out, "\"buffer\": \"%s\", ", util::JsonEscape(f.buffer).c_str());
    Appendf(out, "\"elem_index\": %" PRIu64 ", ", f.elem_index);
    Appendf(out, "\"warp\": %" PRIu64 ", ", f.warp);
    Appendf(out, "\"lane\": %u, ", f.lane);
    if (f.other_thread != Finding::kNoThread) {
      Appendf(out, "\"other_thread\": %" PRIu64 ", ", f.other_thread);
    }
    Appendf(out, "\"step\": %" PRIu64 ", ", f.step);
    Appendf(out, "\"occurrences\": %" PRIu64 "}", f.occurrences);
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}";
  return out;
}

}  // namespace eta::sanitizer
