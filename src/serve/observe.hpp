// etatrace serve-side finalizers (DESIGN.md section 14): fold the
// per-request tracer, the always-on flight recorder, and the burn-rate
// alert evaluation into a finished ServeReport. Shared by ServeEngine and
// ShardedEngine so both render traces, blackbox dumps, exemplars, and
// alerts identically.
#pragma once

#include "serve/report.hpp"
#include "serve/types.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/tracer.hpp"

namespace eta::serve {

/// Finalizes the trace side of `report` after results are sorted:
/// - copies the tracer's per-request traces (traced runs);
/// - appends the end-of-replay flight-recorder snapshot to
///   report->blackbox (always — the black box is never empty);
/// - computes per-algo latency exemplars (the slowest completed request's
///   trace id; ties resolve to the lowest id) and registers the
///   serve_latency_exemplar_request family (traced runs only);
/// - registers the serve_latency_p999_ms gauge (always; identical on/off,
///   so the zero-cost contract is untouched);
/// - merges per-request Chrome-trace tracks onto the serve clock when the
///   replay was both traced and profiled.
/// Untraced legacy output stays byte-identical: every traced-only block
/// is gated on tracer.enabled().
void FinalizeTraceReport(const ServeOptions& options, const trace::RequestTracer& tracer,
                         const trace::FlightRecorder& recorder, double end_ms,
                         ServeReport* report);

/// Evaluates multi-window SLO burn-rate alerts per class over the
/// replay's completions and fills report->alerts plus the serve_alert_*
/// Prometheus families. No-op unless alert_options.enabled, so legacy
/// output never carries an alert row/key/family.
void EvaluateSloAlerts(const OverloadOptions& options,
                       const trace::AlertOptions& alert_options, ServeReport* report);

}  // namespace eta::serve
