#include "baselines/gunrock.hpp"

#include <algorithm>
#include <cmath>

#include "sim/device.hpp"
#include "util/check.hpp"

namespace eta::baselines {

namespace {

using core::Algo;
using graph::EdgeId;
using graph::VertexId;
using graph::Weight;
using sim::Buffer;
using sim::kWarpSize;
using sim::LaneArray;
using sim::WarpCtx;

struct DeviceState {
  Buffer<EdgeId> row;
  Buffer<VertexId> col;
  Buffer<Weight> wts;
  Buffer<Weight> labels;
  Buffer<uint32_t> stamp;   // improved-this-iteration marks (set by advance)
  Buffer<uint32_t> qstamp;  // queued-this-iteration marks (set by filter)
  Buffer<VertexId> frontier[2];   // vertex frontiers (ping-pong)
  Buffer<VertexId> edge_raw[2];   // |E|-capacity expanded frontiers
  Buffer<EdgeId> scan;            // per-frontier-vertex scanned degrees
  Buffer<uint32_t> cursors;       // [0]=raw out, [1]=next vertex frontier
};

/// Host-side mirror of the advance decomposition: one (src, edge) pair per
/// work item. Rebuilt each iteration from the frontier.
struct WorkList {
  std::vector<VertexId> src;
  std::vector<EdgeId> edge;
  std::vector<uint32_t> segment;  // frontier slot owning the work item
};

}  // namespace

core::RunReport Gunrock::Run(const graph::Csr& csr, Algo algo, VertexId source) const {
  ETA_CHECK(source < csr.NumVertices());
  ETA_CHECK(!core::IsWeighted(algo) || csr.HasWeights());

  core::RunReport report;
  report.framework = "Gunrock";
  report.algo = algo;

  const VertexId n = csr.NumVertices();
  const EdgeId m = csr.NumEdges();
  const bool weighted = core::IsWeighted(algo);

  sim::Device device(options_.spec);
  DeviceState d;
  try {
    d.row = device.Alloc<EdgeId>(n + 1, sim::MemKind::kDevice, "row");
    d.col = device.Alloc<VertexId>(m, sim::MemKind::kDevice, "col");
    if (weighted) d.wts = device.Alloc<Weight>(m, sim::MemKind::kDevice, "weights");
    d.labels = device.Alloc<Weight>(n, sim::MemKind::kDevice, "labels");
    d.stamp = device.Alloc<uint32_t>(n, sim::MemKind::kDevice, "stamp");
    d.qstamp = device.Alloc<uint32_t>(n, sim::MemKind::kDevice, "qstamp");
    d.frontier[0] = device.Alloc<VertexId>(n, sim::MemKind::kDevice, "frontier_a");
    d.frontier[1] = device.Alloc<VertexId>(n, sim::MemKind::kDevice, "frontier_b");
    d.edge_raw[0] = device.Alloc<VertexId>(m, sim::MemKind::kDevice, "edge_raw_a");
    d.edge_raw[1] = device.Alloc<VertexId>(m, sim::MemKind::kDevice, "edge_raw_b");
    d.scan = device.Alloc<EdgeId>(n + 1, sim::MemKind::kDevice, "scan");
    d.cursors = device.Alloc<uint32_t>(2, sim::MemKind::kDevice, "cursors");
  } catch (const sim::OomError& e) {
    report.oom = true;
    report.oom_request_bytes = e.requested_bytes;
    return report;
  }
  report.device_bytes_peak = device.Mem().DeviceBytesUsed();

  device.CopyToDevice(d.row, csr.RowOffsets());
  device.CopyToDevice(d.col, csr.ColIndices());
  if (weighted) device.CopyToDevice(d.wts, csr.Weights());

  std::vector<Weight> init_labels(n, core::InitLabel(algo, false));
  init_labels[source] = core::InitLabel(algo, true);
  device.CopyToDevice(d.labels, std::span<const Weight>(init_labels));
  const VertexId src_val[1] = {source};
  device.CopyToDeviceRange(d.frontier[0], 0, std::span<const VertexId>(src_val), false);
  const uint32_t one_val[1] = {1};
  device.CopyToDeviceRange(d.stamp, source, std::span<const uint32_t>(one_val), false);

  double kernel_ms = 0;
  uint32_t frontier_size = 1;
  uint32_t in_buf = 0;
  uint64_t activated_cum = 1;
  WorkList work;

  for (uint32_t iter = 1; frontier_size > 0 && iter <= options_.max_iterations; ++iter) {
    Buffer<VertexId>& fin = d.frontier[in_buf];
    Buffer<VertexId>& fout = d.frontier[in_buf ^ 1];
    Buffer<VertexId>& raw = d.edge_raw[iter & 1];

    // ---- Scan: per-frontier-vertex degree prefix (sizes the advance) ----
    auto scan_res = device.Launch(
        "gunrock_scan", {frontier_size, options_.block_size}, [&](WarpCtx& w) {
          uint32_t mask = w.ActiveMask();
          if (!mask) return;
          uint64_t base = w.WarpId() * kWarpSize;
          LaneArray<VertexId> v{};
          w.GatherContiguous(fin, base, mask, v);
          LaneArray<uint64_t> vi{}, vi1{};
          WarpCtx::ForActive(mask, [&](uint32_t lane) {
            vi[lane] = v[lane];
            vi1[lane] = v[lane] + 1;
          });
          LaneArray<EdgeId> s{}, e{};
          w.Gather(d.row, vi, mask, s);
          w.Gather(d.row, vi1, mask, e);
          w.ChargeAlu(3, mask);
          LaneArray<uint64_t> slot{};
          WarpCtx::ForActive(mask, [&](uint32_t lane) { slot[lane] = base + lane; });
          LaneArray<EdgeId> deg{};
          WarpCtx::ForActive(mask, [&](uint32_t lane) { deg[lane] = e[lane] - s[lane]; });
          w.Scatter(d.scan, slot, deg, mask);
        });
    kernel_ms += scan_res.compute_ms;

    // Host mirror of the decomposition (the device-side scan's result).
    auto fin_host = fin.HostSpan();
    work.src.clear();
    work.edge.clear();
    work.segment.clear();
    std::span<EdgeId> scan_host = d.scan.HostSpan();
    EdgeId running = 0;
    for (uint32_t i = 0; i < frontier_size; ++i) {
      VertexId v = fin_host[i];
      scan_host[i] = running;
      for (EdgeId e = csr.RowStart(v); e < csr.RowEnd(v); ++e) {
        work.src.push_back(v);
        work.edge.push_back(e);
        work.segment.push_back(i);
      }
      running += csr.OutDegree(v);
    }
    const uint64_t total_work = work.src.size();

    const uint32_t zeros[2] = {0, 0};
    device.CopyToDevice(d.cursors, std::span<const uint32_t>(zeros, 2), false);

    // ---- Advance: edge-parallel relaxation over the frontier ------------
    const uint32_t search_cost =
        std::max(1, static_cast<int>(std::ceil(std::log2(frontier_size + 1))));
    if (total_work > 0) {
      auto adv = device.Launch(
          "gunrock_advance", {total_work, options_.block_size}, [&](WarpCtx& w) {
            uint32_t mask = w.ActiveMask();
            if (!mask) return;
            uint64_t base = w.WarpId() * kWarpSize;

            // Sorted-search for each lane's owning frontier segment.
            LaneArray<uint64_t> seg_idx{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) {
              seg_idx[lane] = work.segment[base + lane];
            });
            LaneArray<EdgeId> seg_off{};
            w.Gather(d.scan, seg_idx, mask, seg_off);
            w.ChargeAlu(search_cost, mask);

            LaneArray<uint64_t> src_idx{}, edge_idx{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) {
              src_idx[lane] = work.src[base + lane];
              edge_idx[lane] = work.edge[base + lane];
            });
            LaneArray<Weight> src_label{};
            w.Gather(d.labels, src_idx, mask, src_label);
            LaneArray<VertexId> u{};
            w.Gather(d.col, edge_idx, mask, u);
            LaneArray<Weight> ew{};
            if (weighted) w.Gather(d.wts, edge_idx, mask, ew);

            LaneArray<uint64_t> u_idx{};
            LaneArray<Weight> cand{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) {
              u_idx[lane] = u[lane];
              cand[lane] = core::Propagate(algo, src_label[lane], ew[lane]);
            });
            LaneArray<Weight> cur{};
            w.Gather(d.labels, u_idx, mask, cur);
            uint32_t imask = 0;
            WarpCtx::ForActive(mask, [&](uint32_t lane) {
              if (core::Improves(algo, cand[lane], cur[lane])) imask |= 1u << lane;
            });
            w.ChargeAlu(2, mask);

            if (imask) {
              LaneArray<Weight> old{};
              if (core::IsWidest(algo)) {
                w.AtomicMax(d.labels, u_idx, cand, imask, old);
              } else {
                w.AtomicMin(d.labels, u_idx, cand, imask, old);
              }
              uint32_t cmask = 0;
              WarpCtx::ForActive(imask, [&](uint32_t lane) {
                if (core::Improves(algo, cand[lane], old[lane])) cmask |= 1u << lane;
              });
              if (cmask) {
                LaneArray<uint32_t> next_mark{};
                next_mark.fill(iter + 1);
                LaneArray<uint32_t> prev{};
                w.AtomicMax(d.stamp, u_idx, next_mark, cmask, prev);
              }
            }

            // Gunrock's advance emits the *entire* expanded neighbor list
            // into the output (edge) frontier; pruning is the filter's job.
            LaneArray<uint32_t> one{};
            one.fill(1);
            LaneArray<uint64_t> zero_idx{};
            LaneArray<uint32_t> slot{};
            w.AtomicAdd(d.cursors, zero_idx, one, mask, slot);
            LaneArray<uint64_t> slot_idx{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) { slot_idx[lane] = slot[lane]; });
            w.Scatter(raw, slot_idx, u, mask);
          });
      kernel_ms += adv.compute_ms;
    }

    uint32_t cursors_host[2] = {0, 0};
    device.CopyToHost(std::span<uint32_t>(cursors_host, 2), d.cursors, false);
    const uint32_t raw_count = cursors_host[0];

    // ---- Near/far partition (weighted only) -------------------------------
    // Gunrock's SSSP/SSWP enactor runs an extra pass over the expanded
    // frontier to split it into priority piles before filtering — one of
    // the reasons its weighted traversals are several times slower than its
    // BFS in the paper's Table III.
    if (weighted && raw_count > 0) {
      auto part = device.Launch(
          "gunrock_partition", {raw_count, options_.block_size}, [&](WarpCtx& w) {
            uint32_t mask = w.ActiveMask();
            if (!mask) return;
            uint64_t base = w.WarpId() * kWarpSize;
            LaneArray<VertexId> u{};
            w.GatherContiguous(raw, base, mask, u);
            LaneArray<uint64_t> u_idx{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) { u_idx[lane] = u[lane]; });
            LaneArray<Weight> lab{};
            w.Gather(d.labels, u_idx, mask, lab);
            w.ChargeAlu(4, mask);
            LaneArray<uint64_t> slot{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) { slot[lane] = base + lane; });
            w.Scatter(raw, slot, u, mask);  // pile writeback
          });
      kernel_ms += part.compute_ms;
    }

    // ---- Filter: deduplicate and compact the next vertex frontier --------
    if (raw_count > 0) {
      LaneArray<uint32_t> next_iter{};
      next_iter.fill(iter + 1);
      auto flt = device.Launch(
          "gunrock_filter", {raw_count, options_.block_size}, [&](WarpCtx& w) {
            uint32_t mask = w.ActiveMask();
            if (!mask) return;
            uint64_t base = w.WarpId() * kWarpSize;
            LaneArray<VertexId> u{};
            w.GatherContiguous(raw, base, mask, u);
            LaneArray<uint64_t> u_idx{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) { u_idx[lane] = u[lane]; });
            // Keep only vertices the advance actually improved...
            LaneArray<uint32_t> improved{};
            w.Gather(d.stamp, u_idx, mask, improved);
            uint32_t pmask = 0;
            WarpCtx::ForActive(mask, [&](uint32_t lane) {
              if (improved[lane] == iter + 1) pmask |= 1u << lane;
            });
            w.ChargeAlu(1, mask);
            if (!pmask) return;
            // ...and deduplicate them into the next vertex frontier.
            LaneArray<uint32_t> prev{};
            w.AtomicMax(d.qstamp, u_idx, next_iter, pmask, prev);
            uint32_t nmask = 0;
            WarpCtx::ForActive(pmask, [&](uint32_t lane) {
              if (prev[lane] < iter + 1) nmask |= 1u << lane;
            });
            if (!nmask) return;
            LaneArray<uint32_t> one{};
            one.fill(1);
            LaneArray<uint64_t> one_idx{};
            one_idx.fill(1);
            LaneArray<uint32_t> slot{};
            w.AtomicAdd(d.cursors, one_idx, one, nmask, slot);
            LaneArray<uint64_t> slot_idx{};
            WarpCtx::ForActive(nmask, [&](uint32_t lane) { slot_idx[lane] = slot[lane]; });
            w.Scatter(fout, slot_idx, u, nmask);
          });
      kernel_ms += flt.compute_ms;
    }

    device.CopyToHost(std::span<uint32_t>(cursors_host, 2), d.cursors, false);
    uint64_t prev_frontier = frontier_size;
    frontier_size = cursors_host[1];
    activated_cum += frontier_size;
    report.iteration_stats.push_back(
        {iter, prev_frontier, 0, device.NowMs(), activated_cum});
    in_buf ^= 1;
  }

  report.labels.resize(n);
  device.CopyToHost(std::span<Weight>(report.labels), d.labels);

  report.kernel_ms = kernel_ms;
  report.total_ms = device.NowMs();
  report.iterations = static_cast<uint32_t>(report.iteration_stats.size());
  for (Weight label : report.labels) {
    if (core::Reached(algo, label)) ++report.activated;
  }
  report.activated_fraction = n ? static_cast<double>(report.activated) / n : 0;
  report.counters = device.TotalCounters();
  report.timeline = device.GetTimeline();
  return report;
}

}  // namespace eta::baselines
