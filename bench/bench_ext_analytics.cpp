// Extension bench (beyond the paper's evaluation): the non-traversal
// workloads built on the same machinery — connected components via
// min-label propagation and PageRank — including the SMP on/off effect on
// PageRank's push kernel, supporting the paper's closing claim that SMP
// transfers to other vertex-centric frameworks.
#include "bench_common.hpp"
#include "core/framework.hpp"
#include "core/pagerank.hpp"
#include "graph/generators.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal", "orkut"});

  util::Table table({"Dataset", "CC iters", "CC total (ms)", "PR iters",
                     "PR total (ms)", "PR w/o SMP", "PR SMP speedup"});
  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);

    auto cc = core::EtaGraph().RunConnectedComponents(csr);

    core::PageRankOptions pr_opts;
    pr_opts.epsilon = 1e-7;
    pr_opts.max_iterations = 30;
    auto pr = core::RunPageRank(csr, pr_opts);
    pr_opts.use_smp = false;
    auto pr_no_smp = core::RunPageRank(csr, pr_opts);

    table.AddRow({graph::FindDataset(name)->paper_name, std::to_string(cc.iterations),
                  util::FormatDouble(cc.total_ms, 2), std::to_string(pr.iterations),
                  util::FormatDouble(pr.total_ms, 2),
                  util::FormatDouble(pr_no_smp.total_ms, 2),
                  util::FormatDouble(pr_no_smp.total_ms / pr.total_ms, 2) + "x"});
  }
  std::printf("%s\n", table.Render("Extensions - connected components & PageRank on "
                                   "the EtaGraph substrate (SMP portability check)")
                          .c_str());
  return 0;
}
