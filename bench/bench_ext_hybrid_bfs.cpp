// Extension bench: direction-optimizing (push/pull) BFS vs push-only BFS
// on the social stand-ins — the Beamer-style optimization the paper cites
// as related work [34], implemented on the same simulated substrate.
#include "bench_common.hpp"
#include "core/framework.hpp"
#include "core/hybrid_bfs.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, {"slashdot", "livejournal", "orkut"});

  util::Table table({"Dataset", "Push-only kernel (ms)", "Hybrid kernel (ms)",
                     "Speedup", "Pull iterations"});
  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);

    core::HybridBfsOptions push_only;
    push_only.alpha = 0.5;  // never switch
    auto push = core::RunHybridBfs(csr, graph::kQuerySource, push_only);

    auto hybrid = core::RunHybridBfs(csr, graph::kQuerySource);

    table.AddRow({graph::FindDataset(name)->paper_name,
                  util::FormatDouble(push.kernel_ms, 3),
                  util::FormatDouble(hybrid.kernel_ms, 3),
                  util::FormatDouble(push.kernel_ms / hybrid.kernel_ms, 2) + "x",
                  std::to_string(hybrid.bottom_up_iterations) + "/" +
                      std::to_string(hybrid.iterations)});
  }
  std::printf("%s\n", table.Render("Extension - direction-optimizing BFS (pull mode "
                                   "kicks in on the fat middle iterations of the "
                                   "social graphs)")
                          .c_str());
  return 0;
}
