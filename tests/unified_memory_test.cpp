// Tests for the unified-memory model: fault-driven migration with merge
// escalation, prefetch, arrival gating, oversubscription/eviction — the
// machinery behind Table V, Fig 4, and the uk-2006 result.
#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "sim/unified_memory.hpp"

namespace eta::sim {
namespace {

DeviceSpec SmallSpec() {
  DeviceSpec spec;
  spec.device_memory_bytes = 2 * util::kMiB;
  return spec;
}

TEST(UnifiedMemory, FaultMigratesBaseWindow) {
  DeviceSpec spec = SmallSpec();
  UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  um.Register(1 << 20, 1 << 20);
  auto r = um.Touch(1 << 20, false, 0.0);
  EXPECT_EQ(r.fault_ops, 1u);
  EXPECT_EQ(r.migrated_bytes, 16 * util::kKiB);
  // Same page again: resident, no fault.
  auto r2 = um.Touch(1 << 20, false, 0.0);
  EXPECT_EQ(r2.fault_ops, 0u);
  EXPECT_EQ(r2.migrated_bytes, 0u);
}

TEST(UnifiedMemory, SequentialFaultsEscalateWindow) {
  DeviceSpec spec = SmallSpec();
  spec.device_memory_bytes = 64 * util::kMiB;
  UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  const uint64_t base = 1 << 24;
  um.Register(base, 16 * util::kMiB);
  // Touch pages in address order; migration sizes should grow toward the
  // 2 MB merge limit.
  uint64_t max_batch = 0;
  uint64_t addr = base;
  while (addr < base + 16 * util::kMiB) {
    auto r = um.Touch(addr, false, 0.0);
    max_batch = std::max(max_batch, r.migrated_bytes);
    addr += r.migrated_bytes > 0 ? r.migrated_bytes : spec.page_bytes;
  }
  EXPECT_EQ(max_batch, 1 * util::kMiB);  // fault-path cap (prefetch still moves 2 MB)
  EXPECT_GE(um.MigrationSizes().Min(), spec.page_bytes);
}

TEST(UnifiedMemory, RandomFaultsStaySmall) {
  DeviceSpec spec = SmallSpec();
  spec.device_memory_bytes = 256 * util::kMiB;
  UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  const uint64_t base = 1 << 24;
  um.Register(base, 64 * util::kMiB);
  // Far-apart touches never escalate past the 64 KB base window.
  for (int i = 0; i < 32; ++i) {
    auto r = um.Touch(base + uint64_t(i) * 2 * util::kMiB + (i % 3) * 4096, false, 0.0);
    EXPECT_LE(r.migrated_bytes, 32 * util::kKiB) << i;
  }
}

TEST(UnifiedMemory, PrefetchUsesMaxChunks) {
  DeviceSpec spec = SmallSpec();
  spec.device_memory_bytes = 64 * util::kMiB;
  UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  const uint64_t base = 1 << 24;
  const uint64_t bytes = 7 * util::kMiB;
  um.Register(base, bytes);
  double end = um.PrefetchToDevice(base, /*start_ms=*/1.0);
  EXPECT_GT(end, 1.0);
  EXPECT_NEAR(end - 1.0, spec.PcieMsForBytes(bytes), 1e-9);
  // 3 full 2 MB chunks + a 1 MB tail.
  const auto& sizes = um.MigrationSizes();
  EXPECT_EQ(sizes.Count(), 4u);
  EXPECT_EQ(sizes.Max(), 2 * util::kMiB);
  EXPECT_EQ(sizes.Sum(), bytes);
}

TEST(UnifiedMemory, PrefetchedPagesReportArrival) {
  DeviceSpec spec = SmallSpec();
  spec.device_memory_bytes = 64 * util::kMiB;
  UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  const uint64_t base = 1 << 24;
  um.Register(base, 8 * util::kMiB);
  double end = um.PrefetchToDevice(base, 0.0);
  // First chunk lands earlier than the last.
  auto first = um.Touch(base, false, 0.0);
  auto last = um.Touch(base + 8 * util::kMiB - 1, false, 0.0);
  EXPECT_EQ(first.fault_ops, 0u);
  EXPECT_LT(first.arrival_ms, last.arrival_ms);
  EXPECT_NEAR(last.arrival_ms, end, 1e-6);
}

TEST(UnifiedMemory, OversubscriptionEvicts) {
  DeviceSpec spec = SmallSpec();
  spec.device_memory_bytes = 1 * util::kMiB;  // budget smaller than range
  UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  const uint64_t base = 1 << 24;
  um.Register(base, 4 * util::kMiB);
  uint64_t addr = base;
  while (addr < base + 4 * util::kMiB) {
    auto r = um.Touch(addr, false, 0.0);
    addr += std::max<uint64_t>(r.migrated_bytes, spec.page_bytes);
  }
  EXPECT_LE(um.ResidentBytes(), spec.device_memory_bytes);
  EXPECT_GT(um.TotalEvictedBytes(), 0u);
  // Evicted head pages fault again on re-touch.
  auto r = um.Touch(base, false, 0.0);
  EXPECT_EQ(r.fault_ops, 1u);
}

TEST(UnifiedMemory, UnregisterReleasesResidency) {
  DeviceSpec spec = SmallSpec();
  UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  um.Register(1 << 20, 128 * util::kKiB);
  um.Touch(1 << 20, false, 0.0);
  EXPECT_GT(um.ResidentBytes(), 0u);
  um.Unregister(1 << 20);
  EXPECT_EQ(um.ResidentBytes(), 0u);
}

// --- Device-level UM integration ---------------------------------------------

TEST(DeviceUm, KernelFaultsArePaidOnce) {
  DeviceSpec spec;
  spec.device_memory_bytes = 32 * util::kMiB;
  Device device(spec);
  auto buf = device.Alloc<uint32_t>(1 << 16, MemKind::kUnified, "managed");
  auto first = device.Launch("k1", {1 << 16}, [&](WarpCtx& w) {
    LaneArray<uint32_t> out{};
    w.GatherContiguous(buf, w.WarpId() * 32, w.ActiveMask(), out);
  });
  EXPECT_GT(first.migrated_bytes, 0u);
  EXPECT_GT(first.fault_ops, 0u);
  // All pages now resident: second identical launch migrates nothing.
  auto second = device.Launch("k2", {1 << 16}, [&](WarpCtx& w) {
    LaneArray<uint32_t> out{};
    w.GatherContiguous(buf, w.WarpId() * 32, w.ActiveMask(), out);
  });
  EXPECT_EQ(second.migrated_bytes, 0u);
  EXPECT_LT(second.wall_ms, first.wall_ms);
}

TEST(DeviceUm, PrefetchEliminatesFaults) {
  DeviceSpec spec;
  spec.device_memory_bytes = 32 * util::kMiB;
  Device device(spec);
  auto buf = device.Alloc<uint32_t>(1 << 16, MemKind::kUnified, "managed");
  device.PrefetchAsync(buf);
  auto result = device.Launch("k", {1 << 16}, [&](WarpCtx& w) {
    LaneArray<uint32_t> out{};
    w.GatherContiguous(buf, w.WarpId() * 32, w.ActiveMask(), out);
  });
  EXPECT_EQ(result.fault_ops, 0u);
  // But the kernel still waited for its pages to land.
  EXPECT_GE(result.end_ms, spec.PcieMsForBytes(4 << 16) * 0.9);
}

TEST(DeviceUm, HostWritesVisibleToKernel) {
  Device device;
  auto buf = device.Alloc<uint32_t>(64, MemKind::kUnified, "managed");
  buf.HostSpan()[7] = 1234;
  device.Launch("k", {32}, [&](WarpCtx& w) {
    LaneArray<uint64_t> idx{};
    idx[0] = 7;
    LaneArray<uint32_t> out{};
    w.Gather(buf, idx, 1u, out);
    EXPECT_EQ(out[0], 1234u);
  });
}

TEST(DeviceUm, SynchronizeWaitsForPrefetch) {
  DeviceSpec spec;
  spec.device_memory_bytes = 64 * util::kMiB;
  Device device(spec);
  auto buf = device.Alloc<uint32_t>(1 << 20, MemKind::kUnified, "managed");
  double end = device.PrefetchAsync(buf);
  EXPECT_LT(device.NowMs(), end);  // async
  device.Synchronize();
  EXPECT_DOUBLE_EQ(device.NowMs(), end);
}

TEST(DeviceUm, TimelineRecordsFaultTransfers) {
  DeviceSpec spec;
  spec.device_memory_bytes = 32 * util::kMiB;
  Device device(spec);
  auto buf = device.Alloc<uint32_t>(1 << 16, MemKind::kUnified, "managed");
  device.Launch("k", {1 << 16}, [&](WarpCtx& w) {
    LaneArray<uint32_t> out{};
    w.GatherContiguous(buf, w.WarpId() * 32, w.ActiveMask(), out);
  });
  const Timeline& tl = device.GetTimeline();
  EXPECT_GT(tl.TotalMs(SpanKind::kCompute), 0.0);
  EXPECT_GT(tl.TotalMs(SpanKind::kTransferH2D), 0.0);
  EXPECT_GT(tl.OverlapMs(), 0.0);  // fault transfers overlap the kernel
}

// --- Timeline ------------------------------------------------------------------

TEST(Timeline, OverlapComputation) {
  Timeline tl;
  tl.Add(SpanKind::kCompute, 0, 10, "k");
  tl.Add(SpanKind::kTransferH2D, 5, 15, "t");
  EXPECT_DOUBLE_EQ(tl.TotalMs(SpanKind::kCompute), 10.0);
  EXPECT_DOUBLE_EQ(tl.TotalMs(SpanKind::kTransferH2D), 10.0);
  EXPECT_DOUBLE_EQ(tl.OverlapMs(), 5.0);
}

TEST(Timeline, AsciiRenderMarksBands) {
  Timeline tl;
  tl.Add(SpanKind::kCompute, 0, 50, "k");
  tl.Add(SpanKind::kTransferH2D, 25, 100, "t");
  std::string strip = tl.RenderAscii(100, 20);
  ASSERT_EQ(strip.size(), 20u);
  EXPECT_EQ(strip[0], '#');   // compute only
  EXPECT_EQ(strip[7], '%');   // both
  EXPECT_EQ(strip[15], '=');  // transfer only
}

}  // namespace
}  // namespace eta::sim
