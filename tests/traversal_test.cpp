// Unit tests of the shared traversal-label algebra (core/traversal.hpp) —
// the single source of truth for what BFS/SSSP/SSWP mean across all four
// frameworks and the CPU references.
#include <gtest/gtest.h>

#include "core/options.hpp"
#include "core/traversal.hpp"

namespace eta::core {
namespace {

TEST(Labels, InitValues) {
  EXPECT_EQ(InitLabel(Algo::kBfs, true), 0u);
  EXPECT_EQ(InitLabel(Algo::kBfs, false), kInf);
  EXPECT_EQ(InitLabel(Algo::kSssp, true), 0u);
  EXPECT_EQ(InitLabel(Algo::kSssp, false), kInf);
  // SSWP maximizes: the source has infinite bottleneck, others none.
  EXPECT_EQ(InitLabel(Algo::kSswp, true), kInf);
  EXPECT_EQ(InitLabel(Algo::kSswp, false), 0u);
}

TEST(Labels, PropagateBfsIgnoresWeight) {
  EXPECT_EQ(Propagate(Algo::kBfs, 3, 999), 4u);
}

TEST(Labels, PropagateSsspAddsWeight) {
  EXPECT_EQ(Propagate(Algo::kSssp, 3, 7), 10u);
}

TEST(Labels, PropagateSswpTakesMin) {
  EXPECT_EQ(Propagate(Algo::kSswp, 9, 4), 4u);
  EXPECT_EQ(Propagate(Algo::kSswp, 2, 8), 2u);
  EXPECT_EQ(Propagate(Algo::kSswp, kInf, 8), 8u);  // source bottleneck
}

TEST(Labels, ImprovesDirection) {
  EXPECT_TRUE(Improves(Algo::kBfs, 2, 5));
  EXPECT_FALSE(Improves(Algo::kBfs, 5, 2));
  EXPECT_FALSE(Improves(Algo::kBfs, 5, 5));  // strict
  EXPECT_TRUE(Improves(Algo::kSswp, 5, 2));
  EXPECT_FALSE(Improves(Algo::kSswp, 2, 5));
  EXPECT_FALSE(Improves(Algo::kSswp, 5, 5));
}

TEST(Labels, ReachedConventions) {
  EXPECT_TRUE(Reached(Algo::kBfs, 0));
  EXPECT_FALSE(Reached(Algo::kBfs, kInf));
  EXPECT_TRUE(Reached(Algo::kSswp, 1));
  EXPECT_FALSE(Reached(Algo::kSswp, 0));
}

TEST(Labels, WeightedPredicate) {
  EXPECT_FALSE(IsWeighted(Algo::kBfs));
  EXPECT_TRUE(IsWeighted(Algo::kSssp));
  EXPECT_TRUE(IsWeighted(Algo::kSswp));
}

TEST(Names, AlgoAndModeNames) {
  EXPECT_STREQ(AlgoName(Algo::kBfs), "BFS");
  EXPECT_STREQ(AlgoName(Algo::kSssp), "SSSP");
  EXPECT_STREQ(AlgoName(Algo::kSswp), "SSWP");
  EXPECT_STREQ(MemoryModeName(MemoryMode::kUnifiedPrefetch), "um+prefetch");
  EXPECT_STREQ(MemoryModeName(MemoryMode::kUnifiedOnDemand), "um");
  EXPECT_STREQ(MemoryModeName(MemoryMode::kExplicitCopy), "explicit");
}

// Monotonicity property: repeated propagation along any path can only make
// a label "worse or equal" than its prefix, so Improves(Propagate(x), x)
// must never hold with weights >= 1 — the invariant that guarantees
// traversal termination.
TEST(Labels, PropagationNeverImprovesOnItself) {
  for (Algo algo : {Algo::kBfs, Algo::kSssp, Algo::kSswp}) {
    for (graph::Weight label : {0u, 1u, 5u, 1000u, kInf - 100}) {
      for (graph::Weight w : {1u, 2u, 63u}) {
        graph::Weight next = Propagate(algo, label, w);
        EXPECT_FALSE(Improves(algo, next, label))
            << AlgoName(algo) << " label=" << label << " w=" << w;
      }
    }
  }
}

}  // namespace
}  // namespace eta::core
