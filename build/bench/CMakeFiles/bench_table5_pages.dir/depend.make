# Empty dependencies file for bench_table5_pages.
# This may be replaced when dependencies are built.
