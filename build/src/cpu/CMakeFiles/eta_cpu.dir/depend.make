# Empty dependencies file for eta_cpu.
# This may be replaced when dependencies are built.
