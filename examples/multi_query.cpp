// Concurrent multi-source queries (iBFS-style, see the paper's related
// work [10]): nearest-facility search. Given a delivery network and a set
// of warehouse locations, one multi-source SSSP labels every address with
// the distance to its *nearest* warehouse — one traversal instead of
// |warehouses| separate ones.
//
//   $ ./multi_query [--warehouses=N]
//
#include <cstdio>

#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace eta;

int main(int argc, char** argv) {
  std::string error;
  auto cl = util::CommandLine::Parse(argc, argv, &error);
  if (!cl) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const auto num_warehouses = static_cast<uint32_t>(cl->GetInt("warehouses", 8));

  // A city-like network: mostly-local links with a few long-range roads.
  auto edges = graph::MirrorEdges(graph::GenerateErdosRenyi(60'000, 300'000, 77), 1.0, 7);
  graph::Csr csr = graph::BuildCsr(std::move(edges));
  csr.DeriveWeights(123, /*max_weight=*/30);
  std::printf("delivery network: %u addresses, %u road segments\n", csr.NumVertices(),
              csr.NumEdges());

  // Deterministically scattered warehouse sites.
  util::SplitMix64 rng(5);
  std::vector<graph::VertexId> warehouses;
  for (uint32_t i = 0; i < num_warehouses; ++i) {
    warehouses.push_back(static_cast<graph::VertexId>(rng.NextBounded(csr.NumVertices())));
  }

  core::EtaGraph framework;
  core::RunReport multi = framework.RunMultiSource(csr, core::Algo::kSssp, warehouses);

  // The same answer via N single-source runs (what you'd do without the
  // multi-source extension) — compare cost.
  double single_total = 0;
  std::vector<graph::Weight> merged(csr.NumVertices(), core::kInf);
  for (graph::VertexId w : warehouses) {
    core::RunReport r = framework.Run(csr, core::Algo::kSssp, w);
    single_total += r.total_ms;
    for (size_t v = 0; v < merged.size(); ++v) {
      merged[v] = std::min(merged[v], r.labels[v]);
    }
  }

  bool same = merged == multi.labels;
  uint64_t reachable = 0;
  double sum = 0;
  for (graph::Weight d : multi.labels) {
    if (d != core::kInf) {
      ++reachable;
      sum += d;
    }
  }
  std::printf("\n%u warehouses cover %llu addresses; mean distance to nearest "
              "warehouse: %.1f\n",
              num_warehouses, static_cast<unsigned long long>(reachable),
              sum / static_cast<double>(reachable));
  std::printf("one multi-source traversal: %8.3f ms (simulated)\n", multi.total_ms);
  std::printf("%u single-source traversals: %8.3f ms (%.1fx more)\n", num_warehouses,
              single_total, single_total / multi.total_ms);
  std::printf("results identical: %s\n", same ? "OK" : "MISMATCH");
  return same ? 0 : 1;
}
