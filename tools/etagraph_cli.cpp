// etagraph — command-line driver for the library.
//
// Run any framework / algorithm / dataset combination and print the run
// report, without writing code:
//
//   etagraph --framework=etagraph --algo=bfs --dataset=livejournal
//   etagraph --framework=tigr --algo=sssp --graph=path/to/graph.gr --source=5
//   etagraph --framework=etagraph --algo=cc --dataset=orkut
//   etagraph --algo=pagerank --dataset=livejournal
//
// Flags:
//   --framework   etagraph | tigr | gunrock | cusha          (default etagraph)
//   --algo        bfs | sssp | sswp | cc | pagerank          (default bfs)
//   --dataset     one of the seven stand-ins  (or use --graph)
//   --graph       path to a Galois .gr or text edge-list file
//   --source      source vertex                               (default 0)
//   --k           EtaGraph degree limit                       (default 16)
//   --mode        um+prefetch | um | explicit | chunked       (default um+prefetch)
//   --no-smp      disable shared-memory prefetch
//   --scale       dataset stand-in scale in (0,1]             (default 1)
//   --verify      check labels against the CPU reference      (default true)
//   --timeline    print the transfer/compute strip chart
//   --check       run etacheck: all, or a comma list of
//                 memcheck,racecheck,synccheck,leakcheck (etagraph
//                 framework, pagerank, hybrid-bfs, cc). Exit 1 on any
//                 error finding.
//   --check-json  also write the findings as JSON to this path
//   --faults      inject device faults (DESIGN.md section 8): comma list of
//                 key=value pairs, e.g. --faults=seed=7,uecc=0.02,hang=0.01
//                 keys: seed, ecc, uecc, hang, lost, alloc (rates in [0,1]),
//                 watchdog (ms), words, ecc_at/uecc_at/hang_at/lost_at/
//                 alloc_at one-shots. etagraph traversals and cc only.
//                 Exit 1 when the device path fails despite recovery.
//   --profile     run etaprof (DESIGN.md section 9): record per-launch
//                 kernel profiles and print the nvprof-style summary table.
//                 etagraph traversals and cc only.
//   --trace-json  with --profile: also write the merged Chrome/Perfetto
//                 trace-event JSON (open at https://ui.perfetto.dev) to
//                 this path.
//   --async       run the query through the stream scheduler (DESIGN.md
//                 section 11): staging + topology prefetch as a copy-stream
//                 op, the traversal as a compute op gated on the stage
//                 event, then print the stream schedule. Answers and
//                 counters are bit-identical to the synchronous run.
//                 etagraph framework traversals only.
//   --verify-dag  with --async: run etaverify (DESIGN.md section 12) over
//                 the recorded stream DAG — static happens-before checks
//                 for unordered conflicting accesses, use-before-ready
//                 consumers, unbound waits, wait cycles, and orphan
//                 streams. Exit 1 on any finding.
//   --trace-requests  etatrace (DESIGN.md section 14): record the query's
//                 per-attempt fault/retry/rebuild timeline and print it.
//                 etagraph framework traversals and cc only. Off by
//                 default; with it off the run's output is byte-identical.
//   --trace-request-out  with --trace-requests: write the attempt timeline
//                 as JSON to this path (self-validated before writing).
//   --blackbox-out  with --trace-requests: write a flight-recorder style
//                 dump of the attempt events to this path. (SLO burn-rate
//                 alerts — --slo-alerts — live in etagraph_serve, which
//                 has per-class completion series to evaluate.)
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/cusha.hpp"
#include "baselines/gunrock.hpp"
#include "baselines/tigr.hpp"
#include "core/framework.hpp"
#include "core/pagerank.hpp"
#include "core/hybrid_bfs.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "prof/summary.hpp"
#include "prof/trace_export.hpp"
#include "sanitizer/config.hpp"
#include "sanitizer/report.hpp"
#include "sim/fault.hpp"
#include "sim/stream.hpp"
#include "trace/events.hpp"
#include "trace/flight_recorder.hpp"
#include "util/cli.hpp"
#include "verify/verify.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

using namespace eta;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "etagraph: %s\n", message.c_str());
  return 2;
}

void PrintFaults(const core::FaultStats& f) {
  if (f.launch_failures == 0 && f.ecc_corrected == 0 && !f.Failed()) return;
  std::printf("  faults      %llu launch failure(s) (%llu uecc, %llu hang), "
              "%llu ecc corrected\n",
              static_cast<unsigned long long>(f.launch_failures),
              static_cast<unsigned long long>(f.ecc_uncorrectable),
              static_cast<unsigned long long>(f.hangs),
              static_cast<unsigned long long>(f.ecc_corrected));
  std::printf("  recovery    %llu retr%s, %llu buffer(s) re-staged (%s), "
              "backoff %.3f ms%s%s\n",
              static_cast<unsigned long long>(f.retries), f.retries == 1 ? "y" : "ies",
              static_cast<unsigned long long>(f.restaged_buffers),
              util::FormatBytes(f.restaged_bytes).c_str(), f.backoff_ms,
              f.device_lost ? ", DEVICE LOST" : "",
              f.exhausted ? ", RETRIES EXHAUSTED" : "");
}

void PrintReport(const core::RunReport& r, bool timeline) {
  if (r.oom) {
    std::printf("%s: O.O.M (requested %s)\n", r.framework.c_str(),
                util::FormatBytes(r.oom_request_bytes).c_str());
    PrintFaults(r.faults);
    return;
  }
  if (r.faults.Failed()) {
    std::printf("%s %s: device path FAILED after recovery\n", r.framework.c_str(),
                core::AlgoName(r.algo));
    PrintFaults(r.faults);
    return;
  }
  std::printf("%s %s\n", r.framework.c_str(), core::AlgoName(r.algo));
  std::printf("  kernel      %10.3f ms (simulated)\n", r.kernel_ms);
  std::printf("  total       %10.3f ms (transfers + kernels + stalls)\n", r.total_ms);
  std::printf("  iterations  %10u\n", r.iterations);
  std::printf("  activated   %10llu (%.2f%%)\n",
              static_cast<unsigned long long>(r.activated),
              r.activated_fraction * 100);
  std::printf("  device mem  %10s peak explicit\n",
              util::FormatBytes(r.device_bytes_peak).c_str());
  if (r.migrated_bytes > 0) {
    std::printf("  UM migrated %10s in %zu ops\n",
                util::FormatBytes(r.migrated_bytes).c_str(), r.migration_sizes.size());
  }
  std::printf("  counters    ipc/sm=%.3f l1=%.1f%% l2=%.1f%% warp-eff=%.2f "
              "dramRd=%llu\n",
              r.counters.IpcPerSm(28), 100 * r.counters.L1HitRate(),
              100 * r.counters.L2HitRate(), r.counters.WarpEfficiency(),
              static_cast<unsigned long long>(r.counters.dram_read_transactions));
  PrintFaults(r.faults);
  if (timeline) {
    std::printf("  timeline    [%s]\n",
                r.timeline.RenderAscii(r.total_ms, 80).c_str());
  }
}

/// Prints the etaprof kernel summary and writes --trace-json if asked (the
/// emitted document is round-trip parsed before it hits disk, so a broken
/// trace can never be written silently). Returns 0, or 2 on a write/
/// validation failure.
int EmitProfile(const core::RunReport& r, const std::string& dataset_label,
                const std::string& trace_path) {
  std::printf("%s",
              prof::RenderKernelSummary(r.kernel_profiles, "etaprof kernel summary")
                  .c_str());
  if (trace_path.empty()) return 0;
  std::vector<prof::TraceSpan> spans;
  prof::AppendTimelineSpans(r.timeline, "device", 0, &spans);
  prof::AppendKernelSpans(r.kernel_profiles, "device", 0, &spans);
  const std::string json =
      prof::RenderChromeTrace(spans, {{"dataset", dataset_label}});
  std::string parse_error;
  if (!util::JsonParse(json, &parse_error)) {
    return Fail("trace JSON failed self-validation: " + parse_error);
  }
  std::ofstream out(trace_path);
  out << json;
  if (!out) return Fail("cannot write --trace-json file '" + trace_path + "'");
  std::printf("trace: %zu spans -> %s (open at https://ui.perfetto.dev)\n",
              spans.size(), trace_path.c_str());
  return 0;
}

/// etatrace (DESIGN.md section 14), single-query form: prints the per-attempt
/// fault/retry timeline the core retry loop recorded under --trace-requests,
/// and writes the optional JSON / flight-recorder artifacts. Returns 0, or 2
/// on a write/validation failure.
int EmitRequestTrace(const core::RunReport& r, const std::string& json_path,
                     const std::string& blackbox_path) {
  std::printf("etatrace attempt timeline (%zu attempt(s)):\n", r.attempts.size());
  for (const core::AttemptRecord& a : r.attempts) {
    std::printf("  attempt %-2u %-9s fault=%-6s backoff=%7.3f ms%s%s\n", a.attempt,
                a.succeeded ? "ok" : "failed",
                a.succeeded ? "-"
                            : trace::EventStatusName(trace::EventKind::kFault, a.fault),
                a.backoff_ms, a.budget_denied ? " BUDGET-DENIED" : "",
                a.restaged ? " restaged" : "");
  }
  if (!json_path.empty()) {
    std::string json = "{\"attempts\":[";
    for (size_t i = 0; i < r.attempts.size(); ++i) {
      const core::AttemptRecord& a = r.attempts[i];
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"attempt\":%u,\"succeeded\":%s,\"fault\":\"%s\""
                    ",\"backoff_ms\":%.4f,\"budget_denied\":%s,\"restaged\":%s}",
                    i > 0 ? "," : "", a.attempt, a.succeeded ? "true" : "false",
                    a.succeeded
                        ? ""
                        : trace::EventStatusName(trace::EventKind::kFault, a.fault),
                    a.backoff_ms, a.budget_denied ? "true" : "false",
                    a.restaged ? "true" : "false");
      json += buf;
    }
    json += "]}\n";
    std::string parse_error;
    if (!util::JsonParse(json, &parse_error)) {
      return Fail("request-trace JSON failed self-validation: " + parse_error);
    }
    std::ofstream out(json_path);
    out << json;
    if (!out) return Fail("cannot write --trace-request-out file '" + json_path + "'");
    std::printf("attempt timeline written to %s\n", json_path.c_str());
  }
  if (!blackbox_path.empty()) {
    trace::FlightRecorder recorder;
    for (const core::AttemptRecord& a : r.attempts) {
      trace::TraceEvent e;
      e.request_id = 0;
      e.kind = trace::EventKind::kFault;
      e.status = a.fault;
      e.a = static_cast<double>(a.attempt);
      e.b = a.backoff_ms;
      e.c = a.budget_denied ? 1 : 0;
      if (!a.succeeded) recorder.Record(e);
    }
    std::ofstream out(blackbox_path);
    out << recorder.Dump("cli-exit", r.total_ms, 0);
    if (!out) return Fail("cannot write --blackbox-out file '" + blackbox_path + "'");
    std::printf("flight-recorder dump written to %s\n", blackbox_path.c_str());
  }
  return 0;
}

/// Prints the etacheck block and writes --check-json if asked. Returns the
/// process exit code contribution: 1 when any error finding fired.
int EmitCheck(const sanitizer::SanitizerReport& check, const std::string& json_path) {
  std::printf("%s", check.Render(/*verbose=*/true).c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << check.Json() << "\n";
    if (!out) return Fail("cannot write --check-json file '" + json_path + "'");
  }
  return check.ErrorCount() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  auto cl = util::CommandLine::Parse(argc, argv, &error);
  if (!cl) return Fail(error);

  const std::string framework = cl->GetString("framework", "etagraph");
  const std::string algo_name = cl->GetString("algo", "bfs");
  const std::string dataset = cl->GetString("dataset", "");
  const std::string graph_path = cl->GetString("graph", "");
  const auto source = static_cast<graph::VertexId>(cl->GetInt("source", 0));
  const auto k = static_cast<uint32_t>(cl->GetInt("k", 16));
  const std::string mode_name = cl->GetString("mode", "um+prefetch");
  const bool smp = !cl->GetBool("no-smp", false);
  const double scale = cl->GetDouble("scale", 1.0);
  const bool verify = cl->GetBool("verify", true);
  const bool timeline = cl->GetBool("timeline", false);
  const std::string check_spec = cl->GetString("check", "");
  const std::string check_json = cl->GetString("check-json", "");
  const std::string faults_spec = cl->GetString("faults", "");
  const bool profile = cl->GetBool("profile", false);
  const std::string trace_json = cl->GetString("trace-json", "");
  const bool async = cl->GetBool("async", false);
  const bool verify_dag = cl->GetBool("verify-dag", false);
  const bool trace_requests = cl->GetBool("trace-requests", false);
  const std::string trace_request_out = cl->GetString("trace-request-out", "");
  const std::string blackbox_out = cl->GetString("blackbox-out", "");
  if (auto unused = cl->UnusedFlags(); !unused.empty()) {
    return Fail("unknown flag --" + unused.front());
  }
  if (!trace_json.empty() && !profile) {
    return Fail("--trace-json requires --profile");
  }
  if (verify_dag && !async) {
    return Fail("--verify-dag requires --async");
  }
  if (!trace_request_out.empty() && !trace_requests) {
    return Fail("--trace-request-out requires --trace-requests");
  }
  if (!blackbox_out.empty() && !trace_requests) {
    return Fail("--blackbox-out requires --trace-requests");
  }

  sanitizer::Config check_cfg{};
  if (!check_spec.empty()) {
    auto parsed = sanitizer::Config::Parse(check_spec);
    if (!parsed) {
      return Fail(
          "bad --check '" + check_spec +
          "' (want all, or a comma list of memcheck,racecheck,synccheck,leakcheck)");
    }
    check_cfg = *parsed;
  }
  if (!check_json.empty() && !check_cfg.Enabled()) {
    return Fail("--check-json requires --check");
  }

  sim::FaultConfig fault_cfg{};
  if (!faults_spec.empty()) {
    std::string fault_error;
    auto parsed = sim::FaultConfig::Parse(faults_spec, &fault_error);
    if (!parsed) return Fail("bad --faults: " + fault_error);
    fault_cfg = *parsed;
  }

  // --- Load the graph -------------------------------------------------------
  graph::Csr csr;
  if (!graph_path.empty()) {
    csr = graph_path.size() > 3 && graph_path.ends_with(".gr")
              ? graph::ReadGaloisGr(graph_path)
              : graph::ReadEdgeListText(graph_path);
    if (!csr.HasWeights()) csr.DeriveWeights(1);
  } else if (!dataset.empty()) {
    if (!graph::FindDataset(dataset)) return Fail("unknown dataset '" + dataset + "'");
    csr = graph::BuildDatasetCached(dataset, "eta_dataset_cache", scale);
  } else {
    return Fail("pass --dataset=<name> or --graph=<path>; datasets: slashdot, "
                "livejournal, orkut, rmat, uk2005, sk2005, uk2006");
  }
  if (source >= csr.NumVertices()) return Fail("--source out of range");
  std::printf("graph: %u vertices, %u edges, topology %s\n", csr.NumVertices(),
              csr.NumEdges(), util::FormatBytes(csr.TopologyBytes()).c_str());

  if (async && (algo_name == "pagerank" || algo_name == "cc" ||
                algo_name == "hybrid-bfs")) {
    return Fail("--async supports etagraph traversals (bfs, sssp, sswp) only");
  }

  // --- PageRank path ---------------------------------------------------------
  if (algo_name == "pagerank") {
    if (fault_cfg.Enabled()) {
      return Fail("--faults supports etagraph traversals and cc only");
    }
    if (profile) {
      return Fail("--profile supports etagraph traversals and cc only");
    }
    if (trace_requests) {
      return Fail("--trace-requests supports etagraph traversals and cc only");
    }
    core::PageRankOptions options;
    options.use_smp = smp;
    options.degree_limit = k;
    options.check = check_cfg;
    auto result = core::RunPageRank(csr, options);
    if (result.oom) return Fail("device out of memory");
    std::printf("PageRank: %u iterations, kernel %.3f ms, total %.3f ms\n",
                result.iterations, result.kernel_ms, result.total_ms);
    return check_cfg.Enabled() ? EmitCheck(result.check, check_json) : 0;
  }

  // --- Traversals -------------------------------------------------------------
  core::Algo algo;
  if (algo_name == "bfs") {
    algo = core::Algo::kBfs;
  } else if (algo_name == "sssp") {
    algo = core::Algo::kSssp;
  } else if (algo_name == "sswp") {
    algo = core::Algo::kSswp;
  } else if (algo_name == "cc") {
    core::EtaGraphOptions options;
    options.check = check_cfg;
    options.faults = fault_cfg;
    options.profile = profile;
    options.trace_requests = trace_requests;
    auto report = core::EtaGraph(options).RunConnectedComponents(csr);
    PrintReport(report, timeline);
    if (profile) {
      if (int rc = EmitProfile(report, !dataset.empty() ? dataset : graph_path,
                               trace_json);
          rc != 0) {
        return rc;
      }
    }
    if (trace_requests) {
      if (int rc = EmitRequestTrace(report, trace_request_out, blackbox_out); rc != 0) {
        return rc;
      }
    }
    if (check_cfg.Enabled()) {
      if (int rc = EmitCheck(report.check, check_json); rc != 0) return rc;
    }
    return report.DeviceFailed() ? 1 : 0;
  } else if (algo_name == "hybrid-bfs") {
    if (fault_cfg.Enabled()) {
      return Fail("--faults supports etagraph traversals and cc only");
    }
    if (profile) {
      return Fail("--profile supports etagraph traversals and cc only");
    }
    if (trace_requests) {
      return Fail("--trace-requests supports etagraph traversals and cc only");
    }
    core::HybridBfsOptions options;
    options.use_smp = smp;
    options.degree_limit = k;
    options.check = check_cfg;
    auto result = core::RunHybridBfs(csr, source, options);
    if (result.oom) return Fail("device out of memory");
    std::printf("Hybrid BFS: %u iterations (%u bottom-up), kernel %.3f ms, "
                "total %.3f ms\n",
                result.iterations, result.bottom_up_iterations, result.kernel_ms,
                result.total_ms);
    if (verify) {
      bool ok = result.levels == core::CpuReference(csr, core::Algo::kBfs, source);
      std::printf("verify: %s\n", ok ? "OK" : "MISMATCH");
      if (!ok) return 1;
    }
    return check_cfg.Enabled() ? EmitCheck(result.check, check_json) : 0;
  } else {
    return Fail("unknown --algo '" + algo_name + "'");
  }

  if (check_cfg.Enabled() && framework != "etagraph") {
    return Fail("--check supports --framework=etagraph only");
  }
  if (fault_cfg.Enabled() && framework != "etagraph") {
    return Fail("--faults supports --framework=etagraph only");
  }
  if (profile && framework != "etagraph") {
    return Fail("--profile supports --framework=etagraph only");
  }
  if (async && framework != "etagraph") {
    return Fail("--async supports --framework=etagraph only");
  }
  if (trace_requests && framework != "etagraph") {
    return Fail("--trace-requests supports --framework=etagraph only");
  }

  core::RunReport report;
  bool dag_clean = true;
  if (framework == "etagraph") {
    core::EtaGraphOptions options;
    options.degree_limit = k;
    options.use_smp = smp;
    options.check = check_cfg;
    options.faults = fault_cfg;
    options.profile = profile;
    options.trace_requests = trace_requests;
    if (mode_name == "um+prefetch") {
      options.memory_mode = core::MemoryMode::kUnifiedPrefetch;
    } else if (mode_name == "um") {
      options.memory_mode = core::MemoryMode::kUnifiedOnDemand;
    } else if (mode_name == "explicit") {
      options.memory_mode = core::MemoryMode::kExplicitCopy;
    } else if (mode_name == "chunked") {
      options.memory_mode = core::MemoryMode::kChunkedStream;
    } else {
      return Fail("unknown --mode '" + mode_name + "'");
    }
    if (async) {
      // Stream-scheduled one-shot (DESIGN.md section 11): staging plus the
      // hoisted topology prefetch run as one copy-stream op, the traversal
      // as a compute op gated on the stage event. The functional run is
      // exactly the synchronous one — only the schedule view is new (and a
      // single query has nothing to overlap with; the serving layer's
      // --async pipelines real work across these streams).
      core::ResidentGraph resident(csr, options,
                                   /*stage_weights=*/core::IsWeighted(algo));
      sim::StreamScheduler streams(options.spec);
      if (verify_dag) streams.EnableDagLog();
      const uint32_t topo_alloc = streams.RegisterAlloc("graph/topo");
      const uint32_t state_alloc = streams.RegisterAlloc("graph/state");
      const sim::Stream copy = streams.CreateStream("copy");
      const sim::Stream compute = streams.CreateStream("compute");
      const double stage_ms = resident.LoadMs() + resident.PrefetchTopology();
      streams.CopyAsync(copy, sim::StreamOpKind::kCopyH2D, stage_ms, "stage",
                        /*earliest_ms=*/0, resident.DeviceBytesPeak());
      streams.AnnotateLastOp({{topo_alloc, true}, {state_alloc, true}});
      const sim::Event staged = streams.CreateEvent();
      streams.Record(copy, staged);
      streams.Wait(compute, staged);
      streams.LaunchAsync(compute, algo_name, [&](double) {
        report = resident.Run(algo, source);
        return sim::StreamScheduler::LaunchOutcome{report.query_ms,
                                                   report.DeviceFailed()};
      });
      streams.AnnotateLastOp({{topo_alloc, false}, {state_alloc, true}});
      resident.Shutdown();
      if (const sanitizer::SanitizerReport* c = resident.CheckReport()) {
        report.check = *c;
      }
      std::printf("stream schedule (simulated):\n");
      for (const sim::StreamOp& op : streams.Ops()) {
        std::printf("  %-8s %-9s %-12s %9.3f -> %9.3f ms\n",
                    sim::StreamOpKindName(op.kind),
                    sim::StreamOpStatusName(op.status), op.label.c_str(),
                    op.start_ms, op.end_ms);
      }
      std::printf("  device sync %.3f ms, copy/compute overlap %.3f ms\n",
                  streams.SynchronizeMs(), streams.OverlapMs());
      if (verify_dag) {
        // Printing the schedule above was the host's synchronize.
        streams.HostJoinAll();
        const verify::DagReport dag = verify::VerifyDag(streams);
        std::printf("%s", dag.Render(/*verbose=*/true).c_str());
        dag_clean = dag.Clean();
      }
    } else {
      report = core::EtaGraph(options).Run(csr, algo, source);
    }
  } else if (framework == "tigr") {
    report = baselines::Tigr().Run(csr, algo, source);
  } else if (framework == "gunrock") {
    report = baselines::Gunrock().Run(csr, algo, source);
  } else if (framework == "cusha") {
    report = baselines::Cusha().Run(csr, algo, source);
  } else {
    return Fail("unknown --framework '" + framework + "'");
  }

  PrintReport(report, timeline);
  if (profile) {
    if (int rc = EmitProfile(report, !dataset.empty() ? dataset : graph_path,
                             trace_json);
        rc != 0) {
      return rc;
    }
  }
  if (trace_requests) {
    if (int rc = EmitRequestTrace(report, trace_request_out, blackbox_out); rc != 0) {
      return rc;
    }
  }
  if (!report.DeviceFailed() && verify) {
    bool ok = report.labels == core::CpuReference(csr, algo, source);
    std::printf("  verify      %10s vs CPU reference\n", ok ? "OK" : "MISMATCH");
    if (!ok) return 1;
  }
  if (check_cfg.Enabled()) {
    if (int rc = EmitCheck(report.check, check_json); rc != 0) return rc;
  }
  if (!dag_clean) return 1;
  return report.DeviceFailed() ? 1 : 0;
}
