// CUDA Unified Memory model: page residency, fault-driven migration with
// driver-style merge escalation, cudaMemPrefetchAsync, and oversubscription
// with LRU eviction.
//
// Paper touchpoints:
//   - Table V: migrated page sizes (4 KB .. ~1 MB averaging ~44 KB without
//     prefetch; ~2 MB chunks with prefetch) — MigrationSizes() feeds that
//     table directly;
//   - Fig 4: fault transfers overlapping kernel execution;
//   - "oversubscription of UM supported by Pascal" — uk-2006's CSR exceeds
//     simulated device capacity, so eviction keeps the run alive where
//     cudaMalloc-based frameworks OOM.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/spec.hpp"
#include "util/histogram.hpp"

namespace eta::sim {

class UnifiedMemory {
 public:
  explicit UnifiedMemory(const DeviceSpec& spec) : spec_(spec) {}

  /// Registers a managed allocation [base_addr, base_addr + bytes).
  /// Pages start host-resident.
  void Register(uint64_t base_addr, uint64_t bytes);
  void Unregister(uint64_t base_addr);

  /// Bytes of device memory available to managed pages; the device updates
  /// this whenever explicit allocations change.
  void SetDeviceBudget(uint64_t bytes) { budget_bytes_ = bytes; }

  struct TouchResult {
    uint64_t migrated_bytes = 0;   // moved host->device right now (a fault)
    uint32_t fault_ops = 0;        // migration operations (each pays latency)
    double arrival_ms = 0;         // if in-flight via prefetch: ready time
    uint64_t evicted_bytes = 0;    // displaced to host to make room
    bool cache_flush = false;      // eviction happened: stale sectors exist
  };

  /// Models a GPU-side access to `addr` at simulated time `now_ms`.
  /// Non-resident pages fault and migrate (merged per the escalation
  /// policy); pages scheduled by a prefetch report their arrival time.
  TouchResult Touch(uint64_t addr, bool write, double now_ms);

  /// cudaMemPrefetchAsync: schedules migration of the whole allocation in
  /// max_migration_bytes chunks starting at `start_ms`, at full PCIe rate.
  /// Returns the completion time. Pages become "in flight" with linear
  /// arrival times; kernels touching them stall until arrival.
  double PrefetchToDevice(uint64_t base_addr, double start_ms);

  /// True if `addr` falls inside a registered managed range.
  bool IsManaged(uint64_t addr) const;

  uint64_t ResidentBytes() const { return resident_bytes_; }
  /// Sizes of every completed migration operation (Table V).
  const util::Histogram& MigrationSizes() const { return migration_sizes_; }
  uint64_t TotalMigratedBytes() const { return migration_sizes_.Sum(); }
  uint64_t TotalEvictedBytes() const { return evicted_bytes_; }

 private:
  enum class PageState : uint8_t { kHost, kInFlight, kResident };

  struct Range {
    uint64_t base = 0;
    uint64_t bytes = 0;
    std::vector<PageState> state;   // per page
    std::vector<uint8_t> dirty;
    std::vector<float> arrival_ms;  // valid when kInFlight
    /// Migration-merge escalation: consecutive nearby faults double the
    /// migration window (4 KB -> ... -> max_migration_bytes), mimicking the
    /// UM driver's density prefetcher. Distant faults reset it.
    uint32_t window_log = 0;
    uint64_t last_fault_page = ~0ULL;
  };

  Range* FindRange(uint64_t addr);
  const Range* FindRangeConst(uint64_t addr) const;
  uint64_t PageOf(const Range& r, uint64_t addr) const {
    return (addr - r.base) / spec_.page_bytes;
  }
  /// Evicts host-ward until `needed` bytes fit in the budget. Returns
  /// evicted byte count.
  uint64_t EnsureRoom(uint64_t needed);

  const DeviceSpec& spec_;
  std::map<uint64_t, Range> ranges_;  // base -> range
  uint64_t budget_bytes_ = 0;
  uint64_t resident_bytes_ = 0;
  uint64_t evicted_bytes_ = 0;
  util::Histogram migration_sizes_;
  /// FIFO of resident pages (range base, page index) for eviction order.
  std::deque<std::pair<uint64_t, uint64_t>> resident_fifo_;
};

}  // namespace eta::sim
