// Multi-source batching: fold compatible requests into one launch, then
// demultiplex per-request results.
//
// Requests are compatible when they run the same batchable algorithm (BFS
// or SSSP — the traversals whose multi-source merge plus per-source reach
// attribution reproduce every request's individual answer exactly). A
// folded batch executes as a single attributed RunMultiSource launch:
// topology reads and frontier work are shared across the requests, and
// each request's reached-vertex count is read back from the per-source
// attribution masks, bit-identical to running it alone. Anything that
// cannot be folded — SSWP, or a batch of one — takes the sequential
// fallback path, so batching is purely an optimization, never a semantic
// change.
#pragma once

#include <vector>

#include "serve/session.hpp"
#include "serve/types.hpp"
#include "sim/stream.hpp"
#include "trace/sink.hpp"

namespace eta::serve {

/// A set of admitted requests dispatched as one unit. All requests share
/// one algorithm and one target graph.
struct Batch {
  core::Algo algo = core::Algo::kBfs;
  uint32_t graph_id = 0;
  std::vector<Request> requests;
};

/// True if `algo` queries may be folded into one multi-source launch.
bool Batchable(core::Algo algo);

/// What one dispatch did. A device failure (retry budget exhausted, device
/// lost, or mid-query OOM) is an outcome, not a crash: the requests the
/// device could not answer come back in `unserved` for the engine to retry
/// on a rebuilt session or hand to the CPU fallback.
struct BatchOutcome {
  /// Per-request results for everything the device answered, in request
  /// order.
  std::vector<QueryResult> results;
  /// Requests left unanswered by a device failure, in request order.
  std::vector<Request> unserved;
  /// Fault/recovery counters accumulated across the batch's runs (including
  /// failed ones).
  core::FaultStats faults;
  /// Total simulated time the dispatch consumed — failed attempts, retries,
  /// and backoff included.
  double duration_ms = 0;
  /// Device cycles this dispatch consumed (sum of the runs'
  /// query_counters.elapsed_cycles) — the actual-cost observation the
  /// engine's cost model records per served query.
  double cycles = 0;
  /// A run came back DeviceFailed(); `unserved` is non-empty.
  bool device_failed = false;
};

/// Async dispatch context (DESIGN.md section 11). When passed to
/// ExecuteBatch, every launch wave is enqueued as a compute op on `stream`
/// of `streams` instead of being charged on a private running clock: the
/// wave's start honours the stream tail (anything the caller enqueued
/// first — a staging copy, a wait on a pre-stage event) and the compute
/// engine's FIFO, and its timestamps come from the scheduled op. The
/// functional execution (RunBatch/RunQuery, counters, sanitizer events,
/// fault decisions) is exactly the synchronous path's; with a fresh stream
/// and idle engines the schedule — and so the whole outcome — is
/// bit-identical to the sync overload. A wave fault fails the stream, and
/// the remaining waves surface as cancelled ops (zero duration, work never
/// run) rather than silently disappearing from the schedule.
struct BatchStreamContext {
  sim::StreamScheduler* streams = nullptr;
  sim::Stream stream{};
  /// etaverify allocation handles of the session being dispatched
  /// (kNoAlloc when the DAG log is off): each wave that actually runs is
  /// annotated as reading the staged topology and writing the session's
  /// per-query state; cancelled waves never ran and carry no accesses.
  uint32_t topo_alloc = sim::DagAccess::kNoAlloc;
  uint32_t state_alloc = sim::DagAccess::kNoAlloc;
};

/// etatrace emission context (DESIGN.md section 14). When passed, every
/// launch wave emits one kWave event per folded request (op_id = the
/// wave's stream-DAG op index under async dispatch, -1 sync) and the
/// retry loop's failures surface as kFault events attributed to the
/// wave's head request. With tag_ops set (trace_requests on), async
/// launch waves are additionally tagged with the head request id via
/// sim::StreamScheduler::TagLastOp so etaverify findings can name their
/// victim request. All host-side bookkeeping: the simulated schedule is
/// untouched.
struct BatchTraceContext {
  trace::EventSink* sink = nullptr;
  int16_t shard = -1;   // stamped into every emitted event
  bool tag_ops = false;
};

/// Executes `batch` on `session` starting at simulated time `start_ms`.
/// Multi-request batches run as one attributed multi-source launch and are
/// demultiplexed; size-one or non-batchable batches run sequentially (the
/// correctness fallback). Per-source attribution masks carry one bit per
/// source (core::ResidentGraph::kMaxAttributedSources = 32 wide), so a
/// batch beyond the cap splits into successive launch waves of at most the
/// cap — each wave is its own attributed launch with its own start/finish
/// stamps and batch_size, so a 64-request dispatch answers bit-identically
/// to two 32-request dispatches. On a device failure the remaining
/// requests are returned unserved rather than half-answered.
/// With `ctx`, waves are scheduled as stream ops (see BatchStreamContext).
BatchOutcome ExecuteBatch(GraphSession& session, const Batch& batch, double start_ms,
                          const BatchStreamContext* ctx = nullptr,
                          const BatchTraceContext* tctx = nullptr);

}  // namespace eta::serve
