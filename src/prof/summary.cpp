#include "prof/summary.hpp"

#include <algorithm>
#include <map>

#include "util/table.hpp"

namespace eta::prof {

std::vector<KernelSummaryRow> SummarizeKernels(
    std::span<const sim::KernelProfile> profiles) {
  std::map<std::string, KernelSummaryRow> by_name;
  double grand_total = 0;
  for (const sim::KernelProfile& p : profiles) {
    KernelSummaryRow& row = by_name[p.name];
    if (row.calls == 0) {
      row.name = p.name;
      row.min_ms = p.DurationMs();
    }
    ++row.calls;
    if (!p.Ok()) ++row.failed;
    const double dur = p.DurationMs();
    row.total_ms += dur;
    row.min_ms = std::min(row.min_ms, dur);
    row.max_ms = std::max(row.max_ms, dur);
    row.cycles += p.counters.elapsed_cycles;
    grand_total += dur;
  }
  std::vector<KernelSummaryRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    row.avg_ms = row.total_ms / static_cast<double>(row.calls);
    row.time_pct = grand_total > 0 ? 100.0 * row.total_ms / grand_total : 0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const KernelSummaryRow& a, const KernelSummaryRow& b) {
    if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
    return a.name < b.name;
  });
  return rows;
}

std::string RenderKernelSummary(std::span<const sim::KernelProfile> profiles,
                                const std::string& title) {
  util::Table table({"Time %", "Calls", "Failed", "Total ms", "Avg ms", "Min ms",
                     "Max ms", "Cycles", "Kernel"});
  for (const KernelSummaryRow& row : SummarizeKernels(profiles)) {
    table.AddRow({util::FormatDouble(row.time_pct, 1), std::to_string(row.calls),
                  std::to_string(row.failed), util::FormatDouble(row.total_ms, 3),
                  util::FormatDouble(row.avg_ms, 3), util::FormatDouble(row.min_ms, 3),
                  util::FormatDouble(row.max_ms, 3), util::FormatDouble(row.cycles, 0),
                  row.name});
  }
  return table.Render(title);
}

}  // namespace eta::prof
