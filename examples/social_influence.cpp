// Social-network influence radius: the workload the paper's introduction
// motivates. Generates a LiveJournal-like social graph, runs BFS from a
// seed user, and reports how many accounts each "degree of separation"
// reaches — then shows why frontier-based execution matters by comparing
// EtaGraph's per-iteration activity against the flat per-iteration cost an
// edge-centric system (CuSha-style) would pay.
//
//   $ ./social_influence [--edges=N] [--seed-user=V]
//
#include <cstdio>
#include <map>

#include "baselines/cusha.hpp"
#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace eta;

int main(int argc, char** argv) {
  std::string error;
  auto cl = util::CommandLine::Parse(argc, argv, &error);
  if (!cl) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const auto edges_target = static_cast<uint64_t>(cl->GetInt("edges", 400'000));
  const auto seed_user = static_cast<graph::VertexId>(cl->GetInt("seed-user", 0));

  // A social graph: power-law skew, high reciprocity.
  graph::RmatParams params;
  params.scale = 16;
  params.num_edges = edges_target / 2;
  params.a = 0.57;
  params.b = 0.19;
  params.c = 0.19;
  params.seed = 2024;
  auto edges = graph::MirrorEdges(graph::GenerateRmat(params), 0.7, 7);
  graph::VertexId n = 0;
  edges = graph::CompactVertexIds(std::move(edges), &n);
  graph::Csr csr = graph::BuildCsr(std::move(edges));
  csr.DeriveWeights(1);
  std::printf("social graph: %u accounts, %u follow edges\n", csr.NumVertices(),
              csr.NumEdges());

  core::RunReport report = core::EtaGraph().Run(csr, core::Algo::kBfs, seed_user);

  // Degrees of separation histogram.
  std::map<graph::Weight, uint64_t> by_hops;
  for (graph::Weight level : report.labels) {
    if (level != core::kInf) ++by_hops[level];
  }
  std::printf("\ninfluence radius of account %u:\n", seed_user);
  uint64_t cumulative = 0;
  for (auto [hops, count] : by_hops) {
    cumulative += count;
    std::printf("  %u hop(s): %8llu accounts (cumulative %5.1f%%)\n", hops,
                static_cast<unsigned long long>(count),
                100.0 * cumulative / csr.NumVertices());
  }

  // Frontier economics: work EtaGraph actually scheduled per iteration vs
  // the |E| an edge-centric pass would stream every iteration.
  std::printf("\nper-iteration scheduled shadow vertices (vs %u edges/iter for an\n"
              "edge-centric framework):\n",
              csr.NumEdges());
  for (const auto& it : report.iteration_stats) {
    std::printf("  iter %2u: %8llu active, %8llu shadow vertices\n", it.iteration,
                static_cast<unsigned long long>(it.active_vertices),
                static_cast<unsigned long long>(it.shadow_vertices));
  }

  auto cusha = baselines::Cusha().Run(csr, core::Algo::kBfs, seed_user);
  std::printf("\nsimulated time: EtaGraph %.3f ms vs edge-centric CuSha %.3f ms "
              "(%.1fx)\n",
              report.total_ms, cusha.total_ms, cusha.total_ms / report.total_ms);
  return 0;
}
