file(REMOVE_RECURSE
  "libeta_baselines.a"
)
