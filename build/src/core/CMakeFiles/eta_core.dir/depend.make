# Empty dependencies file for eta_core.
# This may be replaced when dependencies are built.
