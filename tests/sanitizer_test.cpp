// etacheck tests: unit-level plants against a raw device, planted bugs in
// the real shipping kernels (via EtaGraphOptions::inject), the
// zero-findings gate over every clean algorithm/memory-mode combination,
// and the zero-overhead guarantee (identical counters and clock with the
// checker attached).
#include <gtest/gtest.h>

#include <vector>

#include "core/framework.hpp"
#include "core/hybrid_bfs.hpp"
#include "core/pagerank.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sanitizer/sanitizer.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "sim/device.hpp"

namespace eta {
namespace {

using sanitizer::Config;
using sanitizer::Finding;
using sanitizer::FindingKind;
using sanitizer::Sanitizer;
using sim::Buffer;
using sim::kWarpSize;
using sim::LaneArray;
using sim::WarpCtx;

graph::Csr SmallSocialGraph() {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = 7;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(99);
  return csr;
}

Config MemcheckOnly() {
  Config c;
  c.memcheck = true;
  return c;
}

Config RacecheckOnly() {
  Config c;
  c.racecheck = true;
  return c;
}

Config SynccheckOnly() {
  Config c;
  c.synccheck = true;
  return c;
}

Config LeakcheckOnly() {
  Config c;
  c.leakcheck = true;
  return c;
}

// --- Config parsing ---------------------------------------------------------

TEST(SanitizerConfig, ParsesToolLists) {
  auto all = Config::Parse("all");
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->memcheck && all->racecheck && all->synccheck && all->leakcheck);

  // A bare --check flag surfaces as the string "true".
  auto bare = Config::Parse("true");
  ASSERT_TRUE(bare.has_value());
  EXPECT_TRUE(bare->memcheck && bare->racecheck && bare->synccheck && bare->leakcheck);

  auto two = Config::Parse("memcheck,synccheck");
  ASSERT_TRUE(two.has_value());
  EXPECT_TRUE(two->memcheck);
  EXPECT_FALSE(two->racecheck);
  EXPECT_TRUE(two->synccheck);
  EXPECT_FALSE(two->leakcheck);

  auto leak = Config::Parse("leakcheck");
  ASSERT_TRUE(leak.has_value());
  EXPECT_TRUE(leak->leakcheck);
  EXPECT_FALSE(leak->memcheck || leak->racecheck || leak->synccheck);
  EXPECT_TRUE(leak->Enabled());

  EXPECT_FALSE(Config::Parse("memcheck,bogus").has_value());
  EXPECT_FALSE(Config{}.Enabled());
  EXPECT_TRUE(Config::All().Enabled());
}

// --- memcheck unit plants ---------------------------------------------------

TEST(Memcheck, OutOfBoundsRead) {
  Sanitizer checker(MemcheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(8, sim::MemKind::kDevice, "buf");
  std::vector<uint32_t> init(8, 5);
  device.CopyToDevice(buf, std::span<const uint32_t>(init));
  device.Launch("oob_read", {1, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    idx[0] = 8;  // one past the end
    LaneArray<uint32_t> out{};
    w.Gather(buf, idx, mask, out);
  });
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kOobRead);
  EXPECT_EQ(findings[0].buffer, "buf");
  EXPECT_EQ(findings[0].kernel, "oob_read");
  EXPECT_EQ(findings[0].elem_index, 8u);
  EXPECT_EQ(findings[0].occurrences, 1u);
  EXPECT_EQ(checker.Report().ErrorCount(), 1u);
}

TEST(Memcheck, OutOfBoundsWriteIsClampedAndReported) {
  Sanitizer checker(MemcheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "target");
  std::vector<uint32_t> init(4, 0);
  device.CopyToDevice(buf, std::span<const uint32_t>(init));
  device.Launch("oob_write", {1, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    idx[0] = 100;
    LaneArray<uint32_t> val{};
    val[0] = 0xdead;
    w.Scatter(buf, idx, val, mask);
  });
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kOobWrite);
  EXPECT_EQ(findings[0].buffer, "target");
  EXPECT_EQ(findings[0].elem_index, 100u);
  // The simulator clamps the store into bounds: host memory past the
  // allocation is never touched, the last element takes the hit instead.
  EXPECT_EQ(buf.HostSpan()[3], 0xdeadu);
}

TEST(Memcheck, UninitializedRead) {
  Sanitizer checker(MemcheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(8, sim::MemKind::kDevice, "fresh");
  // No CopyToDevice, no MarkHostInitialized: reads must flag.
  device.Launch("uninit", {1, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    idx[0] = 3;
    LaneArray<uint32_t> out{};
    w.Gather(buf, idx, mask, out);
  });
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kUninitRead);
  EXPECT_EQ(findings[0].buffer, "fresh");
  EXPECT_EQ(findings[0].elem_index, 3u);
}

TEST(Memcheck, DeviceWriteValidatesForLaterRead) {
  Sanitizer checker(MemcheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(8, sim::MemKind::kDevice, "scratch");
  device.Launch("write_then_read", {1, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    idx[0] = 2;
    LaneArray<uint32_t> val{};
    val[0] = 11;
    w.Scatter(buf, idx, val, mask);
    LaneArray<uint32_t> out{};
    w.Gather(buf, idx, mask, out);  // now valid: the store defined it
    EXPECT_EQ(out[0], 11u);
  });
  EXPECT_TRUE(checker.Report().findings.empty());
}

TEST(Memcheck, MarkHostInitializedSuppressesUninitWithoutCharging) {
  Sanitizer checker(MemcheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(16, sim::MemKind::kUnified, "staged");
  for (uint64_t i = 0; i < 16; ++i) buf.HostSpan()[i] = static_cast<uint32_t>(i);
  const double before = device.NowMs();
  device.MarkHostInitialized(buf);
  EXPECT_EQ(device.NowMs(), before);  // no transfer charged
  device.Launch("read_staged", {1, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    idx[0] = 15;
    LaneArray<uint32_t> out{};
    w.Gather(buf, idx, mask, out);
  });
  EXPECT_TRUE(checker.Report().findings.empty());
}

// Use-after-free is tested at the observer-protocol level: running a kernel
// against a freed buffer through the device would read genuinely freed host
// memory (the functional side is real), which host ASan would rightly flag.
TEST(Memcheck, UseAfterFree) {
  Sanitizer checker(MemcheckOnly());
  alignas(4) static std::byte storage[64];
  sim::RawBuffer raw;
  raw.id = 42;
  raw.base_addr = 1 << 20;
  raw.bytes = 64;
  raw.kind = sim::MemKind::kDevice;
  raw.data = storage;
  checker.OnAlloc(raw, "ghost");
  checker.OnHostWrite(raw, 0, 64);
  checker.OnFree(raw);
  checker.OnLaunchBegin("stale_kernel", {32, 256});
  checker.OnDeviceAccess(sim::DeviceAccess{&raw, 3, 1, 4, 16,
                                           sim::AccessKind::kRead, 0, 3});
  checker.OnLaunchEnd();
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kUseAfterFree);
  EXPECT_EQ(findings[0].buffer, "ghost");
  EXPECT_EQ(findings[0].kernel, "stale_kernel");
  EXPECT_EQ(findings[0].elem_index, 3u);
}

// --- racecheck unit plants --------------------------------------------------

TEST(Racecheck, PlainStoreOverPlainStore) {
  Sanitizer checker(RacecheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "cell");
  device.Launch("ww", {2, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};  // both lanes hit element 0
    LaneArray<uint32_t> val{};
    val[0] = 1;
    val[1] = 2;
    w.Scatter(buf, idx, val, mask);
  });
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kRaceWriteWrite);
  EXPECT_EQ(findings[0].buffer, "cell");
  EXPECT_EQ(findings[0].lane, 1u);
  EXPECT_EQ(findings[0].other_thread, 0u);
}

TEST(Racecheck, WriteThenReadIsWarningOnly) {
  Sanitizer checker(RacecheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "published");
  device.Launch("wr", {2, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    LaneArray<uint32_t> val{};
    w.Scatter(buf, idx, val, 0b01);  // lane 0 stores element 0
    LaneArray<uint32_t> out{};
    w.Gather(buf, idx, 0b10, out);  // lane 1 reads it back
  });
  const auto& report = checker.Report();
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, FindingKind::kRaceWriteRead);
  EXPECT_EQ(report.ErrorCount(), 0u);
  EXPECT_EQ(report.WarningCount(), 1u);
  EXPECT_TRUE(report.Clean());  // warnings do not fail the gate
}

TEST(Racecheck, AtomicsDoNotRace) {
  Sanitizer checker(RacecheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(1, sim::MemKind::kDevice, "counter");
  device.Launch("atomics", {32, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};  // all 32 lanes increment element 0
    LaneArray<uint32_t> val{};
    val.fill(1);
    LaneArray<uint32_t> old{};
    w.AtomicAdd(buf, idx, val, mask, old);
    w.AtomicAdd(buf, idx, val, mask, old);
  });
  EXPECT_TRUE(checker.Report().findings.empty());
  EXPECT_EQ(buf.HostSpan()[0], 64u);
}

TEST(Racecheck, ScatterRelaxedDeclaresSingleWriterProtocol) {
  Sanitizer checker(RacecheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "levels");
  device.Launch("relaxed_ok", {2, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    LaneArray<uint32_t> val{};
    val[0] = 7;
    w.ScatterRelaxed(buf, idx, val, 0b01);  // declared relaxed store
    LaneArray<uint32_t> out{};
    w.Gather(buf, idx, 0b10, out);  // concurrent reader: part of the design
  });
  EXPECT_TRUE(checker.Report().findings.empty());
}

TEST(Racecheck, PlainStoreOverRelaxedStoreStillFlags) {
  Sanitizer checker(RacecheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "levels");
  device.Launch("relaxed_vs_plain", {2, 256}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    LaneArray<uint64_t> idx{};
    LaneArray<uint32_t> val{};
    w.ScatterRelaxed(buf, idx, val, 0b01);  // lane 0: declared relaxed
    w.Scatter(buf, idx, val, 0b10);         // lane 1: undeclared plain store
  });
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kRaceAtomicWrite);
  EXPECT_EQ(findings[0].other_thread, 0u);
}

TEST(Racecheck, LogResetsBetweenLaunches) {
  Sanitizer checker(RacecheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "cell");
  auto store_lane = [&](uint32_t lane_mask) {
    device.Launch("seq", {2, 256}, [&](WarpCtx& w) {
      uint32_t mask = w.ActiveMask();
      if (!mask) return;
      LaneArray<uint64_t> idx{};
      LaneArray<uint32_t> val{};
      w.Scatter(buf, idx, val, lane_mask);
    });
  };
  store_lane(0b01);  // launch 1: thread 0 writes element 0
  store_lane(0b10);  // launch 2: thread 1 writes element 0 — no conflict
  EXPECT_TRUE(checker.Report().findings.empty());
  EXPECT_EQ(checker.Report().launches_checked, 2u);
}

// --- synccheck unit plants --------------------------------------------------

TEST(Synccheck, DivergentBarrier) {
  Sanitizer checker(SynccheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  device.Launch("divergent", {64, 64}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    // Both warps arrive with lane 0 peeled off — the divergent
    // __syncthreads every CUDA programmer has hung a kernel with.
    w.Barrier(mask & ~1u);
  });
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kBarrierDivergence);
  EXPECT_EQ(findings[0].occurrences, 2u);  // one per warp, aggregated
}

TEST(Synccheck, BarrierCountMismatchAcrossWarps) {
  Sanitizer checker(SynccheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  device.Launch("mismatch", {64, 64}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    if (w.WarpId() == 0) w.Barrier(mask);  // warp 1 never arrives
  });
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kBarrierMismatch);
  EXPECT_NE(findings[0].note.find("warp 1 hit 0 barrier(s)"), std::string::npos);
  EXPECT_NE(findings[0].note.find("warp 0 hit 1"), std::string::npos);
}

TEST(Synccheck, UniformBarrierIsClean) {
  Sanitizer checker(SynccheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  device.Launch("uniform", {64, 64}, [&](WarpCtx& w) {
    uint32_t mask = w.ActiveMask();
    if (!mask) return;
    w.Barrier(mask);
    w.Barrier(mask);
  });
  EXPECT_TRUE(checker.Report().findings.empty());
}

// --- planted bugs in the real kernels ---------------------------------------

// Dropping the reach-mask AtomicOr: two sources whose frontiers collide on
// the same neighbors turn the attribute update into read-modify-write over
// shared elements. Discovery order and occurrence counts are deterministic.
TEST(PlantedBugs, DroppedAtomicOrIsARace) {
  std::vector<graph::Edge> edges{{0, 2}, {0, 3}, {1, 2}, {1, 3}};
  graph::BuildOptions build;
  build.min_vertices = 4;
  graph::Csr csr = graph::BuildCsr(edges, build);

  core::EtaGraphOptions options;
  options.check = RacecheckOnly();
  options.inject.drop_reach_atomic = true;
  core::ResidentGraph session(csr, options);
  const graph::VertexId sources[] = {0, 1};
  core::RunReport report = session.RunMultiSource(core::Algo::kBfs, sources,
                                                  /*attribute_sources=*/true);
  ASSERT_FALSE(report.oom);

  const auto& findings = report.check.findings;
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].kind, FindingKind::kRaceReadWrite);
  EXPECT_EQ(findings[0].buffer, "reach_mask");
  EXPECT_EQ(findings[0].kernel, "traverse_part");
  EXPECT_EQ(findings[0].occurrences, 2u);  // both contended neighbors
  EXPECT_EQ(findings[0].other_thread, 1u);
  EXPECT_EQ(findings[1].kind, FindingKind::kRaceWriteWrite);
  EXPECT_EQ(findings[1].buffer, "reach_mask");
  EXPECT_EQ(findings[1].occurrences, 2u);
  EXPECT_EQ(findings[1].other_thread, 0u);
  EXPECT_EQ(report.check.ErrorCount(), 4u);

  // Same run with the atomic in place: silent.
  core::EtaGraphOptions clean = options;
  clean.inject.drop_reach_atomic = false;
  core::ResidentGraph clean_session(csr, clean);
  core::RunReport clean_report =
      clean_session.RunMultiSource(core::Algo::kBfs, sources, true);
  EXPECT_TRUE(clean_report.check.findings.empty());
}

// Under-allocating the frontier by one: an attributed two-source run whose
// reach masks keep growing re-appends the sources, so iteration 1 appends
// n vertices into the n-1-element act_set — one out-of-bounds write at the
// cursor's last slot, then iteration 2's UDC pass reads the oversized
// count back out of bounds.
TEST(PlantedBugs, ShrunkFrontierOverflows) {
  constexpr graph::VertexId n = 8;
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 1; v < n; ++v) edges.push_back({0, v});
  edges.push_back({1, 0});
  graph::BuildOptions build;
  build.min_vertices = n;
  graph::Csr csr = graph::BuildCsr(edges, build);

  core::EtaGraphOptions options;
  options.check = MemcheckOnly();
  options.inject.shrink_frontier = true;
  core::ResidentGraph session(csr, options);
  const graph::VertexId sources[] = {0, 1};
  core::RunReport report = session.RunMultiSource(core::Algo::kBfs, sources,
                                                  /*attribute_sources=*/true);
  ASSERT_FALSE(report.oom);

  const auto& findings = report.check.findings;
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].kind, FindingKind::kOobWrite);
  EXPECT_EQ(findings[0].buffer, "act_set");
  EXPECT_EQ(findings[0].kernel, "traverse_part");
  EXPECT_EQ(findings[0].elem_index, n - 1);  // first slot past the allocation
  EXPECT_EQ(findings[0].occurrences, 1u);
  EXPECT_EQ(findings[1].kind, FindingKind::kOobRead);
  EXPECT_EQ(findings[1].buffer, "act_set");
  EXPECT_EQ(findings[1].kernel, "udc");
  EXPECT_EQ(findings[1].occurrences, 1u);

  // The same workload with a full-size frontier is silent.
  core::EtaGraphOptions clean = options;
  clean.inject.shrink_frontier = false;
  core::ResidentGraph clean_session(csr, clean);
  core::RunReport clean_report =
      clean_session.RunMultiSource(core::Algo::kBfs, sources, true);
  EXPECT_TRUE(clean_report.check.findings.empty());
}

// --- the clean gate ---------------------------------------------------------

class CleanGate
    : public ::testing::TestWithParam<std::tuple<core::Algo, core::MemoryMode, bool>> {};

TEST_P(CleanGate, ShippingKernelsProduceZeroFindings) {
  auto [algo, mode, smp] = GetParam();
  graph::Csr csr = SmallSocialGraph();
  core::EtaGraphOptions options;
  options.check = Config::All();
  options.memory_mode = mode;
  options.use_smp = smp;
  core::RunReport report = core::EtaGraph(options).Run(csr, algo, /*source=*/0);
  ASSERT_FALSE(report.oom);
  EXPECT_TRUE(report.check.findings.empty())
      << report.check.Render(/*verbose=*/true);
  EXPECT_GT(report.check.launches_checked, 0u);
  EXPECT_GT(report.check.accesses_checked, 0u);
  // Checked results are still correct results.
  EXPECT_EQ(report.labels, core::CpuReference(csr, algo, 0));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CleanGate,
    ::testing::Combine(
        ::testing::Values(core::Algo::kBfs, core::Algo::kSssp, core::Algo::kSswp),
        ::testing::Values(core::MemoryMode::kUnifiedPrefetch,
                          core::MemoryMode::kUnifiedOnDemand,
                          core::MemoryMode::kExplicitCopy,
                          core::MemoryMode::kChunkedStream),
        ::testing::Values(true, false)));

TEST(CleanGateExtensions, ConnectedComponentsAndMultiSource) {
  graph::Csr csr = SmallSocialGraph();
  core::EtaGraphOptions options;
  options.check = Config::All();
  core::RunReport cc = core::EtaGraph(options).RunConnectedComponents(csr);
  ASSERT_FALSE(cc.oom);
  EXPECT_TRUE(cc.check.findings.empty()) << cc.check.Render(true);

  const graph::VertexId sources[] = {0, 5, 9, 23};
  core::RunReport multi = core::EtaGraph(options).RunMultiSource(
      csr, core::Algo::kBfs, sources, /*attribute_sources=*/true);
  ASSERT_FALSE(multi.oom);
  EXPECT_TRUE(multi.check.findings.empty()) << multi.check.Render(true);
}

TEST(CleanGateExtensions, HybridBfsRelaxedStoresAreClean) {
  graph::Csr csr = SmallSocialGraph();
  core::HybridBfsOptions options;
  options.check = Config::All();
  options.alpha = 2.0;  // force the traversal through the bottom-up phase
  core::HybridBfsResult result = core::RunHybridBfs(csr, 0, options);
  ASSERT_FALSE(result.oom);
  EXPECT_GT(result.bottom_up_iterations, 0u);
  EXPECT_TRUE(result.check.findings.empty()) << result.check.Render(true);
  EXPECT_EQ(result.levels, core::CpuReference(csr, core::Algo::kBfs, 0));
}

TEST(CleanGateExtensions, PageRankIsClean) {
  graph::Csr csr = SmallSocialGraph();
  core::PageRankOptions options;
  options.check = Config::All();
  options.max_iterations = 10;
  core::PageRankResult result = core::RunPageRank(csr, options);
  ASSERT_FALSE(result.oom);
  EXPECT_TRUE(result.check.findings.empty()) << result.check.Render(true);
}

TEST(CleanGateServe, FullTraceReplayIsClean) {
  graph::Csr csr = SmallSocialGraph();
  serve::ServeOptions options;
  options.mode = serve::ServeMode::kSessionBatched;
  options.graph.check = Config::All();
  serve::TraceOptions trace_options;
  trace_options.num_requests = 64;
  auto trace = serve::GenerateTrace(csr.NumVertices(), trace_options);
  serve::ServeReport report = serve::ServeEngine(options).Serve(csr, trace);
  EXPECT_EQ(report.completed, 64u);
  EXPECT_TRUE(report.check.findings.empty()) << report.check.Render(true);
  EXPECT_GT(report.check.launches_checked, 0u);
}

// --- leakcheck ---------------------------------------------------------------

TEST(Leakcheck, PlantedLeakIsReportedByTheTeardownSweep) {
  Sanitizer checker(LeakcheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto kept = device.Alloc<uint32_t>(8, sim::MemKind::kDevice, "kept");
  auto freed = device.Alloc<uint32_t>(8, sim::MemKind::kUnified, "freed");
  device.Free(freed);
  (void)kept;  // never freed: this is the leak

  EXPECT_TRUE(checker.Report().findings.empty());  // nothing until the sweep
  device.ReportLeaks();
  const auto& findings = checker.Report().findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, FindingKind::kLeakedBuffer);
  EXPECT_EQ(findings[0].buffer, "kept");
  EXPECT_EQ(checker.Report().ErrorCount(), 1u);
  // The sweep is idempotent: a second call reports nothing new.
  device.ReportLeaks();
  EXPECT_EQ(checker.Report().findings.size(), 1u);

  std::string text = checker.Report().Render();
  EXPECT_NE(text.find("leaked-buffer"), std::string::npos);
  EXPECT_NE(text.find("kept"), std::string::npos);
  EXPECT_NE(text.find("byte(s)"), std::string::npos);
}

TEST(Leakcheck, DisabledLeakcheckIgnoresTheSweep) {
  Sanitizer checker(MemcheckOnly());
  sim::Device device;
  device.SetObserver(&checker);
  auto kept = device.Alloc<uint32_t>(8, sim::MemKind::kDevice, "kept");
  (void)kept;
  device.ReportLeaks();
  EXPECT_TRUE(checker.Report().findings.empty());
}

TEST(Leakcheck, SessionShutdownFreesEverything) {
  graph::Csr csr = SmallSocialGraph();
  core::EtaGraphOptions options;
  options.check = Config::All();
  core::ResidentGraph session(csr, options);
  auto report = session.Run(core::Algo::kSssp, 3);
  ASSERT_FALSE(report.oom);
  // Shutdown frees all fifteen session buffers and then runs the sweep; a
  // clean session must produce no leak findings.
  session.Shutdown();
  ASSERT_NE(session.CheckReport(), nullptr);
  EXPECT_TRUE(session.CheckReport()->findings.empty())
      << session.CheckReport()->Render(true);
}

// --- the zero-overhead guarantee --------------------------------------------

TEST(Overhead, CheckedRunHasIdenticalCountersAndClock) {
  graph::Csr csr = SmallSocialGraph();
  core::EtaGraphOptions plain;
  core::EtaGraphOptions checked = plain;
  checked.check = Config::All();
  core::RunReport a = core::EtaGraph(plain).Run(csr, core::Algo::kSssp, 0);
  core::RunReport b = core::EtaGraph(checked).Run(csr, core::Algo::kSssp, 0);
  EXPECT_EQ(a.total_ms, b.total_ms);
  EXPECT_EQ(a.kernel_ms, b.kernel_ms);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.counters.warp_instructions, b.counters.warp_instructions);
  EXPECT_EQ(a.counters.thread_instructions, b.counters.thread_instructions);
  EXPECT_EQ(a.counters.l1_accesses, b.counters.l1_accesses);
  EXPECT_EQ(a.counters.l1_hits, b.counters.l1_hits);
  EXPECT_EQ(a.counters.l2_accesses, b.counters.l2_accesses);
  EXPECT_EQ(a.counters.l2_hits, b.counters.l2_hits);
  EXPECT_EQ(a.counters.dram_read_transactions, b.counters.dram_read_transactions);
  EXPECT_EQ(a.counters.dram_write_transactions, b.counters.dram_write_transactions);
  EXPECT_EQ(a.counters.atomic_operations, b.counters.atomic_operations);
  EXPECT_EQ(a.counters.mem_latency_cycles, b.counters.mem_latency_cycles);
  EXPECT_EQ(a.counters.elapsed_cycles, b.counters.elapsed_cycles);
}

// --- report plumbing --------------------------------------------------------

TEST(Report, MergeAggregatesDuplicateFindings) {
  sanitizer::SanitizerReport a;
  Finding f;
  f.kind = FindingKind::kOobWrite;
  f.kernel = "k";
  f.buffer = "b";
  f.occurrences = 2;
  a.findings.push_back(f);
  a.launches_checked = 3;

  sanitizer::SanitizerReport b;
  b.findings.push_back(f);
  Finding other = f;
  other.buffer = "c";
  b.findings.push_back(other);
  b.launches_checked = 1;

  a.Merge(b);
  ASSERT_EQ(a.findings.size(), 2u);
  EXPECT_EQ(a.findings[0].occurrences, 4u);
  EXPECT_EQ(a.findings[1].buffer, "c");
  EXPECT_EQ(a.launches_checked, 4u);
}

TEST(Report, RenderAndJsonCarryTheFinding) {
  sanitizer::SanitizerReport report;
  Finding f;
  f.kind = FindingKind::kRaceWriteWrite;
  f.kernel = "traverse_part";
  f.buffer = "reach_mask";
  f.elem_index = 2;
  f.lane = 1;
  f.occurrences = 2;
  f.other_thread = 0;
  report.findings.push_back(f);
  report.launches_checked = 1;

  std::string text = report.Render();
  EXPECT_NE(text.find("race-write-write"), std::string::npos);
  EXPECT_NE(text.find("reach_mask[2]"), std::string::npos);
  EXPECT_NE(text.find("'traverse_part'"), std::string::npos);
  EXPECT_NE(text.find("(x2)"), std::string::npos);

  std::string json = report.Json();
  EXPECT_NE(json.find("\"errors\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"race-write-write\""), std::string::npos);
  EXPECT_NE(json.find("\"buffer\": \"reach_mask\""), std::string::npos);

  // Empty reports render nothing unless verbose.
  sanitizer::SanitizerReport empty;
  EXPECT_EQ(empty.Render(), "");
  EXPECT_NE(empty.Render(/*verbose=*/true).find("0 error(s)"), std::string::npos);
}

// The report's snprintf-into-string helper retries past its 512-byte stack
// buffer: a pathological allocation name longer than the buffer survives
// Message/Render/Json untruncated.
TEST(SanitizerReport, LongBufferNameRendersUntruncated) {
  const std::string long_name(700, 'b');
  Finding f;
  f.kind = FindingKind::kLeakedBuffer;
  f.buffer = long_name;
  EXPECT_NE(f.Message().find(long_name), std::string::npos);

  sanitizer::SanitizerReport report;
  report.findings.push_back(f);
  report.launches_checked = 1;
  EXPECT_NE(report.Render().find(long_name), std::string::npos);
  EXPECT_NE(report.Json().find(long_name), std::string::npos);
}

}  // namespace
}  // namespace eta
