// Motivation experiment (paper Section I): prior overlap designs (GTS,
// Graphie) stream *fixed-size* data chunks, which "could cause waste of
// work if there is only a small part of data actually used in one chunk";
// the paper argues fine-grained UM-driven overlap is more efficient. This
// bench quantifies exactly that: bytes shipped and total time for GTS-style
// chunk streaming (several chunk sizes) vs EtaGraph's on-demand UM, on the
// same traversals.
#include "bench_common.hpp"
#include "core/framework.hpp"
#include "util/units.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal", "uk2005"});

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    uint64_t adjacency_bytes =
        uint64_t{csr.NumEdges()} * sizeof(graph::VertexId) * 2;  // col + weights

    util::Table table({"Transfer policy", "Bytes shipped", "vs adjacency", "Total (ms)"});
    for (uint64_t chunk : {256 * util::kKiB, 1 * util::kMiB, 4 * util::kMiB}) {
      core::EtaGraphOptions options;
      options.memory_mode = core::MemoryMode::kChunkedStream;
      options.stream_chunk_bytes = chunk;
      auto r = core::EtaGraph(options).Run(csr, core::Algo::kSssp, graph::kQuerySource);
      table.AddRow({"chunked " + util::FormatBytes(chunk),
                    util::FormatBytes(r.migrated_bytes),
                    util::FormatDouble(double(r.migrated_bytes) / adjacency_bytes, 2) + "x",
                    util::FormatDouble(r.total_ms, 2)});
    }
    core::EtaGraphOptions um_options;
    um_options.memory_mode = core::MemoryMode::kUnifiedOnDemand;
    auto um = core::EtaGraph(um_options).Run(csr, core::Algo::kSssp, graph::kQuerySource);
    table.AddRow({"UM on-demand (EtaGraph w/o UMP)", util::FormatBytes(um.migrated_bytes),
                  util::FormatDouble(double(um.migrated_bytes) / adjacency_bytes, 2) + "x",
                  util::FormatDouble(um.total_ms, 2)});
    um_options.memory_mode = core::MemoryMode::kUnifiedPrefetch;
    auto ump = core::EtaGraph(um_options).Run(csr, core::Algo::kSssp, graph::kQuerySource);
    table.AddRow({"UM + prefetch (EtaGraph)", util::FormatBytes(ump.migrated_bytes),
                  util::FormatDouble(double(ump.migrated_bytes) / adjacency_bytes, 2) + "x",
                  util::FormatDouble(ump.total_ms, 2)});

    std::printf("%s\n", table.Render("Motivation - fixed-size chunk streaming vs "
                                     "fine-grained UM overlap (SSSP on " +
                                     graph::FindDataset(name)->paper_name + ")")
                            .c_str());
  }
  std::printf("shape: larger fixed chunks ship more unused bytes; page-granular UM\n"
              "moves the least data, supporting the paper's flexible-overlap argument.\n");
  return 0;
}
