file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hybrid_bfs.dir/bench_ext_hybrid_bfs.cpp.o"
  "CMakeFiles/bench_ext_hybrid_bfs.dir/bench_ext_hybrid_bfs.cpp.o.d"
  "bench_ext_hybrid_bfs"
  "bench_ext_hybrid_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hybrid_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
