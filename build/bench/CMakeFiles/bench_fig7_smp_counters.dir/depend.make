# Empty dependencies file for bench_fig7_smp_counters.
# This may be replaced when dependencies are built.
