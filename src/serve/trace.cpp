#include "serve/trace.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace eta::serve {

std::vector<Request> GenerateTrace(graph::VertexId num_vertices,
                                   const TraceOptions& options) {
  ETA_CHECK(num_vertices > 0);
  ETA_CHECK(options.mean_interarrival_ms > 0);
  ETA_CHECK(options.bfs_fraction + options.sssp_fraction <= 1.0 + 1e-9);

  // Independent streams per attribute: changing e.g. the algorithm mix
  // leaves arrival times and sources untouched.
  util::SplitMix64 arrivals = util::SplitMix64::Stream(options.seed, 1);
  util::SplitMix64 sources = util::SplitMix64::Stream(options.seed, 2);
  util::SplitMix64 algos = util::SplitMix64::Stream(options.seed, 3);
  util::SplitMix64 priorities = util::SplitMix64::Stream(options.seed, 4);

  std::vector<Request> trace;
  trace.reserve(options.num_requests);
  double t = 0;
  for (uint32_t i = 0; i < options.num_requests; ++i) {
    // Exponential inter-arrival: -mean * ln(1 - U), U in [0, 1).
    t += -options.mean_interarrival_ms * std::log1p(-arrivals.NextDouble());

    Request r;
    r.id = i;
    r.arrival_ms = t;
    r.source = static_cast<graph::VertexId>(sources.NextBounded(num_vertices));
    double u = algos.NextDouble();
    r.algo = u < options.bfs_fraction ? core::Algo::kBfs
             : u < options.bfs_fraction + options.sssp_fraction ? core::Algo::kSssp
                                                                : core::Algo::kSswp;
    r.priority = priorities.NextDouble() < options.priority_fraction ? 1 : 0;
    r.deadline_ms = options.deadline_ms;
    trace.push_back(r);
  }
  return trace;
}

}  // namespace eta::serve
