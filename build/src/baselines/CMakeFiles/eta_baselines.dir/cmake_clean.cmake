file(REMOVE_RECURSE
  "CMakeFiles/eta_baselines.dir/cusha.cpp.o"
  "CMakeFiles/eta_baselines.dir/cusha.cpp.o.d"
  "CMakeFiles/eta_baselines.dir/gunrock.cpp.o"
  "CMakeFiles/eta_baselines.dir/gunrock.cpp.o.d"
  "CMakeFiles/eta_baselines.dir/tigr.cpp.o"
  "CMakeFiles/eta_baselines.dir/tigr.cpp.o.d"
  "libeta_baselines.a"
  "libeta_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
