#include "serve/scheduler.hpp"

#include <algorithm>

namespace eta::serve {

bool QueryScheduler::Admit(const Request& request) {
  if (queue_.size() >= capacity_) return false;
  queue_.push_back({request, next_seq_++});
  return true;
}

std::vector<Request> QueryScheduler::ExpireDeadlines(double now_ms) {
  std::vector<Entry> expired;
  auto split = std::stable_partition(queue_.begin(), queue_.end(), [&](const Entry& e) {
    return !e.request.ExpiredAt(now_ms);
  });
  expired.assign(split, queue_.end());
  queue_.erase(split, queue_.end());
  std::sort(expired.begin(), expired.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  std::vector<Request> result;
  result.reserve(expired.size());
  for (const Entry& e : expired) result.push_back(e.request);
  return result;
}

std::optional<Request> QueryScheduler::PopNext() {
  size_t best = BestIndex([](const Request&) { return true; });
  if (best == SIZE_MAX) return std::nullopt;
  Request r = queue_[best].request;
  queue_.erase(queue_.begin() + static_cast<long>(best));
  return r;
}

std::vector<Request> QueryScheduler::PopCompatible(core::Algo algo, uint32_t max_count) {
  std::vector<Request> result;
  while (result.size() < max_count) {
    size_t best = BestIndex([&](const Request& r) { return r.algo == algo; });
    if (best == SIZE_MAX) break;
    result.push_back(queue_[best].request);
    queue_.erase(queue_.begin() + static_cast<long>(best));
  }
  return result;
}

}  // namespace eta::serve
