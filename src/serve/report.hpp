// ServeReport — fleet metrics of one trace replay.
//
// Everything an operator would put on a serving dashboard, computed from
// the deterministic simulation: throughput, latency percentiles (p50/p95/
// p99 over simulated end-to-end latency), queue behaviour, batch occupancy
// and the explicit reject/timeout counts. Two replays of the same trace
// with the same options render byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <map>

#include "core/run_report.hpp"
#include "prof/trace_export.hpp"
#include "sanitizer/report.hpp"
#include "serve/metrics.hpp"
#include "trace/alerts.hpp"
#include "trace/events.hpp"
#include "trace/flight_recorder.hpp"
#include "verify/verify.hpp"
#include "serve/types.hpp"
#include "util/histogram.hpp"

namespace eta::serve {

/// Per-algorithm estimated-vs-actual cost aggregates (DESIGN.md section 9):
/// the observation feed a future cost-aware admission controller would
/// train on. `mean_abs_error_ms` is the mean |estimate - actual| of the
/// engine's running-mean service-time estimator, evaluated before each
/// dispatch it predicted.
struct CostObservation {
  std::string algo;
  uint64_t queries = 0;          // device-served queries observed
  double mean_service_ms = 0;    // actual per-query device service time
  double mean_abs_error_ms = 0;  // estimator error against that actual
  double mean_cycles = 0;        // device cycles attributed per query
};

/// Per-shard accounting of a sharded-fleet replay (serve::ShardedEngine).
/// Empty in single-engine reports; rendered only when present, so legacy
/// report output is byte-identical with or without the fleet layer built.
struct ShardStat {
  uint32_t shard = 0;
  uint64_t dispatches = 0;  // batches this shard executed
  uint64_t served = 0;      // requests answered on this shard's device
  uint64_t degraded = 0;    // requests this shard handed to the CPU fallback
  /// Requests drained *into* this shard from a quarantined peer, and
  /// requests this shard's quarantine drained *out* to peers.
  uint64_t rerouted_in = 0;
  uint64_t rerouted_out = 0;
  uint64_t rebuilds = 0;    // unhealthy sessions torn down and re-staged
  uint64_t evictions = 0;   // resident graphs evicted under the memory budget
  uint64_t reloads = 0;     // re-stagings of a previously staged graph
                            // (evicted or torn down by a rebuild)
  uint64_t launch_failures = 0;  // injected faults observed on this shard
  bool dead = false;        // rebuild budget exhausted; routed around for good
  double busy_ms = 0;       // simulated time spent dispatching (incl. loads)
  uint64_t peak_resident_bytes = 0;  // high-water device residency

  /// Async-dispatch (stream) accounting, DESIGN.md section 11; all zero
  /// under the synchronous dispatcher.
  uint64_t prestages = 0;  // sessions staged ahead on the copy stream
  double prestage_ms = 0;  // copy-stream time spent pre-staging
  double overlap_ms = 0;   // copy/compute engine overlap the shard achieved
};

/// Per-SLO-class accounting of a replay (DESIGN.md §13). Built only from
/// classed requests; empty on legacy classless traces, so legacy report
/// output is byte-identical with the overload layer built.
struct SloStat {
  SloClass slo = SloClass::kNone;
  double slo_target_ms = 0;
  uint64_t offered = 0;    // requests of this class in the trace
  uint64_t ok = 0;         // served on the device
  uint64_t degraded = 0;   // answered by the CPU fallback
  uint64_t shedded = 0;    // shed at admission
  uint64_t timed_out = 0;
  uint64_t rejected = 0;
  /// Completed (ok or degraded) within the class target — the goodput
  /// numerator.
  uint64_t slo_met = 0;
  double p50_ms = 0;  // completion latency percentiles over ok + degraded
  double p99_ms = 0;
  double Goodput() const {
    return offered == 0 ? 0 : static_cast<double>(slo_met) / static_cast<double>(offered);
  }
};

/// One hysteretic ladder level change, on the simulated clock.
struct LadderTransition {
  double at_ms = 0;
  uint32_t from_level = 0;
  uint32_t to_level = 0;
};

/// Overload-control outcome counters (brownout ladder, retry budget,
/// circuit breaker). The `*_configured` flags gate rendering: a legacy run
/// (all features off, classless trace) emits none of these rows/keys.
struct OverloadStats {
  bool slo_active = false;         // any classed request seen
  bool shed_configured = false;    // admission controller armed
  bool brownout_configured = false;
  bool budget_configured = false;
  bool breaker_configured = false;
  bool Active() const {
    return slo_active || shed_configured || brownout_configured || budget_configured ||
           breaker_configured;
  }

  /// Brownout ladder (router backlog estimate → degrade classes to CPU).
  uint32_t brownout_level = 0;      // level at end of replay
  uint32_t brownout_max_level = 0;  // deepest level reached
  uint64_t brownout_degraded = 0;   // requests degraded by the ladder
  std::vector<LadderTransition> brownout_transitions;

  /// Fleet-wide retry-budget token bucket.
  uint64_t retry_granted = 0;
  uint64_t retry_denied = 0;
  uint64_t rebuild_granted = 0;
  uint64_t rebuild_denied = 0;

  /// Circuit breaker over quarantined shards.
  uint64_t breaker_opens = 0;
  uint64_t breaker_probes = 0;
  uint64_t breaker_probe_failures = 0;
};

struct ServeReport {
  ServeMode mode = ServeMode::kSessionBatched;
  /// True when the replay ran the stream-based async dispatcher
  /// (ShardedOptions::async_dispatch). Rendered only when set, so sync
  /// report output is byte-identical with or without the stream layer.
  bool async_dispatch = false;

  /// True when the scheduler popped in earliest-effective-deadline order
  /// (ServeOptions::edf). Rendered only when set (same byte-stability
  /// contract as async_dispatch).
  bool edf = false;

  /// Whole-graph memoization (DESIGN.md section 15): configured when
  /// ServeOptions::memo_window_ms > 0. A hit is an identical whole-graph
  /// (CC/PageRank) request answered from the per-shard memo table at zero
  /// simulated device cost. Rendered only when configured.
  bool memo_configured = false;
  uint64_t memo_hits = 0;

  /// Backlog autoscaling (DESIGN.md section 15): configured when
  /// ShardedOptions::autoscale is armed. `scale_events` are the
  /// active-shard-count changes (from/to in shard-count units) on the
  /// simulated clock; `shards_active` is the count at end of replay.
  /// Rendered only when configured.
  bool autoscale_configured = false;
  uint32_t shards_active = 0;
  std::vector<LadderTransition> scale_events;

  uint64_t total_requests = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  /// Requests the admission controller shed as provably unable to meet
  /// their SLO (QueryStatus::kShedded); disjoint from `completed`.
  uint64_t shedded = 0;
  /// Requests the device path could not answer (faults exhausted every
  /// retry and rebuild) that were served by the CPU fallback instead.
  /// Counted inside `completed` — a degraded answer is still an answer.
  uint64_t degraded = 0;
  /// Unhealthy sessions torn down and re-staged mid-replay.
  uint64_t session_rebuilds = 0;
  /// Dispatches (a folded batch counts once).
  uint64_t batches = 0;

  /// Fault-injection/recovery counters aggregated over every run the replay
  /// executed (all-zero when ServeOptions::graph.faults is off).
  core::FaultStats faults;

  /// Graph staging time (zero in naive mode, where every query restages).
  double load_ms = 0;
  /// Simulated time from t=0 to the last completion.
  double makespan_ms = 0;

  /// Per completed request, in integer microseconds (simulated).
  util::Histogram latency_us;
  util::Histogram queue_wait_us;
  /// Requests per dispatch.
  util::Histogram batch_occupancy;
  /// Remaining queue depth sampled at each dispatch.
  util::Histogram queue_depth;

  /// Sum of reached_vertices over completed requests (work actually done).
  uint64_t reached_total = 0;

  /// Per-request outcomes, sorted by request id.
  std::vector<QueryResult> results;

  /// Serving-layer metrics registry: per-algo queue-wait/service/latency
  /// histograms, batch-size and queue-depth distributions, degradation and
  /// cost-model observations. Always populated (recording is cheap and
  /// deterministic); rendered via metrics.RenderPrometheus() for
  /// etagraph_serve --metrics-out.
  MetricsRegistry metrics;

  /// Per-algo estimated-vs-actual cost aggregates, algo name order.
  std::vector<CostObservation> cost_observations;

  /// Per-shard accounting, shard index order; empty outside ShardedEngine.
  std::vector<ShardStat> shard_stats;

  /// Per-SLO-class accounting, class order (bronze, silver, gold); empty on
  /// classless traces.
  std::vector<SloStat> slo_stats;

  /// Overload-control counters; all-default (and unrendered) on legacy runs.
  OverloadStats overload;

  /// Merged trace spans (device timeline slices mapped onto the serve
  /// clock, per-launch kernel spans, queue/batcher/session/cpu serve
  /// spans). Empty unless ServeOptions::graph.profile is on; rendered via
  /// prof::RenderChromeTrace for --trace-json.
  std::vector<prof::TraceSpan> trace_spans;

  /// etatrace (DESIGN.md section 14). `traced` is set when the replay ran
  /// with EtaGraphOptions::trace_requests; the per-request causal traces
  /// (request id -> events in emission order) are then populated and
  /// rendered by RenderRequestTraceJson(). Empty and unrendered otherwise,
  /// so legacy output stays byte-identical.
  bool traced = false;
  std::map<uint64_t, std::vector<trace::TraceEvent>> request_traces;

  /// Trace exemplars (traced runs only): per algo name, the request id of
  /// the slowest completed request — the trace id behind the per-algo p99
  /// row, so a percentile links straight to its span tree.
  std::map<std::string, uint64_t> latency_exemplars;

  /// Always-on flight-recorder dumps: one per trigger (device loss,
  /// breaker open, shard death), plus one end-of-replay snapshot appended
  /// by the engines, all on the simulated clock. Only rendered on demand
  /// (--blackbox-out), never by Render()/Json().
  std::vector<trace::FlightDump> blackbox;

  /// SLO burn-rate alert evaluations, class order; empty unless
  /// ServeOptions::slo_alerts.enabled, so legacy output is unchanged.
  std::vector<trace::AlertSeries> alerts;

  /// etacheck findings over every device the replay touched (the session
  /// device, or each naive per-query device, merged); empty with
  /// launches_checked == 0 unless ServeOptions::graph.check enabled a
  /// checker.
  sanitizer::SanitizerReport check;

  /// etaverify findings over every shard's recorded stream DAG (merged);
  /// empty with ops_checked == 0 unless ServeOptions::graph.verify_dag
  /// enabled the log on an async replay. Like `check`, not rendered by
  /// Render() — tools print it separately.
  verify::DagReport verify;

  /// Completed requests per simulated second of makespan.
  double ThroughputQps() const;
  /// q in [0,1] over completed-request latency; 0 when nothing completed.
  double LatencyPercentileMs(double q) const;
  double MeanBatchOccupancy() const { return batch_occupancy.Mean(); }

  /// Paper-style text table of the fleet metrics.
  std::string Render(const std::string& title) const;
  /// One JSON object (for BENCH_serve.json).
  std::string Json() const;
  /// The per-request causal traces as one JSON document
  /// ({"traces":[{"id":..,"events":[..]},..]}, request-id order); "" when
  /// the replay was not traced.
  std::string RenderRequestTraceJson() const;
  /// All flight-recorder dumps concatenated (trigger order, then the
  /// end-of-replay snapshot) — the --blackbox-out payload.
  std::string RenderBlackbox() const;
};

}  // namespace eta::serve
