// Open-loop arrival processes for overload experiments (DESIGN.md §13).
//
// GenerateTrace (trace.hpp) drives closed-ish fixed bursts; this module
// models the load a serving fleet actually faces: an *open-loop* request
// stream whose rate is set by the outside world, not by the server's
// completion pace — so offered load can exceed capacity indefinitely.
// Profiles: homogeneous Poisson, bursty on/off, and diurnal (sinusoidal)
// rate modulation, all normalized so rate_qps is the *time-averaged* rate
// (capacity multiples in bench_overload stay meaningful across profiles).
// Requests carry SLO classes (gold/silver/bronze), hot-graph catalog skew,
// and per-tenant algorithm mixes. Every attribute draws from its own seeded
// util::SplitMix64 stream, so a (seed, options) pair names one exact trace
// forever and double runs replay byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "serve/types.hpp"

namespace eta::serve {

enum class ArrivalProfile : uint8_t {
  kPoisson,  // homogeneous Poisson at rate_qps
  kBursty,   // on/off: full rate for on_ms, off_rate_scale * rate for off_ms
  kDiurnal,  // sinusoidal between trough_scale * peak and peak, period_ms
};
const char* ArrivalProfileName(ArrivalProfile profile);

/// Per-tenant traffic description. Tenants are picked per request by
/// weight; each tenant has its own algorithm mix (remainder after
/// bfs + sssp is SSWP, as in TraceOptions).
struct TenantMix {
  double weight = 1.0;
  double bfs_fraction = 0.5;
  double sssp_fraction = 0.35;
};

struct ArrivalOptions {
  ArrivalProfile profile = ArrivalProfile::kPoisson;
  /// Time-averaged arrival rate, queries per simulated second.
  double rate_qps = 1000.0;
  uint32_t num_requests = 256;
  /// Bursty profile: burst length, gap length, and the rate multiplier
  /// applied during the gap (0 = fully silent between bursts).
  double on_ms = 20.0;
  double off_ms = 80.0;
  double off_rate_scale = 0.1;
  /// Diurnal profile: modulation period and the trough-to-peak rate ratio.
  double period_ms = 1000.0;
  double trough_scale = 0.2;
  /// Catalog skew: graph 0 is "hot" and receives hot_graph_fraction of the
  /// traffic; the rest spreads uniformly over graphs 1..num_graphs-1.
  uint32_t num_graphs = 1;
  double hot_graph_fraction = 0.8;
  /// Tenant set; empty means one default tenant (TenantMix{}).
  std::vector<TenantMix> tenants;
  /// Whole-graph query mix (DESIGN.md section 15): each request first draws
  /// connected-components / PageRank with these fleet-wide fractions; the
  /// per-source remainder then follows the tenant's bfs/sssp/sswp mix.
  /// Both default 0 — the legacy trace shape (and its RNG consumption) is
  /// byte-identical when no whole-graph traffic is requested.
  double cc_fraction = 0;
  double pr_fraction = 0;
  /// SLO class mix: gold + silver fractions, remainder bronze. When
  /// assign_slo is false, requests are classless (legacy trace shape) and
  /// the deadline fields below are ignored.
  bool assign_slo = true;
  double gold_fraction = 0.2;
  double silver_fraction = 0.3;
  /// Per-class queueing deadlines (Request::deadline_ms); kNoDeadline
  /// disables a class's deadline.
  double gold_deadline_ms = kNoDeadline;
  double silver_deadline_ms = kNoDeadline;
  double bronze_deadline_ms = kNoDeadline;
  uint64_t seed = 1;
};

/// Generates `options.num_requests` requests over sources in
/// [0, num_vertices), sorted by arrival time, ids 0..n-1 in arrival order.
/// Classed requests get SloPriority(class) as their scheduler priority.
std::vector<Request> GenerateArrivals(graph::VertexId num_vertices,
                                      const ArrivalOptions& options);

/// Parses a CLI arrival spec: "profile:key=value,key=value,...", e.g.
/// "poisson:rate=2000,n=512,gold=0.25,seed=7" or
/// "bursty:rate=1500,on=10,off=90,offscale=0" or
/// "diurnal:rate=800,period=500,trough=0.1,graphs=4,hot=0.7".
/// Keys: rate, n, on, off, offscale, period, trough, graphs, hot, tenants,
/// slo (0/1), gold, silver, gd, sd, bd (per-class deadlines ms), seed.
/// Returns false and sets *error on a malformed spec.
bool ParseArrivalSpec(const std::string& spec, ArrivalOptions* options,
                      std::string* error);

}  // namespace eta::serve
