// Per-run result record shared by EtaGraph and the baseline frameworks.
// Everything the evaluation section consumes comes out of this struct:
// Table III (kernel_ms / total_ms / oom), Table IV (iterations, activated
// fraction), Table V + Fig 4 (migration sizes, timeline), Fig 2/5
// (iteration_stats), Fig 7 (counters).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/traversal.hpp"
#include "sanitizer/report.hpp"
#include "sim/profiler.hpp"
#include "sim/timeline.hpp"

namespace eta::core {

struct IterationStat {
  uint32_t iteration = 0;
  /// Vertices in the active set processed this iteration.
  uint64_t active_vertices = 0;
  /// Shadow (virtual) vertices generated from them, if the framework cuts
  /// degrees (0 otherwise).
  uint64_t shadow_vertices = 0;
  /// Simulated clock at the end of the iteration.
  double end_ms = 0;
  /// Cumulative activations so far (Fig 5's "visited vertices").
  uint64_t activated_cum = 0;
};

/// Outcome of the fault-injection/recovery machinery for one run
/// (DESIGN.md section 8). All-zero when no injector is attached.
struct FaultStats {
  uint64_t ecc_corrected = 0;      // correctable ECC events (logged only)
  uint64_t ecc_uncorrectable = 0;  // launches aborted by a UECC
  uint64_t hangs = 0;              // launches killed by the watchdog
  uint64_t launch_failures = 0;    // total failed launches (all classes)
  uint64_t retries = 0;            // attempts restarted after a failure
  uint64_t restaged_buffers = 0;   // buffers re-shipped from host shadows
  uint64_t restaged_bytes = 0;
  double backoff_ms = 0;           // simulated time burned backing off
  bool device_lost = false;        // device fell off the bus (sticky)
  bool exhausted = false;          // retry budget spent without success

  /// The query produced no result over the device path.
  bool Failed() const { return device_lost || exhausted; }

  void Merge(const FaultStats& other) {
    ecc_corrected += other.ecc_corrected;
    ecc_uncorrectable += other.ecc_uncorrectable;
    hangs += other.hangs;
    launch_failures += other.launch_failures;
    retries += other.retries;
    restaged_buffers += other.restaged_buffers;
    restaged_bytes += other.restaged_bytes;
    backoff_ms += other.backoff_ms;
    device_lost = device_lost || other.device_lost;
    exhausted = exhausted || other.exhausted;
  }
};

/// One device attempt of the retry loop (DESIGN.md section 8), recorded
/// only when EtaGraphOptions::trace_requests is on. The serving layer's
/// batcher converts these into per-request kFault/kRetry trace events so
/// a span tree can show exactly which fault class hit which attempt and
/// what backoff it was charged.
struct AttemptRecord {
  uint32_t attempt = 0;        // 0-based attempt index
  bool succeeded = false;      // this attempt produced the answer
  /// Fault class of a failed attempt: 0 = none/other, 1 = uncorrectable
  /// ECC, 2 = kernel timeout (hang), 3 = device lost. Matches
  /// trace::FaultClass.
  uint8_t fault = 0;
  double backoff_ms = 0;       // backoff charged before the next retry
  bool budget_denied = false;  // the fleet retry budget refused the retry
  bool restaged = false;       // corrupted buffers were re-shipped
};

struct RunReport {
  std::string framework;
  std::string dataset;
  Algo algo = Algo::kBfs;

  /// Out of device memory (Table III "O.O.M"): the run did not execute.
  bool oom = false;
  uint64_t oom_request_bytes = 0;

  /// Fault-injection outcome; faults.Failed() means the device path gave up
  /// (treat like oom: labels are not meaningful).
  FaultStats faults;

  /// The run produced no usable labels over the device path.
  bool DeviceFailed() const { return oom || faults.Failed(); }

  double kernel_ms = 0;  // sum of kernel roofline times
  double total_ms = 0;   // simulated end-to-end: transfers + kernels + stalls
  /// Incremental simulated cost of this query alone. Equal to total_ms for
  /// a one-shot run; for a query served by a persistent ResidentGraph it
  /// excludes the graph-loading time and all earlier queries (total_ms is
  /// then the absolute session clock at completion).
  double query_ms = 0;

  uint32_t iterations = 0;
  uint64_t activated = 0;          // distinct vertices ever activated
  double activated_fraction = 0;   // Table IV "Act. %" (as a fraction)

  /// Per-source reachability attribution for multi-source runs executed
  /// with attribute_sources=true: per_source_reached[i] is the number of
  /// vertices reachable from sources[i] individually — bit-identical to a
  /// single-source run from sources[i]. Empty when attribution is off.
  std::vector<uint64_t> per_source_reached;

  std::vector<IterationStat> iteration_stats;

  sim::Counters counters;  // kernel-attributed counters (nvprof analog)
  /// This query's own counter delta (counters above are cumulative over the
  /// device's whole session for persistent-session runs; for a one-shot run
  /// the two are equal). Always filled — the serving layer's cost
  /// observations read elapsed_cycles from here.
  sim::Counters query_counters;
  sim::Timeline timeline;

  /// etaprof per-launch records for this query, in launch order; empty
  /// unless EtaGraphOptions::profile is on. Failed launches appear with
  /// their fault status and all-zero counters.
  std::vector<sim::KernelProfile> kernel_profiles;

  /// etatrace per-attempt records for this query's retry loop, in attempt
  /// order; empty unless EtaGraphOptions::trace_requests is on.
  std::vector<AttemptRecord> attempts;

  // Unified-memory migration record (empty for explicit-copy frameworks).
  std::vector<uint64_t> migration_sizes;
  uint64_t migrated_bytes = 0;

  uint64_t device_bytes_peak = 0;

  /// etacheck findings accumulated over the session so far; empty (and
  /// launches_checked == 0) unless EtaGraphOptions::check enabled a
  /// checker.
  sanitizer::SanitizerReport check;

  /// Final labels (host copy) for verification against CpuReference.
  std::vector<graph::Weight> labels;
};

}  // namespace eta::core
