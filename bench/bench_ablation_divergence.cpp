// Warp-divergence ablation: the load-balancing claim behind UDC
// (Section III-A: without a degree cut, "most threads have to wait until
// threads of large out-degree nodes finish"). Reports nvprof-style warp
// execution efficiency (mean active lanes per issued warp instruction) of
// the traversal kernels across degree limits, against Tigr's VST and the
// frameworks without any cut.
#include "baselines/tigr.hpp"
#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal", "rmat"});

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    util::Table table({"Configuration", "Warp efficiency", "Kernel (ms)"});

    for (uint32_t k : {48u, 16u, 8u, 4u}) {
      core::EtaGraphOptions options;
      options.degree_limit = k;
      auto r = core::EtaGraph(options).Run(csr, core::Algo::kBfs, graph::kQuerySource);
      table.AddRow({"EtaGraph UDC K=" + std::to_string(k),
                    util::FormatDouble(r.counters.WarpEfficiency(), 3),
                    util::FormatDouble(r.kernel_ms, 3)});
    }
    {
      baselines::TigrOptions options;
      options.split_degree = 16;
      auto r = baselines::Tigr(options).Run(csr, core::Algo::kBfs, graph::kQuerySource);
      table.AddRow({"Tigr VST k=16", util::FormatDouble(r.counters.WarpEfficiency(), 3),
                    util::FormatDouble(r.kernel_ms, 3)});
    }
    {
      // No cut at all: Tigr with an effectively unbounded split degree is
      // the classic one-thread-per-vertex strawman (Harish & Narayanan).
      baselines::TigrOptions options;
      options.split_degree = 1u << 20;
      auto r = baselines::Tigr(options).Run(csr, core::Algo::kBfs, graph::kQuerySource);
      table.AddRow({"vertex-centric, no cut",
                    util::FormatDouble(r.counters.WarpEfficiency(), 3),
                    util::FormatDouble(r.kernel_ms, 3)});
    }
    std::printf("%s\n", table.Render("Ablation - warp execution efficiency vs degree "
                                     "cut (BFS on " +
                                     graph::FindDataset(name)->paper_name +
                                     "); smaller K => better balance, at bookkeeping "
                                     "cost")
                            .c_str());
  }
  return 0;
}
