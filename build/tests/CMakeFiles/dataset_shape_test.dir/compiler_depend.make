# Empty compiler generated dependencies file for dataset_shape_test.
# This may be replaced when dependencies are built.
