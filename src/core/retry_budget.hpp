// Fleet-wide retry budget (DESIGN.md section 13): a deterministic token
// bucket on the simulated clock that caps how much *extra* work fault
// recovery may inject per simulated second. Without it, a sticky-fault storm
// multiplies offered load exactly when capacity drops — every queued query
// on a corrupted shard pays max_retries re-stage attempts. With it, each
// fault retry and each session rebuild first draws a token; a denied draw
// terminates recovery for that query (the serving layer answers it via the
// CPU fallback instead of hammering the device).
//
// Lives in core (not serve) because ResidentGraph's attempt loop is the
// innermost consumer; the serving engines create one bucket per fleet and
// share it into every shard's EtaGraphOptions. Refills are driven
// explicitly via Advance(now_ms) from whoever owns the clock — the bucket
// itself never reads time, so double runs replay bit-identically.
#pragma once

#include <algorithm>
#include <cstdint>

namespace eta::core {

class RetryBudget {
 public:
  struct Config {
    /// Token refill rate per simulated second. <= 0 means the budget is
    /// disabled: every draw is granted and nothing is counted.
    double tokens_per_s = 0;
    /// Bucket depth (burst allowance); also the initial fill.
    double burst = 8.0;
  };

  struct Stats {
    uint64_t retries_granted = 0;
    uint64_t retries_denied = 0;
    uint64_t rebuilds_granted = 0;
    uint64_t rebuilds_denied = 0;
    uint64_t Granted() const { return retries_granted + rebuilds_granted; }
    uint64_t Denied() const { return retries_denied + rebuilds_denied; }
  };

  explicit RetryBudget(Config config)
      : config_(config), tokens_(std::max(0.0, config.burst)) {}

  bool Enabled() const { return config_.tokens_per_s > 0; }
  const Config& config() const { return config_; }

  /// Refill up to `now_ms` on the simulated clock. Monotone: an older
  /// timestamp is a no-op, so interleaved callers cannot double-refill.
  void Advance(double now_ms) {
    if (!Enabled()) return;
    if (now_ms <= last_refill_ms_) return;
    tokens_ = std::min(config_.burst,
                       tokens_ + (now_ms - last_refill_ms_) * config_.tokens_per_s / 1000.0);
    last_refill_ms_ = now_ms;
  }

  /// Draw one token for a fault retry (which covers any re-stage the retry
  /// needs). Returns false — and counts the denial — when the bucket is dry.
  bool TryAcquireRetry() { return TryAcquire(&stats_.retries_granted, &stats_.retries_denied); }

  /// Draw one token for a session rebuild (teardown + full re-stage).
  bool TryAcquireRebuild() {
    return TryAcquire(&stats_.rebuilds_granted, &stats_.rebuilds_denied);
  }

  double TokensAvailable() const { return tokens_; }
  const Stats& stats() const { return stats_; }

 private:
  bool TryAcquire(uint64_t* granted, uint64_t* denied) {
    if (!Enabled()) return true;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      ++*granted;
      return true;
    }
    ++*denied;
    return false;
  }

  Config config_;
  double tokens_ = 0;
  double last_refill_ms_ = 0;
  Stats stats_;
};

}  // namespace eta::core
