#!/usr/bin/env bash
# Quick reproduction pass: every table/figure bench at 1/10 scale with a
# throwaway dataset cache. Finishes in a few minutes on one core; shapes
# (orderings, OOM pattern at proportional device scale) are preserved,
# absolute numbers shrink further. For the calibrated results use the
# binaries without --scale.
set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${SCALE:-0.1}"
CACHE="$(mktemp -d)/cache"
trap 'rm -rf "$(dirname "$CACHE")"' EXIT

for b in "$BUILD_DIR"/bench/bench_*; do
  name="$(basename "$b")"
  case "$name" in
    bench_sim_micro)
      # Host microbenches: keep them short.
      "$b" --benchmark_min_time=0.05s
      ;;
    *)
      echo "==== $name (scale=$SCALE)"
      "$b" --scale="$SCALE" --cache="$CACHE"
      ;;
  esac
done
