#include "graph/datasets.hpp"

#include <cmath>
#include <filesystem>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace eta::graph {

namespace {

/// Social-network R-MAT parameters (Graph500-style skew).
constexpr double kSocialA = 0.57, kSocialB = 0.19, kSocialC = 0.19;

struct StandInRecipe {
  // Social/R-MAT knobs.
  uint32_t rmat_scale = 0;
  double a = kSocialA, b = kSocialB, c = kSocialC;
  /// Fraction of edges mirrored (social reciprocity; 1.0 = undirected).
  double reciprocal = 0.0;
  /// Drop untouched R-MAT IDs (real social graphs have no phantom IDs).
  bool compact = false;
  /// Long-tail chain depth (0 = none); reproduces the paper's BFS
  /// iteration counts on the social graphs (Table IV).
  uint32_t tail_depth = 0;
  // Web knobs.
  WebGraphParams web;
  // Tiny source component (uk-2006 only).
  VertexId tiny_component = 0;
  uint32_t tiny_depth = 0;
  // Shared.
  uint64_t num_edges = 0;
  uint64_t seed = 0;
};

StandInRecipe RecipeFor(const std::string& name) {
  // Edge budgets are calibrated against the 144 MB simulated device memory
  // so that Table III's O.O.M pattern reproduces; see DESIGN.md §1.
  StandInRecipe r;
  if (name == "slashdot") {
    r.rmat_scale = 17;
    r.num_edges = 570'000;
    r.reciprocal = 0.6;
    r.compact = true;
    r.tail_depth = 7;
    r.seed = 11;
    return r;
  }
  if (name == "livejournal") {
    r.rmat_scale = 17;
    r.num_edges = 1'200'000;
    r.reciprocal = 0.5;
    r.compact = true;
    r.tail_depth = 14;
    r.seed = 12;
    return r;
  }
  if (name == "orkut") {
    r.rmat_scale = 16;
    r.num_edges = 1'150'000;
    r.reciprocal = 1.0;
    r.compact = true;
    r.tail_depth = 7;
    r.seed = 13;
    return r;
  }
  if (name == "rmat") {
    r.rmat_scale = 19;
    r.a = 0.45;
    r.b = 0.22;
    r.c = 0.22;
    r.num_edges = 8'000'000;
    r.tail_depth = 8;
    r.seed = 14;
    return r;
  }
  if (name == "uk2005") {
    r.web = {.num_vertices = 300'000, .num_edges = 6'000'000,
             .num_communities = 66, .lcc_fraction = 0.652,
             .community_depth = 3, .seed = 15};
    r.num_edges = r.web.num_edges;
    r.seed = 15;
    return r;
  }
  if (name == "sk2005") {
    r.web = {.num_vertices = 500'000, .num_edges = 16'000'000,
             .num_communities = 19, .lcc_fraction = 0.708,
             .community_depth = 3, .seed = 16};
    r.num_edges = r.web.num_edges;
    r.seed = 16;
    return r;
  }
  if (name == "uk2006") {
    r.web = {.num_vertices = 1'100'000, .num_edges = 34'000'000,
             .num_communities = 30, .lcc_fraction = 0.71,
             .community_depth = 3, .seed = 17};
    r.num_edges = r.web.num_edges;
    r.tiny_component = 90;
    r.tiny_depth = 4;
    r.seed = 17;
    return r;
  }
  ETA_CHECK(false && "unknown dataset name");
  return {};
}

}  // namespace

const std::vector<DatasetInfo>& AllDatasets() {
  static const std::vector<DatasetInfo> kDatasets = {
      {"slashdot", "Slashdot", "social", {0.077, 0.9, 11.7, 98, 8}},
      {"livejournal", "LiveJournal", "social", {5, 69, 14.2, 99, 15}},
      {"orkut", "com-Orkut", "social", {3, 117, 38.1, 99, 8}},
      {"rmat", "RMAT25", "rmat", {32, 512, 32, 81, 9}},
      {"uk2005", "uk-2005", "web", {39, 936, 23.7, 65.2, 200}},
      {"sk2005", "sk-2005", "web", {50, 1949, 38.5, 70.8, 57}},
      {"uk2006", "uk-2006", "web", {80, 2481, 30.7, 71, 4}},
  };
  return kDatasets;
}

std::optional<DatasetInfo> FindDataset(const std::string& name) {
  for (const DatasetInfo& info : AllDatasets()) {
    if (info.name == name) return info;
  }
  return std::nullopt;
}

Csr BuildDataset(const std::string& name, double scale) {
  ETA_CHECK(scale > 0.0 && scale <= 1.0);
  ETA_CHECK(FindDataset(name).has_value());
  StandInRecipe recipe = RecipeFor(name);

  std::vector<Edge> edges;
  if (recipe.rmat_scale != 0) {
    RmatParams params;
    params.scale = recipe.rmat_scale;
    // Shrink vertices with sqrt so average degree stays roughly constant
    // when smoke tests scale down.
    while (scale < 0.6 && params.scale > 10) {
      --params.scale;
      scale *= 2;
    }
    params.num_edges = static_cast<uint64_t>(recipe.num_edges * scale);
    params.a = recipe.a;
    params.b = recipe.b;
    params.c = recipe.c;
    params.seed = recipe.seed;
    edges = GenerateRmat(params);
    if (recipe.reciprocal > 0) {
      edges = MirrorEdges(std::move(edges), recipe.reciprocal, recipe.seed + 5);
    }
    VertexId num_vertices = VertexId{1} << params.scale;
    if (recipe.compact) {
      edges = CompactVertexIds(std::move(edges), &num_vertices);
    }
    if (recipe.tail_depth > 0) {
      edges = AppendTailChain(std::move(edges), /*attach=*/0, num_vertices,
                              recipe.tail_depth, /*width=*/8, recipe.seed + 6);
    }
  } else {
    WebGraphParams params = recipe.web;
    params.num_vertices = static_cast<VertexId>(params.num_vertices * scale);
    params.num_edges = static_cast<uint64_t>(params.num_edges * scale);
    edges = GenerateWebGraph(params);
    if (recipe.tiny_component != 0) {
      edges = PlantTinySourceComponent(std::move(edges), recipe.tiny_component,
                                       recipe.tiny_depth, recipe.seed + 1);
    }
  }

  Csr csr = BuildCsr(std::move(edges));
  csr.DeriveWeights(/*seed=*/recipe.seed * 7919);
  ETA_CHECK(csr.Validate());
  return csr;
}

Csr BuildDatasetCached(const std::string& name, const std::string& cache_dir,
                       double scale) {
  namespace fs = std::filesystem;
  fs::create_directories(cache_dir);
  char key[64];
  std::snprintf(key, sizeof(key), "%s_s%04d.gr", name.c_str(),
                static_cast<int>(std::lround(scale * 1000)));
  fs::path path = fs::path(cache_dir) / key;
  if (fs::exists(path)) {
    return ReadGaloisGr(path.string());
  }
  Csr csr = BuildDataset(name, scale);
  WriteGaloisGr(csr, path.string());
  ETA_LOG(Info) << "cached dataset " << name << " at " << path.string();
  return csr;
}

}  // namespace eta::graph
