# Empty dependencies file for eta_baselines.
# This may be replaced when dependencies are built.
