file(REMOVE_RECURSE
  "CMakeFiles/unified_memory_test.dir/unified_memory_test.cpp.o"
  "CMakeFiles/unified_memory_test.dir/unified_memory_test.cpp.o.d"
  "unified_memory_test"
  "unified_memory_test.pdb"
  "unified_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unified_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
