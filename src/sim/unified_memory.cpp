#include "sim/unified_memory.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace eta::sim {

void UnifiedMemory::Register(uint64_t base_addr, uint64_t bytes) {
  ETA_CHECK(bytes > 0);
  ETA_CHECK(base_addr % spec_.page_bytes == 0);
  Range range;
  range.base = base_addr;
  range.bytes = bytes;
  uint64_t pages = (bytes + spec_.page_bytes - 1) / spec_.page_bytes;
  range.state.assign(pages, PageState::kHost);
  range.dirty.assign(pages, 0);
  range.arrival_ms.assign(pages, 0.f);
  ranges_.emplace(base_addr, std::move(range));
}

void UnifiedMemory::Unregister(uint64_t base_addr) {
  auto it = ranges_.find(base_addr);
  ETA_CHECK(it != ranges_.end());
  for (PageState s : it->second.state) {
    if (s == PageState::kResident || s == PageState::kInFlight) {
      resident_bytes_ -= spec_.page_bytes;
    }
  }
  ranges_.erase(it);
  // Stale FIFO entries for this range are skipped lazily in EnsureRoom.
}

UnifiedMemory::Range* UnifiedMemory::FindRange(uint64_t addr) {
  auto it = ranges_.upper_bound(addr);
  if (it == ranges_.begin()) return nullptr;
  --it;
  Range& r = it->second;
  return addr < r.base + r.bytes ? &r : nullptr;
}

const UnifiedMemory::Range* UnifiedMemory::FindRangeConst(uint64_t addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it == ranges_.begin()) return nullptr;
  --it;
  const Range& r = it->second;
  return addr < r.base + r.bytes ? &r : nullptr;
}

bool UnifiedMemory::IsManaged(uint64_t addr) const {
  return FindRangeConst(addr) != nullptr;
}

uint64_t UnifiedMemory::EnsureRoom(uint64_t needed) {
  uint64_t evicted = 0;
  while (resident_bytes_ + needed > budget_bytes_ && !resident_fifo_.empty()) {
    auto [base, page] = resident_fifo_.front();
    resident_fifo_.pop_front();
    auto it = ranges_.find(base);
    if (it == ranges_.end()) continue;  // range was unregistered
    Range& r = it->second;
    if (page >= r.state.size() ||
        (r.state[page] != PageState::kResident && r.state[page] != PageState::kInFlight)) {
      continue;
    }
    r.state[page] = PageState::kHost;
    r.dirty[page] = 0;  // dirty pages write back; cost charged by caller
    resident_bytes_ -= spec_.page_bytes;
    evicted += spec_.page_bytes;
  }
  evicted_bytes_ += evicted;
  return evicted;
}

UnifiedMemory::TouchResult UnifiedMemory::Touch(uint64_t addr, bool write, double now_ms) {
  TouchResult result;
  Range* r = FindRange(addr);
  ETA_CHECK(r != nullptr);
  uint64_t page = PageOf(*r, addr);

  if (r->state[page] == PageState::kResident) {
    if (write) r->dirty[page] = 1;
    return result;
  }
  if (r->state[page] == PageState::kInFlight) {
    // Scheduled by a prefetch; the warp stalls until the chunk lands.
    // Residency was accounted when the prefetch was issued.
    result.arrival_ms = r->arrival_ms[page];
    r->state[page] = PageState::kResident;
    if (write) r->dirty[page] = 1;
    return result;
  }

  // --- Page fault: merged migration -------------------------------------
  // The UM driver's density prefetcher migrates a 16 KB block around any
  // fault and escalates when follow-up faults land within the current
  // window; a distant fault resets it. Per-migration sizes land between
  // one page (partially-resident or edge blocks) and the fault-path cap,
  // averaging a few tens of KB — Table V's profile.
  auto log2_pages = [&](uint64_t bytes) {
    uint64_t pages = std::max<uint64_t>(1, bytes / spec_.page_bytes);
    uint64_t log = 0;
    while ((1ULL << (log + 1)) <= pages) ++log;
    return log;
  };
  const uint64_t base_log = log2_pages(16 * util::kKiB);
  // Fault-driven migrations cap well below the 2 MB prefetch chunk (the
  // driver reserves full-chunk moves for explicit prefetches; nvprof traces
  // show on-demand batches topping out under ~1 MB — Table V).
  const uint64_t max_log =
      std::min(log2_pages(spec_.max_migration_bytes), log2_pages(1 * util::kMiB));
  if (r->window_log < base_log) r->window_log = static_cast<uint32_t>(base_log);
  uint64_t window_pages = 1ULL << r->window_log;
  if (r->last_fault_page != ~0ULL) {
    uint64_t dist = page > r->last_fault_page ? page - r->last_fault_page
                                              : r->last_fault_page - page;
    if (dist <= window_pages) {
      // Strictly local follow-up fault: grow the granule.
      r->window_log = static_cast<uint32_t>(std::min<uint64_t>(r->window_log + 1, max_log));
    } else {
      r->window_log = static_cast<uint32_t>(base_log);
    }
  }
  r->last_fault_page = page;
  // Never migrate a batch larger than the whole device budget (the driver
  // caps its prefetch block at what can be made resident at all).
  uint64_t budget_pages = std::max<uint64_t>(1, budget_bytes_ / spec_.page_bytes);
  while (r->window_log > 0 && (1ULL << r->window_log) > budget_pages) {
    --r->window_log;
  }
  window_pages = 1ULL << r->window_log;

  uint64_t first = page / window_pages * window_pages;
  uint64_t last = std::min<uint64_t>(first + window_pages, r->state.size());
  uint64_t batch_pages = 0;
  for (uint64_t p = first; p < last; ++p) {
    if (r->state[p] != PageState::kHost) continue;
    ++batch_pages;
  }
  ETA_CHECK(batch_pages >= 1);  // the faulting page itself is kHost

  uint64_t batch_bytes = batch_pages * spec_.page_bytes;
  result.evicted_bytes = EnsureRoom(batch_bytes);
  result.cache_flush = result.evicted_bytes > 0;

  for (uint64_t p = first; p < last; ++p) {
    if (r->state[p] != PageState::kHost) continue;
    r->state[p] = PageState::kResident;
    resident_bytes_ += spec_.page_bytes;
    resident_fifo_.emplace_back(r->base, p);
  }
  if (write) r->dirty[page] = 1;

  result.migrated_bytes = batch_bytes;
  result.fault_ops = 1;
  result.arrival_ms = now_ms;  // charged to the running kernel by the device
  migration_sizes_.Add(batch_bytes);
  return result;
}

double UnifiedMemory::PrefetchToDevice(uint64_t base_addr, double start_ms) {
  auto it = ranges_.find(base_addr);
  ETA_CHECK(it != ranges_.end());
  Range& r = it->second;

  const uint64_t chunk_pages = spec_.max_migration_bytes / spec_.page_bytes;
  double t = start_ms;
  uint64_t pages = r.state.size();
  for (uint64_t first = 0; first < pages; first += chunk_pages) {
    uint64_t last = std::min(first + chunk_pages, pages);
    uint64_t moving = 0;
    for (uint64_t p = first; p < last; ++p) {
      if (r.state[p] == PageState::kHost) ++moving;
    }
    if (moving == 0) continue;
    uint64_t bytes = moving * spec_.page_bytes;
    EnsureRoom(bytes);
    t += spec_.PcieMsForBytes(bytes);
    for (uint64_t p = first; p < last; ++p) {
      if (r.state[p] != PageState::kHost) continue;
      // In-flight pages occupy device room from the moment the prefetch is
      // queued; when the allocation oversubscribes the budget, EnsureRoom
      // above recycles the earliest chunks (LRU thrash, as on real UM).
      r.state[p] = PageState::kInFlight;
      r.arrival_ms[p] = static_cast<float>(t);
      resident_bytes_ += spec_.page_bytes;
      resident_fifo_.emplace_back(r.base, p);
    }
    migration_sizes_.Add(bytes);
  }
  return t;
}

}  // namespace eta::sim
