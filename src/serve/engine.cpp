#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "core/framework.hpp"
#include "cpu/reference.hpp"
#include "serve/batcher.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "util/check.hpp"

namespace eta::serve {
namespace {

uint64_t ToMicros(double ms) {
  return static_cast<uint64_t>(std::llround(std::max(0.0, ms) * 1000.0));
}

}  // namespace

ServeReport ServeEngine::Serve(const graph::Csr& csr,
                               const std::vector<Request>& trace) const {
  for (size_t i = 1; i < trace.size(); ++i) {
    ETA_CHECK(trace[i - 1].arrival_ms <= trace[i].arrival_ms);
  }

  ServeReport report;
  report.mode = options_.mode;
  report.total_requests = trace.size();
  report.results.reserve(trace.size());

  const bool use_session = options_.mode != ServeMode::kNaivePerQuery;
  std::unique_ptr<GraphSession> session;
  double now = 0;
  uint32_t rebuilds_left = options_.max_session_rebuilds;

  /// Simulated cost of answering one query on the host CPU instead of the
  /// device — a flat (n + m) / throughput bill, deterministic by design.
  const double cpu_query_ms =
      static_cast<double>(csr.NumVertices() + csr.NumEdges()) /
      std::max(1.0, options_.cpu_fallback_units_per_ms);

  /// Tears the current session down (running the leakcheck sweep) and folds
  /// its etacheck report into the fleet report before dropping it.
  auto retire_session = [&]() {
    if (session == nullptr) return;
    session->Shutdown();
    if (const sanitizer::SanitizerReport* c = session->CheckReport()) {
      report.check.Merge(*c);
    }
    session.reset();
  };

  /// Stages a fresh session, charging its load time to the serve clock.
  /// Returns false (and retires the carcass) when staging itself failed.
  auto build_session = [&]() {
    session = std::make_unique<GraphSession>(csr, options_.graph);
    now += session->LoadMs();
    if (!session->Loaded()) {
      retire_session();
      return false;
    }
    return true;
  };

  if (use_session) {
    if (build_session()) {
      report.load_ms = session->LoadMs();
    } else {
      // The very first staging failed (an injected allocation fault).
      // Rebuilding is the only play; if the budget runs dry the whole
      // replay is served degraded on the CPU.
      while (session == nullptr && rebuilds_left > 0) {
        --rebuilds_left;
        ++report.session_rebuilds;
        if (build_session()) report.load_ms = session->LoadMs();
      }
    }
  }

  QueryScheduler sched(options_.queue_capacity);
  size_t next = 0;  // first trace entry that has not yet arrived

  auto reject = [&](const Request& r) {
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kRejected;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    report.results.push_back(q);
    ++report.rejected;
  };
  auto time_out = [&](const Request& r, double when_ms) {
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kTimedOut;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    q.start_ms = when_ms;
    q.finish_ms = when_ms;
    report.results.push_back(q);
    ++report.timed_out;
  };
  auto admit_until = [&](double t) {
    while (next < trace.size() && trace[next].arrival_ms <= t) {
      if (!sched.Admit(trace[next])) reject(trace[next]);
      ++next;
    }
  };
  auto expire_at = [&](double t) {
    for (const Request& r : sched.ExpireDeadlines(t)) time_out(r, t);
  };
  /// Serves `r` on the host CPU reference — the degraded terminal state.
  /// The answer is exact (same labels the device would converge to); only
  /// the latency is worse.
  auto serve_cpu = [&](const Request& r, double start) {
    std::vector<graph::Weight> labels = core::CpuReference(csr, r.algo, r.source);
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kDegraded;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    q.reached_vertices = cpu::CountReached(labels, core::IsWidest(r.algo));
    q.batch_size = 0;
    q.start_ms = start;
    q.finish_ms = start + cpu_query_ms;
    ++report.degraded;
    return q;
  };

  while (true) {
    admit_until(now);
    expire_at(now);
    if (sched.Empty()) {
      if (next >= trace.size()) break;
      now = std::max(now, trace[next].arrival_ms);  // idle until the next arrival
      continue;
    }

    std::optional<Request> head = sched.PopNext();
    ETA_CHECK(head.has_value());
    Batch batch;
    batch.algo = head->algo;
    batch.requests.push_back(*head);

    if (options_.mode == ServeMode::kSessionBatched && session != nullptr &&
        Batchable(head->algo)) {
      const uint32_t limit = std::min<uint32_t>(
          std::max<uint32_t>(options_.max_batch, 1),
          core::ResidentGraph::kMaxAttributedSources);
      const double window_end =
          std::min(now + options_.batch_window_ms, head->StartDeadline());
      auto fill = [&]() {
        if (batch.requests.size() >= limit) return;
        std::vector<Request> more = sched.PopCompatible(
            batch.algo, limit - static_cast<uint32_t>(batch.requests.size()));
        batch.requests.insert(batch.requests.end(), more.begin(), more.end());
      };
      fill();
      // Hold the window open for compatible future arrivals; the serve clock
      // advances to each arrival (never past window_end, which is capped at
      // the head's start deadline, so the head can never time out here).
      while (batch.requests.size() < limit && next < trace.size() &&
             trace[next].arrival_ms <= window_end) {
        now = std::max(now, trace[next].arrival_ms);
        admit_until(now);
        expire_at(now);
        fill();
      }
      // Requests folded in earlier may have expired while the window stayed
      // open; dispatch only the still-live ones.
      std::vector<Request> live;
      live.reserve(batch.requests.size());
      for (const Request& r : batch.requests) {
        if (r.ExpiredAt(now)) {
          time_out(r, now);
        } else {
          live.push_back(r);
        }
      }
      batch.requests = std::move(live);
      if (batch.requests.empty()) continue;
    }

    report.batch_occupancy.Add(batch.requests.size());
    report.queue_depth.Add(sched.Depth());
    ++report.batches;

    std::vector<QueryResult> outcomes;
    // Requests the device has not answered yet; drains to empty via the
    // device path, session rebuilds, or the CPU fallback.
    std::vector<Request> pending = std::move(batch.requests);

    if (use_session) {
      if (session != nullptr) {
        BatchOutcome out = ExecuteBatch(*session, Batch{batch.algo, pending}, now);
        report.faults.Merge(out.faults);
        now += out.duration_ms;
        outcomes = std::move(out.results);
        pending = std::move(out.unserved);
      }
      // Quarantine-and-rebuild: an unhealthy session (device lost, or never
      // staged) is torn down and re-staged, then the leftover requests are
      // retried on the fresh device. A session that is healthy but
      // exhausted its retry budget falls through to the CPU — re-running
      // the same doomed query forever is not a recovery strategy.
      while (!pending.empty() && rebuilds_left > 0 &&
             (session == nullptr || !session->Healthy())) {
        --rebuilds_left;
        ++report.session_rebuilds;
        retire_session();
        if (!build_session()) continue;
        BatchOutcome out = ExecuteBatch(*session, Batch{batch.algo, pending}, now);
        report.faults.Merge(out.faults);
        now += out.duration_ms;
        for (QueryResult& q : out.results) outcomes.push_back(std::move(q));
        pending = std::move(out.unserved);
      }
    } else {
      // Naive strawman: a fresh device per query — allocate, stage the full
      // topology, run, tear down. total_ms is that query's whole bill.
      for (const Request& r : pending) {
        core::EtaGraph engine(options_.graph);
        core::RunReport run = engine.Run(csr, r.algo, r.source);
        report.faults.Merge(run.faults);
        report.check.Merge(run.check);
        if (run.DeviceFailed()) {
          outcomes.push_back(serve_cpu(r, now));
          now += cpu_query_ms;
          continue;
        }
        QueryResult q;
        q.id = r.id;
        q.status = QueryStatus::kOk;
        q.algo = r.algo;
        q.source = r.source;
        q.arrival_ms = r.arrival_ms;
        q.reached_vertices = run.activated;
        q.batch_size = 1;
        q.start_ms = now;
        now += run.total_ms;
        q.finish_ms = now;
        outcomes.push_back(q);
      }
      pending.clear();
    }

    // Whatever the device path could not answer is served degraded.
    for (const Request& r : pending) {
      outcomes.push_back(serve_cpu(r, now));
      now += cpu_query_ms;
    }

    for (const QueryResult& q : outcomes) {
      ++report.completed;
      report.reached_total += q.reached_vertices;
      report.latency_us.Add(ToMicros(q.LatencyMs()));
      report.queue_wait_us.Add(ToMicros(q.QueueMs()));
      report.results.push_back(q);
    }
  }

  report.makespan_ms = now;
  retire_session();
  std::sort(report.results.begin(), report.results.end(),
            [](const QueryResult& a, const QueryResult& b) { return a.id < b.id; });
  ETA_CHECK(report.results.size() == trace.size());
  return report;
}

}  // namespace eta::serve
