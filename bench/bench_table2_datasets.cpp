// Table II reproduction: dataset statistics for the seven stand-ins, side
// by side with the paper's numbers for the original graphs. Absolute sizes
// differ by the documented ~1/30 scale; shape columns (avg degree, %LCC)
// should track the paper.
#include "bench_common.hpp"
#include "graph/stats.hpp"
#include "util/units.hpp"

using namespace eta;

int main(int argc, char** argv) {
  std::vector<std::string> all;
  for (const auto& info : graph::AllDatasets()) all.push_back(info.name);
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, all);

  util::Table table({"Dataset", "#vertices", "#edges", "Avg.Deg (paper)", "MaxDeg",
                     "Size", "%LCC (paper)"});
  for (const std::string& name : env.datasets) {
    auto info = *graph::FindDataset(name);
    graph::Csr csr = bench::Load(env, name);
    graph::GraphStats s = graph::ComputeStats(csr);
    char avg[48], lcc[48];
    std::snprintf(avg, sizeof(avg), "%.1f (%.1f)", s.avg_degree, info.paper.avg_degree);
    std::snprintf(lcc, sizeof(lcc), "%.1f (%.1f)", s.lcc_fraction * 100,
                  info.paper.lcc_percent);
    table.AddRow({info.paper_name, std::to_string(s.num_vertices),
                  std::to_string(s.num_edges), avg, std::to_string(s.max_out_degree),
                  util::FormatBytes(s.text_size_bytes), lcc});
  }
  std::printf("%s\n", table.Render("Table II - datasets (stand-ins at ~1/30 scale; "
                                   "paper values in parentheses)")
                          .c_str());
  return 0;
}
