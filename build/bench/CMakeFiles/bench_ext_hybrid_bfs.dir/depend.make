# Empty dependencies file for bench_ext_hybrid_bfs.
# This may be replaced when dependencies are built.
