#include "serve/trace_file.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace eta::serve {
namespace {

bool ParseDoubleTok(const std::string& tok, double* out) {
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || tok.empty() || errno != 0) return false;
  *out = v;
  return true;
}

bool ParseI64Tok(const std::string& tok, long long* out) {
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || tok.empty() || errno != 0) return false;
  *out = v;
  return true;
}

bool ParseAlgoTok(std::string tok, core::Algo* out) {
  for (char& c : tok) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (tok == "bfs") {
    *out = core::Algo::kBfs;
  } else if (tok == "sssp") {
    *out = core::Algo::kSssp;
  } else if (tok == "sswp") {
    *out = core::Algo::kSswp;
  } else {
    return false;
  }
  return true;
}

std::optional<std::vector<Request>> Fail(std::string* error, size_t line_no,
                                         const std::string& what) {
  if (error != nullptr) {
    *error = "trace line " + std::to_string(line_no) + ": " + what;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Request>> ParseTraceText(std::string_view text,
                                                   std::string* error) {
  std::vector<Request> trace;
  std::istringstream lines{std::string(text)};
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::vector<std::string> tok;
    std::string t;
    while (fields >> t) {
      if (t[0] == '#') break;  // trailing comment
      tok.push_back(t);
    }
    if (tok.empty()) continue;  // blank or comment-only line
    if (tok.size() < 3 || tok.size() > 5) {
      return Fail(error, line_no,
                  "expected 'arrival_ms algo source [deadline_ms] [priority]', got " +
                      std::to_string(tok.size()) + " field(s)");
    }

    Request r;
    r.id = trace.size();
    if (!ParseDoubleTok(tok[0], &r.arrival_ms) || r.arrival_ms < 0) {
      return Fail(error, line_no, "bad arrival_ms '" + tok[0] + "'");
    }
    if (!ParseAlgoTok(tok[1], &r.algo)) {
      return Fail(error, line_no,
                  "unknown algo '" + tok[1] + "' (want bfs, sssp, or sswp)");
    }
    long long source = 0;
    if (!ParseI64Tok(tok[2], &source) || source < 0) {
      return Fail(error, line_no, "bad source '" + tok[2] + "'");
    }
    r.source = static_cast<graph::VertexId>(source);
    if (tok.size() >= 4) {
      double deadline = 0;
      if (!ParseDoubleTok(tok[3], &deadline) || deadline < 0) {
        return Fail(error, line_no, "bad deadline_ms '" + tok[3] + "'");
      }
      r.deadline_ms = deadline == 0 ? kNoDeadline : deadline;
    }
    if (tok.size() == 5) {
      long long prio = 0;
      if (!ParseI64Tok(tok[4], &prio) || prio < INT32_MIN || prio > INT32_MAX) {
        return Fail(error, line_no, "bad priority '" + tok[4] + "'");
      }
      r.priority = static_cast<int32_t>(prio);
    }
    if (!trace.empty() && r.arrival_ms < trace.back().arrival_ms) {
      return Fail(error, line_no,
                  "arrival_ms goes backwards (" + tok[0] + " after " +
                      std::to_string(trace.back().arrival_ms) + ")");
    }
    trace.push_back(r);
  }
  return trace;
}

std::optional<std::vector<Request>> LoadTraceFile(const std::string& path,
                                                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open trace file '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseTraceText(text.str(), error);
}

}  // namespace eta::serve
