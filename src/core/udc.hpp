// Unified Degree Cut (Section III, Definition 3).
//
// UDC maps a vertex v with edge set E_v to a set of *shadow vertices* that
// share v's ID and partition E_v into runs of at most K edges. Unlike
// Tigr's VST it is performed *on the fly*, per iteration, on the device:
// the active set is expanded into a virtual active set of (ID, start, end)
// 3-tuples directly from the unmodified CSR, with no preprocessing pass and
// no second copy of the raw data.
//
// The device-side transform lives in framework.cpp (the actSet2virtActSet
// kernel); this header provides the host-side reference used by tests and
// capacity sizing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace eta::core {

struct ShadowVertex {
  graph::VertexId id = 0;   // original vertex ID (shared by all shadows)
  graph::EdgeId start = 0;  // first out-edge index in the CSR column array
  graph::EdgeId end = 0;    // one past the last

  graph::EdgeId Degree() const { return end - start; }
  friend bool operator==(const ShadowVertex&, const ShadowVertex&) = default;
};

/// Upper bound on shadow vertices any active set can produce: the shadow
/// count of the full vertex set, sum of ceil(deg/K). Sizes the virtual
/// active set allocation.
uint64_t ShadowCapacity(const graph::Csr& csr, uint32_t degree_limit);

/// Host reference of the transform: shadows of every vertex in
/// `active_set`, in order. Zero-degree vertices produce no shadows
/// (Section IV-A: they cannot propagate).
std::vector<ShadowVertex> TransformActiveSet(const graph::Csr& csr,
                                             std::span<const graph::VertexId> active_set,
                                             uint32_t degree_limit);

/// Validates Definition 3 for `shadows` against `csr`: every shadow has
/// degree in (0, K]; shadows of one vertex are disjoint and their union is
/// exactly the vertex's edge set. Returns false on any violation.
bool ValidateShadows(const graph::Csr& csr,
                     std::span<const graph::VertexId> active_set,
                     std::span<const ShadowVertex> shadows, uint32_t degree_limit);

}  // namespace eta::core
