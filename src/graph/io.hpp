// Graph file I/O.
//
// The paper stores graphs on disk in the Galois CSR binary format
// (".gr", version 1) and loads them from there; this module implements that
// format faithfully (64-bit header, end-offset index array, 32-bit
// destination array, optional 32-bit edge data) plus a plain-text edge-list
// reader/writer for interoperability with SNAP-style downloads.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace eta::graph {

/// Writes `csr` (and its weights, if any) as a Galois version-1 .gr file.
/// Aborts on I/O failure.
void WriteGaloisGr(const Csr& csr, const std::string& path);

/// Reads a Galois version-1 .gr file. Aborts on malformed input.
Csr ReadGaloisGr(const std::string& path);

/// Writes "src dst [weight]" lines.
void WriteEdgeListText(const Csr& csr, const std::string& path);

/// Reads "src dst [weight]" lines; '#'- or '%'-prefixed lines are comments
/// (SNAP convention). If any line carries a third column, all must.
Csr ReadEdgeListText(const std::string& path);

}  // namespace eta::graph
