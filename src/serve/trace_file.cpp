#include "serve/trace_file.hpp"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace eta::serve {
namespace {

bool ParseDoubleTok(const std::string& tok, double* out) {
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || tok.empty() || errno != 0) return false;
  *out = v;
  return true;
}

bool ParseI64Tok(const std::string& tok, long long* out) {
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || tok.empty() || errno != 0) return false;
  *out = v;
  return true;
}

bool ParseAlgoTok(std::string tok, core::Algo* out) {
  for (char& c : tok) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (tok == "bfs") {
    *out = core::Algo::kBfs;
  } else if (tok == "sssp") {
    *out = core::Algo::kSssp;
  } else if (tok == "sswp") {
    *out = core::Algo::kSswp;
  } else if (tok == "cc") {
    *out = core::Algo::kCc;
  } else if (tok == "pr") {
    *out = core::Algo::kPr;
  } else {
    return false;
  }
  return true;
}

std::optional<std::vector<Request>> Fail(std::string* error, size_t line_no,
                                         const std::string& what) {
  if (error != nullptr) {
    *error = "trace line " + std::to_string(line_no) + ": " + what;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<Request>> ParseTraceText(std::string_view text,
                                                   std::string* error) {
  std::vector<Request> trace;
  std::istringstream lines{std::string(text)};
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::vector<std::string> tok;
    std::string t;
    while (fields >> t) {
      if (t[0] == '#') break;  // trailing comment
      tok.push_back(t);
    }
    if (tok.empty()) continue;  // blank or comment-only line
    if (tok.size() < 3 || tok.size() > 5) {
      return Fail(error, line_no,
                  "expected 'arrival_ms algo source [deadline_ms] [priority]', got " +
                      std::to_string(tok.size()) + " field(s)");
    }

    Request r;
    r.id = trace.size();
    if (!ParseDoubleTok(tok[0], &r.arrival_ms) || r.arrival_ms < 0) {
      return Fail(error, line_no, "bad arrival_ms '" + tok[0] + "'");
    }
    if (!ParseAlgoTok(tok[1], &r.algo)) {
      return Fail(error, line_no,
                  "unknown algo '" + tok[1] + "' (want bfs, sssp, sswp, cc, or pr)");
    }
    long long source = 0;
    if (!ParseI64Tok(tok[2], &source) || source < 0) {
      return Fail(error, line_no, "bad source '" + tok[2] + "'");
    }
    r.source = static_cast<graph::VertexId>(source);
    if (tok.size() >= 4) {
      double deadline = 0;
      if (!ParseDoubleTok(tok[3], &deadline) || deadline < 0) {
        return Fail(error, line_no, "bad deadline_ms '" + tok[3] + "'");
      }
      r.deadline_ms = deadline == 0 ? kNoDeadline : deadline;
    }
    if (tok.size() == 5) {
      long long prio = 0;
      if (!ParseI64Tok(tok[4], &prio) || prio < INT32_MIN || prio > INT32_MAX) {
        return Fail(error, line_no, "bad priority '" + tok[4] + "'");
      }
      r.priority = static_cast<int32_t>(prio);
    }
    if (!trace.empty() && r.arrival_ms < trace.back().arrival_ms) {
      return Fail(error, line_no,
                  "arrival_ms goes backwards (" + tok[0] + " after " +
                      std::to_string(trace.back().arrival_ms) + ")");
    }
    trace.push_back(r);
  }
  return trace;
}

std::string RenderReplayText(const std::vector<QueryResult>& results) {
  std::string out = "# id status algo source reached batch start_ms finish_ms\n";
  char buf[160];
  for (const QueryResult& q : results) {
    const char* algo = q.algo == core::Algo::kBfs    ? "bfs"
                       : q.algo == core::Algo::kSssp ? "sssp"
                       : q.algo == core::Algo::kSswp ? "sswp"
                       : q.algo == core::Algo::kCc   ? "cc"
                                                     : "pr";
    std::snprintf(buf, sizeof(buf),
                  "%llu %s %s %llu %llu %u %.4f %.4f\n",
                  static_cast<unsigned long long>(q.id), QueryStatusName(q.status),
                  algo, static_cast<unsigned long long>(q.source),
                  static_cast<unsigned long long>(q.reached_vertices), q.batch_size,
                  q.start_ms, q.finish_ms);
    out += buf;
  }
  return out;
}

std::optional<std::vector<QueryResult>> ParseReplayText(std::string_view text,
                                                        std::string* error) {
  std::vector<QueryResult> results;
  std::istringstream lines{std::string(text)};
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& what) -> std::optional<std::vector<QueryResult>> {
    if (error != nullptr) {
      *error = "replay line " + std::to_string(line_no) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::vector<std::string> tok;
    std::string t;
    while (fields >> t) {
      if (t[0] == '#') break;
      tok.push_back(t);
    }
    if (tok.empty()) continue;
    if (tok.size() != 8) {
      return fail("expected 8 fields 'id status algo source reached batch "
                  "start_ms finish_ms', got " +
                  std::to_string(tok.size()));
    }
    QueryResult q;
    long long v = 0;
    if (!ParseI64Tok(tok[0], &v) || v < 0) return fail("bad id '" + tok[0] + "'");
    q.id = static_cast<uint64_t>(v);
    std::optional<QueryStatus> status = ParseQueryStatus(tok[1]);
    if (!status.has_value()) return fail("unknown status '" + tok[1] + "'");
    q.status = *status;
    if (!ParseAlgoTok(tok[2], &q.algo)) return fail("unknown algo '" + tok[2] + "'");
    if (!ParseI64Tok(tok[3], &v) || v < 0) return fail("bad source '" + tok[3] + "'");
    q.source = static_cast<graph::VertexId>(v);
    if (!ParseI64Tok(tok[4], &v) || v < 0) return fail("bad reached '" + tok[4] + "'");
    q.reached_vertices = static_cast<uint64_t>(v);
    if (!ParseI64Tok(tok[5], &v) || v < 0 || v > UINT32_MAX) {
      return fail("bad batch '" + tok[5] + "'");
    }
    q.batch_size = static_cast<uint32_t>(v);
    if (!ParseDoubleTok(tok[6], &q.start_ms) || q.start_ms < 0) {
      return fail("bad start_ms '" + tok[6] + "'");
    }
    if (!ParseDoubleTok(tok[7], &q.finish_ms) || q.finish_ms < q.start_ms) {
      return fail("bad finish_ms '" + tok[7] + "'");
    }
    results.push_back(q);
  }
  return results;
}

std::optional<std::vector<Request>> LoadTraceFile(const std::string& path,
                                                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open trace file '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseTraceText(text.str(), error);
}

}  // namespace eta::serve
