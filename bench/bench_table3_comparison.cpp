// Table III reproduction — the paper's headline evaluation: runtime of
// CuSha, Gunrock, Tigr, EtaGraph and EtaGraph w/o UMP across BFS / SSSP /
// SSWP on all seven datasets. Cells are t_kernel/t_total in simulated
// milliseconds; O.O.M marks a framework whose cudaMalloc footprint exceeds
// the (scaled) device memory.
//
// Expected shapes (see EXPERIMENTS.md):
//   - EtaGraph has the best total nearly everywhere; largest margins on the
//     many-iteration web graphs;
//   - CuSha OOMs from RMAT/uk-2005 up, Gunrock from sk-2005, Tigr at
//     uk-2006 (BFS) and sk-2005 (weighted);
//   - EtaGraph w/o UMP is slower everywhere except uk-2006, where skipping
//     the whole-graph prefetch wins by orders of magnitude.
#include "baselines/cusha.hpp"
#include "baselines/gunrock.hpp"
#include "baselines/tigr.hpp"
#include "bench_common.hpp"
#include "core/framework.hpp"
#include "util/logging.hpp"

using namespace eta;
using core::Algo;

namespace {

std::string Cell(const core::RunReport& r) {
  if (r.oom) return "O.O.M";
  return bench::KernelTotalCell(r.kernel_ms, r.total_ms);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> all;
  for (const auto& info : graph::AllDatasets()) all.push_back(info.name);
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, all);
  const bool verify = env.cl.GetBool("verify", true);

  for (Algo algo : {Algo::kBfs, Algo::kSssp, Algo::kSswp}) {
    std::vector<std::string> header = {"Framework"};
    for (const std::string& name : env.datasets) {
      header.push_back(graph::FindDataset(name)->paper_name);
    }
    util::Table table(header);

    std::vector<std::vector<std::string>> rows(5);
    rows[0] = {"CuSha"};
    rows[1] = {"Gunrock"};
    rows[2] = {"Tigr"};
    rows[3] = {"EtaGraph"};
    rows[4] = {"EtaGraph w/o UMP"};

    for (const std::string& name : env.datasets) {
      graph::Csr csr = bench::Load(env, name);
      std::vector<graph::Weight> expected;
      if (verify) expected = core::CpuReference(csr, algo, graph::kQuerySource);
      auto check = [&](const core::RunReport& r, const char* fw) {
        if (!verify || r.oom) return;
        if (r.labels != expected) {
          std::fprintf(stderr, "VERIFICATION FAILED: %s on %s %s\n", fw, name.c_str(),
                       core::AlgoName(algo));
          std::exit(1);
        }
      };

      auto cusha = baselines::Cusha().Run(csr, algo, graph::kQuerySource);
      check(cusha, "cusha");
      rows[0].push_back(Cell(cusha));
      auto gunrock = baselines::Gunrock().Run(csr, algo, graph::kQuerySource);
      check(gunrock, "gunrock");
      rows[1].push_back(Cell(gunrock));
      auto tigr = baselines::Tigr().Run(csr, algo, graph::kQuerySource);
      check(tigr, "tigr");
      rows[2].push_back(Cell(tigr));

      core::EtaGraphOptions options;
      auto eta = core::EtaGraph(options).Run(csr, algo, graph::kQuerySource);
      check(eta, "etagraph");
      rows[3].push_back(Cell(eta));
      options.memory_mode = core::MemoryMode::kUnifiedOnDemand;
      auto eta_np = core::EtaGraph(options).Run(csr, algo, graph::kQuerySource);
      check(eta_np, "etagraph-no-ump");
      rows[4].push_back(Cell(eta_np));
    }
    for (auto& row : rows) table.AddRow(std::move(row));
    std::printf("%s\n", table.Render(std::string("Table III (") + core::AlgoName(algo) +
                                     ") - t_kernel/t_total in simulated ms; labels "
                                     "verified against CPU reference")
                            .c_str());
  }
  return 0;
}
