# Empty dependencies file for eta_sim.
# This may be replaced when dependencies are built.
