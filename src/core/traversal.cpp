#include "core/traversal.hpp"

#include "cpu/reference.hpp"
#include "util/check.hpp"

namespace eta::core {

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kBfs: return "BFS";
    case Algo::kSssp: return "SSSP";
    case Algo::kSswp: return "SSWP";
    case Algo::kCc: return "CC";
    case Algo::kPr: return "PR";
  }
  return "?";
}

std::vector<graph::Weight> CpuReference(const graph::Csr& csr, Algo algo,
                                        graph::VertexId source) {
  switch (algo) {
    case Algo::kBfs: return cpu::BfsLevels(csr, source);
    case Algo::kSssp: return cpu::SsspDistances(csr, source);
    case Algo::kSswp: return cpu::SswpWidths(csr, source);
    // Whole-graph: the source is ignored. CC's ground truth is the
    // min-label fixpoint; PageRank's ranks are real-valued (see
    // cpu::PageRankReference) and have no Weight-label form, so callers
    // handle kPr before dispatching here.
    case Algo::kCc: {
      (void)source;
      return cpu::MinLabelPropagation(csr);
    }
    case Algo::kPr: break;
  }
  ETA_CHECK(false);
  return {};
}

}  // namespace eta::core
