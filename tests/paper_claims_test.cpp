// End-to-end regression tests that pin the *reproduced paper claims*
// themselves, at reduced scale so they run in seconds. If a simulator or
// framework change breaks one of these, the repository no longer
// reproduces the paper — these tests are the contract.
#include <gtest/gtest.h>

#include "baselines/cusha.hpp"
#include "baselines/gunrock.hpp"
#include "baselines/tigr.hpp"
#include "core/framework.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "util/units.hpp"

namespace eta {
namespace {

using core::Algo;

// The comparative claims need benchmark-like scale: on toy graphs the
// per-iteration fixed costs dominate and EtaGraph's margins vanish (the
// paper sees the same effect on Slashdot). Half-scale stand-ins are the
// smallest size where the Table III orderings are stable; built once and
// shared across tests.
const graph::Csr& SocialGraph() {
  static const graph::Csr csr = graph::BuildDataset("livejournal", 0.6);
  return csr;
}

/// A uk-2005-like chained-community web graph (high diameter).
const graph::Csr& WebGraph() {
  static const graph::Csr csr = graph::BuildDataset("uk2005", 0.25);
  return csr;
}

// Claim (Table III): EtaGraph's total time beats Tigr's and Gunrock's on
// social graphs.
TEST(PaperClaims, EtaGraphBeatsBaselinesOnSocialTotals) {
  graph::Csr csr = SocialGraph();
  for (Algo algo : {Algo::kBfs, Algo::kSssp}) {
    auto eta = core::EtaGraph().Run(csr, algo, 0);
    auto tigr = baselines::Tigr().Run(csr, algo, 0);
    auto gunrock = baselines::Gunrock().Run(csr, algo, 0);
    EXPECT_LT(eta.total_ms, tigr.total_ms) << core::AlgoName(algo);
    EXPECT_LT(eta.total_ms, gunrock.total_ms) << core::AlgoName(algo);
  }
}

// Claim (Table III, §VI-C): the many-iteration web graphs magnify the
// frontier advantage — EtaGraph wins by a larger factor there.
TEST(PaperClaims, HighDiameterMagnifiesTheWin) {
  graph::Csr social = SocialGraph();
  graph::Csr web = WebGraph();
  auto ratio = [](const graph::Csr& csr) {
    auto eta = core::EtaGraph().Run(csr, Algo::kSssp, 0);
    auto tigr = baselines::Tigr().Run(csr, Algo::kSssp, 0);
    return tigr.total_ms / eta.total_ms;
  };
  double social_ratio = ratio(social);
  double web_ratio = ratio(web);
  EXPECT_GT(social_ratio, 1.0);
  // The win persists across 200+ iterations. (Its *magnification* beyond
  // the social ratio only materializes at benchmark scale, where EtaGraph's
  // per-iteration fixed costs amortize — see bench_table3_comparison,
  // uk-2005 column: ~2.4x vs ~1.3-1.5x on the social graphs.)
  EXPECT_GT(web_ratio, 1.1);
}

// Claim (Table III): kernel-time order on low-diameter graphs — Tigr's
// kernels are the baselines' fastest; CuSha's edge-centric full sweeps are
// the slowest; Gunrock sits between.
TEST(PaperClaims, BaselineKernelOrderingOnSocial) {
  graph::Csr csr = SocialGraph();
  auto tigr = baselines::Tigr().Run(csr, Algo::kBfs, 0);
  auto gunrock = baselines::Gunrock().Run(csr, Algo::kBfs, 0);
  auto cusha = baselines::Cusha().Run(csr, Algo::kBfs, 0);
  EXPECT_LT(tigr.kernel_ms, gunrock.kernel_ms);
  EXPECT_LT(gunrock.kernel_ms, cusha.kernel_ms);
}

// Claim (Table III): Gunrock's weighted traversal costs a multiple of its
// BFS (near/far partitioning + re-relaxation).
TEST(PaperClaims, GunrockSsspMuchSlowerThanBfs) {
  graph::Csr csr = SocialGraph();
  auto bfs = baselines::Gunrock().Run(csr, Algo::kBfs, 0);
  auto sssp = baselines::Gunrock().Run(csr, Algo::kSssp, 0);
  EXPECT_GT(sssp.kernel_ms, 1.5 * bfs.kernel_ms);
}

// Claim (Table III / §VI-C "Memory Usage Analysis"): with a device that
// holds the CSR but not the baselines' inflated structures, the baselines
// OOM in the order CuSha -> Gunrock -> Tigr while EtaGraph still runs.
TEST(PaperClaims, OomOrderUnderShrinkingDevice) {
  graph::Csr csr = SocialGraph();
  uint64_t csr_bytes = csr.TopologyBytes();
  auto runs_with = [&](uint64_t device_bytes, auto&& runner) {
    sim::DeviceSpec spec;
    spec.device_memory_bytes = device_bytes;
    return !runner(spec).oom;
  };
  auto cusha = [&](sim::DeviceSpec spec) {
    baselines::CushaOptions o;
    o.spec = spec;
    return baselines::Cusha(o).Run(csr, Algo::kBfs, 0);
  };
  auto gunrock = [&](sim::DeviceSpec spec) {
    baselines::GunrockOptions o;
    o.spec = spec;
    return baselines::Gunrock(o).Run(csr, Algo::kBfs, 0);
  };
  auto tigr = [&](sim::DeviceSpec spec) {
    baselines::TigrOptions o;
    o.spec = spec;
    return baselines::Tigr(o).Run(csr, Algo::kBfs, 0);
  };
  auto eta = [&](sim::DeviceSpec spec) {
    core::EtaGraphOptions o;
    o.spec = spec;
    return core::EtaGraph(o).Run(csr, Algo::kBfs, 0);
  };
  // At ~8x the CSR: everything runs.
  EXPECT_TRUE(runs_with(8 * csr_bytes, cusha));
  // At ~4x the CSR: CuSha (6+ words/edge) dies first.
  EXPECT_FALSE(runs_with(4 * csr_bytes, cusha));
  EXPECT_TRUE(runs_with(4 * csr_bytes, gunrock));
  // Around ~2.5x: Gunrock's double edge frontier no longer fits, while
  // Tigr (VST + staging copy, ~2.3x) just squeezes in.
  EXPECT_FALSE(runs_with(5 * csr_bytes / 2, gunrock));
  EXPECT_TRUE(runs_with(5 * csr_bytes / 2, tigr));
  // Tigr needs the transformed copy; EtaGraph's UM survives at the CSR
  // size itself (the topology oversubscribes, the rest is small).
  EXPECT_FALSE(runs_with(3 * csr_bytes / 2, tigr));
  EXPECT_TRUE(runs_with(csr_bytes, eta));
}

// Claim (Table III, uk-2006 row): when the query reaches a tiny component
// of an oversubscribed graph, skipping the whole-graph prefetch wins by
// orders of magnitude.
TEST(PaperClaims, OnDemandWinsOnTinyReach) {
  auto edges = graph::GenerateWebGraph(
      {.num_vertices = 60'000, .num_edges = 1'500'000, .num_communities = 10,
       .lcc_fraction = 0.7, .community_depth = 3, .seed = 21});
  edges = graph::PlantTinySourceComponent(std::move(edges), 60, 4, 22);
  graph::Csr csr = graph::BuildCsr(std::move(edges));
  csr.DeriveWeights(1);

  sim::DeviceSpec spec;
  spec.device_memory_bytes = csr.TopologyBytes() * 3 / 4;  // oversubscribed
  core::EtaGraphOptions prefetch;
  prefetch.spec = spec;
  core::EtaGraphOptions on_demand;
  on_demand.spec = spec;
  on_demand.memory_mode = core::MemoryMode::kUnifiedOnDemand;

  auto with_ump = core::EtaGraph(prefetch).Run(csr, Algo::kBfs, 0);
  auto without = core::EtaGraph(on_demand).Run(csr, Algo::kBfs, 0);
  ASSERT_FALSE(with_ump.oom);
  ASSERT_FALSE(without.oom);
  EXPECT_EQ(with_ump.labels, without.labels);
  EXPECT_GT(with_ump.total_ms, 4 * without.total_ms);
  // And the on-demand run moved only a sliver of the topology.
  EXPECT_LT(without.migrated_bytes, csr.TopologyBytes() / 20);
}

// Claim (Fig 6 / §V): SMP shortens the traversal kernels.
TEST(PaperClaims, SmpShortensKernels) {
  graph::Csr csr = SocialGraph();
  core::EtaGraphOptions with, without;
  without.use_smp = false;
  auto a = core::EtaGraph(with).Run(csr, Algo::kSssp, 0);
  auto b = core::EtaGraph(without).Run(csr, Algo::kSssp, 0);
  EXPECT_LT(a.kernel_ms, b.kernel_ms);
  // And cuts LSU global-load transactions (Fig 7's 0.48x).
  EXPECT_LT(a.counters.l1_accesses, 0.8 * b.counters.l1_accesses);
}

// Claim (Fig 4): without prefetch, transfers overlap computation for most
// of the run.
TEST(PaperClaims, FaultTransfersOverlapCompute) {
  graph::Csr csr = SocialGraph();
  core::EtaGraphOptions options;
  options.memory_mode = core::MemoryMode::kUnifiedOnDemand;
  auto r = core::EtaGraph(options).Run(csr, Algo::kSssp, 0);
  double transfer = r.timeline.TotalMs(sim::SpanKind::kTransferH2D);
  ASSERT_GT(transfer, 0.0);
  EXPECT_GT(r.timeline.OverlapMs() / transfer, 0.5);
}

// Claim (§VI-C): EtaGraph's advantage persists under an NVLink-class link.
TEST(PaperClaims, AdvantageSurvivesFastInterconnect) {
  graph::Csr csr = SocialGraph();
  sim::DeviceSpec nvlink;
  nvlink.pcie_gb_per_s = 80.0;
  core::EtaGraphOptions eopt;
  eopt.spec = nvlink;
  baselines::TigrOptions topt;
  topt.spec = nvlink;
  auto eta = core::EtaGraph(eopt).Run(csr, Algo::kSssp, 0);
  auto tigr = baselines::Tigr(topt).Run(csr, Algo::kSssp, 0);
  EXPECT_LT(eta.total_ms, tigr.total_ms);
}

}  // namespace
}  // namespace eta
