#include "serve/types.hpp"

namespace eta::serve {

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kTimedOut: return "timed-out";
    case QueryStatus::kDegraded: return "degraded";
    case QueryStatus::kShedded: return "shedded";
  }
  return "?";
}

std::optional<QueryStatus> ParseQueryStatus(std::string_view name) {
  if (name == "ok") return QueryStatus::kOk;
  if (name == "rejected") return QueryStatus::kRejected;
  if (name == "timed-out") return QueryStatus::kTimedOut;
  if (name == "degraded") return QueryStatus::kDegraded;
  if (name == "shedded") return QueryStatus::kShedded;
  return std::nullopt;
}

const char* SloClassName(SloClass slo) {
  switch (slo) {
    case SloClass::kNone: return "none";
    case SloClass::kBronze: return "bronze";
    case SloClass::kSilver: return "silver";
    case SloClass::kGold: return "gold";
  }
  return "?";
}

std::optional<SloClass> ParseSloClass(std::string_view name) {
  if (name == "none") return SloClass::kNone;
  if (name == "bronze") return SloClass::kBronze;
  if (name == "silver") return SloClass::kSilver;
  if (name == "gold") return SloClass::kGold;
  return std::nullopt;
}

int32_t SloPriority(SloClass slo) {
  switch (slo) {
    case SloClass::kNone: return 0;
    case SloClass::kBronze: return 0;
    case SloClass::kSilver: return 1;
    case SloClass::kGold: return 2;
  }
  return 0;
}

double SloTargetMs(const OverloadOptions& options, SloClass slo) {
  switch (slo) {
    case SloClass::kNone: return kNoDeadline;
    case SloClass::kBronze: return options.bronze_slo_ms;
    case SloClass::kSilver: return options.silver_slo_ms;
    case SloClass::kGold: return options.gold_slo_ms;
  }
  return kNoDeadline;
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kNaivePerQuery: return "naive";
    case ServeMode::kSession: return "session";
    case ServeMode::kSessionBatched: return "session+batch";
  }
  return "?";
}

}  // namespace eta::serve
