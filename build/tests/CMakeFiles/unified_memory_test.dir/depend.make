# Empty dependencies file for unified_memory_test.
# This may be replaced when dependencies are built.
