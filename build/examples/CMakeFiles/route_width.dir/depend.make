# Empty dependencies file for route_width.
# This may be replaced when dependencies are built.
