// Table V reproduction: sizes of unified-memory page migrations with and
// without cudaMemPrefetchAsync on the four datasets the paper profiles.
// Expected shape: without prefetch, sizes run from the 4 KB system page to
// ~1-2 MB with an average of a few tens of KB (fault-merge escalation);
// with prefetch nearly all migrations are full 2 MB chunks.
#include "bench_common.hpp"
#include "core/framework.hpp"
#include "util/histogram.hpp"
#include "util/units.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, {"livejournal", "orkut", "rmat", "uk2005"});

  util::Table table({"Run", "Migrations", "Avg. Size (KB)", "Min Size (KB)",
                     "Max Size (KB)"});
  for (bool prefetch : {false, true}) {
    for (const std::string& name : env.datasets) {
      graph::Csr csr = bench::Load(env, name);
      core::EtaGraphOptions options;
      options.memory_mode = prefetch ? core::MemoryMode::kUnifiedPrefetch
                                     : core::MemoryMode::kUnifiedOnDemand;
      // The paper's Table V uses the SSSP runs; weighted traversal also
      // migrates the weight array.
      auto report = core::EtaGraph(options).Run(csr, core::Algo::kSssp,
                                                graph::kQuerySource);
      util::Histogram sizes;
      for (uint64_t s : report.migration_sizes) sizes.Add(s);
      std::string label = graph::FindDataset(name)->paper_name +
                          (prefetch ? "" : " w/o UMP");
      table.AddRow({label, std::to_string(sizes.Count()),
                    util::FormatDouble(sizes.Mean() / 1024.0, 1),
                    util::FormatDouble(static_cast<double>(sizes.Min()) / 1024.0, 0),
                    util::FormatDouble(static_cast<double>(sizes.Max()) / 1024.0, 0)});
    }
    table.AddRule();
  }
  std::printf("%s\n", table.Render("Table V - size of migrated pages (paper: w/o UMP "
                                   "avg ~44 KB min 4 KB; with UMP mostly 2048 KB)")
                          .c_str());
  return 0;
}
