#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>

#include "core/framework.hpp"
#include "cpu/reference.hpp"
#include "prof/trace_export.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/observe.hpp"
#include "serve/overload.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "trace/sink.hpp"
#include "util/check.hpp"

namespace eta::serve {
namespace {

uint64_t ToMicros(double ms) {
  return static_cast<uint64_t>(std::llround(std::max(0.0, ms) * 1000.0));
}

std::vector<double> QueueDepthBuckets() { return {0, 1, 2, 4, 8, 16, 32, 64}; }
std::vector<double> CycleBuckets() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
}

/// Running per-algo aggregates behind the cost-model observations: the
/// estimator is the running mean of per-query device service time, so each
/// dispatch is predicted from history only (never from itself).
struct CostAgg {
  uint64_t queries = 0;
  double service_sum = 0;
  double abs_err_sum = 0;
  double cycles_sum = 0;

  double EstimateMs() const {
    return queries > 0 ? service_sum / static_cast<double>(queries) : 0;
  }
};

}  // namespace

ServeReport ServeEngine::Serve(const graph::Csr& csr,
                               const std::vector<Request>& trace) const {
  for (size_t i = 1; i < trace.size(); ++i) {
    ETA_CHECK(trace[i - 1].arrival_ms <= trace[i].arrival_ms);
  }

  ServeReport report;
  report.mode = options_.mode;
  report.total_requests = trace.size();
  report.results.reserve(trace.size());

  // etatrace (DESIGN.md section 14): the flight recorder runs always (a
  // bounded host-side ring); the per-request tracer only when
  // trace_requests armed it. Both feed off the same emission points.
  trace::RequestTracer tracer(options_.graph.trace_requests);
  trace::FlightRecorder recorder;
  trace::EventSink sink{&tracer, &recorder};
  auto make_event = [](uint64_t id, trace::EventKind kind, double at) {
    trace::TraceEvent e;
    e.request_id = id;
    e.kind = kind;
    e.at_ms = at;
    return e;
  };
  // Terminal edge shared by every outcome path.
  auto emit_complete = [&](const QueryResult& q) {
    trace::TraceEvent e = make_event(q.id, trace::EventKind::kComplete, q.finish_ms);
    e.status = static_cast<uint8_t>(q.status);
    e.a = q.LatencyMs();
    e.b = static_cast<double>(q.reached_vertices);
    e.c = static_cast<double>(q.batch_size);
    sink.Emit(e);
  };

  const bool use_session = options_.mode != ServeMode::kNaivePerQuery;
  std::unique_ptr<GraphSession> session;
  double now = 0;
  uint32_t rebuilds_left = options_.max_session_rebuilds;

  // Optional retry budget (DESIGN.md §13): one token bucket shared into the
  // session's recovery options, refilled from the serve clock, capping
  // fault retries and session rebuilds per simulated second.
  core::EtaGraphOptions graph_options = options_.graph;
  std::shared_ptr<core::RetryBudget> budget;
  if (options_.overload.retry_tokens_per_s > 0) {
    budget = std::make_shared<core::RetryBudget>(core::RetryBudget::Config{
        options_.overload.retry_tokens_per_s, options_.overload.retry_burst});
    graph_options.recovery.budget = budget;
  }

  const bool profiling = options_.graph.profile;
  MetricsRegistry& metrics = report.metrics;
  auto count_query = [&](core::Algo algo, QueryStatus status) {
    metrics
        .GetCounter("serve_queries_total", "Requests by algorithm and terminal status.",
                    {{"algo", core::AlgoName(algo)}, {"status", QueryStatusName(status)}})
        .Inc();
  };
  auto observe_ms = [&](const char* name, const char* help, core::Algo algo, double ms) {
    metrics.GetHistogram(name, help, LatencyBucketsMs(), {{"algo", core::AlgoName(algo)}})
        .Observe(ms);
  };
  /// Per-algo running cost aggregates (deterministic enum-keyed order).
  std::map<core::Algo, CostAgg> cost;
  /// Device-span / launch-record bookmarks into the current session's
  /// timeline and profiler; reset on every (re)build.
  size_t spans_done = 0;
  size_t launches_done = 0;
  /// Maps the device-clock slice executed since the last capture onto the
  /// serve clock: `serve_start` is when the slice began on the serve clock,
  /// `device_from` the device clock at that same instant.
  auto capture_device_slice = [&](double serve_start, double device_from) {
    if (!profiling || session == nullptr) return;
    const double offset = serve_start - device_from;
    const auto& spans = session->DeviceTimeline().Spans();
    prof::AppendTimelineSpans(
        std::span<const sim::Span>(spans).subspan(spans_done), "device", offset,
        &report.trace_spans);
    spans_done = spans.size();
    if (const sim::LaunchProfiler* prof = session->Profiler()) {
      prof::AppendKernelSpans(
          std::span<const sim::KernelProfile>(prof->Launches()).subspan(launches_done),
          "device", offset, &report.trace_spans);
      launches_done = prof->Launches().size();
    }
  };

  /// Simulated cost of answering one query on the host CPU instead of the
  /// device — a flat (n + m) / throughput bill, deterministic by design.
  const double cpu_query_ms =
      static_cast<double>(csr.NumVertices() + csr.NumEdges()) /
      std::max(1.0, options_.cpu_fallback_units_per_ms);

  /// Tears the current session down (running the leakcheck sweep) and folds
  /// its etacheck report into the fleet report before dropping it.
  auto retire_session = [&]() {
    if (session == nullptr) return;
    session->Shutdown();
    if (const sanitizer::SanitizerReport* c = session->CheckReport()) {
      report.check.Merge(*c);
    }
    session.reset();
  };

  /// Stages a fresh session, charging its load time to the serve clock.
  /// Returns false (and retires the carcass) when staging itself failed.
  auto build_session = [&]() {
    const double t0 = now;
    spans_done = 0;
    launches_done = 0;
    session = std::make_unique<GraphSession>(csr, graph_options);
    now += session->LoadMs();
    if (profiling) {
      capture_device_slice(t0, 0.0);  // a fresh device clock starts at 0
      report.trace_spans.push_back({"serve/session", "session-load", t0, now, {}});
    }
    if (!session->Loaded()) {
      retire_session();
      return false;
    }
    return true;
  };

  if (use_session) {
    if (build_session()) {
      report.load_ms = session->LoadMs();
    } else {
      // The very first staging failed (an injected allocation fault).
      // Rebuilding is the only play; if the budget runs dry the whole
      // replay is served degraded on the CPU.
      while (session == nullptr && rebuilds_left > 0 &&
             (budget == nullptr || budget->TryAcquireRebuild())) {
        --rebuilds_left;
        ++report.session_rebuilds;
        if (build_session()) report.load_ms = session->LoadMs();
      }
    }
  }

  QueryScheduler sched(options_.queue_capacity, options_.edf);
  size_t next = 0;  // first trace entry that has not yet arrived
  bool unhealthy_dumped = false;  // one unhealthy-exit dump per replay

  auto reject = [&](const Request& r) {
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kRejected;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    q.slo = r.slo;
    report.results.push_back(q);
    ++report.rejected;
    count_query(r.algo, QueryStatus::kRejected);
    trace::TraceEvent e = make_event(r.id, trace::EventKind::kReject, r.arrival_ms);
    e.a = static_cast<double>(sched.Depth());
    e.b = static_cast<double>(options_.queue_capacity);
    sink.Emit(e);
    emit_complete(q);
  };
  auto time_out = [&](const Request& r, double when_ms) {
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kTimedOut;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    q.start_ms = when_ms;
    q.finish_ms = when_ms;
    q.slo = r.slo;
    report.results.push_back(q);
    ++report.timed_out;
    count_query(r.algo, QueryStatus::kTimedOut);
    observe_ms("serve_queue_wait_ms",
               "Time from arrival to dispatch (or expiry) per request.", r.algo,
               q.QueueMs());
    trace::TraceEvent e = make_event(r.id, trace::EventKind::kTimeout, when_ms);
    e.a = r.StartDeadline();
    sink.Emit(e);
    emit_complete(q);
  };
  auto admit_until = [&](double t) {
    while (next < trace.size() && trace[next].arrival_ms <= t) {
      // The EDF key (when armed) freezes at admission off the running-mean
      // service estimate for the request's algorithm.
      if (!sched.Admit(trace[next], cost[trace[next].algo].EstimateMs())) {
        reject(trace[next]);
      } else {
        trace::TraceEvent e = make_event(trace[next].id, trace::EventKind::kAdmit,
                                         trace[next].arrival_ms);
        e.a = static_cast<double>(sched.Depth());
        sink.Emit(e);
      }
      ++next;
    }
  };
  auto expire_at = [&](double t) {
    for (const Request& r : sched.ExpireDeadlines(t)) time_out(r, t);
  };
  /// Serves `r` on the host CPU reference — the degraded terminal state.
  /// The answer is exact (same labels the device would converge to); only
  /// the latency is worse.
  auto serve_cpu = [&](const Request& r, double start) {
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kDegraded;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    q.reached_vertices = CpuAnswer(csr, r.algo, r.source);
    q.batch_size = 0;
    q.start_ms = start;
    q.finish_ms = start + cpu_query_ms;
    q.slo = r.slo;
    ++report.degraded;
    if (profiling) {
      prof::TraceSpan span{"serve/cpu-fallback", std::string(core::AlgoName(r.algo)),
                           q.start_ms, q.finish_ms, {}};
      span.args.push_back({"request", std::to_string(r.id), /*number=*/true});
      report.trace_spans.push_back(std::move(span));
    }
    trace::TraceEvent e = make_event(r.id, trace::EventKind::kCpuFallback, start);
    e.a = cpu_query_ms;
    sink.Emit(e);
    return q;
  };
  // One kDispatch per request leaving the queue for the device; repeated
  // dispatches after a session rebuild are separate attempts.
  auto emit_dispatch = [&](const std::vector<Request>& reqs, double at, double estimate) {
    for (const Request& r : reqs) {
      trace::TraceEvent e = make_event(r.id, trace::EventKind::kDispatch, at);
      e.a = static_cast<double>(reqs.size());
      e.b = at - r.arrival_ms;
      e.c = estimate;
      sink.Emit(e);
    }
  };
  const BatchTraceContext batch_trace{&sink, -1, tracer.enabled()};

  while (true) {
    if (budget != nullptr) budget->Advance(now);
    admit_until(now);
    expire_at(now);
    if (sched.Empty()) {
      if (next >= trace.size()) break;
      now = std::max(now, trace[next].arrival_ms);  // idle until the next arrival
      continue;
    }

    std::optional<Request> head = sched.PopNext();
    ETA_CHECK(head.has_value());
    const double window_start = now;
    Batch batch;
    batch.algo = head->algo;
    batch.graph_id = head->graph_id;
    batch.requests.push_back(*head);

    if (options_.mode == ServeMode::kSessionBatched && session != nullptr &&
        Batchable(head->algo)) {
      const uint32_t limit = std::min<uint32_t>(
          std::max<uint32_t>(options_.max_batch, 1),
          core::ResidentGraph::kMaxAttributedSources);
      const double window_end =
          std::min(now + options_.batch_window_ms, head->StartDeadline());
      auto fill = [&]() {
        if (batch.requests.size() >= limit) return;
        std::vector<Request> more = sched.PopCompatible(
            batch.algo, batch.graph_id,
            limit - static_cast<uint32_t>(batch.requests.size()));
        batch.requests.insert(batch.requests.end(), more.begin(), more.end());
      };
      fill();
      // Hold the window open for compatible future arrivals; the serve clock
      // advances to each arrival (never past window_end, which is capped at
      // the head's start deadline, so the head can never time out here).
      while (batch.requests.size() < limit && next < trace.size() &&
             trace[next].arrival_ms <= window_end) {
        now = std::max(now, trace[next].arrival_ms);
        admit_until(now);
        expire_at(now);
        fill();
      }
      // Requests folded in earlier may have expired while the window stayed
      // open; dispatch only the still-live ones.
      std::vector<Request> live;
      live.reserve(batch.requests.size());
      for (const Request& r : batch.requests) {
        if (r.ExpiredAt(now)) {
          time_out(r, now);
        } else {
          live.push_back(r);
        }
      }
      batch.requests = std::move(live);
      if (batch.requests.empty()) continue;
    }

    report.batch_occupancy.Add(batch.requests.size());
    report.queue_depth.Add(sched.Depth());
    ++report.batches;
    metrics
        .GetHistogram("serve_batch_size", "Requests folded into one dispatch.",
                      BatchSizeBuckets())
        .Observe(static_cast<double>(batch.requests.size()));
    metrics
        .GetHistogram("serve_queue_depth", "Queue depth sampled at each dispatch.",
                      QueueDepthBuckets())
        .Observe(static_cast<double>(sched.Depth()));
    if (profiling && now > window_start) {
      prof::TraceSpan span{"serve/batcher", "batch-window", window_start, now, {}};
      span.args.push_back(
          {"folded", std::to_string(batch.requests.size()), /*number=*/true});
      report.trace_spans.push_back(std::move(span));
    }
    /// Prediction happens before execution: the estimator has seen only
    /// earlier dispatches of this algorithm.
    const double estimate_ms = cost[batch.algo].EstimateMs();
    double dispatch_cycles = 0;

    std::vector<QueryResult> outcomes;
    // Requests the device has not answered yet; drains to empty via the
    // device path, session rebuilds, or the CPU fallback.
    std::vector<Request> pending = std::move(batch.requests);

    if (use_session) {
      if (session != nullptr) {
        const double dispatch_start = now;
        const double device_before = session->NowMs();
        emit_dispatch(pending, now, estimate_ms);
        BatchOutcome out = ExecuteBatch(*session, Batch{batch.algo, batch.graph_id, pending},
                                        now, nullptr, &batch_trace);
        report.faults.Merge(out.faults);
        now += out.duration_ms;
        dispatch_cycles += out.cycles;
        capture_device_slice(dispatch_start, device_before);
        outcomes = std::move(out.results);
        pending = std::move(out.unserved);
        // Flight-recorder trigger: the device fell off the bus mid-batch.
        if (out.faults.device_lost && !pending.empty()) {
          report.blackbox.push_back({"device-lost", now, pending.front().id,
                                     recorder.Dump("device-lost", now, pending.front().id)});
        }
      }
      // Quarantine-and-rebuild: an unhealthy session (device lost, or never
      // staged) is torn down and re-staged, then the leftover requests are
      // retried on the fresh device. A session that is healthy but
      // exhausted its retry budget falls through to the CPU — re-running
      // the same doomed query forever is not a recovery strategy.
      while (!pending.empty() && rebuilds_left > 0 &&
             (session == nullptr || !session->Healthy())) {
        // A rebuild re-stages the whole graph — the most expensive recovery
        // step there is; the fleet-wide budget gates it first. Denial falls
        // through to the CPU fallback without burning a rebuild.
        if (budget != nullptr && !budget->TryAcquireRebuild()) {
          trace::TraceEvent e =
              make_event(pending.front().id, trace::EventKind::kRebuild, now);
          e.a = static_cast<double>(rebuilds_left);
          e.c = 1;  // rebuild budget denied — recovery abandoned
          sink.Emit(e);
          break;
        }
        --rebuilds_left;
        ++report.session_rebuilds;
        retire_session();
        {
          trace::TraceEvent e =
              make_event(pending.front().id, trace::EventKind::kRebuild, now);
          e.a = static_cast<double>(rebuilds_left);
          sink.Emit(e);
        }
        if (!build_session()) continue;
        const double dispatch_start = now;
        const double device_before = session->NowMs();
        emit_dispatch(pending, now, estimate_ms);
        BatchOutcome out = ExecuteBatch(*session, Batch{batch.algo, batch.graph_id, pending},
                                        now, nullptr, &batch_trace);
        report.faults.Merge(out.faults);
        now += out.duration_ms;
        dispatch_cycles += out.cycles;
        capture_device_slice(dispatch_start, device_before);
        for (QueryResult& q : out.results) outcomes.push_back(std::move(q));
        pending = std::move(out.unserved);
      }
      // Flight-recorder trigger: the device path is gone for good — the
      // rebuild budget is spent (or denied) and requests are falling
      // through to the CPU from here on. Dump once.
      if (!pending.empty() && (session == nullptr || !session->Healthy()) &&
          !unhealthy_dumped) {
        unhealthy_dumped = true;
        report.blackbox.push_back({"unhealthy-exit", now, pending.front().id,
                                   recorder.Dump("unhealthy-exit", now, pending.front().id)});
      }
    } else {
      // Naive strawman: a fresh device per query — allocate, stage the full
      // topology, run, tear down. total_ms is that query's whole bill.
      for (const Request& r : pending) {
        emit_dispatch({r}, now, estimate_ms);
        core::EtaGraph engine(graph_options);
        core::RunReport run;
        if (r.algo == core::Algo::kCc) {
          run = engine.RunConnectedComponents(csr);
          if (!run.DeviceFailed()) run.activated = CountComponents(run.labels);
        } else if (r.algo == core::Algo::kPr) {
          run = RunPageRankAsQuery(csr);
        } else {
          run = engine.Run(csr, r.algo, r.source);
        }
        report.faults.Merge(run.faults);
        report.check.Merge(run.check);
        if (run.DeviceFailed()) {
          outcomes.push_back(serve_cpu(r, now));
          now += cpu_query_ms;
          continue;
        }
        QueryResult q;
        q.id = r.id;
        q.status = QueryStatus::kOk;
        q.algo = r.algo;
        q.source = r.source;
        q.arrival_ms = r.arrival_ms;
        q.slo = r.slo;
        q.reached_vertices = run.activated;
        q.batch_size = 1;
        q.start_ms = now;
        dispatch_cycles += run.query_counters.elapsed_cycles;
        if (profiling) {
          // A naive query's fresh device clock starts at 0 when the serve
          // clock reads `now`.
          prof::AppendTimelineSpans(run.timeline, "device", now, &report.trace_spans);
          prof::AppendKernelSpans(run.kernel_profiles, "device", now,
                                  &report.trace_spans);
        }
        now += run.total_ms;
        q.finish_ms = now;
        outcomes.push_back(q);
      }
      pending.clear();
    }

    // Whatever the device path could not answer is served degraded.
    for (const Request& r : pending) {
      outcomes.push_back(serve_cpu(r, now));
      now += cpu_query_ms;
    }

    uint64_t served_on_device = 0;
    for (const QueryResult& q : outcomes) {
      if (q.status == QueryStatus::kOk) ++served_on_device;
    }
    const double cycles_per_query =
        served_on_device > 0 ? dispatch_cycles / static_cast<double>(served_on_device)
                             : 0;

    for (const QueryResult& q : outcomes) {
      ++report.completed;
      report.reached_total += q.reached_vertices;
      report.latency_us.Add(ToMicros(q.LatencyMs()));
      report.queue_wait_us.Add(ToMicros(q.QueueMs()));
      count_query(q.algo, q.status);
      observe_ms("serve_queue_wait_ms",
                 "Time from arrival to dispatch (or expiry) per request.", q.algo,
                 q.QueueMs());
      observe_ms("serve_service_ms", "Time from dispatch to completion per request.",
                 q.algo, q.finish_ms - q.start_ms);
      observe_ms("serve_latency_ms", "End-to-end time from arrival to completion.",
                 q.algo, q.LatencyMs());
      if (q.status == QueryStatus::kOk && q.batch_size > 0) {
        // Cost-model observation: the running-mean estimate made before
        // this dispatch versus the service time and device cycles the
        // query actually cost.
        const double actual_ms = q.finish_ms - q.start_ms;
        CostAgg& agg = cost[q.algo];
        ++agg.queries;
        agg.service_sum += actual_ms;
        agg.abs_err_sum += std::abs(actual_ms - estimate_ms);
        agg.cycles_sum += cycles_per_query;
        metrics
            .GetHistogram("serve_cost_error_ms",
                          "Absolute error of the running-mean service-time estimator.",
                          LatencyBucketsMs(), {{"algo", core::AlgoName(q.algo)}})
            .Observe(std::abs(actual_ms - estimate_ms));
        metrics
            .GetHistogram("serve_query_cycles",
                          "Device cycles attributed per device-served query.",
                          CycleBuckets(), {{"algo", core::AlgoName(q.algo)}})
            .Observe(cycles_per_query);
      }
      if (profiling && q.QueueMs() > 0) {
        prof::TraceSpan span{"serve/queue", std::string(core::AlgoName(q.algo)),
                             q.arrival_ms, q.start_ms, {}};
        span.args.push_back({"request", std::to_string(q.id), /*number=*/true});
        report.trace_spans.push_back(std::move(span));
      }
      emit_complete(q);
      report.results.push_back(q);
    }
  }

  report.makespan_ms = now;
  retire_session();

  for (const auto& [algo, agg] : cost) {
    if (agg.queries == 0) continue;
    CostObservation obs;
    obs.algo = core::AlgoName(algo);
    obs.queries = agg.queries;
    obs.mean_service_ms = agg.service_sum / static_cast<double>(agg.queries);
    obs.mean_abs_error_ms = agg.abs_err_sum / static_cast<double>(agg.queries);
    obs.mean_cycles = agg.cycles_sum / static_cast<double>(agg.queries);
    report.cost_observations.push_back(std::move(obs));
  }
  metrics
      .GetCounter("serve_session_rebuilds_total",
                  "Unhealthy sessions torn down and re-staged.")
      .Inc(static_cast<double>(report.session_rebuilds));
  metrics
      .GetCounter("serve_fault_backoff_ms_total",
                  "Simulated time burned in fault-recovery backoff.")
      .Inc(report.faults.backoff_ms);
  metrics
      .GetGauge("serve_degradation_ratio",
                "Fraction of completed requests served by the CPU fallback.")
      .Set(report.completed > 0
               ? static_cast<double>(report.degraded) / static_cast<double>(report.completed)
               : 0);
  metrics.GetGauge("serve_makespan_ms", "Simulated time from t=0 to last completion.")
      .Set(report.makespan_ms);
  metrics.GetGauge("serve_load_ms", "Graph staging time of the first session.")
      .Set(report.load_ms);
  std::sort(report.results.begin(), report.results.end(),
            [](const QueryResult& a, const QueryResult& b) { return a.id < b.id; });
  report.edf = options_.edf;
  FinalizeOverloadReport(options_.overload, budget.get(), &report);
  EvaluateSloAlerts(options_.overload, options_.slo_alerts, &report);
  FinalizeTraceReport(options_, tracer, recorder, now, &report);
  ETA_CHECK(report.results.size() == trace.size());
  return report;
}

}  // namespace eta::serve
