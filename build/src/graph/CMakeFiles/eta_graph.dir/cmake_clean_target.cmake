file(REMOVE_RECURSE
  "libeta_graph.a"
)
