// Minimal JSON support shared by every emitter in the repo.
//
// Emission side: JsonEscape, the one escaper behind the trace exporter, the
// CLI's --check-json, and the serve report JSON — kernel labels, buffer
// names, and dataset paths all pass through here, so a quote or backslash in
// a label can never break an output document.
//
// Parse side: JsonParse, a strict recursive-descent parser used to
// round-trip-validate our own emitters in tests and tools (scripts/check.sh
// additionally validates with python3 when available). It is a validator
// first: no external documents, no extensions (comments, trailing commas,
// NaN) are accepted.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eta::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \ and control characters become their escape sequences;
/// everything else (including UTF-8 multibyte sequences) passes through.
std::string JsonEscape(std::string_view s);

/// A parsed JSON document. Object members keep insertion order, so a
/// re-serialized document compares field-for-field with the original.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }

  /// First member with the given key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses strict JSON. On failure returns nullopt and, when `error` is
/// non-null, fills it with a message that includes the byte offset.
std::optional<JsonValue> JsonParse(std::string_view text, std::string* error = nullptr);

}  // namespace eta::util
