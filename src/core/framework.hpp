// EtaGraph — the paper's framework (Procedure 1), on the simulated GPU.
//
// One Run() executes the full pipeline on a fresh device:
//   load CSR into Unified Memory -> init labels on device -> optional
//   cudaMemPrefetchAsync -> iterate { actSet2virtActSet (UDC, on the fly);
//   traversal kernel over shadow vertices with SMP } until the active set
//   empties -> copy labels back.
// Every stage is charged on the simulated clock, so RunReport::total_ms is
// the transfer+execution total Table III reports and kernel_ms is the
// kernel-only column.
//
// ResidentGraph factors the same pipeline into a *persistent device
// session*: the CSR is staged once, then any number of queries execute
// against it on one continuous simulated clock, each charged only its
// incremental label-init transfers, kernels, and result readback. EtaGraph's
// one-shot entry points are now thin wrappers over a single-query session,
// so their reports are unchanged. The serving layer (src/serve) builds its
// GraphSession on top of ResidentGraph.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/run_report.hpp"
#include "core/traversal.hpp"
#include "graph/csr.hpp"

namespace eta::core {

/// A graph held resident on a persistent simulated device.
///
/// The constructor allocates the device, stages the topology (charging the
/// transfers that a one-shot Run() would), and leaves the device warm. Each
/// query entry point then reuses the resident topology: only label
/// initialization, frontier seeding, kernels, and label readback are
/// charged. Unified-memory residency, cache state, and (in chunked mode)
/// the streamed-chunk window persist across queries, so later queries are
/// cheaper than the first — exactly the amortization a serving deployment
/// gets from keeping the graph loaded.
///
/// The CSR is held by reference and must outlive the session. Reports carry
/// total_ms = absolute session clock at completion and query_ms = this
/// query's incremental cost (see run_report.hpp).
class ResidentGraph {
 public:
  /// Maximum sources an attributed multi-source run supports (one bit per
  /// source in the per-vertex reach mask).
  static constexpr uint32_t kMaxAttributedSources = 32;

  /// Stages `csr` onto a fresh device. `stage_weights` controls whether the
  /// weight array is shipped (defaults to whether the CSR has weights);
  /// weighted queries require it. On allocation failure the session is
  /// marked OOM and every query returns an oom report.
  ResidentGraph(const graph::Csr& csr, EtaGraphOptions options,
                bool stage_weights);
  ResidentGraph(const graph::Csr& csr, EtaGraphOptions options = {});
  ~ResidentGraph();

  ResidentGraph(const ResidentGraph&) = delete;
  ResidentGraph& operator=(const ResidentGraph&) = delete;

  /// Upper-bound estimate of the kDevice-resident bytes a session staging
  /// `csr` under `options` would hold, mirroring the constructor's
  /// allocation sequence (page-rounded per allocation, and including the
  /// lazily-allocated per-vertex reach mask an attributed batch adds).
  /// The serving fleet's eviction policy uses this to decide what must be
  /// evicted *before* paying for a build; after the build, the exact
  /// footprint is DeviceBytesPeak().
  static uint64_t EstimateDeviceBytes(const graph::Csr& csr,
                                      const EtaGraphOptions& options,
                                      bool stage_weights);
  static uint64_t EstimateDeviceBytes(const graph::Csr& csr,
                                      const EtaGraphOptions& options = {});

  bool Oom() const { return oom_; }
  /// True once the simulated device has been lost to an injected fault;
  /// every further query fails immediately (the session must be rebuilt).
  bool DeviceLost() const { return device_lost_; }
  /// Simulated clock when topology staging finished (graph-load latency).
  double LoadMs() const { return load_ms_; }
  /// Current absolute session clock.
  double NowMs() const;
  uint64_t QueriesServed() const { return queries_served_; }
  uint64_t DeviceBytesPeak() const { return device_bytes_peak_; }
  const graph::Csr& Graph() const { return csr_; }
  const EtaGraphOptions& Options() const { return options_; }

  /// The session's etacheck report, or nullptr when options.check is off.
  /// Covers everything the session's device has executed so far.
  const sanitizer::SanitizerReport* CheckReport() const;

  /// The session's etaprof launch records, or nullptr when options.profile
  /// is off. Covers every launch the session's device has executed so far
  /// (each query's own slice also lands in RunReport::kernel_profiles).
  const sim::LaunchProfiler* Profiler() const;

  /// The session device's full timeline (transfers, kernels, stalls) on the
  /// absolute session clock — the trace exporter's input for resident runs.
  const sim::Timeline& SessionTimeline() const;

  /// Single-source traversal against the resident topology.
  RunReport Run(Algo algo, graph::VertexId source);

  /// Multi-source traversal (iBFS-style): labels converge to the best value
  /// over all sources. With `attribute_sources` (<= kMaxAttributedSources
  /// sources) the run additionally propagates a per-vertex source bitmask
  /// and fills RunReport::per_source_reached with each source's individual
  /// reachable count — what the serving layer's batch demultiplexer needs.
  RunReport RunMultiSource(Algo algo, std::span<const graph::VertexId> sources,
                           bool attribute_sources = false);

  /// Min-label propagation (connected components on symmetric graphs).
  RunReport RunConnectedComponents();

  /// The async staging path (DESIGN.md section 11): hoists the first-query
  /// topology prefetch out of the query so a stream-scheduling dispatcher
  /// can charge it on a copy stream while another session computes. In
  /// kUnifiedPrefetch mode this issues the same cudaMemPrefetchAsync
  /// sequence the first query would have issued, waits the pages in, and
  /// returns the incremental simulated milliseconds consumed; the first
  /// query then skips its own prefetch, so query answers are bit-identical
  /// either way. A no-op (returns 0) in every other memory mode, after the
  /// prefetch has already happened, and on an OOM/lost/shut-down session.
  double PrefetchTopology();

  /// Tears the session down: frees every resident device buffer, then runs
  /// the leakcheck sweep (Device::ReportLeaks) so an attached checker can
  /// report anything still allocated. Idempotent; the destructor calls it.
  /// No queries may run afterwards.
  void Shutdown();

 private:
  friend class EtaGraph;

  struct State;  // device + resident buffers; defined in framework.cpp

  /// How one execution attempt of a query failed (empty = it succeeded).
  struct AttemptFailure {
    bool failed = false;
    sim::LaunchStatus status = sim::LaunchStatus::kOk;
    uint32_t iter = 0;  // loop iteration the failing launch belonged to
  };

  RunReport Execute(Algo algo, std::vector<graph::Weight> init_labels,
                    std::span<const graph::VertexId> initial_active, bool copy_label,
                    bool attribute_sources);

  /// One start-to-finish execution of the query body. On a failed launch it
  /// returns early with *failure filled; correctable-ECC counts accumulate
  /// into *faults either way.
  RunReport ExecuteAttempt(Algo algo, const std::vector<graph::Weight>& init_labels,
                           std::span<const graph::VertexId> initial_active,
                           bool copy_label, bool attribute_sources,
                           double query_start_clock, FaultStats* faults,
                           AttemptFailure* failure);

  /// Post-UECC recovery: verifies the resident topology against the host
  /// CSR and re-stages (charged) whatever diverged; re-zeroes the stamp
  /// array, whose expected contents have no host shadow.
  void RestageCorrupted(FaultStats* faults);

  const graph::Csr& csr_;
  EtaGraphOptions options_;
  std::unique_ptr<State> state_;
  bool weights_staged_ = false;
  bool oom_ = false;
  uint64_t oom_request_bytes_ = 0;
  bool device_lost_ = false;
  bool shutdown_ = false;
  bool prefetched_ = false;
  /// Largest frontier stamp issued so far; each query's stamps start above
  /// it, so stale stamps from earlier queries never suppress appends and
  /// the stamp array needs no between-query reset.
  uint32_t stamp_base_ = 0;
  double load_ms_ = 0;
  uint64_t device_bytes_peak_ = 0;
  uint64_t queries_served_ = 0;
};

class EtaGraph {
 public:
  explicit EtaGraph(EtaGraphOptions options = {}) : options_(options) {}

  const EtaGraphOptions& Options() const { return options_; }

  /// Runs `algo` from `source`. Weighted algorithms require csr.HasWeights().
  /// Returns a report with oom=true (and nothing else meaningful) if a
  /// device allocation failed — which never happens in UM modes.
  RunReport Run(const graph::Csr& csr, Algo algo, graph::VertexId source) const;

  /// Extension (iBFS-style concurrent queries): one traversal seeded from
  /// several sources at once; labels converge to the best value over all
  /// sources. A multi-source BFS labels each vertex with its distance to
  /// the *nearest* source. See ResidentGraph::RunMultiSource for
  /// `attribute_sources`.
  RunReport RunMultiSource(const graph::Csr& csr, Algo algo,
                           std::span<const graph::VertexId> sources,
                           bool attribute_sources = false) const;

  /// Extension (beyond the paper's three traversals, using the same UDC +
  /// SMP machinery): min-label propagation. Every vertex starts active with
  /// its own ID; labels converge to the smallest ID that can reach each
  /// vertex. On a symmetrized graph this computes connected components.
  RunReport RunConnectedComponents(const graph::Csr& csr) const;

 private:
  EtaGraphOptions options_;
};

}  // namespace eta::core
