// Baseline frameworks (Tigr, Gunrock, CuSha) vs CPU references, plus tests
// of their characteristic structures (VST, G-Shards) and OOM behaviour.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/cusha.hpp"
#include "baselines/gunrock.hpp"
#include "baselines/tigr.hpp"
#include "core/traversal.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace eta::baselines {
namespace {

using core::Algo;

graph::Csr TestGraph(uint64_t seed = 5) {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 10000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(1234);
  return csr;
}

class BaselineCorrectness : public ::testing::TestWithParam<Algo> {};

TEST_P(BaselineCorrectness, TigrMatchesCpu) {
  graph::Csr csr = TestGraph();
  auto report = Tigr().Run(csr, GetParam(), 0);
  ASSERT_FALSE(report.oom);
  auto expected = core::CpuReference(csr, GetParam(), 0);
  ASSERT_EQ(report.labels, expected);
}

TEST_P(BaselineCorrectness, GunrockMatchesCpu) {
  graph::Csr csr = TestGraph();
  auto report = Gunrock().Run(csr, GetParam(), 0);
  ASSERT_FALSE(report.oom);
  auto expected = core::CpuReference(csr, GetParam(), 0);
  ASSERT_EQ(report.labels, expected);
}

TEST_P(BaselineCorrectness, CushaMatchesCpu) {
  graph::Csr csr = TestGraph();
  auto report = Cusha().Run(csr, GetParam(), 0);
  ASSERT_FALSE(report.oom);
  auto expected = core::CpuReference(csr, GetParam(), 0);
  ASSERT_EQ(report.labels, expected);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, BaselineCorrectness,
                         ::testing::Values(Algo::kBfs, Algo::kSssp, Algo::kSswp));

TEST(Vst, SplitsDegreesAtBound) {
  graph::Csr csr = TestGraph();
  const uint32_t k = 8;
  auto vst = Tigr::BuildVst(csr, k);
  ASSERT_EQ(vst.offsets.size(), vst.owner.size() + 1);
  uint64_t covered = 0;
  for (size_t i = 0; i < vst.owner.size(); ++i) {
    graph::EdgeId deg = (i + 1 < vst.offsets.size() ? vst.offsets[i + 1]
                                                    : csr.NumEdges()) -
                        vst.offsets[i];
    // Each virtual node owns a run of at most k edges of its owner. Runs of
    // different owners are adjacent, so recompute against owner bounds.
    graph::EdgeId owner_end = csr.RowEnd(vst.owner[i]);
    graph::EdgeId run = std::min<graph::EdgeId>(vst.offsets[i] + k, owner_end) -
                        vst.offsets[i];
    EXPECT_LE(run, k);
    EXPECT_GE(run, 1u);
    covered += run;
    (void)deg;
  }
  EXPECT_EQ(covered, csr.NumEdges());
}

TEST(Vst, CountMatchesCeilFormula) {
  graph::Csr csr = TestGraph();
  for (uint32_t k : {1u, 2u, 7u, 16u, 64u}) {
    auto vst = Tigr::BuildVst(csr, k);
    uint64_t expected = 0;
    for (graph::VertexId v = 0; v < csr.NumVertices(); ++v) {
      expected += (csr.OutDegree(v) + k - 1) / k;
    }
    EXPECT_EQ(vst.NumVirtual(), expected) << "k=" << k;
  }
}

TEST(GShards, SortedByWindowThenSource) {
  graph::Csr csr = TestGraph();
  const uint32_t window = 64;
  auto shards = Cusha::BuildShards(csr, window);
  ASSERT_EQ(shards.src.size(), csr.NumEdges());
  for (size_t i = 1; i < shards.dst.size(); ++i) {
    uint32_t wa = shards.dst[i - 1] / window, wb = shards.dst[i] / window;
    ASSERT_LE(wa, wb);
    if (wa == wb) {
      ASSERT_LE(shards.src[i - 1], shards.src[i]);
    }
  }
  // Window offsets partition the edges.
  EXPECT_EQ(shards.shard_start.front(), 0u);
  EXPECT_EQ(shards.shard_start.back(), csr.NumEdges());
  for (size_t w = 0; w + 1 < shards.shard_start.size(); ++w) {
    for (graph::EdgeId e = shards.shard_start[w]; e < shards.shard_start[w + 1]; ++e) {
      EXPECT_EQ(shards.dst[e] / window, w);
    }
  }
}

TEST(GShards, PreservesMultiset) {
  graph::Csr csr = TestGraph();
  auto shards = Cusha::BuildShards(csr, 128);
  std::vector<graph::Edge> original = graph::ToEdgeList(csr);
  std::vector<graph::Edge> sharded(shards.src.size());
  for (size_t i = 0; i < sharded.size(); ++i) sharded[i] = {shards.src[i], shards.dst[i]};
  std::sort(original.begin(), original.end());
  std::sort(sharded.begin(), sharded.end());
  EXPECT_EQ(original, sharded);
}

TEST(BaselineOom, SmallDeviceReportsOom) {
  graph::Csr csr = TestGraph();
  sim::DeviceSpec tiny;
  tiny.device_memory_bytes = 64 * util::kKiB;  // far too small for 10K edges
  TigrOptions topt;
  topt.spec = tiny;
  EXPECT_TRUE(Tigr(topt).Run(csr, Algo::kBfs, 0).oom);
  GunrockOptions gopt;
  gopt.spec = tiny;
  EXPECT_TRUE(Gunrock(gopt).Run(csr, Algo::kBfs, 0).oom);
  CushaOptions copt;
  copt.spec = tiny;
  EXPECT_TRUE(Cusha(copt).Run(csr, Algo::kBfs, 0).oom);
}

TEST(BaselineReports, IterationStatsPopulated) {
  graph::Csr csr = TestGraph();
  for (auto* report : {new core::RunReport(Tigr().Run(csr, Algo::kBfs, 0)),
                       new core::RunReport(Gunrock().Run(csr, Algo::kBfs, 0)),
                       new core::RunReport(Cusha().Run(csr, Algo::kBfs, 0))}) {
    EXPECT_GT(report->iterations, 0u);
    EXPECT_EQ(report->iterations, report->iteration_stats.size());
    EXPECT_GT(report->kernel_ms, 0.0);
    EXPECT_GE(report->total_ms, report->kernel_ms);
    EXPECT_GT(report->activated, 0u);
    delete report;
  }
}

}  // namespace
}  // namespace eta::baselines
