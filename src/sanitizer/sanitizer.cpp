#include "sanitizer/sanitizer.hpp"

#include <algorithm>
#include <bit>

#include "sim/device.hpp"
#include "util/check.hpp"

namespace eta::sanitizer {

namespace {

constexpr uint64_t kAllValid = ~uint64_t{0};

bool IsWrite(sim::AccessKind kind) {
  return kind == sim::AccessKind::kWrite || kind == sim::AccessKind::kRelaxedWrite ||
         kind == sim::AccessKind::kAtomic;
}

bool IsRead(sim::AccessKind kind) {
  // Atomics are read-modify-write: the old value feeds back into the kernel.
  return kind == sim::AccessKind::kRead || kind == sim::AccessKind::kAtomic;
}

}  // namespace

Sanitizer::Sanitizer(Config config) : config_(config) {}

Sanitizer::~Sanitizer() = default;

Sanitizer::Shadow* Sanitizer::FindShadow(uint64_t buffer_id) {
  auto it = shadows_.find(buffer_id);
  return it == shadows_.end() ? nullptr : &it->second;
}

void Sanitizer::OnAlloc(const sim::RawBuffer& buffer, const std::string& name) {
  Shadow shadow;
  shadow.name = name;
  shadow.bytes = buffer.bytes;
  if (config_.memcheck) {
    shadow.valid.assign((buffer.bytes / 4 + 63) / 64, 0);
  }
  shadows_[buffer.id] = std::move(shadow);
}

void Sanitizer::OnFree(const sim::RawBuffer& buffer) {
  Shadow* shadow = FindShadow(buffer.id);
  if (shadow == nullptr) return;
  shadow->live = false;
  // Drop the bulk shadow state: a freed buffer only needs its name and the
  // dead flag to diagnose use-after-free.
  shadow->valid.clear();
  shadow->valid.shrink_to_fit();
  shadow->cells.clear();
  shadow->cells.shrink_to_fit();
}

void Sanitizer::OnHostWrite(const sim::RawBuffer& buffer, uint64_t offset,
                            uint64_t bytes) {
  if (!config_.memcheck) return;
  Shadow* shadow = FindShadow(buffer.id);
  if (shadow == nullptr || !shadow->live) return;
  // Mark the fully covered 4-byte words (every call site is word-aligned).
  uint64_t first = (offset + 3) / 4;
  uint64_t last = (offset + bytes) / 4;
  if (last > first) MarkWords(shadow->valid, first, last - first);
}

void Sanitizer::OnLaunchBegin(const std::string& label,
                              const sim::LaunchConfig& config) {
  in_launch_ = true;
  kernel_ = label;
  step_ = 0;
  ++launch_epoch_;
  ++report_.launches_checked;
  warps_per_block_ = std::max(1u, config.block_size / sim::kWarpSize);
  num_threads_ = config.num_threads;
  num_warps_ = (config.num_threads + sim::kWarpSize - 1) / sim::kWarpSize;
  if (config_.synccheck) barrier_counts_.assign(num_warps_, 0);
}

void Sanitizer::OnLaunchEnd() {
  if (config_.synccheck) {
    // Warps of one block must agree on how many barriers they executed;
    // a disagreement is the missed-__syncthreads hang.
    for (uint64_t block_first = 0; block_first < num_warps_;
         block_first += warps_per_block_) {
      uint64_t block_last = std::min<uint64_t>(block_first + warps_per_block_, num_warps_);
      uint64_t lo_warp = block_first;
      uint64_t hi_warp = block_first;
      for (uint64_t w = block_first; w < block_last; ++w) {
        if (barrier_counts_[w] < barrier_counts_[lo_warp]) lo_warp = w;
        if (barrier_counts_[w] > barrier_counts_[hi_warp]) hi_warp = w;
      }
      if (barrier_counts_[lo_warp] != barrier_counts_[hi_warp]) {
        std::string note = "warp " + std::to_string(lo_warp) + " hit " +
                           std::to_string(barrier_counts_[lo_warp]) +
                           " barrier(s), warp " + std::to_string(hi_warp) + " hit " +
                           std::to_string(barrier_counts_[hi_warp]);
        AddFinding(FindingKind::kBarrierMismatch, "", block_first / warps_per_block_,
                   lo_warp, 0, Finding::kNoThread, note);
      }
    }
  }
  in_launch_ = false;
  kernel_.clear();
}

void Sanitizer::OnDeviceAccess(const sim::DeviceAccess& access) {
  ++step_;
  ++report_.accesses_checked;
  Shadow* shadow = FindShadow(access.buffer->id);
  if (shadow == nullptr) return;  // allocated before the sanitizer attached
  if (!shadow->live) {
    AddFinding(FindingKind::kUseAfterFree, shadow->name, access.elem_index,
               access.warp, access.lane, Finding::kNoThread);
    return;
  }
  // Clamped in-bounds element range; the out-of-bounds tail is reported by
  // CheckMemory, and the shadow updates below only apply to real elements.
  uint64_t begin = std::min(access.elem_index, access.buffer_elems);
  uint64_t end = std::min(access.elem_index + access.elem_count, access.buffer_elems);
  if (config_.memcheck) CheckMemory(*shadow, access, begin, end);
  if (config_.racecheck && in_launch_) CheckRace(*shadow, access, begin, end);
}

void Sanitizer::CheckMemory(Shadow& shadow, const sim::DeviceAccess& access,
                            uint64_t begin, uint64_t end) {
  if (access.elem_index + access.elem_count > access.buffer_elems) {
    FindingKind kind =
        IsWrite(access.kind) ? FindingKind::kOobWrite : FindingKind::kOobRead;
    AddFinding(kind, shadow.name, std::max(access.elem_index, access.buffer_elems),
               access.warp, access.lane, Finding::kNoThread);
  }
  if (begin >= end || access.elem_bytes % 4 != 0) return;
  const uint64_t words_per_elem = access.elem_bytes / 4;
  const uint64_t first_word = begin * words_per_elem;
  const uint64_t word_count = (end - begin) * words_per_elem;
  if (IsRead(access.kind)) {
    uint64_t bad = FirstInvalidWord(shadow.valid, first_word, word_count);
    if (bad != kAllValid) {
      AddFinding(FindingKind::kUninitRead, shadow.name, bad / words_per_elem,
                 access.warp, access.lane, Finding::kNoThread);
    }
  }
  if (IsWrite(access.kind)) MarkWords(shadow.valid, first_word, word_count);
}

void Sanitizer::CheckRace(Shadow& shadow, const sim::DeviceAccess& access,
                          uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  if (shadow.cells.size() < end) shadow.cells.resize(end);
  const uint64_t thread = access.warp * sim::kWarpSize + access.lane;
  const uint64_t tagged = thread + 1;  // 0 means "no access yet"
  for (uint64_t e = begin; e < end; ++e) {
    RaceCell& cell = shadow.cells[e];
    if (cell.epoch != launch_epoch_) cell = RaceCell{launch_epoch_, 0, 0, 0};
    switch (access.kind) {
      case sim::AccessKind::kRead:
        if (cell.writer != 0 && cell.writer != tagged) {
          AddFinding(FindingKind::kRaceWriteRead, shadow.name, e, access.warp,
                     access.lane, cell.writer - 1);
        }
        cell.reader = tagged;
        break;
      case sim::AccessKind::kWrite:
        if (cell.writer != 0 && cell.writer != tagged) {
          AddFinding(FindingKind::kRaceWriteWrite, shadow.name, e, access.warp,
                     access.lane, cell.writer - 1);
        } else if (cell.atomiker != 0 && cell.atomiker != tagged) {
          AddFinding(FindingKind::kRaceAtomicWrite, shadow.name, e, access.warp,
                     access.lane, cell.atomiker - 1);
        } else if (cell.reader != 0 && cell.reader != tagged) {
          AddFinding(FindingKind::kRaceReadWrite, shadow.name, e, access.warp,
                     access.lane, cell.reader - 1);
        }
        cell.writer = tagged;
        break;
      case sim::AccessKind::kRelaxedWrite:
      case sim::AccessKind::kAtomic:
        if (cell.writer != 0 && cell.writer != tagged) {
          AddFinding(FindingKind::kRaceWriteAtomic, shadow.name, e, access.warp,
                     access.lane, cell.writer - 1);
        }
        cell.atomiker = tagged;
        break;
    }
  }
}

void Sanitizer::OnBarrier(uint64_t warp, uint64_t block, uint32_t arrive_mask,
                          uint32_t active_mask) {
  ++step_;
  if (!config_.synccheck || !in_launch_) return;
  if (warp < barrier_counts_.size()) ++barrier_counts_[warp];
  if (arrive_mask != active_mask) {
    AddFinding(FindingKind::kBarrierDivergence, "", block, warp,
               static_cast<uint32_t>(std::countr_zero(arrive_mask | 1u)),
               Finding::kNoThread);
  }
}

void Sanitizer::OnLeakedBuffer(const sim::RawBuffer& buffer, const std::string& name) {
  if (!config_.leakcheck) return;
  // One finding per leaked allocation; the sweep runs outside any launch, so
  // kernel_ is empty and the (kind, "", name) key aggregates same-named
  // buffers leaked by repeated sessions.
  AddFinding(FindingKind::kLeakedBuffer, name, 0, 0, 0, Finding::kNoThread,
             std::to_string(buffer.bytes) + " byte(s)");
}

void Sanitizer::AddFinding(FindingKind kind, const std::string& buffer_name,
                           uint64_t elem_index, uint64_t warp, uint32_t lane,
                           uint64_t other_thread, const std::string& note) {
  auto key = std::make_tuple(kind, kernel_, buffer_name);
  auto it = finding_index_.find(key);
  if (it != finding_index_.end()) {
    ++report_.findings[it->second].occurrences;
    return;
  }
  Finding finding;
  finding.kind = kind;
  finding.kernel = kernel_;
  finding.buffer = buffer_name;
  finding.elem_index = elem_index;
  finding.warp = warp;
  finding.lane = lane;
  finding.other_thread = other_thread;
  finding.step = step_;
  finding.note = note;
  finding_index_[key] = report_.findings.size();
  report_.findings.push_back(std::move(finding));
}

void Sanitizer::MarkWords(std::vector<uint64_t>& valid, uint64_t first, uint64_t count) {
  if (count == 0) return;
  uint64_t word = first / 64;
  uint64_t bit = first % 64;
  ETA_DCHECK((first + count + 63) / 64 <= valid.size());
  while (count > 0) {
    uint64_t span = std::min<uint64_t>(64 - bit, count);
    uint64_t mask = span == 64 ? kAllValid : ((uint64_t{1} << span) - 1) << bit;
    valid[word] |= mask;
    count -= span;
    ++word;
    bit = 0;
  }
}

uint64_t Sanitizer::FirstInvalidWord(const std::vector<uint64_t>& valid, uint64_t first,
                                     uint64_t count) {
  uint64_t word = first / 64;
  uint64_t bit = first % 64;
  uint64_t index = first;
  ETA_DCHECK((first + count + 63) / 64 <= valid.size());
  while (count > 0) {
    uint64_t span = std::min<uint64_t>(64 - bit, count);
    uint64_t mask = span == 64 ? kAllValid : ((uint64_t{1} << span) - 1) << bit;
    uint64_t missing = mask & ~valid[word];
    if (missing != 0) {
      return index + static_cast<uint64_t>(std::countr_zero(missing)) - bit;
    }
    index += span;
    count -= span;
    ++word;
    bit = 0;
  }
  return kAllValid;
}

}  // namespace eta::sanitizer
