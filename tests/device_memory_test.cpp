// DeviceMemory edge behaviour: OOM arithmetic, double-free hard abort,
// out-of-range cudaMemcpy, kHostStaged's invisibility to the
// unified-memory page machinery, and injected allocation failures
// (DESIGN.md section 8) surfacing exactly like real memory pressure.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/framework.hpp"
#include "core/traversal.hpp"
#include "cpu/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "sim/device.hpp"
#include "sim/fault.hpp"
#include "util/units.hpp"

namespace eta {
namespace {

sim::DeviceSpec TinySpec() {
  sim::DeviceSpec spec;
  spec.device_memory_bytes = 1 * util::kMiB;
  return spec;
}

TEST(DeviceMemoryTest, OomErrorCarriesTheAllocationArithmetic) {
  sim::Device device(TinySpec());
  // 512 KiB of the 1 MiB capacity: exactly page-sized, no rounding slack.
  auto half = device.Alloc<uint32_t>(128 * 1024, sim::MemKind::kDevice, "half");
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 512 * util::kKiB);
  try {
    device.Alloc<uint32_t>(256 * 1024, sim::MemKind::kDevice, "toobig");
    FAIL() << "expected OomError";
  } catch (const sim::OomError& oom) {
    EXPECT_EQ(oom.requested_bytes, 1 * util::kMiB);
    EXPECT_EQ(oom.used_bytes, 512 * util::kKiB);
    EXPECT_EQ(oom.capacity_bytes, 1 * util::kMiB);
  }
  // The failed allocation must not leak accounting.
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 512 * util::kKiB);
  device.Free(half);
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 0u);
}

TEST(DeviceMemoryTest, RequestIsPageRounded) {
  sim::Device device(TinySpec());
  auto one = device.Alloc<uint32_t>(1, sim::MemKind::kDevice, "one");
  EXPECT_EQ(one.raw.bytes, device.Spec().page_bytes);
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), device.Spec().page_bytes);
  // Fresh allocations are zero-filled.
  EXPECT_EQ(one.HostSpan()[0], 0u);
  device.Free(one);
}

TEST(DeviceMemoryTest, UnifiedAllocationsOversubscribeInsteadOfThrowing) {
  sim::Device device(TinySpec());
  // 4 MiB managed on a 1 MiB device: must not throw (pages migrate/evict).
  auto big = device.Alloc<uint32_t>(1024 * 1024, sim::MemKind::kUnified, "big");
  EXPECT_TRUE(big.Valid());
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 0u);
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), 4 * util::kMiB);
  device.Free(big);
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), 0u);
}

TEST(DeviceMemoryDeathTest, DoubleFreeAborts) {
  sim::Device device;
  auto buf = device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "victim");
  sim::RawBuffer stale = buf.raw;
  device.Free(buf);  // also resets the handle, so Device::Free is now a no-op
  EXPECT_DEATH(device.Mem().Free(stale), "CHECK failed");
}

TEST(DeviceMemoryDeathTest, MemcpyPastTheAllocationAborts) {
  sim::Device device;
  auto buf = device.Alloc<uint32_t>(4, sim::MemKind::kDevice, "small");
  std::vector<uint32_t> five(5, 1);
  EXPECT_DEATH(device.CopyToDevice(buf, std::span<const uint32_t>(five)),
               "CHECK failed");
  std::vector<uint32_t> two(2, 1);
  EXPECT_DEATH(
      device.CopyToDeviceRange(buf, 3, std::span<const uint32_t>(two)),
      "CHECK failed");
}

TEST(DeviceMemoryTest, FindResolvesAllocationsAndGuardPages) {
  sim::Device device;
  auto a = device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "a");
  auto b = device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "b");
  const sim::DeviceMemory& mem = device.Mem();
  ASSERT_NE(mem.Find(a.raw.base_addr), nullptr);
  EXPECT_EQ(mem.Find(a.raw.base_addr)->id, a.raw.id);
  EXPECT_EQ(mem.Find(a.raw.base_addr + a.raw.bytes - 1)->id, a.raw.id);
  // The guard page between allocations maps to nothing.
  EXPECT_EQ(mem.Find(a.raw.base_addr + a.raw.bytes), nullptr);
  EXPECT_EQ(mem.Find(b.raw.base_addr)->id, b.raw.id);
  EXPECT_EQ(mem.Find(0), nullptr);
  device.Free(a);
  device.Free(b);
}

TEST(DeviceMemoryTest, HostStagedIsInvisibleToUnifiedMemory) {
  sim::Device device;
  auto staged = device.Alloc<uint32_t>(1024, sim::MemKind::kHostStaged, "staged");
  auto managed = device.Alloc<uint32_t>(1024, sim::MemKind::kUnified, "managed");
  for (uint64_t i = 0; i < 1024; ++i) {
    staged.HostSpan()[i] = static_cast<uint32_t>(i);
    managed.HostSpan()[i] = static_cast<uint32_t>(i);
  }

  // Only the managed range registers with the page machinery.
  EXPECT_FALSE(device.Um().IsManaged(staged.raw.base_addr));
  EXPECT_TRUE(device.Um().IsManaged(managed.raw.base_addr));
  // Both count as non-device allocations at the allocator level.
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), staged.raw.bytes + managed.raw.bytes);
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), 0u);

  // A kernel touching the staged buffer migrates nothing; the same touch on
  // the managed buffer faults pages in.
  auto read_first = [&](sim::Buffer<uint32_t>& buf) {
    device.Launch("touch", {32, 256}, [&](sim::WarpCtx& w) {
      uint32_t mask = w.ActiveMask();
      if (!mask) return;
      sim::LaneArray<uint64_t> idx{};
      sim::WarpCtx::ForActive(mask, [&](uint32_t lane) { idx[lane] = lane; });
      sim::LaneArray<uint32_t> out{};
      w.Gather(buf, idx, mask, out);
    });
  };
  read_first(staged);
  EXPECT_EQ(device.Um().TotalMigratedBytes(), 0u);
  read_first(managed);
  EXPECT_GT(device.Um().TotalMigratedBytes(), 0u);

  device.Free(staged);
  device.Free(managed);
  EXPECT_EQ(device.Mem().UnifiedBytesAllocated(), 0u);
}

// --- Injected allocation failures (fault model, DESIGN.md section 8) --------

TEST(DeviceMemoryTest, InjectedAllocFailureLooksLikeRealPressure) {
  sim::Device device;
  sim::FaultConfig config;
  config.alloc_fail_at = 2;
  sim::FaultInjector injector(config);
  device.SetFaultInjector(&injector);

  auto a = device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "a");
  uint64_t used_before = device.Mem().DeviceBytesUsed();
  try {
    device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "b");
    FAIL() << "expected injected OomError";
  } catch (const sim::OomError& oom) {
    EXPECT_EQ(oom.requested_bytes, 16 * sizeof(uint32_t));
    EXPECT_EQ(oom.used_bytes, used_before);
    EXPECT_EQ(oom.capacity_bytes, device.Spec().device_memory_bytes);
  }
  // The injected failure charges nothing and leaves no record.
  EXPECT_EQ(device.Mem().DeviceBytesUsed(), used_before);
  EXPECT_EQ(device.Mem().LiveAllocations().size(), 1u);
  // The one-shot fired; allocation works again — even the kind that never
  // fails naturally.
  EXPECT_NO_THROW(device.Alloc<uint32_t>(16, sim::MemKind::kUnified, "c"));
  device.Free(a);
}

TEST(DeviceMemoryTest, AllocationOnALostDeviceFails) {
  sim::Device device;
  sim::FaultConfig config;
  config.lost_at = 1;
  sim::FaultInjector injector(config);
  device.SetFaultInjector(&injector);

  ASSERT_EQ(device.Launch("k", {32, 32}, [](sim::WarpCtx&) {}).status,
            sim::LaunchStatus::kDeviceLost);
  EXPECT_THROW(device.Alloc<uint32_t>(16, sim::MemKind::kDevice, "late"),
               sim::OomError);
}

namespace fault_alloc {

graph::Csr WeightedGraph() {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = 7;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(99);
  return csr;
}

// Resident staging on a weighted graph performs exactly 13 device
// allocations (row, col, wts, labels, stamp, act_set, act_count, 5 shadow
// arrays, virt_counts); the per-vertex reach mask is allocated lazily by the
// first attributed multi-source query, i.e. allocation decision #14.
constexpr uint64_t kLoadAllocs = 13;

}  // namespace fault_alloc

TEST(DeviceMemoryTest, SessionLoadAllocFailureMarksSessionOom) {
  graph::Csr csr = fault_alloc::WeightedGraph();
  core::EtaGraphOptions options;
  options.faults.alloc_fail_at = 5;  // mid-staging
  core::ResidentGraph session(csr, options);
  EXPECT_TRUE(session.Oom());
  auto report = session.Run(core::Algo::kBfs, 3);
  EXPECT_TRUE(report.oom);
  EXPECT_GT(report.oom_request_bytes, 0u);
  EXPECT_TRUE(report.labels.empty());
}

TEST(DeviceMemoryTest, MidSessionAllocFailureDegradesOneQueryNotTheSession) {
  graph::Csr csr = fault_alloc::WeightedGraph();
  core::EtaGraphOptions options;
  options.faults.alloc_fail_at = fault_alloc::kLoadAllocs + 1;
  core::ResidentGraph session(csr, options);
  ASSERT_FALSE(session.Oom());

  // A plain query allocates nothing new: untouched by the pending one-shot.
  auto before = session.Run(core::Algo::kBfs, 3);
  ASSERT_FALSE(before.oom);
  EXPECT_EQ(before.labels, core::CpuReference(csr, core::Algo::kBfs, 3));

  // The first attributed multi-source query lazily allocates the reach
  // mask; the injected failure lands on exactly that allocation.
  const graph::VertexId sources[2] = {3, 9};
  auto hit = session.RunMultiSource(core::Algo::kBfs,
                                    std::span<const graph::VertexId>(sources),
                                    /*attribute_sources=*/true);
  EXPECT_TRUE(hit.oom);

  // Only that query is lost. The session stays healthy for later queries.
  EXPECT_FALSE(session.Oom());
  auto after = session.Run(core::Algo::kSssp, 9);
  ASSERT_FALSE(after.oom);
  EXPECT_EQ(after.labels, core::CpuReference(csr, core::Algo::kSssp, 9));
}

TEST(DeviceMemoryTest, ServeDegradesWhenEverySessionBuildOoms) {
  graph::Csr csr = fault_alloc::WeightedGraph();
  serve::TraceOptions trace_options;
  trace_options.num_requests = 6;
  auto trace = serve::GenerateTrace(csr.NumVertices(), trace_options);

  serve::ServeOptions options;
  // Every session rebuild replays the injector schedule from scratch, so
  // staging allocation #1 fails for the initial build and every rebuild.
  options.graph.faults.alloc_fail_at = 1;
  options.max_session_rebuilds = 2;
  auto report = serve::ServeEngine(options).Serve(csr, trace);

  EXPECT_EQ(report.completed, trace.size());
  EXPECT_EQ(report.degraded, trace.size());
  for (const serve::QueryResult& q : report.results) {
    EXPECT_EQ(q.status, serve::QueryStatus::kDegraded);
    EXPECT_EQ(q.reached_vertices,
              cpu::CountReached(core::CpuReference(csr, q.algo, q.source),
                                core::IsWidest(q.algo)));
  }
}

}  // namespace
}  // namespace eta
