#include "serve/batcher.hpp"

#include "util/check.hpp"

namespace eta::serve {

bool Batchable(core::Algo algo) {
  return algo == core::Algo::kBfs || algo == core::Algo::kSssp;
}

std::vector<QueryResult> ExecuteBatch(GraphSession& session, const Batch& batch,
                                      double start_ms, double* duration_ms) {
  ETA_CHECK(!batch.requests.empty());
  std::vector<QueryResult> results;
  results.reserve(batch.requests.size());

  auto base_result = [&](const Request& r) {
    QueryResult q;
    q.id = r.id;
    q.status = QueryStatus::kOk;
    q.algo = r.algo;
    q.source = r.source;
    q.arrival_ms = r.arrival_ms;
    return q;
  };

  if (batch.requests.size() > 1 && Batchable(batch.algo)) {
    std::vector<graph::VertexId> sources;
    sources.reserve(batch.requests.size());
    for (const Request& r : batch.requests) {
      ETA_CHECK(r.algo == batch.algo);
      sources.push_back(r.source);
    }
    core::RunReport report = session.RunBatch(batch.algo, sources);
    ETA_CHECK(!report.oom);
    ETA_CHECK(report.per_source_reached.size() == batch.requests.size());
    for (size_t i = 0; i < batch.requests.size(); ++i) {
      QueryResult q = base_result(batch.requests[i]);
      q.reached_vertices = report.per_source_reached[i];
      q.batch_size = static_cast<uint32_t>(batch.requests.size());
      q.start_ms = start_ms;
      q.finish_ms = start_ms + report.query_ms;
      results.push_back(q);
    }
    *duration_ms = report.query_ms;
    return results;
  }

  // Sequential fallback: run each request on its own, back to back.
  double t = start_ms;
  for (const Request& r : batch.requests) {
    core::RunReport report = session.RunQuery(r.algo, r.source);
    ETA_CHECK(!report.oom);
    QueryResult q = base_result(r);
    q.reached_vertices = report.activated;
    q.batch_size = 1;
    q.start_ms = t;
    t += report.query_ms;
    q.finish_ms = t;
    results.push_back(q);
  }
  *duration_ms = t - start_ms;
  return results;
}

}  // namespace eta::serve
