#include "trace/tracer.hpp"

#include <cstdarg>
#include <cstdio>

namespace eta::trace {
namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_list retry;
  va_start(args, fmt);
  va_copy(retry, args);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    if (static_cast<size_t>(n) < sizeof(buf)) {
      *out += buf;
    } else {
      // Long chunk: retry into the string itself instead of silently
      // truncating at the stack-buffer size.
      const size_t base = out->size();
      out->resize(base + static_cast<size_t>(n) + 1);
      std::vsnprintf(out->data() + base, static_cast<size_t>(n) + 1, fmt, retry);
      out->resize(base + static_cast<size_t>(n));
    }
  }
  va_end(retry);
}

}  // namespace

uint64_t RequestTracer::TotalEvents() const {
  uint64_t n = 0;
  for (const auto& [id, events] : traces_) n += events.size();
  return n;
}

std::string RenderTraceEventJson(const TraceEvent& e) {
  std::string out = "{";
  Appendf(&out, "\"kind\":\"%s\"", EventKindName(e.kind));
  Appendf(&out, ",\"at_ms\":%.4f", e.at_ms);
  const char* status = EventStatusName(e.kind, e.status);
  if (status[0] != '\0') Appendf(&out, ",\"status\":\"%s\"", status);
  if (e.shard >= 0) Appendf(&out, ",\"shard\":%d", static_cast<int>(e.shard));
  Appendf(&out, ",\"a\":%.4f,\"b\":%.4f,\"c\":%.4f", e.a, e.b, e.c);
  if (e.op_id >= 0) Appendf(&out, ",\"op\":%lld", static_cast<long long>(e.op_id));
  out += "}";
  return out;
}

std::string RequestTracer::RenderJson() const {
  std::string out = "{\"traces\":[";
  bool first_trace = true;
  for (const auto& [id, events] : traces_) {
    if (!first_trace) out += ",";
    first_trace = false;
    Appendf(&out, "\n {\"id\":%llu,\"events\":[", static_cast<unsigned long long>(id));
    bool first_event = true;
    for (const TraceEvent& e : events) {
      if (!first_event) out += ",";
      first_event = false;
      out += "\n  ";
      out += RenderTraceEventJson(e);
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace eta::trace
