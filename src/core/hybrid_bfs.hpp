// Direction-optimizing BFS (Beamer, Asanovic, Patterson — SC'12, the
// paper's reference [34]) on the simulated GPU — an extension showing the
// substrate supports algorithm-level optimizations beyond the paper's
// push-only traversals.
//
// Top-down steps expand the frontier through out-edges (push, as in
// EtaGraph). When the frontier grows past a fraction of the graph, the
// traversal flips to bottom-up: every *unvisited* vertex scans its
// in-neighbors (the transposed CSR) and claims the first visited parent —
// turning |frontier| * degree work into early-exit scans and eliminating
// the atomic contention of the hot middle iterations on social graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "sanitizer/config.hpp"
#include "sanitizer/report.hpp"
#include "sim/profiler.hpp"

namespace eta::core {

struct HybridBfsOptions {
  /// Switch to bottom-up when the frontier's out-edge count exceeds
  /// |E| / alpha (Beamer's alpha heuristic).
  double alpha = 14.0;
  /// Switch back to top-down when the frontier shrinks below |V| / beta.
  double beta = 24.0;
  uint32_t degree_limit = 16;  // UDC cut for the top-down phase
  bool use_smp = true;
  sim::DeviceSpec spec{};
  uint32_t block_size = 256;
  uint32_t max_iterations = 100000;
  /// etacheck instrumentation; see EtaGraphOptions::check.
  sanitizer::Config check{};
};

struct HybridBfsResult {
  bool oom = false;
  std::vector<graph::Weight> levels;  // kInf = unreached
  uint32_t iterations = 0;
  uint32_t bottom_up_iterations = 0;  // how many ran in pull mode
  double kernel_ms = 0;
  double total_ms = 0;
  sim::Counters counters;
  sanitizer::SanitizerReport check;
};

/// Runs direction-optimizing BFS from `source`. `csr` is the out-edge
/// graph; its transpose is built host-side (preprocessing, untimed — like
/// every framework's format conversion) and uploaded for the pull phase.
HybridBfsResult RunHybridBfs(const graph::Csr& csr, graph::VertexId source,
                             const HybridBfsOptions& options = {});

}  // namespace eta::core
