// Synthetic graph generators.
//
// The paper evaluates on SNAP social networks, WebGraph crawls and a PaRMAT
// R-MAT graph. None of those datasets are available offline, so the dataset
// registry (datasets.hpp) builds scaled stand-ins from these generators,
// each parameterized to match the shape statistics the paper reports
// (average degree, skew, LCC fraction, traversal iteration count).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace eta::graph {

/// R-MAT recursive-matrix generator (Chakrabarti et al.), the model PaRMAT
/// implements. Probabilities (a, b, c) select the quadrant at each of
/// `scale` recursion levels; d = 1 - a - b - c. Duplicates are NOT removed
/// here — pass the result through BuildCsr.
struct RmatParams {
  uint32_t scale = 18;      // 2^scale vertices
  uint64_t num_edges = 1 << 22;
  double a = 0.45, b = 0.22, c = 0.22;  // the paper's PaRMAT parameters
  uint64_t seed = 1;
  /// Perturbs the quadrant probabilities per level (+-10%) as PaRMAT does,
  /// which avoids grid artifacts in the degree distribution.
  bool noise = true;
};
std::vector<Edge> GenerateRmat(const RmatParams& params);

/// Erdős–Rényi G(n, m): m directed edges chosen uniformly.
std::vector<Edge> GenerateErdosRenyi(VertexId n, uint64_t m, uint64_t seed);

/// Web-crawl-like generator used for the uk-2005 / sk-2005 / uk-2006
/// stand-ins. The reachable "largest component" is a directed chain of
/// `num_communities` dense clusters — traversal must cross each link in
/// order, so BFS from the chain head takes roughly
/// num_communities * (intra-community depth) iterations, reproducing the
/// paper's iteration counts (200 for uk-2005, 57 for sk-2005). The
/// remaining (1 - lcc_fraction) of vertices form side components that are
/// unreachable from the chain, reproducing the LCC percentages of Table II.
struct WebGraphParams {
  VertexId num_vertices = 1 << 20;
  uint64_t num_edges = 1 << 23;
  uint32_t num_communities = 64;   // chain length
  double lcc_fraction = 0.7;       // share of vertices in the chain
  /// Depth of each community's internal hierarchy; BFS spends about this
  /// many iterations inside one community before crossing to the next.
  uint32_t community_depth = 3;
  uint64_t seed = 2;
};
std::vector<Edge> GenerateWebGraph(const WebGraphParams& params);

/// Appends the reverse edge for a deterministic `fraction` of edges.
/// Social networks have high link reciprocity (Orkut is undirected); this
/// raises directed reachability from the query source to the levels the
/// paper reports (Table IV: 91-100% activated on the social graphs).
std::vector<Edge> MirrorEdges(std::vector<Edge> edges, double fraction, uint64_t seed);

/// Relabels vertices densely, dropping IDs that appear in no edge. R-MAT
/// leaves a large fraction of the 2^scale ID space untouched; compaction
/// removes those phantom singletons so component statistics match real
/// graphs.
std::vector<Edge> CompactVertexIds(std::vector<Edge> edges, VertexId* num_vertices);

/// Attaches a narrow chain of `depth` layers (x `width` vertices) reachable
/// from `attach`, extending the BFS depth to ~depth+1 without materially
/// changing the size. Social networks have exactly this long-tail shape
/// (Fig 2: LiveJournal needs 15 iterations while most activation happens in
/// the first 6). New vertices get IDs from `first_new_id` upward.
std::vector<Edge> AppendTailChain(std::vector<Edge> edges, VertexId attach,
                                  VertexId first_new_id, uint32_t depth,
                                  uint32_t width, uint64_t seed);

/// Prepends a tiny directed component containing vertex 0 of
/// `component_size` vertices arranged `depth` hops deep, with no edges to
/// or from the rest of the graph. Used for the uk-2006 stand-in, where the
/// paper's queried source reaches only a 1.15e-4 fraction of the graph in
/// 4 iterations (Table IV). Existing vertex IDs are shifted up by
/// component_size.
std::vector<Edge> PlantTinySourceComponent(std::vector<Edge> edges,
                                           VertexId component_size,
                                           uint32_t depth, uint64_t seed);

}  // namespace eta::graph
