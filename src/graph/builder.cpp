#include "graph/builder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace eta::graph {

Csr BuildCsr(std::vector<Edge>&& edges, const BuildOptions& options) {
  if (options.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  if (options.sort_neighbors || options.remove_duplicates) {
    std::sort(edges.begin(), edges.end());
  }
  if (options.remove_duplicates) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  VertexId n = options.min_vertices;
  for (const Edge& e : edges) {
    n = std::max({n, e.src + 1, e.dst + 1});
  }

  std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
  for (const Edge& e : edges) ++offsets[e.src + 1];
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> targets(edges.size());
  if (options.sort_neighbors || options.remove_duplicates) {
    // Edges are globally sorted, so targets can be emitted in order.
    for (size_t i = 0; i < edges.size(); ++i) targets[i] = edges[i].dst;
  } else {
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) targets[cursor[e.src]++] = e.dst;
  }
  return Csr(std::move(offsets), std::move(targets));
}

Csr BuildCsr(const std::vector<Edge>& edges, const BuildOptions& options) {
  std::vector<Edge> copy = edges;
  return BuildCsr(std::move(copy), options);
}

std::vector<Edge> ToEdgeList(const Csr& csr) {
  std::vector<Edge> edges;
  edges.reserve(csr.NumEdges());
  for (VertexId v = 0; v < csr.NumVertices(); ++v) {
    for (VertexId dst : csr.Neighbors(v)) edges.push_back({v, dst});
  }
  return edges;
}

}  // namespace eta::graph
