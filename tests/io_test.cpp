// Graph I/O tests: Galois .gr binary round trips, text edge lists, and the
// dataset cache built on top of them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"

namespace eta::graph {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("eta_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

Csr RandomGraph(uint64_t seed, bool weighted) {
  RmatParams params;
  params.scale = 9;
  params.num_edges = 3000;
  params.seed = seed;
  Csr csr = BuildCsr(GenerateRmat(params));
  if (weighted) csr.DeriveWeights(seed);
  return csr;
}

void ExpectCsrEqual(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_TRUE(std::equal(a.RowOffsets().begin(), a.RowOffsets().end(),
                         b.RowOffsets().begin()));
  EXPECT_TRUE(std::equal(a.ColIndices().begin(), a.ColIndices().end(),
                         b.ColIndices().begin()));
  ASSERT_EQ(a.HasWeights(), b.HasWeights());
  if (a.HasWeights()) {
    EXPECT_TRUE(std::equal(a.Weights().begin(), a.Weights().end(), b.Weights().begin()));
  }
}

TEST_F(IoTest, GaloisRoundTripUnweighted) {
  Csr csr = RandomGraph(1, false);
  WriteGaloisGr(csr, Path("g.gr"));
  ExpectCsrEqual(csr, ReadGaloisGr(Path("g.gr")));
}

TEST_F(IoTest, GaloisRoundTripWeighted) {
  Csr csr = RandomGraph(2, true);
  WriteGaloisGr(csr, Path("g.gr"));
  ExpectCsrEqual(csr, ReadGaloisGr(Path("g.gr")));
}

TEST_F(IoTest, GaloisOddEdgeCountPadding) {
  // An odd |E| exercises the 8-byte padding path.
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}});
  ASSERT_EQ(csr.NumEdges() % 2, 1u);
  WriteGaloisGr(csr, Path("odd.gr"));
  ExpectCsrEqual(csr, ReadGaloisGr(Path("odd.gr")));
}

TEST_F(IoTest, GaloisHeaderLayout) {
  Csr csr = BuildCsr(std::vector<Edge>{{0, 1}});
  WriteGaloisGr(csr, Path("h.gr"));
  std::ifstream in(Path("h.gr"), std::ios::binary);
  uint64_t header[4];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  EXPECT_EQ(header[0], 1u);  // version
  EXPECT_EQ(header[1], 0u);  // no edge data
  EXPECT_EQ(header[2], 2u);  // nodes
  EXPECT_EQ(header[3], 1u);  // edges
}

TEST_F(IoTest, TextRoundTripUnweighted) {
  Csr csr = RandomGraph(3, false);
  WriteEdgeListText(csr, Path("g.txt"));
  ExpectCsrEqual(csr, ReadEdgeListText(Path("g.txt")));
}

TEST_F(IoTest, TextRoundTripWeighted) {
  Csr csr = RandomGraph(4, true);
  WriteEdgeListText(csr, Path("g.txt"));
  ExpectCsrEqual(csr, ReadEdgeListText(Path("g.txt")));
}

TEST_F(IoTest, TextSkipsComments) {
  std::ofstream out(Path("c.txt"));
  out << "# SNAP-style comment\n% matrix-market comment\n0 1\n1 2\n";
  out.close();
  Csr csr = ReadEdgeListText(Path("c.txt"));
  EXPECT_EQ(csr.NumEdges(), 2u);
  EXPECT_EQ(csr.NumVertices(), 3u);
}

TEST_F(IoTest, DatasetCacheHitSkipsGeneration) {
  std::string cache = (dir_ / "cache").string();
  Csr first = BuildDatasetCached("slashdot", cache, /*scale=*/0.05);
  ASSERT_TRUE(fs::exists(fs::path(cache)));
  Csr second = BuildDatasetCached("slashdot", cache, /*scale=*/0.05);
  ExpectCsrEqual(first, second);
}

TEST_F(IoTest, DatasetCacheKeyedByScale) {
  std::string cache = (dir_ / "cache").string();
  BuildDatasetCached("slashdot", cache, 0.05);
  BuildDatasetCached("slashdot", cache, 0.10);
  size_t files = 0;
  for (auto& entry : fs::directory_iterator(cache)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

TEST(Datasets, RegistryComplete) {
  EXPECT_EQ(AllDatasets().size(), 7u);
  EXPECT_TRUE(FindDataset("uk2005").has_value());
  EXPECT_FALSE(FindDataset("nope").has_value());
  EXPECT_EQ(FindDataset("rmat")->paper_name, "RMAT25");
}

TEST(Datasets, BuildDeterministic) {
  Csr a = BuildDataset("slashdot", 0.05);
  Csr b = BuildDataset("slashdot", 0.05);
  ExpectCsrEqual(a, b);
}

TEST(Datasets, AllBuildableAtSmokeScale) {
  for (const auto& info : AllDatasets()) {
    Csr csr = BuildDataset(info.name, /*scale=*/0.03);
    EXPECT_GT(csr.NumEdges(), 0u) << info.name;
    EXPECT_TRUE(csr.Validate()) << info.name;
    EXPECT_TRUE(csr.HasWeights()) << info.name;
    // The query source must reach something on every dataset.
    auto reach = ComputeReachability(csr, kQuerySource);
    EXPECT_GT(reach.visited, 1u) << info.name;
  }
}

}  // namespace
}  // namespace eta::graph
