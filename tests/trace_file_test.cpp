// Text trace-file parsing for etagraph_serve --trace: field forms,
// comments, defaults, and line-numbered diagnostics on every reject path.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "serve/trace_file.hpp"

namespace eta {
namespace {

using serve::kNoDeadline;
using serve::ParseTraceText;
using serve::Request;

TEST(TraceFile, ParsesAllFieldForms) {
  std::string error;
  auto trace = ParseTraceText(
      "# fleet replay, three request shapes\n"
      "0.0  bfs   7\n"
      "1.5  SSSP  12  4.5\n"
      "\n"
      "3.25 sswp  3   0    -2   # zero deadline = none; negative priority\n",
      &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->size(), 3u);

  const Request& a = (*trace)[0];
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(a.algo, core::Algo::kBfs);
  EXPECT_EQ(a.source, 7u);
  EXPECT_EQ(a.arrival_ms, 0.0);
  EXPECT_EQ(a.deadline_ms, kNoDeadline);
  EXPECT_EQ(a.priority, 0);

  const Request& b = (*trace)[1];
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(b.algo, core::Algo::kSssp);  // algo names are case-insensitive
  EXPECT_EQ(b.source, 12u);
  EXPECT_EQ(b.arrival_ms, 1.5);
  EXPECT_EQ(b.deadline_ms, 4.5);

  const Request& c = (*trace)[2];
  EXPECT_EQ(c.id, 2u);
  EXPECT_EQ(c.algo, core::Algo::kSswp);
  EXPECT_EQ(c.deadline_ms, kNoDeadline);  // explicit 0 means "no deadline"
  EXPECT_EQ(c.priority, -2);
}

TEST(TraceFile, EmptyAndCommentOnlyInputIsAnEmptyTrace) {
  std::string error;
  auto trace = ParseTraceText("# nothing here\n\n   \n", &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_TRUE(trace->empty());
}

TEST(TraceFile, RejectsWrongFieldCount) {
  std::string error;
  EXPECT_FALSE(ParseTraceText("0.0 bfs\n", &error).has_value());
  EXPECT_NE(error.find("trace line 1"), std::string::npos);
  EXPECT_NE(error.find("2 field(s)"), std::string::npos);

  EXPECT_FALSE(ParseTraceText("0 bfs 1 0 0 extra\n", &error).has_value());
  EXPECT_NE(error.find("6 field(s)"), std::string::npos);
}

TEST(TraceFile, RejectsBadArrival) {
  std::string error;
  EXPECT_FALSE(ParseTraceText("soon bfs 1\n", &error).has_value());
  EXPECT_NE(error.find("trace line 1"), std::string::npos);
  EXPECT_NE(error.find("bad arrival_ms 'soon'"), std::string::npos);

  EXPECT_FALSE(ParseTraceText("-1 bfs 1\n", &error).has_value());
  EXPECT_NE(error.find("bad arrival_ms '-1'"), std::string::npos);
}

TEST(TraceFile, RejectsUnknownAlgo) {
  std::string error;
  EXPECT_FALSE(ParseTraceText("0 bfs 1\n1 pagerank 2\n", &error).has_value());
  EXPECT_NE(error.find("trace line 2"), std::string::npos);
  EXPECT_NE(error.find("unknown algo 'pagerank'"), std::string::npos);
}

TEST(TraceFile, RejectsBadSourceDeadlineAndPriority) {
  std::string error;
  EXPECT_FALSE(ParseTraceText("0 bfs -3\n", &error).has_value());
  EXPECT_NE(error.find("bad source '-3'"), std::string::npos);

  EXPECT_FALSE(ParseTraceText("0 bfs 1 -0.5\n", &error).has_value());
  EXPECT_NE(error.find("bad deadline_ms '-0.5'"), std::string::npos);

  EXPECT_FALSE(ParseTraceText("0 bfs 1 0 99999999999\n", &error).has_value());
  EXPECT_NE(error.find("bad priority '99999999999'"), std::string::npos);
}

TEST(TraceFile, RejectsBackwardsArrivals) {
  std::string error;
  EXPECT_FALSE(ParseTraceText("5.0 bfs 1\n2.0 bfs 2\n", &error).has_value());
  EXPECT_NE(error.find("trace line 2"), std::string::npos);
  EXPECT_NE(error.find("arrival_ms goes backwards"), std::string::npos);
}

TEST(TraceFile, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(serve::LoadTraceFile("/nonexistent/trace.txt", &error).has_value());
  EXPECT_NE(error.find("cannot open trace file"), std::string::npos);
}

// --- Replay outcome files (--replay-out) --------------------------------------

TEST(ReplayFile, RoundTripsEveryTerminalStatus) {
  std::vector<serve::QueryResult> results;
  results.push_back({.id = 0,
                     .status = serve::QueryStatus::kOk,
                     .algo = core::Algo::kBfs,
                     .source = 7,
                     .reached_vertices = 401,
                     .batch_size = 3,
                     .arrival_ms = 0.5,
                     .start_ms = 1.25,
                     .finish_ms = 2.5});
  results.push_back({.id = 1,
                     .status = serve::QueryStatus::kRejected,
                     .algo = core::Algo::kSssp,
                     .source = 12});
  results.push_back({.id = 2,
                     .status = serve::QueryStatus::kTimedOut,
                     .algo = core::Algo::kSswp,
                     .source = 3});
  results.push_back({.id = 3,
                     .status = serve::QueryStatus::kDegraded,
                     .algo = core::Algo::kSssp,
                     .source = 9,
                     .reached_vertices = 17,
                     .batch_size = 0,  // no device launch behind a CPU answer
                     .start_ms = 4.0,
                     .finish_ms = 10.0625});

  std::string text = serve::RenderReplayText(results);
  std::string error;
  auto parsed = serve::ParseReplayText(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, results[i].id);
    EXPECT_EQ((*parsed)[i].status, results[i].status);
    EXPECT_EQ((*parsed)[i].algo, results[i].algo);
    EXPECT_EQ((*parsed)[i].source, results[i].source);
    EXPECT_EQ((*parsed)[i].reached_vertices, results[i].reached_vertices);
    EXPECT_EQ((*parsed)[i].batch_size, results[i].batch_size);
    EXPECT_DOUBLE_EQ((*parsed)[i].start_ms, results[i].start_ms);
    EXPECT_DOUBLE_EQ((*parsed)[i].finish_ms, results[i].finish_ms);
  }
  // Render is a pure function of the results: re-rendering the parse is
  // byte-identical, which is what makes replay files diffable.
  EXPECT_EQ(serve::RenderReplayText(*parsed), text);
}

TEST(ReplayFile, EmptyResultsRenderJustTheHeader) {
  std::string text = serve::RenderReplayText({});
  EXPECT_EQ(text, "# id status algo source reached batch start_ms finish_ms\n");
  std::string error;
  auto parsed = serve::ParseReplayText(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->empty());
}

TEST(ReplayFile, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(serve::ParseReplayText("0 ok bfs 7 10\n", &error).has_value());
  EXPECT_NE(error.find("replay line 1"), std::string::npos);
  EXPECT_NE(error.find("8 fields"), std::string::npos);

  EXPECT_FALSE(
      serve::ParseReplayText("0 exploded bfs 7 10 1 0 1\n", &error).has_value());
  EXPECT_NE(error.find("unknown status 'exploded'"), std::string::npos);

  EXPECT_FALSE(
      serve::ParseReplayText("0 ok pagerank 7 10 1 0 1\n", &error).has_value());
  EXPECT_NE(error.find("unknown algo 'pagerank'"), std::string::npos);

  EXPECT_FALSE(
      serve::ParseReplayText("0 ok bfs 7 10 1 5.0 1.0\n", &error).has_value());
  EXPECT_NE(error.find("finish_ms"), std::string::npos);

  EXPECT_FALSE(
      serve::ParseReplayText("0 ok bfs 7 10 99999999999 0 1\n", &error).has_value());
  EXPECT_NE(error.find("bad batch"), std::string::npos);
}

TEST(TraceFile, LoadRoundTripsThroughDisk) {
  std::string path = ::testing::TempDir() + "eta_trace_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0 bfs 4\n2.5 sssp 9 10 3\n", f);
  std::fclose(f);

  std::string error;
  auto trace = serve::LoadTraceFile(path, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_EQ((*trace)[1].source, 9u);
  EXPECT_EQ((*trace)[1].deadline_ms, 10.0);
  EXPECT_EQ((*trace)[1].priority, 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eta
