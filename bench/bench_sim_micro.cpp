// Google-benchmark microbenchmarks of the simulator substrate itself —
// host-side performance of the pieces every experiment leans on (cache
// probes, coalesced vs scattered gathers, UDC transform, R-MAT generation,
// CSR construction). These track the *simulator's* speed, not simulated
// GPU time; they exist so regressions in the hot paths show up.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/udc.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sim/cache.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"

namespace {

using namespace eta;

void BM_CacheAccess(benchmark::State& state) {
  sim::SectorCache cache(48 * util::kKiB, 4);
  util::SplitMix64 rng(1);
  uint64_t sector = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(sector));
    sector = rng.NextBounded(1 << 16);
  }
}
BENCHMARK(BM_CacheAccess);

void BM_GatherContiguous(benchmark::State& state) {
  sim::Device device;
  auto buf = device.Alloc<uint32_t>(1 << 20, sim::MemKind::kDevice, "data");
  for (auto _ : state) {
    device.Launch("k", {1 << 14}, [&](sim::WarpCtx& w) {
      sim::LaneArray<uint32_t> out{};
      w.GatherContiguous(buf, w.WarpId() * 32, w.ActiveMask(), out);
    });
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_GatherContiguous);

void BM_GatherScattered(benchmark::State& state) {
  sim::Device device;
  auto buf = device.Alloc<uint32_t>(1 << 20, sim::MemKind::kDevice, "data");
  for (auto _ : state) {
    device.Launch("k", {1 << 14}, [&](sim::WarpCtx& w) {
      sim::LaneArray<uint64_t> idx{};
      for (uint32_t lane = 0; lane < 32; ++lane) {
        idx[lane] = (w.GlobalThread(lane) * 2654435761u) & ((1 << 20) - 1);
      }
      sim::LaneArray<uint32_t> out{};
      w.Gather(buf, idx, w.ActiveMask(), out);
    });
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_GatherScattered);

void BM_GatherBulkK16(benchmark::State& state) {
  sim::Device device;
  auto buf = device.Alloc<uint32_t>(1 << 20, sim::MemKind::kDevice, "data");
  for (auto _ : state) {
    device.Launch("k", {1 << 12}, [&](sim::WarpCtx& w) {
      sim::LaneArray<uint64_t> start{};
      sim::LaneArray<uint32_t> count{};
      for (uint32_t lane = 0; lane < 32; ++lane) {
        start[lane] = (w.GlobalThread(lane) * 16) & ((1 << 20) - 1 - 16);
        count[lane] = 16;
      }
      uint32_t out[32 * 16];
      w.GatherBulk(buf, start, count, w.ActiveMask(), out, 16);
    });
  }
  state.SetItemsProcessed(state.iterations() * (1 << 12) * 16);
}
BENCHMARK(BM_GatherBulkK16);

void BM_UdcTransform(benchmark::State& state) {
  graph::RmatParams params;
  params.scale = 16;
  params.num_edges = 1 << 20;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  std::vector<graph::VertexId> active(csr.NumVertices());
  std::iota(active.begin(), active.end(), 0u);
  for (auto _ : state) {
    auto shadows = core::TransformActiveSet(csr, active, 16);
    benchmark::DoNotOptimize(shadows.data());
  }
  state.SetItemsProcessed(state.iterations() * csr.NumVertices());
}
BENCHMARK(BM_UdcTransform);

void BM_RmatGenerate(benchmark::State& state) {
  for (auto _ : state) {
    graph::RmatParams params;
    params.scale = 16;
    params.num_edges = 1 << 18;
    auto edges = graph::GenerateRmat(params);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 18));
}
BENCHMARK(BM_RmatGenerate);

void BM_BuildCsr(benchmark::State& state) {
  graph::RmatParams params;
  params.scale = 16;
  params.num_edges = 1 << 18;
  auto edges = graph::GenerateRmat(params);
  for (auto _ : state) {
    auto copy = edges;
    auto csr = graph::BuildCsr(std::move(copy));
    benchmark::DoNotOptimize(csr.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 18));
}
BENCHMARK(BM_BuildCsr);

void BM_UnifiedMemoryTouch(benchmark::State& state) {
  sim::DeviceSpec spec;
  sim::UnifiedMemory um(spec);
  um.SetDeviceBudget(spec.device_memory_bytes);
  um.Register(1 << 22, 64 * util::kMiB);
  util::SplitMix64 rng(3);
  for (auto _ : state) {
    uint64_t addr = (1 << 22) + rng.NextBounded(64 * util::kMiB);
    benchmark::DoNotOptimize(um.Touch(addr, false, 0.0));
  }
}
BENCHMARK(BM_UnifiedMemoryTouch);

}  // namespace

BENCHMARK_MAIN();
