// Tests for etaverify (src/verify, DESIGN.md section 12): happens-before
// construction over the stream DAG log, every finding kind on hand-built
// DAGs, zero-cost/bit-identity of the disabled log, report determinism,
// and the serve-level contract — the green shards x faults x async matrix
// verifies clean with zero false positives while each surgically planted
// DAG bug (dropped ready wait, swapped Record/Wait, double pre-stage) is
// reported with exact attribution even though the answers stay green.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/router.hpp"
#include "serve/trace.hpp"
#include "sim/stream.hpp"
#include "verify/verify.hpp"

namespace eta {
namespace {

using sim::DagAccess;
using sim::Event;
using sim::Stream;
using sim::StreamOpKind;
using sim::StreamScheduler;
using verify::DagFinding;
using verify::DagFindingKind;
using verify::DagReport;
using verify::VerifyDag;

StreamScheduler::LaunchOutcome Ok(double ms) { return {ms, false}; }

size_t CountKind(const DagReport& rep, DagFindingKind kind) {
  size_t n = 0;
  for (const DagFinding& f : rep.findings) n += (f.kind == kind) ? 1 : 0;
  return n;
}

const DagFinding* FindKind(const DagReport& rep, DagFindingKind kind) {
  for (const DagFinding& f : rep.findings) {
    if (f.kind == kind) return &f;
  }
  return nullptr;
}

// The canonical healthy dispatch DAG: stage writes the buffers on the copy
// stream, an event orders the dispatch stream's waves behind it, the host
// joins everything at the end.
void BuildCleanDag(StreamScheduler& sched) {
  Stream copy = sched.CreateStream("copy");
  Stream dispatch = sched.CreateStream("dispatch");
  Event ready = sched.CreateEvent();
  const uint32_t topo = sched.RegisterAlloc("g0/topo");
  const uint32_t state = sched.RegisterAlloc("g0/state");
  sched.CopyAsync(copy, StreamOpKind::kCopyH2D, 2.0, "stage");
  sched.AnnotateLastOp({{topo, true}, {state, true}});
  sched.Record(copy, ready);
  sched.Wait(dispatch, ready);
  sched.LaunchAsync(dispatch, "wave", [](double) { return Ok(1.0); });
  sched.AnnotateLastOp({{topo, false}, {state, true}});
  sched.HostJoinAll();
}

// --- Happens-before unit checks -----------------------------------------------

TEST(EtaVerify, CleanDispatchDagVerifiesClean) {
  StreamScheduler sched;
  sched.EnableDagLog();
  BuildCleanDag(sched);
  const DagReport rep = VerifyDag(sched);
  EXPECT_TRUE(rep.Clean()) << rep.Render(true);
  EXPECT_EQ(rep.Count(), 0u);
  EXPECT_EQ(rep.ops_checked, 4u);  // stage, record, wait, wave
  EXPECT_EQ(rep.streams_checked, 2u);
  EXPECT_EQ(rep.allocs_checked, 2u);
  EXPECT_EQ(rep.events_checked, 1u);
  // Clean renders empty in quiet mode, a summary header in verbose mode.
  EXPECT_TRUE(rep.Render(false).empty());
  EXPECT_NE(rep.Render(true).find("0 finding(s)"), std::string::npos);
}

TEST(EtaVerify, DisabledLogIsTriviallyCleanAndCostFree) {
  StreamScheduler off;
  StreamScheduler on;
  on.EnableDagLog();
  EXPECT_EQ(off.RegisterAlloc("x"), DagAccess::kNoAlloc);
  for (StreamScheduler* sched : {&off, &on}) {
    Stream a = sched->CreateStream("a");
    Stream b = sched->CreateStream("b");
    Event e = sched->CreateEvent();
    sched->CopyAsync(a, StreamOpKind::kCopyH2D, 2.0, "stage");
    sched->Record(a, e);
    sched->Wait(b, e);
    sched->LaunchAsync(b, "wave", [](double) { return Ok(1.0); });
  }
  // The log is pure host-side bookkeeping: the schedule is bit-identical.
  ASSERT_EQ(off.Ops().size(), on.Ops().size());
  for (size_t i = 0; i < off.Ops().size(); ++i) {
    EXPECT_EQ(off.Ops()[i].kind, on.Ops()[i].kind);
    EXPECT_DOUBLE_EQ(off.Ops()[i].start_ms, on.Ops()[i].start_ms);
    EXPECT_DOUBLE_EQ(off.Ops()[i].end_ms, on.Ops()[i].end_ms);
  }
  EXPECT_TRUE(off.DagNodes().empty());
  EXPECT_FALSE(on.DagNodes().empty());
  const DagReport rep = VerifyDag(off);
  EXPECT_TRUE(rep.Clean());
  EXPECT_EQ(rep.ops_checked, 0u);
}

TEST(EtaVerify, DroppedReadyWaitReportsRacesAndUseBeforeReady) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream copy = sched.CreateStream("copy");
  Stream dispatch = sched.CreateStream("dispatch");
  const uint32_t topo = sched.RegisterAlloc("g0/topo");
  const uint32_t state = sched.RegisterAlloc("g0/state");
  sched.CopyAsync(copy, StreamOpKind::kCopyH2D, 2.0, "stage");
  sched.AnnotateLastOp({{topo, true}, {state, true}});
  // No event edge: the wave happens to start after the copy only because
  // of engine timing — statically it races the staging write.
  sched.LaunchAsync(dispatch, "wave", [](double) { return Ok(1.0); });
  sched.AnnotateLastOp({{topo, false}, {state, true}});
  sched.HostJoinAll();

  const DagReport rep = VerifyDag(sched);
  ASSERT_FALSE(rep.Clean());
  const DagFinding* rw = FindKind(rep, DagFindingKind::kRaceReadWrite);
  ASSERT_NE(rw, nullptr) << rep.Render(true);
  EXPECT_EQ(rw->buffer, "g0/topo");
  EXPECT_EQ(rw->stream, "dispatch");
  EXPECT_EQ(rw->op, "wave");
  EXPECT_EQ(rw->peer_op, "stage");
  EXPECT_EQ(rw->peer_stream, "copy");
  const DagFinding* ww = FindKind(rep, DagFindingKind::kRaceWriteWrite);
  ASSERT_NE(ww, nullptr) << rep.Render(true);
  EXPECT_EQ(ww->buffer, "g0/state");
  const DagFinding* ubr = FindKind(rep, DagFindingKind::kUseBeforeReady);
  ASSERT_NE(ubr, nullptr) << rep.Render(true);
  EXPECT_EQ(ubr->buffer, "g0/topo");
  EXPECT_EQ(ubr->op, "wave");
}

TEST(EtaVerify, OrderedCrossStreamWritesDoNotRace) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream a = sched.CreateStream("a");
  Stream b = sched.CreateStream("b");
  Event e = sched.CreateEvent();
  const uint32_t buf = sched.RegisterAlloc("buf");
  sched.CopyAsync(a, StreamOpKind::kCopyH2D, 1.0, "first");
  sched.AnnotateLastOp({{buf, true}});
  sched.Record(a, e);
  sched.Wait(b, e);
  sched.CopyAsync(b, StreamOpKind::kCopyH2D, 1.0, "second");
  sched.AnnotateLastOp({{buf, true}});
  sched.HostJoinAll();
  EXPECT_TRUE(VerifyDag(sched).Clean());
}

TEST(EtaVerify, UnorderedDoubleWriteReportsWriteWriteRace) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream a = sched.CreateStream("a");
  Stream b = sched.CreateStream("b");
  const uint32_t buf = sched.RegisterAlloc("buf");
  sched.CopyAsync(a, StreamOpKind::kCopyH2D, 1.0, "first");
  sched.AnnotateLastOp({{buf, true}});
  sched.CopyAsync(b, StreamOpKind::kCopyH2D, 1.0, "second");
  sched.AnnotateLastOp({{buf, true}});
  sched.HostJoinAll();
  const DagReport rep = VerifyDag(sched);
  ASSERT_EQ(rep.findings.size(), 1u) << rep.Render(true);
  EXPECT_EQ(rep.findings[0].kind, DagFindingKind::kRaceWriteWrite);
  EXPECT_EQ(rep.findings[0].buffer, "buf");
  // Attributed to the later node, with the earlier write as its peer.
  EXPECT_EQ(rep.findings[0].op, "second");
  EXPECT_EQ(rep.findings[0].peer_op, "first");
}

TEST(EtaVerify, DistinctStagingEpochsNeverConflict) {
  // Evict/re-stage: the same graph staged twice registers fresh epoch
  // allocations, so the unordered copies are not a race.
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream a = sched.CreateStream("a");
  Stream b = sched.CreateStream("b");
  const uint32_t epoch0 = sched.RegisterAlloc("g0#0/topo");
  const uint32_t epoch1 = sched.RegisterAlloc("g0#1/topo");
  sched.CopyAsync(a, StreamOpKind::kCopyH2D, 1.0, "stage#0");
  sched.AnnotateLastOp({{epoch0, true}});
  sched.CopyAsync(b, StreamOpKind::kCopyH2D, 1.0, "stage#1");
  sched.AnnotateLastOp({{epoch1, true}});
  sched.HostJoinAll();
  EXPECT_TRUE(VerifyDag(sched).Clean());
}

TEST(EtaVerify, WaitOnNeverRecordedEventIsReported) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream a = sched.CreateStream("a");
  Event e = sched.CreateEvent();
  sched.Wait(a, e);
  sched.LaunchAsync(a, "wave", [](double) { return Ok(1.0); });
  sched.HostJoinAll();
  const DagReport rep = VerifyDag(sched);
  const DagFinding* f = FindKind(rep, DagFindingKind::kWaitUnrecorded);
  ASSERT_NE(f, nullptr) << rep.Render(true);
  EXPECT_EQ(f->stream, "a");
  EXPECT_NE(f->note.find("never recorded"), std::string::npos);
  EXPECT_EQ(CountKind(rep, DagFindingKind::kWaitCycle), 0u);
}

TEST(EtaVerify, SwappedRecordWaitPairIsDiagnosed) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream copy = sched.CreateStream("copy");
  Stream dispatch = sched.CreateStream("dispatch");
  Event ready = sched.CreateEvent();
  // The author meant Record-then-Wait; the wait lands first, so the
  // "dependency" is a snapshot no-op and the later record is unordered
  // with respect to it.
  sched.Wait(dispatch, ready);
  sched.CopyAsync(copy, StreamOpKind::kCopyH2D, 2.0, "stage");
  sched.Record(copy, ready);
  sched.LaunchAsync(dispatch, "wave", [](double) { return Ok(1.0); });
  sched.HostJoinAll();
  const DagReport rep = VerifyDag(sched);
  const DagFinding* f = FindKind(rep, DagFindingKind::kWaitUnrecorded);
  ASSERT_NE(f, nullptr) << rep.Render(true);
  EXPECT_EQ(f->stream, "dispatch");
  EXPECT_EQ(f->peer_stream, "copy");  // the too-late record
  EXPECT_NE(f->note.find("swapped"), std::string::npos);
}

TEST(EtaVerify, WaitOrderedBeforeItsOnlyRecordIsADeadlock) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream a = sched.CreateStream("a");
  Event e = sched.CreateEvent();
  // The wait precedes the only record *in program order on one stream*:
  // under blocking-wait semantics the wait can never be satisfied.
  sched.Wait(a, e);
  sched.Record(a, e);
  sched.HostJoinAll();
  const DagReport rep = VerifyDag(sched);
  const DagFinding* f = FindKind(rep, DagFindingKind::kWaitCycle);
  ASSERT_NE(f, nullptr) << rep.Render(true);
  EXPECT_EQ(f->stream, "a");
  // The cycle diagnosis supersedes the generic unrecorded-wait finding.
  EXPECT_EQ(CountKind(rep, DagFindingKind::kWaitUnrecorded), 0u);
}

TEST(EtaVerify, OrphanStreamIsReportedUntilJoined) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream a = sched.CreateStream("a");
  sched.LaunchAsync(a, "tail", [](double) { return Ok(1.0); });
  {
    const DagReport rep = VerifyDag(sched);
    const DagFinding* f = FindKind(rep, DagFindingKind::kOrphanStream);
    ASSERT_NE(f, nullptr) << rep.Render(true);
    EXPECT_EQ(f->stream, "a");
    EXPECT_EQ(f->op, "tail");
  }
  sched.HostJoinAll();
  EXPECT_TRUE(VerifyDag(sched).Clean());
}

TEST(EtaVerify, CancelledOpsCarryNoAccesses) {
  StreamScheduler sched;
  sched.EnableDagLog();
  Stream copy = sched.CreateStream("copy");
  Stream dispatch = sched.CreateStream("dispatch");
  const uint32_t topo = sched.RegisterAlloc("g0/topo");
  sched.CopyAsync(copy, StreamOpKind::kCopyH2D, 2.0, "stage");
  sched.AnnotateLastOp({{topo, true}});
  sched.LaunchAsync(dispatch, "dies",
                    [](double) { return StreamScheduler::LaunchOutcome{1.0, true}; });
  // Cancelled: the functor never ran, so even though the wave *would*
  // have read the topology unordered, no access is recorded and no race
  // may be reported for it.
  sched.LaunchAsync(dispatch, "wave", [](double) { return Ok(1.0); });
  sched.HostJoinAll();
  const DagReport rep = VerifyDag(sched);
  EXPECT_EQ(CountKind(rep, DagFindingKind::kRaceReadWrite), 0u) << rep.Render(true);
}

TEST(EtaVerify, ReportsAggregateRenderAndMergeDeterministically) {
  auto build = [] {
    StreamScheduler sched;
    sched.EnableDagLog();
    Stream copy = sched.CreateStream("copy");
    Stream dispatch = sched.CreateStream("dispatch");
    const uint32_t topo = sched.RegisterAlloc("g0/topo");
    sched.CopyAsync(copy, StreamOpKind::kCopyH2D, 2.0, "stage");
    sched.AnnotateLastOp({{topo, true}});
    // Two identical racing waves: one finding, two occurrences.
    for (int i = 0; i < 2; ++i) {
      sched.LaunchAsync(dispatch, "wave", [](double) { return Ok(1.0); });
      sched.AnnotateLastOp({{topo, false}});
    }
    sched.HostJoinAll();
    return VerifyDag(sched);
  };
  const DagReport a = build();
  const DagReport b = build();
  const DagFinding* f = FindKind(a, DagFindingKind::kRaceReadWrite);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->occurrences, 2u);
  EXPECT_EQ(a.Render(true), b.Render(true));
  EXPECT_EQ(a.Json(), b.Json());
  EXPECT_NE(a.Render(false).find("========= etaverify:"), std::string::npos);
  EXPECT_NE(a.Json().find("\"findings_total\""), std::string::npos);
  // Merge re-aggregates duplicates instead of double-listing them.
  DagReport merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.findings.size(), a.findings.size());
  EXPECT_EQ(merged.Count(), a.Count() + b.Count());
  EXPECT_EQ(merged.ops_checked, a.ops_checked + b.ops_checked);
}

// --- Serve-level: green matrix clean, every plant reported --------------------

graph::Csr RandomGraph(uint64_t seed) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  params.seed = seed;
  graph::Csr csr = graph::BuildCsr(graph::GenerateRmat(params));
  csr.DeriveWeights(seed * 3 + 1);
  return csr;
}

struct MultiGraphCase {
  std::vector<graph::Csr> storage;
  std::vector<const graph::Csr*> graphs;
  std::vector<serve::Request> trace;
};

// The multi-graph saturating burst from stream_test — the workload whose
// evictions and pre-stages exercise every DAG edge the verifier models.
MultiGraphCase BuildMultiGraphCase() {
  MultiGraphCase c;
  c.storage.push_back(RandomGraph(41));
  c.storage.push_back(RandomGraph(42));
  c.storage.push_back(RandomGraph(43));
  uint32_t min_vertices = c.storage[0].NumVertices();
  for (const graph::Csr& g : c.storage) {
    c.graphs.push_back(&g);
    min_vertices = std::min(min_vertices, g.NumVertices());
  }
  serve::TraceOptions trace_options;
  trace_options.num_requests = 60;
  trace_options.mean_interarrival_ms = 0.01;
  trace_options.seed = 2;
  c.trace = serve::GenerateTrace(min_vertices, trace_options);
  for (size_t i = 0; i < c.trace.size(); ++i) {
    c.trace[i].graph_id = static_cast<uint32_t>(i % c.graphs.size());
  }
  return c;
}

void ExpectSameAnswers(const serve::ServeReport& a, const serve::ServeReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].id, b.results[i].id);
    EXPECT_EQ(a.results[i].status, b.results[i].status) << "request " << a.results[i].id;
    EXPECT_EQ(a.results[i].reached_vertices, b.results[i].reached_vertices)
        << "request " << a.results[i].id;
  }
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.degraded, b.degraded);
}

TEST(EtaVerifyServe, GreenMatrixVerifiesCleanAcrossShardsAndFaults) {
  const MultiGraphCase c = BuildMultiGraphCase();
  for (uint32_t shards : {1u, 2u}) {
    for (bool faults : {false, true}) {
      serve::ShardedOptions options;
      options.shards = shards;
      options.base.queue_capacity = c.trace.size();
      options.async_dispatch = true;
      options.base.graph.verify_dag = true;
      if (faults) {
        options.base.graph.faults.seed = 7;
        options.base.graph.faults.ecc_uncorrectable_rate = 0.05;
        options.base.graph.faults.device_loss_rate = 0.01;
      }
      const serve::ServeReport report =
          serve::ShardedEngine(options).ServeMany(c.graphs, c.trace);
      EXPECT_TRUE(report.verify.Clean())
          << "shards=" << shards << " faults=" << faults << "\n"
          << report.verify.Render(true);
      EXPECT_GT(report.verify.ops_checked, 0u);
    }
  }
}

TEST(EtaVerifyServe, VerificationDoesNotPerturbTheSchedule) {
  const MultiGraphCase c = BuildMultiGraphCase();
  serve::ShardedOptions options;
  options.shards = 1;
  options.base.queue_capacity = c.trace.size();
  options.async_dispatch = true;
  const serve::ServeReport off = serve::ShardedEngine(options).ServeMany(c.graphs, c.trace);
  options.base.graph.verify_dag = true;
  const serve::ServeReport on = serve::ShardedEngine(options).ServeMany(c.graphs, c.trace);
  // Bit-identical serving output: the log is bookkeeping, not behavior.
  EXPECT_EQ(off.Render("fleet"), on.Render("fleet"));
  EXPECT_EQ(off.Json(), on.Json());
  EXPECT_TRUE(on.verify.Clean()) << on.verify.Render(true);
}

// Runs the multi-graph case with a surgical DAG plant. Every plant keeps
// the *dynamic* schedule and answers bit-identical to the healthy async
// run (the defect is invisible to replay diffs — timing luck); only the
// static verifier sees it.
serve::ServeReport RunPlanted(const MultiGraphCase& c,
                              serve::ShardedOptions::DagPlant plant,
                              const serve::ServeReport* healthy = nullptr) {
  serve::ShardedOptions options;
  options.shards = 1;
  options.base.queue_capacity = c.trace.size();
  options.async_dispatch = true;
  options.base.graph.verify_dag = true;
  options.plant = plant;
  serve::ServeReport report = serve::ShardedEngine(options).ServeMany(c.graphs, c.trace);
  if (healthy != nullptr) ExpectSameAnswers(*healthy, report);
  return report;
}

TEST(EtaVerifyServe, PlantedDroppedReadyWaitIsReported) {
  const MultiGraphCase c = BuildMultiGraphCase();
  const serve::ServeReport healthy =
      RunPlanted(c, serve::ShardedOptions::DagPlant::kNone);
  ASSERT_TRUE(healthy.verify.Clean()) << healthy.verify.Render(true);
  const serve::ServeReport report =
      RunPlanted(c, serve::ShardedOptions::DagPlant::kDropReadyWait, &healthy);
  ASSERT_FALSE(report.verify.Clean());
  // The wave reads topology the pre-stage copy writes, with the ordering
  // edge surgically removed: read/write race on the staged buffers plus a
  // consumer with no ordered staging write at all.
  const DagFinding* rw = FindKind(report.verify, DagFindingKind::kRaceReadWrite);
  ASSERT_NE(rw, nullptr) << report.verify.Render(true);
  EXPECT_NE(rw->buffer.find("/topo"), std::string::npos);
  EXPECT_NE(rw->peer_op.find("prestage"), std::string::npos);
  EXPECT_NE(FindKind(report.verify, DagFindingKind::kUseBeforeReady), nullptr)
      << report.verify.Render(true);
}

TEST(EtaVerifyServe, PlantedSwappedRecordWaitIsReported) {
  const MultiGraphCase c = BuildMultiGraphCase();
  const serve::ServeReport healthy =
      RunPlanted(c, serve::ShardedOptions::DagPlant::kNone);
  const serve::ServeReport report =
      RunPlanted(c, serve::ShardedOptions::DagPlant::kSwapRecordWait, &healthy);
  ASSERT_FALSE(report.verify.Clean());
  const DagFinding* f = FindKind(report.verify, DagFindingKind::kWaitUnrecorded);
  ASSERT_NE(f, nullptr) << report.verify.Render(true);
  EXPECT_NE(f->note.find("swapped"), std::string::npos);
}

TEST(EtaVerifyServe, PlantedDoublePrestageIsReported) {
  const MultiGraphCase c = BuildMultiGraphCase();
  const serve::ServeReport healthy =
      RunPlanted(c, serve::ShardedOptions::DagPlant::kNone);
  const serve::ServeReport report =
      RunPlanted(c, serve::ShardedOptions::DagPlant::kDoublePrestage, &healthy);
  ASSERT_FALSE(report.verify.Clean());
  // Two unordered writes of one topology buffer (the duplicate copy races
  // the real pre-stage), attributed to the dup op.
  const DagFinding* ww = FindKind(report.verify, DagFindingKind::kRaceWriteWrite);
  ASSERT_NE(ww, nullptr) << report.verify.Render(true);
  EXPECT_NE(ww->buffer.find("/topo"), std::string::npos);
  EXPECT_NE(ww->op.find("dup"), std::string::npos);
}

// The report's snprintf-into-string helper retries past its 512-byte stack
// buffer: op and buffer labels longer than the buffer survive
// Message/Render/Json untruncated.
TEST(DagReport, LongLabelsRenderUntruncated) {
  const std::string long_op(700, 'o');
  const std::string long_buffer(650, 'a');
  DagFinding f;
  f.kind = DagFindingKind::kRaceWriteWrite;
  f.stream = "s0";
  f.op = long_op;
  f.op_index = 1;
  f.buffer = long_buffer;
  f.peer_stream = "s1";
  f.peer_op = "peer";
  f.peer_index = 2;
  EXPECT_NE(f.Message().find(long_op), std::string::npos);
  EXPECT_NE(f.Message().find(long_buffer), std::string::npos);

  DagReport report;
  report.findings.push_back(f);
  report.ops_checked = 2;
  EXPECT_NE(report.Render().find(long_op), std::string::npos);
  EXPECT_NE(report.Json().find(long_op), std::string::npos);
  EXPECT_NE(report.Json().find(long_buffer), std::string::npos);
}

}  // namespace
}  // namespace eta
