// Deterministic synthetic request traces for the serving engine.
//
// Arrivals follow a Poisson process (exponential inter-arrival times drawn
// from util::SplitMix64), sources are uniform over the vertex set, and the
// algorithm/priority mix is sampled per request — all from independent,
// seeded streams, so a (seed, options) pair names one exact trace forever.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "serve/types.hpp"

namespace eta::serve {

struct TraceOptions {
  uint32_t num_requests = 64;
  /// Mean of the exponential inter-arrival distribution (Poisson process).
  double mean_interarrival_ms = 1.5;
  /// Algorithm mix: fraction of BFS and SSSP requests; the remainder are
  /// SSWP (which the batcher cannot fold — it exercises the sequential
  /// fallback path). Set sssp_fraction = 1 - bfs_fraction for no SSWP.
  double bfs_fraction = 0.5;
  double sssp_fraction = 0.35;
  /// Fraction of requests marked priority 1 ("interactive"); the rest are
  /// priority 0.
  double priority_fraction = 0.125;
  /// Queueing deadline applied to every request (kNoDeadline disables).
  double deadline_ms = kNoDeadline;
  uint64_t seed = 1;
};

/// Generates `options.num_requests` requests over sources in
/// [0, num_vertices), sorted by arrival time, ids 0..n-1 in arrival order.
std::vector<Request> GenerateTrace(graph::VertexId num_vertices,
                                   const TraceOptions& options);

}  // namespace eta::serve
