#include "graph/csr.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace eta::graph {

Csr::Csr(std::vector<EdgeId> row_offsets, std::vector<VertexId> col_indices)
    : row_offsets_(std::move(row_offsets)), col_indices_(std::move(col_indices)) {
  ETA_CHECK(!row_offsets_.empty());
  ETA_CHECK(row_offsets_.front() == 0);
  ETA_CHECK(row_offsets_.back() == col_indices_.size());
}

void Csr::SetWeights(std::vector<Weight> weights) {
  ETA_CHECK(weights.size() == col_indices_.size());
  weights_ = std::move(weights);
}

void Csr::DeriveWeights(uint64_t seed, Weight max_weight) {
  ETA_CHECK(max_weight >= 1);
  std::vector<Weight> weights(col_indices_.size());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (EdgeId e = row_offsets_[v]; e < row_offsets_[v + 1]; ++e) {
      uint64_t h = util::MixPair(util::MixPair(seed, v), col_indices_[e]);
      weights[e] = static_cast<Weight>(h % max_weight) + 1;
    }
  }
  weights_ = std::move(weights);
}

bool Csr::Validate() const {
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    if (row_offsets_[v] > row_offsets_[v + 1]) {
      ETA_LOG(Error) << "row offsets decrease at vertex " << v;
      return false;
    }
  }
  for (VertexId dst : col_indices_) {
    if (dst >= n) {
      ETA_LOG(Error) << "edge target " << dst << " out of range (n=" << n << ")";
      return false;
    }
  }
  if (!weights_.empty() && weights_.size() != col_indices_.size()) {
    ETA_LOG(Error) << "weight array size mismatch";
    return false;
  }
  return true;
}

Csr Csr::Transpose() const {
  const VertexId n = NumVertices();
  std::vector<EdgeId> in_degree(n + 1, 0);
  for (VertexId dst : col_indices_) ++in_degree[dst + 1];
  std::vector<EdgeId> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + in_degree[v + 1];
  std::vector<VertexId> targets(col_indices_.size());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId src = 0; src < n; ++src) {
    for (EdgeId e = row_offsets_[src]; e < row_offsets_[src + 1]; ++e) {
      targets[cursor[col_indices_[e]]++] = src;
    }
  }
  return Csr(std::move(offsets), std::move(targets));
}

}  // namespace eta::graph
