// EventSink — the single emission path shared by every serve-layer
// trace point: the always-on flight recorder records unconditionally,
// the per-request tracer only when --trace-requests armed it. Engines
// hold one sink and call Emit() at each lifecycle edge; with neither
// consumer attached Emit() is two untaken branches.
#pragma once

#include "trace/events.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/tracer.hpp"

namespace eta::trace {

struct EventSink {
  RequestTracer* tracer = nullptr;
  FlightRecorder* recorder = nullptr;

  void Emit(const TraceEvent& event) {
    if (recorder != nullptr) recorder->Record(event);
    if (tracer != nullptr) tracer->Record(event);
  }
};

}  // namespace eta::trace
