#include "baselines/cusha.hpp"

#include <algorithm>
#include <numeric>

#include "sim/device.hpp"
#include "util/check.hpp"

namespace eta::baselines {

namespace {

using core::Algo;
using graph::EdgeId;
using graph::VertexId;
using graph::Weight;
using sim::Buffer;
using sim::kWarpSize;
using sim::LaneArray;
using sim::WarpCtx;

struct DeviceState {
  // Shard-ordered, |E|-sized arrays (the G-Shards layout).
  Buffer<VertexId> shard_src;
  Buffer<VertexId> shard_dst;
  Buffer<Weight> shard_w;
  Buffer<Weight> src_val;   // per-edge source-value snapshot
  Buffer<Weight> dst_val;   // per-edge update slot (reduced into windows)
  Buffer<VertexId> cw_map;  // concatenated-windows refresh mapping
  // Update staging: CuSha's shards emit (window index, value) update pairs
  // that the apply phase reduces; both arrays are |E|-sized.
  Buffer<VertexId> update_idx;
  Buffer<Weight> update_val;
  Buffer<Weight> labels;
  Buffer<uint32_t> changed;
};

}  // namespace

Cusha::Shards Cusha::BuildShards(const graph::Csr& csr, uint32_t window_vertices) {
  ETA_CHECK(window_vertices >= 1);
  Shards shards;
  const EdgeId m = csr.NumEdges();
  const VertexId n = csr.NumVertices();
  std::vector<VertexId> src(m), dst(m);
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeId e = csr.RowStart(v); e < csr.RowEnd(v); ++e) {
      src[e] = v;
      dst[e] = csr.ColIndices()[e];
    }
  }
  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    uint32_t wa = dst[a] / window_vertices, wb = dst[b] / window_vertices;
    if (wa != wb) return wa < wb;
    if (src[a] != src[b]) return src[a] < src[b];
    return dst[a] < dst[b];
  });
  shards.src.resize(m);
  shards.dst.resize(m);
  if (csr.HasWeights()) shards.weight.resize(m);
  const uint32_t num_windows = (n + window_vertices - 1) / window_vertices;
  shards.shard_start.assign(num_windows + 1, 0);
  for (EdgeId i = 0; i < m; ++i) {
    EdgeId e = order[i];
    shards.src[i] = src[e];
    shards.dst[i] = dst[e];
    if (csr.HasWeights()) shards.weight[i] = csr.Weights()[e];
    ++shards.shard_start[dst[e] / window_vertices + 1];
  }
  for (uint32_t win = 0; win < num_windows; ++win) {
    shards.shard_start[win + 1] += shards.shard_start[win];
  }
  return shards;
}

core::RunReport Cusha::Run(const graph::Csr& csr, Algo algo, VertexId source) const {
  ETA_CHECK(source < csr.NumVertices());
  ETA_CHECK(!core::IsWeighted(algo) || csr.HasWeights());

  core::RunReport report;
  report.framework = "CuSha";
  report.algo = algo;

  const VertexId n = csr.NumVertices();
  const EdgeId m = csr.NumEdges();
  const bool weighted = core::IsWeighted(algo);

  Shards shards = BuildShards(csr, options_.window_vertices);  // preprocessing

  sim::Device device(options_.spec);
  DeviceState d;
  try {
    d.shard_src = device.Alloc<VertexId>(m, sim::MemKind::kDevice, "shard_src");
    d.shard_dst = device.Alloc<VertexId>(m, sim::MemKind::kDevice, "shard_dst");
    if (weighted) d.shard_w = device.Alloc<Weight>(m, sim::MemKind::kDevice, "shard_w");
    d.src_val = device.Alloc<Weight>(m, sim::MemKind::kDevice, "src_val");
    d.dst_val = device.Alloc<Weight>(m, sim::MemKind::kDevice, "dst_val");
    d.cw_map = device.Alloc<VertexId>(m, sim::MemKind::kDevice, "cw_map");
    d.update_idx = device.Alloc<VertexId>(m, sim::MemKind::kDevice, "update_idx");
    d.update_val = device.Alloc<Weight>(m, sim::MemKind::kDevice, "update_val");
    d.labels = device.Alloc<Weight>(n, sim::MemKind::kDevice, "labels");
    d.changed = device.Alloc<uint32_t>(1, sim::MemKind::kDevice, "changed");
  } catch (const sim::OomError& e) {
    report.oom = true;
    report.oom_request_bytes = e.requested_bytes;
    return report;
  }
  report.device_bytes_peak = device.Mem().DeviceBytesUsed();

  device.CopyToDevice(d.shard_src, std::span<const VertexId>(shards.src));
  device.CopyToDevice(d.shard_dst, std::span<const VertexId>(shards.dst));
  if (weighted) device.CopyToDevice(d.shard_w, std::span<const Weight>(shards.weight));
  device.CopyToDevice(d.cw_map, std::span<const VertexId>(shards.src));  // CW order

  std::vector<Weight> init_labels(n, core::InitLabel(algo, false));
  init_labels[source] = core::InitLabel(algo, true);
  device.CopyToDevice(d.labels, std::span<const Weight>(init_labels));

  std::span<Weight> labels_host = d.labels.HostSpan();
  double kernel_ms = 0;
  uint64_t activated_cum = 1;
  uint32_t changed = 1;
  const uint32_t zero[1] = {0};

  for (uint32_t iter = 1; changed > 0 && iter <= options_.max_iterations; ++iter) {
    device.CopyToDevice(d.changed, std::span<const uint32_t>(zero, 1), false);

    // ---- CW refresh: snapshot source values into the shards --------------
    // The concatenated-windows layout makes both the read of the vertex
    // values and the write into the shard-local array coalesced.
    auto refresh = device.Launch(
        "cusha_refresh", {m, options_.block_size}, [&](WarpCtx& w) {
          uint32_t mask = w.ActiveMask();
          if (!mask) return;
          uint64_t base = w.WarpId() * kWarpSize;
          LaneArray<Weight> vals{};
          // Coalesced read through the CW window (modeled as a contiguous
          // stream over the remapped value array).
          w.GatherContiguous(d.cw_map, base, mask, vals);
          w.ChargeAlu(1, mask);
          LaneArray<uint64_t> slot{};
          WarpCtx::ForActive(mask, [&](uint32_t lane) {
            slot[lane] = base + lane;
            vals[lane] = labels_host[shards.src[base + lane]];  // functional
          });
          w.Scatter(d.src_val, slot, vals, mask);
        });
    kernel_ms += refresh.compute_ms;

    // ---- Shard relaxation: stream every edge ------------------------------
    uint64_t improvements = 0;
    auto relax = device.Launch(
        "cusha_relax", {m, options_.block_size}, [&](WarpCtx& w) {
          uint32_t mask = w.ActiveMask();
          if (!mask) return;
          uint64_t base = w.WarpId() * kWarpSize;
          LaneArray<Weight> sval{};
          w.GatherContiguous(d.src_val, base, mask, sval);
          LaneArray<VertexId> dst{};
          w.GatherContiguous(d.shard_dst, base, mask, dst);
          LaneArray<Weight> ew{};
          if (weighted) w.GatherContiguous(d.shard_w, base, mask, ew);
          w.ChargeAlu(2, mask);

          // Compare/update against the shard's destination window, which
          // the block holds in shared memory.
          uint32_t imask = 0;
          LaneArray<Weight> cand{};
          WarpCtx::ForActive(mask, [&](uint32_t lane) {
            bool reached = core::IsWidest(algo) ? sval[lane] > 0 : sval[lane] != core::kInf;
            if (!reached) return;
            cand[lane] = core::Propagate(algo, sval[lane], ew[lane]);
            if (core::Improves(algo, cand[lane], labels_host[dst[lane]])) {
              imask |= 1u << lane;
            }
          });
          w.ChargeShared(1, mask);
          if (!imask) return;
          w.ChargeShared(1, imask);
          WarpCtx::ForActive(imask, [&](uint32_t lane) {
            labels_host[dst[lane]] = cand[lane];  // shared-memory reduction
            ++improvements;
          });
          // One flag store per warp that saw an improvement.
          LaneArray<uint64_t> zero_idx{};
          LaneArray<uint32_t> one{};
          one.fill(1);
          LaneArray<uint32_t> dummy{};
          uint32_t first = static_cast<uint32_t>(std::countr_zero(imask));
          w.AtomicAdd(d.changed, zero_idx, one, 1u << first, dummy);
        });
    kernel_ms += relax.compute_ms;

    // ---- Window apply: write reduced windows back to global values -------
    // Labels were already updated functionally through the shared-memory
    // model above, so this kernel only charges the read-window /
    // write-back traffic (one contiguous pass each way over the vertex
    // values) against a staging buffer.
    auto apply = device.Launch(
        "cusha_apply", {n, options_.block_size}, [&](WarpCtx& w) {
          uint32_t mask = w.ActiveMask();
          if (!mask) return;
          uint64_t base = w.WarpId() * kWarpSize;
          LaneArray<Weight> vals{};
          w.GatherContiguous(d.labels, base, mask, vals);
          LaneArray<uint64_t> slot{};
          WarpCtx::ForActive(mask, [&](uint32_t lane) { slot[lane] = base + lane; });
          w.Scatter(d.dst_val, slot, vals, mask);
        });
    kernel_ms += apply.compute_ms;

    device.CopyToHost(std::span<uint32_t>(&changed, 1), d.changed, false);
    activated_cum += improvements;
    report.iteration_stats.push_back(
        {iter, improvements, 0, device.NowMs(), activated_cum});
  }

  report.labels.resize(n);
  device.CopyToHost(std::span<Weight>(report.labels), d.labels);

  report.kernel_ms = kernel_ms;
  report.total_ms = device.NowMs();
  report.iterations = static_cast<uint32_t>(report.iteration_stats.size());
  for (Weight label : report.labels) {
    if (core::Reached(algo, label)) ++report.activated;
  }
  report.activated_fraction = n ? static_cast<double>(report.activated) / n : 0;
  report.counters = device.TotalCounters();
  report.timeline = device.GetTimeline();
  return report;
}

}  // namespace eta::baselines
