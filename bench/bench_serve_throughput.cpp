// Serving-throughput comparison: naive per-query vs persistent session vs
// session + multi-source batching, over the same deterministic 64-request
// trace. The serving layer's pitch in one table — the naive column pays
// allocation + full topology staging per query, the session column stages
// once, and the batched column additionally folds compatible BFS/SSSP
// requests into shared multi-source launches.
//
// Emits BENCH_serve.json (one JSON object per mode) next to the table.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace eta;

int main(int argc, char** argv) {
  auto env = bench::ParseBenchArgs(argc, argv, {"slashdot"});
  const auto requests = static_cast<uint32_t>(env.cl.GetInt("requests", 64));
  // Default arrival rate saturates the server (mean inter-arrival well under
  // one query's service time) — the regime where a serving layer matters.
  const double mean_arrival = env.cl.GetDouble("mean-arrival", 0.25);
  const uint64_t seed = static_cast<uint64_t>(env.cl.GetInt("seed", 1));
  const std::string json_path = env.cl.GetString("json", "BENCH_serve.json");

  const graph::Csr csr = [&] {
    graph::Csr g = bench::Load(env, env.datasets.front());
    if (!g.HasWeights()) g.DeriveWeights(1);
    return g;
  }();
  std::printf("dataset %s: %u vertices, %u edges\n", env.datasets.front().c_str(),
              csr.NumVertices(), csr.NumEdges());

  serve::TraceOptions trace_options;
  trace_options.num_requests = requests;
  trace_options.mean_interarrival_ms = mean_arrival;
  trace_options.seed = seed;
  const auto trace = serve::GenerateTrace(csr.NumVertices(), trace_options);

  const serve::ServeMode modes[] = {serve::ServeMode::kNaivePerQuery,
                                    serve::ServeMode::kSession,
                                    serve::ServeMode::kSessionBatched};
  std::vector<serve::ServeReport> reports;
  for (serve::ServeMode mode : modes) {
    serve::ServeOptions options;
    options.mode = mode;
    reports.push_back(serve::ServeEngine(options).Serve(csr, trace));
  }

  util::Table table({"Mode", "Makespan (ms)", "Throughput (qps)", "p50 (ms)",
                     "p95 (ms)", "Mean batch", "Completed"});
  for (const serve::ServeReport& r : reports) {
    table.AddRow({serve::ServeModeName(r.mode), util::FormatDouble(r.makespan_ms, 2),
                  util::FormatDouble(r.ThroughputQps(), 1),
                  util::FormatDouble(r.LatencyPercentileMs(0.50), 2),
                  util::FormatDouble(r.LatencyPercentileMs(0.95), 2),
                  util::FormatDouble(r.MeanBatchOccupancy(), 2),
                  std::to_string(r.completed)});
  }
  std::printf("%s\n", table.Render("Query serving — same trace, three modes").c_str());

  const double naive = reports[0].makespan_ms;
  const double session = reports[1].makespan_ms;
  const double batched = reports[2].makespan_ms;
  std::printf("note: session reuse is %.2fx faster than naive per-query; "
              "batching stretches that to %.2fx.\n",
              naive / session, naive / batched);

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < reports.size(); ++i) {
      std::fprintf(f, "  %s%s\n", reports[i].Json().c_str(),
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return batched < naive && session < naive ? 0 : 1;
}
