# Empty compiler generated dependencies file for etagraph_cli.
# This may be replaced when dependencies are built.
