// Quickstart: build a graph, run a traversal on the simulated GPU, read the
// results. This is the 60-second tour of the public API.
//
//   $ ./quickstart
//
#include <cstdio>

#include "core/framework.hpp"
#include "graph/builder.hpp"

using namespace eta;

int main() {
  // 1. Describe a directed graph as an edge list and build a CSR.
  //    (Real applications usually load one: see graph/io.hpp for the
  //    Galois .gr binary format and SNAP-style text edge lists.)
  std::vector<graph::Edge> edges = {
      {0, 1}, {0, 2}, {0, 3},          // a small hub...
      {1, 4}, {2, 4}, {3, 5},          // ...two hops out
      {4, 5}, {5, 6}, {6, 7}, {4, 7},  // and a tail
  };
  graph::Csr csr = graph::BuildCsr(edges);

  // 2. Attach deterministic edge weights (needed by SSSP/SSWP; BFS ignores
  //    them). Weights derive from a seed, so runs are reproducible.
  csr.DeriveWeights(/*seed=*/42, /*max_weight=*/9);

  // 3. Configure EtaGraph. Defaults reproduce the paper's configuration:
  //    Unified Memory with prefetch, Shared Memory Prefetch on, K=16.
  core::EtaGraphOptions options;
  options.degree_limit = 4;  // small graph, small degree cut

  // 4. Run BFS from vertex 0.
  core::EtaGraph framework(options);
  core::RunReport bfs = framework.Run(csr, core::Algo::kBfs, /*source=*/0);

  std::printf("BFS from vertex 0 (%u vertices, %u edges):\n", csr.NumVertices(),
              csr.NumEdges());
  for (graph::VertexId v = 0; v < csr.NumVertices(); ++v) {
    if (bfs.labels[v] == core::kInf) {
      std::printf("  vertex %u: unreachable\n", v);
    } else {
      std::printf("  vertex %u: %u hops\n", v, bfs.labels[v]);
    }
  }
  std::printf("simulated: %.3f ms total (%.3f ms in kernels), %u iterations\n\n",
              bfs.total_ms, bfs.kernel_ms, bfs.iterations);

  // 5. The same graph, now shortest paths and widest paths.
  core::RunReport sssp = framework.Run(csr, core::Algo::kSssp, 0);
  core::RunReport sswp = framework.Run(csr, core::Algo::kSswp, 0);
  std::printf("vertex 7: distance=%u, widest-path width=%u\n", sssp.labels[7],
              sswp.labels[7]);

  // 6. Every run is verifiable against the bundled CPU references.
  bool ok = sssp.labels == core::CpuReference(csr, core::Algo::kSssp, 0);
  std::printf("verified against CPU Dijkstra: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
