#include "cpu/reference.hpp"

#include <cmath>
#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace eta::cpu {

using graph::Csr;
using graph::VertexId;
using graph::Weight;

std::vector<Weight> BfsLevels(const Csr& csr, VertexId source) {
  ETA_CHECK(source < csr.NumVertices());
  std::vector<Weight> level(csr.NumVertices(), kInf);
  level[source] = 0;
  std::vector<VertexId> frontier{source}, next;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId v : frontier) {
      Weight nl = level[v] + 1;
      for (VertexId dst : csr.Neighbors(v)) {
        if (level[dst] == kInf) {
          level[dst] = nl;
          next.push_back(dst);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

std::vector<Weight> SsspDistances(const Csr& csr, VertexId source) {
  ETA_CHECK(source < csr.NumVertices());
  ETA_CHECK(csr.HasWeights());
  std::vector<Weight> dist(csr.NumVertices(), kInf);
  dist[source] = 0;
  using Entry = std::pair<Weight, VertexId>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0, source});
  auto weights = csr.Weights();
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;  // stale entry
    auto neighbors = csr.Neighbors(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      Weight w = weights[csr.RowStart(v) + i];
      Weight nd = d + w;
      if (nd < dist[neighbors[i]]) {
        dist[neighbors[i]] = nd;
        heap.push({nd, neighbors[i]});
      }
    }
  }
  return dist;
}

std::vector<Weight> SsspBellmanFord(const Csr& csr, VertexId source) {
  ETA_CHECK(source < csr.NumVertices());
  ETA_CHECK(csr.HasWeights());
  std::vector<Weight> dist(csr.NumVertices(), kInf);
  dist[source] = 0;
  auto weights = csr.Weights();
  std::vector<VertexId> frontier{source}, next;
  std::vector<uint8_t> queued(csr.NumVertices(), 0);
  while (!frontier.empty()) {
    next.clear();
    std::fill(queued.begin(), queued.end(), 0);
    for (VertexId v : frontier) {
      Weight d = dist[v];
      auto neighbors = csr.Neighbors(v);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        Weight nd = d + weights[csr.RowStart(v) + i];
        VertexId u = neighbors[i];
        if (nd < dist[u]) {
          dist[u] = nd;
          if (!queued[u]) {
            queued[u] = 1;
            next.push_back(u);
          }
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<Weight> SswpWidths(const Csr& csr, VertexId source) {
  ETA_CHECK(source < csr.NumVertices());
  ETA_CHECK(csr.HasWeights());
  std::vector<Weight> width(csr.NumVertices(), 0);
  width[source] = kInf;
  using Entry = std::pair<Weight, VertexId>;  // (width, vertex), max-heap
  std::priority_queue<Entry> heap;
  heap.push({kInf, source});
  auto weights = csr.Weights();
  while (!heap.empty()) {
    auto [wd, v] = heap.top();
    heap.pop();
    if (wd != width[v]) continue;
    auto neighbors = csr.Neighbors(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      Weight w = weights[csr.RowStart(v) + i];
      Weight nw = std::min(wd, w);
      if (nw > width[neighbors[i]]) {
        width[neighbors[i]] = nw;
        heap.push({nw, neighbors[i]});
      }
    }
  }
  return width;
}

std::vector<Weight> MinLabelPropagation(const Csr& csr) {
  std::vector<Weight> label(csr.NumVertices());
  for (VertexId v = 0; v < csr.NumVertices(); ++v) label[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < csr.NumVertices(); ++v) {
      for (VertexId dst : csr.Neighbors(v)) {
        if (label[v] < label[dst]) {
          label[dst] = label[v];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<double> PageRankReference(const Csr& csr, double damping, double epsilon,
                                      uint32_t max_iterations) {
  const VertexId n = csr.NumVertices();
  ETA_CHECK(n > 0);
  std::vector<double> rank(n, 1.0 / n), next(n);
  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (VertexId v = 0; v < n; ++v) {
      auto neighbors = csr.Neighbors(v);
      if (neighbors.empty()) continue;
      double share = damping * rank[v] / static_cast<double>(neighbors.size());
      for (VertexId dst : neighbors) next[dst] += share;
    }
    double delta = 0;
    for (VertexId v = 0; v < n; ++v) {
      delta = std::max(delta, std::abs(next[v] - rank[v]));
    }
    rank.swap(next);
    if (delta < epsilon) break;
  }
  return rank;
}

uint64_t CountReached(const std::vector<Weight>& labels, bool widest_path) {
  uint64_t count = 0;
  for (Weight label : labels) {
    if (widest_path ? label > 0 : label != kInf) ++count;
  }
  return count;
}

}  // namespace eta::cpu
