// Deterministic pseudo-random number generation.
//
// Every stochastic component of this repository (graph generators, edge
// weights, workload sweeps) derives from these generators with explicit
// seeds, so any experiment re-runs bit-identically. std::mt19937 is avoided
// on hot paths: SplitMix64 is ~5x faster and has a trivially splittable
// state, which the R-MAT generator exploits.
#pragma once

#include <cstdint>

namespace eta::util {

/// SplitMix64: tiny, fast, passes BigCrush. Used as both a generator and a
/// seeding/stream-splitting function.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound) {
    // Multiply-shift bounded rejection-free mapping (Lemire). The tiny
    // modulo bias is irrelevant for graph generation. __int128 is a GCC/
    // Clang extension; __extension__ keeps it clean under -Wpedantic.
    __extension__ typedef unsigned __int128 uint128;
    return static_cast<uint64_t>((static_cast<uint128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Derives an independent stream; deterministic function of (seed, tag).
  static SplitMix64 Stream(uint64_t seed, uint64_t tag) {
    SplitMix64 mixer(seed ^ (0x9e3779b97f4a7c15ULL * (tag + 1)));
    return SplitMix64(mixer.Next());
  }

 private:
  uint64_t state_;
};

/// Stateless 64-bit hash (Murmur3 finalizer). Used to derive deterministic
/// per-edge weights so that every framework sees identical weights without
/// storing a seed per edge.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash of an ordered pair; collision-free enough for weight derivation.
inline uint64_t MixPair(uint64_t a, uint64_t b) {
  return Mix64(a * 0x9e3779b97f4a7c15ULL + b + 0x165667b19e3779f9ULL);
}

}  // namespace eta::util
