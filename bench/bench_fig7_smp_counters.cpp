// Fig 7 reproduction: microarchitectural effect of Shared Memory Prefetch
// on BFS over LiveJournal, via the simulator's nvprof-equivalent counters.
// Paper ratios (SMP vs no SMP): IPC 1.42x, Unified-cache hit rate 1.02x,
// L2 hit rate 1.19x, ~2.2x read throughput at L2/Unified/global, and 0.48x
// global memory read transactions.
#include "bench_common.hpp"
#include "core/framework.hpp"

using namespace eta;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, {"livejournal"});

  for (const std::string& name : env.datasets) {
    graph::Csr csr = bench::Load(env, name);
    auto run = [&](bool smp) {
      core::EtaGraphOptions options;
      options.use_smp = smp;
      return core::EtaGraph(options).Run(csr, core::Algo::kBfs, graph::kQuerySource);
    };
    auto with = run(true);
    auto without = run(false);
    const sim::Counters& a = with.counters;
    const sim::Counters& b = without.counters;

    auto ratio = [](double x, double y) {
      return y > 0 ? util::FormatDouble(x / y, 2) + "x" : std::string("-");
    };
    util::Table table({"Metric (nvprof analog)", "SMP", "no SMP", "SMP/noSMP",
                       "paper"});
    table.AddRow({"ipc (per SM)", util::FormatDouble(a.IpcPerSm(28), 3),
                  util::FormatDouble(b.IpcPerSm(28), 3),
                  ratio(a.IpcPerSm(28), b.IpcPerSm(28)), "1.42x"});
    table.AddRow({"unified cache hit rate", util::FormatDouble(a.L1HitRate(), 3),
                  util::FormatDouble(b.L1HitRate(), 3),
                  ratio(a.L1HitRate(), b.L1HitRate()), "1.02x"});
    table.AddRow({"l2 read hit rate", util::FormatDouble(a.L2HitRate(), 3),
                  util::FormatDouble(b.L2HitRate(), 3),
                  ratio(a.L2HitRate(), b.L2HitRate()), "1.19x"});
    table.AddRow({"unified cache throughput (B/cyc)",
                  util::FormatDouble(a.L1Throughput(), 1),
                  util::FormatDouble(b.L1Throughput(), 1),
                  ratio(a.L1Throughput(), b.L1Throughput()), "~2.2x"});
    table.AddRow({"l2 read throughput (B/cyc)", util::FormatDouble(a.L2Throughput(), 1),
                  util::FormatDouble(b.L2Throughput(), 1),
                  ratio(a.L2Throughput(), b.L2Throughput()), "~2.2x"});
    table.AddRow({"dram read throughput (B/cyc)",
                  util::FormatDouble(a.DramThroughput(), 1),
                  util::FormatDouble(b.DramThroughput(), 1),
                  ratio(a.DramThroughput(), b.DramThroughput()), "~2.2x"});
    table.AddRow({"global load transactions", std::to_string(a.l1_accesses),
                  std::to_string(b.l1_accesses),
                  ratio(double(a.l1_accesses), double(b.l1_accesses)), "0.48x"});
    table.AddRow({"kernel time (ms)", util::FormatDouble(with.kernel_ms, 3),
                  util::FormatDouble(without.kernel_ms, 3),
                  ratio(with.kernel_ms, without.kernel_ms), "<1x"});
    std::printf("%s\n", table.Render("Fig 7 - SMP counters, BFS on " +
                                     graph::FindDataset(name)->paper_name)
                            .c_str());
  }
  std::printf("Known deviation: the sequential-warp cache model understates the IPC\n"
              "gain and inverts the small L2-hit-rate delta; transaction reduction and\n"
              "throughput direction match the paper. See EXPERIMENTS.md.\n");
  return 0;
}
