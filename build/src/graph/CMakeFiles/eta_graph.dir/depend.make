# Empty dependencies file for eta_graph.
# This may be replaced when dependencies are built.
