// etacheck — a compute-sanitizer analog for the simulated GPU.
//
// Attach with device.SetObserver(&sanitizer) *before* allocating buffers;
// the checker shadows every allocation and watches every warp memory
// operation the device executes:
//
//   memcheck   per-allocation shadow ranges: out-of-bounds element ranges,
//              use-after-free, and uninitialized reads tracked by per-word
//              valid bits seeded at CopyToDevice / MarkHostInitialized and
//              by device-side stores.
//   racecheck  a per-element access log scoped to one launch: two different
//              threads touching the same element where at least one side is
//              a plain store — i.e. a write that should have been an
//              AtomicMin/Max/Add/Or or a declared ScatterRelaxed.
//   synccheck  block barriers reached under divergent lane masks, and warps
//              of one block disagreeing on how many barriers they hit.
//   leakcheck  device buffers still allocated when the session's teardown
//              sweep (Device::ReportLeaks) runs — the cudaFree the serving
//              path forgot.
//
// All bookkeeping lives on the host side of the simulator: the checker
// never charges cycles, so a checked run reports exactly the counters and
// timings of an unchecked one. See DESIGN.md "The etacheck sanitizer".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "sanitizer/config.hpp"
#include "sanitizer/report.hpp"
#include "sim/observer.hpp"

namespace eta::sanitizer {

class Sanitizer : public sim::AccessObserver {
 public:
  explicit Sanitizer(Config config = Config::All());
  ~Sanitizer() override;

  const Config& Options() const { return config_; }
  const SanitizerReport& Report() const { return report_; }

  // sim::AccessObserver
  void OnAlloc(const sim::RawBuffer& buffer, const std::string& name) override;
  void OnFree(const sim::RawBuffer& buffer) override;
  void OnHostWrite(const sim::RawBuffer& buffer, uint64_t offset,
                   uint64_t bytes) override;
  void OnLaunchBegin(const std::string& label, const sim::LaunchConfig& config) override;
  void OnLaunchEnd() override;
  void OnDeviceAccess(const sim::DeviceAccess& access) override;
  void OnBarrier(uint64_t warp, uint64_t block, uint32_t arrive_mask,
                 uint32_t active_mask) override;
  void OnLeakedBuffer(const sim::RawBuffer& buffer, const std::string& name) override;

 private:
  /// Last-access state of one element within the current launch. Thread ids
  /// are stored +1 so zero means "untouched"; `epoch` versions the cell so
  /// the whole table resets per launch without a clearing pass.
  struct RaceCell {
    uint32_t epoch = 0;
    uint64_t reader = 0;
    uint64_t writer = 0;   // plain stores only
    uint64_t atomiker = 0; // atomics and relaxed stores
  };

  /// Shadow state of one allocation, keyed by the allocator's never-reused
  /// buffer id.
  struct Shadow {
    std::string name;
    uint64_t bytes = 0;  // page-rounded allocation size
    bool live = true;
    std::vector<uint64_t> valid;     // 1 bit per 4-byte word, lazily sized
    std::vector<RaceCell> cells;     // 1 per element, lazily sized
  };

  Shadow* FindShadow(uint64_t buffer_id);
  void AddFinding(FindingKind kind, const std::string& buffer_name, uint64_t elem_index,
                  uint64_t warp, uint32_t lane, uint64_t other_thread,
                  const std::string& note = "");
  void CheckMemory(Shadow& shadow, const sim::DeviceAccess& access, uint64_t begin,
                   uint64_t end);
  void CheckRace(Shadow& shadow, const sim::DeviceAccess& access, uint64_t begin,
                 uint64_t end);

  // Valid-bit helpers over 4-byte words of the allocation.
  static void MarkWords(std::vector<uint64_t>& valid, uint64_t first, uint64_t count);
  /// Returns the first invalid word in [first, first + count), or ~0 if all
  /// are valid.
  static uint64_t FirstInvalidWord(const std::vector<uint64_t>& valid, uint64_t first,
                                   uint64_t count);

  Config config_;
  SanitizerReport report_;
  std::unordered_map<uint64_t, Shadow> shadows_;

  // Aggregation: (kind, kernel, buffer name) -> index into report_.findings.
  std::map<std::tuple<FindingKind, std::string, std::string>, size_t> finding_index_;

  // Per-launch state.
  bool in_launch_ = false;
  uint32_t launch_epoch_ = 0;
  std::string kernel_;
  uint64_t step_ = 0;
  uint32_t warps_per_block_ = 1;
  uint64_t num_warps_ = 0;
  uint64_t num_threads_ = 0;
  std::vector<uint32_t> barrier_counts_;  // per warp, synccheck only
};

}  // namespace eta::sanitizer
