// Set-associative sector cache model.
//
// GPU L1/L2 caches serve 32-byte sector requests; a warp's coalesced access
// becomes one probe per distinct sector. This model is functional-free
// (tags only — data lives in host memory) and tracks hits/misses with true
// LRU within each set. Determinism: no randomness, no time — state depends
// only on the probe sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace eta::sim {

class SectorCache {
 public:
  /// capacity_bytes / sector_bytes sectors, organized `ways`-associative.
  /// The set count is rounded down to a power of two for cheap indexing.
  SectorCache(uint64_t capacity_bytes, uint32_t ways, uint32_t sector_bytes = 32);

  /// Probes for `sector` (an absolute sector index, i.e. address / 32).
  /// On miss the sector is filled, evicting the set's LRU way.
  /// Returns true on hit.
  bool Access(uint64_t sector);

  /// Probe without fill (used for write-through stores).
  bool Probe(uint64_t sector) const;

  /// Invalidate everything (e.g. when unified-memory pages are evicted the
  /// stale sectors must not produce phantom hits).
  void InvalidateAll();

  /// Invalidates all sectors within [first_sector, last_sector).
  void InvalidateRange(uint64_t first_sector, uint64_t last_sector);

  uint64_t Hits() const { return hits_; }
  uint64_t Accesses() const { return accesses_; }
  uint32_t NumSets() const { return num_sets_; }
  uint32_t Ways() const { return ways_; }

 private:
  struct Way {
    uint64_t tag = kEmptyTag;
    uint64_t stamp = 0;  // LRU timestamp
  };
  static constexpr uint64_t kEmptyTag = ~0ULL;

  uint32_t num_sets_;
  uint32_t set_mask_;
  uint32_t ways_;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t accesses_ = 0;
};

}  // namespace eta::sim
