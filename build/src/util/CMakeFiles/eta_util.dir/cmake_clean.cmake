file(REMOVE_RECURSE
  "CMakeFiles/eta_util.dir/cli.cpp.o"
  "CMakeFiles/eta_util.dir/cli.cpp.o.d"
  "CMakeFiles/eta_util.dir/logging.cpp.o"
  "CMakeFiles/eta_util.dir/logging.cpp.o.d"
  "CMakeFiles/eta_util.dir/table.cpp.o"
  "CMakeFiles/eta_util.dir/table.cpp.o.d"
  "CMakeFiles/eta_util.dir/units.cpp.o"
  "CMakeFiles/eta_util.dir/units.cpp.o.d"
  "libeta_util.a"
  "libeta_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
