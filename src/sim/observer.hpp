// Instrumentation hook for the simulated device — the attachment point the
// etacheck sanitizer (src/sanitizer/) uses to watch every allocation, host
// write, kernel launch, device memory access and block barrier.
//
// The observer is deliberately passive: it sees accesses *before* they
// execute but cannot veto or reprice them, so an attached observer changes
// neither the functional results nor a single simulated cycle. When no
// observer is attached (the default) the hooks reduce to one untaken branch
// per operation.
#pragma once

#include <cstdint>
#include <string>

#include "sim/memory.hpp"

namespace eta::sim {

struct LaunchConfig;

/// How a device-side memory operation touches a buffer.
enum class AccessKind : uint8_t {
  kRead,          // Gather / GatherContiguous / GatherBulk
  kWrite,         // Scatter (plain store)
  kRelaxedWrite,  // ScatterRelaxed (declared race-tolerant store)
  kAtomic,        // AtomicMin/Max/Add/Or (read-modify-write)
};

/// One warp-lane memory operation on a buffer, expressed as an element
/// range: [elem_index, elem_index + elem_count) of elem_bytes-sized
/// elements in a view of buffer_elems elements. The range is reported
/// *unclamped*, so out-of-bounds indices are visible to the observer even
/// though the simulator itself clamps before touching host memory.
struct DeviceAccess {
  const RawBuffer* buffer = nullptr;
  uint64_t elem_index = 0;
  uint64_t elem_count = 1;
  uint32_t elem_bytes = 0;
  uint64_t buffer_elems = 0;  // bound of the Buffer<T> view being accessed
  AccessKind kind = AccessKind::kRead;
  uint64_t warp = 0;
  uint32_t lane = 0;
};

/// Interface the device notifies when instrumentation is attached via
/// Device::SetObserver. Callbacks arrive in deterministic simulation order
/// (warps execute sequentially), so observers can reconstruct exact
/// interleavings without locks or timestamps.
class AccessObserver {
 public:
  virtual ~AccessObserver();

  /// A buffer came to life (Device::Alloc). `buffer.bytes` is the
  /// page-rounded allocation size; storage is zero-filled.
  virtual void OnAlloc(const RawBuffer& buffer, const std::string& name) {
    (void)buffer;
    (void)name;
  }

  /// The buffer was freed; its id is never reused.
  virtual void OnFree(const RawBuffer& buffer) { (void)buffer; }

  /// Leakcheck teardown sweep (Device::ReportLeaks): `buffer` is still
  /// allocated after the owning session tore down everything it meant to
  /// free.
  virtual void OnLeakedBuffer(const RawBuffer& buffer, const std::string& name) {
    (void)buffer;
    (void)name;
  }

  /// The host defined `bytes` bytes starting at byte `offset`: either a
  /// real CopyToDevice/CopyToDeviceRange or a Device::MarkHostInitialized
  /// annotation for data staged directly through HostSpan().
  virtual void OnHostWrite(const RawBuffer& buffer, uint64_t offset, uint64_t bytes) {
    (void)buffer;
    (void)offset;
    (void)bytes;
  }

  /// A kernel launch is about to run its warps.
  virtual void OnLaunchBegin(const std::string& label, const LaunchConfig& config) {
    (void)label;
    (void)config;
  }

  /// All warps of the current launch have retired.
  virtual void OnLaunchEnd() {}

  /// One lane's memory operation (called once per active lane, before the
  /// functional read/write happens).
  virtual void OnDeviceAccess(const DeviceAccess& access) { (void)access; }

  /// A warp reached a block-level barrier (WarpCtx::Barrier).
  /// `arrive_mask` is the lane mask the kernel arrived with; `active_mask`
  /// is the warp's launch-bound mask. Divergence between them is the
  /// synccheck hazard.
  virtual void OnBarrier(uint64_t warp, uint64_t block, uint32_t arrive_mask,
                         uint32_t active_mask) {
    (void)warp;
    (void)block;
    (void)arrive_mask;
    (void)active_mask;
  }
};

}  // namespace eta::sim
