#include "util/units.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace eta::util {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

uint64_t ParseBytes(const std::string& text) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  ETA_CHECK(end != text.c_str());
  ETA_CHECK(value >= 0);
  std::string suffix;
  for (; *end; ++end) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(*end)));
    if (c != 'i' && c != 'b') suffix.push_back(c);
  }
  uint64_t mult = 1;
  if (suffix == "k") {
    mult = kKiB;
  } else if (suffix == "m") {
    mult = kMiB;
  } else if (suffix == "g") {
    mult = kGiB;
  } else {
    ETA_CHECK(suffix.empty());
  }
  return static_cast<uint64_t>(value * static_cast<double>(mult));
}

}  // namespace eta::util
