#include "serve/overload.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace eta::serve {

HysteresisLadder::HysteresisLadder(std::vector<double> enter_thresholds, double hysteresis)
    : enter_(std::move(enter_thresholds)), hysteresis_(hysteresis) {
  ETA_CHECK(hysteresis_ > 0 && hysteresis_ <= 1.0);
  // A non-positive threshold disables its level and everything above.
  for (size_t i = 0; i < enter_.size(); ++i) {
    if (enter_[i] <= 0) {
      enter_.resize(i);
      break;
    }
    ETA_CHECK(i == 0 || enter_[i] >= enter_[i - 1]);
  }
}

uint32_t HysteresisLadder::Update(double value, double now_ms) {
  uint32_t target = level_;
  while (target < enter_.size() && value >= enter_[target]) ++target;
  while (target > 0 && value < enter_[target - 1] * hysteresis_) --target;
  if (target != level_) {
    transitions_.push_back({now_ms, level_, target});
    level_ = target;
    max_level_ = std::max(max_level_, level_);
  }
  return level_;
}

bool CircuitBreaker::AllowRoute(double now_ms, bool queue_empty) {
  if (!Enabled()) return true;
  switch (state_) {
    case State::kClosed: return true;
    case State::kOpen:
      if (now_ms < open_until_ms_) return false;
      // Transition only; the probe is counted by OnProbeAdmitted() when a
      // request actually enters the shard's queue. The old code counted
      // here, so a denied route (queue not empty) still showed up in
      // serve_breaker_probes while a probe admitted later from the
      // half-open state never did.
      state_ = State::kHalfOpen;
      return queue_empty;
    case State::kHalfOpen:
      // One probe in flight at a time: admit only into an empty queue.
      return queue_empty;
  }
  return true;
}

bool CircuitBreaker::WouldAllow(double now_ms, bool queue_empty) const {
  if (!Enabled()) return true;
  switch (state_) {
    case State::kClosed: return true;
    case State::kOpen: return now_ms >= open_until_ms_ && queue_empty;
    case State::kHalfOpen: return queue_empty;
  }
  return true;
}

void CircuitBreaker::OnProbeAdmitted() {
  if (!Enabled()) return;
  if (state_ == State::kHalfOpen) ++probes_;
}

void CircuitBreaker::OnDispatchSuccess() {
  if (!Enabled()) return;
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::OnDispatchFailure(double now_ms) {
  if (!Enabled()) return;
  if (state_ == State::kHalfOpen) ++probe_failures_;
  // Exponent capped so a long failure streak cannot overflow to infinity.
  const uint32_t streak = std::min(consecutive_failures_, 20u);
  open_until_ms_ = now_ms + options_.cooldown_ms * std::pow(options_.backoff, streak);
  ++consecutive_failures_;
  ++opens_;
  state_ = State::kOpen;
}

void FinalizeOverloadReport(const OverloadOptions& options, const core::RetryBudget* budget,
                            ServeReport* report) {
  ETA_CHECK(report != nullptr);
  OverloadStats& o = report->overload;
  o.shed_configured = options.slo_admission || options.shed_bronze_backlog_ms > 0 ||
                      options.shed_silver_backlog_ms > 0;
  o.brownout_configured =
      options.brownout_bronze_backlog_ms > 0 || options.brownout_silver_backlog_ms > 0;
  o.budget_configured = budget != nullptr && budget->Enabled();
  o.breaker_configured = options.breaker_cooldown_ms > 0;
  if (budget != nullptr) {
    const core::RetryBudget::Stats& b = budget->stats();
    o.retry_granted = b.retries_granted;
    o.retry_denied = b.retries_denied;
    o.rebuild_granted = b.rebuilds_granted;
    o.rebuild_denied = b.rebuilds_denied;
  }

  // Per-class accounting from the per-request outcomes (works identically
  // for the single engine and the sharded fleet).
  constexpr size_t kClasses = 4;  // indexed by SloClass
  struct Acc {
    SloStat stat;
    FixedHistogram latency{LatencyBucketsMs()};
  };
  std::vector<Acc> acc(kClasses);
  report->shedded = 0;
  for (const QueryResult& r : report->results) {
    if (r.status == QueryStatus::kShedded) ++report->shedded;
    if (r.slo == SloClass::kNone) continue;
    o.slo_active = true;
    Acc& a = acc[static_cast<size_t>(r.slo)];
    SloStat& s = a.stat;
    s.slo = r.slo;
    s.slo_target_ms = SloTargetMs(options, r.slo);
    ++s.offered;
    switch (r.status) {
      case QueryStatus::kOk: ++s.ok; break;
      case QueryStatus::kDegraded: ++s.degraded; break;
      case QueryStatus::kShedded: ++s.shedded; break;
      case QueryStatus::kTimedOut: ++s.timed_out; break;
      case QueryStatus::kRejected: ++s.rejected; break;
    }
    if (r.status == QueryStatus::kOk || r.status == QueryStatus::kDegraded) {
      const double latency = r.LatencyMs();
      a.latency.Observe(latency);
      if (latency <= s.slo_target_ms) ++s.slo_met;
    }
  }
  report->slo_stats.clear();
  for (size_t c = 1; c < kClasses; ++c) {
    if (acc[c].stat.offered == 0) continue;
    acc[c].stat.p50_ms = acc[c].latency.Percentile(50);
    acc[c].stat.p99_ms = acc[c].latency.Percentile(99);
    report->slo_stats.push_back(acc[c].stat);
  }

  // Prometheus families — appended after the engine's own families, and
  // only for features that are live, so the legacy exposition stays
  // byte-identical (MetricsRegistry renders in insertion order).
  MetricsRegistry& m = report->metrics;
  for (const SloStat& s : report->slo_stats) {
    const std::string cls = SloClassName(s.slo);
    auto count = [&](const char* status, uint64_t value) {
      m.GetCounter("serve_slo_requests_total", "Requests by SLO class and outcome",
                   {{"class", cls}, {"status", status}})
          .Inc(static_cast<double>(value));
    };
    count("ok", s.ok);
    count("degraded", s.degraded);
    count("shedded", s.shedded);
    count("timed-out", s.timed_out);
    count("rejected", s.rejected);
    m.GetCounter("serve_slo_met_total", "Completions within the class SLO target",
                 {{"class", cls}})
        .Inc(static_cast<double>(s.slo_met));
    m.GetGauge("serve_slo_goodput", "slo_met / offered per class", {{"class", cls}})
        .Set(s.Goodput());
    FixedHistogram& h =
        m.GetHistogram("serve_slo_latency_ms", "Completion latency by SLO class",
                       LatencyBucketsMs(), {{"class", cls}});
    for (const QueryResult& r : report->results) {
      if (r.slo == s.slo &&
          (r.status == QueryStatus::kOk || r.status == QueryStatus::kDegraded)) {
        h.Observe(r.LatencyMs());
      }
    }
  }
  if (o.Active()) {
    m.GetCounter("serve_shedded_total", "Requests shed at admission")
        .Inc(static_cast<double>(report->shedded));
  }
  if (o.brownout_configured) {
    m.GetGauge("serve_brownout_level", "Brownout ladder level at end of replay")
        .Set(o.brownout_level);
    m.GetCounter("serve_brownout_transitions_total", "Brownout ladder level changes")
        .Inc(static_cast<double>(o.brownout_transitions.size()));
    m.GetCounter("serve_brownout_degraded_total",
                 "Requests degraded to the CPU fallback by the brownout ladder")
        .Inc(static_cast<double>(o.brownout_degraded));
  }
  if (o.budget_configured) {
    m.GetCounter("serve_retry_budget_granted_total", "Retry-budget tokens granted",
                 {{"kind", "retry"}})
        .Inc(static_cast<double>(o.retry_granted));
    m.GetCounter("serve_retry_budget_granted_total", "Retry-budget tokens granted",
                 {{"kind", "rebuild"}})
        .Inc(static_cast<double>(o.rebuild_granted));
    m.GetCounter("serve_retry_budget_denied_total", "Retry-budget draws denied",
                 {{"kind", "retry"}})
        .Inc(static_cast<double>(o.retry_denied));
    m.GetCounter("serve_retry_budget_denied_total", "Retry-budget draws denied",
                 {{"kind", "rebuild"}})
        .Inc(static_cast<double>(o.rebuild_denied));
  }
  if (o.breaker_configured) {
    m.GetCounter("serve_breaker_opens_total", "Circuit-breaker open transitions")
        .Inc(static_cast<double>(o.breaker_opens));
    m.GetCounter("serve_breaker_probes_total", "Half-open probe dispatches")
        .Inc(static_cast<double>(o.breaker_probes));
    m.GetCounter("serve_breaker_probe_failures_total", "Probe dispatches that failed")
        .Inc(static_cast<double>(o.breaker_probe_failures));
  }
}

}  // namespace eta::serve
