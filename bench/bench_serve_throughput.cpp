// Serving-throughput comparison: naive per-query vs persistent session vs
// session + multi-source batching, over the same deterministic 64-request
// trace — then the sharded fleet at 1 and 4 shards on the same trace. The
// serving layer's pitch in one table: the naive column pays allocation +
// full topology staging per query, the session column stages once, the
// batched column folds compatible BFS/SSSP requests into shared
// multi-source launches, and the sharded rows show the fleet's scaling
// under a saturating load (4 shards must clear at least twice the
// throughput of 1).
//
// Emits BENCH_serve.json (one JSON object per row) next to the table.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace eta;

int main(int argc, char** argv) {
  auto env = bench::ParseBenchArgs(argc, argv, {"slashdot"});
  const auto requests = static_cast<uint32_t>(env.cl.GetInt("requests", 64));
  // Default arrival rate saturates the server (mean inter-arrival well under
  // one query's service time) — the regime where a serving layer matters.
  const double mean_arrival = env.cl.GetDouble("mean-arrival", 0.25);
  const uint64_t seed = static_cast<uint64_t>(env.cl.GetInt("seed", 1));
  const std::string json_path = env.cl.GetString("json", "BENCH_serve.json");

  const graph::Csr csr = [&] {
    graph::Csr g = bench::Load(env, env.datasets.front());
    if (!g.HasWeights()) g.DeriveWeights(1);
    return g;
  }();
  std::printf("dataset %s: %u vertices, %u edges\n", env.datasets.front().c_str(),
              csr.NumVertices(), csr.NumEdges());

  serve::TraceOptions trace_options;
  trace_options.num_requests = requests;
  trace_options.mean_interarrival_ms = mean_arrival;
  trace_options.seed = seed;
  const auto trace = serve::GenerateTrace(csr.NumVertices(), trace_options);

  const serve::ServeMode modes[] = {serve::ServeMode::kNaivePerQuery,
                                    serve::ServeMode::kSession,
                                    serve::ServeMode::kSessionBatched};
  std::vector<std::string> labels;
  std::vector<serve::ServeReport> reports;
  for (serve::ServeMode mode : modes) {
    serve::ServeOptions options;
    options.mode = mode;
    labels.push_back(serve::ServeModeName(mode));
    reports.push_back(serve::ServeEngine(options).Serve(csr, trace));
  }
  // The sharded rows replay a burst trace (near-simultaneous arrivals):
  // with the default arrival spacing the trace span itself floors the
  // makespan and hides fleet scaling.
  serve::TraceOptions burst_options = trace_options;
  burst_options.num_requests = requests * 4;  // long enough to amortize staging
  burst_options.mean_interarrival_ms = 0.01;
  const auto burst = serve::GenerateTrace(csr.NumVertices(), burst_options);
  for (uint32_t shard_count : {1u, 4u}) {
    serve::ShardedOptions options;
    options.shards = shard_count;
    // Admit the whole burst regardless of shard count, so both rows serve
    // identical work and the ratio is pure fleet scaling.
    options.base.queue_capacity = burst.size();
    labels.push_back("sharded x" + std::to_string(shard_count) + " (burst)");
    reports.push_back(serve::ShardedEngine(options).Serve(csr, burst));
  }

  util::Table table({"Mode", "Makespan (ms)", "Throughput (qps)", "p50 (ms)",
                     "p95 (ms)", "Mean batch", "Completed"});
  for (size_t i = 0; i < reports.size(); ++i) {
    const serve::ServeReport& r = reports[i];
    table.AddRow({labels[i], util::FormatDouble(r.makespan_ms, 2),
                  util::FormatDouble(r.ThroughputQps(), 1),
                  util::FormatDouble(r.LatencyPercentileMs(0.50), 2),
                  util::FormatDouble(r.LatencyPercentileMs(0.95), 2),
                  util::FormatDouble(r.MeanBatchOccupancy(), 2),
                  std::to_string(r.completed)});
  }
  std::printf("%s\n",
              table.Render("Query serving — same trace, three modes + shards").c_str());

  const double naive = reports[0].makespan_ms;
  const double session = reports[1].makespan_ms;
  const double batched = reports[2].makespan_ms;
  std::printf("note: session reuse is %.2fx faster than naive per-query; "
              "batching stretches that to %.2fx.\n",
              naive / session, naive / batched);
  const double one_shard_qps = reports[3].ThroughputQps();
  const double four_shard_qps = reports[4].ThroughputQps();
  std::printf("note: 4 shards clear %.2fx the throughput of 1 shard on the "
              "saturating trace.\n",
              four_shard_qps / one_shard_qps);

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < reports.size(); ++i) {
      std::fprintf(f, "  %s%s\n", reports[i].Json().c_str(),
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  // Gates: the serving layer must beat naive, and the fleet must scale.
  if (!(batched < naive && session < naive)) return 1;
  if (!(four_shard_qps >= 2.0 * one_shard_qps)) {
    std::printf("FAIL: 4-shard throughput %.1f qps < 2x 1-shard %.1f qps\n",
                four_shard_qps, one_shard_qps);
    return 1;
  }
  return 0;
}
