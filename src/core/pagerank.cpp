#include "core/pagerank.hpp"

#include <algorithm>
#include <cmath>

#include "core/udc.hpp"
#include "sanitizer/sanitizer.hpp"
#include "sim/device.hpp"
#include "util/check.hpp"

namespace eta::core {

namespace {

using graph::EdgeId;
using graph::VertexId;
using sim::Buffer;
using sim::kWarpSize;
using sim::LaneArray;
using sim::WarpCtx;

constexpr uint32_t kMaxK = 48;

struct PrState {
  Buffer<EdgeId> row;
  Buffer<VertexId> col;
  Buffer<float> rank;
  Buffer<float> next;
  Buffer<float> inv_deg;  // 1/out_degree, 0 for sinks
  // Static virtual active set: every vertex, cut at K, built once.
  Buffer<VertexId> shadow_id;
  Buffer<EdgeId> shadow_start;
  Buffer<EdgeId> shadow_end;
  Buffer<float> delta_max;  // single-cell reduction target
};

}  // namespace

PageRankResult RunPageRank(const graph::Csr& csr, const PageRankOptions& options) {
  ETA_CHECK(options.degree_limit >= 1 && options.degree_limit <= kMaxK);
  ETA_CHECK(csr.NumVertices() > 0);

  PageRankResult result;
  const VertexId n = csr.NumVertices();
  const EdgeId m = csr.NumEdges();
  const uint32_t k = options.degree_limit;
  const bool unified = options.memory_mode != MemoryMode::kExplicitCopy;
  const sim::MemKind topo_kind = unified ? sim::MemKind::kUnified : sim::MemKind::kDevice;

  sanitizer::Sanitizer checker(options.check);
  sim::Device device(options.spec);
  if (options.check.Enabled()) device.SetObserver(&checker);
  PrState d;
  // Host-side UDC of the full vertex set (static, reused every iteration;
  // the device transform is exercised by the traversal path — here the
  // shadow list is part of the uploaded input, like any preprocessed
  // worklist).
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  auto shadows = TransformActiveSet(csr, all, k);
  const uint64_t num_shadows = shadows.size();

  try {
    d.row = device.Alloc<EdgeId>(n + 1, topo_kind, "row");
    d.col = device.Alloc<VertexId>(m, topo_kind, "col");
    d.rank = device.Alloc<float>(n, sim::MemKind::kDevice, "rank");
    d.next = device.Alloc<float>(n, sim::MemKind::kDevice, "next");
    d.inv_deg = device.Alloc<float>(n, sim::MemKind::kDevice, "inv_deg");
    d.shadow_id = device.Alloc<VertexId>(num_shadows + 1, sim::MemKind::kDevice, "sh_id");
    d.shadow_start =
        device.Alloc<EdgeId>(num_shadows + 1, sim::MemKind::kDevice, "sh_start");
    d.shadow_end = device.Alloc<EdgeId>(num_shadows + 1, sim::MemKind::kDevice, "sh_end");
    d.delta_max = device.Alloc<float>(1, sim::MemKind::kDevice, "delta");
  } catch (const sim::OomError&) {
    result.oom = true;
    return result;
  }

  // Stage inputs.
  if (unified) {
    std::copy(csr.RowOffsets().begin(), csr.RowOffsets().end(), d.row.HostSpan().begin());
    std::copy(csr.ColIndices().begin(), csr.ColIndices().end(), d.col.HostSpan().begin());
    device.MarkHostInitialized(d.row);
    device.MarkHostInitialized(d.col);
  } else {
    device.CopyToDevice(d.row, csr.RowOffsets());
    device.CopyToDevice(d.col, csr.ColIndices());
  }
  {
    std::vector<float> inv(n, 0.f), rank0(n, 1.0f / static_cast<float>(n));
    for (VertexId v = 0; v < n; ++v) {
      if (EdgeId deg = csr.OutDegree(v); deg > 0) inv[v] = 1.0f / static_cast<float>(deg);
    }
    device.CopyToDevice(d.inv_deg, std::span<const float>(inv));
    device.CopyToDevice(d.rank, std::span<const float>(rank0));
    std::vector<VertexId> ids(num_shadows);
    std::vector<EdgeId> starts(num_shadows), ends(num_shadows);
    for (uint64_t i = 0; i < num_shadows; ++i) {
      ids[i] = shadows[i].id;
      starts[i] = shadows[i].start;
      ends[i] = shadows[i].end;
    }
    device.CopyToDevice(d.shadow_id, std::span<const VertexId>(ids));
    device.CopyToDevice(d.shadow_start, std::span<const EdgeId>(starts));
    device.CopyToDevice(d.shadow_end, std::span<const EdgeId>(ends));
  }
  if (options.memory_mode == MemoryMode::kUnifiedPrefetch) {
    device.PrefetchAsync(d.row);
    device.PrefetchAsync(d.col);
  }
  // delta_max relies on alloc-time zero fill: the first iteration's
  // AtomicMax reads it before any host write reaches it.
  device.MarkHostInitialized(d.delta_max);

  const float base_rank =
      (1.0f - static_cast<float>(options.damping)) / static_cast<float>(n);
  const auto damping = static_cast<float>(options.damping);
  double kernel_ms = 0;

  for (uint32_t iter = 1; iter <= options.max_iterations; ++iter) {
    // --- init kernel: next[v] = (1-d)/n -----------------------------------
    auto init = device.Launch("pr_init", {n, options.block_size}, [&](WarpCtx& w) {
      uint32_t mask = w.ActiveMask();
      if (!mask) return;
      uint64_t base = w.WarpId() * kWarpSize;
      LaneArray<uint64_t> slot{};
      LaneArray<float> val{};
      WarpCtx::ForActive(mask, [&](uint32_t lane) {
        slot[lane] = base + lane;
        val[lane] = base_rank;
      });
      w.Scatter(d.next, slot, val, mask);
    });
    kernel_ms += init.compute_ms;

    // --- push kernel over the static virtual active set --------------------
    auto push = device.Launch(
        "pr_push", {num_shadows, options.block_size}, [&](WarpCtx& w) {
          uint32_t mask = w.ActiveMask();
          if (!mask) return;
          uint64_t base = w.WarpId() * kWarpSize;
          LaneArray<VertexId> id{};
          LaneArray<EdgeId> start{}, end{};
          w.GatherContiguous(d.shadow_id, base, mask, id);
          w.GatherContiguous(d.shadow_start, base, mask, start);
          w.GatherContiguous(d.shadow_end, base, mask, end);

          LaneArray<uint64_t> id_idx{};
          LaneArray<uint32_t> deg{};
          uint32_t max_deg = 0;
          WarpCtx::ForActive(mask, [&](uint32_t lane) {
            id_idx[lane] = id[lane];
            // Shadow bounds are device-resident; clamp values an ECC fault
            // corrupted to the build invariant (end >= start, degree <= k)
            // so the staging buffer below stays in bounds.
            deg[lane] =
                end[lane] > start[lane] ? std::min(end[lane] - start[lane], k) : 0;
            max_deg = std::max(max_deg, deg[lane]);
          });
          LaneArray<float> rank{}, inv{};
          w.Gather(d.rank, id_idx, mask, rank);
          w.Gather(d.inv_deg, id_idx, mask, inv);
          LaneArray<float> share{};
          WarpCtx::ForActive(mask, [&](uint32_t lane) {
            share[lane] = damping * rank[lane] * inv[lane];
          });
          w.ChargeAlu(2, mask);

          uint32_t nbr_buf[kWarpSize * kMaxK];
          if (options.use_smp) {
            LaneArray<uint64_t> start64{};
            WarpCtx::ForActive(mask, [&](uint32_t lane) { start64[lane] = start[lane]; });
            w.GatherBulk(d.col, start64, deg, mask, nbr_buf, k);
          }
          for (uint32_t j = 0; j < max_deg; ++j) {
            uint32_t jmask = 0;
            WarpCtx::ForActive(mask, [&](uint32_t lane) {
              if (j < deg[lane]) jmask |= 1u << lane;
            });
            if (!jmask) break;
            LaneArray<VertexId> u{};
            if (options.use_smp) {
              WarpCtx::ForActive(jmask,
                                 [&](uint32_t lane) { u[lane] = nbr_buf[lane * k + j]; });
              w.ChargeShared(1, jmask);
            } else {
              LaneArray<uint64_t> eidx{};
              WarpCtx::ForActive(jmask,
                                 [&](uint32_t lane) { eidx[lane] = start[lane] + j; });
              w.Gather(d.col, eidx, jmask, u);
            }
            LaneArray<uint64_t> u_idx{};
            WarpCtx::ForActive(jmask, [&](uint32_t lane) { u_idx[lane] = u[lane]; });
            LaneArray<float> old{};
            w.AtomicAdd(d.next, u_idx, share, jmask, old);
          }
        });
    kernel_ms += push.compute_ms;

    // --- delta kernel: max |next - rank|, then swap -------------------------
    float host_delta = 0;
    auto reduce = device.Launch("pr_delta", {n, options.block_size}, [&](WarpCtx& w) {
      uint32_t mask = w.ActiveMask();
      if (!mask) return;
      uint64_t base = w.WarpId() * kWarpSize;
      LaneArray<float> a{}, b{};
      w.GatherContiguous(d.rank, base, mask, a);
      w.GatherContiguous(d.next, base, mask, b);
      w.ChargeAlu(2, mask);
      float warp_max = 0;
      WarpCtx::ForActive(mask, [&](uint32_t lane) {
        warp_max = std::max(warp_max, std::abs(a[lane] - b[lane]));
      });
      host_delta = std::max(host_delta, warp_max);
      LaneArray<uint64_t> zero_idx{};
      LaneArray<float> val{};
      val.fill(warp_max);
      LaneArray<float> old{};
      w.AtomicMax(d.delta_max, zero_idx, val, 1u, old);
    });
    kernel_ms += reduce.compute_ms;

    // Swap rank <-> next (pointer swap on device; free).
    std::swap(d.rank, d.next);

    float delta_readback = 0;
    device.CopyToHost(std::span<float>(&delta_readback, 1), d.delta_max, false);
    const float zero = 0;
    device.CopyToDevice(d.delta_max, std::span<const float>(&zero, 1), false);
    result.iterations = iter;
    if (host_delta < options.epsilon) break;
  }

  device.Synchronize();
  result.ranks.resize(n);
  device.CopyToHost(std::span<float>(result.ranks), d.rank);
  result.kernel_ms = kernel_ms;
  result.total_ms = device.NowMs();
  result.counters = device.TotalCounters();
  if (options.check.Enabled()) result.check = checker.Report();
  return result;
}

}  // namespace eta::core
